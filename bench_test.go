package silentspan_test

// One benchmark per experiment table (E1–E8, DESIGN.md §5), plus
// micro-benchmarks for the primitives. The experiment benchmarks wrap
// the same harness functions cmd/ssbench prints, at bench-friendly
// sizes, and report the paper's quantities (rounds, register bits) as
// custom metrics next to ns/op.

import (
	"math/rand"
	"strconv"
	"testing"

	"silentspan/internal/bench"
	"silentspan/internal/bfs"
	"silentspan/internal/cluster"
	"silentspan/internal/core"
	"silentspan/internal/graph"
	"silentspan/internal/mdst"
	"silentspan/internal/mst"
	"silentspan/internal/nca"
	"silentspan/internal/routing"
	"silentspan/internal/runtime"
	"silentspan/internal/spanning"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

func BenchmarkE1SwitchRounds(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				tb, err := bench.E1Switch([]int{n}, 1)
				if err != nil {
					b.Fatal(err)
				}
				rounds, _ = strconv.Atoi(tb.Rows[0][1])
			}
			b.ReportMetric(float64(rounds), "rounds/switch")
		})
	}
}

func BenchmarkE2NCALabels(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			g := graph.RandomConnected(n, 0.05, rng)
			tr, err := trees.RandomSpanningTree(g, g.MinID(), rng)
			if err != nil {
				b.Fatal(err)
			}
			var bits int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lb, err := nca.Build(tr)
				if err != nil {
					b.Fatal(err)
				}
				bits = lb.MaxLabelBits()
			}
			b.ReportMetric(float64(bits), "label-bits")
		})
	}
}

func BenchmarkE3BFS(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			var rounds, bits float64
			for i := 0; i < b.N; i++ {
				tb, err := bench.E3BFS([]int{n}, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				r, _ := strconv.Atoi(tb.Rows[0][1])
				bt, _ := strconv.Atoi(tb.Rows[0][3])
				rounds, bits = float64(r), float64(bt)
			}
			b.ReportMetric(rounds, "rounds")
			b.ReportMetric(bits, "register-bits")
		})
	}
}

func BenchmarkE4MST(b *testing.B) {
	for _, n := range []int{10, 16, 22} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			var rounds, bits float64
			for i := 0; i < b.N; i++ {
				tb, err := bench.E4MST([]int{n}, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				r, _ := strconv.Atoi(tb.Rows[0][1])
				bt, _ := strconv.Atoi(tb.Rows[0][3])
				rounds, bits = float64(r), float64(bt)
			}
			b.ReportMetric(rounds, "rounds")
			b.ReportMetric(bits, "label-bits")
		})
	}
}

func BenchmarkE5MDST(b *testing.B) {
	for _, n := range []int{8, 12, 16} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			var rounds, bits float64
			for i := 0; i < b.N; i++ {
				tb, err := bench.E5MDST([]int{n}, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				r, _ := strconv.Atoi(tb.Rows[0][1])
				bt, _ := strconv.Atoi(tb.Rows[0][6])
				rounds, bits = float64(r), float64(bt)
			}
			b.ReportMetric(rounds, "rounds")
			b.ReportMetric(bits, "label-bits")
		})
	}
}

func BenchmarkE6Verification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E6Verification([]int{6, 7}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7FaultRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E7FaultRecovery(24, []int{1, 4}, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8Potential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E8Potential(14, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9Routing(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			var stretch float64
			for i := 0; i < b.N; i++ {
				tb, err := bench.E9Routing([]int{n}, 20_000, 1)
				if err != nil {
					b.Fatal(err)
				}
				stretch, _ = strconv.ParseFloat(tb.Rows[0][6], 64)
			}
			b.ReportMetric(stretch, "mean-stretch")
		})
	}
}

func BenchmarkE10Interplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E10Interplay(24, 3, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks for the primitives behind the tables. ---

func BenchmarkRouteForwarding(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomConnected(4096, 0.002, rng)
	tr, err := trees.BFSTree(g, g.MinID())
	if err != nil {
		b.Fatal(err)
	}
	r := routing.NewRouter(g, routing.Label(tr), routing.Options{})
	pairs := routing.UniformPairs(g.Nodes(), 4096, rng)
	b.ResetTimer()
	hops := 0
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		d := r.Route(p.Src, p.Dst)
		if !d.Delivered {
			b.Fatalf("%d -> %d dropped: %v", p.Src, p.Dst, d.Reason)
		}
		hops += d.Hops
	}
	b.ReportMetric(float64(hops)/float64(b.N), "hops/packet")
}

func BenchmarkCoordLabeling(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	g := graph.RandomConnected(8192, 0.001, rng)
	tr, err := trees.BFSTree(g, g.MinID())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var bits int
	for i := 0; i < b.N; i++ {
		bits = routing.Label(tr).MaxLabelBits()
	}
	b.ReportMetric(float64(bits), "max-label-bits")
}

func BenchmarkNCAQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomConnected(256, 0.05, rng)
	tr, err := trees.RandomSpanningTree(g, g.MinID(), rng)
	if err != nil {
		b.Fatal(err)
	}
	lb, err := nca.Build(tr)
	if err != nil {
		b.Fatal(err)
	}
	nodes := tr.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := nodes[i%len(nodes)]
		v := nodes[(i*7+3)%len(nodes)]
		if _, err := nca.NCA(lb.Label(u), lb.Label(v)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKruskal(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomConnected(512, 0.02, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mst.Kruskal(g, g.MinID()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBoruvkaTrace(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomConnected(128, 0.05, rng)
	tr, err := trees.RandomSpanningTree(g, g.MinID(), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mst.ComputeTrace(g, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFurerRaghavachari(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomConnected(48, 0.15, rng)
	t0, err := trees.RandomSpanningTree(g, g.MinID(), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mdst.FurerRaghavachari(g, t0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateStabilization(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomConnected(64, 0.08, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := runtime.NewNetwork(g, switching.Algorithm{})
		if err != nil {
			b.Fatal(err)
		}
		net.InitArbitrary(rand.New(rand.NewSource(int64(i))))
		res, err := net.Run(runtime.Central(), 5_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Silent {
			b.Fatal("not silent")
		}
	}
}

func BenchmarkAlwaysOnBFS(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := graph.RandomConnected(48, 0.1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := runtime.NewNetwork(g, bfs.Algorithm{})
		if err != nil {
			b.Fatal(err)
		}
		net.InitArbitrary(rand.New(rand.NewSource(int64(i))))
		res, err := net.Run(runtime.Central(), 5_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Silent {
			b.Fatal("not silent")
		}
	}
}

func BenchmarkSequentialEngineMST(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomConnected(64, 0.08, rng)
	t0, err := trees.RandomSpanningTree(g, g.MinID(), rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.RunSequential(g, t0, mst.Task{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBFSStabilization measures raw engine throughput on the
// serving-scale path: the spanning (BFS) substrate from the post-reset
// configuration to silence under the synchronous daemon. This is the
// benchmark behind the PR-over-PR engine comparison in BENCH_pr*.json:
// it isolates the simulation engine (view building, enabled-set
// maintenance, scheduler hand-off) from algorithmic round counts.
func BenchmarkEngineBFSStabilization(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			g := graph.RandomConnected(n, 8/float64(n), rng)
			g.Dense() // build the index snapshot with the rest of the fixture
			b.ResetTimer()
			var moves int
			for i := 0; i < b.N; i++ {
				net, err := runtime.NewNetwork(g, spanning.Algorithm{})
				if err != nil {
					b.Fatal(err)
				}
				spanning.InitSelfRoot(net)
				res, err := net.Run(runtime.Synchronous(), 200_000_000)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Silent {
					b.Fatal("not silent")
				}
				moves = res.Moves
			}
			b.ReportMetric(float64(moves), "moves")
		})
	}
}

// BenchmarkEngineBFSCentral is the central-daemon variant: one node per
// activation, so any per-activation work that scans all nodes turns the
// run quadratic. It is the benchmark that the incremental enabled-set
// exists for.
func BenchmarkEngineBFSCentral(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			g := graph.RandomConnected(n, 8/float64(n), rng)
			g.Dense() // build the index snapshot with the rest of the fixture
			b.ResetTimer()
			var moves int
			for i := 0; i < b.N; i++ {
				net, err := runtime.NewNetwork(g, spanning.Algorithm{})
				if err != nil {
					b.Fatal(err)
				}
				spanning.InitSelfRoot(net)
				res, err := net.Run(runtime.Central(), 200_000_000)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Silent {
					b.Fatal("not silent")
				}
				moves = res.Moves
			}
			b.ReportMetric(float64(moves), "moves")
		})
	}
}

// BenchmarkScaleBFSRouting is the 100k-node serving-scale run: stabilize
// the BFS substrate, label the tree with routing coordinates, and drive
// a packet batch — the full stack at a size the map-backed engine could
// not touch. It must complete in single-digit seconds per iteration.
func BenchmarkScaleBFSRouting(b *testing.B) {
	sizes := []int{100_000}
	if !testing.Short() {
		sizes = append(sizes, 300_000)
	}
	for _, n := range sizes {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			g := graph.RandomConnected(n, 8/float64(n), rng)
			g.Dense() // build the index snapshot with the rest of the fixture
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net, err := runtime.NewNetwork(g, spanning.Algorithm{})
				if err != nil {
					b.Fatal(err)
				}
				spanning.InitSelfRoot(net)
				res, err := net.Run(runtime.Synchronous(), 2_000_000_000)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Silent {
					b.Fatal("not silent")
				}
				tr, err := spanning.ExtractTree(net)
				if err != nil {
					b.Fatal(err)
				}
				r := routing.NewRouter(g, routing.Label(tr), routing.Options{})
				stats, err := routing.Drive(r, routing.UniformPairs(g.Nodes(), 10_000, rng), routing.DriveOptions{MaxExactSources: -1})
				if err != nil {
					b.Fatal(err)
				}
				if stats.Delivered != stats.Sent {
					b.Fatalf("delivered %d of %d", stats.Delivered, stats.Sent)
				}
			}
		})
	}
}

// BenchmarkClusterStabilization is the message-passing counterpart of
// BenchmarkEngineBFSStabilization: the same spanning substrate from the
// same post-reset configuration, but run as goroutine-per-node actors
// exchanging wire frames over the in-process transport. The gap between
// the two is the price of the shared-memory→message-passing transform
// (frame codec + cache maintenance + barriers) at serving scale.
func BenchmarkClusterStabilization(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			g := graph.RandomConnected(n, 8/float64(n), rng)
			g.Dense()
			b.ResetTimer()
			var frames int
			for i := 0; i < b.N; i++ {
				cl, err := cluster.New(g, spanning.Algorithm{}, cluster.NewChanTransport(), cluster.Config{})
				if err != nil {
					b.Fatal(err)
				}
				for _, v := range g.Nodes() {
					cl.SetState(v, spanning.State{Root: v, Parent: trees.None, Dist: 0})
				}
				if _, quiet := cl.RunUntilQuiet(32*n, 4); !quiet {
					b.Fatal("no quiet")
				}
				frames = cl.Stats().FramesSent
				cl.Stop()
			}
			b.ReportMetric(float64(frames), "frames")
		})
	}
}

// --- Ablation benchmarks (design-choice experiments, DESIGN.md §4). ---

func BenchmarkA1MalleabilityAblation(b *testing.B) {
	var protocolAlarms, naiveAlarms int
	for i := 0; i < b.N; i++ {
		tb, err := bench.A1Malleability([]int{24}, 1)
		if err != nil {
			b.Fatal(err)
		}
		protocolAlarms, _ = strconv.Atoi(tb.Rows[0][1])
		naiveAlarms, _ = strconv.Atoi(tb.Rows[0][3])
	}
	b.ReportMetric(float64(protocolAlarms), "protocol-alarms")
	b.ReportMetric(float64(naiveAlarms), "naive-alarms")
}

func BenchmarkA2NCAEncodingAblation(b *testing.B) {
	var paper, naive int
	for i := 0; i < b.N; i++ {
		tb, err := bench.A2NCAEncoding([]int{256}, 2)
		if err != nil {
			b.Fatal(err)
		}
		paper, _ = strconv.Atoi(tb.Rows[0][1])
		naive, _ = strconv.Atoi(tb.Rows[0][3])
	}
	b.ReportMetric(float64(paper), "paper-bits")
	b.ReportMetric(float64(naive), "naive-bits")
}

func BenchmarkA3SchedulerSpread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.A3Schedulers(16, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA4FamilySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.A4Families(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
