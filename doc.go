// Package silentspan reproduces "Space-Optimal Time-Efficient Silent
// Self-Stabilizing Constructions of Constrained Spanning Trees" (Blin &
// Fraigniaud, ICDCS 2015): a framework for building silent
// self-stabilizing constrained-spanning-tree algorithms — BFS, MST, and
// minimum-degree (MDST via FR-trees) — that are simultaneously
// space-optimal and polynomial-round, guided by proof-labeling schemes.
//
// See README.md for the architecture and DESIGN.md for the system
// inventory and experiment index; cmd/ssbench regenerates the measured
// tables against the paper's claims, and cmd/sscert runs the
// adversarial certification harness (exhaustive model checking plus
// chaos campaigns). The library lives under internal/; the runnable
// entry points are cmd/sstsim, cmd/ssbench, cmd/sscert, and the
// examples/ programs.
package silentspan
