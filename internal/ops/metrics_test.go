package ops

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ss_frames_total", "Frames.", Labels{"transport": "chan"})
	c.Inc()
	c.Add(2)
	g := reg.Gauge("ss_ticks", "Ticks.", nil)
	g.Set(41)
	g.Add(1)
	reg.CounterFunc("ss_fn_total", "Func-backed.", nil, func() float64 { return 7 })
	reg.GaugeFunc("ss_fn_gauge", "Func gauge.", Labels{"a": "1", "b": "2"}, func() float64 { return 2.5 })

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP ss_frames_total Frames.",
		"# TYPE ss_frames_total counter",
		`ss_frames_total{transport="chan"} 3`,
		"# TYPE ss_ticks gauge",
		"ss_ticks 42",
		"ss_fn_total 7",
		`ss_fn_gauge{a="1",b="2"} 2.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 3 || g.Value() != 42 {
		t.Errorf("Value() = %d, %d; want 3, 42", c.Value(), g.Value())
	}
}

func TestHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("ss_interval", "Intervals.", Labels{"kind": "hb"}, []float64{1, 4, 16})
	for _, v := range []float64{0.5, 1, 3, 20, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE ss_interval histogram",
		`ss_interval_bucket{kind="hb",le="1"} 2`,
		`ss_interval_bucket{kind="hb",le="4"} 3`,
		`ss_interval_bucket{kind="hb",le="16"} 3`,
		`ss_interval_bucket{kind="hb",le="+Inf"} 5`,
		`ss_interval_sum{kind="hb"} 124.5`,
		`ss_interval_count{kind="hb"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 || h.Sum() != 124.5 {
		t.Errorf("Count/Sum = %d, %v; want 5, 124.5", h.Count(), h.Sum())
	}
}

func TestHistogramNoLabels(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("ss_plain", "Plain.", nil, []float64{2})
	h.Observe(1)
	var b strings.Builder
	reg.WritePrometheus(&b)
	if !strings.Contains(b.String(), `ss_plain_bucket{le="2"} 1`) {
		t.Errorf("unlabeled histogram bucket malformed:\n%s", b.String())
	}
}

func TestSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ss_a_total", "A.", nil).Add(5)
	reg.Gauge("ss_b", "B.", Labels{"x": "y"}).Set(-3)
	h := reg.Histogram("ss_h", "H.", nil, []float64{1})
	h.Observe(0.5)
	h.Observe(2)

	snap := reg.Snapshot()
	want := map[string]float64{
		"ss_a_total":  5,
		`ss_b{x="y"}`: -3,
		"ss_h_count":  2,
		"ss_h_sum":    2.5,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("Snapshot[%q] = %v, want %v", k, snap[k], v)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ss_dup_total", "D.", Labels{"k": "v"})
	assertPanics(t, "same name+labels", func() {
		reg.Counter("ss_dup_total", "D.", Labels{"k": "v"})
	})
	assertPanics(t, "same name different type", func() {
		reg.Gauge("ss_dup_total", "D.", Labels{"k": "w"})
	})
	// Same name, different labels, same type is fine.
	reg.Counter("ss_dup_total", "D.", Labels{"k": "w"})
	assertPanics(t, "unsorted histogram bounds", func() {
		reg.Histogram("ss_hb", "H.", nil, []float64{4, 1})
	})
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{3: "3", 2.5: "2.5", -1: "-1", 0: "0"}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestConcurrentUpdatesWhileScraping(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ss_conc_total", "C.", nil)
	h := reg.Histogram("ss_conc_h", "H.", nil, []float64{8, 64})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 100))
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		reg.WritePrometheus(&b)
		reg.Snapshot()
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Errorf("counter = %d, want 4000", c.Value())
	}
	if h.Count() != 4000 {
		t.Errorf("histogram count = %d, want 4000", h.Count())
	}
}

// TestExpositionEscaping: label values and HELP text with backslashes,
// quotes, and newlines must render with the text-format escapes
// (\\, \", \n) — a raw quote or line feed corrupts the exposition and
// makes conformant scrapers reject the whole page.
func TestExpositionEscaping(t *testing.T) {
	tests := []struct {
		name   string
		metric string
		help   string
		labels Labels
		want   []string
	}{
		{
			name:   "quote in label value",
			metric: "ss_esc_quote",
			help:   "Quoted.",
			labels: Labels{"path": `say "hi"`},
			want:   []string{`ss_esc_quote{path="say \"hi\""} 1`},
		},
		{
			name:   "backslash in label value",
			metric: "ss_esc_backslash",
			help:   "Back.",
			labels: Labels{"dir": `C:\tmp\x`},
			want:   []string{`ss_esc_backslash{dir="C:\\tmp\\x"} 1`},
		},
		{
			name:   "newline in label value",
			metric: "ss_esc_newline",
			help:   "NL.",
			labels: Labels{"msg": "a\nb"},
			want:   []string{`ss_esc_newline{msg="a\nb"} 1`},
		},
		{
			name:   "all three combined",
			metric: "ss_esc_combo",
			help:   "Combo.",
			labels: Labels{"v": "\\\"\n"},
			want:   []string{`ss_esc_combo{v="\\\"\n"} 1`},
		},
		{
			name:   "backslash and newline in HELP",
			metric: "ss_esc_help",
			help:   "path \\tmp\nsecond line",
			labels: nil,
			want:   []string{`# HELP ss_esc_help path \\tmp\nsecond line`},
		},
		{
			name:   "quote in HELP stays literal",
			metric: "ss_esc_help_quote",
			help:   `says "hi"`,
			labels: nil,
			want:   []string{`# HELP ss_esc_help_quote says "hi"`},
		},
		{
			name:   "non-ASCII passes through unescaped",
			metric: "ss_esc_utf8",
			help:   "Ünïcode héllo.",
			labels: Labels{"name": "nœud-α"},
			want: []string{
				`# HELP ss_esc_utf8 Ünïcode héllo.`,
				`ss_esc_utf8{name="nœud-α"} 1`,
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			reg := NewRegistry()
			reg.Counter(tc.metric, tc.help, tc.labels).Inc()
			var b strings.Builder
			reg.WritePrometheus(&b)
			out := b.String()
			for _, want := range tc.want {
				found := false
				for _, line := range strings.Split(out, "\n") {
					if line == want {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("exposition missing exact line %q:\n%s", want, out)
				}
			}
		})
	}
}

// TestEscapingHistogramLe: escaping applies to the merged le label path
// too (le values are numeric in practice, but the merge must not
// reopen the injection hole).
func TestEscapingHistogramLe(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("ss_esc_hist", "H.", Labels{"q": `a"b`}, []float64{1})
	h.Observe(0.5)
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`ss_esc_hist_bucket{q="a\"b",le="1"} 1`,
		`ss_esc_hist_bucket{q="a\"b",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
