package ops

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"

	"silentspan/internal/graph"
	"silentspan/internal/trace"
)

// None is the "no parent / unknown" identity in admin responses.
// Registers encode the root's parent as trees.None (0) and foreign or
// absent states as routing.NoParent (-1); admin providers normalize
// both to None so crawlers diff tree shapes, not encodings.
const None graph.NodeID = 0

// SelfInfo is the getself response: the node's tree position, register
// dump, and protocol identity.
type SelfInfo struct {
	ID graph.NodeID `json:"id"`
	// N is the network size bound the node was configured with.
	N         int    `json:"n"`
	Algorithm string `json:"algorithm"`
	Codec     string `json:"codec"`
	// Register is the rendered register content; RegisterBits its width
	// under the natural encoding (the paper's space measure).
	Register     string `json:"register"`
	RegisterBits int    `json:"register_bits"`
	// Root / Parent / Distance are the tree position claimed by the
	// register (None when the node is a root or the claim is unknown;
	// Distance -1 when the register carries no distance).
	Root     graph.NodeID `json:"root"`
	Parent   graph.NodeID `json:"parent"`
	Distance int          `json:"distance"`
	// Port is the parent's index in the node's sorted neighbor list
	// (-1 when there is no parent).
	Port      int    `json:"port"`
	LocalTick uint64 `json:"local_tick"`
	// AdminAddr is this node's own admin endpoint address, when served
	// over HTTP (empty for in-process handles).
	AdminAddr string `json:"admin_addr,omitempty"`
}

// PeerInfo is one entry of the getpeers response: the node's cached
// view of a neighbor.
type PeerInfo struct {
	ID graph.NodeID `json:"id"`
	// Seq is the highest heartbeat sequence number accepted from this
	// neighbor (0 = never heard).
	Seq uint64 `json:"seq"`
	// AgeTicks is the local-tick age of the cached state (-1 = never
	// heard).
	AgeTicks int64 `json:"age_ticks"`
	// Stale reports the entry is expired: the protocol reads this
	// neighbor as unknown (nil), exactly as step does.
	Stale bool `json:"stale"`
	// Parent is the parent pointer of the cached register (None when
	// unknown), Register its rendered content.
	Parent   graph.NodeID `json:"parent"`
	Register string       `json:"register,omitempty"`
	// AdminAddr is the peer's admin endpoint, when known — the hop the
	// crawler follows.
	AdminAddr string `json:"admin_addr,omitempty"`
}

// PeersInfo is the getpeers response: the neighbor cache with staleness
// applied.
type PeersInfo struct {
	Node         graph.NodeID `json:"node"`
	StalenessTTL int          `json:"staleness_ttl"`
	Peers        []PeerInfo   `json:"peers"`
}

// TreeInfo is the gettree response: the node's one-hop view of the
// tree — its parent, and the children it learned from heartbeats
// (fresh neighbors whose cached register points at this node).
type TreeInfo struct {
	Node     graph.NodeID   `json:"node"`
	Root     graph.NodeID   `json:"root"`
	Parent   graph.NodeID   `json:"parent"`
	Children []graph.NodeID `json:"children"`
	Distance int            `json:"distance"`
}

// StatsInfo is the getstats response: the node's transport-visible
// counters.
type StatsInfo struct {
	Node              graph.NodeID `json:"node"`
	FramesSent        int64        `json:"frames_sent"`
	BytesSent         int64        `json:"bytes_sent"`
	FramesRecv        int64        `json:"frames_recv"`
	RxRejected        int64        `json:"rx_rejected"`
	HeartbeatsApplied int64        `json:"heartbeats_applied"`
	RegisterWrites    int64        `json:"register_writes"`
	StalenessExpiries int64        `json:"staleness_expiries"`
	PacketsForwarded  int64        `json:"packets_forwarded"`
	PacketsDropped    int64        `json:"packets_dropped"`
}

// QuietInfo is the getquiet response: the node's view of the in-band
// termination detector.
type QuietInfo struct {
	Node graph.NodeID `json:"node"`
	// Epoch is the node's write epoch — a Lamport clock over register
	// writes and membership events, joined to the max epoch heard.
	Epoch uint64 `json:"epoch"`
	// LocalQuiet reports no local write for the configured quiet window.
	LocalQuiet bool `json:"local_quiet"`
	// SubtreeQuiet reports the node's whole subtree quiet at Epoch;
	// Covered is the number of nodes that claim spans.
	SubtreeQuiet bool   `json:"subtree_quiet"`
	Covered      uint64 `json:"covered"`
	// Root reports the node considers itself a tree root.
	Root bool `json:"root"`
	// Announced is the cluster-quiet epoch this node is announcing (as
	// root) or forwarding down (as descendant); 0 = no announcement.
	Announced uint64 `json:"announced_epoch"`
}

// TraceInfo is the gettrace response: the node's flight-recorder ring,
// oldest event first (DESIGN.md §14).
type TraceInfo struct {
	Node graph.NodeID `json:"node"`
	// Enabled reports whether the recorder is armed on this node; the
	// remaining fields are zero when it is not.
	Enabled bool `json:"enabled"`
	// Capacity is the ring size; Dropped the events lost to overwrites.
	Capacity int           `json:"capacity,omitempty"`
	Dropped  uint64        `json:"dropped,omitempty"`
	Events   []trace.Event `json:"events"`
}

// NodeAdmin is one node's admin surface. Implementations must be safe
// to call concurrently with the node's own protocol activity — the
// whole point is observing a live cluster.
type NodeAdmin interface {
	AdminSelf() SelfInfo
	AdminPeers() PeersInfo
	AdminTree() TreeInfo
	AdminStats() StatsInfo
	AdminQuiet() QuietInfo
	AdminTrace() TraceInfo
}

// Server serves one node's admin API over a loopback HTTP socket:
// /getself, /getpeers, /gettree, /getstats, /getquiet as JSON, and /metrics in
// Prometheus text format (the registry is shared across the cluster's
// servers, so any node answers for the whole deployment's counters).
type Server struct {
	admin NodeAdmin
	reg   *Registry

	mu sync.Mutex
	ln net.Listener
	hs *http.Server
}

// NewServer wraps a node admin (and an optional metrics registry) into
// an HTTP server. Call Start to bind it.
func NewServer(admin NodeAdmin, reg *Registry) *Server {
	return &Server{admin: admin, reg: reg}
}

// Handler returns the admin routes (also usable without a socket).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	serveJSON := func(get func() any) http.HandlerFunc {
		return func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(get())
		}
	}
	mux.Handle("/getself", serveJSON(func() any { return s.admin.AdminSelf() }))
	mux.Handle("/getpeers", serveJSON(func() any { return s.admin.AdminPeers() }))
	mux.Handle("/gettree", serveJSON(func() any { return s.admin.AdminTree() }))
	mux.Handle("/getstats", serveJSON(func() any { return s.admin.AdminStats() }))
	mux.Handle("/getquiet", serveJSON(func() any { return s.admin.AdminQuiet() }))
	mux.Handle("/gettrace", serveJSON(func() any { return s.admin.AdminTrace() }))
	if s.reg != nil {
		mux.Handle("/metrics", s.reg.Handler())
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "silentspan admin: /getself /getpeers /gettree /getstats /getquiet /gettrace /metrics")
	})
	return mux
}

// Start binds a fresh loopback port and serves until Close. It returns
// the bound address ("127.0.0.1:port").
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("ops: admin bind: %w", err)
	}
	hs := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.ln, s.hs = ln, hs
	s.mu.Unlock()
	go hs.Serve(ln)
	return ln.Addr().String(), nil
}

// Addr returns the bound address (empty before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down (idempotent).
func (s *Server) Close() error {
	s.mu.Lock()
	hs := s.hs
	s.hs, s.ln = nil, nil
	s.mu.Unlock()
	if hs == nil {
		return nil
	}
	return hs.Close()
}
