package ops

import (
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestPprofHandlerRoutes(t *testing.T) {
	srv := httptest.NewServer(PprofHandler())
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
		}
	}
	// Heap profile actually renders (the cheapest real profile).
	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatalf("GET heap: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("heap profile: HTTP %d", resp.StatusCode)
	}
}

func TestRegisterGoCollectors(t *testing.T) {
	reg := NewRegistry()
	RegisterGoCollectors(reg)
	snap := reg.Snapshot()
	if g := snap["ss_go_goroutines"]; g < 1 {
		t.Errorf("ss_go_goroutines = %v, want >= 1", g)
	}
	if h := snap["ss_go_heap_alloc_bytes"]; h <= 0 {
		t.Errorf("ss_go_heap_alloc_bytes = %v, want > 0", h)
	}
	if o := snap["ss_go_heap_objects"]; o <= 0 {
		t.Errorf("ss_go_heap_objects = %v, want > 0", o)
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE ss_go_goroutines gauge",
		"# TYPE ss_go_gc_cycles_total counter",
		"# TYPE ss_go_gc_pause_seconds_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestMemStatsCacheTTL(t *testing.T) {
	reads := 0
	c := &memStatsCache{ttl: time.Hour, read: func(ms *runtime.MemStats) {
		reads++
		ms.HeapAlloc = uint64(reads)
	}}
	if v := c.get().HeapAlloc; v != 1 {
		t.Fatalf("first get = %d, want 1", v)
	}
	// Within TTL: the cached MemStats is reused, no second read.
	if v := c.get().HeapAlloc; v != 1 {
		t.Fatalf("cached get = %d, want 1", v)
	}
	if reads != 1 {
		t.Fatalf("reads = %d, want 1", reads)
	}
	c.at = time.Now().Add(-2 * time.Hour) // expire
	if v := c.get().HeapAlloc; v != 2 {
		t.Fatalf("post-expiry get = %d, want 2", v)
	}
}
