package ops

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"silentspan/internal/graph"
	"silentspan/internal/trace"
)

// fakeAdmin is a canned NodeAdmin: a node with a fixed parent and
// neighbor list.
type fakeAdmin struct {
	id        graph.NodeID
	parent    graph.NodeID
	neighbors []graph.NodeID
	addrOf    func(graph.NodeID) string
}

func (f *fakeAdmin) AdminSelf() SelfInfo {
	addr := ""
	if f.addrOf != nil {
		addr = f.addrOf(f.id)
	}
	return SelfInfo{
		ID: f.id, N: 8, Algorithm: "spanning-substrate", Codec: "spanning",
		Register: "r", RegisterBits: 12, Root: 1, Parent: f.parent,
		Distance: 1, Port: 0, LocalTick: 9, AdminAddr: addr,
	}
}

func (f *fakeAdmin) AdminPeers() PeersInfo {
	out := PeersInfo{Node: f.id, StalenessTTL: 8}
	for _, nb := range f.neighbors {
		pi := PeerInfo{ID: nb, Seq: 3, AgeTicks: 1, Parent: None}
		if f.addrOf != nil {
			pi.AdminAddr = f.addrOf(nb)
		}
		out.Peers = append(out.Peers, pi)
	}
	return out
}

func (f *fakeAdmin) AdminTree() TreeInfo {
	return TreeInfo{Node: f.id, Root: 1, Parent: f.parent, Children: []graph.NodeID{}, Distance: 1}
}

func (f *fakeAdmin) AdminStats() StatsInfo {
	return StatsInfo{Node: f.id, FramesSent: 4}
}

func (f *fakeAdmin) AdminQuiet() QuietInfo {
	return QuietInfo{Node: f.id, Epoch: 7, LocalQuiet: true}
}

func (f *fakeAdmin) AdminTrace() TraceInfo {
	return TraceInfo{Node: f.id, Enabled: true, Capacity: 16,
		Events: []trace.Event{{Kind: trace.RegWrite, Node: f.id, Epoch: 7, Tick: 9}}}
}

// star builds a hub over a star graph: node 1 is the root, nodes
// 2..n its children.
func star(n int) (*Hub, map[graph.NodeID]graph.NodeID) {
	h := NewHub()
	want := map[graph.NodeID]graph.NodeID{1: None}
	var leaves []graph.NodeID
	for id := graph.NodeID(2); id <= graph.NodeID(n); id++ {
		leaves = append(leaves, id)
		want[id] = 1
	}
	h.Register(1, &fakeAdmin{id: 1, parent: None, neighbors: leaves})
	for _, id := range leaves {
		h.Register(id, &fakeAdmin{id: id, parent: 1, neighbors: []graph.NodeID{1}})
	}
	return h, want
}

func TestCrawlHub(t *testing.T) {
	h, want := star(5)
	rep, err := Crawl(h, 3) // start at a leaf: discovery must still cover the star
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	if rep.Visited() != 5 {
		t.Fatalf("Visited = %d, want 5", rep.Visited())
	}
	if diffs := rep.DiffParents(want); len(diffs) != 0 {
		t.Fatalf("DiffParents: %v", diffs)
	}
	if roots := rep.Roots(); len(roots) != 1 || roots[0] != 1 {
		t.Fatalf("Roots = %v, want [1]", roots)
	}
	if edges := rep.Edges(); len(edges) != 4 || edges[0] != [2]graph.NodeID{2, 1} {
		t.Fatalf("Edges = %v", edges)
	}
	if got := rep.Parents()[3]; got != 1 {
		t.Fatalf("Parents()[3] = %d, want 1", got)
	}
}

func TestCrawlPartitioned(t *testing.T) {
	h, _ := star(5)
	h.Remove(4) // dead admin endpoint: its neighborhood stays unexplored
	done := make(chan *CrawlReport, 1)
	go func() {
		rep, err := Crawl(h, 1)
		if err != nil {
			t.Errorf("Crawl: %v", err)
		}
		done <- rep
	}()
	var rep *CrawlReport
	select {
	case rep = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("crawl hung on a partitioned cluster")
	}
	if rep.Visited() != 4 {
		t.Fatalf("Visited = %d, want 4 (reachable component only)", rep.Visited())
	}
	if _, ok := rep.Errors[4]; !ok {
		t.Fatalf("Errors = %v, want entry for node 4", rep.Errors)
	}
	if _, ok := rep.Nodes[4]; ok {
		t.Fatal("dead node 4 must not appear in Nodes")
	}
}

func TestCrawlStartUnreachable(t *testing.T) {
	h, _ := star(3)
	h.Remove(1)
	if _, err := Crawl(h, 1); err == nil {
		t.Fatal("expected error crawling from a dead start node")
	}
}

func TestDiffParentsDivergences(t *testing.T) {
	h, want := star(3)
	want[2] = 3     // mismatch
	want[9] = 1     // expected but never crawled
	delete(want, 3) // crawled but not expected
	rep, err := Crawl(h, 1)
	if err != nil {
		t.Fatalf("Crawl: %v", err)
	}
	diffs := strings.Join(rep.DiffParents(want), "\n")
	for _, frag := range []string{"node 2", "node 9: expected but not crawled", "node 3: crawled but not in the mirror"} {
		if !strings.Contains(diffs, frag) {
			t.Errorf("diffs missing %q:\n%s", frag, diffs)
		}
	}
}

// httpStar binds real loopback admin servers for a star graph and
// returns the root's address plus a cleanup func.
func httpStar(t *testing.T, n int) (string, map[graph.NodeID]graph.NodeID) {
	t.Helper()
	addrs := make(map[graph.NodeID]string)
	addrOf := func(id graph.NodeID) string { return addrs[id] }
	want := map[graph.NodeID]graph.NodeID{1: None}
	var leaves []graph.NodeID
	for id := graph.NodeID(2); id <= graph.NodeID(n); id++ {
		leaves = append(leaves, id)
		want[id] = 1
	}
	admins := []*fakeAdmin{{id: 1, parent: None, neighbors: leaves, addrOf: addrOf}}
	for _, id := range leaves {
		admins = append(admins, &fakeAdmin{id: id, parent: 1, neighbors: []graph.NodeID{1}, addrOf: addrOf})
	}
	reg := NewRegistry()
	reg.Counter("ss_test_total", "T.", nil).Inc()
	for _, a := range admins {
		srv := NewServer(a, reg)
		addr, err := srv.Start()
		if err != nil {
			t.Fatalf("Start: %v", err)
		}
		addrs[a.id] = addr
		t.Cleanup(func() { srv.Close() })
	}
	return addrs[1], want
}

func TestCrawlHTTP(t *testing.T) {
	seed, want := httpStar(t, 4)
	c := NewHTTPClient(5 * time.Second)
	rep, err := CrawlAddr(c, seed)
	if err != nil {
		t.Fatalf("CrawlAddr: %v", err)
	}
	if rep.Visited() != 4 {
		t.Fatalf("Visited = %d, want 4", rep.Visited())
	}
	if diffs := rep.DiffParents(want); len(diffs) != 0 {
		t.Fatalf("DiffParents: %v", diffs)
	}
	// The crawl must have learned every node's address from peer infos.
	if _, err := c.Self(3); err != nil {
		t.Fatalf("Self(3) after crawl: %v", err)
	}
}

func TestHTTPClientErrors(t *testing.T) {
	c := NewHTTPClient(0)
	if _, err := c.Self(99); err == nil {
		t.Fatal("expected error for unknown node address")
	}
	if _, err := c.Peers(99); err == nil {
		t.Fatal("expected error for unknown node address")
	}
	if _, err := c.SelfAt("127.0.0.1:1"); err == nil {
		t.Fatal("expected connection error")
	}
}

func TestAdminEndpointsJSON(t *testing.T) {
	fa := &fakeAdmin{id: 7, parent: 1, neighbors: []graph.NodeID{1, 8}}
	reg := NewRegistry()
	reg.Gauge("ss_g", "G.", nil).Set(11)
	srv := NewServer(fa, reg)
	addr, err := srv.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()
	if srv.Addr() != addr {
		t.Errorf("Addr() = %q, want %q", srv.Addr(), addr)
	}

	get := func(path string) map[string]any {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
		return m
	}

	tests := []struct {
		path string
		keys []string
		want map[string]any
	}{
		{"/getself", []string{"id", "n", "algorithm", "codec", "register", "register_bits", "root", "parent", "distance", "port", "local_tick"},
			map[string]any{"id": 7.0, "algorithm": "spanning-substrate", "parent": 1.0}},
		{"/getpeers", []string{"node", "staleness_ttl", "peers"},
			map[string]any{"node": 7.0, "staleness_ttl": 8.0}},
		{"/gettree", []string{"node", "root", "parent", "children", "distance"},
			map[string]any{"node": 7.0, "parent": 1.0}},
		{"/getstats", []string{"node", "frames_sent", "bytes_sent", "frames_recv", "rx_rejected", "heartbeats_applied", "register_writes", "staleness_expiries", "packets_forwarded", "packets_dropped"},
			map[string]any{"node": 7.0, "frames_sent": 4.0}},
		{"/getquiet", []string{"node", "epoch", "local_quiet", "subtree_quiet", "covered", "root", "announced_epoch"},
			map[string]any{"node": 7.0, "epoch": 7.0, "local_quiet": true}},
		{"/gettrace", []string{"node", "enabled", "capacity", "events"},
			map[string]any{"node": 7.0, "enabled": true, "capacity": 16.0}},
	}
	for _, tc := range tests {
		m := get(tc.path)
		for _, k := range tc.keys {
			if _, ok := m[k]; !ok {
				t.Errorf("%s: missing key %q in %v", tc.path, k, m)
			}
		}
		for k, v := range tc.want {
			if m[k] != v {
				t.Errorf("%s: %q = %v, want %v", tc.path, k, m[k], v)
			}
		}
	}

	// gettrace round-trips typed events, not just generic JSON.
	{
		resp, err := http.Get("http://" + addr + "/gettrace")
		if err != nil {
			t.Fatalf("GET /gettrace: %v", err)
		}
		var ti TraceInfo
		if err := json.NewDecoder(resp.Body).Decode(&ti); err != nil {
			t.Fatalf("decode trace: %v", err)
		}
		resp.Body.Close()
		if !ti.Enabled || len(ti.Events) != 1 ||
			ti.Events[0].Kind != trace.RegWrite || ti.Events[0].Epoch != 7 || ti.Events[0].Tick != 9 {
			t.Errorf("gettrace = %+v", ti)
		}
	}

	// getpeers carries per-peer shape too.
	resp, err := http.Get("http://" + addr + "/getpeers")
	if err != nil {
		t.Fatalf("GET /getpeers: %v", err)
	}
	var pi PeersInfo
	if err := json.NewDecoder(resp.Body).Decode(&pi); err != nil {
		t.Fatalf("decode peers: %v", err)
	}
	resp.Body.Close()
	if len(pi.Peers) != 2 || pi.Peers[0].ID != 1 || pi.Peers[0].Seq != 3 {
		t.Errorf("peers = %+v", pi.Peers)
	}

	// /metrics serves the shared registry; / serves the index; junk 404s.
	body := readBody(t, addr, "/metrics")
	if !strings.Contains(body, "ss_g 11") {
		t.Errorf("/metrics missing gauge:\n%s", body)
	}
	if !strings.Contains(readBody(t, addr, "/"), "getself") {
		t.Error("index page missing route list")
	}
	if resp, err := http.Get("http://" + addr + "/nope"); err == nil {
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("/nope: HTTP %d, want 404", resp.StatusCode)
		}
		resp.Body.Close()
	}

	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func readBody(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return string(body)
}
