package ops

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"
)

// PprofHandler returns net/http/pprof's routes under /debug/pprof/ —
// the profiling side of the ops plane, served on its own socket by
// `sstsim -serve -pprof <addr>` so profiling never shares a listener
// with the per-node admin APIs.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// memStatsCache rate-limits runtime.ReadMemStats: the read stops the
// world briefly, and one scrape asks for several of its fields. All
// collectors registered by RegisterGoCollectors share one cache.
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	ms   runtime.MemStats
	ttl  time.Duration
	read func(*runtime.MemStats) // swappable for tests
}

func (c *memStatsCache) get() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.at) > c.ttl {
		c.read(&c.ms)
		c.at = now
	}
	return c.ms
}

// RegisterGoCollectors registers Go runtime health as func-backed
// metrics: goroutine count, heap size and object count, GC cycle count
// and cumulative pause time. Values are read at scrape time; the
// MemStats read is cached for ~100ms so hot scrape loops cannot turn
// into stop-the-world storms.
func RegisterGoCollectors(r *Registry) {
	cache := &memStatsCache{ttl: 100 * time.Millisecond, read: runtime.ReadMemStats}
	r.GaugeFunc("ss_go_goroutines", "Live goroutines.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("ss_go_heap_alloc_bytes", "Heap bytes allocated and in use.", nil,
		func() float64 { return float64(cache.get().HeapAlloc) })
	r.GaugeFunc("ss_go_heap_objects", "Live heap objects.", nil,
		func() float64 { return float64(cache.get().HeapObjects) })
	r.CounterFunc("ss_go_gc_cycles_total", "Completed GC cycles.", nil,
		func() float64 { return float64(cache.get().NumGC) })
	r.CounterFunc("ss_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", nil,
		func() float64 { return float64(cache.get().PauseTotalNs) / 1e9 })
}
