// Package ops is the operations plane of the cluster runtime: the eyes
// and hands an operator gets on a *running* deployment of the paper's
// silent algorithms, without the coordinator's god's-eye view the model
// forbids.
//
// Three pieces, deliberately dependency-free (stdlib only):
//
//   - a metrics registry (metrics.go): Prometheus-text-format counters,
//     gauges, and histograms, cheap enough to thread through the
//     cluster's hot paths. Silence — the paper's headline property — is
//     exactly what a metrics layer makes visible: register writes and
//     frame counters go flat when the system stabilizes.
//   - a per-node admin API (admin.go): getself / getpeers / gettree /
//     getstats as JSON over a local loopback HTTP socket per node
//     (yggdrasil's src/admin is the exemplar), plus an in-process Hub
//     for tests and certification.
//   - a topology crawler (crawl.go): reconstructs the global tree by
//     walking the live cluster hop-by-hop through the admin API alone —
//     the first component that observes the system the way a real
//     operator would, with no access to the coordinator's mirror.
package ops

import (
	"fmt"
	"io"
	"maps"
	"math"
	"net/http"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels are constant key=value pairs attached to a metric at
// registration. Rendered sorted by key, so exposition is deterministic.
type Labels map[string]string

func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := slices.Sorted(maps.Keys(l))
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", k, escapeLabel(l[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double-quote, and line-feed become \\, \", and \n. (Go's
// %q is close but not conformant — it also escapes non-ASCII and
// control bytes with Go-only sequences like \xNN that Prometheus
// parsers reject.)
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes HELP text per the text format: only backslash and
// line-feed (quotes are legal there).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// collector is one registered metric instance (a single label set of a
// family). expose writes exposition lines; sample fills the snapshot.
type collector interface {
	expose(w io.Writer, name string)
	sample(into map[string]float64, name string)
}

// family groups every instance sharing a metric name under one
// HELP/TYPE pair, as the text format requires.
type family struct {
	name, help, typ string
	instances       []collector
	labelSets       map[string]bool
}

// Registry holds metrics and renders them in the Prometheus text
// exposition format. All value updates are atomic: scraping a registry
// while the cluster's hot paths increment it is race-free by
// construction.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register attaches one instance to its family, enforcing consistent
// HELP/TYPE and unique label sets per name.
func (r *Registry) register(name, help, typ string, labels Labels, c collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, labelSets: make(map[string]bool)}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("ops: metric %s re-registered as %s (was %s)", name, typ, f.typ))
	}
	ls := labels.render()
	if f.labelSets[ls] {
		panic(fmt.Sprintf("ops: duplicate metric %s%s", name, ls))
	}
	f.labelSets[ls] = true
	f.instances = append(f.instances, c)
}

// Counter is a monotonically increasing integer metric. Updates are
// atomic; safe from any goroutine.
type Counter struct {
	labels string
	v      atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) expose(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, c.labels, c.v.Load())
}

func (c *Counter) sample(into map[string]float64, name string) {
	into[name+c.labels] = float64(c.v.Load())
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{labels: labels.render()}
	r.register(name, help, "counter", labels, c)
	return c
}

// Gauge is a settable integer metric. Updates are atomic.
type Gauge struct {
	labels string
	v      atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) expose(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, g.labels, g.v.Load())
}

func (g *Gauge) sample(into map[string]float64, name string) {
	into[name+g.labels] = float64(g.v.Load())
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{labels: labels.render()}
	r.register(name, help, "gauge", labels, g)
	return g
}

// funcMetric reads its value at scrape time — the seam for exposing
// state that already has its own synchronized home (transport stats
// under a mutex, per-node atomic counters summed on demand) without
// double-counting increments through the hot path.
type funcMetric struct {
	labels string
	fn     func() float64
}

func (m *funcMetric) expose(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %s\n", name, m.labels, formatValue(m.fn()))
}

func (m *funcMetric) sample(into map[string]float64, name string) {
	into[name+m.labels] = m.fn()
}

// CounterFunc registers a counter whose value is read by fn at scrape
// time. fn must be safe to call from any goroutine.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "counter", labels, &funcMetric{labels: labels.render(), fn: fn})
}

// GaugeFunc registers a gauge whose value is read by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "gauge", labels, &funcMetric{labels: labels.render(), fn: fn})
}

// Histogram is a fixed-bucket histogram with atomic updates.
type Histogram struct {
	labels  string
	bounds  []float64 // ascending upper bounds; +Inf implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.counts[len(h.bounds)].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// bucketLabels merges the le label into the instance labels.
func (h *Histogram) bucketLabels(le string) string {
	if h.labels == "" {
		return `{le="` + escapeLabel(le) + `"}`
	}
	return h.labels[:len(h.labels)-1] + `,le="` + escapeLabel(le) + `"}`
}

func (h *Histogram) expose(w io.Writer, name string) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, h.bucketLabels(formatValue(b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, h.bucketLabels("+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, h.labels, formatValue(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, h.labels, h.count.Load())
}

func (h *Histogram) sample(into map[string]float64, name string) {
	into[name+"_count"+h.labels] = float64(h.count.Load())
	into[name+"_sum"+h.labels] = h.Sum()
}

// Histogram registers and returns a histogram over the given ascending
// upper bucket bounds (a +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("ops: histogram %s bounds not ascending: %v", name, bounds))
	}
	h := &Histogram{labels: labels.render(), bounds: slices.Clone(bounds)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	r.register(name, help, "histogram", labels, h)
	return h
}

// formatValue renders a float the way Prometheus expects (integers
// without a trailing .0, +Inf spelled out).
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// WritePrometheus renders every registered metric in the text
// exposition format, families in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, c := range f.instances {
			c.expose(w, f.name)
		}
	}
}

// Snapshot returns every metric as name{labels} → value — the struct-
// free scrape for benches and tests. Histograms contribute _count and
// _sum entries.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for _, name := range r.order {
		f := r.families[name]
		for _, c := range f.instances {
			c.sample(out, f.name)
		}
	}
	return out
}

// Handler serves the registry at any path — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
