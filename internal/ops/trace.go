package ops

import (
	"fmt"

	"silentspan/internal/graph"
	"silentspan/internal/trace"
)

// Trace collection over the admin plane: crawl the cluster hop-by-hop
// (no coordinator), fetch every visited node's flight-recorder ring
// via gettrace, and stitch the rings into one happens-before DAG with
// trace.Merge — the sstrace CLI's engine and the certification
// campaigns' trace-invariant input.

// TraceClient is a Client that can also fetch a node's flight-recorder
// ring.
type TraceClient interface {
	Client
	Trace(id graph.NodeID) (TraceInfo, error)
}

// Trace implements TraceClient.
func (h *Hub) Trace(id graph.NodeID) (TraceInfo, error) {
	a, err := h.get(id)
	if err != nil {
		return TraceInfo{}, err
	}
	return a.AdminTrace(), nil
}

// Trace implements TraceClient over the loopback admin sockets.
func (c *HTTPClient) Trace(id graph.NodeID) (TraceInfo, error) {
	addr, err := c.addrOf(id)
	if err != nil {
		return TraceInfo{}, err
	}
	var info TraceInfo
	err = c.getJSON(addr, "/gettrace", &info)
	return info, err
}

// MergeTraces crawls the cluster from start, fetches every visited
// node's ring, and merges them into one causally ordered trace. Nodes
// whose gettrace fails land in the crawl report's Errors map (their
// events are simply absent); the crawl report is returned alongside so
// callers can see coverage. It fails only when the crawl itself cannot
// start or when no visited node has the recorder enabled.
func MergeTraces(c TraceClient, start graph.NodeID) (*trace.Merged, *CrawlReport, error) {
	rep, err := Crawl(c, start)
	if err != nil {
		return nil, rep, err
	}
	var traces []trace.NodeTrace
	enabled := 0
	for id := range rep.Nodes {
		info, err := c.Trace(id)
		if err != nil {
			if rep.Errors == nil {
				rep.Errors = make(map[graph.NodeID]string)
			}
			rep.Errors[id] = err.Error()
			continue
		}
		if !info.Enabled {
			continue
		}
		enabled++
		traces = append(traces, trace.NodeTrace{Node: info.Node, Dropped: info.Dropped, Events: info.Events})
	}
	if enabled == 0 {
		return nil, rep, fmt.Errorf("ops: no visited node has the flight recorder enabled")
	}
	return trace.Merge(traces), rep, nil
}

// MergeTracesAddr is MergeTraces seeded with one admin address — the
// operator's entry point.
func MergeTracesAddr(c *HTTPClient, seedAddr string) (*trace.Merged, *CrawlReport, error) {
	self, err := c.SelfAt(seedAddr)
	if err != nil {
		return nil, nil, err
	}
	return MergeTraces(c, self.ID)
}
