package ops

import (
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"net/http"
	"slices"
	"sync"
	"time"

	"silentspan/internal/graph"
)

// Client is what the crawler needs from the admin plane: per-node
// getself and getpeers. Implementations must return promptly —
// unreachable nodes are reported, never waited on forever.
type Client interface {
	Self(id graph.NodeID) (SelfInfo, error)
	Peers(id graph.NodeID) (PeersInfo, error)
}

// Hub is the in-process admin client: a registry of NodeAdmin handles,
// one per live node. Tests and the certification campaigns crawl
// through it without sockets; removing a node simulates a partitioned
// or dead admin endpoint.
type Hub struct {
	mu     sync.RWMutex
	admins map[graph.NodeID]NodeAdmin
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{admins: make(map[graph.NodeID]NodeAdmin)}
}

// Register attaches a node's admin handle.
func (h *Hub) Register(id graph.NodeID, a NodeAdmin) {
	h.mu.Lock()
	h.admins[id] = a
	h.mu.Unlock()
}

// Remove detaches a node — subsequent calls for it fail, as a dead
// admin endpoint would.
func (h *Hub) Remove(id graph.NodeID) {
	h.mu.Lock()
	delete(h.admins, id)
	h.mu.Unlock()
}

func (h *Hub) get(id graph.NodeID) (NodeAdmin, error) {
	h.mu.RLock()
	a := h.admins[id]
	h.mu.RUnlock()
	if a == nil {
		return nil, fmt.Errorf("ops: node %d unreachable", id)
	}
	return a, nil
}

// Self implements Client.
func (h *Hub) Self(id graph.NodeID) (SelfInfo, error) {
	a, err := h.get(id)
	if err != nil {
		return SelfInfo{}, err
	}
	return a.AdminSelf(), nil
}

// Peers implements Client.
func (h *Hub) Peers(id graph.NodeID) (PeersInfo, error) {
	a, err := h.get(id)
	if err != nil {
		return PeersInfo{}, err
	}
	return a.AdminPeers(), nil
}

// HTTPClient crawls over the loopback admin sockets. It learns the
// id→address directory as it goes: seed it with one node's address
// (Seed or SelfAt), and every getpeers response teaches it the
// addresses of the peers — hop-by-hop discovery with no coordinator.
type HTTPClient struct {
	hc *http.Client

	mu    sync.Mutex
	addrs map[graph.NodeID]string
}

// NewHTTPClient returns a client with the given per-request timeout
// (default 5s) — the no-hang guarantee on partitioned clusters.
func NewHTTPClient(timeout time.Duration) *HTTPClient {
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	return &HTTPClient{
		hc:    &http.Client{Timeout: timeout},
		addrs: make(map[graph.NodeID]string),
	}
}

// Seed teaches the client one node's admin address.
func (c *HTTPClient) Seed(id graph.NodeID, addr string) {
	c.mu.Lock()
	c.addrs[id] = addr
	c.mu.Unlock()
}

// SelfAt fetches getself from an admin address directly and learns the
// binding — the crawl entry point when only an address is known.
func (c *HTTPClient) SelfAt(addr string) (SelfInfo, error) {
	var info SelfInfo
	if err := c.getJSON(addr, "/getself", &info); err != nil {
		return info, err
	}
	c.Seed(info.ID, addr)
	return info, nil
}

func (c *HTTPClient) addrOf(id graph.NodeID) (string, error) {
	c.mu.Lock()
	addr := c.addrs[id]
	c.mu.Unlock()
	if addr == "" {
		return "", fmt.Errorf("ops: no admin address known for node %d", id)
	}
	return addr, nil
}

func (c *HTTPClient) getJSON(addr, path string, into any) error {
	resp, err := c.hc.Get("http://" + addr + path)
	if err != nil {
		return fmt.Errorf("ops: %s%s: %w", addr, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("ops: %s%s: HTTP %d", addr, path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// Self implements Client.
func (c *HTTPClient) Self(id graph.NodeID) (SelfInfo, error) {
	addr, err := c.addrOf(id)
	if err != nil {
		return SelfInfo{}, err
	}
	var info SelfInfo
	err = c.getJSON(addr, "/getself", &info)
	return info, err
}

// Peers implements Client, learning every peer's admin address from
// the response.
func (c *HTTPClient) Peers(id graph.NodeID) (PeersInfo, error) {
	addr, err := c.addrOf(id)
	if err != nil {
		return PeersInfo{}, err
	}
	var info PeersInfo
	if err := c.getJSON(addr, "/getpeers", &info); err != nil {
		return PeersInfo{}, err
	}
	for _, p := range info.Peers {
		if p.AdminAddr != "" {
			c.Seed(p.ID, p.AdminAddr)
		}
	}
	return info, nil
}

// CrawlReport is a reconstructed view of the cluster, assembled from
// admin responses alone.
type CrawlReport struct {
	// Start is the crawl's entry node.
	Start graph.NodeID `json:"start"`
	// Nodes holds every successfully visited node's getself response,
	// keyed by identity.
	Nodes map[graph.NodeID]SelfInfo `json:"nodes"`
	// Peers holds each visited node's neighbor list — the discovered
	// communication graph.
	Peers map[graph.NodeID][]graph.NodeID `json:"peers"`
	// Errors maps nodes that were discovered but could not be queried
	// (dead or partitioned admin endpoints) to the failure.
	Errors map[graph.NodeID]string `json:"errors,omitempty"`
}

// Visited returns the number of successfully queried nodes.
func (r *CrawlReport) Visited() int { return len(r.Nodes) }

// Parents returns the crawled parent map (None for roots).
func (r *CrawlReport) Parents() map[graph.NodeID]graph.NodeID {
	out := make(map[graph.NodeID]graph.NodeID, len(r.Nodes))
	for id, info := range r.Nodes {
		out[id] = info.Parent
	}
	return out
}

// Roots returns the visited nodes with no parent, ascending.
func (r *CrawlReport) Roots() []graph.NodeID {
	var roots []graph.NodeID
	for id, info := range r.Nodes {
		if info.Parent == None {
			roots = append(roots, id)
		}
	}
	slices.Sort(roots)
	return roots
}

// Edges returns the crawled tree edges as sorted (child, parent) pairs.
func (r *CrawlReport) Edges() [][2]graph.NodeID {
	var edges [][2]graph.NodeID
	for id, info := range r.Nodes {
		if info.Parent != None {
			edges = append(edges, [2]graph.NodeID{id, info.Parent})
		}
	}
	slices.SortFunc(edges, func(a, b [2]graph.NodeID) int {
		if a[0] != b[0] {
			return int(a[0] - b[0])
		}
		return int(a[1] - b[1])
	})
	return edges
}

// DiffParents compares the crawled tree edge-by-edge against an
// expected parent map (None for roots) and returns human-readable
// divergences: missing nodes, extra nodes, and parent mismatches.
// Empty means the crawl reconstructed exactly the expected tree.
func (r *CrawlReport) DiffParents(want map[graph.NodeID]graph.NodeID) []string {
	var diffs []string
	ids := slices.Sorted(maps.Keys(want))
	for _, id := range ids {
		got, ok := r.Nodes[id]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("node %d: expected but not crawled", id))
			continue
		}
		if got.Parent != want[id] {
			diffs = append(diffs, fmt.Sprintf("node %d: crawled parent %d, mirror says %d", id, got.Parent, want[id]))
		}
	}
	crawled := slices.Sorted(maps.Keys(r.Nodes))
	for _, id := range crawled {
		if _, ok := want[id]; !ok {
			diffs = append(diffs, fmt.Sprintf("node %d: crawled but not in the mirror", id))
		}
	}
	return diffs
}

// Crawl walks the cluster hop-by-hop from start: query getself and
// getpeers, enqueue every newly discovered peer, repeat. It visits
// exactly the component reachable through live admin endpoints —
// unreachable nodes land in Errors and their neighborhoods stay
// unexplored, so a partitioned cluster yields a partial (never hung)
// report. The coordinator is never consulted.
func Crawl(c Client, start graph.NodeID) (*CrawlReport, error) {
	rep := &CrawlReport{
		Start: start,
		Nodes: make(map[graph.NodeID]SelfInfo),
		Peers: make(map[graph.NodeID][]graph.NodeID),
	}
	seen := map[graph.NodeID]bool{start: true}
	queue := []graph.NodeID{start}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		self, err := c.Self(id)
		if err != nil {
			if id == start {
				return rep, fmt.Errorf("ops: crawl start %d: %w", start, err)
			}
			if rep.Errors == nil {
				rep.Errors = make(map[graph.NodeID]string)
			}
			rep.Errors[id] = err.Error()
			continue
		}
		peers, err := c.Peers(id)
		if err != nil {
			if rep.Errors == nil {
				rep.Errors = make(map[graph.NodeID]string)
			}
			rep.Errors[id] = err.Error()
			continue
		}
		rep.Nodes[id] = self
		ps := make([]graph.NodeID, 0, len(peers.Peers))
		for _, p := range peers.Peers {
			ps = append(ps, p.ID)
			if !seen[p.ID] {
				seen[p.ID] = true
				queue = append(queue, p.ID)
			}
		}
		rep.Peers[id] = ps
	}
	return rep, nil
}

// CrawlAddr crawls over HTTP starting from one admin address — the
// operator's entry point: any node's socket reconstructs the whole
// reachable cluster.
func CrawlAddr(c *HTTPClient, seedAddr string) (*CrawlReport, error) {
	self, err := c.SelfAt(seedAddr)
	if err != nil {
		return nil, err
	}
	return Crawl(c, self.ID)
}
