package trace

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"

	"silentspan/internal/graph"
)

// NodeTrace is one node's collected ring: the input unit of Merge.
type NodeTrace struct {
	Node    graph.NodeID `json:"node"`
	Dropped uint64       `json:"dropped"`
	Events  []Event      `json:"events"`
}

// edgeKey names a frame for causal stitching: the sender, the sequence
// value the frame carries, its class, and — for data frames, whose
// "seq" is the packet id shared by every hop — the hop count.
type edgeKey struct {
	node  graph.NodeID
	seq   uint64
	class Class
	hop   uint64
}

func txKey(e Event) (edgeKey, bool) {
	switch e.Kind {
	case FrameTx:
		return edgeKey{node: e.Node, seq: e.Seq, class: e.Class}, true
	case PacketFwd:
		return edgeKey{node: e.Node, seq: e.Seq, class: ClassData, hop: e.Arg}, true
	}
	return edgeKey{}, false
}

func rxKey(e Event) (edgeKey, bool) {
	switch e.Kind {
	case FrameRx:
		return edgeKey{node: e.Peer, seq: e.Seq, class: e.Class}, true
	case PacketRx, PacketDeliver:
		if e.Peer == 0 {
			return edgeKey{}, false // self-delivery: program order suffices
		}
		return edgeKey{node: e.Peer, seq: e.Seq, class: ClassData, hop: e.Arg}, true
	}
	return edgeKey{}, false
}

// Merged is a cluster-wide happens-before DAG over the collected rings,
// topologically ordered by (epoch, tick, wall).
type Merged struct {
	// Events is the merged stream in causal order: every event appears
	// after all its causes (program-order predecessors and the matched
	// frame transmission for receive events).
	Events []Event
	// Dropped sums ring overwrites across all inputs — nonzero means
	// the causal past may be incomplete and checks can false-positive.
	Dropped uint64
	// Rings is the number of per-node traces merged; FrameEdges the
	// number of cross-node tx→rx edges stitched.
	Rings      int
	FrameEdges int

	// preds holds each ordered event's causal predecessors as indices
	// into Events — the reverse-reachability adjacency the invariant
	// checks walk.
	preds [][]int32
}

// eventHeap pops the ready event with the least (epoch, tick, wall,
// node) — the deterministic tie-break that turns the partial order into
// one canonical timeline.
type eventHeap struct {
	idx []int32
	ev  []Event
}

func (h *eventHeap) Len() int { return len(h.idx) }
func (h *eventHeap) Less(i, j int) bool {
	a, b := h.ev[h.idx[i]], h.ev[h.idx[j]]
	if a.Epoch != b.Epoch {
		return a.Epoch < b.Epoch
	}
	if a.Tick != b.Tick {
		return a.Tick < b.Tick
	}
	if a.Wall != b.Wall {
		return a.Wall < b.Wall
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return h.idx[i] < h.idx[j]
}
func (h *eventHeap) Swap(i, j int) { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *eventHeap) Push(x any)    { h.idx = append(h.idx, x.(int32)) }
func (h *eventHeap) Pop() any      { x := h.idx[len(h.idx)-1]; h.idx = h.idx[:len(h.idx)-1]; return x }
func (h *eventHeap) push(i int32)  { heap.Push(h, i) }
func (h *eventHeap) pop() int32    { return heap.Pop(h).(int32) }

// Merge stitches per-node rings into one happens-before DAG and
// linearizes it. Edges are (a) program order within each ring and (b)
// frame edges: each receive event is matched to the FIRST transmission
// carrying its (sender, seq, class[, hop]) key — sound under seq reuse
// and frame duplication, because the first transmission precedes every
// later one in the sender's program order, hence precedes the true
// cause of the reception.
func Merge(traces []NodeTrace) *Merged {
	m := &Merged{Rings: len(traces)}
	total := 0
	for _, t := range traces {
		total += len(t.Events)
		m.Dropped += t.Dropped
	}
	flat := make([]Event, 0, total)
	preds := make([][]int32, total)
	indeg := make([]int32, total)
	succs := make([][]int32, total)
	addEdge := func(u, v int32) {
		preds[v] = append(preds[v], u)
		succs[u] = append(succs[u], v)
		indeg[v]++
	}
	// Program order: consecutive events of one ring.
	for _, t := range traces {
		base := int32(len(flat))
		flat = append(flat, t.Events...)
		for i := 1; i < len(t.Events); i++ {
			addEdge(base+int32(i)-1, base+int32(i))
		}
	}
	// Frame edges: first tx wins per key.
	firstTx := make(map[edgeKey]int32, total/2)
	for i, e := range flat {
		if k, ok := txKey(e); ok {
			if _, seen := firstTx[k]; !seen {
				firstTx[k] = int32(i)
			}
		}
	}
	for i, e := range flat {
		k, ok := rxKey(e)
		if !ok {
			continue
		}
		if tx, seen := firstTx[k]; seen && tx != int32(i) {
			addEdge(tx, int32(i))
			m.FrameEdges++
		}
	}
	// Kahn's algorithm with the (epoch, tick) heap.
	h := &eventHeap{ev: flat, idx: make([]int32, 0, 64)}
	for i := range flat {
		if indeg[i] == 0 {
			h.push(int32(i))
		}
	}
	order := make([]int32, 0, total)
	for h.Len() > 0 {
		u := h.pop()
		order = append(order, u)
		for _, v := range succs[u] {
			if indeg[v]--; indeg[v] == 0 {
				h.push(v)
			}
		}
	}
	// A cycle cannot arise from sound happens-before edges; if damaged
	// input produces one, the stragglers are appended in time order so
	// the merge still terminates with every event present.
	if len(order) < total {
		var rest []int32
		for i := range flat {
			if indeg[i] > 0 {
				rest = append(rest, int32(i))
			}
		}
		sort.Slice(rest, func(a, b int) bool {
			x, y := flat[rest[a]], flat[rest[b]]
			if x.Epoch != y.Epoch {
				return x.Epoch < y.Epoch
			}
			return x.Tick < y.Tick
		})
		order = append(order, rest...)
	}
	// Publish in causal order, remapping the adjacency to ordered slots.
	rank := make([]int32, total)
	for pos, i := range order {
		rank[i] = int32(pos)
	}
	m.Events = make([]Event, total)
	m.preds = make([][]int32, total)
	for pos, i := range order {
		m.Events[pos] = flat[i]
		ps := preds[i]
		out := make([]int32, len(ps))
		for j, p := range ps {
			out[j] = rank[p]
		}
		m.preds[pos] = out
	}
	return m
}

// causalPast marks every ordered index reachable backwards from start
// (inclusive) and calls visit for each.
func (m *Merged) causalPast(start int, visit func(int)) {
	seen := make([]bool, len(m.Events))
	stack := []int32{int32(start)}
	seen[start] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visit(int(u))
		for _, p := range m.preds[u] {
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
}

// LatestAnnounce returns the causally latest announcement event, if any.
func (m *Merged) LatestAnnounce() (Event, bool) {
	for i := len(m.Events) - 1; i >= 0; i-- {
		if m.Events[i].Kind == Announce {
			return m.Events[i], true
		}
	}
	return Event{}, false
}

// CheckAnnounceCoverage verifies the detector's headline claim against
// the recorded causality: every Announce event covering c nodes at
// epoch e must have, in its causal past, subtree-quiet reports at epoch
// e from at least c distinct nodes (the announcing root's own claim
// included). A violation means a root announced silence it could not
// causally have learned — the strictly-stronger form of the cert's
// quiet checks. Returns human-readable violations; empty means pass.
func (m *Merged) CheckAnnounceCoverage() []string {
	var bad []string
	for i, e := range m.Events {
		if e.Kind != Announce {
			continue
		}
		if v := m.announceCoverage(i); v != "" {
			bad = append(bad, v)
		}
	}
	return bad
}

// CheckLatestAnnounceCoverage checks only the causally latest
// announcement — the sound form for live collections. The admin plane
// serves live members' rings only, so after churn a historical
// announcement can under-count through no fault of the detector: the
// subtree-quiet reports backing it departed with their nodes. The
// latest announcement's causal support is current members only, so it
// stays checkable from any crawl. Complete collections (departed
// rings included, as the certification campaigns gather) should use
// CheckAnnounceCoverage, which audits the whole history.
func (m *Merged) CheckLatestAnnounceCoverage() []string {
	for i := len(m.Events) - 1; i >= 0; i-- {
		if m.Events[i].Kind != Announce {
			continue
		}
		if v := m.announceCoverage(i); v != "" {
			return []string{v}
		}
		return nil
	}
	return nil
}

// announceCoverage audits the announce event at ordered index i: its
// causal past must hold subtree-quiet reports at the announced epoch
// from at least the claimed number of distinct nodes. Empty means the
// claim is covered.
func (m *Merged) announceCoverage(i int) string {
	e := m.Events[i]
	nodes := make(map[graph.NodeID]bool)
	m.causalPast(i, func(j int) {
		ev := m.Events[j]
		if ev.Kind == QuietReport && ev.Epoch == e.Epoch && ev.Arg&1 == 1 {
			nodes[ev.Node] = true
		}
	})
	nodes[e.Node] = true
	if uint64(len(nodes)) < e.Arg {
		return fmt.Sprintf(
			"announce by node %d at epoch %d claims %d nodes quiet but only %d subtree-quiet reports at that epoch are in its causal past",
			e.Node, e.Epoch, e.Arg, len(nodes))
	}
	return ""
}

// packetHop is one (forwarder → receiver) possession transfer.
type packetHop struct{ from, to graph.NodeID }

// CheckPacketChains verifies that every delivered packet's recorded hop
// trail is contiguous: hop k was forwarded by a node that legitimately
// held the packet after k−1 hops and received by the node that forwards
// (or delivers) hop k — from launch at the origin to delivery at the
// destination, with no gaps. Duplicated frames only add alternative
// links; a missing link means the trail (and the hop accounting built
// on it) cannot be trusted. Returns violations; empty means pass.
func (m *Merged) CheckPacketChains() []string {
	type packet struct {
		origin   graph.NodeID
		launched bool
		fwd      map[uint64][]packetHop // hop → (forwarder, next)
		rx       map[uint64]map[packetHop]bool
		delivers []Event
	}
	pkts := make(map[uint64]*packet)
	get := func(id uint64) *packet {
		p := pkts[id]
		if p == nil {
			p = &packet{fwd: make(map[uint64][]packetHop), rx: make(map[uint64]map[packetHop]bool)}
			pkts[id] = p
		}
		return p
	}
	for _, e := range m.Events {
		switch e.Kind {
		case PacketLaunch:
			p := get(e.Seq)
			if !p.launched {
				p.launched, p.origin = true, e.Node
			}
		case PacketFwd:
			p := get(e.Seq)
			p.fwd[e.Arg] = append(p.fwd[e.Arg], packetHop{from: e.Node, to: e.Peer})
		case PacketRx, PacketDeliver:
			p := get(e.Seq)
			if e.Peer != 0 {
				if p.rx[e.Arg] == nil {
					p.rx[e.Arg] = make(map[packetHop]bool)
				}
				p.rx[e.Arg][packetHop{from: e.Peer, to: e.Node}] = true
			}
			if e.Kind == PacketDeliver {
				p.delivers = append(p.delivers, e)
			}
		}
	}
	ids := make([]uint64, 0, len(pkts))
	for id := range pkts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var bad []string
	for _, id := range ids {
		p := pkts[id]
		if len(p.delivers) == 0 {
			continue // undelivered packets are legal casualties
		}
		if !p.launched {
			bad = append(bad, fmt.Sprintf("packet %d delivered but its launch was never recorded", id))
			continue
		}
		// holders[k] = nodes that legitimately possess the packet after
		// k hops: reached by a forward from a holder at k−1 that the
		// receiver actually recorded.
		maxH := uint64(0)
		for _, d := range p.delivers {
			maxH = max(maxH, d.Arg)
		}
		holdersAt := make([]map[graph.NodeID]bool, maxH+1)
		holdersAt[0] = map[graph.NodeID]bool{p.origin: true}
		for k := uint64(1); k <= maxH; k++ {
			next := make(map[graph.NodeID]bool)
			for _, hop := range p.fwd[k] {
				if holdersAt[k-1][hop.from] && p.rx[k][hop] {
					next[hop.to] = true
				}
			}
			holdersAt[k] = next
		}
		for _, d := range p.delivers {
			switch {
			case d.Arg == 0:
				if d.Node != p.origin {
					bad = append(bad, fmt.Sprintf(
						"packet %d delivered at node %d with 0 hops but was launched at node %d",
						id, d.Node, p.origin))
				}
			case !holdersAt[d.Arg][d.Node]:
				bad = append(bad, fmt.Sprintf(
					"packet %d delivered at node %d after %d hops without a contiguous hop chain from origin %d",
					id, d.Node, d.Arg, p.origin))
			}
		}
	}
	return bad
}

// describe renders one event as a timeline line body.
func describe(e Event) string {
	switch e.Kind {
	case FrameTx:
		return fmt.Sprintf("tx %s seq=%d", e.Class, e.Seq)
	case FrameRx:
		return fmt.Sprintf("rx %s from %d seq=%d", e.Class, e.Peer, e.Seq)
	case RegWrite:
		return "register write"
	case Admit:
		return "admitted to cluster"
	case Retire:
		if e.Arg == 1 {
			return "left cluster (goodbye)"
		}
		return "crashed out of cluster"
	case QuietReport:
		return fmt.Sprintf("quiet-report sub=%v count=%d", e.Arg&1 == 1, e.Arg>>1)
	case Announce:
		return fmt.Sprintf("ANNOUNCE cluster quiet: epoch=%d covers=%d", e.Epoch, e.Arg)
	case Retract:
		return "announcement retracted"
	case PacketLaunch:
		return fmt.Sprintf("packet %d launched", e.Seq)
	case PacketFwd:
		return fmt.Sprintf("packet %d fwd hop=%d to %d", e.Seq, e.Arg, e.Peer)
	case PacketRx:
		return fmt.Sprintf("packet %d rx hop=%d from %d", e.Seq, e.Arg, e.Peer)
	case PacketDeliver:
		return fmt.Sprintf("packet %d DELIVERED hops=%d", e.Seq, e.Arg)
	case PacketDrop:
		return fmt.Sprintf("packet %d dropped hop=%d", e.Seq, e.Arg)
	}
	return e.Kind.String()
}

// Timeline renders the merged stream as one human-readable line per
// event, in causal order.
func (m *Merged) Timeline() string {
	var b strings.Builder
	for _, e := range m.Events {
		fmt.Fprintf(&b, "[ep %-4d t %-6d] node %-4d %s\n", e.Epoch, e.Tick, e.Node, describe(e))
	}
	return b.String()
}

// ChromeTrace renders the merged stream in the Chrome trace_event JSON
// format (load via chrome://tracing or Perfetto): one instant event per
// record with pid = node id, plus flow arrows for every stitched
// frame edge. Timestamps come from the wall clock when present,
// otherwise from ticks.
func (m *Merged) ChromeTrace() []byte {
	minWall := int64(0)
	for _, e := range m.Events {
		if e.Wall != 0 && (minWall == 0 || e.Wall < minWall) {
			minWall = e.Wall
		}
	}
	ts := func(e Event) int64 {
		if e.Wall != 0 {
			return (e.Wall - minWall) / 1000 // ns → µs
		}
		return int64(e.Tick) * 1000
	}
	var b strings.Builder
	b.WriteString(`{"traceEvents":[`)
	first := true
	emit := func(format string, args ...any) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, format, args...)
	}
	for i, e := range m.Events {
		emit(`{"name":%q,"cat":"silentspan","ph":"X","ts":%d,"dur":1,"pid":%d,"tid":1,"args":{"epoch":%d,"tick":%d,"seq":%d,"arg":%d,"peer":%d,"order":%d}}`,
			describe(e), ts(e), e.Node, e.Epoch, e.Tick, e.Seq, e.Arg, e.Peer, i)
	}
	// Flow arrows: one s/f pair per stitched frame edge.
	edge := 0
	for v, ps := range m.preds {
		rv := m.Events[v]
		if _, isRx := rxKey(rv); !isRx {
			continue
		}
		for _, u := range ps {
			tu := m.Events[u]
			if tu.Node == rv.Node {
				continue // program-order predecessor, not a frame edge
			}
			edge++
			emit(`{"name":"frame","cat":"flow","ph":"s","id":%d,"ts":%d,"pid":%d,"tid":1}`,
				edge, ts(tu), tu.Node)
			emit(`{"name":"frame","cat":"flow","ph":"f","bp":"e","id":%d,"ts":%d,"pid":%d,"tid":1}`,
				edge, ts(rv), rv.Node)
		}
	}
	b.WriteString(`]}`)
	return []byte(b.String())
}
