// Package trace is the cluster's causal flight recorder: a fixed-size,
// allocation-free per-node event ring plus a merge layer that stitches
// the rings of a whole cluster into one happens-before DAG.
//
// Every event carries the node's Lamport write epoch (the termination
// detector's clock, DESIGN.md §13) plus the local tick and a wall-clock
// stamp. Receive events reference the sender's (src, seq) already
// present on every wire frame, so cross-node causal edges come for free
// with zero wire-format changes: a frame's transmission event and its
// reception events share the (sender, seq, class) key, and first-tx →
// rx is a sound happens-before edge even when a seq value is reused
// (resync frames borrow the receiver's anchor seq; duplicated frames
// land twice), because the first transmission precedes every later one
// in the sender's own program order.
//
// The recorder is built for always-on use: Record is one mutex, one
// slot write, no allocation; a full ring overwrites its oldest event
// and counts the drop. The disabled path — a nil ring behind an atomic
// pointer — costs one predictable branch per hook.
package trace

import (
	"encoding/json"
	"fmt"
	"sync"

	"silentspan/internal/graph"
)

// Kind enumerates the recorded event types.
type Kind uint8

const (
	// FrameTx is a protocol-frame broadcast or send (heartbeat, delta,
	// resync, advert, leave — see Class). Seq is the sequence number the
	// frame carries.
	FrameTx Kind = iota + 1
	// FrameRx is an accepted protocol frame. Peer is the sender, Seq the
	// frame's sequence number — together with Class they name the
	// matching FrameTx.
	FrameRx
	// RegWrite is a register write (δ-driven or out-of-band). Epoch is
	// the write epoch after the bump that this write will cause.
	RegWrite
	// Admit marks this node joining the running cluster.
	Admit
	// Retire marks this node leaving the cluster. Arg is 1 for a
	// cooperative leave (goodbye broadcast), 0 for a crash.
	Retire
	// QuietReport is a transition of the node's outgoing termination-
	// detector report. Arg packs the claim: count<<1 | sub. Epoch is the
	// epoch the claim is made at; Peer the node's current parent (or 0).
	QuietReport
	// Announce marks a tree root firing the cluster-quiet announcement.
	// Epoch is the announced epoch; Arg the number of nodes the claim
	// covers.
	Announce
	// Retract marks a root withdrawing its announcement.
	Retract
	// PacketLaunch is a routed packet injected at this node (the
	// gateway's entry). Seq is the packet id.
	PacketLaunch
	// PacketFwd is a routed packet forwarded one hop as a data frame.
	// Seq is the packet id, Arg the hop count the frame carries, Peer
	// the next-hop node.
	PacketFwd
	// PacketRx is a data frame accepted (parked) at a transit node. Seq
	// is the packet id, Arg the hop count, Peer the forwarding node.
	PacketRx
	// PacketDeliver is a packet reaching its destination. Seq is the
	// packet id, Arg the final hop count, Peer the last-hop forwarder
	// (0 for a self-delivery).
	PacketDeliver
	// PacketDrop is a packet dying at this node (hop or stall budget).
	PacketDrop
)

var kindNames = map[Kind]string{
	FrameTx: "frame_tx", FrameRx: "frame_rx", RegWrite: "reg_write",
	Admit: "admit", Retire: "retire",
	QuietReport: "quiet_report", Announce: "announce", Retract: "retract",
	PacketLaunch: "packet_launch", PacketFwd: "packet_fwd", PacketRx: "packet_rx",
	PacketDeliver: "packet_deliver", PacketDrop: "packet_drop",
}

var kindValues = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// String returns the kind's wire name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Class refines frame events by wire kind: heartbeat-family frames use
// the sender's own monotone sequence space, resync frames borrow the
// receiver's anchor seq, and data frames are keyed by packet id + hop —
// keeping the class in the causal match key prevents cross-space
// collisions.
type Class uint8

const (
	ClassNone Class = iota
	// ClassHeartbeat covers heartbeat and delta frames (one monotone seq
	// space per sender).
	ClassHeartbeat
	// ClassResync covers re-anchor requests (seq = the requester's last
	// accepted anchor seq — NOT the sender's own counter).
	ClassResync
	// ClassAdvert covers membership beacons.
	ClassAdvert
	// ClassLeave covers goodbye frames.
	ClassLeave
	// ClassData covers routed data frames (seq = packet id; the hop
	// count joins the match key).
	ClassData
)

var classNames = map[Class]string{
	ClassHeartbeat: "hb", ClassResync: "resync", ClassAdvert: "advert",
	ClassLeave: "leave", ClassData: "data",
}

var classValues = func() map[string]Class {
	m := make(map[string]Class, len(classNames))
	for c, n := range classNames {
		m[n] = c
	}
	return m
}()

// String returns the class's wire name ("" for ClassNone).
func (c Class) String() string { return classNames[c] }

// Event is one flight-recorder entry. The struct is fixed-size and
// holds no pointers, so a ring of them is one flat allocation.
type Event struct {
	Kind  Kind
	Class Class
	// Node is the recording node; Peer the event's counterparty (frame
	// sender for rx, next hop for forwards, parent for quiet reports).
	Node graph.NodeID
	Peer graph.NodeID
	// Seq is the frame sequence number or packet id; Arg the
	// kind-specific payload (hop count, packed quiet claim, coverage).
	Seq uint64
	Arg uint64
	// Epoch is the node's Lamport write epoch at record time; Tick its
	// local tick; Wall a wall-clock nanosecond stamp.
	Epoch uint64
	Tick  uint64
	Wall  int64
}

// eventJSON is the stable admin-plane shape: kinds and classes travel
// as names, zero-valued plumbing is elided.
type eventJSON struct {
	Kind  string       `json:"kind"`
	Class string       `json:"class,omitempty"`
	Node  graph.NodeID `json:"node"`
	Peer  graph.NodeID `json:"peer,omitempty"`
	Seq   uint64       `json:"seq,omitempty"`
	Arg   uint64       `json:"arg,omitempty"`
	Epoch uint64       `json:"epoch"`
	Tick  uint64       `json:"tick"`
	Wall  int64        `json:"wall,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{
		Kind: e.Kind.String(), Class: e.Class.String(),
		Node: e.Node, Peer: e.Peer, Seq: e.Seq, Arg: e.Arg,
		Epoch: e.Epoch, Tick: e.Tick, Wall: e.Wall,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *Event) UnmarshalJSON(data []byte) error {
	var j eventJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	k, ok := kindValues[j.Kind]
	if !ok {
		return fmt.Errorf("trace: unknown event kind %q", j.Kind)
	}
	cl := ClassNone
	if j.Class != "" {
		if cl, ok = classValues[j.Class]; !ok {
			return fmt.Errorf("trace: unknown frame class %q", j.Class)
		}
	}
	*e = Event{Kind: k, Class: cl, Node: j.Node, Peer: j.Peer,
		Seq: j.Seq, Arg: j.Arg, Epoch: j.Epoch, Tick: j.Tick, Wall: j.Wall}
	return nil
}

// Ring is a fixed-capacity event buffer: Record overwrites the oldest
// entry when full and counts the drop. One mutex guards it — Record is
// called from the owning node's goroutine while Snapshot reads from the
// admin plane, and the critical sections are a handful of word writes.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	head    int // next write slot
	n       int // live entries (≤ cap)
	dropped uint64
}

// NewRing returns a ring holding up to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when full. O(1), no
// allocation.
func (r *Ring) Record(ev Event) {
	r.mu.Lock()
	r.buf[r.head] = ev
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	if r.n < len(r.buf) {
		r.n++
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Snapshot appends the ring's events oldest-first to into and returns
// it together with the number of events dropped by overwrites so far.
func (r *Ring) Snapshot(into []Event) ([]Event, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := r.head - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		j := start + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		into = append(into, r.buf[j])
	}
	return into, r.dropped
}

// Len returns the number of live entries.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Dropped returns the number of events lost to overwrites.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
