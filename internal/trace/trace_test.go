package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: RegWrite, Node: 1, Tick: uint64(i)})
	}
	evs, dropped := r.Snapshot(nil)
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	for i, e := range evs {
		if want := uint64(6 + i); e.Tick != want {
			t.Fatalf("event %d has tick %d, want %d (oldest must be dropped first)", i, e.Tick, want)
		}
	}
	if r.Dropped() != 6 || r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("Dropped/Len/Cap = %d/%d/%d, want 6/4/4", r.Dropped(), r.Len(), r.Cap())
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 3; i++ {
		r.Record(Event{Kind: FrameTx, Tick: uint64(i)})
	}
	evs, dropped := r.Snapshot(nil)
	if len(evs) != 3 || dropped != 0 {
		t.Fatalf("got %d events / %d dropped, want 3 / 0", len(evs), dropped)
	}
	for i, e := range evs {
		if e.Tick != uint64(i) {
			t.Fatalf("event %d out of order: tick %d", i, e.Tick)
		}
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	r.Record(Event{Kind: Admit})
	if r.Cap() != 1 || r.Len() != 1 {
		t.Fatalf("Cap/Len = %d/%d, want 1/1", r.Cap(), r.Len())
	}
}

// TestRingConcurrentRecordDump exercises the record-while-dump path the
// admin plane takes against a live actor; run under -race.
func TestRingConcurrentRecordDump(t *testing.T) {
	r := NewRing(64)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
				r.Record(Event{Kind: FrameTx, Seq: uint64(i), Tick: uint64(i)})
			}
		}
	}()
	go func() {
		defer wg.Done()
		var buf []Event
		for i := 0; i < 200; i++ {
			evs, _ := r.Snapshot(buf[:0])
			buf = evs
			for j := 1; j < len(evs); j++ {
				if evs[j].Seq <= evs[j-1].Seq {
					t.Errorf("snapshot out of order at %d: %d after %d", j, evs[j].Seq, evs[j-1].Seq)
					return
				}
			}
		}
	}()
	for i := 0; i < 200; i++ {
		r.Dropped()
	}
	close(done)
	wg.Wait()
}

func TestEventJSONRoundtrip(t *testing.T) {
	events := []Event{
		{Kind: FrameTx, Class: ClassHeartbeat, Node: 3, Seq: 42, Epoch: 7, Tick: 100, Wall: 123456789},
		{Kind: FrameRx, Class: ClassResync, Node: 2, Peer: 3, Seq: 42, Epoch: 7, Tick: 101},
		{Kind: RegWrite, Node: 1, Epoch: 8, Tick: 50},
		{Kind: Admit, Node: 9},
		{Kind: Retire, Node: 9, Arg: 1},
		{Kind: QuietReport, Node: 4, Peer: 2, Arg: 6<<1 | 1, Epoch: 12, Tick: 400},
		{Kind: Announce, Node: 1, Arg: 6, Epoch: 12, Tick: 410},
		{Kind: Retract, Node: 1, Epoch: 13},
		{Kind: PacketLaunch, Node: 5, Seq: 77},
		{Kind: PacketFwd, Class: ClassData, Node: 5, Peer: 6, Seq: 77, Arg: 1},
		{Kind: PacketRx, Class: ClassData, Node: 6, Peer: 5, Seq: 77, Arg: 1},
		{Kind: PacketDeliver, Class: ClassData, Node: 7, Peer: 6, Seq: 77, Arg: 2},
		{Kind: PacketDrop, Node: 6, Seq: 78, Arg: 3},
	}
	for _, want := range events {
		data, err := json.Marshal(want)
		if err != nil {
			t.Fatalf("marshal %v: %v", want, err)
		}
		var got Event
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if got != want {
			t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v\njson %s", got, want, data)
		}
	}
}

func TestEventJSONRejectsUnknownKind(t *testing.T) {
	var e Event
	if err := json.Unmarshal([]byte(`{"kind":"bogus"}`), &e); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := json.Unmarshal([]byte(`{"kind":"frame_tx","class":"bogus"}`), &e); err == nil {
		t.Fatal("unknown class accepted")
	}
}

// TestMergeFrameEdgeOrders verifies a receive is ordered after its
// transmission even when local clocks disagree (the receiver's tick is
// behind the sender's).
func TestMergeFrameEdgeOrders(t *testing.T) {
	a := NodeTrace{Node: 1, Events: []Event{
		{Kind: FrameTx, Class: ClassHeartbeat, Node: 1, Seq: 5, Tick: 100},
	}}
	b := NodeTrace{Node: 2, Events: []Event{
		{Kind: FrameRx, Class: ClassHeartbeat, Node: 2, Peer: 1, Seq: 5, Tick: 3},
	}}
	m := Merge([]NodeTrace{a, b})
	if m.FrameEdges != 1 {
		t.Fatalf("FrameEdges = %d, want 1", m.FrameEdges)
	}
	if len(m.Events) != 2 || m.Events[0].Kind != FrameTx || m.Events[1].Kind != FrameRx {
		t.Fatalf("causal order violated: %+v", m.Events)
	}
}

// TestMergeFirstTxRule: reused seq values (resync frames borrow the
// receiver's anchor seq) must match the FIRST transmission, which is
// causally sound, and must not fail or cycle.
func TestMergeFirstTxRule(t *testing.T) {
	a := NodeTrace{Node: 1, Events: []Event{
		{Kind: FrameTx, Class: ClassResync, Node: 1, Peer: 2, Seq: 9, Tick: 10},
		{Kind: FrameTx, Class: ClassResync, Node: 1, Peer: 2, Seq: 9, Tick: 20},
	}}
	b := NodeTrace{Node: 2, Events: []Event{
		{Kind: FrameRx, Class: ClassResync, Node: 2, Peer: 1, Seq: 9, Tick: 25},
		{Kind: FrameRx, Class: ClassResync, Node: 2, Peer: 1, Seq: 9, Tick: 26},
	}}
	m := Merge([]NodeTrace{a, b})
	if m.FrameEdges != 2 {
		t.Fatalf("FrameEdges = %d, want 2 (both receptions matched to first tx)", m.FrameEdges)
	}
	if m.Events[0].Kind != FrameTx || m.Events[0].Tick != 10 {
		t.Fatalf("first event should be the first tx, got %+v", m.Events[0])
	}
}

// TestMergeClassSeparatesSeqSpaces: a resync whose borrowed seq value
// collides with a heartbeat seq from the same sender must not be
// stitched to the heartbeat transmission.
func TestMergeClassSeparatesSeqSpaces(t *testing.T) {
	a := NodeTrace{Node: 1, Events: []Event{
		{Kind: FrameTx, Class: ClassHeartbeat, Node: 1, Seq: 7, Tick: 50},
	}}
	b := NodeTrace{Node: 2, Events: []Event{
		{Kind: FrameRx, Class: ClassResync, Node: 2, Peer: 1, Seq: 7, Tick: 60},
	}}
	m := Merge([]NodeTrace{a, b})
	if m.FrameEdges != 0 {
		t.Fatalf("FrameEdges = %d, want 0 (heartbeat tx must not back a resync rx)", m.FrameEdges)
	}
}

func announceScenario(withReport3 bool) []NodeTrace {
	// Tree 1 ← 2 ← 3 (3 under 2 under root 1), epoch 4, n = 3.
	t3 := NodeTrace{Node: 3, Events: []Event{
		{Kind: QuietReport, Node: 3, Peer: 2, Arg: 1<<1 | 1, Epoch: 4, Tick: 10},
		{Kind: FrameTx, Class: ClassHeartbeat, Node: 3, Seq: 11, Epoch: 4, Tick: 11},
	}}
	if !withReport3 {
		t3.Events = t3.Events[1:] // tx without the recorded claim
	}
	t2 := NodeTrace{Node: 2, Events: []Event{
		{Kind: FrameRx, Class: ClassHeartbeat, Node: 2, Peer: 3, Seq: 11, Epoch: 4, Tick: 12},
		{Kind: QuietReport, Node: 2, Peer: 1, Arg: 2<<1 | 1, Epoch: 4, Tick: 13},
		{Kind: FrameTx, Class: ClassHeartbeat, Node: 2, Seq: 21, Epoch: 4, Tick: 14},
	}}
	t1 := NodeTrace{Node: 1, Events: []Event{
		{Kind: FrameRx, Class: ClassHeartbeat, Node: 1, Peer: 2, Seq: 21, Epoch: 4, Tick: 15},
		{Kind: QuietReport, Node: 1, Arg: 3<<1 | 1, Epoch: 4, Tick: 16},
		{Kind: Announce, Node: 1, Arg: 3, Epoch: 4, Tick: 16},
	}}
	return []NodeTrace{t1, t2, t3}
}

func TestAnnounceCoveragePasses(t *testing.T) {
	m := Merge(announceScenario(true))
	if bad := m.CheckAnnounceCoverage(); len(bad) != 0 {
		t.Fatalf("clean announce flagged: %v", bad)
	}
	if ann, ok := m.LatestAnnounce(); !ok || ann.Arg != 3 || ann.Epoch != 4 {
		t.Fatalf("LatestAnnounce = %+v, %v", ann, ok)
	}
}

func TestAnnounceCoverageCatchesMissingClaim(t *testing.T) {
	m := Merge(announceScenario(false))
	bad := m.CheckAnnounceCoverage()
	if len(bad) != 1 {
		t.Fatalf("announce with an unbacked claim not flagged: %v", bad)
	}
}

func packetScenario(withHop2Fwd bool) []NodeTrace {
	// Packet 9: 1 → 2 → 3, delivered after 2 hops.
	n1 := NodeTrace{Node: 1, Events: []Event{
		{Kind: PacketLaunch, Node: 1, Seq: 9, Tick: 1},
		{Kind: PacketFwd, Class: ClassData, Node: 1, Peer: 2, Seq: 9, Arg: 1, Tick: 2},
	}}
	n2 := NodeTrace{Node: 2, Events: []Event{
		{Kind: PacketRx, Class: ClassData, Node: 2, Peer: 1, Seq: 9, Arg: 1, Tick: 3},
		{Kind: PacketFwd, Class: ClassData, Node: 2, Peer: 3, Seq: 9, Arg: 2, Tick: 4},
	}}
	if !withHop2Fwd {
		n2.Events = n2.Events[:1]
	}
	n3 := NodeTrace{Node: 3, Events: []Event{
		{Kind: PacketDeliver, Class: ClassData, Node: 3, Peer: 2, Seq: 9, Arg: 2, Tick: 5},
	}}
	return []NodeTrace{n1, n2, n3}
}

func TestPacketChainPasses(t *testing.T) {
	m := Merge(packetScenario(true))
	if bad := m.CheckPacketChains(); len(bad) != 0 {
		t.Fatalf("contiguous chain flagged: %v", bad)
	}
}

func TestPacketChainCatchesGap(t *testing.T) {
	m := Merge(packetScenario(false))
	bad := m.CheckPacketChains()
	if len(bad) != 1 {
		t.Fatalf("delivery with a missing hop not flagged: %v", bad)
	}
}

func TestPacketChainSelfDelivery(t *testing.T) {
	n1 := NodeTrace{Node: 4, Events: []Event{
		{Kind: PacketLaunch, Node: 4, Seq: 1},
		{Kind: PacketDeliver, Node: 4, Seq: 1, Arg: 0},
	}}
	m := Merge([]NodeTrace{n1})
	if bad := m.CheckPacketChains(); len(bad) != 0 {
		t.Fatalf("self-delivery flagged: %v", bad)
	}
	// Delivered elsewhere with zero hops: impossible.
	n2 := NodeTrace{Node: 5, Events: []Event{
		{Kind: PacketDeliver, Node: 5, Seq: 1, Arg: 0},
	}}
	m = Merge([]NodeTrace{n1, n2})
	if bad := m.CheckPacketChains(); len(bad) != 1 {
		t.Fatalf("teleported zero-hop delivery not flagged: %v", bad)
	}
}

func TestTimelineAndChrome(t *testing.T) {
	m := Merge(announceScenario(true))
	tl := m.Timeline()
	if !strings.Contains(tl, "ANNOUNCE cluster quiet") || !strings.Contains(tl, "quiet-report") {
		t.Fatalf("timeline missing expected lines:\n%s", tl)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(m.ChromeTrace(), &chrome); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	// Every merged event plus one s/f pair per stitched frame edge.
	want := len(m.Events) + 2*m.FrameEdges
	if len(chrome.TraceEvents) != want {
		t.Fatalf("chrome trace has %d entries, want %d", len(chrome.TraceEvents), want)
	}
}

func TestMergeDroppedAggregates(t *testing.T) {
	m := Merge([]NodeTrace{{Node: 1, Dropped: 3}, {Node: 2, Dropped: 4}})
	if m.Dropped != 7 {
		t.Fatalf("Dropped = %d, want 7", m.Dropped)
	}
}
