package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStringBasics(t *testing.T) {
	var s String
	if s.Len() != 0 {
		t.Fatalf("zero value Len = %d, want 0", s.Len())
	}
	s = s.AppendBit(true)
	s = s.AppendBit(false)
	s = s.AppendBit(true)
	if got := s.String(); got != "101" {
		t.Fatalf("String() = %q, want %q", got, "101")
	}
	if !s.Bit(0) || s.Bit(1) || !s.Bit(2) {
		t.Fatalf("bit values wrong in %q", s)
	}
}

func TestStringImmutability(t *testing.T) {
	s := MustParse("1010")
	u := s.AppendBit(true)
	v := s.AppendBit(false)
	if s.String() != "1010" {
		t.Errorf("receiver mutated to %q", s)
	}
	if u.String() != "10101" || v.String() != "10100" {
		t.Errorf("appends interfered: %q, %q", u, v)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("01x0"); err == nil {
		t.Fatal("Parse accepted invalid input")
	}
}

func TestConcatPrefixSuffix(t *testing.T) {
	s := MustParse("1101")
	u := MustParse("001")
	c := s.Concat(u)
	if c.String() != "1101001" {
		t.Fatalf("Concat = %q", c)
	}
	if got := c.Prefix(4); !got.Equal(s) {
		t.Errorf("Prefix(4) = %q, want %q", got, s)
	}
	if got := c.Suffix(4); !got.Equal(u) {
		t.Errorf("Suffix(4) = %q, want %q", got, u)
	}
	if !c.HasPrefix(s) {
		t.Error("HasPrefix(s) = false")
	}
	if c.HasPrefix(MustParse("111")) {
		t.Error("HasPrefix accepted non-prefix")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"0", "1", -1},
		{"1", "0", 1},
		{"01", "011", -1}, // proper prefix is smaller
		{"011", "01", 1},
		{"1010", "1010", 0},
		{"100", "101", -1},
	}
	for _, c := range cases {
		got := MustParse(c.a).Compare(MustParse(c.b))
		if got != c.want {
			t.Errorf("Compare(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCommonPrefixLen(t *testing.T) {
	if got := MustParse("1101").CommonPrefixLen(MustParse("1100")); got != 3 {
		t.Errorf("CommonPrefixLen = %d, want 3", got)
	}
	if got := MustParse("").CommonPrefixLen(MustParse("101")); got != 0 {
		t.Errorf("CommonPrefixLen = %d, want 0", got)
	}
	if got := MustParse("10").CommonPrefixLen(MustParse("1011")); got != 2 {
		t.Errorf("CommonPrefixLen = %d, want 2", got)
	}
}

func TestGammaRoundTrip(t *testing.T) {
	for _, v := range []uint64{1, 2, 3, 4, 7, 8, 100, 1 << 20, 1<<40 + 13} {
		s := AppendGamma(String{}, v)
		if s.Len() != GammaLen(v) {
			t.Errorf("gamma(%d) length = %d, want %d", v, s.Len(), GammaLen(v))
		}
		got, err := ReadGamma(NewReader(s))
		if err != nil {
			t.Fatalf("ReadGamma(%d): %v", v, err)
		}
		if got != v {
			t.Errorf("gamma round-trip: got %d, want %d", got, v)
		}
	}
}

func TestGammaSequence(t *testing.T) {
	vals := []uint64{5, 1, 19, 2, 1000003}
	var s String
	for _, v := range vals {
		s = AppendGamma(s, v)
	}
	r := NewReader(s)
	for i, want := range vals {
		got, err := ReadGamma(r)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != want {
			t.Errorf("decode %d: got %d, want %d", i, got, want)
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("leftover bits: %d", r.Remaining())
	}
}

func TestGammaTruncated(t *testing.T) {
	s := AppendGamma(String{}, 100)
	trunc := s.Prefix(s.Len() - 2)
	if _, err := ReadGamma(NewReader(trunc)); err == nil {
		t.Error("ReadGamma accepted truncated code")
	}
}

// quickGammaRoundTrip is the property: gamma codes round-trip for any v >= 1.
func TestQuickGammaRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		v := raw%(1<<32) + 1
		s := AppendGamma(String{}, v)
		got, err := ReadGamma(NewReader(s))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickPrefixConcat checks Concat/Prefix/Suffix coherence.
func TestQuickPrefixConcat(t *testing.T) {
	f := func(a, b []bool) bool {
		sa, sb := FromBools(a), FromBools(b)
		c := sa.Concat(sb)
		return c.Len() == sa.Len()+sb.Len() &&
			c.Prefix(sa.Len()).Equal(sa) &&
			c.Suffix(sa.Len()).Equal(sb) &&
			c.HasPrefix(sa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randomWeights(rng *rand.Rand, n int, max uint64) []uint64 {
	ws := make([]uint64, n)
	for i := range ws {
		ws[i] = rng.Uint64()%max + 1
	}
	return ws
}

func TestAlphabeticCodeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(20) + 1
		ws := randomWeights(rng, n, 1000)
		code, err := NewAlphabeticCode(ws)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var total uint64
		for _, w := range ws {
			total += w
		}
		for i := 0; i < n; i++ {
			ci := code.Code(i)
			// Length bound: ceil(log2(W/w)) + 1.
			if got, want := ci.Len(), codeLen(total, ws[i]); got != want {
				t.Errorf("trial %d: len(code[%d]) = %d, want %d", trial, i, got, want)
			}
			for j := i + 1; j < n; j++ {
				cj := code.Code(j)
				// Prefix-free.
				if ci.HasPrefix(cj) || cj.HasPrefix(ci) {
					t.Fatalf("trial %d: codes %d=%q and %d=%q not prefix-free (weights %v)",
						trial, i, ci, j, cj, ws)
				}
				// Alphabetic: order-preserving lexicographic comparison.
				if ci.Compare(cj) >= 0 {
					t.Fatalf("trial %d: code order violated: code[%d]=%q >= code[%d]=%q (weights %v)",
						trial, i, ci, j, cj, ws)
				}
			}
		}
	}
}

func TestAlphabeticDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(15) + 1
		ws := randomWeights(rng, n, 100)
		code, err := NewAlphabeticCode(ws)
		if err != nil {
			t.Fatal(err)
		}
		// Concatenate a random sequence of codewords and decode it back.
		seqLen := rng.Intn(10) + 1
		var s String
		want := make([]int, seqLen)
		for i := range want {
			want[i] = rng.Intn(n)
			s = s.Concat(code.Code(want[i]))
		}
		r := NewReader(s)
		for i, w := range want {
			got, err := code.Decode(r)
			if err != nil {
				t.Fatalf("trial %d: decode %d: %v", trial, i, err)
			}
			if got != w {
				t.Fatalf("trial %d: decode %d: got %d, want %d", trial, i, got, w)
			}
		}
		if r.Remaining() != 0 {
			t.Fatalf("trial %d: %d leftover bits", trial, r.Remaining())
		}
	}
}

func TestAlphabeticCodeErrors(t *testing.T) {
	if _, err := NewAlphabeticCode(nil); err == nil {
		t.Error("accepted empty weights")
	}
	if _, err := NewAlphabeticCode([]uint64{3, 0, 1}); err == nil {
		t.Error("accepted zero weight")
	}
}

func TestAlphabeticSingleton(t *testing.T) {
	code, err := NewAlphabeticCode([]uint64{17})
	if err != nil {
		t.Fatal(err)
	}
	// W == w, so length should be ceil(log2 1) + 1 = 1.
	if got := code.Code(0).Len(); got != 1 {
		t.Errorf("singleton code length = %d, want 1", got)
	}
}

// TestAlphabeticTelescoping verifies the length bound that makes NCA labels
// O(log n): a chain of nested codes (each level half the weight) costs
// O(log W) total bits.
func TestAlphabeticTelescoping(t *testing.T) {
	total := 0
	w := uint64(1 << 20)
	for w > 1 {
		code, err := NewAlphabeticCode([]uint64{w / 2, w / 2})
		if err != nil {
			t.Fatal(err)
		}
		total += code.Code(0).Len()
		w /= 2
	}
	// Each level costs ceil(log2 2)+1 = 2 bits; 20 levels -> 40 bits.
	if total > 40 {
		t.Errorf("telescoped length = %d, want <= 40", total)
	}
}

func BenchmarkAlphabeticCode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ws := randomWeights(rng, 32, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewAlphabeticCode(ws); err != nil {
			b.Fatal(err)
		}
	}
}
