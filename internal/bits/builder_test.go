package bits

import (
	"math/rand"
	"testing"
)

// TestBuilderMatchesString: a Builder must produce bit-for-bit the same
// string as the immutable append path, for random bit/gamma mixes.
func TestBuilderMatchesString(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var b Builder
		var s String
		for op := 0; op < 1+rng.Intn(40); op++ {
			if rng.Intn(2) == 0 {
				bit := rng.Intn(2) == 1
				b.AppendBit(bit)
				s = s.AppendBit(bit)
			} else {
				v := uint64(rng.Intn(1<<16)) + 1
				b.AppendGamma(v)
				s = AppendGamma(s, v)
			}
		}
		if got := b.String(); !got.Equal(s) {
			t.Fatalf("trial %d: builder %s != string %s", trial, got, s)
		}
	}
}

// TestBuilderReset: a reset builder reuses its array but starts empty.
func TestBuilderReset(t *testing.T) {
	var b Builder
	b.AppendGamma(12345)
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after reset = %d", b.Len())
	}
	b.AppendBit(true)
	if got := b.String(); got.String() != "1" {
		t.Fatalf("after reset got %q", got)
	}
}

// TestBytesRoundtrip: Bytes/FromBytes must be inverse for every length
// mod 8, and AppendBytes must agree with Bytes.
func TestBytesRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 0; n <= 130; n++ {
		var b Builder
		for i := 0; i < n; i++ {
			b.AppendBit(rng.Intn(2) == 1)
		}
		s := b.String()
		packed := s.Bytes()
		if got := b.AppendBytes(nil); string(got) != string(packed) {
			t.Fatalf("n=%d: AppendBytes %x != Bytes %x", n, got, packed)
		}
		back, err := FromBytes(packed, n)
		if err != nil {
			t.Fatalf("n=%d: FromBytes: %v", n, err)
		}
		if !back.Equal(s) {
			t.Fatalf("n=%d: roundtrip %s != %s", n, back, s)
		}
	}
}

// TestFromBytesRejects: length mismatches and dirty padding must fail —
// the wire decoder depends on both to reject corrupted frames.
func TestFromBytesRejects(t *testing.T) {
	if _, err := FromBytes([]byte{0xff}, 3); err == nil {
		t.Fatal("dirty padding accepted")
	}
	if _, err := FromBytes([]byte{0x00, 0x00}, 3); err == nil {
		t.Fatal("oversized input accepted")
	}
	if _, err := FromBytes([]byte{0x00}, 9); err == nil {
		t.Fatal("undersized input accepted")
	}
	if _, err := FromBytes(nil, -1); err == nil {
		t.Fatal("negative bit count accepted")
	}
	if s, err := FromBytes(nil, 0); err != nil || s.Len() != 0 {
		t.Fatalf("empty input rejected: %v", err)
	}
	if _, err := FromBytes([]byte{0xe0}, 3); err != nil {
		t.Fatalf("clean padding rejected: %v", err)
	}
}
