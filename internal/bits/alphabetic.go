package bits

import (
	"fmt"
	"math/big"
)

// AlphabeticCode holds a Gilbert–Moore code for a weighted, ordered
// alphabet. The code is
//
//   - prefix-free: no codeword is a prefix of another, so concatenations
//     of codewords are uniquely parseable by a decoder knowing the code;
//   - alphabetic (order-preserving): i < j implies Code(i) < Code(j) in
//     lexicographic bit-string order, so two codewords can be compared
//     without decoding them — the property the NCA computation of
//     Section V of the paper depends on;
//   - compact: len(Code(i)) <= ceil(log2(W / w_i)) + 1 where W = sum of
//     weights, so lengths telescope along root-to-leaf tree paths.
type AlphabeticCode struct {
	codes []String
}

// NewAlphabeticCode constructs the Gilbert–Moore code for the given
// positive weights, in the given order. It returns an error if weights is
// empty or contains a non-positive weight.
//
// Construction: element i is assigned the real interval midpoint
// m_i = (s_i + w_i/2) / W where s_i = w_0 + ... + w_{i-1}, and its codeword
// is the binary expansion of m_i truncated to ceil(log2(W/w_i)) + 1 bits.
// Exact rational arithmetic (math/big) avoids floating-point ties.
func NewAlphabeticCode(weights []uint64) (*AlphabeticCode, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("bits: alphabetic code needs at least one weight")
	}
	var total uint64
	for i, w := range weights {
		if w == 0 {
			return nil, fmt.Errorf("bits: weight %d is zero (index %d)", w, i)
		}
		total += w
	}
	codes := make([]String, len(weights))
	var cum uint64
	for i, w := range weights {
		codes[i] = GilbertMooreCodeword(cum, w, total)
		cum += w
	}
	return &AlphabeticCode{codes: codes}, nil
}

// GilbertMooreCodeword returns the Gilbert–Moore codeword of the element
// occupying the weight interval [before, before+w) out of total: the
// binary expansion of the interval midpoint truncated to
// ceil(log2(total/w)) + 1 bits. It is the per-element form of
// NewAlphabeticCode, usable by local verifiers that know only their own
// cumulative weights (the NCA proof-labeling scheme of Lemma 5.1 relies
// on this locality).
func GilbertMooreCodeword(before, w, total uint64) String {
	if w == 0 || total == 0 || before+w > total {
		panic(fmt.Sprintf("bits: invalid interval [%d,%d) of %d", before, before+w, total))
	}
	num := new(big.Int).SetUint64(2*before + w)
	den := new(big.Int).SetUint64(2 * total)
	return truncatedBinary(num, den, codeLen(total, w))
}

// codeLen returns ceil(log2(total/w)) + 1.
func codeLen(total, w uint64) int {
	// Smallest L with 2^L >= total/w, i.e. 2^L * w >= total, then +1.
	l := 0
	v := w
	for v < total {
		v <<= 1
		l++
	}
	return l + 1
}

// truncatedBinary returns the first k bits of the binary expansion of the
// rational num/den in [0, 1).
func truncatedBinary(num, den *big.Int, k int) String {
	var s String
	n := new(big.Int).Set(num)
	for i := 0; i < k; i++ {
		n.Lsh(n, 1)
		if n.Cmp(den) >= 0 {
			s = s.AppendBit(true)
			n.Sub(n, den)
		} else {
			s = s.AppendBit(false)
		}
	}
	return s
}

// Size returns the number of codewords.
func (c *AlphabeticCode) Size() int { return len(c.codes) }

// Code returns the codeword of element i.
func (c *AlphabeticCode) Code(i int) String {
	if i < 0 || i >= len(c.codes) {
		panic(fmt.Sprintf("bits: code index %d out of range [0,%d)", i, len(c.codes)))
	}
	return c.codes[i]
}

// Decode finds the element whose codeword is a prefix of the reader's
// remaining bits, consumes it, and returns its index. Prefix-freeness
// guarantees at most one match.
func (c *AlphabeticCode) Decode(r *Reader) (int, error) {
	for i, code := range c.codes {
		if r.Remaining() >= code.Len() {
			match := true
			for j := 0; j < code.Len(); j++ {
				if r.s.Bit(r.pos+j) != code.Bit(j) {
					match = false
					break
				}
			}
			if match {
				r.pos += code.Len()
				return i, nil
			}
		}
	}
	return 0, fmt.Errorf("bits: no codeword matches at position %d", r.pos)
}
