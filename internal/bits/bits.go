// Package bits provides compact bit-level encodings used by the labeling
// schemes of the paper: plain bit strings, Elias-gamma integer codes, and
// Gilbert–Moore alphabetic (order-preserving, prefix-free) codes.
//
// The NCA labeling of Alstrup, Gavoille, Kaplan and Rauhe — used in
// Section V of the paper to identify fundamental cycles with O(log n)
// bits — relies on order-preserving prefix-free codes whose lengths are
// proportional to log(total weight / element weight), so that code lengths
// telescope along root-to-leaf paths. Gilbert–Moore codes provide exactly
// that guarantee: the code of an element with weight w out of total W has
// length at most ceil(log2(W/w)) + 1.
package bits

import (
	"fmt"
	"math/bits"
	"strings"
)

// String is an immutable sequence of bits. The zero value is the empty
// bit string, ready to use.
type String struct {
	words []uint64
	n     int // number of valid bits
}

// FromBools builds a bit string from a slice of booleans (true = 1).
func FromBools(bs []bool) String {
	var s String
	for _, b := range bs {
		s = s.AppendBit(b)
	}
	return s
}

// Parse builds a bit string from a textual form such as "01101".
// It returns an error if the input contains characters other than '0'/'1'.
func Parse(text string) (String, error) {
	var s String
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '0':
			s = s.AppendBit(false)
		case '1':
			s = s.AppendBit(true)
		default:
			return String{}, fmt.Errorf("bits: invalid character %q at index %d", text[i], i)
		}
	}
	return s, nil
}

// MustParse is like Parse but panics on invalid input. It is intended for
// constants in tests.
func MustParse(text string) String {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of bits in s.
func (s String) Len() int { return s.n }

// Bit returns the i-th bit (0-indexed from the most significant end of the
// string, i.e. the order in which bits were appended).
func (s String) Bit(i int) bool {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bits: index %d out of range [0,%d)", i, s.n))
	}
	return s.words[i/64]>>(63-uint(i%64))&1 == 1
}

// AppendBit returns a new bit string with b appended.
func (s String) AppendBit(b bool) String {
	words := s.words
	if s.n%64 == 0 {
		// All words full (or empty): copy and grow.
		words = make([]uint64, len(s.words)+1)
		copy(words, s.words)
	} else {
		// Copy-on-write to preserve immutability of the receiver.
		words = make([]uint64, len(s.words))
		copy(words, s.words)
	}
	if b {
		words[s.n/64] |= 1 << (63 - uint(s.n%64))
	}
	return String{words: words, n: s.n + 1}
}

// Concat returns the concatenation s·t.
func (s String) Concat(t String) String {
	out := s
	for i := 0; i < t.n; i++ {
		out = out.AppendBit(t.Bit(i))
	}
	return out
}

// Prefix returns the first k bits of s.
func (s String) Prefix(k int) String {
	if k < 0 || k > s.n {
		panic(fmt.Sprintf("bits: prefix length %d out of range [0,%d]", k, s.n))
	}
	out := String{}
	for i := 0; i < k; i++ {
		out = out.AppendBit(s.Bit(i))
	}
	return out
}

// Suffix returns the bits of s starting at index k.
func (s String) Suffix(k int) String {
	if k < 0 || k > s.n {
		panic(fmt.Sprintf("bits: suffix start %d out of range [0,%d]", k, s.n))
	}
	out := String{}
	for i := k; i < s.n; i++ {
		out = out.AppendBit(s.Bit(i))
	}
	return out
}

// Equal reports whether s and t hold the same bits.
func (s String) Equal(t String) bool {
	if s.n != t.n {
		return false
	}
	for i := 0; i < s.n; i++ {
		if s.Bit(i) != t.Bit(i) {
			return false
		}
	}
	return true
}

// HasPrefix reports whether p is a prefix of s.
func (s String) HasPrefix(p String) bool {
	if p.n > s.n {
		return false
	}
	for i := 0; i < p.n; i++ {
		if s.Bit(i) != p.Bit(i) {
			return false
		}
	}
	return true
}

// CommonPrefixLen returns the length of the longest common prefix of s and t.
func (s String) CommonPrefixLen(t String) int {
	n := s.n
	if t.n < n {
		n = t.n
	}
	for i := 0; i < n; i++ {
		if s.Bit(i) != t.Bit(i) {
			return i
		}
	}
	return n
}

// Compare lexicographically compares s and t as bit strings, treating a
// proper prefix as smaller. It returns -1, 0, or +1.
func (s String) Compare(t String) int {
	n := s.n
	if t.n < n {
		n = t.n
	}
	for i := 0; i < n; i++ {
		sb, tb := s.Bit(i), t.Bit(i)
		if sb != tb {
			if tb {
				return -1
			}
			return 1
		}
	}
	switch {
	case s.n < t.n:
		return -1
	case s.n > t.n:
		return 1
	}
	return 0
}

// String renders the bit string as a sequence of '0'/'1' characters.
func (s String) String() string {
	var b strings.Builder
	b.Grow(s.n)
	for i := 0; i < s.n; i++ {
		if s.Bit(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// Reader consumes a bit string from the front. It is used by decoders that
// parse self-delimiting labels without access to the originating tree.
type Reader struct {
	s   String
	pos int
}

// NewReader returns a Reader over s.
func NewReader(s String) *Reader { return &Reader{s: s} }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.s.Len() - r.pos }

// Pos returns the number of bits consumed so far.
func (r *Reader) Pos() int { return r.pos }

// ReadBit consumes and returns one bit.
func (r *Reader) ReadBit() (bool, error) {
	if r.pos >= r.s.Len() {
		return false, fmt.Errorf("bits: read past end of string (len %d)", r.s.Len())
	}
	b := r.s.Bit(r.pos)
	r.pos++
	return b, nil
}

// Skip consumes k bits without materializing them.
func (r *Reader) Skip(k int) error {
	if k < 0 || r.Remaining() < k {
		return fmt.Errorf("bits: cannot skip %d bits, have %d", k, r.Remaining())
	}
	r.pos += k
	return nil
}

// ReadString consumes k bits and returns them as a bit string.
func (r *Reader) ReadString(k int) (String, error) {
	if r.Remaining() < k {
		return String{}, fmt.Errorf("bits: need %d bits, have %d", k, r.Remaining())
	}
	out := r.s.Suffix(r.pos).Prefix(k)
	r.pos += k
	return out, nil
}

// AppendGamma appends the Elias-gamma code of v (v >= 1) to s. The code of
// v uses 2*floor(log2 v)+1 bits: floor(log2 v) zeros followed by the binary
// expansion of v.
func AppendGamma(s String, v uint64) String {
	if v == 0 {
		panic("bits: gamma code requires v >= 1")
	}
	width := bitsLen(v) // number of bits in binary expansion
	for i := 0; i < width-1; i++ {
		s = s.AppendBit(false)
	}
	for i := width - 1; i >= 0; i-- {
		s = s.AppendBit(v>>uint(i)&1 == 1)
	}
	return s
}

// GammaLen returns the length in bits of the Elias-gamma code of v.
func GammaLen(v uint64) int {
	if v == 0 {
		panic("bits: gamma code requires v >= 1")
	}
	return 2*bitsLen(v) - 1
}

// ReadGamma decodes an Elias-gamma code from r.
func ReadGamma(r *Reader) (uint64, error) {
	zeros := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, fmt.Errorf("bits: truncated gamma code: %w", err)
		}
		if b {
			break
		}
		zeros++
		// zeros prefix zeros announce a (zeros+1)-bit payload; 64 zeros
		// would decode a 65-bit value, silently overflowing uint64.
		if zeros >= 64 {
			return 0, fmt.Errorf("bits: gamma code exceeds 64 bits")
		}
	}
	v := uint64(1)
	for i := 0; i < zeros; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, fmt.Errorf("bits: truncated gamma payload: %w", err)
		}
		v <<= 1
		if b {
			v |= 1
		}
	}
	return v, nil
}

func bitsLen(v uint64) int { return bits.Len64(v) }
