package bits

import "fmt"

// Builder is a mutable bit accumulator for encoders on hot paths. The
// immutable String appends with copy-on-write — O(words) per bit, the
// right trade for labels built once and shared — but a wire encoder
// packing thousands of heartbeat frames per tick cannot afford a slice
// copy per bit. A Builder appends in amortized O(1), reuses its backing
// array across Reset, and snapshots into an immutable String (or packed
// bytes) only when the frame is sealed.
type Builder struct {
	words []uint64
	n     int
}

// Len returns the number of bits accumulated.
func (b *Builder) Len() int { return b.n }

// Reset empties the builder, keeping the backing array for reuse.
func (b *Builder) Reset() {
	b.words = b.words[:0]
	b.n = 0
}

// AppendBit appends one bit.
func (b *Builder) AppendBit(bit bool) {
	if b.n%64 == 0 {
		b.words = append(b.words, 0)
	}
	if bit {
		b.words[b.n/64] |= 1 << (63 - uint(b.n%64))
	}
	b.n++
}

// AppendGamma appends the Elias-gamma code of v (v >= 1) — the same
// code AppendGamma produces on a String, without the per-bit copies.
func (b *Builder) AppendGamma(v uint64) {
	if v == 0 {
		panic("bits: gamma code requires v >= 1")
	}
	width := bitsLen(v)
	for i := 0; i < width-1; i++ {
		b.AppendBit(false)
	}
	for i := width - 1; i >= 0; i-- {
		b.AppendBit(v>>uint(i)&1 == 1)
	}
}

// String snapshots the accumulated bits as an immutable String. The
// words are copied, so the builder may be reset and reused freely.
func (b *Builder) String() String {
	words := make([]uint64, len(b.words))
	copy(words, b.words)
	return String{words: words, n: b.n}
}

// AppendBytes appends the accumulated bits to dst as packed bytes,
// MSB-first, the final partial byte zero-padded. It returns the grown
// slice; pair it with FromBytes(data, b.Len()) to recover the bits.
func (b *Builder) AppendBytes(dst []byte) []byte {
	nBytes := (b.n + 7) / 8
	for j := 0; j < nBytes; j++ {
		dst = append(dst, byte(b.words[j/8]>>(56-8*uint(j%8))))
	}
	return dst
}

// Bytes packs the bit string MSB-first into bytes, the final partial
// byte zero-padded: the on-the-wire form of an encoded label.
func (s String) Bytes() []byte {
	out := make([]byte, (s.n+7)/8)
	for j := range out {
		out[j] = byte(s.words[j/8] >> (56 - 8*uint(j%8)))
	}
	return out
}

// FromBytes reconstructs a bit string of exactly nbits from its packed
// byte form. It rejects inputs whose length disagrees with nbits or
// whose zero-padding carries set bits, so a corrupted length field
// cannot smuggle silent extra state past a decoder.
func FromBytes(data []byte, nbits int) (String, error) {
	s, _, err := FromBytesBuf(nil, data, nbits)
	return s, err
}

// FromBytesBuf is FromBytes with a caller-provided scratch word slice:
// the returned String aliases buf (grown when too small, and returned
// for the next call), so a decoder on a hot path reuses one buffer
// across frames instead of allocating per call. The String — and
// anything still referencing its bits — is invalidated by the next
// FromBytesBuf call with the same buffer.
func FromBytesBuf(buf []uint64, data []byte, nbits int) (String, []uint64, error) {
	if nbits < 0 {
		return String{}, buf, fmt.Errorf("bits: negative bit count %d", nbits)
	}
	if want := (nbits + 7) / 8; len(data) != want {
		return String{}, buf, fmt.Errorf("bits: %d bytes for %d bits, want %d", len(data), nbits, want)
	}
	if pad := len(data)*8 - nbits; pad > 0 && data[len(data)-1]&(1<<uint(pad)-1) != 0 {
		return String{}, buf, fmt.Errorf("bits: nonzero padding in final byte")
	}
	nw := (nbits + 63) / 64
	if cap(buf) < nw {
		buf = make([]uint64, nw)
	} else {
		buf = buf[:nw]
		for i := range buf {
			buf[i] = 0
		}
	}
	for j, by := range data {
		buf[j/8] |= uint64(by) << (56 - 8*uint(j%8))
	}
	return String{words: buf, n: nbits}, buf, nil
}
