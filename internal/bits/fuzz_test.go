package bits

import (
	"testing"
)

// bitsFromBytes expands data into a bit string, MSB first per byte.
func bitsFromBytes(data []byte) String {
	var s String
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			s = s.AppendBit(b>>uint(i)&1 == 1)
		}
	}
	return s
}

// FuzzGammaRoundtrip checks encode→decode identity for arbitrary values:
// the gamma code of any v >= 1 has exactly GammaLen(v) bits and decodes
// back to v with nothing left over.
func FuzzGammaRoundtrip(f *testing.F) {
	for _, v := range []uint64{1, 2, 3, 7, 8, 255, 256, 1 << 20, 1<<63 - 1, 1 << 63, ^uint64(0)} {
		f.Add(v)
	}
	f.Fuzz(func(t *testing.T, v uint64) {
		if v == 0 {
			t.Skip("gamma codes start at 1")
		}
		s := AppendGamma(String{}, v)
		if s.Len() != GammaLen(v) {
			t.Fatalf("AppendGamma(%d) has %d bits, GammaLen says %d", v, s.Len(), GammaLen(v))
		}
		r := NewReader(s)
		got, err := ReadGamma(r)
		if err != nil {
			t.Fatalf("ReadGamma(gamma(%d)): %v", v, err)
		}
		if got != v {
			t.Fatalf("roundtrip: got %d, want %d", got, v)
		}
		if r.Remaining() != 0 {
			t.Fatalf("roundtrip of %d left %d bits unread", v, r.Remaining())
		}
	})
}

// FuzzGammaStream decodes arbitrary bit streams: ReadGamma must never
// panic, and — because gamma is a canonical prefix code — re-encoding
// each decoded value must reproduce exactly the bits it consumed.
func FuzzGammaStream(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x80}) // 64 zeros, then 1
	f.Add([]byte{0x55, 0xaa, 0x0f, 0xf0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			t.Skip("cap stream length")
		}
		s := bitsFromBytes(data)
		r := NewReader(s)
		for r.Remaining() > 0 {
			before := r.Pos()
			v, err := ReadGamma(r)
			if err != nil {
				break
			}
			if v == 0 {
				t.Fatalf("ReadGamma returned 0 at bit %d", before)
			}
			consumed := r.Pos() - before
			re := AppendGamma(String{}, v)
			if re.Len() != consumed {
				t.Fatalf("decoded %d from %d bits, re-encodes to %d", v, consumed, re.Len())
			}
			if !s.Suffix(before).Prefix(consumed).Equal(re) {
				t.Fatalf("re-encoding %d does not reproduce consumed bits at %d", v, before)
			}
		}
	})
}
