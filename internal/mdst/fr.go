// Package mdst implements the MDST application of the paper's framework
// (Section VIII, Corollary 8.1): minimum-degree spanning tree
// approximation within +1 of optimal, stabilizing on FR-trees (trees
// certified by a good/bad marking in the sense of Fürer and
// Raghavachari, Definition 8.1).
//
// Since no compact proof-labeling scheme can exist for arbitrary
// degree-(OPT+1) spanning trees unless NP = co-NP (Proposition 8.1), the
// task's family is the set of FR-trees, which admit an O(log n)-bit
// scheme (Lemma 8.1). Improvements are well-nested sequences of swaps
// (Section VII) lowering the nest-decreasing potential
// φ(T) = (n·Δ_T + N_T)·(1 − 1_FR(T)).
package mdst

import (
	"fmt"
	"slices"

	"silentspan/internal/core"
	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

// Marking is the good/bad marking computed by the Fürer–Raghavachari
// scan (the inner while loop of Algorithm 4) for a tree of degree K.
type Marking struct {
	// K is the degree of the tree the marking certifies.
	K int
	// Good marks the good nodes; all others are bad.
	Good map[graph.NodeID]bool
	// Witness records, for every node promoted from bad to good, the
	// non-tree edge whose fundamental cycle covered it.
	Witness map[graph.NodeID]graph.Edge
	// Frag maps every good node to its fragment identity (the smallest
	// member ID of its component in the forest of good nodes).
	Frag map[graph.NodeID]graph.NodeID
	// Promoted is the degree-K node that became good, ending the scan
	// (None if the scan exhausted all cross-fragment edges: T is FR).
	Promoted graph.NodeID
	// ScanSteps counts the promotion iterations, for round accounting.
	ScanSteps int
}

// Mark runs the Fürer–Raghavachari scan on T: initially, nodes of degree
// ≥ K−1 are bad and the others good; while some graph edge joins two
// distinct fragments of good nodes (and every degree-K node is still
// bad), all bad nodes on its fundamental cycle are marked good with that
// edge as witness. The scan ends when no such edge remains — T is an
// FR-tree, certified by the marking — or as soon as a degree-K node
// becomes good — an improvement is available.
func Mark(g *graph.Graph, t *trees.Tree) (*Marking, error) {
	m := &Marking{
		K:        t.MaxDegree(),
		Good:     make(map[graph.NodeID]bool, t.N()),
		Witness:  make(map[graph.NodeID]graph.Edge),
		Frag:     make(map[graph.NodeID]graph.NodeID, t.N()),
		Promoted: trees.None,
	}
	for _, v := range t.Nodes() {
		if t.Degree(v) <= m.K-2 {
			m.Good[v] = true
		}
	}
	for {
		if m.ScanSteps > t.N()+1 {
			return nil, fmt.Errorf("mdst: scan did not converge")
		}
		m.recomputeFragments(t)
		e, found := m.crossFragmentEdge(g, t)
		if !found {
			return m, nil // FR-tree
		}
		m.ScanSteps++
		promotedAny := false
		for _, x := range t.FundamentalCycle(e) {
			if m.Good[x] {
				continue
			}
			m.Good[x] = true
			m.Witness[x] = e
			promotedAny = true
			if t.Degree(x) == m.K && m.Promoted == trees.None {
				m.Promoted = x
			}
		}
		if !promotedAny {
			return nil, fmt.Errorf("mdst: cross-fragment edge %v promoted nothing", e)
		}
		if m.Promoted != trees.None {
			m.recomputeFragments(t)
			return m, nil // improvement available
		}
	}
}

// recomputeFragments labels each good node with the minimum member ID of
// its component in the forest induced by good nodes on tree edges.
func (m *Marking) recomputeFragments(t *trees.Tree) {
	for k := range m.Frag {
		delete(m.Frag, k)
	}
	uf := graph.NewUnionFind(t.Nodes())
	for _, v := range t.Nodes() {
		if !m.Good[v] {
			continue
		}
		p := t.Parent(v)
		if p != trees.None && m.Good[p] {
			uf.Union(v, p)
		}
	}
	minOf := make(map[graph.NodeID]graph.NodeID)
	for _, v := range t.Nodes() {
		if !m.Good[v] {
			continue
		}
		r := uf.Find(v)
		if cur, ok := minOf[r]; !ok || v < cur {
			minOf[r] = v
		}
	}
	for _, v := range t.Nodes() {
		if m.Good[v] {
			m.Frag[v] = minOf[uf.Find(v)]
		}
	}
}

// crossFragmentEdge returns the first graph edge (in canonical order)
// joining good nodes of two distinct fragments.
func (m *Marking) crossFragmentEdge(g *graph.Graph, t *trees.Tree) (graph.Edge, bool) {
	for _, e := range g.Edges() {
		if t.HasEdge(e.U, e.V) {
			continue
		}
		if m.Good[e.U] && m.Good[e.V] && m.Frag[e.U] != m.Frag[e.V] {
			return e, true
		}
	}
	return graph.Edge{}, false
}

// IsFRTree reports whether T is an FR-tree of G: the scan exhausts all
// cross-fragment edges without promoting a degree-K node.
func IsFRTree(g *graph.Graph, t *trees.Tree) (bool, error) {
	m, err := Mark(g, t)
	if err != nil {
		return false, err
	}
	return m.Promoted == trees.None, nil
}

// BuildNest constructs the well-nested improvement sequence that lowers
// the degree of the promoted degree-K node (lines 11–13 of Algorithm 4):
// before inserting a witness edge, any endpoint whose current degree is
// K−1 is first improved recursively with its own witness (those inner
// swaps happen in regions untouched by the outer cycle — the
// well-nestedness of Section VII). Each swap removes a cycle edge
// incident to its target, so the target's degree strictly drops.
func BuildNest(g *graph.Graph, t *trees.Tree, m *Marking) ([]core.Swap, *trees.Tree, error) {
	if m.Promoted == trees.None {
		return nil, nil, fmt.Errorf("mdst: no promoted degree-%d node", m.K)
	}
	cur := t
	var swaps []core.Swap
	visiting := make(map[graph.NodeID]bool)
	var reduce func(target graph.NodeID) error
	reduce = func(target graph.NodeID) error {
		if visiting[target] {
			return fmt.Errorf("mdst: witness recursion revisits node %d", target)
		}
		visiting[target] = true
		defer delete(visiting, target)
		e, ok := m.Witness[target]
		if !ok {
			return fmt.Errorf("mdst: node %d has no witness", target)
		}
		// Inner improvements: endpoints of e must end below K−1.
		for _, x := range []graph.NodeID{e.U, e.V} {
			if cur.Degree(x) >= m.K-1 {
				if err := reduce(x); err != nil {
					return err
				}
			}
		}
		f, err := cycleEdgeAt(cur, e, target)
		if err != nil {
			return err
		}
		next, err := cur.Swap(e, f)
		if err != nil {
			return fmt.Errorf("mdst: swap +%v -%v: %w", e, f, err)
		}
		swaps = append(swaps, core.Swap{Add: e, Remove: f})
		cur = next
		return nil
	}
	if err := reduce(m.Promoted); err != nil {
		return nil, nil, err
	}
	return swaps, cur, nil
}

// cycleEdgeAt returns a tree edge of the fundamental cycle of cur + e
// incident to target, preferring the cycle neighbor of larger degree.
func cycleEdgeAt(cur *trees.Tree, e graph.Edge, target graph.NodeID) (graph.Edge, error) {
	path := cur.FundamentalCycle(e)
	idx := -1
	for i, x := range path {
		if x == target {
			idx = i
			break
		}
	}
	if idx == -1 {
		return graph.Edge{}, fmt.Errorf("mdst: node %d not on the cycle of %v", target, e)
	}
	var candidates []graph.NodeID
	if idx > 0 {
		candidates = append(candidates, path[idx-1])
	}
	if idx+1 < len(path) {
		candidates = append(candidates, path[idx+1])
	}
	if len(candidates) == 0 {
		return graph.Edge{}, fmt.Errorf("mdst: degenerate cycle for %v", e)
	}
	slices.SortFunc(candidates, func(a, b graph.NodeID) int {
		if da, db := cur.Degree(a), cur.Degree(b); da != db {
			return db - da
		}
		return int(a - b)
	})
	return graph.Edge{U: target, V: candidates[0]}.Canonical(), nil
}

// FurerRaghavachari runs the full sequential Algorithm 4: repeat the
// scan and apply improvement sequences until the tree is an FR-tree.
// The result has degree at most OPT + 1 (Theorem 2.2 of [33]).
func FurerRaghavachari(g *graph.Graph, t0 *trees.Tree) (*trees.Tree, int, error) {
	t := t0.Clone()
	improvements := 0
	// n·Δ + N strictly decreases per improvement.
	guard := g.N()*g.N() + g.N() + 1
	for iter := 0; iter < guard; iter++ {
		m, err := Mark(g, t)
		if err != nil {
			return nil, improvements, err
		}
		if m.Promoted == trees.None {
			return t, improvements, nil
		}
		before := potentialCore(g, t)
		_, next, err := BuildNest(g, t, m)
		if err != nil {
			return nil, improvements, err
		}
		after := potentialCore(g, next)
		if after >= before {
			return nil, improvements, fmt.Errorf("mdst: improvement did not decrease nΔ+N (%d -> %d)", before, after)
		}
		t = next
		improvements++
	}
	return nil, improvements, fmt.Errorf("mdst: exceeded improvement guard")
}

// potentialCore is n·Δ_T + N_T, the magnitude part of the potential.
func potentialCore(g *graph.Graph, t *trees.Tree) int {
	d := t.MaxDegree()
	return g.N()*d + t.DegreeCount(d)
}
