package mdst

import (
	"fmt"

	"silentspan/internal/core"
	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

// Task packages the MDST application for the PLS-guided engines: the
// family is FR-trees, the potential is the nest-decreasing
//
//	φ(T) = (n·Δ_T + N_T) · (1 − 1_FR(T))
//
// of Section VIII, and improvements are the well-nested sequences built
// by the Fürer–Raghavachari scan (Algorithm 4 ≡ the Algorithm 3 loop).
type Task struct{}

var _ core.Task = Task{}

// Name implements core.Task.
func (Task) Name() string { return "mdst" }

// Value implements core.Task: φ(T) = (nΔ_T + N_T)(1 − 1_FR(T)).
func (Task) Value(g *graph.Graph, t *trees.Tree) (int, error) {
	fr, err := IsFRTree(g, t)
	if err != nil {
		return 0, err
	}
	if fr {
		return 0, nil
	}
	return potentialCore(g, t), nil
}

// MaxValue implements core.Task: Δ_T ≤ n−1 and N_T ≤ n.
func (Task) MaxValue(g *graph.Graph) int { return g.N()*g.N() + g.N() }

// Label implements core.Task: compute the marking and its Lemma 8.1
// certificates. Construction is the scan itself — each promotion is one
// cycle wave — plus the witness- and fragment-distance broadcasts.
func (Task) Label(g *graph.Graph, t *trees.Tree) (core.LabelInfo, error) {
	m, err := Mark(g, t)
	if err != nil {
		return core.LabelInfo{}, err
	}
	height := 0
	for _, d := range t.Depths() {
		if d > height {
			height = d
		}
	}
	rounds := (m.ScanSteps + 2) * (2*height + 2)
	if m.Promoted != trees.None {
		// Not an FR-tree: labels exist but certify nothing; the scan
		// rounds are still charged.
		return core.LabelInfo{MaxBits: labelBitsBound(g), Rounds: rounds}, nil
	}
	a, err := FromMarking(g, t, m)
	if err != nil {
		return core.LabelInfo{}, err
	}
	return core.LabelInfo{MaxBits: a.MaxLabelBits(g.N()), Rounds: rounds}, nil
}

func labelBitsBound(g *graph.Graph) int {
	return Label{
		K:           g.N() - 1,
		Frag:        graph.NodeID(g.N()),
		WitnessDist: g.N() - 1,
		FragDist:    g.N() - 1,
	}.EncodedBits(g.N())
}

// FindImprovement implements core.Task: run the scan; if a degree-K node
// is promoted, emit the well-nested improvement sequence that lowers its
// degree. Discovery rounds: the scan's cycle waves plus one tree wave
// per emitted swap.
func (Task) FindImprovement(g *graph.Graph, t *trees.Tree) ([]core.Swap, int, bool, error) {
	m, err := Mark(g, t)
	if err != nil {
		return nil, 0, false, err
	}
	height := 0
	for _, d := range t.Depths() {
		if d > height {
			height = d
		}
	}
	scanRounds := (m.ScanSteps + 1) * (2*height + 2)
	if m.Promoted == trees.None {
		return nil, scanRounds, false, nil
	}
	swaps, _, err := BuildNest(g, t, m)
	if err != nil {
		return nil, 0, false, fmt.Errorf("mdst: building improvement: %w", err)
	}
	rounds := scanRounds + len(swaps)*(2*height+2)
	return swaps, rounds, true, nil
}
