package mdst

import (
	"fmt"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/trees"
)

// Label is the per-node certificate of the FR-tree proof-labeling scheme
// (Lemma 8.1): O(log n) bits per node.
type Label struct {
	// K is the certified tree degree.
	K int
	// Good is the node's marking.
	Good bool
	// Frag is the identity (minimum member ID) of the node's fragment in
	// the forest of good nodes; meaningful only for good nodes.
	Frag graph.NodeID
	// WitnessDist is the tree distance toward some degree-K node,
	// certifying that K is the actual maximum degree (a node with
	// WitnessDist = 0 must itself have degree K).
	WitnessDist int
	// FragDist is the distance, inside the fragment, toward the node
	// whose identity names the fragment, certifying that Frag identifies
	// a member of this very fragment.
	FragDist int
}

// EncodedBits returns the label width for an n-node network.
func (l Label) EncodedBits(n int) int {
	return runtime.BitsForValue(n) + 1 + runtime.BitsForValue(int(l.Frag)) +
		runtime.BitsForValue(l.WitnessDist) + runtime.BitsForValue(l.FragDist)
}

// Assignment is the verifiable FR-tree configuration: parent pointers
// (certified separately by the spanning-tree scheme) plus the labels.
//
// The verifier at node x checks, reading only x and its neighbors:
//
//	(F1) every neighbor certifies the same K, and deg_T(x) ≤ K;
//	(F2) WitnessDist anchors K: zero implies deg_T(x) = K, positive
//	     implies a tree neighbor one closer — so a degree-K node exists;
//	(F3) marking legality (Definition 8.1 (1)–(2)): degree-K nodes are
//	     bad, degree ≤ K−2 nodes are good;
//	(F4) fragment naming: good tree neighbors share Frag; Frag ≤ own ID;
//	     FragDist = 0 iff Frag is the node's own identity, else some good
//	     tree neighbor with equal Frag is one closer — so Frag names a
//	     member of this fragment and distinct fragments get distinct
//	     names;
//	(F5) Definition 8.1 (3): no graph edge joins good nodes of distinct
//	     fragments — the detector whose firing witnesses φ(T) > 0.
type Assignment struct {
	Parent map[graph.NodeID]graph.NodeID
	Labels map[graph.NodeID]Label
}

// FromMarking builds the legal labeling of a marking (the prover of
// Lemma 8.1). It fails if the marking's scan found an improvement (a
// promoted degree-K node): such trees are not FR-certifiable.
func FromMarking(g *graph.Graph, t *trees.Tree, m *Marking) (Assignment, error) {
	if m.Promoted != trees.None {
		return Assignment{}, fmt.Errorf("mdst: tree is not an FR-tree (degree-%d node %d promoted)", m.K, m.Promoted)
	}
	a := Assignment{
		Parent: t.ParentMap(),
		Labels: make(map[graph.NodeID]Label, t.N()),
	}
	wd, err := distancesToDegreeK(t, m.K)
	if err != nil {
		return Assignment{}, err
	}
	fd := fragmentDistances(t, m)
	for _, v := range t.Nodes() {
		l := Label{K: m.K, Good: m.Good[v], WitnessDist: wd[v]}
		if m.Good[v] {
			l.Frag = m.Frag[v]
			l.FragDist = fd[v]
		}
		a.Labels[v] = l
	}
	return a, nil
}

// distancesToDegreeK returns, per node, the tree distance to the nearest
// degree-K node.
func distancesToDegreeK(t *trees.Tree, k int) (map[graph.NodeID]int, error) {
	dist := make(map[graph.NodeID]int, t.N())
	var queue []graph.NodeID
	for _, v := range t.Nodes() {
		if t.Degree(v) == k {
			dist[v] = 0
			queue = append(queue, v)
		}
	}
	if len(queue) == 0 {
		return nil, fmt.Errorf("mdst: no node of degree %d", k)
	}
	adj := treeAdjacency(t)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if _, ok := dist[u]; !ok {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist, nil
}

// fragmentDistances returns, per good node, the in-fragment distance to
// the fragment's naming member.
func fragmentDistances(t *trees.Tree, m *Marking) map[graph.NodeID]int {
	dist := make(map[graph.NodeID]int, t.N())
	adj := treeAdjacency(t)
	for _, v := range t.Nodes() {
		if m.Good[v] && m.Frag[v] == v {
			dist[v] = 0
			queue := []graph.NodeID{v}
			for len(queue) > 0 {
				x := queue[0]
				queue = queue[1:]
				for _, u := range adj[x] {
					if !m.Good[u] || m.Frag[u] != m.Frag[v] {
						continue
					}
					if _, ok := dist[u]; !ok {
						dist[u] = dist[x] + 1
						queue = append(queue, u)
					}
				}
			}
		}
	}
	return dist
}

func treeAdjacency(t *trees.Tree) map[graph.NodeID][]graph.NodeID {
	adj := make(map[graph.NodeID][]graph.NodeID, t.N())
	for _, v := range t.Nodes() {
		p := t.Parent(v)
		if p != trees.None {
			adj[v] = append(adj[v], p)
			adj[p] = append(adj[p], v)
		}
	}
	return adj
}

// degreeIn returns x's degree induced by the parent pointers, readable
// locally: the parent edge plus neighbors pointing at x.
func (a Assignment) degreeIn(g *graph.Graph, x graph.NodeID) int {
	d := 0
	if a.Parent[x] != trees.None {
		d++
	}
	for _, u := range g.Neighbors(x) {
		if a.Parent[u] == x {
			d++
		}
	}
	return d
}

// VerifyAt runs the Lemma 8.1 verifier at node x.
func (a Assignment) VerifyAt(g *graph.Graph, x graph.NodeID) error {
	lx, ok := a.Labels[x]
	if !ok {
		return fmt.Errorf("mdst: node %d unlabeled", x)
	}
	deg := a.degreeIn(g, x)
	// (F1)
	if deg > lx.K {
		return fmt.Errorf("mdst: node %d has degree %d above certified K=%d", x, deg, lx.K)
	}
	for _, u := range g.Neighbors(x) {
		lu, ok := a.Labels[u]
		if !ok {
			return fmt.Errorf("mdst: neighbor %d of %d unlabeled", u, x)
		}
		if lu.K != lx.K {
			return fmt.Errorf("mdst: nodes %d and %d certify different degrees %d and %d", x, u, lx.K, lu.K)
		}
	}
	// (F2)
	if lx.WitnessDist < 0 || lx.WitnessDist > g.N() {
		return fmt.Errorf("mdst: node %d has witness distance %d out of range", x, lx.WitnessDist)
	}
	if lx.WitnessDist == 0 {
		if deg != lx.K {
			return fmt.Errorf("mdst: node %d anchors K=%d but has degree %d", x, lx.K, deg)
		}
	} else {
		found := false
		for _, u := range a.treeNeighbors(g, x) {
			if a.Labels[u].WitnessDist == lx.WitnessDist-1 {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("mdst: node %d has witness distance %d with no closer tree neighbor", x, lx.WitnessDist)
		}
	}
	// (F3)
	if deg == lx.K && lx.Good {
		return fmt.Errorf("mdst: degree-%d node %d marked good (Def 8.1(1))", lx.K, x)
	}
	if deg <= lx.K-2 && !lx.Good {
		return fmt.Errorf("mdst: node %d of degree %d ≤ K−2 marked bad (Def 8.1(2))", x, deg)
	}
	if !lx.Good {
		return nil
	}
	// (F4)
	if lx.Frag > x || lx.Frag <= 0 {
		return fmt.Errorf("mdst: node %d names fragment %d above its own identity", x, lx.Frag)
	}
	if lx.FragDist == 0 {
		if lx.Frag != x {
			return fmt.Errorf("mdst: node %d has fragment distance 0 but names %d", x, lx.Frag)
		}
	} else {
		found := false
		for _, u := range a.treeNeighbors(g, x) {
			lu := a.Labels[u]
			if lu.Good && lu.Frag == lx.Frag && lu.FragDist == lx.FragDist-1 {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("mdst: node %d has fragment distance %d with no closer member", x, lx.FragDist)
		}
	}
	for _, u := range a.treeNeighbors(g, x) {
		lu := a.Labels[u]
		if lu.Good && lu.Frag != lx.Frag {
			return fmt.Errorf("mdst: adjacent good tree nodes %d and %d in different fragments", x, u)
		}
	}
	// (F5)
	for _, u := range g.Neighbors(x) {
		lu := a.Labels[u]
		if lu.Good && lu.Frag != lx.Frag {
			return fmt.Errorf("mdst: graph edge {%d,%d} joins good nodes of fragments %d and %d (Def 8.1(3))",
				x, u, lx.Frag, lu.Frag)
		}
	}
	return nil
}

// treeNeighbors returns x's neighbors along tree edges (parent pointers),
// the only neighbors the distance chains may follow.
func (a Assignment) treeNeighbors(g *graph.Graph, x graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	if p := a.Parent[x]; p != trees.None && g.HasEdge(x, p) {
		out = append(out, p)
	}
	for _, u := range g.Neighbors(x) {
		if a.Parent[u] == x {
			out = append(out, u)
		}
	}
	return out
}

// Verify runs the verifier at every node, returning the first rejection.
func (a Assignment) Verify(g *graph.Graph) error {
	for _, x := range g.Nodes() {
		if err := a.VerifyAt(g, x); err != nil {
			return err
		}
	}
	return nil
}

// MaxLabelBits returns the widest label in the assignment.
func (a Assignment) MaxLabelBits(n int) int {
	max := 0
	for _, l := range a.Labels {
		if b := l.EncodedBits(n); b > max {
			max = b
		}
	}
	return max
}
