package mdst

import (
	"fmt"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/trees"
)

// BaselineResult models the prior self-stabilizing MDST algorithm [16]
// (Blin–Gradinariu–Rovedakis) for the comparison row of experiment E5:
// an (OPT+1)-approximation that is *not* silent and stores Ω(n log n)
// bits per node — each node keeps a full copy of the current tree to
// evaluate improvements locally. The paper's contribution (Corollary
// 8.1) is the exponential register shrink to O(log n) while gaining
// silence; this baseline reproduces the memory profile being compared
// against, with the same improvement semantics (degree of the final
// tree is within +1 of optimal).
type BaselineResult struct {
	Tree *trees.Tree
	// RegisterBits is the per-node memory: the full tree as a parent
	// table (n entries of node identities) plus working fields.
	RegisterBits int
	// Rounds charges each improvement with a full tree broadcast (every
	// node must refresh its tree copy) plus the improvement waves.
	Rounds int
	// Improvements is the number of improvement steps applied.
	Improvements int
}

// BigMemoryMDST runs the [16]-style baseline: the same Fürer–
// Raghavachari improvement loop, but with every node holding the entire
// tree in its register, so each improvement costs a full re-broadcast.
func BigMemoryMDST(g *graph.Graph, t0 *trees.Tree) (*BaselineResult, error) {
	final, improvements, err := FurerRaghavachari(g, t0)
	if err != nil {
		return nil, fmt.Errorf("mdst: baseline: %w", err)
	}
	n := g.N()
	res := &BaselineResult{
		Tree:         final,
		Improvements: improvements,
		// n parent entries of ceil(log2 n) bits each, plus degree and
		// phase bookkeeping: Ω(n log n).
		RegisterBits: n*runtime.BitsForValue(n) + 3*runtime.BitsForValue(n),
		// Each improvement re-broadcasts the tree (n rounds) and runs
		// the improvement waves (2n rounds).
		Rounds: (improvements + 1) * 3 * n,
	}
	return res, nil
}
