package mdst

import (
	"math/rand"
	"testing"

	"silentspan/internal/core"
	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

func TestOptimalDegreeKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"path", graph.Path(6), 2},
		{"ring", graph.Ring(6), 2},
		{"star", graph.Star(6), 5},
		{"complete", graph.Complete(5), 2}, // Hamiltonian path exists
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := OptimalDegree(c.g)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Errorf("OptimalDegree = %d, want %d", got, c.want)
			}
		})
	}
}

func TestOptimalDegreeRejectsLargeInstances(t *testing.T) {
	if _, err := OptimalDegree(graph.Complete(10)); err == nil {
		t.Error("brute force accepted a 45-edge instance")
	}
}

func TestMarkOnStarIsFR(t *testing.T) {
	// The star has a unique spanning tree (degree n−1); it must be FR
	// (no improvement can exist).
	g := graph.Star(7)
	tr, err := trees.BFSTree(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := IsFRTree(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !fr {
		t.Error("unique spanning tree not FR")
	}
}

func TestHamiltonianPathIsFR(t *testing.T) {
	// A Hamiltonian path of a ring is an FR-tree (all nodes markable
	// bad... in fact degree ≤ 2 everywhere; the paper notes Hamiltonian
	// paths are FR-trees).
	g := graph.Ring(8)
	pm := map[graph.NodeID]graph.NodeID{1: trees.None}
	for i := 2; i <= 8; i++ {
		pm[graph.NodeID(i)] = graph.NodeID(i - 1)
	}
	tr, err := trees.FromParentMap(pm)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := IsFRTree(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !fr {
		t.Error("Hamiltonian path not recognized as FR-tree")
	}
}

func TestStarOfRingNotFR(t *testing.T) {
	// In a ring, the BFS tree from any node has a degree-2 root and
	// leaves; take instead the "fan" tree where node 1 is the center of
	// chords... Construct a spanning tree of the complete graph with a
	// high-degree hub: it must not be FR (a Hamiltonian path exists).
	g := graph.Complete(6)
	tr, err := trees.BFSTree(g, 1) // star-shaped: node 1 adjacent to all
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxDegree() != 5 {
		t.Fatalf("BFS tree of K6 has degree %d, want 5", tr.MaxDegree())
	}
	fr, err := IsFRTree(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	if fr {
		t.Error("hub tree of K6 certified FR; a Hamiltonian path exists")
	}
}

func TestFurerRaghavachariWithinOneOfOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	checked := 0
	for trial := 0; trial < 60 && checked < 25; trial++ {
		n := 5 + rng.Intn(4)
		g := graph.RandomConnected(n, 0.4, rng)
		if g.M() > 24 {
			continue
		}
		opt, err := OptimalDegree(g)
		if err != nil {
			continue
		}
		t0, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			t.Fatal(err)
		}
		final, _, err := FurerRaghavachari(g, t0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !final.IsSpanningTreeOf(g) {
			t.Fatalf("trial %d: result not spanning", trial)
		}
		if final.MaxDegree() > opt+1 {
			t.Fatalf("trial %d: degree %d > OPT+1 = %d", trial, final.MaxDegree(), opt+1)
		}
		fr, err := IsFRTree(g, final)
		if err != nil {
			t.Fatal(err)
		}
		if !fr {
			t.Fatalf("trial %d: final tree not FR", trial)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d instances checked", checked)
	}
}

func TestFurerRaghavachariLargerGraphs(t *testing.T) {
	// No brute force here; check the FR fixpoint and degree sanity
	// (degree can only drop from the greedy start).
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(20+rng.Intn(30), 0.15, rng)
		t0, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			t.Fatal(err)
		}
		final, improvements, err := FurerRaghavachari(g, t0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if final.MaxDegree() > t0.MaxDegree() {
			t.Errorf("trial %d: degree rose from %d to %d", trial, t0.MaxDegree(), final.MaxDegree())
		}
		fr, err := IsFRTree(g, final)
		if err != nil {
			t.Fatal(err)
		}
		if !fr {
			t.Fatalf("trial %d: final tree not FR after %d improvements", trial, improvements)
		}
	}
}

func TestLollipopImprovement(t *testing.T) {
	// The lollipop stresses the clique side: starting from a hub-heavy
	// tree, FR must drive the degree down to near-optimal.
	g := graph.Lollipop(6, 5)
	tr, err := trees.BFSTree(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	final, _, err := FurerRaghavachari(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	if final.MaxDegree() >= tr.MaxDegree() && tr.MaxDegree() > 3 {
		t.Errorf("no improvement on lollipop: %d -> %d", tr.MaxDegree(), final.MaxDegree())
	}
}

func TestVerifierAcceptsFRTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomConnected(8+rng.Intn(20), 0.3, rng)
		t0, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			t.Fatal(err)
		}
		final, _, err := FurerRaghavachari(g, t0)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Mark(g, final)
		if err != nil {
			t.Fatal(err)
		}
		a, err := FromMarking(g, final, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Verify(g); err != nil {
			t.Fatalf("trial %d: verifier rejects legal FR labeling: %v", trial, err)
		}
		// Label size is O(log n).
		bound := 5*(log2ceil(2*g.N())+1) + 8
		if got := a.MaxLabelBits(g.N()); got > bound {
			t.Errorf("trial %d: label bits %d > %d", trial, got, bound)
		}
	}
}

func TestVerifierRejectsNonFRTrees(t *testing.T) {
	// For a non-FR tree, every honest labeling attempt must fail; check
	// the natural cheats: using the minimal marking or marking all
	// degree-(K−1) nodes good both trip a verifier check somewhere.
	g := graph.Complete(6)
	tr, err := trees.BFSTree(g, 1) // hub tree, not FR
	if err != nil {
		t.Fatal(err)
	}
	m, err := Mark(g, tr)
	if err != nil {
		t.Fatal(err)
	}
	if m.Promoted == trees.None {
		t.Fatal("expected a promotion on the hub tree of K6")
	}
	if _, err := FromMarking(g, tr, m); err == nil {
		t.Error("FromMarking accepted a non-FR marking")
	}
	// Cheat 1: label from the pre-promotion marking (ignore promotion).
	cheat := Assignment{Parent: tr.ParentMap(), Labels: map[graph.NodeID]Label{}}
	wd, err := distancesToDegreeK(tr, m.K)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range tr.Nodes() {
		good := tr.Degree(v) <= m.K-2
		l := Label{K: m.K, Good: good, WitnessDist: wd[v]}
		if good {
			l.Frag = v // singletons: leaves of the hub are isolated good nodes
			l.FragDist = 0
		}
		cheat.Labels[v] = l
	}
	if err := cheat.Verify(g); err == nil {
		t.Error("verifier accepted the minimal-marking cheat on a non-FR tree")
	}
}

func TestVerifierRejectsCorruptedLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomConnected(15, 0.3, rng)
	t0, err := trees.RandomSpanningTree(g, g.MinID(), rng)
	if err != nil {
		t.Fatal(err)
	}
	final, _, err := FurerRaghavachari(g, t0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Mark(g, final)
	if err != nil {
		t.Fatal(err)
	}
	base, err := FromMarking(g, final, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Verify(g); err != nil {
		t.Fatal(err)
	}
	nodes := final.Nodes()
	for trial := 0; trial < 40; trial++ {
		labels := make(map[graph.NodeID]Label, len(base.Labels))
		for k, v := range base.Labels {
			labels[k] = v
		}
		victim := nodes[rng.Intn(len(nodes))]
		l := labels[victim]
		orig := l
		switch rng.Intn(4) {
		case 0:
			l.K += 1 + rng.Intn(3)
		case 1:
			l.Good = !l.Good
		case 2:
			l.Frag = graph.NodeID(rng.Intn(g.N()) + 1)
		default:
			// Distance-chain fields may be locally consistent in more
			// than one way (any valid chain is a sound certificate), so
			// only an out-of-range value is deterministically rejected.
			l.WitnessDist = g.N() + 1 + rng.Intn(5)
		}
		if semanticallySame(orig, l) {
			continue
		}
		labels[victim] = l
		a := Assignment{Parent: base.Parent, Labels: labels}
		if err := a.Verify(g); err == nil {
			t.Fatalf("trial %d: corruption %v -> %v at node %d accepted", trial, orig, l, victim)
		}
	}
}

func semanticallySame(a, b Label) bool {
	if a.K != b.K || a.Good != b.Good || a.WitnessDist != b.WitnessDist {
		return false
	}
	if !a.Good {
		return true // Frag/FragDist unused for bad nodes
	}
	return a.Frag == b.Frag && a.FragDist == b.FragDist
}

func TestSequentialEngineMDST(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 12; trial++ {
		g := graph.RandomConnected(10+rng.Intn(15), 0.3, rng)
		t0, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			t.Fatal(err)
		}
		final, trace, err := core.RunSequential(g, t0, Task{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fr, err := IsFRTree(g, final)
		if err != nil {
			t.Fatal(err)
		}
		if !fr {
			t.Fatalf("trial %d: engine fixpoint not FR", trial)
		}
		for i := 1; i < len(trace.Potentials); i++ {
			if trace.Potentials[i] >= trace.Potentials[i-1] {
				t.Fatalf("trial %d: φ not strictly decreasing: %v", trial, trace.Potentials)
			}
		}
	}
}

func TestDistributedEngineMDST(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 3; trial++ {
		g := graph.RandomConnected(10+rng.Intn(6), 0.35, rng)
		final, trace, err := core.RunDistributed(g, Task{}, core.EngineOptions{
			Monitor: true,
			Rng:     rand.New(rand.NewSource(int64(trial + 70))),
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fr, err := IsFRTree(g, final)
		if err != nil {
			t.Fatal(err)
		}
		if !fr {
			t.Fatalf("trial %d: distributed fixpoint not FR", trial)
		}
		if trace.Rounds <= 0 {
			t.Error("no round accounting")
		}
	}
}

func TestGreedyLowDegreeTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomConnected(25, 0.2, rng)
	tr, err := GreedyLowDegreeTree(g, g.MinID())
	if err != nil {
		t.Fatal(err)
	}
	if !tr.IsSpanningTreeOf(g) {
		t.Fatal("greedy tree not spanning")
	}
}

func TestBigMemoryBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.RandomConnected(20, 0.25, rng)
	t0, err := trees.RandomSpanningTree(g, g.MinID(), rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BigMemoryMDST(g, t0)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := IsFRTree(g, res.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if !fr {
		t.Fatal("baseline result not FR")
	}
	// The baseline's registers must be Ω(n log n): strictly above the
	// silent algorithm's O(log n) labels for the same instance.
	m, err := Mark(g, res.Tree)
	if err != nil {
		t.Fatal(err)
	}
	a, err := FromMarking(g, res.Tree, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.RegisterBits <= 4*a.MaxLabelBits(g.N()) {
		t.Errorf("baseline registers (%d bits) not clearly larger than silent labels (%d bits)",
			res.RegisterBits, a.MaxLabelBits(g.N()))
	}
}

func log2ceil(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}
