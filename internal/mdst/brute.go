package mdst

import (
	"fmt"
	"math"

	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

// OptimalDegree returns Δ_min(G), the degree of a minimum-degree
// spanning tree, by exhaustive enumeration of spanning edge subsets.
// Deciding Δ_min(G) ≤ k is NP-hard (Hamiltonian path reduction, Section
// II-B), so this is exponential and restricted to small instances; it is
// the ground truth for the OPT+1 guarantee in the experiments.
func OptimalDegree(g *graph.Graph) (int, error) {
	n := g.N()
	if n == 0 {
		return 0, fmt.Errorf("mdst: empty graph")
	}
	if n == 1 {
		return 0, nil
	}
	edges := g.Edges()
	m := len(edges)
	if m > 24 {
		return 0, fmt.Errorf("mdst: %d edges too many for brute force", m)
	}
	best := math.MaxInt
	for mask := 0; mask < 1<<m; mask++ {
		if popcount(mask) != n-1 {
			continue
		}
		uf := graph.NewUnionFind(g.Nodes())
		deg := make(map[graph.NodeID]int, n)
		for i := 0; i < m; i++ {
			if mask>>i&1 == 1 {
				uf.Union(edges[i].U, edges[i].V)
				deg[edges[i].U]++
				deg[edges[i].V]++
			}
		}
		if uf.Sets() != 1 {
			continue
		}
		max := 0
		for _, d := range deg {
			if d > max {
				max = d
			}
		}
		if max < best {
			best = max
		}
	}
	if best == math.MaxInt {
		return 0, fmt.Errorf("mdst: graph not connected")
	}
	return best, nil
}

// GreedyLowDegreeTree returns a DFS-ish spanning tree biased toward low
// degrees: grow from the root, always extending from the frontier node
// of smallest current tree degree. A decent starting point and a
// non-optimal comparator for the experiments.
func GreedyLowDegreeTree(g *graph.Graph, root graph.NodeID) (*trees.Tree, error) {
	if !g.HasNode(root) {
		return nil, fmt.Errorf("mdst: unknown root %d", root)
	}
	t := trees.NewTree(root)
	deg := map[graph.NodeID]int{}
	for t.N() < g.N() {
		// Pick the attachment (v in tree, u outside) minimizing
		// (deg_T(v), deg_G(u), IDs).
		type cand struct {
			v, u graph.NodeID
		}
		best := cand{}
		found := false
		better := func(a, b cand) bool {
			if deg[a.v] != deg[b.v] {
				return deg[a.v] < deg[b.v]
			}
			if g.Degree(a.u) != g.Degree(b.u) {
				return g.Degree(a.u) < g.Degree(b.u)
			}
			if a.v != b.v {
				return a.v < b.v
			}
			return a.u < b.u
		}
		for _, v := range t.Nodes() {
			for _, u := range g.Neighbors(v) {
				if t.Has(u) {
					continue
				}
				c := cand{v: v, u: u}
				if !found || better(c, best) {
					best, found = c, true
				}
			}
		}
		if !found {
			return nil, fmt.Errorf("mdst: graph not connected")
		}
		t.AddChild(best.v, best.u)
		deg[best.v]++
		deg[best.u]++
	}
	return t, nil
}

func popcount(x int) int {
	c := 0
	for ; x > 0; x &= x - 1 {
		c++
	}
	return c
}
