package routing

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/trees"
)

// compareToRebuild asserts the incrementally maintained labeling is
// identical — label by label, coordinate by coordinate — to a fresh
// LiveLabeling built from the same raw pointers on the same graph.
func compareToRebuild(t *testing.T, step int, lb *LiveLabeler) {
	t.Helper()
	full := LiveLabeling(lb.g, lb.parents)
	got := lb.Labeling()
	if got.Covered() != full.Covered() {
		t.Fatalf("step %d: incremental covers %d, rebuild %d", step, got.Covered(), full.Covered())
	}
	d := lb.g.Dense()
	for i := 0; i < d.Slots(); i++ {
		if got.has[i] != full.has[i] {
			t.Fatalf("step %d: slot %d (id %d) labeled=%v, rebuild %v",
				step, i, d.ID(i), got.has[i], full.has[i])
		}
		if !got.has[i] {
			continue
		}
		if got.root[i] != full.root[i] {
			t.Fatalf("step %d: slot %d root %d, rebuild %d", step, i, got.root[i], full.root[i])
		}
		if !slices.Equal(got.crds[i], full.crds[i]) {
			t.Fatalf("step %d: slot %d coords %v, rebuild %v", step, i, got.crds[i], full.crds[i])
		}
	}
}

// TestLiveLabelerPortShift pins the partial-relabel semantics on a
// concrete star: detaching a middle child shifts the ports (and whole
// coordinate subtrees) of its higher-identity siblings only.
func TestLiveLabelerPortShift(t *testing.T) {
	g := graph.New()
	for _, v := range []graph.NodeID{2, 3, 4, 5} {
		g.MustAddEdge(1, v, graph.Weight(10+v))
	}
	g.MustAddEdge(3, 4, 99) // so re-hanging 3 below 4 is credible
	d := g.Dense()
	parents := make([]graph.NodeID, d.Slots())
	set := func(v, p graph.NodeID) {
		i, _ := d.IndexOf(v)
		parents[i] = p
	}
	set(1, trees.None)
	set(2, 1)
	set(3, 1)
	set(4, 1)
	set(5, 1)
	lb := NewLiveLabeler(g, parents)
	coordOf := func(v graph.NodeID) Coords {
		c, ok := lb.Labeling().Coords(v)
		if !ok {
			t.Fatalf("node %d unlabeled", v)
		}
		return c
	}
	if got := coordOf(5); !slices.Equal(got, Coords{3}) {
		t.Fatalf("node 5 at %v, want port 3 under the root", got)
	}
	// Re-hang 3 below 4: ports of 4 and 5 under the root shift down.
	lb.SetParent(3, 4)
	compareToRebuild(t, 0, lb)
	if got := coordOf(4); !slices.Equal(got, Coords{1}) {
		t.Fatalf("node 4 at %v after sibling detach, want {1}", got)
	}
	if got := coordOf(3); !slices.Equal(got, Coords{1, 0}) {
		t.Fatalf("node 3 at %v below 4, want {1 0}", got)
	}
	if got := coordOf(2); !slices.Equal(got, Coords{0}) {
		t.Fatalf("node 2 moved to %v; lower-identity siblings must not shift", got)
	}
	if got := coordOf(5); !slices.Equal(got, Coords{2}) {
		t.Fatalf("node 5 at %v after sibling detach, want {2}", got)
	}
}

// TestLiveLabelerCycleGoesDark: a parent-pointer loop (routine mid-
// reconvergence) must leave exactly the loop unlabeled, as a rebuild
// would.
func TestLiveLabelerCycleGoesDark(t *testing.T) {
	g := graph.New()
	g.MustAddEdge(1, 2, 10)
	g.MustAddEdge(2, 3, 11)
	g.MustAddEdge(3, 4, 12)
	g.MustAddEdge(2, 4, 13)
	d := g.Dense()
	parents := make([]graph.NodeID, d.Slots())
	for i := range parents {
		parents[i] = NoParent
	}
	lb := NewLiveLabeler(g, parents)
	lb.SetParent(1, trees.None)
	lb.SetParent(2, 1)
	lb.SetParent(3, 2)
	lb.SetParent(4, 3)
	compareToRebuild(t, 0, lb)
	if !lb.Labeling().Complete() {
		t.Fatal("chain labeling should be complete")
	}
	// Close a 3-4 / 4-2-3 loop: 3 adopts 4 while 4 still claims 3.
	lb.SetParent(3, 4)
	compareToRebuild(t, 1, lb)
	if _, ok := lb.Labeling().Coords(3); ok {
		t.Fatal("cycle member 3 still labeled")
	}
	if _, ok := lb.Labeling().Coords(4); ok {
		t.Fatal("cycle member 4 still labeled")
	}
	if _, ok := lb.Labeling().Coords(1); !ok {
		t.Fatal("root 1 lost its label to an unrelated cycle")
	}
	// Break the loop again.
	lb.SetParent(4, 2)
	lb.SetParent(3, 2)
	compareToRebuild(t, 2, lb)
	if !lb.Labeling().Complete() {
		t.Fatal("healed labeling should be complete")
	}
}

// TestLabelingOwnsItsIDSpace: a labeling held across node churn must
// keep a consistent (merely stale) identity space — the Dense mutating
// its ids array in place must not corrupt the labeling's lookups.
func TestLabelingOwnsItsIDSpace(t *testing.T) {
	g := graph.New()
	g.MustAddEdge(1, 2, 10)
	g.MustAddEdge(2, 3, 11)
	d := g.Dense()
	parents := make([]graph.NodeID, d.Slots())
	set := func(v, p graph.NodeID) { i, _ := d.IndexOf(v); parents[i] = p }
	set(1, trees.None)
	set(2, 1)
	set(3, 2)
	lab := LiveLabeling(g, parents)
	if _, ok := lab.Coords(2); !ok {
		t.Fatal("node 2 should be labeled")
	}
	// Churn underneath the held labeling: slot 0 (node 1) is vacated
	// and recycled by node 9, breaking ascending order in the Dense.
	if err := g.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	g.AddNode(9)
	g.MustAddEdge(9, 3, 12)
	// The stale labeling still resolves every node it labeled.
	for _, v := range []graph.NodeID{1, 2, 3} {
		if _, ok := lab.Coords(v); !ok {
			t.Errorf("held labeling lost node %d after churn", v)
		}
	}
	if _, ok := lab.Coords(9); ok {
		t.Error("held labeling invented a coordinate for the new node")
	}
	// A router refreshed against the churned graph must not take the
	// slot-aligned path with the stale labeling.
	r := NewRouter(g, lab, Options{})
	if r.aligned {
		t.Error("router aligned itself with a labeling from an older slot assignment")
	}
}

// TestLiveLabelerMatchesRebuild is the equivalence torture test: a
// long randomized schedule of raw pointer writes (valid, garbage,
// loops), link flaps, joins, and leaves, with the incremental labeling
// diffed against a from-scratch rebuild after every single operation.
func TestLiveLabelerMatchesRebuild(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := graph.RandomConnected(24, 0.15, rng)
			d := g.Dense()
			parents := make([]graph.NodeID, d.Slots())
			for i := range parents {
				parents[i] = NoParent
			}
			lb := NewLiveLabeler(g, parents)
			nextID := graph.NodeID(100)
			nextW := graph.Weight(1 << 20)
			var downed []graph.Edge

			randomPointer := func(v graph.NodeID) graph.NodeID {
				switch rng.Intn(6) {
				case 0:
					return trees.None
				case 1:
					return NoParent
				case 2:
					return graph.NodeID(rng.Intn(200) + 1) // likely garbage
				default:
					nbrs := g.NeighborsShared(v)
					if len(nbrs) == 0 {
						return trees.None
					}
					return nbrs[rng.Intn(len(nbrs))]
				}
			}

			for step := 0; step < 1500; step++ {
				nodes := g.Nodes()
				switch op := rng.Intn(12); {
				case op < 6: // raw pointer write
					v := nodes[rng.Intn(len(nodes))]
					lb.SetParent(v, randomPointer(v))
				case op < 8: // link down
					edges := g.Edges()
					if len(edges) == 0 {
						continue
					}
					e := edges[rng.Intn(len(edges))]
					if err := g.RemoveEdge(e.U, e.V); err != nil {
						t.Fatal(err)
					}
					downed = append(downed, e)
					lb.ApplyTopo(runtime.TopoEvent{Kind: runtime.TopoRemoveEdge, U: e.U, V: e.V})
				case op < 10: // link up (heal a downed link or a fresh one)
					if len(downed) > 0 && rng.Intn(2) == 0 {
						e := downed[len(downed)-1]
						downed = downed[:len(downed)-1]
						if g.HasNode(e.U) && g.HasNode(e.V) && !g.HasEdge(e.U, e.V) {
							g.MustAddEdge(e.U, e.V, e.W)
							lb.ApplyTopo(runtime.TopoEvent{Kind: runtime.TopoAddEdge, U: e.U, V: e.V, W: e.W})
						}
						continue
					}
					u := nodes[rng.Intn(len(nodes))]
					v := nodes[rng.Intn(len(nodes))]
					if u == v || g.HasEdge(u, v) {
						continue
					}
					g.MustAddEdge(u, v, nextW)
					lb.ApplyTopo(runtime.TopoEvent{Kind: runtime.TopoAddEdge, U: u, V: v, W: nextW})
					nextW++
				case op < 11: // leave
					if len(nodes) <= 3 {
						continue
					}
					v := nodes[rng.Intn(len(nodes))]
					if err := g.RemoveNode(v); err != nil {
						t.Fatal(err)
					}
					lb.ApplyTopo(runtime.TopoEvent{Kind: runtime.TopoRemoveNode, U: v})
				default: // join, wired to a random anchor
					g.AddNode(nextID)
					lb.ApplyTopo(runtime.TopoEvent{Kind: runtime.TopoAddNode, U: nextID})
					anchor := nodes[rng.Intn(len(nodes))]
					g.MustAddEdge(nextID, anchor, nextW)
					lb.ApplyTopo(runtime.TopoEvent{Kind: runtime.TopoAddEdge, U: nextID, V: anchor, W: nextW})
					nextID++
					nextW++
				}
				compareToRebuild(t, step, lb)
			}
		})
	}
}
