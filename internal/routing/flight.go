package routing

// Flight is a cohort of in-flight packets tracked across labeling
// refreshes: the accounting unit of the fault-interplay runner and the
// chaos campaigns, where packets launched before a fault burst keep
// flying over the decaying labeling while the tree repairs itself.
type Flight struct {
	packets []*Packet
	stats   InFlightStats
	flushed bool
}

// NewFlight launches one packet per pair.
func NewFlight(pairs []Pair) *Flight {
	f := &Flight{packets: make([]*Packet, 0, len(pairs))}
	for _, p := range pairs {
		f.packets = append(f.packets, NewPacket(p.Src, p.Dst))
	}
	f.stats.Sent = len(f.packets)
	return f
}

// Advance moves every live packet up to steps hops over r's current
// labeling, accounting deliveries-during-repair and stall windows.
func (f *Flight) Advance(r *Router, steps int) {
	for _, p := range f.packets {
		if p.Done {
			continue
		}
		before := p.Stalls
		r.Advance(p, steps)
		if p.Done && p.Delivered {
			f.stats.DeliveredDuring++
		}
		f.stats.StallWindows += p.Stalls - before
	}
}

// Active returns the number of packets still flying.
func (f *Flight) Active() int {
	n := 0
	for _, p := range f.packets {
		if !p.Done {
			n++
		}
	}
	return n
}

// Flush drains the cohort over r's (typically freshly relabeled)
// routing table with a full hop budget and finalizes the loop/drop
// classification. Idempotent.
func (f *Flight) Flush(r *Router) {
	if f.flushed {
		return
	}
	f.flushed = true
	delivered := 0
	for _, p := range f.packets {
		if !p.Done {
			r.Advance(p, r.opt.MaxHops)
		}
		if p.Looped {
			f.stats.Looped++
		}
		if p.Delivered {
			delivered++
		} else {
			f.stats.Dropped++
		}
	}
	f.stats.DeliveredAfter = delivered - f.stats.DeliveredDuring
}

// Stats returns the cohort's accounting (complete only after Flush).
func (f *Flight) Stats() InFlightStats { return f.stats }
