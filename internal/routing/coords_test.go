package routing

import (
	"math/rand"
	"testing"

	"silentspan/internal/bits"
	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

func TestCoordsDistMatchesTreePath(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(40, 0.15, rng)
		tree, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			t.Fatal(err)
		}
		lab := Label(tree)
		if err := lab.Verify(tree); err != nil {
			t.Fatal(err)
		}
		nodes := tree.Nodes()
		for i := 0; i < 100; i++ {
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			want := len(tree.TreePath(u, v)) - 1
			got, ok := lab.TreeDist(u, v)
			if !ok {
				t.Fatalf("no distance for %d -> %d", u, v)
			}
			if got != want {
				t.Errorf("TreeDist(%d, %d) = %d, tree path length %d", u, v, got, want)
			}
		}
	}
}

func TestCoordsAncestorMatchesTree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomConnected(30, 0.2, rng)
	tree, err := trees.RandomSpanningTree(g, g.MinID(), rng)
	if err != nil {
		t.Fatal(err)
	}
	lab := Label(tree)
	isAncestor := func(u, v graph.NodeID) bool {
		for x := v; ; x = tree.Parent(x) {
			if x == u {
				return true
			}
			if x == tree.Root() {
				return false
			}
		}
	}
	for _, u := range tree.Nodes() {
		for _, v := range tree.Nodes() {
			if got, want := lab.IsAncestor(u, v), isAncestor(u, v); got != want {
				t.Errorf("IsAncestor(%d, %d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestCoordsEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Coords{
		{},
		{0},
		{0, 0, 0},
		{5, 0, 17, 2},
		{1000, 3, 0},
	}
	for _, c := range cases {
		enc := c.Encode()
		if enc.Len() != c.EncodedBits() {
			t.Errorf("%v: Encode len %d != EncodedBits %d", c, enc.Len(), c.EncodedBits())
		}
		got, err := DecodeCoords(bits.NewReader(enc))
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if !got.Equal(c) {
			t.Errorf("round trip: got %v, want %v", got, c)
		}
	}
}

func TestCoordsEncodeSelfDelimiting(t *testing.T) {
	// Two coords concatenated decode back as two coords.
	a, b := Coords{3, 1}, Coords{0, 7, 2}
	r := bits.NewReader(a.Encode().Concat(b.Encode()))
	gotA, err := DecodeCoords(r)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := DecodeCoords(r)
	if err != nil {
		t.Fatal(err)
	}
	if !gotA.Equal(a) || !gotB.Equal(b) {
		t.Errorf("got %v %v, want %v %v", gotA, gotB, a, b)
	}
	if r.Remaining() != 0 {
		t.Errorf("%d bits left over", r.Remaining())
	}
}

func TestLabelBitsLogarithmic(t *testing.T) {
	// On bounded-degree-ish random graphs the encoded coordinate is
	// O(depth * log degree) = O(log² n)-ish; assert a generous bound so
	// regressions to unary-style blowups are caught.
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomConnected(1024, 0.01, rng)
	tree, err := trees.BFSTree(g, g.MinID())
	if err != nil {
		t.Fatal(err)
	}
	lab := Label(tree)
	ix := trees.NewIndex(tree)
	bound := 2 * (ix.Height() + 1) * 12 // gamma(port) ≤ ~2 log port + 1
	if got := lab.MaxLabelBits(); got > bound {
		t.Errorf("max label bits %d > bound %d (height %d)", got, bound, ix.Height())
	}
}

func TestLiveLabelingOnBrokenPointers(t *testing.T) {
	// A 6-node path 1-2-3-4-5-6 with pointers broken at 4 (cycle with 5)
	// and a second root at 6.
	g := graph.Path(6)
	parent := map[graph.NodeID]graph.NodeID{
		1: trees.None,
		2: 1,
		3: 2,
		4: 5, // cycle 4 <-> 5
		5: 4,
		6: trees.None, // second claimed root
	}
	lab := LiveLabeling(g, ParentsFromMap(g, parent))
	if lab.Complete() {
		t.Fatal("broken labeling reported complete")
	}
	// 1, 2, 3 labeled under root 1; 6 under root 6; 4 and 5 unlabeled.
	for _, v := range []graph.NodeID{1, 2, 3} {
		if r, ok := lab.RootOf(v); !ok || r != 1 {
			t.Errorf("node %d: root %d ok=%v, want root 1", v, r, ok)
		}
	}
	if r, ok := lab.RootOf(6); !ok || r != 6 {
		t.Errorf("node 6: root %d ok=%v, want root 6", r, ok)
	}
	for _, v := range []graph.NodeID{4, 5} {
		if _, ok := lab.Coords(v); ok {
			t.Errorf("cycle node %d got a coordinate", v)
		}
	}
	// Cross-space distance must be refused.
	if _, ok := lab.TreeDist(1, 6); ok {
		t.Error("TreeDist across coordinate spaces succeeded")
	}
	if d, ok := lab.TreeDist(1, 3); !ok || d != 2 {
		t.Errorf("TreeDist(1,3) = %d ok=%v, want 2", d, ok)
	}
}

func TestLiveLabelingIgnoresNonNeighborParents(t *testing.T) {
	g := graph.Path(4) // 1-2-3-4
	parent := map[graph.NodeID]graph.NodeID{
		1: trees.None,
		2: 1,
		3: 1, // 3 claims parent 1, but {1,3} is not an edge
		4: 3,
	}
	lab := LiveLabeling(g, ParentsFromMap(g, parent))
	if _, ok := lab.Coords(3); ok {
		t.Error("node 3 with non-neighbor parent got a coordinate")
	}
	if _, ok := lab.Coords(4); ok {
		t.Error("node 4 under a discredited parent got a coordinate")
	}
	if c, ok := lab.Coords(2); !ok || len(c) != 1 {
		t.Errorf("node 2 coords %v ok=%v, want length-1 path", c, ok)
	}
}
