package routing

import (
	"cmp"
	"slices"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/trees"
)

// LiveLabeler maintains a LiveLabeling incrementally while the network
// underneath it churns: a parent-pointer write or a topology mutation
// invalidates and relabels only the subtree below the changed edge
// (plus the sibling subtrees whose ports shift), instead of rebuilding
// all n coordinates the way a fresh LiveLabeling call does. On a
// serving path that refreshes the labeling after every repair window,
// that turns the per-window cost from O(n) into O(affected).
//
// The labeler stores the raw parent pointer of every slot (as read out
// of the live registers, credible or not) and derives the credible
// child forest from it against the *current* graph: a pointer is a
// credible child link iff it names a live neighbor; trees.None is a
// root claim; anything else labels nothing. Cycles among parent
// pointers — routine mid-reconvergence — are detected per update (an
// attach whose ancestor chain loops back through the updated node) and
// leave exactly the cycle's subtree unlabeled, matching the from-
// scratch semantics. TestLiveLabelerMatchesRebuild pins that
// equivalence move for move.
type LiveLabeler struct {
	g *graph.Graph
	d *graph.Dense

	lab     *Labeling
	parents []graph.NodeID         // raw parent pointer per slot (NoParent when none)
	kids    [][]int32              // credible child slots per slot, ascending child identity
	attach  []int32                // slot of the parent each slot is credibly attached under, -1 if none
	slotOf  map[graph.NodeID]int32 // identity -> slot, independent of the dense layer
	visited []uint32               // DFS pass stamps
	pass    uint32
	stack   []portedSlot // reusable DFS scratch
	tops    []portedSlot // reusable affected-subtree-roots scratch
}

// portedSlot is a relabel work item: a slot together with its port
// (position in its parent's kids row) captured when it was queued, so
// the relabel never re-derives ports with per-node row scans.
type portedSlot struct {
	slot int32
	port int32 // -1 when unattached (root claims, uncredible pointers)
}

// NewLiveLabeler builds a labeler over the graph's current dense slot
// space from raw per-slot parent pointers (see LiveParents). The
// parents slice is copied.
func NewLiveLabeler(g *graph.Graph, parents []graph.NodeID) *LiveLabeler {
	d := g.Dense()
	lb := &LiveLabeler{
		g:       g,
		d:       d,
		parents: slices.Clone(parents),
	}
	lb.rebuild()
	return lb
}

// Labeling returns the maintained labeling. The pointer is stable: the
// labeler updates it in place, so a router holding it must re-run
// Router.SetLabeling after node churn (edge churn keeps the slot space
// and therefore the router's alignment intact) — or simply after every
// refresh, which is what the campaigns do.
func (lb *LiveLabeler) Labeling() *Labeling { return lb.lab }

// rebuild recomputes everything from the raw pointers — the O(n)
// fallback the incremental paths are measured against.
func (lb *LiveLabeler) rebuild() {
	d := lb.d
	slots := d.Slots()
	for len(lb.parents) < slots {
		lb.parents = append(lb.parents, NoParent)
	}
	lb.lab = LiveLabeling(lb.g, lb.parents)
	lb.kids = make([][]int32, slots)
	lb.attach = make([]int32, slots)
	lb.visited = make([]uint32, slots)
	lb.slotOf = make(map[graph.NodeID]int32, slots)
	for i := 0; i < slots; i++ {
		lb.attach[i] = -1
		if d.LiveAt(i) {
			lb.slotOf[d.ID(i)] = int32(i)
		}
	}
	for i := 0; i < slots; i++ {
		if !d.LiveAt(i) {
			continue
		}
		if pi := lb.credibleParentSlot(int32(i), lb.parents[i]); pi >= 0 {
			lb.attach[i] = pi
			lb.kids[pi] = append(lb.kids[pi], int32(i))
		}
	}
	ids := d.IDs()
	for i := range lb.kids {
		if len(lb.kids[i]) > 1 {
			slices.SortFunc(lb.kids[i], func(a, b int32) int {
				return cmp.Compare(ids[a], ids[b])
			})
		}
	}
}

// credibleParentSlot resolves raw as a credible child link for slot i:
// the slot of the named parent if it is a live neighbor, else -1.
func (lb *LiveLabeler) credibleParentSlot(i int32, raw graph.NodeID) int32 {
	if raw == NoParent || raw == trees.None {
		return -1
	}
	pi, ok := lb.d.IndexOf(raw)
	if !ok || !hasNeighborID(lb.d, int(i), raw) {
		return -1
	}
	return int32(pi)
}

// SetParent records a new raw parent pointer for node v (typically
// from a StateListener observing a register write) and relabels the
// affected subtrees. Unknown nodes are ignored.
func (lb *LiveLabeler) SetParent(v graph.NodeID, raw graph.NodeID) {
	i, ok := lb.slotOf[v]
	if !ok {
		return
	}
	lb.apply(i, raw)
}

// ApplyTopo folds one engine topology event into the labeling:
//   - edge events recheck the credibility of the two endpoints'
//     pointers (a downed link orphans the subtree hanging on it; a new
//     link can legitimize a pointer that was noise before);
//   - node events grow/vacate the slot and detach its neighborhood.
//
// Wire it with net.AddTopologyListener(lb.ApplyTopo).
func (lb *LiveLabeler) ApplyTopo(ev runtime.TopoEvent) {
	switch ev.Kind {
	case runtime.TopoAddEdge, runtime.TopoRemoveEdge:
		if i, ok := lb.slotOf[ev.U]; ok && lb.parents[i] == ev.V {
			lb.apply(i, lb.parents[i])
		}
		if i, ok := lb.slotOf[ev.V]; ok && lb.parents[i] == ev.U {
			lb.apply(i, lb.parents[i])
		}
	case runtime.TopoAddNode:
		lb.nodeAdded(ev.U)
	case runtime.TopoRemoveNode:
		lb.nodeRemoved(ev.U)
	case runtime.TopoReweigh:
		// Weights do not enter coordinates; nothing to do.
	}
}

// nodeAdded registers a joined node: grow the per-slot arrays if the
// slot space grew, claim the slot, and keep the labeling's identity
// lookup and epoch stamps in sync so routers stay aligned.
func (lb *LiveLabeler) nodeAdded(id graph.NodeID) {
	d := lb.d
	slot, ok := d.IndexOf(id)
	if !ok {
		return
	}
	for len(lb.parents) < d.Slots() {
		lb.parents = append(lb.parents, NoParent)
		lb.kids = append(lb.kids, nil)
		lb.attach = append(lb.attach, -1)
		lb.visited = append(lb.visited, 0)
		lb.lab.ids = append(lb.lab.ids, graph.NoNode)
		lb.lab.crds = append(lb.lab.crds, nil)
		lb.lab.root = append(lb.lab.root, 0)
		lb.lab.has = append(lb.lab.has, false)
	}
	lb.lab.ids[slot] = id // the labeling's owned copy of the slot space
	lb.lab.sorted = d.Sorted()
	lb.lab.nodeEpoch = d.NodeEpoch()
	lb.slotOf[id] = int32(slot)
	if lb.lab.idx != nil {
		lb.lab.idx[id] = int32(slot)
	}
	lb.parents[slot] = NoParent
	lb.attach[slot] = -1
	lb.kids[slot] = lb.kids[slot][:0]
	lb.lab.clearAt(slot)
}

// nodeRemoved vacates a left node's slot: detach it from its parent
// (relabeling port-shifted siblings), unlabel it, and recheck every
// child — their pointers now name a dead identity and their subtrees
// go dark until the protocol re-hangs them.
func (lb *LiveLabeler) nodeRemoved(id graph.NodeID) {
	slot, ok := lb.slotOf[id]
	if !ok {
		return
	}
	delete(lb.slotOf, id)
	if lb.lab.idx != nil {
		delete(lb.lab.idx, id)
	}
	lb.lab.ids[slot] = graph.NoNode
	lb.lab.sorted = false
	lb.lab.nodeEpoch = lb.d.NodeEpoch()
	// Detach from the parent, relabeling shifted siblings.
	if pi := lb.attach[slot]; pi >= 0 {
		lb.detach(slot, pi)
		lb.attach[slot] = -1
		lb.flushTops()
	}
	lb.parents[slot] = NoParent
	lb.lab.clearAt(int(slot))
	// Orphan every child: each detaches from this slot and its subtree
	// unlabels (the raw pointer now names nothing).
	for _, c := range slices.Clone(lb.kids[slot]) {
		lb.apply(c, lb.parents[c])
	}
	lb.kids[slot] = lb.kids[slot][:0]
}

// posIn locates slot i in a kids row. Rows are sorted by identity, so
// live slots binary-search; a slot whose node was just removed (its
// identity already reads NoNode) falls back to a linear scan — that
// only happens once per node removal, on the dead node's own entry.
func (lb *LiveLabeler) posIn(row []int32, i int32) int {
	ids := lb.d.IDs()
	if id := ids[i]; id != graph.NoNode {
		j, ok := slices.BinarySearchFunc(row, id, func(a int32, target graph.NodeID) int {
			return cmp.Compare(ids[a], target)
		})
		if ok && row[j] == i {
			return j
		}
	}
	return slices.Index(row, i)
}

// detach removes slot i from kids[pi], queueing the port-shifted
// siblings (those after i's old position, with their new ports) as
// relabel tops.
func (lb *LiveLabeler) detach(i, pi int32) {
	row := lb.kids[pi]
	j := lb.posIn(row, i)
	if j < 0 {
		return
	}
	lb.kids[pi] = slices.Delete(row, j, j+1)
	for k := j; k < len(lb.kids[pi]); k++ {
		lb.tops = append(lb.tops, portedSlot{lb.kids[pi][k], int32(k)})
	}
}

// attachAt inserts slot i into kids[pi] in identity order, queueing the
// port-shifted siblings (those after the insertion point). It returns
// i's port.
func (lb *LiveLabeler) attachAt(i, pi int32) int32 {
	ids := lb.d.IDs()
	row := lb.kids[pi]
	j, _ := slices.BinarySearchFunc(row, i, func(a, b int32) int {
		return cmp.Compare(ids[a], ids[b])
	})
	lb.kids[pi] = slices.Insert(row, j, i)
	for k := j + 1; k < len(lb.kids[pi]); k++ {
		lb.tops = append(lb.tops, portedSlot{lb.kids[pi][k], int32(k)})
	}
	return int32(j)
}

// apply is the core primitive: record raw as slot i's pointer, rewire
// the credible forest, and relabel exactly the affected subtrees.
func (lb *LiveLabeler) apply(i int32, raw graph.NodeID) {
	newPi := lb.credibleParentSlot(i, raw)
	oldPi := lb.attach[i]
	if raw == lb.parents[i] && newPi == oldPi {
		return // nothing observable changed
	}
	lb.parents[i] = raw
	if oldPi >= 0 {
		lb.detach(i, oldPi)
	}
	lb.attach[i] = newPi
	port := int32(-1)
	if newPi >= 0 {
		port = lb.attachAt(i, newPi)
	}
	// Cycle check: if the new parent's credible ancestor chain runs
	// back through i, the stale labels above i must not leak into i's
	// subtree — the whole loop is rootless and goes unlabeled, exactly
	// as a from-scratch labeling would leave it.
	cycle := false
	if newPi >= 0 && lb.lab.has[newPi] {
		for cur, steps := newPi, 0; cur >= 0 && steps <= len(lb.attach); cur, steps = lb.attach[cur], steps+1 {
			if cur == i {
				cycle = true
				break
			}
		}
	}
	lb.refreshFrom(portedSlot{i, port}, cycle)
	lb.flushTops()
}

// flushTops relabels every queued top (except entries already handled
// by an explicit refreshFrom call this round).
func (lb *LiveLabeler) flushTops() {
	for len(lb.tops) > 0 {
		t := lb.tops[len(lb.tops)-1]
		lb.tops = lb.tops[:len(lb.tops)-1]
		lb.refreshFrom(t, false)
	}
}

// refreshFrom recomputes the labels of top's entire subtree from top's
// (already current) parent label downward. Every work item carries its
// port, captured when queued (tops) or while enumerating the parent's
// kids row (descendants), so no per-node row search happens — one
// relabel is O(subtree), not O(subtree · degree). forceUnlabeled
// severs top from its parent label (the cycle case). The visited stamp
// makes the walk terminate even when the child lists contain pointer
// cycles.
func (lb *LiveLabeler) refreshFrom(top portedSlot, forceUnlabeled bool) {
	lb.pass++
	lab := lb.lab
	d := lb.d
	stack := append(lb.stack[:0], top)
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		x := e.slot
		if lb.visited[x] == lb.pass {
			continue
		}
		lb.visited[x] = lb.pass
		switch {
		case x == top.slot && forceUnlabeled:
			lab.clearAt(int(x))
		case lb.parents[x] == trees.None:
			lab.setAt(int(x), Coords{}, d.ID(int(x)))
		default:
			pi := lb.attach[x]
			if pi >= 0 && lab.has[pi] {
				// Parent labeled (freshly, if it is inside this subtree
				// walk — parents are always popped before their kids).
				base := lab.crds[pi]
				cc := make(Coords, len(base)+1)
				copy(cc, base)
				cc[len(base)] = Port(e.port)
				lab.setAt(int(x), cc, lab.root[pi])
			} else {
				lab.clearAt(int(x))
			}
		}
		for k, c := range lb.kids[x] {
			stack = append(stack, portedSlot{c, int32(k)})
		}
	}
	lb.stack = stack[:0]
}
