package routing

import (
	"fmt"
	"slices"

	"silentspan/internal/graph"
)

// DropReason classifies why a packet could not be delivered.
type DropReason int

const (
	// DropNone: the packet was delivered.
	DropNone DropReason = iota
	// DropNoSourceCoord: the current node carries no coordinate.
	DropNoSourceCoord
	// DropNoDestCoord: the destination carries no coordinate, or lives
	// in a different coordinate space (another claimed root).
	DropNoDestCoord
	// DropDeadEnd: no neighbor is strictly closer to the destination.
	// Impossible over a complete labeling; observed on decayed ones.
	DropDeadEnd
	// DropLoop: the packet revisited the same node too many times —
	// only possible when the labeling changed under an in-flight packet.
	DropLoop
	// DropTTL: the hop budget was exhausted.
	DropTTL
)

// String names the reason.
func (r DropReason) String() string {
	switch r {
	case DropNone:
		return "delivered"
	case DropNoSourceCoord:
		return "no-source-coord"
	case DropNoDestCoord:
		return "no-dest-coord"
	case DropDeadEnd:
		return "dead-end"
	case DropLoop:
		return "loop"
	case DropTTL:
		return "ttl"
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// Options configures a Router. The zero value is the production mode:
// greedy shortcutting over every graph edge, default hop budget.
type Options struct {
	// TreeOnly restricts forwarding to tree edges (parent/child under
	// the labeling): the packet follows the tree path exactly. Used by
	// the stretch ablation, where it isolates the contribution of the
	// non-tree shortcuts.
	TreeOnly bool
	// MaxHops is the per-packet hop budget; 0 means 2n+16.
	MaxHops int
	// RecordPaths makes Route keep the full node path of each delivery,
	// for loop-freedom assertions in tests. Off in benchmarks.
	RecordPaths bool
}

// Router forwards packets hop-by-hop over a graph using a coordinate
// labeling: each hop moves to the neighbor strictly closest (in tree
// distance computed from coordinates) to the destination. Over a
// complete labeling the tree distance decreases at every hop, so
// routing is loop-free and always delivers; over a decayed labeling
// (mid-reconvergence) packets may stall, loop, or drop — which is
// exactly what the fault-interplay experiments measure.
type Router struct {
	g   *graph.Graph
	d   *graph.Dense
	lab *Labeling
	opt Options
	// aligned reports that the labeling's index space is exactly the
	// graph's dense snapshot, so forwarding can address coordinates by
	// neighbor index with no identity lookups. True for every labeling
	// built over this graph (Label of a spanning tree, LiveLabeling);
	// false only for labelings of foreign node sets, which fall back to
	// per-identity binary searches.
	aligned bool
}

// NewRouter builds a router over g with the given labeling.
func NewRouter(g *graph.Graph, lab *Labeling, opt Options) *Router {
	if opt.MaxHops == 0 {
		opt.MaxHops = 2*g.N() + 16
	}
	r := &Router{g: g, d: g.Dense(), opt: opt}
	r.SetLabeling(lab)
	return r
}

// Labeling returns the router's current labeling.
func (r *Router) Labeling() *Labeling { return r.lab }

// MaxHops returns the per-packet hop budget — serving layers that carry
// packets themselves (the cluster gateway) enforce the same TTL the
// router's own Route loop would.
func (r *Router) MaxHops() int { return r.opt.MaxHops }

// SetLabeling swaps the labeling — the topology-change path: the
// runtime's state or topology listener fires, the serving layer
// re-extracts coordinates, and in-flight packets continue over the new
// labels. The dense layout is refreshed alongside, so adjacency
// mutated since the router was built is picked up with the new labels.
//
// The slot-aligned fast path requires a labeling built over this
// graph's own dense layout at the *current* slot assignment (same
// Dense, same NodeEpoch): after a join or leave, an older labeling's
// indices may point at recycled slots, so the router falls back to
// identity lookups until a fresh labeling arrives. Edge churn never
// breaks alignment. Tree-built labelings align by identity-space
// equality, which node churn breaks naturally (holes/reordering).
func (r *Router) SetLabeling(lab *Labeling) {
	r.d = r.g.Dense()
	r.lab = lab
	if lab.d != nil {
		r.aligned = lab.d == r.d && lab.nodeEpoch == r.d.NodeEpoch()
	} else {
		r.aligned = sameIDSpace(r.d.IDs(), lab.ids)
	}
}

// sameIDSpace reports whether the two sorted identity slices are
// identical (cheap alias check first; labelings built from the graph's
// own dense snapshot share the slice).
func sameIDSpace(a, b []graph.NodeID) bool {
	if len(a) == len(b) && len(a) > 0 && &a[0] == &b[0] {
		return true
	}
	return slices.Equal(a, b)
}

// NextHop makes one greedy forwarding decision at cur for a packet
// destined to dst. ok is false when the packet cannot progress, with
// the reason; a DropDeadEnd or coordinate failure is not necessarily
// fatal for an in-flight packet (the labeling may heal), so callers
// decide whether to stall or drop.
func (r *Router) NextHop(cur, dst graph.NodeID) (graph.NodeID, DropReason, bool) {
	lab := r.lab
	ci, okC := lab.indexOf(cur)
	if !okC || !lab.has[ci] {
		return 0, DropNoSourceCoord, false
	}
	cc := lab.crds[ci]
	di, okD := lab.indexOf(dst)
	if !okD || !lab.has[di] || lab.root[ci] != lab.root[di] {
		return 0, DropNoDestCoord, false
	}
	cd := lab.crds[di]
	curDist := cc.Dist(cd)
	best := graph.NodeID(0)
	bestDist := curDist
	space := lab.root[ci]
	if r.aligned {
		// Fast path: the labeling index IS the dense index, so neighbor
		// coordinates are addressed directly.
		ids := r.d.NeighborIDs(ci)
		for k, ui := range r.d.NeighborIndices(ci) {
			// A join between labeling refreshes can grow the slot space
			// past the labeling's arrays; such slots carry no label yet.
			if int(ui) >= len(lab.has) || !lab.has[ui] || lab.root[ui] != space {
				continue
			}
			uc := lab.crds[ui]
			if r.opt.TreeOnly && !treeNeighbors(cc, uc) {
				continue
			}
			if d := uc.Dist(cd); d < bestDist {
				best, bestDist = ids[k], d
			}
		}
	} else {
		for _, u := range r.g.NeighborsShared(cur) {
			ui, ok := lab.indexOf(u)
			if !ok || !lab.has[ui] || lab.root[ui] != space {
				continue
			}
			uc := lab.crds[ui]
			if r.opt.TreeOnly && !treeNeighbors(cc, uc) {
				continue
			}
			if d := uc.Dist(cd); d < bestDist {
				best, bestDist = u, d
			}
		}
	}
	if bestDist >= curDist {
		return 0, DropDeadEnd, false
	}
	return best, DropNone, true
}

// treeNeighbors reports whether the coordinates a and b label adjacent
// tree nodes: one is the other's parent, i.e. one path extends the
// other by exactly one port.
func treeNeighbors(a, b Coords) bool {
	if len(a) == len(b)+1 {
		a, b = b, a
	} else if len(b) != len(a)+1 {
		return false
	}
	return a.IsAncestorOf(b)
}

// Delivery is the outcome of routing one packet.
type Delivery struct {
	Src, Dst  graph.NodeID
	Delivered bool
	Hops      int
	Reason    DropReason
	// Path is src..dst inclusive, only when Options.RecordPaths.
	Path []graph.NodeID
}

// Route sends one packet from src to dst over the current labeling.
// With a complete labeling the route is loop-free and delivers in at
// most TreeDist(src, dst) hops; shortcuts can only shorten it.
func (r *Router) Route(src, dst graph.NodeID) Delivery {
	d := Delivery{Src: src, Dst: dst}
	if r.opt.RecordPaths {
		d.Path = append(d.Path, src)
	}
	cur := src
	for cur != dst {
		if d.Hops >= r.opt.MaxHops {
			d.Reason = DropTTL
			return d
		}
		next, reason, ok := r.NextHop(cur, dst)
		if !ok {
			d.Reason = reason
			return d
		}
		cur = next
		d.Hops++
		if r.opt.RecordPaths {
			d.Path = append(d.Path, cur)
		}
	}
	d.Delivered = true
	return d
}

// Packet is an in-flight packet for stepwise routing across labeling
// refreshes (the fault-interplay experiments). Unlike Route, a Packet
// survives labeling swaps between hops, so the monotone-distance
// argument no longer holds: it tracks revisits to detect loops.
type Packet struct {
	Src, Dst graph.NodeID
	Cur      graph.NodeID
	Hops     int
	// Stalls counts windows in which the packet could not progress
	// (missing coordinates or dead ends on a decayed labeling).
	Stalls int
	// Looped reports whether the packet ever revisited a node.
	Looped bool
	// Done/Delivered/Reason: final outcome once Done.
	Done      bool
	Delivered bool
	Reason    DropReason

	visits map[graph.NodeID]int
}

// NewPacket starts a packet at src destined for dst.
func NewPacket(src, dst graph.NodeID) *Packet {
	return &Packet{Src: src, Dst: dst, Cur: src, visits: map[graph.NodeID]int{src: 1}}
}

// maxRevisits is how many times an in-flight packet may return to the
// same node before it is declared caught in a loop and dropped.
const maxRevisits = 4

// Advance moves the packet up to steps hops over the router's current
// labeling. A packet that cannot progress stalls (and may resume after
// the labeling heals); a packet revisiting a node is marked looped and
// dropped after maxRevisits visits; the router's hop budget is the TTL.
func (r *Router) Advance(p *Packet, steps int) {
	for i := 0; i < steps && !p.Done; i++ {
		if p.Cur == p.Dst {
			p.Done, p.Delivered = true, true
			return
		}
		if p.Hops >= r.opt.MaxHops {
			p.Done, p.Reason = true, DropTTL
			return
		}
		next, _, ok := r.NextHop(p.Cur, p.Dst)
		if !ok {
			p.Stalls++
			return
		}
		p.Cur = next
		p.Hops++
		p.visits[next]++
		if p.visits[next] > 1 {
			p.Looped = true
			if p.visits[next] > maxRevisits {
				p.Done, p.Reason = true, DropLoop
				return
			}
		}
	}
	if !p.Done && p.Cur == p.Dst {
		p.Done, p.Delivered = true, true
	}
}
