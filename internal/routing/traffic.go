package routing

import (
	"fmt"
	"math/rand"

	"silentspan/internal/graph"
)

// Pair is one packet's endpoints.
type Pair struct {
	Src, Dst graph.NodeID
}

// UniformPairs draws count source/destination pairs uniformly at random
// (src != dst) — the baseline any-to-any workload. Fewer than two
// distinct endpoints admit no pair: the result is empty (churn
// schedules can shrink a cohort's endpoint pool arbitrarily).
func UniformPairs(nodes []graph.NodeID, count int, rng *rand.Rand) []Pair {
	if len(nodes) < 2 {
		return nil
	}
	out := make([]Pair, 0, count)
	for len(out) < count {
		s := nodes[rng.Intn(len(nodes))]
		d := nodes[rng.Intn(len(nodes))]
		if s != d {
			out = append(out, Pair{Src: s, Dst: d})
		}
	}
	return out
}

// HotspotPairs draws a root-heavy workload: a fraction toHub of packets
// go to the hub (sensor readings converging on the sink), the rest come
// from the hub (commands fanning out), modelling the sensor-network
// traffic the paper's MDST construction is motivated by.
func HotspotPairs(nodes []graph.NodeID, hub graph.NodeID, count int, toHub float64, rng *rand.Rand) []Pair {
	out := make([]Pair, 0, count)
	for len(out) < count {
		v := nodes[rng.Intn(len(nodes))]
		if v == hub {
			continue
		}
		if rng.Float64() < toHub {
			out = append(out, Pair{Src: v, Dst: hub})
		} else {
			out = append(out, Pair{Src: hub, Dst: v})
		}
	}
	return out
}

// AllPairsSample draws count distinct ordered pairs without replacement
// (all n(n-1) ordered pairs when count exceeds their number) — the
// exhaustive coverage workload for small networks.
func AllPairsSample(nodes []graph.NodeID, count int, rng *rand.Rand) []Pair {
	n := len(nodes)
	total := n * (n - 1)
	if count >= total {
		out := make([]Pair, 0, total)
		for _, s := range nodes {
			for _, d := range nodes {
				if s != d {
					out = append(out, Pair{Src: s, Dst: d})
				}
			}
		}
		return out
	}
	seen := make(map[Pair]bool, count)
	out := make([]Pair, 0, count)
	for len(out) < count {
		p := Pair{Src: nodes[rng.Intn(n)], Dst: nodes[rng.Intn(n)]}
		if p.Src == p.Dst || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// Stats aggregates the outcome of driving a batch of packets.
type Stats struct {
	Sent      int
	Delivered int
	Dropped   int
	// Looped counts packets that revisited a node (in-flight packets
	// across labeling refreshes; always 0 for single-labeling routing).
	Looped       int
	DropByReason map[DropReason]int

	// HopSum / MeanHops are over delivered packets.
	HopSum   int
	MeanHops float64

	// Stretch is delivered hops divided by the exact shortest-path
	// distance, measured on the packets whose source was among the
	// first MaxExactSources distinct sources (exact distances need one
	// BFS per source; the cap keeps all-uniform workloads affordable).
	StretchSamples int
	MeanStretch    float64
	MaxStretch     float64
	// ExactSources is how many sources got a BFS; when it hit the cap,
	// stretch is a sample, not a census.
	ExactSources int
}

// DeliveryRate returns the delivered fraction in [0,1].
func (s Stats) DeliveryRate() float64 {
	if s.Sent == 0 {
		return 1
	}
	return float64(s.Delivered) / float64(s.Sent)
}

// String renders the one-line summary the CLIs print.
func (s Stats) String() string {
	return fmt.Sprintf("sent=%d delivered=%d (%.2f%%) dropped=%d looped=%d mean-hops=%.2f mean-stretch=%.3f (over %d sampled)",
		s.Sent, s.Delivered, 100*s.DeliveryRate(), s.Dropped, s.Looped, s.MeanHops, s.MeanStretch, s.StretchSamples)
}

// DriveOptions configures a traffic run.
type DriveOptions struct {
	// MaxExactSources caps the number of per-source BFS computations
	// backing the stretch measurement; 0 means 256. Negative disables
	// stretch measurement entirely.
	MaxExactSources int
}

// Drive routes every pair and aggregates statistics. Stretch is
// measured against exact shortest paths computed per distinct source up
// to the configured cap.
func Drive(r *Router, pairs []Pair, opt DriveOptions) (Stats, error) {
	if opt.MaxExactSources == 0 {
		opt.MaxExactSources = 256
	}
	stats := Stats{DropByReason: make(map[DropReason]int)}
	exact := make(map[graph.NodeID]map[graph.NodeID]int)
	g := r.g
	for _, p := range pairs {
		stats.Sent++
		d := r.Route(p.Src, p.Dst)
		if !d.Delivered {
			stats.Dropped++
			stats.DropByReason[d.Reason]++
			continue
		}
		stats.Delivered++
		stats.HopSum += d.Hops
		if opt.MaxExactSources < 0 {
			continue
		}
		dist, ok := exact[p.Src]
		if !ok && len(exact) < opt.MaxExactSources {
			m, err := g.BFSDistances(p.Src)
			if err != nil {
				return stats, fmt.Errorf("routing: exact distances from %d: %w", p.Src, err)
			}
			exact[p.Src] = m
			dist, ok = m, true
		}
		if !ok {
			continue
		}
		sp := dist[p.Dst]
		if sp <= 0 {
			return stats, fmt.Errorf("routing: zero shortest path %d -> %d", p.Src, p.Dst)
		}
		stretch := float64(d.Hops) / float64(sp)
		stats.StretchSamples++
		stats.MeanStretch += stretch
		if stretch > stats.MaxStretch {
			stats.MaxStretch = stretch
		}
	}
	if stats.Delivered > 0 {
		stats.MeanHops = float64(stats.HopSum) / float64(stats.Delivered)
	}
	if stats.StretchSamples > 0 {
		stats.MeanStretch /= float64(stats.StretchSamples)
	}
	stats.ExactSources = len(exact)
	return stats, nil
}
