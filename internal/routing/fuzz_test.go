package routing

import (
	"testing"

	"silentspan/internal/bits"
)

// coordsFromBytes derives a port path from fuzz input: consecutive byte
// pairs become 16-bit ports, covering the full Port range.
func coordsFromBytes(data []byte) Coords {
	c := make(Coords, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		c = append(c, Port(uint16(data[i])<<8|uint16(data[i+1])))
	}
	return c
}

// bitsFromBytes expands data into a bit string, MSB first per byte.
func bitsFromBytes(data []byte) bits.String {
	var s bits.String
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			s = s.AppendBit(b>>uint(i)&1 == 1)
		}
	}
	return s
}

// FuzzCoordsRoundtrip checks Encode→DecodeCoords identity for arbitrary
// port paths, including ports at the uint16 extremes.
func FuzzCoordsRoundtrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})
	f.Add([]byte{0xff, 0xff, 0x00, 0x01})
	f.Add([]byte{0x00, 0x03, 0x00, 0x00, 0x7f, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			t.Skip("cap path length")
		}
		c := coordsFromBytes(data)
		enc := c.Encode()
		if enc.Len() != c.EncodedBits() {
			t.Fatalf("Encode has %d bits, EncodedBits says %d", enc.Len(), c.EncodedBits())
		}
		r := bits.NewReader(enc)
		got, err := DecodeCoords(r)
		if err != nil {
			t.Fatalf("DecodeCoords(Encode(%v)): %v", c, err)
		}
		if !got.Equal(c) {
			t.Fatalf("roundtrip: got %v, want %v", got, c)
		}
		if r.Remaining() != 0 {
			t.Fatalf("roundtrip left %d bits unread", r.Remaining())
		}
	})
}

// FuzzDecodeCoords feeds DecodeCoords arbitrary bit streams: it must
// never panic or over-allocate, and whenever it accepts an input the
// decoded coordinate must re-encode to exactly the consumed prefix.
func FuzzDecodeCoords(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80})                                           // length 1: empty coordinate
	f.Add([]byte{0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}) // huge length claim
	f.Add([]byte{0x26, 0x80})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			t.Skip("cap input length")
		}
		r := bits.NewReader(bitsFromBytes(data))
		c, err := DecodeCoords(r)
		if err != nil {
			return
		}
		re := c.Encode()
		if re.Len() != r.Pos() {
			t.Fatalf("decoded %v from %d bits, re-encodes to %d", c, r.Pos(), re.Len())
		}
		if !bitsFromBytes(data).Prefix(r.Pos()).Equal(re) {
			t.Fatalf("re-encoding %v does not reproduce the consumed prefix", c)
		}
	})
}
