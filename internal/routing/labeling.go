package routing

import (
	"cmp"
	"fmt"
	"slices"

	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

// Labeling assigns tree coordinates to nodes. A labeling built from a
// validated tree (Label) covers every node and has a single root; a
// labeling built from raw parent pointers (LiveLabeling) may be partial
// — nodes on parent cycles or pointing at non-neighbors carry no
// coordinate — and may have several claimed roots, each defining its own
// coordinate space.
//
// Internally a Labeling is array-backed over the same contiguous index
// space as graph.Dense: ids holds the covered identities in increasing
// order, and coords/root/has are parallel to it. The router detects
// when a labeling's index space coincides with its graph's dense
// snapshot and then forwards entirely index-addressed, with no per-hop
// map lookups (see Router.NextHop).
type Labeling struct {
	ids  []graph.NodeID // the labeling's index space; graph.NoNode marks holes
	crds []Coords       // crds[i] is the coordinate of ids[i], valid iff has[i]
	root []graph.NodeID // root[i] is the coordinate space of ids[i]
	has  []bool
	n    int // labeled nodes

	// sorted: ids is ascending with no holes, so indexOf binary-
	// searches. After topology churn has recycled dense slots, the
	// space is unsorted and indexOf goes through the lazily built idx
	// map instead.
	sorted bool
	idx    map[graph.NodeID]int32

	// d + nodeEpoch: labelings built over a graph's dense slot space
	// record which Dense and which slot-assignment epoch they saw, so
	// the router takes its slot-aligned fast path exactly while the
	// assignment is provably unchanged (see Router.SetLabeling). The
	// ids slice is an owned copy, never the Dense's live array: a
	// labeling held across churn keeps a consistent (merely stale)
	// identity space instead of a corrupted one.
	d         *graph.Dense
	nodeEpoch uint64
}

// newLabeling returns an unlabeled labeling over the given identity
// space (shared, read-only).
func newLabeling(ids []graph.NodeID) *Labeling {
	return &Labeling{
		ids:    ids,
		crds:   make([]Coords, len(ids)),
		root:   make([]graph.NodeID, len(ids)),
		has:    make([]bool, len(ids)),
		sorted: slices.IsSorted(ids),
	}
}

// indexOf returns v's index in the labeling's identity space.
func (l *Labeling) indexOf(v graph.NodeID) (int, bool) {
	if l.sorted {
		return slices.BinarySearch(l.ids, v)
	}
	if l.idx == nil {
		l.idx = make(map[graph.NodeID]int32, len(l.ids))
		for i, id := range l.ids {
			if id != graph.NoNode {
				l.idx[id] = int32(i)
			}
		}
	}
	i, ok := l.idx[v]
	return int(i), ok
}

// setAt labels index i with coordinate c in root r's space.
func (l *Labeling) setAt(i int, c Coords, r graph.NodeID) {
	if !l.has[i] {
		l.has[i] = true
		l.n++
	}
	l.crds[i] = c
	l.root[i] = r
}

// clearAt drops index i's label (no-op if unlabeled).
func (l *Labeling) clearAt(i int) {
	if l.has[i] {
		l.has[i] = false
		l.n--
		l.crds[i] = nil
		l.root[i] = 0
	}
}

// Label builds the full coordinate labeling of a validated tree in
// O(n log n): a top-down pass assigning each node its parent's
// coordinate extended by its port (index within the parent's sorted
// children).
func Label(t *trees.Tree) *Labeling {
	ix := trees.NewIndex(t)
	l := newLabeling(t.Nodes()) // Nodes returns a fresh sorted slice
	root := t.Root()
	ri, _ := l.indexOf(root)
	l.setAt(ri, Coords{}, root)
	for _, v := range ix.BFSOrder() {
		vi, _ := l.indexOf(v)
		base := l.crds[vi]
		for port, c := range ix.Children(v) {
			cc := make(Coords, len(base)+1)
			copy(cc, base)
			cc[len(base)] = Port(port)
			ci, _ := l.indexOf(c)
			l.setAt(ci, cc, root)
		}
	}
	return l
}

// LiveLabeling builds the best labeling obtainable from raw parent
// pointers read out of a live (possibly mid-reconvergence, possibly
// corrupted) network. Pointers to non-neighbors are discarded; every
// node whose parent pointer is trees.None becomes the root of its own
// coordinate space; nodes that do not reach any root (parent cycles)
// get no coordinate. This models what a serving layer actually has
// while the self-stabilizing construction repairs itself underneath it.
//
// The pass is entirely index-addressed over the graph's dense slot
// space: parents is indexed by dense slot (use LiveParents to read one
// out of a network) with NoParent marking nodes that carry no credible
// parent pointer (vacated slots included). The labeling's index space
// is the slot space, so a router over the same graph forwards over it
// without any identity lookups. Ports are assigned by ascending child
// identity — stable across slot recycling, and identical to the port
// numbering of Label over a validated tree.
func LiveLabeling(g *graph.Graph, parents []graph.NodeID) *Labeling {
	d := g.Dense()
	n := d.Slots()
	if len(parents) != n {
		panic(fmt.Sprintf("routing: %d parent entries for %d slots", len(parents), n))
	}
	l := newLabeling(slices.Clone(d.IDs()))
	l.d = d
	l.nodeEpoch = d.NodeEpoch()
	// Children lists from the credible pointers only, in increasing
	// child order (one counting pass, then a fill pass — no per-node
	// append growth).
	childCount := make([]int32, n+1)
	childIdx := make([]int32, n) // parent slot of each child, or -1
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		childIdx[i] = -1
		if !d.LiveAt(i) {
			continue
		}
		p := parents[i]
		if p == NoParent {
			continue
		}
		if p == trees.None {
			l.setAt(i, Coords{}, d.ID(i))
			queue = append(queue, int32(i))
			continue
		}
		pi, ok := d.IndexOf(p)
		if !ok || !hasNeighborID(d, i, p) {
			continue // corrupted pointer: not even a neighbor
		}
		childIdx[i] = int32(pi)
		childCount[pi+1]++
	}
	for i := 1; i <= n; i++ {
		childCount[i] += childCount[i-1]
	}
	children := make([]int32, childCount[n])
	fill := make([]int32, n)
	copy(fill, childCount[:n])
	for i := 0; i < n; i++ {
		if pi := childIdx[i]; pi >= 0 {
			children[fill[pi]] = int32(i)
			fill[pi]++
		}
	}
	if !d.Sorted() {
		// Ascending slot order is no longer ascending identity order:
		// restore the identity-sorted port numbering per parent.
		ids := d.IDs()
		for i := 0; i < n; i++ {
			row := children[childCount[i]:fill[i]]
			if len(row) > 1 {
				slices.SortFunc(row, func(a, b int32) int {
					return cmp.Compare(ids[a], ids[b])
				})
			}
		}
	}
	// Top-down from each claimed root; unreached nodes stay unlabeled.
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		base := l.crds[v]
		space := l.root[v]
		for port, c := range children[childCount[v]:fill[v]] {
			cc := make(Coords, len(base)+1)
			copy(cc, base)
			cc[len(base)] = Port(port)
			l.setAt(int(c), cc, space)
			queue = append(queue, c)
		}
	}
	return l
}

// hasNeighborID reports whether identity p is a neighbor of dense slot
// i. The search runs over the identity-sorted neighbor row, which
// stays sorted across churn (slot order does not).
func hasNeighborID(d *graph.Dense, i int, p graph.NodeID) bool {
	_, ok := slices.BinarySearch(d.NeighborIDs(i), p)
	return ok
}

// NoParent marks a dense index whose register carries no credible
// parent pointer at all (a foreign or corrupted state), as opposed to
// trees.None, which is a genuine "I am a root" claim.
const NoParent = graph.NodeID(-1)

// ParentsFromMap converts an identity-keyed parent map into the
// slot-indexed parent slice LiveLabeling consumes: absent nodes and
// vacated slots become NoParent.
func ParentsFromMap(g *graph.Graph, parent map[graph.NodeID]graph.NodeID) []graph.NodeID {
	d := g.Dense()
	out := make([]graph.NodeID, d.Slots())
	for i := range out {
		out[i] = NoParent
		if d.LiveAt(i) {
			if p, ok := parent[d.ID(i)]; ok {
				out[i] = p
			}
		}
	}
	return out
}

// Coords returns v's coordinate; ok is false for unlabeled nodes.
func (l *Labeling) Coords(v graph.NodeID) (Coords, bool) {
	i, ok := l.indexOf(v)
	if !ok || !l.has[i] {
		return nil, false
	}
	return l.crds[i], true
}

// RootOf returns the root of the coordinate space v belongs to; ok is
// false for unlabeled nodes.
func (l *Labeling) RootOf(v graph.NodeID) (graph.NodeID, bool) {
	i, ok := l.indexOf(v)
	if !ok || !l.has[i] {
		return 0, false
	}
	return l.root[i], true
}

// Covered returns the number of labeled nodes.
func (l *Labeling) Covered() int { return l.n }

// Complete reports whether every live node got a coordinate in one
// single coordinate space — true exactly for labelings of validated
// trees (and of fully re-stabilized live networks).
func (l *Labeling) Complete() bool {
	size := 0
	for _, id := range l.ids {
		if id != graph.NoNode {
			size++
		}
	}
	if l.n != size {
		return false
	}
	space := graph.NoNode
	for i := range l.root {
		if !l.has[i] {
			continue
		}
		if space == graph.NoNode {
			space = l.root[i]
		} else if l.root[i] != space {
			return false
		}
	}
	return true
}

// TreeDist returns the tree distance between u and v. ok is false when
// either node is unlabeled or they belong to different coordinate
// spaces (in which case no tree route exists under this labeling).
func (l *Labeling) TreeDist(u, v graph.NodeID) (int, bool) {
	ui, okU := l.indexOf(u)
	vi, okV := l.indexOf(v)
	if !okU || !okV || !l.has[ui] || !l.has[vi] || l.root[ui] != l.root[vi] {
		return 0, false
	}
	return l.crds[ui].Dist(l.crds[vi]), true
}

// IsAncestor reports whether u is an ancestor of v under the labeling
// (false when either is unlabeled or the spaces differ).
func (l *Labeling) IsAncestor(u, v graph.NodeID) bool {
	ui, okU := l.indexOf(u)
	vi, okV := l.indexOf(v)
	return okU && okV && l.has[ui] && l.has[vi] &&
		l.root[ui] == l.root[vi] && l.crds[ui].IsAncestorOf(l.crds[vi])
}

// MaxLabelBits returns the largest encoded coordinate in bits — the
// per-register space a node would pay to carry its label (the space
// accounting next to the paper's O(log n)-bit registers).
func (l *Labeling) MaxLabelBits() int {
	max := 0
	for i, c := range l.crds {
		if !l.has[i] {
			continue
		}
		if b := c.EncodedBits(); b > max {
			max = b
		}
	}
	return max
}

// Verify checks a complete labeling against its tree: every node's
// coordinate must be exactly its parent's coordinate extended by its
// port, so depths, ports, and the whole root path are validated for
// every node. It is used by tests as the labeler's ground-truth check.
func (l *Labeling) Verify(t *trees.Tree) error {
	if !l.Complete() {
		return fmt.Errorf("routing: labeling covers %d of %d nodes", l.Covered(), len(l.ids))
	}
	ix := trees.NewIndex(t)
	for i, v := range l.ids {
		c := l.crds[i]
		if v == t.Root() {
			if len(c) != 0 {
				return fmt.Errorf("routing: root %d has non-empty coordinate %v", v, c)
			}
			continue
		}
		p := t.Parent(v)
		port, ok := ix.PortOf(p, v)
		if !ok {
			return fmt.Errorf("routing: node %d is not a child of its parent %d", v, p)
		}
		pc, _ := l.Coords(p)
		if len(c) != len(pc)+1 || !pc.IsAncestorOf(c) || c[len(c)-1] != Port(port) {
			return fmt.Errorf("routing: node %d coordinate %v does not extend parent %d's %v by port %d",
				v, c, p, pc, port)
		}
	}
	return nil
}
