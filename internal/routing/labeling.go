package routing

import (
	"fmt"

	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

// Labeling assigns tree coordinates to nodes. A labeling built from a
// validated tree (Label) covers every node and has a single root; a
// labeling built from raw parent pointers (LiveLabeling) may be partial
// — nodes on parent cycles or pointing at non-neighbors carry no
// coordinate — and may have several claimed roots, each defining its own
// coordinate space.
type Labeling struct {
	coords map[graph.NodeID]Coords
	rootOf map[graph.NodeID]graph.NodeID
	n      int // nodes the labeling was built over
}

// Label builds the full coordinate labeling of a validated tree in
// O(n): a top-down pass assigning each node its parent's coordinate
// extended by its port (index within the parent's sorted children).
func Label(t *trees.Tree) *Labeling {
	ix := trees.NewIndex(t)
	l := &Labeling{
		coords: make(map[graph.NodeID]Coords, t.N()),
		rootOf: make(map[graph.NodeID]graph.NodeID, t.N()),
		n:      t.N(),
	}
	root := t.Root()
	l.coords[root] = Coords{}
	l.rootOf[root] = root
	for _, v := range ix.BFSOrder() {
		base := l.coords[v]
		for port, c := range ix.Children(v) {
			cc := make(Coords, len(base)+1)
			copy(cc, base)
			cc[len(base)] = Port(port)
			l.coords[c] = cc
			l.rootOf[c] = root
		}
	}
	return l
}

// LiveLabeling builds the best labeling obtainable from raw parent
// pointers read out of a live (possibly mid-reconvergence, possibly
// corrupted) network. Pointers to non-neighbors are discarded; every
// node whose parent pointer is trees.None becomes the root of its own
// coordinate space; nodes that do not reach any root (parent cycles)
// get no coordinate. This models what a serving layer actually has
// while the self-stabilizing construction repairs itself underneath it.
func LiveLabeling(g *graph.Graph, parent map[graph.NodeID]graph.NodeID) *Labeling {
	nodes := g.Nodes()
	l := &Labeling{
		coords: make(map[graph.NodeID]Coords, len(nodes)),
		rootOf: make(map[graph.NodeID]graph.NodeID, len(nodes)),
		n:      len(nodes),
	}
	// Children lists from the credible pointers only.
	children := make(map[graph.NodeID][]graph.NodeID, len(nodes))
	var queue []graph.NodeID
	for _, v := range nodes {
		p, ok := parent[v]
		if !ok {
			continue
		}
		if p == trees.None {
			l.coords[v] = Coords{}
			l.rootOf[v] = v
			queue = append(queue, v)
			continue
		}
		if !g.HasEdge(v, p) {
			continue // corrupted pointer: not even a neighbor
		}
		children[p] = append(children[p], v) // already in increasing v order
	}
	// Top-down from each claimed root; unreached nodes stay unlabeled.
	for i := 0; i < len(queue); i++ {
		v := queue[i]
		base := l.coords[v]
		for port, c := range children[v] {
			cc := make(Coords, len(base)+1)
			copy(cc, base)
			cc[len(base)] = Port(port)
			l.coords[c] = cc
			l.rootOf[c] = l.rootOf[v]
			queue = append(queue, c)
		}
	}
	return l
}

// Coords returns v's coordinate; ok is false for unlabeled nodes.
func (l *Labeling) Coords(v graph.NodeID) (Coords, bool) {
	c, ok := l.coords[v]
	return c, ok
}

// RootOf returns the root of the coordinate space v belongs to; ok is
// false for unlabeled nodes.
func (l *Labeling) RootOf(v graph.NodeID) (graph.NodeID, bool) {
	r, ok := l.rootOf[v]
	return r, ok
}

// Covered returns the number of labeled nodes.
func (l *Labeling) Covered() int { return len(l.coords) }

// Complete reports whether every node got a coordinate in one single
// coordinate space — true exactly for labelings of validated trees.
func (l *Labeling) Complete() bool {
	if len(l.coords) != l.n {
		return false
	}
	roots := make(map[graph.NodeID]bool, 1)
	for _, r := range l.rootOf {
		roots[r] = true
	}
	return len(roots) == 1
}

// TreeDist returns the tree distance between u and v. ok is false when
// either node is unlabeled or they belong to different coordinate
// spaces (in which case no tree route exists under this labeling).
func (l *Labeling) TreeDist(u, v graph.NodeID) (int, bool) {
	cu, okU := l.coords[u]
	cv, okV := l.coords[v]
	if !okU || !okV || l.rootOf[u] != l.rootOf[v] {
		return 0, false
	}
	return cu.Dist(cv), true
}

// IsAncestor reports whether u is an ancestor of v under the labeling
// (false when either is unlabeled or the spaces differ).
func (l *Labeling) IsAncestor(u, v graph.NodeID) bool {
	cu, okU := l.coords[u]
	cv, okV := l.coords[v]
	return okU && okV && l.rootOf[u] == l.rootOf[v] && cu.IsAncestorOf(cv)
}

// MaxLabelBits returns the largest encoded coordinate in bits — the
// per-register space a node would pay to carry its label (the space
// accounting next to the paper's O(log n)-bit registers).
func (l *Labeling) MaxLabelBits() int {
	max := 0
	for _, c := range l.coords {
		if b := c.EncodedBits(); b > max {
			max = b
		}
	}
	return max
}

// Verify checks a complete labeling against its tree: every node's
// coordinate must be exactly its parent's coordinate extended by its
// port, so depths, ports, and the whole root path are validated for
// every node. It is used by tests as the labeler's ground-truth check.
func (l *Labeling) Verify(t *trees.Tree) error {
	if !l.Complete() {
		return fmt.Errorf("routing: labeling covers %d of %d nodes", l.Covered(), l.n)
	}
	ix := trees.NewIndex(t)
	for v, c := range l.coords {
		if v == t.Root() {
			if len(c) != 0 {
				return fmt.Errorf("routing: root %d has non-empty coordinate %v", v, c)
			}
			continue
		}
		p := t.Parent(v)
		port, ok := ix.PortOf(p, v)
		if !ok {
			return fmt.Errorf("routing: node %d is not a child of its parent %d", v, p)
		}
		pc := l.coords[p]
		if len(c) != len(pc)+1 || !pc.IsAncestorOf(c) || c[len(c)-1] != Port(port) {
			return fmt.Errorf("routing: node %d coordinate %v does not extend parent %d's %v by port %d",
				v, c, p, pc, port)
		}
	}
	return nil
}
