package routing

import (
	"fmt"
	"slices"

	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

// Labeling assigns tree coordinates to nodes. A labeling built from a
// validated tree (Label) covers every node and has a single root; a
// labeling built from raw parent pointers (LiveLabeling) may be partial
// — nodes on parent cycles or pointing at non-neighbors carry no
// coordinate — and may have several claimed roots, each defining its own
// coordinate space.
//
// Internally a Labeling is array-backed over the same contiguous index
// space as graph.Dense: ids holds the covered identities in increasing
// order, and coords/root/has are parallel to it. The router detects
// when a labeling's index space coincides with its graph's dense
// snapshot and then forwards entirely index-addressed, with no per-hop
// map lookups (see Router.NextHop).
type Labeling struct {
	ids  []graph.NodeID // sorted; the labeling's index space
	crds []Coords       // crds[i] is the coordinate of ids[i], valid iff has[i]
	root []graph.NodeID // root[i] is the coordinate space of ids[i]
	has  []bool
	n    int // labeled nodes
}

// newLabeling returns an unlabeled labeling over the given sorted
// identity space (shared, read-only).
func newLabeling(ids []graph.NodeID) *Labeling {
	return &Labeling{
		ids:  ids,
		crds: make([]Coords, len(ids)),
		root: make([]graph.NodeID, len(ids)),
		has:  make([]bool, len(ids)),
	}
}

// indexOf returns v's index in the labeling's identity space.
func (l *Labeling) indexOf(v graph.NodeID) (int, bool) {
	return slices.BinarySearch(l.ids, v)
}

// setAt labels index i with coordinate c in root r's space.
func (l *Labeling) setAt(i int, c Coords, r graph.NodeID) {
	if !l.has[i] {
		l.has[i] = true
		l.n++
	}
	l.crds[i] = c
	l.root[i] = r
}

// Label builds the full coordinate labeling of a validated tree in
// O(n log n): a top-down pass assigning each node its parent's
// coordinate extended by its port (index within the parent's sorted
// children).
func Label(t *trees.Tree) *Labeling {
	ix := trees.NewIndex(t)
	l := newLabeling(t.Nodes()) // Nodes returns a fresh sorted slice
	root := t.Root()
	ri, _ := l.indexOf(root)
	l.setAt(ri, Coords{}, root)
	for _, v := range ix.BFSOrder() {
		vi, _ := l.indexOf(v)
		base := l.crds[vi]
		for port, c := range ix.Children(v) {
			cc := make(Coords, len(base)+1)
			copy(cc, base)
			cc[len(base)] = Port(port)
			ci, _ := l.indexOf(c)
			l.setAt(ci, cc, root)
		}
	}
	return l
}

// LiveLabeling builds the best labeling obtainable from raw parent
// pointers read out of a live (possibly mid-reconvergence, possibly
// corrupted) network. Pointers to non-neighbors are discarded; every
// node whose parent pointer is trees.None becomes the root of its own
// coordinate space; nodes that do not reach any root (parent cycles)
// get no coordinate. This models what a serving layer actually has
// while the self-stabilizing construction repairs itself underneath it.
//
// The pass is entirely index-addressed over the graph's dense snapshot:
// parents is indexed by dense index (use LiveParents to read one out of
// a network) with NoParent marking nodes that carry no credible parent
// pointer. The labeling's index space is the snapshot's, so a router
// over the same graph forwards over it without any identity lookups.
func LiveLabeling(g *graph.Graph, parents []graph.NodeID) *Labeling {
	d := g.Dense()
	n := d.N()
	if len(parents) != n {
		panic(fmt.Sprintf("routing: %d parent entries for %d nodes", len(parents), n))
	}
	l := newLabeling(d.IDs())
	// Children lists from the credible pointers only, in increasing
	// child order (one counting pass, then a fill pass — no per-node
	// append growth).
	childCount := make([]int32, n+1)
	childIdx := make([]int32, n) // parent index of each child, or -1
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		childIdx[i] = -1
		p := parents[i]
		if p == NoParent {
			continue
		}
		if p == trees.None {
			l.setAt(i, Coords{}, d.ID(i))
			queue = append(queue, int32(i))
			continue
		}
		pi, ok := d.IndexOf(p)
		if !ok || !hasNeighborIndex(d, i, int32(pi)) {
			continue // corrupted pointer: not even a neighbor
		}
		childIdx[i] = int32(pi)
		childCount[pi+1]++
	}
	for i := 1; i <= n; i++ {
		childCount[i] += childCount[i-1]
	}
	children := make([]int32, childCount[n])
	fill := make([]int32, n)
	copy(fill, childCount[:n])
	for i := 0; i < n; i++ { // ascending i => ascending child ID per parent
		if pi := childIdx[i]; pi >= 0 {
			children[fill[pi]] = int32(i)
			fill[pi]++
		}
	}
	// Top-down from each claimed root; unreached nodes stay unlabeled.
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		base := l.crds[v]
		space := l.root[v]
		for port, c := range children[childCount[v]:fill[v]] {
			cc := make(Coords, len(base)+1)
			copy(cc, base)
			cc[len(base)] = Port(port)
			l.setAt(int(c), cc, space)
			queue = append(queue, c)
		}
	}
	return l
}

// hasNeighborIndex reports whether dense index j is a neighbor of dense
// index i.
func hasNeighborIndex(d *graph.Dense, i int, j int32) bool {
	_, ok := slices.BinarySearch(d.NeighborIndices(i), j)
	return ok
}

// NoParent marks a dense index whose register carries no credible
// parent pointer at all (a foreign or corrupted state), as opposed to
// trees.None, which is a genuine "I am a root" claim.
const NoParent = graph.NodeID(-1)

// ParentsFromMap converts an identity-keyed parent map into the dense
// parent slice LiveLabeling consumes: absent nodes become NoParent.
func ParentsFromMap(g *graph.Graph, parent map[graph.NodeID]graph.NodeID) []graph.NodeID {
	d := g.Dense()
	out := make([]graph.NodeID, d.N())
	for i := range out {
		p, ok := parent[d.ID(i)]
		if !ok {
			p = NoParent
		}
		out[i] = p
	}
	return out
}

// Coords returns v's coordinate; ok is false for unlabeled nodes.
func (l *Labeling) Coords(v graph.NodeID) (Coords, bool) {
	i, ok := l.indexOf(v)
	if !ok || !l.has[i] {
		return nil, false
	}
	return l.crds[i], true
}

// RootOf returns the root of the coordinate space v belongs to; ok is
// false for unlabeled nodes.
func (l *Labeling) RootOf(v graph.NodeID) (graph.NodeID, bool) {
	i, ok := l.indexOf(v)
	if !ok || !l.has[i] {
		return 0, false
	}
	return l.root[i], true
}

// Covered returns the number of labeled nodes.
func (l *Labeling) Covered() int { return l.n }

// Complete reports whether every node got a coordinate in one single
// coordinate space — true exactly for labelings of validated trees.
func (l *Labeling) Complete() bool {
	if l.n != len(l.ids) {
		return false
	}
	for i := range l.root {
		if l.root[i] != l.root[0] {
			return false
		}
	}
	return true
}

// TreeDist returns the tree distance between u and v. ok is false when
// either node is unlabeled or they belong to different coordinate
// spaces (in which case no tree route exists under this labeling).
func (l *Labeling) TreeDist(u, v graph.NodeID) (int, bool) {
	ui, okU := l.indexOf(u)
	vi, okV := l.indexOf(v)
	if !okU || !okV || !l.has[ui] || !l.has[vi] || l.root[ui] != l.root[vi] {
		return 0, false
	}
	return l.crds[ui].Dist(l.crds[vi]), true
}

// IsAncestor reports whether u is an ancestor of v under the labeling
// (false when either is unlabeled or the spaces differ).
func (l *Labeling) IsAncestor(u, v graph.NodeID) bool {
	ui, okU := l.indexOf(u)
	vi, okV := l.indexOf(v)
	return okU && okV && l.has[ui] && l.has[vi] &&
		l.root[ui] == l.root[vi] && l.crds[ui].IsAncestorOf(l.crds[vi])
}

// MaxLabelBits returns the largest encoded coordinate in bits — the
// per-register space a node would pay to carry its label (the space
// accounting next to the paper's O(log n)-bit registers).
func (l *Labeling) MaxLabelBits() int {
	max := 0
	for i, c := range l.crds {
		if !l.has[i] {
			continue
		}
		if b := c.EncodedBits(); b > max {
			max = b
		}
	}
	return max
}

// Verify checks a complete labeling against its tree: every node's
// coordinate must be exactly its parent's coordinate extended by its
// port, so depths, ports, and the whole root path are validated for
// every node. It is used by tests as the labeler's ground-truth check.
func (l *Labeling) Verify(t *trees.Tree) error {
	if !l.Complete() {
		return fmt.Errorf("routing: labeling covers %d of %d nodes", l.Covered(), len(l.ids))
	}
	ix := trees.NewIndex(t)
	for i, v := range l.ids {
		c := l.crds[i]
		if v == t.Root() {
			if len(c) != 0 {
				return fmt.Errorf("routing: root %d has non-empty coordinate %v", v, c)
			}
			continue
		}
		p := t.Parent(v)
		port, ok := ix.PortOf(p, v)
		if !ok {
			return fmt.Errorf("routing: node %d is not a child of its parent %d", v, p)
		}
		pc, _ := l.Coords(p)
		if len(c) != len(pc)+1 || !pc.IsAncestorOf(c) || c[len(c)-1] != Port(port) {
			return fmt.Errorf("routing: node %d coordinate %v does not extend parent %d's %v by port %d",
				v, c, p, pc, port)
		}
	}
	return nil
}
