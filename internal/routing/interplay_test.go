package routing

import (
	"math/rand"
	"testing"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

// The fault-interplay acceptance: after corrupting registers mid-
// traffic, the substrate re-stabilizes and routing recovers to 100%
// delivery, for each constrained-tree substrate (BFS / MST / MDST).
func TestInterplayRecoversPerSubstrate(t *testing.T) {
	for _, sub := range []Substrate{SubstrateBFS, SubstrateMST, SubstrateMDST} {
		sub := sub
		t.Run(sub.String(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(20))
			g := graph.RandomConnected(24, 0.15, rng)
			rep, err := RunInterplay(g, InterplayConfig{
				Substrate: sub,
				Faults:    4,
				Seed:      7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Pre.Delivered != rep.Pre.Sent {
				t.Errorf("pre-fault delivery %d of %d", rep.Pre.Delivered, rep.Pre.Sent)
			}
			if !rep.Restabilized {
				t.Fatal("substrate did not re-stabilize")
			}
			if rep.Post.Delivered != rep.Post.Sent {
				t.Errorf("post-recovery delivery %d of %d, want 100%%", rep.Post.Delivered, rep.Post.Sent)
			}
			total := rep.InFlight.Delivered() + rep.InFlight.Dropped
			if total != rep.InFlight.Sent {
				t.Errorf("in-flight accounting: delivered %d + dropped %d != sent %d",
					rep.InFlight.Delivered(), rep.InFlight.Dropped, rep.InFlight.Sent)
			}
			if rep.TopologyWrites == 0 {
				t.Error("state listener observed no writes despite corruption + repair")
			}
			t.Logf("%s: pre %v", sub, rep.Pre)
			t.Logf("%s: in-flight sent=%d during=%d after=%d looped=%d dropped=%d stalls=%d; reconverge %d moves / %d windows, %d writes",
				sub, rep.InFlight.Sent, rep.InFlight.DeliveredDuring, rep.InFlight.DeliveredAfter,
				rep.InFlight.Looped, rep.InFlight.Dropped, rep.InFlight.StallWindows,
				rep.ReconvergeMoves, rep.Windows, rep.TopologyWrites)
			t.Logf("%s: post %v (height %d->%d, maxdeg %d->%d)",
				sub, rep.Post, rep.PreHeight, rep.PostHeight, rep.PreMaxDegree, rep.PostMaxDegree)
		})
	}
}

// Corruption that tears a parent pointer must actually degrade the
// live labeling (otherwise the interplay experiment measures nothing),
// while routing keeps working within the intact region.
func TestLiveLabelingDegradesUnderCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := graph.RandomConnected(32, 0.12, rng)
	net, tree, err := StabilizeSubstrate(g, SubstrateBFS, nil, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if lab := LiveLabeling(g, LiveParents(net, nil)); !lab.Complete() {
		t.Fatal("live labeling of a silent configuration not complete")
	}

	// Point a deep node's parent at a non-neighbor: it and its subtree
	// fall out of the labeling.
	ix := trees.NewIndex(tree)
	var victim graph.NodeID
	for _, v := range ix.BFSOrder() {
		if ix.Depth(v) >= 2 {
			victim = v
			break
		}
	}
	if victim == trees.None {
		t.Skip("tree too shallow for the scenario")
	}
	s, _ := switching.RegOf(net.State(victim))
	s.Parent = victim // self: never a graph edge
	if err := runtime.CorruptField(net, victim, s); err != nil {
		t.Fatal(err)
	}

	lab := LiveLabeling(g, LiveParents(net, nil))
	if lab.Complete() {
		t.Fatal("labeling still complete after tearing a parent pointer")
	}
	if _, ok := lab.Coords(victim); ok {
		t.Error("victim kept a coordinate")
	}
	// Routing between labeled nodes in the root's space still works.
	r := NewRouter(g, lab, Options{})
	delivered := 0
	for _, u := range g.Nodes() {
		if u == tree.Root() {
			continue
		}
		if _, ok := lab.Coords(u); !ok {
			continue
		}
		if rootOf, _ := lab.RootOf(u); rootOf != tree.Root() {
			continue
		}
		if d := r.Route(u, tree.Root()); d.Delivered {
			delivered++
		}
	}
	if delivered == 0 {
		t.Error("no labeled node could still reach the root")
	}
}
