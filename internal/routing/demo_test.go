package routing

import (
	"math/rand"
	"testing"
	"time"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/spanning"
)

// The headline serving demo: ≥100k packets over a stabilized BFS tree
// on a ≥10k-node random graph, 100% delivery, mean stretch measured
// against exact shortest paths. The substrate stabilizes from the
// benign post-reset configuration (InitSelfRoot) — an adversarial
// start needs Θ(n) erosion rounds, which belongs to the small-n
// experiments, not the scale demo.
func TestScaleDemo100kPacketsOver10kNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("scale demo skipped in -short mode")
	}
	const (
		n       = 10_000
		p       = 0.002
		packets = 100_000
	)
	rng := rand.New(rand.NewSource(42))
	start := time.Now()
	g := graph.RandomConnected(n, p, rng)

	net, err := runtime.NewNetwork(g, spanning.Algorithm{})
	if err != nil {
		t.Fatal(err)
	}
	spanning.InitSelfRoot(net)
	res, err := net.Run(runtime.Synchronous(), 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent {
		t.Fatalf("substrate not silent after %d moves", res.Moves)
	}
	tree, err := spanning.ExtractTree(net)
	if err != nil {
		t.Fatal(err)
	}

	lab := Label(tree)
	if err := lab.Verify(tree); err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, lab, Options{})
	stats, err := Drive(r, UniformPairs(g.Nodes(), packets, rng), DriveOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if stats.Sent < packets {
		t.Fatalf("sent %d < %d", stats.Sent, packets)
	}
	if stats.Delivered != stats.Sent {
		t.Fatalf("delivered %d of %d — not 100%%", stats.Delivered, stats.Sent)
	}
	if stats.StretchSamples == 0 {
		t.Fatal("no stretch samples measured")
	}
	if stats.MeanStretch < 1 {
		t.Fatalf("mean stretch %.3f < 1", stats.MeanStretch)
	}
	t.Logf("n=%d m=%d: stabilized in %d rounds / %d moves; registers %d bits; labels ≤ %d bits",
		g.N(), g.M(), res.Rounds, res.Moves, res.MaxRegisterBits, lab.MaxLabelBits())
	t.Logf("traffic: %v (wall %v)", stats, time.Since(start))
}
