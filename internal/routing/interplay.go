package routing

import (
	"fmt"
	"math/rand"

	"silentspan/internal/bfs"
	"silentspan/internal/core"
	"silentspan/internal/graph"
	"silentspan/internal/mdst"
	"silentspan/internal/mst"
	"silentspan/internal/runtime"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

// Substrate selects which constrained-tree construction carries the
// traffic.
type Substrate int

const (
	// SubstrateBFS: the always-on PLS-guided BFS algorithm (latency-
	// optimal tree; re-optimizes itself after faults).
	SubstrateBFS Substrate = iota
	// SubstrateMST: tree built by the distributed MST engine, held by
	// the malleable switching protocol.
	SubstrateMST
	// SubstrateMDST: tree built by the distributed minimum-degree
	// engine (load-optimal tree), held by the switching protocol.
	SubstrateMDST
)

// String names the substrate.
func (s Substrate) String() string {
	switch s {
	case SubstrateBFS:
		return "bfs"
	case SubstrateMST:
		return "mst"
	case SubstrateMDST:
		return "mdst"
	}
	return fmt.Sprintf("substrate(%d)", int(s))
}

// ParseSubstrate parses "bfs" | "mst" | "mdst".
func ParseSubstrate(name string) (Substrate, error) {
	switch name {
	case "bfs":
		return SubstrateBFS, nil
	case "mst":
		return SubstrateMST, nil
	case "mdst":
		return SubstrateMDST, nil
	}
	return 0, fmt.Errorf("routing: unknown substrate %q", name)
}

// StabilizeSubstrate brings up a live network carrying a stabilized
// tree of the given kind: the BFS substrate stabilizes the always-on
// rule system from an arbitrary configuration; the MST/MDST substrates
// run the PLS-guided engine and load the resulting tree into a
// switching-protocol network (the silent configuration it stabilizes
// to). The returned network is silent and its registers encode the
// returned tree.
func StabilizeSubstrate(g *graph.Graph, sub Substrate, sched runtime.Scheduler, maxMoves int, rng *rand.Rand) (*runtime.Network, *trees.Tree, error) {
	if sched == nil {
		sched = runtime.Central()
	}
	if maxMoves <= 0 {
		maxMoves = 20_000_000
	}
	switch sub {
	case SubstrateBFS:
		net, err := runtime.NewNetwork(g, bfs.Algorithm{})
		if err != nil {
			return nil, nil, err
		}
		net.InitArbitrary(rng)
		res, err := net.Run(sched, maxMoves)
		if err != nil {
			return nil, nil, err
		}
		if !res.Silent {
			return nil, nil, fmt.Errorf("routing: bfs substrate not silent after %d moves", res.Moves)
		}
		t, err := switching.ExtractTree(net, switching.RegOf)
		if err != nil {
			return nil, nil, err
		}
		return net, t, nil
	case SubstrateMST, SubstrateMDST:
		var task core.Task
		if sub == SubstrateMST {
			task = mst.Task{}
		} else {
			task = mdst.Task{}
		}
		t, _, err := core.RunDistributed(g, task, core.EngineOptions{Rng: rng, Scheduler: sched})
		if err != nil {
			return nil, nil, err
		}
		net, err := runtime.NewNetwork(g, switching.Algorithm{})
		if err != nil {
			return nil, nil, err
		}
		if err := switching.InitFromTree(net, t); err != nil {
			return nil, nil, err
		}
		return net, t, nil
	}
	return nil, nil, fmt.Errorf("routing: unknown substrate %v", sub)
}

// LiveParents reads the raw parent pointers out of a network whose
// registers are switching states — with no validation, because mid-
// reconvergence they may encode anything. The result is indexed by the
// network's dense index (see LiveLabeling); registers holding no
// credible switching state read as NoParent. buf is reused when it has
// capacity, so the per-window refresh of the reconvergence loop
// allocates nothing after the first read.
func LiveParents(net *runtime.Network, buf []graph.NodeID) []graph.NodeID {
	n := net.Dense().Slots()
	if cap(buf) < n {
		buf = make([]graph.NodeID, n)
	}
	buf = buf[:n]
	for i := 0; i < n; i++ {
		// Vacated slots read nil registers and come out NoParent.
		if s, ok := switching.RegOf(net.StateAt(i)); ok {
			buf[i] = s.Parent
		} else {
			buf[i] = NoParent
		}
	}
	return buf
}

// InterplayConfig parameterizes one fault-interplay run. Zero values
// take the documented defaults.
type InterplayConfig struct {
	Substrate Substrate
	// Faults is the number of registers corrupted mid-traffic (default 3).
	Faults int
	// InFlight is the number of packets in flight when the faults hit
	// (default 64).
	InFlight int
	// BatchPackets sizes the pre- and post-stabilization measurement
	// batches (default 256).
	BatchPackets int
	// MovesPerWindow is the stabilization budget between routing windows
	// (default 50): smaller values interleave routing and repair more
	// finely.
	MovesPerWindow int
	// StepsPerWindow is each in-flight packet's hop budget per window
	// (default 2).
	StepsPerWindow int
	// MaxWindows bounds the reconvergence loop (default 100000).
	MaxWindows int
	// StabilizeMoves caps each full stabilization (default 20,000,000).
	StabilizeMoves int
	// Seed drives all randomness (graph-independent).
	Seed int64
	// Scheduler defaults to a random-subset daemon derived from Seed.
	Scheduler runtime.Scheduler
}

func (c *InterplayConfig) fill() {
	if c.Faults == 0 {
		c.Faults = 3
	}
	if c.InFlight == 0 {
		c.InFlight = 64
	}
	if c.BatchPackets == 0 {
		c.BatchPackets = 256
	}
	if c.MovesPerWindow == 0 {
		c.MovesPerWindow = 50
	}
	if c.StepsPerWindow == 0 {
		c.StepsPerWindow = 2
	}
	if c.MaxWindows == 0 {
		c.MaxWindows = 100000
	}
	if c.StabilizeMoves == 0 {
		c.StabilizeMoves = 20_000_000
	}
}

// InFlightStats classifies the packets that were in flight when the
// faults hit.
type InFlightStats struct {
	Sent int
	// DeliveredDuring were delivered while the tree was still repairing;
	// DeliveredAfter only once it had re-stabilized and been relabeled.
	DeliveredDuring int
	DeliveredAfter  int
	// Looped revisited at least one node (delivered or not).
	Looped int
	// Dropped were lost to loops or TTL exhaustion.
	Dropped int
	// StallWindows totals the windows packets spent unable to progress.
	StallWindows int
}

// Delivered is the total over both phases.
func (s InFlightStats) Delivered() int { return s.DeliveredDuring + s.DeliveredAfter }

// InterplayReport is the outcome of one fault-interplay run.
type InterplayReport struct {
	Substrate string
	N, M      int

	// Pre is the traffic measurement over the freshly stabilized tree.
	Pre Stats
	// InFlight classifies the packets caught by the corruption.
	InFlight InFlightStats
	// Post is the traffic measurement after re-stabilization.
	Post Stats

	// Restabilized reports whether silence was re-reached.
	Restabilized bool
	// ReconvergeMoves/Windows: repair cost while traffic was in flight.
	ReconvergeMoves int
	Windows         int
	// TopologyWrites counts register writes observed by the state
	// listener during reconvergence (the notification hook serving
	// layers subscribe to).
	TopologyWrites int

	// Tree shape before corruption and after repair.
	PreHeight, PostHeight       int
	PreMaxDegree, PostMaxDegree int
}

// RunInterplay executes the full experiment on g: stabilize the
// substrate, measure a traffic batch, corrupt registers under live
// traffic, interleave repair with routing windows over the decaying
// labeling, then re-measure once silent. The registered state listener
// is what triggers labeling refreshes, exercising the topology-change
// notification path end to end.
func RunInterplay(g *graph.Graph, cfg InterplayConfig) (*InterplayReport, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Scheduler == nil {
		cfg.Scheduler = runtime.RandomSubset(rand.New(rand.NewSource(cfg.Seed + 1)))
	}
	rep := &InterplayReport{Substrate: cfg.Substrate.String(), N: g.N(), M: g.M()}

	net, tree, err := StabilizeSubstrate(g, cfg.Substrate, cfg.Scheduler, cfg.StabilizeMoves, rng)
	if err != nil {
		return nil, err
	}
	ix := trees.NewIndex(tree)
	rep.PreHeight, rep.PreMaxDegree = ix.Height(), tree.MaxDegree()

	lab := Label(tree)
	router := NewRouter(g, lab, Options{})
	nodes := g.Nodes()

	rep.Pre, err = Drive(router, UniformPairs(nodes, cfg.BatchPackets, rng), DriveOptions{})
	if err != nil {
		return nil, err
	}

	// Launch the in-flight packets, then let the faults hit.
	flight := NewFlight(UniformPairs(nodes, cfg.InFlight, rng))

	runtime.Corrupt(net, cfg.Faults, rng)
	// The listener goes in after the injection so TopologyWrites counts
	// only the repair's own register writes.
	dirty := true // the corruption itself already decayed the labeling
	net.AddStateListener(func(v graph.NodeID, old, new runtime.State) {
		dirty = true
		rep.TopologyWrites++
	})

	// Reconvergence: interleave repair windows with routing windows over
	// whatever labeling the live registers currently support. The parent
	// buffer is reused across refreshes — the dense read path.
	var parentBuf []graph.NodeID
	refresh := func() {
		if dirty {
			parentBuf = LiveParents(net, parentBuf)
			router.SetLabeling(LiveLabeling(g, parentBuf))
			dirty = false
		}
	}
	refresh()
	movesBefore := net.Moves()
	for w := 0; w < cfg.MaxWindows && !net.Silent(); w++ {
		rep.Windows++
		if _, err := net.Run(cfg.Scheduler, net.Moves()+cfg.MovesPerWindow); err != nil {
			return nil, fmt.Errorf("routing: reconvergence window %d: %w", w, err)
		}
		refresh()
		flight.Advance(router, cfg.StepsPerWindow)
	}
	rep.ReconvergeMoves = net.Moves() - movesBefore
	rep.InFlight = flight.Stats()
	rep.Restabilized = net.Silent()
	if !rep.Restabilized {
		return rep, fmt.Errorf("routing: %s substrate did not re-stabilize within %d windows", rep.Substrate, cfg.MaxWindows)
	}

	// Re-stabilized: validate the repaired tree, relabel, flush the
	// remaining in-flight packets, and measure the recovered service.
	tree2, err := switching.ExtractTree(net, switching.RegOf)
	if err != nil {
		return rep, fmt.Errorf("routing: repaired configuration: %w", err)
	}
	ix2 := trees.NewIndex(tree2)
	rep.PostHeight, rep.PostMaxDegree = ix2.Height(), tree2.MaxDegree()
	router.SetLabeling(Label(tree2))
	flight.Flush(router)
	rep.InFlight = flight.Stats()

	rep.Post, err = Drive(router, UniformPairs(nodes, cfg.BatchPackets, rng), DriveOptions{})
	if err != nil {
		return rep, err
	}
	return rep, nil
}
