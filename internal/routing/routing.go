// Package routing serves traffic over the stabilized constrained
// spanning trees: it is the first consumer of the trees the rest of the
// repository constructs, turning the reproduction into a system that
// measurably routes packets (the sensor-network motivation of the
// paper's Section I).
//
// The design follows the production pattern of yggdrasil's spanning-tree
// switch: every node is labeled with its root-to-node *coordinates* —
// the sequence of child ports on the tree path from the root — so that
// the tree distance between any two nodes is computable from the two
// labels alone (lengths minus twice the longest common prefix). A
// packet is forwarded greedily: each hop moves to the neighbor whose
// coordinates are strictly closest to the destination's, over *all*
// graph edges, so non-tree edges act as shortcuts and the delivered
// route can be shorter than the tree path. Because the tree distance to
// the destination strictly decreases at every hop, routing over a
// consistent labeling is loop-free and always delivers.
//
// The package provides:
//
//   - Coords and Labeling: the coordinate labeler over any *trees.Tree
//     (and, for fault experiments, over raw — possibly broken — parent
//     pointers read out of a live network), with compact encoded labels
//     whose size is accounted in bits via internal/bits;
//   - Router: hop-by-hop greedy forwarding with tree-only and
//     shortcutting modes, loop and drop detection;
//   - the traffic engine: workload generators (uniform pairs, hotspot,
//     all-pairs samples) and a driver measuring delivery, hop counts,
//     and stretch against exact shortest paths;
//   - the fault-interplay runner: corrupt registers mid-traffic via the
//     runtime's fault injection, keep routing on the decaying labeling
//     while the tree re-stabilizes, and measure how many in-flight
//     packets loop or drop during reconvergence, per substrate (BFS,
//     MST, MDST).
package routing

import (
	"fmt"
	"strings"

	"silentspan/internal/bits"
)

// Port is one coordinate element: the index of a child within its
// parent's sorted children list, as assigned by trees.Index.PortOf.
type Port uint16

// Coords is a node's tree coordinate: the port path from the root to
// the node. The root's coordinate is the empty path. Coordinates are
// value-like; callers must not mutate a Coords obtained from a Labeling.
type Coords []Port

// Dist returns the tree distance between the nodes labeled c and d:
// both walk up to their nearest common ancestor (the longest common
// prefix of the coordinates), so the distance is the total length
// beyond that prefix.
func (c Coords) Dist(d Coords) int {
	p := 0
	for p < len(c) && p < len(d) && c[p] == d[p] {
		p++
	}
	return (len(c) - p) + (len(d) - p)
}

// IsAncestorOf reports whether c labels an ancestor of the node labeled
// d (every node is an ancestor of itself).
func (c Coords) IsAncestorOf(d Coords) bool {
	if len(c) > len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// Equal reports whether c and d are the same coordinate.
func (c Coords) Equal(d Coords) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// Encode returns the compact self-delimiting encoding of c: the
// Elias-gamma code of the path length plus one, followed by the gamma
// code of each port plus one. Ports on high-degree nodes cost more
// bits, mirroring the space accounting of the paper's labeling schemes.
func (c Coords) Encode() bits.String {
	s := bits.AppendGamma(bits.String{}, uint64(len(c))+1)
	for _, p := range c {
		s = bits.AppendGamma(s, uint64(p)+1)
	}
	return s
}

// EncodedBits returns the length in bits of Encode without building it.
func (c Coords) EncodedBits() int {
	n := bits.GammaLen(uint64(len(c)) + 1)
	for _, p := range c {
		n += bits.GammaLen(uint64(p) + 1)
	}
	return n
}

// DecodeCoords parses the encoding produced by Encode from the front of
// r, so labels can travel inside registers next to other fields.
func DecodeCoords(r *bits.Reader) (Coords, error) {
	length, err := bits.ReadGamma(r)
	if err != nil {
		return nil, fmt.Errorf("routing: coord length: %w", err)
	}
	length--
	// Every port code costs at least one bit, so a length claim beyond
	// the remaining input is corrupt — reject it before sizing the
	// slice, or an adversarial ~60-bit input could demand exabytes.
	if length > uint64(r.Remaining()) {
		return nil, fmt.Errorf("routing: coord length %d exceeds %d remaining bits", length, r.Remaining())
	}
	out := make(Coords, 0, length)
	for i := uint64(0); i < length; i++ {
		p, err := bits.ReadGamma(r)
		if err != nil {
			return nil, fmt.Errorf("routing: coord port %d: %w", i, err)
		}
		if p-1 > uint64(^Port(0)) {
			return nil, fmt.Errorf("routing: coord port %d overflows (%d)", i, p-1)
		}
		out = append(out, Port(p-1))
	}
	return out, nil
}

// String renders the coordinate as a slash-separated port path.
func (c Coords) String() string {
	if len(c) == 0 {
		return "/"
	}
	var b strings.Builder
	for _, p := range c {
		fmt.Fprintf(&b, "/%d", p)
	}
	return b.String()
}
