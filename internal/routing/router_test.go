package routing

import (
	"math/rand"
	"testing"

	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

func assertLoopFree(t *testing.T, d Delivery) {
	t.Helper()
	seen := make(map[graph.NodeID]bool, len(d.Path))
	for _, v := range d.Path {
		if seen[v] {
			t.Fatalf("route %d -> %d revisits node %d: %v", d.Src, d.Dst, v, d.Path)
		}
		seen[v] = true
	}
}

// The acceptance property: routes along tree paths have stretch exactly
// 1, and every delivered packet is loop-free.
func TestTreePathRoutesHaveStretchOne(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// The graph IS a tree: every shortest path is the tree path, so
	// hops must equal the exact graph distance — stretch exactly 1.
	g := graph.RandomConnected(60, 0, rng)
	tree, err := trees.BFSTree(g, g.MinID())
	if err != nil {
		t.Fatal(err)
	}
	lab := Label(tree)
	r := NewRouter(g, lab, Options{RecordPaths: true})
	for _, u := range g.Nodes() {
		dist, err := g.BFSDistances(u)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range g.Nodes() {
			if u == v {
				continue
			}
			d := r.Route(u, v)
			if !d.Delivered {
				t.Fatalf("%d -> %d dropped: %v", u, v, d.Reason)
			}
			if d.Hops != dist[v] {
				t.Errorf("%d -> %d: %d hops, shortest %d (stretch != 1)", u, v, d.Hops, dist[v])
			}
			assertLoopFree(t, d)
		}
	}
}

func TestTreeOnlyRoutingFollowsTreeDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.RandomConnected(50, 0.15, rng)
	tree, err := trees.RandomSpanningTree(g, g.MinID(), rng)
	if err != nil {
		t.Fatal(err)
	}
	lab := Label(tree)
	r := NewRouter(g, lab, Options{TreeOnly: true, RecordPaths: true})
	nodes := g.Nodes()
	for i := 0; i < 300; i++ {
		u := nodes[rng.Intn(len(nodes))]
		v := nodes[rng.Intn(len(nodes))]
		if u == v {
			continue
		}
		d := r.Route(u, v)
		if !d.Delivered {
			t.Fatalf("%d -> %d dropped: %v", u, v, d.Reason)
		}
		want, _ := lab.TreeDist(u, v)
		if d.Hops != want {
			t.Errorf("%d -> %d: tree-only took %d hops, tree distance %d", u, v, d.Hops, want)
		}
		assertLoopFree(t, d)
		// Every hop of a tree-only route must be a tree edge.
		for i := 0; i+1 < len(d.Path); i++ {
			if !tree.HasEdge(d.Path[i], d.Path[i+1]) {
				t.Errorf("%d -> %d: hop %d-%d is not a tree edge", u, v, d.Path[i], d.Path[i+1])
			}
		}
	}
}

func TestShortcutsNeverWorseThanTree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := graph.RandomConnected(80, 0.1, rng)
	tree, err := trees.BFSTree(g, g.MinID())
	if err != nil {
		t.Fatal(err)
	}
	lab := Label(tree)
	treeR := NewRouter(g, lab, Options{TreeOnly: true})
	cutR := NewRouter(g, lab, Options{RecordPaths: true})
	nodes := g.Nodes()
	improved := 0
	for i := 0; i < 500; i++ {
		u := nodes[rng.Intn(len(nodes))]
		v := nodes[rng.Intn(len(nodes))]
		if u == v {
			continue
		}
		dt := treeR.Route(u, v)
		dc := cutR.Route(u, v)
		if !dt.Delivered || !dc.Delivered {
			t.Fatalf("%d -> %d: tree=%v shortcut=%v", u, v, dt.Reason, dc.Reason)
		}
		if dc.Hops > dt.Hops {
			t.Errorf("%d -> %d: shortcut route %d hops > tree route %d", u, v, dc.Hops, dt.Hops)
		}
		if dc.Hops < dt.Hops {
			improved++
		}
		assertLoopFree(t, dc)
	}
	if improved == 0 {
		t.Error("greedy shortcutting never improved on the tree path on a dense-ish random graph")
	}
}

func TestFullDeliveryAcrossFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	families := map[string]*graph.Graph{
		"random":    graph.RandomConnected(120, 0.05, rng),
		"geometric": graph.RandomGeometric(100, 0.18, rng),
		"grid":      graph.Grid(10, 12),
		"lollipop":  graph.Lollipop(8, 20),
		"star":      graph.Star(40),
	}
	for name, g := range families {
		tree, err := trees.BFSTree(g, g.MinID())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lab := Label(tree)
		r := NewRouter(g, lab, Options{})
		stats, err := Drive(r, UniformPairs(g.Nodes(), 2000, rng), DriveOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if stats.Delivered != stats.Sent {
			t.Errorf("%s: delivered %d of %d", name, stats.Delivered, stats.Sent)
		}
		if stats.MeanStretch < 1 && stats.StretchSamples > 0 {
			t.Errorf("%s: mean stretch %.3f < 1", name, stats.MeanStretch)
		}
	}
}

func TestRouterRefusesAcrossCoordinateSpaces(t *testing.T) {
	g := graph.Path(6)
	parent := map[graph.NodeID]graph.NodeID{
		1: trees.None, 2: 1, 3: 2,
		4: trees.None, 5: 4, 6: 5, // second root: 4-5-6 island
	}
	lab := LiveLabeling(g, ParentsFromMap(g, parent))
	r := NewRouter(g, lab, Options{})
	d := r.Route(1, 6)
	if d.Delivered {
		t.Fatal("delivered across disjoint coordinate spaces")
	}
	if d.Reason != DropNoDestCoord {
		t.Errorf("reason = %v, want %v", d.Reason, DropNoDestCoord)
	}
	// Within one space, routing still works.
	if d := r.Route(1, 3); !d.Delivered || d.Hops != 2 {
		t.Errorf("1 -> 3: delivered=%v hops=%d, want delivered in 2", d.Delivered, d.Hops)
	}
}

func TestHotspotAndAllPairsWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := graph.RandomConnected(60, 0.08, rng)
	tree, err := trees.BFSTree(g, g.MinID())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g, Label(tree), Options{})

	hot := HotspotPairs(g.Nodes(), tree.Root(), 1000, 0.8, rng)
	toHub := 0
	for _, p := range hot {
		if p.Dst == tree.Root() {
			toHub++
		} else if p.Src != tree.Root() {
			t.Fatalf("hotspot pair %v touches no hub", p)
		}
	}
	if toHub < 700 || toHub > 900 {
		t.Errorf("toHub fraction off: %d of 1000 at 0.8", toHub)
	}
	stats, err := Drive(r, hot, DriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != stats.Sent {
		t.Errorf("hotspot: delivered %d of %d", stats.Delivered, stats.Sent)
	}

	all := AllPairsSample(g.Nodes(), 1<<30, rng)
	if want := g.N() * (g.N() - 1); len(all) != want {
		t.Fatalf("all-pairs: %d pairs, want %d", len(all), want)
	}
	sample := AllPairsSample(g.Nodes(), 500, rng)
	seen := map[Pair]bool{}
	for _, p := range sample {
		if p.Src == p.Dst || seen[p] {
			t.Fatalf("bad sample pair %v", p)
		}
		seen[p] = true
	}
	stats, err = Drive(r, sample, DriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != stats.Sent {
		t.Errorf("all-pairs sample: delivered %d of %d", stats.Delivered, stats.Sent)
	}
}
