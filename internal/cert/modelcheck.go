package cert

import (
	"fmt"
	"math/rand"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/spanning"
	"silentspan/internal/trees"
)

// ExhaustiveConfig parameterizes the model checker. Zero values take
// the documented defaults.
type ExhaustiveConfig struct {
	// MaxN: enumerate every connected graph (up to isomorphism) on
	// 1..MaxN nodes (default 5; the full certification run uses 6).
	MaxN int
	// Samples: arbitrary initial configurations drawn per
	// (graph, algorithm, scheduler) for the always-on algorithms
	// (default 3).
	Samples int
	// EngineSamples: seeds per (graph, scheduler) for the engine-driven
	// MST/MDST runs (default 1 — each run is itself a full multi-phase
	// execution).
	EngineSamples int
	// ExhaustiveInitMaxN: up to this n (default 3), the spanning
	// substrate is additionally driven from *every* initial
	// configuration of a covering state space — roots in 1..n+1 (one
	// ghost identity class), parents over all neighbors and ⊥, distances
	// in 0..n — under the deterministic daemons. This is the literal
	// model-checking slice: no sampling gap at all.
	ExhaustiveInitMaxN int
	// MaxMoves caps each run; exceeding it is a convergence
	// counterexample (default 200000).
	MaxMoves int
	// Seed drives all sampling.
	Seed int64
	// Algos restricts the algorithm set (default all five).
	Algos []Algo
	// SkipFamilies drops the named pathological families.
	SkipFamilies bool
	// MaxCounterexamples stops the hunt after this many findings
	// (default 20).
	MaxCounterexamples int
}

func (c *ExhaustiveConfig) fill() {
	if c.MaxN == 0 {
		c.MaxN = 5
	}
	if c.Samples == 0 {
		c.Samples = 3
	}
	if c.EngineSamples == 0 {
		c.EngineSamples = 1
	}
	if c.ExhaustiveInitMaxN == 0 {
		c.ExhaustiveInitMaxN = 3
	}
	if c.MaxMoves == 0 {
		c.MaxMoves = 200_000
	}
	if len(c.Algos) == 0 {
		c.Algos = AllAlgos()
	}
	if c.MaxCounterexamples == 0 {
		c.MaxCounterexamples = 20
	}
}

// Counterexample is one falsified claim, with everything needed to
// replay it.
type Counterexample struct {
	Graph     string `json:"graph"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	Algorithm string `json:"algorithm"`
	Scheduler string `json:"scheduler"`
	Init      string `json:"init"`
	Detail    string `json:"detail"`
}

func (c Counterexample) String() string {
	return fmt.Sprintf("%s/%s on %s (n=%d m=%d, init %s): %s",
		c.Algorithm, c.Scheduler, c.Graph, c.N, c.M, c.Init, c.Detail)
}

// WorstEntry is one observed maximum together with the run that
// produced it, so the named (graph, daemon) pair replays the value.
type WorstEntry struct {
	Value     int    `json:"value"`
	Graph     string `json:"graph"`
	Scheduler string `json:"scheduler"`
}

// WorstCase records the most expensive certified runs per algorithm,
// each metric with its own provenance (the worst moves, rounds and
// register width generally come from different runs).
type WorstCase struct {
	Moves        WorstEntry `json:"moves"`
	Rounds       WorstEntry `json:"rounds"`
	RegisterBits WorstEntry `json:"register_bits"`
}

// ExhaustiveReport summarizes a model-checking sweep.
type ExhaustiveReport struct {
	Config          ExhaustiveConfig     `json:"config"`
	Graphs          int                  `json:"graphs"`
	Runs            int                  `json:"runs"`
	ExhaustiveInits int                  `json:"exhaustive_inits"`
	Worst           map[string]WorstCase `json:"worst"`
	Counterexamples []Counterexample     `json:"counterexamples"`
}

// Certified reports whether the sweep found no counterexample.
func (r *ExhaustiveReport) Certified() bool { return len(r.Counterexamples) == 0 }

// RunExhaustive executes the model-checking sweep. logf (optional)
// receives one progress line per graph batch.
func RunExhaustive(cfg ExhaustiveConfig, logf func(format string, args ...any)) (*ExhaustiveReport, error) {
	cfg.fill()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &ExhaustiveReport{Config: cfg, Worst: make(map[string]WorstCase)}

	var instances []NamedGraph
	for n := 1; n <= cfg.MaxN; n++ {
		batch := EnumerateConnected(n)
		logf("enumerated %d connected graphs on %d nodes", len(batch), n)
		instances = append(instances, batch...)
	}
	if !cfg.SkipFamilies {
		instances = append(instances, PathologicalFamilies()...)
	}
	rep.Graphs = len(instances)

	record := func(a Algo, spec SchedulerSpec, ng NamedGraph, stats RunStats) {
		w := rep.Worst[a.String()]
		if stats.Moves > w.Moves.Value {
			w.Moves = WorstEntry{Value: stats.Moves, Graph: ng.Name, Scheduler: spec.Name}
		}
		if stats.Rounds > w.Rounds.Value {
			w.Rounds = WorstEntry{Value: stats.Rounds, Graph: ng.Name, Scheduler: spec.Name}
		}
		if stats.RegisterBits > w.RegisterBits.Value {
			w.RegisterBits = WorstEntry{Value: stats.RegisterBits, Graph: ng.Name, Scheduler: spec.Name}
		}
		rep.Worst[a.String()] = w
	}
	report := func(ce Counterexample) bool {
		rep.Counterexamples = append(rep.Counterexamples, ce)
		logf("COUNTEREXAMPLE: %s", ce)
		return len(rep.Counterexamples) >= cfg.MaxCounterexamples
	}

	for gi, ng := range instances {
		n, m := ng.G.N(), ng.G.M()
		for _, a := range cfg.Algos {
			if alg := DirectAlgorithm(a); alg != nil {
				net, err := runtime.NewNetwork(ng.G, alg)
				if err != nil {
					return rep, err
				}
				for _, spec := range Schedulers() {
					for s := 0; s < cfg.Samples; s++ {
						seed := cfg.Seed + int64(gi*1000+s)
						net.InitArbitrary(rand.New(rand.NewSource(seed)))
						rep.Runs++
						stats, err := certifyDirect(a, ng.G, net, spec.New(seed), cfg.MaxMoves)
						if err == nil {
							record(a, spec, ng, stats)
						} else {
							if report(Counterexample{
								Graph: ng.Name, N: n, M: m, Algorithm: a.String(),
								Scheduler: spec.Name, Init: fmt.Sprintf("sampled seed=%d", seed),
								Detail: err.Error(),
							}) {
								return rep, nil
							}
						}
					}
				}
			} else {
				for _, spec := range Schedulers() {
					for s := 0; s < cfg.EngineSamples; s++ {
						seed := cfg.Seed + int64(gi*1000+s)
						rep.Runs++
						stats, err := certifyEngine(a, ng.G, spec, seed, cfg.MaxMoves)
						if err == nil {
							record(a, spec, ng, stats)
						} else {
							if report(Counterexample{
								Graph: ng.Name, N: n, M: m, Algorithm: a.String(),
								Scheduler: spec.Name, Init: fmt.Sprintf("engine seed=%d", seed),
								Detail: err.Error(),
							}) {
								return rep, nil
							}
						}
					}
				}
			}
		}
		// Exhaustive initial-state slice: spanning substrate, every
		// configuration of the covering state space, deterministic daemons.
		if n <= cfg.ExhaustiveInitMaxN && n >= 2 && containsAlgo(cfg.Algos, AlgoSpanning) {
			count, err := exhaustiveSpanningInits(ng, rep, cfg, report, record)
			if err != nil {
				return rep, err
			}
			rep.ExhaustiveInits += count
			if len(rep.Counterexamples) >= cfg.MaxCounterexamples {
				return rep, nil
			}
		}
		if (gi+1)%50 == 0 || gi == len(instances)-1 {
			logf("checked %d/%d graphs, %d runs, %d exhaustive inits, %d counterexamples",
				gi+1, len(instances), rep.Runs, rep.ExhaustiveInits, len(rep.Counterexamples))
		}
	}
	return rep, nil
}

func containsAlgo(as []Algo, a Algo) bool {
	for _, x := range as {
		if x == a {
			return true
		}
	}
	return false
}

// deterministicSchedulers is the daemon subset used for the exhaustive
// initial-state slice: with no rng involved anywhere, every one of
// these runs is exactly reproducible from the configuration alone.
func deterministicSchedulers() []SchedulerSpec {
	var out []SchedulerSpec
	for _, s := range Schedulers() {
		switch s.Name {
		case "central", "synchronous", "adversarial-unfair", "greedy-stretch":
			out = append(out, s)
		}
	}
	return out
}

// exhaustiveSpanningInits drives the spanning substrate from every
// configuration of the covering state space on ng, under every
// deterministic daemon. Returns the number of initial configurations.
func exhaustiveSpanningInits(ng NamedGraph, rep *ExhaustiveReport, cfg ExhaustiveConfig,
	report func(Counterexample) bool, record func(Algo, SchedulerSpec, NamedGraph, RunStats)) (int, error) {
	g := ng.G
	n := g.N()
	nodes := g.Nodes()
	// Per-node candidate states.
	states := make([][]spanning.State, len(nodes))
	for i, v := range nodes {
		var cand []spanning.State
		parents := append([]graph.NodeID{trees.None}, g.Neighbors(v)...)
		for root := 1; root <= n+1; root++ {
			for _, p := range parents {
				for dist := 0; dist <= n; dist++ {
					cand = append(cand, spanning.State{Root: graph.NodeID(root), Parent: p, Dist: dist})
				}
			}
		}
		states[i] = cand
	}
	net, err := runtime.NewNetwork(g, spanning.Algorithm{})
	if err != nil {
		return 0, err
	}
	scheds := deterministicSchedulers()
	idx := make([]int, len(nodes))
	count := 0
	for {
		count++
		for _, spec := range scheds {
			for i, v := range nodes {
				net.SetState(v, states[i][idx[i]])
			}
			rep.Runs++
			stats, err := certifyDirect(AlgoSpanning, g, net, spec.New(0), cfg.MaxMoves)
			if err == nil {
				record(AlgoSpanning, spec, ng, stats)
			} else {
				if report(Counterexample{
					Graph: ng.Name, N: n, M: g.M(), Algorithm: "spanning",
					Scheduler: spec.Name, Init: describeInit(nodes, states, idx),
					Detail: err.Error(),
				}) {
					return count, nil
				}
			}
		}
		// Odometer.
		k := 0
		for k < len(idx) {
			idx[k]++
			if idx[k] < len(states[k]) {
				break
			}
			idx[k] = 0
			k++
		}
		if k == len(idx) {
			return count, nil
		}
	}
}

func describeInit(nodes []graph.NodeID, states [][]spanning.State, idx []int) string {
	out := "exhaustive"
	for i, v := range nodes {
		s := states[i][idx[i]]
		out += fmt.Sprintf(" %d:(r%d,p%d,d%d)", v, s.Root, s.Parent, s.Dist)
	}
	return out
}
