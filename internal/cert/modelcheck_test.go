package cert

import (
	"strings"
	"testing"
)

// TestExhaustiveSmallSliceCertifies runs the n≤4 slice — every
// connected topology up to isomorphism, all five algorithms, all seven
// daemons, plus the exhaustive initial-state sweep at n≤3 — and
// requires zero counterexamples. This is the fast always-on guard; CI
// runs the n≤5 slice through cmd/sscert and the full certification uses
// n≤6.
func TestExhaustiveSmallSliceCertifies(t *testing.T) {
	rep, err := RunExhaustive(ExhaustiveConfig{
		MaxN:               4,
		Samples:            2,
		ExhaustiveInitMaxN: 3,
		SkipFamilies:       true,
		Seed:               1,
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ce := range rep.Counterexamples {
		t.Errorf("counterexample: %s", ce)
	}
	if rep.Graphs != 1+1+2+6 {
		t.Errorf("checked %d graphs, want 10", rep.Graphs)
	}
	if rep.ExhaustiveInits == 0 {
		t.Error("exhaustive initial-state slice did not run")
	}
	for _, a := range AllAlgos() {
		w, ok := rep.Worst[a.String()]
		if !ok {
			t.Errorf("no worst-case record for %s", a)
			continue
		}
		if w.RegisterBits.Value == 0 {
			t.Errorf("%s: no register width recorded", a)
		}
		if w.Moves.Graph == "" || w.Moves.Scheduler == "" {
			t.Errorf("%s: worst-moves entry lacks provenance: %+v", a, w.Moves)
		}
	}
}

// TestSchedulerRegistryComplete: the registry carries the paper's
// unfair daemon, both deterministic extremes, and the round-stretching
// adversary; every entry constructs.
func TestSchedulerRegistryComplete(t *testing.T) {
	want := []string{"central", "synchronous", "round-robin", "adversarial-unfair",
		"greedy-stretch", "random-central", "random-subset"}
	specs := Schedulers()
	if len(specs) != len(want) {
		t.Fatalf("registry has %d daemons, want %d", len(specs), len(want))
	}
	for i, name := range want {
		if specs[i].Name != name {
			t.Errorf("daemon %d is %q, want %q", i, specs[i].Name, name)
		}
		if specs[i].New(7) == nil {
			t.Errorf("daemon %q constructs nil", name)
		}
	}
	if _, err := SchedulerByName("nonesuch"); err == nil {
		t.Error("accepted unknown daemon name")
	}
}

// TestBoundsCheckFlagsViolations: every envelope of the bounds file
// fires on a certificate that exceeds it, and a conforming certificate
// passes clean.
func TestBoundsCheckFlagsViolations(t *testing.T) {
	b := Bounds{
		MaxRecoveryMoves:   100,
		MaxRecoveryRounds:  50,
		MaxWindows:         10,
		MaxRegisterBits:    40,
		MaxStretch:         2,
		MinDeliveryRate:    0.9,
		MaxDroppedPerBurst: 1,
	}
	good := &Certificate{
		FinalSilent: true, FinalSpecValid: true,
		Worst: ChaosWorst{
			RecoveryMoves: 50, RecoveryRounds: 20, Windows: 5,
			RegisterBits: 30, Stretch: 1.5, Dropped: 0, MinDelivery: 1,
		},
	}
	if v := b.Check(good); len(v) != 0 {
		t.Fatalf("conforming certificate flagged: %v", v)
	}
	bad := &Certificate{
		FinalSilent: false, FinalSpecValid: false,
		Worst: ChaosWorst{
			RecoveryMoves: 200, RecoveryRounds: 60, Windows: 20,
			RegisterBits: 50, Stretch: 3, Dropped: 5, MinDelivery: 0.5,
		},
	}
	v := b.Check(bad)
	if len(v) != 9 {
		t.Fatalf("got %d violations, want 9: %v", len(v), v)
	}
	for _, msg := range v {
		if strings.TrimSpace(msg) == "" {
			t.Error("empty violation message")
		}
	}
}

// TestRegisterBitsBoundScalesLogarithmically: the committed width bound
// must itself be O(log n) — a bound that silently grew linear would
// make the width check vacuous.
func TestRegisterBitsBoundScalesLogarithmically(t *testing.T) {
	for _, ng := range EnumerateConnected(4)[:1] {
		for _, a := range AllAlgos() {
			if got := RegisterBitsBound(a, ng.G); got > 40 {
				t.Errorf("%s bound on n=4 is %d bits", a, got)
			}
		}
	}
}
