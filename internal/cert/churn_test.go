package cert

import (
	"math/rand"
	"testing"

	"silentspan/internal/graph"
)

// TestChurnScheduleGeneratorInvariants: every generated schedule must
// replay cleanly against a live network (ops valid in order) and leave
// the final graph connected.
func TestChurnScheduleGeneratorInvariants(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(5+int(seed%4), 0.5, rng)
		ops := GenerateChurnSchedule(g, 12, seed)
		sim := g.Clone()
		for oi, op := range ops {
			var err error
			switch op.Kind {
			case ChurnJoin:
				sim.AddNode(op.Node)
				for _, e := range op.Edges {
					err = sim.AddEdge(e.U, e.V, e.W)
					if err != nil {
						break
					}
				}
			case ChurnLeave:
				err = sim.RemoveNode(op.Node)
			case ChurnLinkDown, ChurnPartition:
				for _, e := range op.Edges {
					if err = sim.RemoveEdge(e.U, e.V); err != nil {
						break
					}
				}
			case ChurnLinkUp, ChurnHeal:
				for _, e := range op.Edges {
					if err = sim.AddEdge(e.U, e.V, e.W); err != nil {
						break
					}
				}
			case ChurnCorrupt:
				// state-only
			}
			if err != nil {
				t.Fatalf("seed %d: op %d (%s) does not replay: %v", seed, oi, op, err)
			}
		}
		if !sim.Connected() {
			t.Fatalf("seed %d: final graph disconnected", seed)
		}
		if !sim.DistinctWeights() {
			t.Fatalf("seed %d: generated weights collide", seed)
		}
	}
}

// TestChurnCampaignSlice runs a reduced churn certification campaign —
// small graphs, every algorithm, every daemon — and requires zero
// counterexamples: after every seeded join/leave/partition/heal
// schedule the system re-stabilizes to a spec-correct configuration of
// the final graph and the post-churn labeling serves all traffic.
func TestChurnCampaignSlice(t *testing.T) {
	cfg := ChurnConfig{MaxN: 5, Schedules: 1, Length: 8, Seed: 7}
	if testing.Short() {
		cfg.MaxN = 4
	}
	rep, err := RunChurn(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ce := range rep.Counterexamples {
		t.Errorf("counterexample: %s", ce)
	}
	if rep.Runs == 0 || rep.Mutations == 0 {
		t.Fatalf("campaign did not run: %+v", rep)
	}
	if rep.PacketsSent == 0 || rep.PacketsArrived == 0 {
		t.Fatalf("no cohort traffic flowed: sent %d arrived %d", rep.PacketsSent, rep.PacketsArrived)
	}
	t.Logf("churn slice: %d runs, %d mutations, cohort %d/%d delivered",
		rep.Runs, rep.Mutations, rep.PacketsArrived, rep.PacketsSent)
}
