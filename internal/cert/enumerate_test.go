package cert

import (
	"testing"

	"silentspan/internal/graph"
)

// TestEnumerateConnectedCounts pins the enumeration to the classical
// connected-graphs-up-to-isomorphism sequence (OEIS A001349).
func TestEnumerateConnectedCounts(t *testing.T) {
	want := map[int]int{1: 1, 2: 1, 3: 2, 4: 6, 5: 21, 6: 112}
	for n, count := range want {
		got := EnumerateConnected(n)
		if len(got) != count {
			t.Errorf("n=%d: enumerated %d graphs, want %d", n, len(got), count)
		}
		for _, ng := range got {
			if ng.G.N() != n {
				t.Errorf("%s has %d nodes, want %d", ng.Name, ng.G.N(), n)
			}
			if !ng.G.Connected() {
				t.Errorf("%s is not connected", ng.Name)
			}
			if !ng.G.DistinctWeights() {
				t.Errorf("%s has duplicate weights", ng.Name)
			}
		}
	}
}

// TestPathologicalFamiliesAreUsable: connected, distinct weights, and
// small enough for the brute-force MDST ground truth.
func TestPathologicalFamiliesAreUsable(t *testing.T) {
	for _, ng := range PathologicalFamilies() {
		if !ng.G.Connected() {
			t.Errorf("%s is not connected", ng.Name)
		}
		if !ng.G.DistinctWeights() {
			t.Errorf("%s has duplicate weights", ng.Name)
		}
		if m := ng.G.M(); m > 24 {
			t.Errorf("%s has %d edges, beyond the brute-force MDST limit", ng.Name, m)
		}
	}
}

// TestDumbbellShape: two k-cliques joined through a bar path.
func TestDumbbellShape(t *testing.T) {
	g := graph.Dumbbell(4, 2)
	if got, want := g.N(), 10; got != want {
		t.Fatalf("n = %d, want %d", got, want)
	}
	if got, want := g.M(), 6+6+3; got != want {
		t.Fatalf("m = %d, want %d", got, want)
	}
	if !g.Connected() {
		t.Fatal("dumbbell not connected")
	}
	if !g.DistinctWeights() {
		t.Fatal("dumbbell has duplicate weights")
	}
	// Clique nodes have degree k-1 (+1 for the attachment points).
	if d := g.Degree(1); d != 3 {
		t.Errorf("clique-A node degree %d, want 3", d)
	}
	if d := g.Degree(7); d != 4 {
		t.Errorf("clique-B attachment degree %d, want 4", d)
	}
}
