package cert

// Live-topology churn certification: the model checker's missing fault
// class. PR 3 certified recovery from register corruption on frozen
// graphs; here the graph itself moves — nodes join and leave, links
// flap, the network partitions and heals — interleaved with register
// corruption, while a packet cohort keeps flying over the incremental
// labeling of the decaying tree. Every run must re-stabilize to a
// silent, closed, spec-correct configuration of the *final* graph,
// within the register bound of the final graph, and deliver the
// surviving cohort once the labeling heals.

import (
	"fmt"
	"math/rand"

	"silentspan/internal/graph"
	"silentspan/internal/routing"
	"silentspan/internal/runtime"
	"silentspan/internal/spanning"
	"silentspan/internal/switching"
)

// ChurnOpKind names one churn schedule operation.
type ChurnOpKind int

// The churn operations. Partition removes a cut that splits the graph
// in two; Heal restores the most recent un-healed partition or downed
// links. Corrupt is the PR 3 fault class riding along, so recovery is
// certified under combined structural + state faults.
const (
	ChurnJoin ChurnOpKind = iota
	ChurnLeave
	ChurnLinkDown
	ChurnLinkUp
	ChurnPartition
	ChurnHeal
	ChurnCorrupt
)

// String names the kind.
func (k ChurnOpKind) String() string {
	switch k {
	case ChurnJoin:
		return "join"
	case ChurnLeave:
		return "leave"
	case ChurnLinkDown:
		return "link-down"
	case ChurnLinkUp:
		return "link-up"
	case ChurnPartition:
		return "partition"
	case ChurnHeal:
		return "heal"
	case ChurnCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("churn(%d)", int(k))
}

// ChurnOp is one schedule entry. Join carries the new node and its
// initial links; Leave the victim; link ops one edge; Partition/Heal a
// whole cut; Corrupt a victim count.
type ChurnOp struct {
	Kind  ChurnOpKind
	Node  graph.NodeID
	Edges []graph.Edge
	Count int
}

// String renders the op for traces and counterexamples.
func (op ChurnOp) String() string {
	switch op.Kind {
	case ChurnJoin:
		return fmt.Sprintf("join %d %v", op.Node, op.Edges)
	case ChurnLeave:
		return fmt.Sprintf("leave %d", op.Node)
	case ChurnLinkDown, ChurnLinkUp:
		return fmt.Sprintf("%s %v", op.Kind, op.Edges)
	case ChurnPartition, ChurnHeal:
		return fmt.Sprintf("%s cut=%v", op.Kind, op.Edges)
	case ChurnCorrupt:
		return fmt.Sprintf("corrupt %d", op.Count)
	}
	return op.Kind.String()
}

// GenerateChurnSchedule builds a seeded schedule of length ops valid
// against g: every op is checked against a shadow copy of the evolving
// graph, and the schedule ends with heals that make the final graph
// connected again (the model's stabilization target). Edge weights
// drawn for new links are globally fresh, preserving the distinct-
// weight assumption.
func GenerateChurnSchedule(g *graph.Graph, length int, seed int64) []ChurnOp {
	rng := rand.New(rand.NewSource(seed))
	sim := g.Clone()
	nextID := graph.NodeID(0)
	for _, v := range sim.Nodes() {
		if v > nextID {
			nextID = v
		}
	}
	nextID += 1 + graph.NodeID(rng.Intn(3))
	nextW := graph.Weight(1)
	for _, e := range sim.Edges() {
		if e.W > nextW {
			nextW = e.W
		}
	}
	nextW++
	freshW := func() graph.Weight {
		w := nextW
		nextW++
		return w
	}

	var (
		ops    []ChurnOp
		downed []graph.Edge // individual downed links
		cuts   [][]graph.Edge
	)
	emit := func(op ChurnOp) { ops = append(ops, op) }

	for len(ops) < length {
		nodes := sim.Nodes()
		switch k := rng.Intn(10); {
		case k < 2: // join with 1-2 links
			id := nextID
			nextID++
			cnt := 1 + rng.Intn(2)
			var es []graph.Edge
			seen := map[graph.NodeID]bool{}
			for len(es) < cnt {
				a := nodes[rng.Intn(len(nodes))]
				if seen[a] {
					break
				}
				seen[a] = true
				es = append(es, graph.Edge{U: id, V: a, W: freshW()})
			}
			sim.AddNode(id)
			for _, e := range es {
				sim.MustAddEdge(e.U, e.V, e.W)
			}
			emit(ChurnOp{Kind: ChurnJoin, Node: id, Edges: es})
		case k < 4: // leave
			if len(nodes) <= 3 {
				continue
			}
			v := nodes[rng.Intn(len(nodes))]
			if err := sim.RemoveNode(v); err != nil {
				continue
			}
			emit(ChurnOp{Kind: ChurnLeave, Node: v})
		case k < 6: // link down
			edges := sim.Edges()
			if len(edges) == 0 {
				continue
			}
			e := edges[rng.Intn(len(edges))]
			if err := sim.RemoveEdge(e.U, e.V); err != nil {
				continue
			}
			downed = append(downed, e)
			emit(ChurnOp{Kind: ChurnLinkDown, Edges: []graph.Edge{e}})
		case k < 7: // link up: heal a downed link or add a fresh one
			if len(downed) > 0 && rng.Intn(2) == 0 {
				e := downed[len(downed)-1]
				if !sim.HasNode(e.U) || !sim.HasNode(e.V) || sim.HasEdge(e.U, e.V) {
					downed = downed[:len(downed)-1]
					continue
				}
				downed = downed[:len(downed)-1]
				sim.MustAddEdge(e.U, e.V, e.W)
				emit(ChurnOp{Kind: ChurnLinkUp, Edges: []graph.Edge{e}})
				continue
			}
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			if u == v || sim.HasEdge(u, v) {
				continue
			}
			e := graph.Edge{U: u, V: v, W: freshW()}
			sim.MustAddEdge(e.U, e.V, e.W)
			emit(ChurnOp{Kind: ChurnLinkUp, Edges: []graph.Edge{e}})
		case k < 8: // partition: cut a BFS half away
			if len(nodes) < 4 || !sim.Connected() {
				continue
			}
			half := bfsHalf(sim, nodes[rng.Intn(len(nodes))])
			var cut []graph.Edge
			for _, e := range sim.Edges() {
				if half[e.U] != half[e.V] {
					cut = append(cut, e)
				}
			}
			if len(cut) == 0 {
				continue
			}
			for _, e := range cut {
				if err := sim.RemoveEdge(e.U, e.V); err != nil {
					panic(err)
				}
			}
			cuts = append(cuts, cut)
			emit(ChurnOp{Kind: ChurnPartition, Edges: cut})
		case k < 9: // heal the most recent partition
			if len(cuts) == 0 {
				continue
			}
			cut := cuts[len(cuts)-1]
			cuts = cuts[:len(cuts)-1]
			var healed []graph.Edge
			for _, e := range cut {
				if sim.HasNode(e.U) && sim.HasNode(e.V) && !sim.HasEdge(e.U, e.V) {
					sim.MustAddEdge(e.U, e.V, e.W)
					healed = append(healed, e)
				}
			}
			if len(healed) == 0 {
				continue
			}
			emit(ChurnOp{Kind: ChurnHeal, Edges: healed})
		default: // register corruption riding along
			emit(ChurnOp{Kind: ChurnCorrupt, Count: 1 + rng.Intn(3)})
		}
	}

	// Closing heals: restore every outstanding cut and downed link that
	// still applies, then bridge any remaining components, so the final
	// graph — the stabilization target — is connected.
	for len(cuts) > 0 {
		cut := cuts[len(cuts)-1]
		cuts = cuts[:len(cuts)-1]
		var healed []graph.Edge
		for _, e := range cut {
			if sim.HasNode(e.U) && sim.HasNode(e.V) && !sim.HasEdge(e.U, e.V) {
				sim.MustAddEdge(e.U, e.V, e.W)
				healed = append(healed, e)
			}
		}
		if len(healed) > 0 {
			emit(ChurnOp{Kind: ChurnHeal, Edges: healed})
		}
	}
	for !sim.Connected() {
		comps := components(sim)
		e := graph.Edge{U: comps[0][0], V: comps[1][0], W: freshW()}
		sim.MustAddEdge(e.U, e.V, e.W)
		emit(ChurnOp{Kind: ChurnLinkUp, Edges: []graph.Edge{e}})
	}
	return ops
}

// bfsHalf marks roughly half the nodes of g by BFS from start.
func bfsHalf(g *graph.Graph, start graph.NodeID) map[graph.NodeID]bool {
	target := g.N() / 2
	half := map[graph.NodeID]bool{start: true}
	queue := []graph.NodeID{start}
	for len(queue) > 0 && len(half) < target {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.NeighborsShared(v) {
			if !half[u] && len(half) < target {
				half[u] = true
				queue = append(queue, u)
			}
		}
	}
	return half
}

// components returns the connected components of g as node lists.
func components(g *graph.Graph) [][]graph.NodeID {
	var out [][]graph.NodeID
	seen := map[graph.NodeID]bool{}
	for _, v := range g.Nodes() {
		if seen[v] {
			continue
		}
		comp := []graph.NodeID{v}
		seen[v] = true
		for qi := 0; qi < len(comp); qi++ {
			for _, u := range g.NeighborsShared(comp[qi]) {
				if !seen[u] {
					seen[u] = true
					comp = append(comp, u)
				}
			}
		}
		out = append(out, comp)
	}
	return out
}

// Survivors returns the nodes of g that are never removed by the
// schedule — the packet cohort's legal endpoints.
func Survivors(g *graph.Graph, ops []ChurnOp) []graph.NodeID {
	removed := map[graph.NodeID]bool{}
	for _, op := range ops {
		if op.Kind == ChurnLeave {
			removed[op.Node] = true
		}
	}
	var out []graph.NodeID
	for _, v := range g.Nodes() {
		if !removed[v] {
			out = append(out, v)
		}
	}
	return out
}

// ApplyChurnOp applies one schedule op to a live network. Corrupt ops
// draw from rng. It returns the number of structural mutations applied.
func ApplyChurnOp(net *runtime.Network, op ChurnOp, rng *rand.Rand) (int, error) {
	switch op.Kind {
	case ChurnJoin:
		if err := net.AddNode(op.Node, nil); err != nil {
			return 0, err
		}
		for _, e := range op.Edges {
			if err := net.AddEdge(e.U, e.V, e.W); err != nil {
				return 0, err
			}
		}
		return 1 + len(op.Edges), nil
	case ChurnLeave:
		return 1, net.RemoveNode(op.Node)
	case ChurnLinkDown, ChurnPartition:
		for _, e := range op.Edges {
			if err := net.RemoveEdge(e.U, e.V); err != nil {
				return 0, err
			}
		}
		return len(op.Edges), nil
	case ChurnLinkUp, ChurnHeal:
		for _, e := range op.Edges {
			if err := net.AddEdge(e.U, e.V, e.W); err != nil {
				return 0, err
			}
		}
		return len(op.Edges), nil
	case ChurnCorrupt:
		runtime.Corrupt(net, op.Count, rng)
		return 0, nil
	}
	return 0, fmt.Errorf("cert: unknown churn op %v", op.Kind)
}

// parentOf returns the raw parent-pointer reader for a substrate's
// register type (routing.NoParent for foreign or nil registers).
func parentOf(a Algo) func(runtime.State) graph.NodeID {
	if a == AlgoSpanning {
		return func(s runtime.State) graph.NodeID {
			if ss, ok := s.(spanning.State); ok {
				return ss.Parent
			}
			return routing.NoParent
		}
	}
	return func(s runtime.State) graph.NodeID {
		if ss, ok := switching.RegOf(s); ok {
			return ss.Parent
		}
		return routing.NoParent
	}
}

// churnSubstrate brings up the substrate for a churn run: the direct
// always-on algorithms stabilize from an arbitrary start; MST/MDST
// (engine-driven) load their reference tree into the switching
// protocol, which then carries the churn — matching the chaos
// campaigns' treatment at scale.
func churnSubstrate(a Algo, g *graph.Graph, sched runtime.Scheduler, maxMoves int, rng *rand.Rand) (*runtime.Network, error) {
	if alg := DirectAlgorithm(a); alg != nil {
		net, err := runtime.NewNetwork(g, alg)
		if err != nil {
			return nil, err
		}
		net.InitArbitrary(rng)
		res, err := net.Run(sched, maxMoves)
		if err != nil {
			return nil, err
		}
		if !res.Silent {
			return nil, fmt.Errorf("substrate not silent within %d moves", maxMoves)
		}
		return net, nil
	}
	_, tree, err := bringUpSubstrate(g, a.String(), sched, maxMoves, rng)
	if err != nil {
		return nil, err
	}
	net, err := runtime.NewNetwork(g, switching.Algorithm{})
	if err != nil {
		return nil, err
	}
	if err := switching.InitFromTree(net, tree); err != nil {
		return nil, err
	}
	return net, nil
}

// checkChurnSpec verifies the re-stabilized configuration against the
// final (post-churn) graph: the direct algorithms keep their own spec;
// the engine-driven substrates run the switching protocol, whose
// Lemma 4.1 spec is the contract the churned tree must satisfy.
func checkChurnSpec(a Algo, g *graph.Graph, net *runtime.Network) error {
	switch a {
	case AlgoSpanning, AlgoSwitching, AlgoBFS:
		return checkDirectSpec(a, g, net)
	default:
		return checkSwitchingSpec(g, net, false)
	}
}

// churnRegisterBound is the register bound on the final graph: the
// engine-driven substrates carry switching registers through churn.
func churnRegisterBound(a Algo, g *graph.Graph) int {
	if a == AlgoMST || a == AlgoMDST {
		return RegisterBitsBound(AlgoSwitching, g)
	}
	return RegisterBitsBound(a, g)
}

// ChurnConfig parameterizes the churn certification campaign. Zero
// values take the documented defaults.
type ChurnConfig struct {
	// MaxN: graphs on 3..MaxN nodes (default 6).
	MaxN int
	// Schedules per (graph, algorithm, daemon) (default 2).
	Schedules int
	// Length: churn ops per schedule (default 10).
	Length int
	// InFlight: packet cohort size launched before the churn (default 8).
	InFlight int
	// MovesPerWindow: repair budget between packet steps (default 40).
	MovesPerWindow int
	// MaxMoves caps every stabilization (default 200000).
	MaxMoves int
	// Seed drives schedules, inits, and daemons.
	Seed int64
	// Algos restricts the algorithm set (default all five).
	Algos []Algo
	// MaxCounterexamples stops the hunt (default 20).
	MaxCounterexamples int
}

func (c *ChurnConfig) fill() {
	if c.MaxN == 0 {
		c.MaxN = 6
	}
	if c.Schedules == 0 {
		c.Schedules = 2
	}
	if c.Length == 0 {
		c.Length = 10
	}
	if c.InFlight == 0 {
		c.InFlight = 8
	}
	if c.MovesPerWindow == 0 {
		c.MovesPerWindow = 40
	}
	if c.MaxMoves == 0 {
		c.MaxMoves = 200_000
	}
	if len(c.Algos) == 0 {
		c.Algos = AllAlgos()
	}
	if c.MaxCounterexamples == 0 {
		c.MaxCounterexamples = 20
	}
}

// ChurnReport summarizes a churn certification campaign.
type ChurnReport struct {
	Config          ChurnConfig          `json:"config"`
	Graphs          int                  `json:"graphs"`
	Runs            int                  `json:"runs"`
	Mutations       int                  `json:"mutations"`
	PacketsSent     int                  `json:"packets_sent"`
	PacketsArrived  int                  `json:"packets_arrived"`
	Worst           map[string]WorstCase `json:"worst"`
	Counterexamples []Counterexample     `json:"counterexamples"`
}

// Certified reports whether the campaign found no counterexample.
func (r *ChurnReport) Certified() bool { return len(r.Counterexamples) == 0 }

// churnGraphs is the instance set: per size, a path (worst diameter), a
// complete graph (worst degree), and a seeded random instance.
func churnGraphs(maxN int, seed int64) []NamedGraph {
	var out []NamedGraph
	for n := 3; n <= maxN; n++ {
		out = append(out,
			NamedGraph{Name: fmt.Sprintf("path-%d", n), G: graph.Path(n)},
			NamedGraph{Name: fmt.Sprintf("complete-%d", n), G: graph.Complete(n)},
		)
		if n >= 4 {
			rng := rand.New(rand.NewSource(seed + int64(n)))
			out = append(out, NamedGraph{
				Name: fmt.Sprintf("random-%d", n),
				G:    graph.RandomConnected(n, 0.5, rng),
			})
		}
	}
	return out
}

// RunChurn executes the churn certification campaign: every graph ×
// algorithm × daemon × seeded schedule, each run interleaving the
// schedule's structural mutations and corruptions with bounded repair
// windows and a flying packet cohort over the incrementally maintained
// labeling, then asserting re-stabilization, closure, final-graph
// spec, the register bound, and cohort delivery.
func RunChurn(cfg ChurnConfig, logf func(format string, args ...any)) (*ChurnReport, error) {
	cfg.fill()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &ChurnReport{Config: cfg, Worst: make(map[string]WorstCase)}
	instances := churnGraphs(cfg.MaxN, cfg.Seed)
	rep.Graphs = len(instances)

	record := func(a Algo, spec SchedulerSpec, ng NamedGraph, stats RunStats) {
		w := rep.Worst[a.String()]
		if stats.Moves > w.Moves.Value {
			w.Moves = WorstEntry{Value: stats.Moves, Graph: ng.Name, Scheduler: spec.Name}
		}
		if stats.Rounds > w.Rounds.Value {
			w.Rounds = WorstEntry{Value: stats.Rounds, Graph: ng.Name, Scheduler: spec.Name}
		}
		if stats.RegisterBits > w.RegisterBits.Value {
			w.RegisterBits = WorstEntry{Value: stats.RegisterBits, Graph: ng.Name, Scheduler: spec.Name}
		}
		rep.Worst[a.String()] = w
	}

	for gi, ng := range instances {
		for _, a := range cfg.Algos {
			for _, spec := range Schedulers() {
				for s := 0; s < cfg.Schedules; s++ {
					seed := cfg.Seed + int64(gi*10_000+s*100)
					rep.Runs++
					stats, sent, arrived, muts, err := runOneChurn(a, ng, spec, cfg, seed)
					rep.PacketsSent += sent
					rep.PacketsArrived += arrived
					rep.Mutations += muts
					if err == nil {
						record(a, spec, ng, stats)
						continue
					}
					rep.Counterexamples = append(rep.Counterexamples, Counterexample{
						Graph: ng.Name, N: ng.G.N(), M: ng.G.M(), Algorithm: a.String(),
						Scheduler: spec.Name, Init: fmt.Sprintf("churn seed=%d", seed),
						Detail: err.Error(),
					})
					logf("COUNTEREXAMPLE: %s", rep.Counterexamples[len(rep.Counterexamples)-1])
					if len(rep.Counterexamples) >= cfg.MaxCounterexamples {
						return rep, nil
					}
				}
			}
		}
		if (gi+1)%5 == 0 || gi == len(instances)-1 {
			logf("churned %d/%d graphs, %d runs, %d mutations, %d/%d packets, %d counterexamples",
				gi+1, len(instances), rep.Runs, rep.Mutations,
				rep.PacketsArrived, rep.PacketsSent, len(rep.Counterexamples))
		}
	}
	return rep, nil
}

// runOneChurn is one certified churn run. The graph is cloned (the
// instance is shared across runs); the schedule is generated against
// the clone, the substrate brought up, the cohort launched, and the
// schedule applied op by op with repair windows and packet advances in
// between. After the last op the network must re-stabilize and pass
// the full claim set on the final graph.
func runOneChurn(a Algo, ng NamedGraph, spec SchedulerSpec, cfg ChurnConfig, seed int64) (stats RunStats, sent, arrived, muts int, err error) {
	g := ng.G.Clone()
	rng := rand.New(rand.NewSource(seed))
	sched := spec.New(seed + 1)
	ops := GenerateChurnSchedule(g, cfg.Length, seed+2)
	survivors := Survivors(g, ops)

	net, err := churnSubstrate(a, g, sched, cfg.MaxMoves, rng)
	if err != nil {
		return stats, 0, 0, 0, fmt.Errorf("substrate: %w", err)
	}

	// Incremental labeling wired to the live registers and topology.
	// The initial parent snapshot goes through the substrate's own
	// register reader (LiveParents is switching-specific).
	getParent := parentOf(a)
	initParents := make([]graph.NodeID, net.Dense().Slots())
	for i := range initParents {
		initParents[i] = getParent(net.StateAt(i))
	}
	lb := routing.NewLiveLabeler(g, initParents)
	net.AddStateListener(func(v graph.NodeID, old, new runtime.State) {
		lb.SetParent(v, getParent(new))
	})
	net.AddTopologyListener(lb.ApplyTopo)
	router := routing.NewRouter(g, lb.Labeling(), routing.Options{})

	// The cohort: launched before the first mutation, flying throughout
	// (empty when the schedule leaves fewer than two survivors).
	cohort := routing.UniformPairs(survivors, cfg.InFlight, rng)
	flight := routing.NewFlight(cohort)
	sent = len(cohort)

	moves0, rounds0 := net.Moves(), net.Rounds()
	for oi, op := range ops {
		m, err := ApplyChurnOp(net, op, rng)
		muts += m
		if err != nil {
			return stats, sent, 0, muts, fmt.Errorf("op %d (%s): %w", oi, op, err)
		}
		// Repair window + packet steps over the decaying labeling.
		router.SetLabeling(lb.Labeling())
		if _, err := net.Run(sched, net.Moves()+cfg.MovesPerWindow); err != nil {
			return stats, sent, 0, muts, fmt.Errorf("op %d (%s) repair: %w", oi, op, err)
		}
		router.SetLabeling(lb.Labeling())
		flight.Advance(router, 2)
	}

	// Re-stabilization on the final graph.
	res, err := net.Run(sched, net.Moves()+cfg.MaxMoves)
	if err != nil {
		return stats, sent, 0, muts, err
	}
	stats = RunStats{Moves: res.Moves - moves0, Rounds: res.Rounds - rounds0, RegisterBits: net.MaxRegisterBits()}
	if !res.Silent {
		return stats, sent, 0, muts, fmt.Errorf("no re-stabilization within %d moves of the final op", cfg.MaxMoves)
	}
	if err := runtime.CheckSilentStable(net); err != nil {
		return stats, sent, 0, muts, err
	}
	if !g.Connected() {
		return stats, sent, 0, muts, fmt.Errorf("schedule bug: final graph disconnected")
	}
	if err := checkChurnSpec(a, g, net); err != nil {
		return stats, sent, 0, muts, fmt.Errorf("final-graph spec: %w", err)
	}
	if bound := churnRegisterBound(a, g); stats.RegisterBits > bound {
		return stats, sent, 0, muts, fmt.Errorf("register width %d bits exceeds final-graph bound %d", stats.RegisterBits, bound)
	}

	// The incremental labeling must now be the complete labeling of the
	// re-stabilized tree. The cohort flushes over it: packets that
	// survived the transition must all arrive; packets the decay
	// classified as looped/dropped mid-churn are legal casualties and
	// are reported, not failed (the chaos campaigns' contract). A fresh
	// post-churn batch must deliver 100% — the serving-layer claim on
	// the final graph.
	router.SetLabeling(lb.Labeling())
	if !lb.Labeling().Complete() {
		return stats, sent, 0, muts, fmt.Errorf("labeling incomplete after re-stabilization: %d labeled", lb.Labeling().Covered())
	}
	flight.Flush(router)
	fs := flight.Stats()
	arrived = fs.Delivered()
	if arrived+fs.Dropped != sent {
		return stats, sent, arrived, muts, fmt.Errorf("cohort unaccounted: %d delivered + %d dropped of %d",
			arrived, fs.Dropped, sent)
	}
	post, err := routing.Drive(router, routing.UniformPairs(g.Nodes(), 2*g.N(), rng), routing.DriveOptions{})
	if err != nil {
		return stats, sent, arrived, muts, err
	}
	if post.DeliveryRate() != 1 {
		return stats, sent, arrived, muts, fmt.Errorf("post-churn batch delivery %.3f, want 1.0", post.DeliveryRate())
	}
	return stats, sent, arrived, muts, nil
}
