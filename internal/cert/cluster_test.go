package cert

import (
	"strings"
	"testing"
)

// TestClusterCampaignSlice: a deterministic slice of the cluster
// certification campaign — small graphs, all five algorithms, all
// three transport profiles — must certify with zero counterexamples.
// The full n≤6 sweep runs in CI via sscert -cluster.
func TestClusterCampaignSlice(t *testing.T) {
	maxN := 5
	if testing.Short() {
		maxN = 4
	}
	rep, err := RunCluster(ClusterConfig{MaxN: maxN, Seed: 1}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ce := range rep.Counterexamples {
		t.Errorf("counterexample: %s", ce)
	}
	if rep.Runs == 0 || rep.FramesSent == 0 {
		t.Fatalf("campaign ran nothing: %+v", rep)
	}
	if rep.PacketsArrived == 0 {
		t.Fatal("no packet ever arrived")
	}
	// Every algorithm must have produced a worst-case record.
	for _, a := range AllAlgos() {
		if _, ok := rep.Worst[a.String()]; !ok {
			t.Errorf("no worst-case record for %s", a)
		}
	}
}

// TestClusterChurnCampaignSlice: the membership-churn variant — every
// run injects a schedule of joins, leaves, crashes, and link flaps into
// the live cluster mid-campaign, then the full post-quiet battery
// (spec, closure, register bound, crawl, delivery ledger) must still
// certify on the final graph. The full churn sweep runs in CI via
// sscert -cluster -cluster-churn.
func TestClusterChurnCampaignSlice(t *testing.T) {
	cfg := ClusterConfig{MaxN: 4, Seed: 3, ChurnOps: 4}
	if testing.Short() {
		cfg.Algos = []Algo{AlgoSpanning, AlgoBFS}
	}
	rep, err := RunCluster(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ce := range rep.Counterexamples {
		t.Errorf("counterexample: %s", ce)
	}
	if rep.Runs == 0 {
		t.Fatalf("campaign ran nothing: %+v", rep)
	}
	if rep.Joins == 0 || rep.Leaves+rep.Crashes == 0 {
		t.Fatalf("churn never exercised membership: %+v", rep)
	}
}

// TestClusterCampaignDeterministic: the campaign is replayable — same
// config, same outcome counters.
func TestClusterCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("replay pair in -short mode")
	}
	cfg := ClusterConfig{MaxN: 4, Seed: 7, Algos: []Algo{AlgoSpanning, AlgoBFS}}
	r1, err := RunCluster(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunCluster(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.FramesSent != r2.FramesSent || r1.FramesRejected != r2.FramesRejected ||
		r1.PacketsArrived != r2.PacketsArrived || len(r1.Counterexamples) != len(r2.Counterexamples) {
		t.Fatalf("campaign not deterministic:\n%+v\n%+v", r1, r2)
	}
}

// TestClusterProfilesCoverFaultMenu: the registry must include the
// adversarial profile with every fault class armed (the acceptance
// criterion's "seeded loss/dup/reorder faults").
func TestClusterProfilesCoverFaultMenu(t *testing.T) {
	var names []string
	sawFull := false
	for _, p := range ClusterProfiles() {
		names = append(names, p.Name)
		f := p.Faults
		if f.Loss > 0 && f.Dup > 0 && f.Corrupt > 0 && f.Delay > 0 {
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatalf("no profile arms the full fault menu: %s", strings.Join(names, ", "))
	}
}
