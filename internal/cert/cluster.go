package cert

// Message-passing cluster certification: the campaigns of this file
// re-certify the convergence claims over internal/cluster — the
// shared-memory→message-passing transform running each node as a
// goroutine-actor exchanging heartbeat frames over an adversarial
// transport — instead of the simulator's atomic views. Every run must
// reach quiet under seeded loss/duplication/reordering/corruption,
// project to a silent, closed, spec-correct shared-memory
// configuration within the register bound, reconstruct the same tree
// through the operations plane's crawler (admin API only, no
// coordinator access), and serve a packet batch end-to-end over the
// same transport once the control plane settles.

import (
	"fmt"
	"math/rand"
	"strings"

	"silentspan/internal/cluster"
	"silentspan/internal/graph"
	"silentspan/internal/mdst"
	"silentspan/internal/mst"
	"silentspan/internal/ops"
	"silentspan/internal/routing"
	"silentspan/internal/runtime"
	"silentspan/internal/switching"
	"silentspan/internal/trace"
	"silentspan/internal/trees"
)

// flightTraceCap sizes the certification campaigns' per-node event
// rings. 1<<15 events comfortably holds the full history of every
// campaign-sized run, so the merged causal past is complete and the
// trace invariants below are exact rather than advisory.
const flightTraceCap = 1 << 15

// ClusterProfile names one transport fault profile of the campaign.
type ClusterProfile struct {
	Name   string
	Faults cluster.FaultConfig
}

// ClusterProfiles is the campaign's transport adversary registry: a
// perfect network (the transform alone), a lossy one, and the full
// menu — loss, duplication, reordering (delay jitter), and byte
// corruption caught by the frame checksum.
func ClusterProfiles() []ClusterProfile {
	return []ClusterProfile{
		{Name: "clean", Faults: cluster.FaultConfig{}},
		{Name: "lossy", Faults: cluster.FaultConfig{Loss: 0.15, Dup: 0.05}},
		{Name: "chaotic", Faults: cluster.FaultConfig{
			Loss: 0.1, Dup: 0.1, Corrupt: 0.05, Delay: 0.2, MaxDelayTicks: 4}},
	}
}

// ClusterConfig parameterizes the cluster certification campaign. Zero
// values take the documented defaults.
type ClusterConfig struct {
	// MaxN: graphs on 3..MaxN nodes (default 6).
	MaxN int `json:"max_n"`
	// Runs per (graph, algorithm, profile) (default 1).
	Runs int `json:"runs"`
	// InFlight: packet cohort launched mid-convergence (default 8).
	InFlight int `json:"in_flight"`
	// MaxTicks caps each convergence (default 50000).
	MaxTicks int `json:"max_ticks"`
	// QuietTicks: register-stability window declaring quiet; must
	// exceed the heartbeat period plus the worst fault delay
	// (default 12).
	QuietTicks int `json:"quiet_ticks"`
	// ChurnOps is the length of the live-membership churn schedule
	// driven through Cluster.Join/Leave/Crash/AddEdge/RemoveEdge after
	// the first stabilization, followed by a crash-and-rejoin coda on a
	// surviving member (0 disables the churn phase entirely).
	ChurnOps int `json:"churn_ops"`
	// Seed drives graphs, inits, fault schedules, and cohorts.
	Seed int64 `json:"seed"`
	// Algos restricts the algorithm set (default all five).
	Algos []Algo `json:"-"`
	// MaxCounterexamples stops the hunt (default 20).
	MaxCounterexamples int `json:"max_counterexamples"`
}

func (c *ClusterConfig) fill() {
	if c.MaxN == 0 {
		c.MaxN = 6
	}
	if c.Runs == 0 {
		c.Runs = 1
	}
	if c.InFlight == 0 {
		c.InFlight = 8
	}
	if c.MaxTicks == 0 {
		c.MaxTicks = 50_000
	}
	if c.QuietTicks == 0 {
		c.QuietTicks = 12
	}
	if len(c.Algos) == 0 {
		c.Algos = AllAlgos()
	}
	if c.MaxCounterexamples == 0 {
		c.MaxCounterexamples = 20
	}
}

// ClusterWorst records the most expensive certified cluster runs per
// algorithm (Scheduler fields carry the fault profile).
type ClusterWorst struct {
	Ticks        WorstEntry `json:"ticks"`
	RegisterBits WorstEntry `json:"register_bits"`
}

// ClusterReport summarizes a cluster certification campaign.
type ClusterReport struct {
	Config          ClusterConfig           `json:"config"`
	Graphs          int                     `json:"graphs"`
	Runs            int                     `json:"runs"`
	FramesSent      int                     `json:"frames_sent"`
	FramesRejected  int                     `json:"frames_rejected"`
	PacketsSent     int                     `json:"packets_sent"`
	PacketsArrived  int                     `json:"packets_arrived"`
	Joins           int                     `json:"joins,omitempty"`
	Leaves          int                     `json:"leaves,omitempty"`
	Crashes         int                     `json:"crashes,omitempty"`
	Worst           map[string]ClusterWorst `json:"worst"`
	Counterexamples []Counterexample        `json:"counterexamples"`
}

// Certified reports whether the campaign found no counterexample.
func (r *ClusterReport) Certified() bool { return len(r.Counterexamples) == 0 }

// RunCluster executes the cluster certification campaign: every graph
// × algorithm × transport fault profile × seeded run.
func RunCluster(cfg ClusterConfig, logf func(format string, args ...any)) (*ClusterReport, error) {
	cfg.fill()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &ClusterReport{Config: cfg, Worst: make(map[string]ClusterWorst)}
	instances := churnGraphs(cfg.MaxN, cfg.Seed)
	rep.Graphs = len(instances)
	profiles := ClusterProfiles()

	for gi, ng := range instances {
		for _, a := range cfg.Algos {
			for _, prof := range profiles {
				for run := 0; run < cfg.Runs; run++ {
					seed := cfg.Seed + int64(gi*100_000+run*1000)
					rep.Runs++
					ticks, bits, st, gws, err := runOneCluster(a, ng, prof, cfg, seed)
					rep.FramesSent += st.FramesSent
					rep.FramesRejected += st.RxRejected
					rep.PacketsSent += gws.Launched
					rep.PacketsArrived += gws.Delivered
					rep.Joins += st.Joins
					rep.Leaves += st.Leaves
					rep.Crashes += st.Crashes
					if err == nil {
						w := rep.Worst[a.String()]
						if ticks > w.Ticks.Value {
							w.Ticks = WorstEntry{Value: ticks, Graph: ng.Name, Scheduler: prof.Name}
						}
						if bits > w.RegisterBits.Value {
							w.RegisterBits = WorstEntry{Value: bits, Graph: ng.Name, Scheduler: prof.Name}
						}
						rep.Worst[a.String()] = w
						continue
					}
					rep.Counterexamples = append(rep.Counterexamples, Counterexample{
						Graph: ng.Name, N: ng.G.N(), M: ng.G.M(), Algorithm: a.String(),
						Scheduler: prof.Name, Init: fmt.Sprintf("cluster seed=%d", seed),
						Detail: err.Error(),
					})
					logf("COUNTEREXAMPLE: %s", rep.Counterexamples[len(rep.Counterexamples)-1])
					if len(rep.Counterexamples) >= cfg.MaxCounterexamples {
						return rep, nil
					}
				}
			}
		}
		if (gi+1)%5 == 0 || gi == len(instances)-1 {
			logf("clustered %d/%d graphs, %d runs, %d frames (%d rejected), %d/%d packets, %d counterexamples",
				gi+1, len(instances), rep.Runs, rep.FramesSent, rep.FramesRejected,
				rep.PacketsArrived, rep.PacketsSent, len(rep.Counterexamples))
		}
	}
	return rep, nil
}

// clusterAlgorithm returns the algorithm a cluster run executes and an
// initializer for its registers: the always-on algorithms start from a
// fully adversarial configuration; MST/MDST (engine-driven in the
// simulator) deploy their reference tree into the switching protocol
// and take transient corruption on top — the deployment story at any
// scale, matching the chaos and churn campaigns.
func clusterAlgorithm(a Algo, g *graph.Graph) (runtime.Algorithm, func(cl *cluster.Cluster, rng *rand.Rand) error, error) {
	if alg := DirectAlgorithm(a); alg != nil {
		return alg, func(cl *cluster.Cluster, rng *rand.Rand) error {
			cl.InitArbitrary(rng)
			return nil
		}, nil
	}
	var (
		t   *trees.Tree
		err error
	)
	if a == AlgoMST {
		t, err = mst.Kruskal(g, g.MinID())
	} else {
		t, err = mdst.GreedyLowDegreeTree(g, g.MinID())
	}
	if err != nil {
		return nil, nil, err
	}
	depths := t.Depths()
	sizes := t.SubtreeSizes()
	return switching.Algorithm{}, func(cl *cluster.Cluster, rng *rand.Rand) error {
		for _, v := range g.Nodes() {
			cl.SetState(v, switching.State{
				Root: t.Root(), Parent: t.Parent(v),
				HasD: true, D: depths[v], HasS: true, S: sizes[v],
				Sw: switching.SwIdle, SwTarget: trees.None,
				Pr: switching.PrOff, Sub: switching.SubOff,
			})
		}
		cl.Corrupt(2, rng)
		return nil
	}, nil
}

// checkCrawl certifies the operations plane against the mirror: crawl
// the cluster hop-by-hop from a random start through the in-process
// admin hub, and diff the reconstructed parent map edge-by-edge
// against the coordinator's ground truth.
func checkCrawl(cl *cluster.Cluster, net *runtime.Network, g *graph.Graph, rng *rand.Rand) error {
	nodes := g.Nodes()
	start := nodes[rng.Intn(len(nodes))]
	rep, err := ops.Crawl(cl.AdminHub(), start)
	if err != nil {
		return err
	}
	if rep.Visited() != g.N() {
		return fmt.Errorf("visited %d of %d nodes from %d (errors: %v)", rep.Visited(), g.N(), start, rep.Errors)
	}
	if len(rep.Errors) != 0 {
		return fmt.Errorf("unreachable admin endpoints: %v", rep.Errors)
	}
	want := make(map[graph.NodeID]graph.NodeID, g.N())
	for _, v := range nodes {
		p := cluster.ParentOf(net.State(v))
		if p == routing.NoParent || p == trees.None {
			p = ops.None
		}
		want[v] = p
	}
	if diffs := rep.DiffParents(want); len(diffs) != 0 {
		return fmt.Errorf("crawl diverges from mirror: %s", strings.Join(diffs, "; "))
	}
	return nil
}

// quietAnnounceBound is the certified detector-latency budget for a
// quiet cluster: the local-quiet window (defaulting to the staleness
// TTL), one TTL of report decay, and a per-level propagation allowance
// with generous headroom for the lossy profiles — reports ride every
// keep-alive, so a lost frame retries within one back-off gap.
func quietAnnounceBound(cl *cluster.Cluster, cfg ClusterConfig) int {
	window := 4 * cfg.QuietTicks // QuietWindow defaults to the pinned StalenessTTL
	cap := max(1, cfg.QuietTicks/3)
	return 2*window + 8*(cl.Nodes()+2)*(cap+2)
}

// checkQuietAnnounce ticks a quiet cluster until the in-band detector
// announces, certifying both detector claims at once: bounded latency,
// and zero false positives — at the moment the announcement is up, the
// coordinator's ground truth must agree the registers have been silent.
func checkQuietAnnounce(cl *cluster.Cluster, cfg ClusterConfig) error {
	bound := quietAnnounceBound(cl, cfg)
	for i := 0; i < bound; i++ {
		if cl.QuietAnnounced() {
			if cl.QuietFor() == 0 {
				return fmt.Errorf("quiet detector false positive: announcement up in a tick with register writes")
			}
			return nil
		}
		cl.Tick()
	}
	return fmt.Errorf("no in-band quiet announcement within %d ticks of quiet", bound)
}

// runOneCluster is one certified run.
func runOneCluster(a Algo, ng NamedGraph, prof ClusterProfile, cfg ClusterConfig, seed int64) (
	ticks, registerBits int, st cluster.Stats, gws cluster.GatewayStats, err error) {
	g := ng.G
	if cfg.ChurnOps > 0 {
		// The churn phase mutates the graph through the cluster's
		// membership mutators; the campaign's shared instance must not
		// carry those mutations into the next run.
		g = g.Clone()
	}
	rng := rand.New(rand.NewSource(seed))
	alg, init, err := clusterAlgorithm(a, g)
	if err != nil {
		return 0, 0, st, gws, err
	}
	faults := prof.Faults
	faults.Seed = seed + 1
	ft := cluster.NewFaultTransport(cluster.NewChanTransport(), faults)
	// BackoffCap is tightened below its TTL-derived default so the
	// QuietTicks stability window always spans several keep-alives per
	// edge: the silence verdict is read off the registers alone, and
	// under a lossy adversary it is only as trustworthy as the number of
	// refresh opportunities inside the window.
	cl, err := cluster.New(g, alg, ft, cluster.Config{
		StalenessTTL: 4 * cfg.QuietTicks,
		BackoffCap:   max(1, cfg.QuietTicks/3),
	})
	if err != nil {
		return 0, 0, st, gws, err
	}
	defer cl.Stop()
	// Flight recorder on for every certified run: the causal invariants
	// at the end of the battery read the rings of the whole history,
	// departed members included.
	cl.EnableFlightRecorder(flightTraceCap)
	gw := cluster.NewGateway(cl)
	if err := init(cl, rng); err != nil {
		return 0, 0, st, gws, err
	}

	// Cohort launched mid-convergence, flying over the decaying labeling.
	for i := 0; i < 3; i++ {
		cl.Tick()
	}
	gw.Launch(routing.UniformPairs(g.Nodes(), cfg.InFlight, rng))

	ticks, quiet := cl.RunUntilQuiet(cfg.MaxTicks, cfg.QuietTicks)
	st = cl.Stats()
	gws = gw.Stats()
	if !quiet {
		return ticks, cl.MaxRegisterBits(), st, gws, fmt.Errorf("no quiet within %d ticks", cfg.MaxTicks)
	}
	// The cluster must now discover its own silence in-band — the
	// convergecast over the constructed tree, with the faults still on.
	if err := checkQuietAnnounce(cl, cfg); err != nil {
		return ticks, cl.MaxRegisterBits(), cl.Stats(), gw.Stats(), err
	}

	// Live-membership churn: drive a validated schedule through the
	// cluster's own mutators — actors spawn and retire mid-run, neighbor
	// rows remap, goodbyes and adverts fly over the same faulty
	// transport — then assert the cluster re-stabilizes and every
	// downstream check holds on the final graph. The first cohort is
	// still in flight while members leave, so the ledger check below
	// also certifies that departing destinations orphan (not leak) their
	// parked packets.
	if cfg.ChurnOps > 0 {
		if err := driveClusterChurn(cl, g, cfg, rng, seed); err != nil {
			return ticks, cl.MaxRegisterBits(), cl.Stats(), gw.Stats(), err
		}
		churnTicks, quiet := cl.RunUntilQuiet(cfg.MaxTicks, cfg.QuietTicks)
		ticks += churnTicks
		st = cl.Stats()
		gws = gw.Stats()
		if !quiet {
			return ticks, cl.MaxRegisterBits(), st, gws,
				fmt.Errorf("no re-stabilization after churn within %d ticks", cfg.MaxTicks)
		}
		// Churn bumped write epochs cluster-wide through the remaps, so
		// any pre-churn announcement is retracted; the reshaped cluster
		// must re-announce for its new membership.
		if err := checkQuietAnnounce(cl, cfg); err != nil {
			return ticks, cl.MaxRegisterBits(), st, gws, fmt.Errorf("after churn: %w", err)
		}
	}

	// Project into the shared-memory model: silence, closure, spec, and
	// the register bound all check against the simulator's own machinery.
	net, err := cl.Mirror()
	if err != nil {
		return ticks, 0, st, gws, err
	}
	if !net.Silent() {
		return ticks, 0, st, gws, fmt.Errorf("quiet cluster projects to a non-silent configuration: enabled %v", net.Enabled())
	}
	if err := runtime.CheckSilentStable(net); err != nil {
		return ticks, 0, st, gws, err
	}
	before := net.Moves()
	if _, err := net.Run(runtime.Synchronous(), before+8); err != nil {
		return ticks, 0, st, gws, fmt.Errorf("closure probe: %w", err)
	}
	if net.Moves() != before {
		return ticks, 0, st, gws, fmt.Errorf("closure violated: %d moves after quiet", net.Moves()-before)
	}
	if err := checkChurnSpec(a, g, net); err != nil {
		return ticks, 0, st, gws, fmt.Errorf("spec: %w", err)
	}
	registerBits = cl.MaxRegisterBits()
	if bound := churnRegisterBound(a, g); registerBits > bound {
		return ticks, registerBits, st, gws, fmt.Errorf("register width %d bits exceeds bound %d", registerBits, bound)
	}

	// Operations plane: a crawler walking the live cluster through the
	// admin API alone — seeded at one arbitrary node, no coordinator
	// access — must reconstruct the stabilized tree edge-for-edge equal
	// to the mirror's.
	if err := checkCrawl(cl, net, g, rng); err != nil {
		return ticks, registerBits, st, gws, fmt.Errorf("crawl: %w", err)
	}

	// Data plane: resolve the mid-chaos cohort (losses are legal
	// casualties, but every packet must be accounted), then a fresh
	// batch over the quiesced transport must deliver 100%.
	for i := 0; i < 8*g.N() && gw.Outstanding() > 0; i++ {
		cl.Tick()
	}
	gw.Expire()
	mid := gw.Stats()
	if mid.Delivered+mid.Dropped+mid.Lost != mid.Launched {
		return ticks, registerBits, st, mid, fmt.Errorf("cohort unaccounted: %+v", mid)
	}
	if !gw.Labeling().Complete() {
		return ticks, registerBits, st, mid, fmt.Errorf("labeling incomplete after quiet: %d covered", gw.Labeling().Covered())
	}
	ft.SetEnabled(false)
	batch := 2 * g.N()
	gw.Launch(routing.UniformPairs(g.Nodes(), batch, rng))
	for i := 0; i < 8*g.N() && gw.Outstanding() > 0; i++ {
		cl.Tick()
	}
	gws = gw.Stats()
	st = cl.Stats()
	if gws.Delivered-mid.Delivered != batch {
		return ticks, registerBits, st, gws, fmt.Errorf("post-quiet batch: %d of %d delivered over a clean transport",
			gws.Delivered-mid.Delivered, batch)
	}

	// Detector coda: one register write anywhere must retract the
	// standing announcement (the epoch bump dominates every stale
	// claim), and the re-stabilized cluster must re-announce at a
	// strictly higher epoch — the self-stabilization story of §13.
	epoch := cl.QuietEpoch()
	cl.Corrupt(1, rng)
	bound := quietAnnounceBound(cl, cfg)
	retracted := false
	for i := 0; i < bound; i++ {
		cl.Tick()
		if !cl.QuietAnnounced() {
			retracted = true
			break
		}
	}
	if !retracted {
		return ticks, registerBits, st, gws, fmt.Errorf("announcement not retracted within %d ticks of a register write", bound)
	}
	if _, q := cl.RunUntilQuiet(cfg.MaxTicks, cfg.QuietTicks); !q {
		return ticks, registerBits, st, gws, fmt.Errorf("no requiet after detector coda within %d ticks", cfg.MaxTicks)
	}
	if err := checkQuietAnnounce(cl, cfg); err != nil {
		return ticks, registerBits, st, gws, fmt.Errorf("after retraction: %w", err)
	}
	if again := cl.QuietEpoch(); again <= epoch {
		return ticks, registerBits, st, gws, fmt.Errorf("re-announced at epoch %d, want above %d", again, epoch)
	}

	// Trace invariants: the flight recorder's merged happens-before DAG
	// must certify — causally, not just by sampled state — that every
	// announcement in the run's history was earned and every delivered
	// packet hopped a contiguous chain.
	if err := checkFlightTrace(cl); err != nil {
		return ticks, registerBits, st, gws, fmt.Errorf("trace: %w", err)
	}
	st = cl.Stats()
	return ticks, registerBits, st, gws, nil
}

// checkFlightTrace merges every flight-recorder ring (departed members
// included) and certifies the two causal invariants over the entire
// recorded history: every quiet announcement has subtree-quiet reports
// covering its claimed count inside its causal past, and every
// delivered packet has a contiguous possession chain from launch to
// delivery. It runs after the detector coda, so the causally latest
// announcement must also cover the current membership exactly.
func checkFlightTrace(cl *cluster.Cluster) error {
	merged := trace.Merge(cl.FlightTraces())
	if merged.Rings == 0 {
		return fmt.Errorf("flight recorder produced no rings")
	}
	if merged.Dropped > 0 {
		// Wrapped rings make the causal past incomplete by design and the
		// invariants would false-positive; campaign-sized runs must never
		// wrap a flightTraceCap ring, so this is a sizing bug, not a skip.
		return fmt.Errorf("flight rings wrapped (%d events dropped): raise flightTraceCap", merged.Dropped)
	}
	if viol := merged.CheckAnnounceCoverage(); len(viol) != 0 {
		return fmt.Errorf("announce coverage: %s", strings.Join(viol, "; "))
	}
	if viol := merged.CheckPacketChains(); len(viol) != 0 {
		return fmt.Errorf("packet chains: %s", strings.Join(viol, "; "))
	}
	ann, ok := merged.LatestAnnounce()
	if !ok {
		return fmt.Errorf("no announce event recorded")
	}
	if ann.Arg != uint64(cl.Nodes()) {
		return fmt.Errorf("latest announce covers %d nodes, want %d", ann.Arg, cl.Nodes())
	}
	return nil
}

// driveClusterChurn replays a validated churn schedule through the
// cluster's live-membership mutators, a few repair ticks after each op,
// then runs the crash-and-rejoin coda: one surviving member crashes
// without a goodbye and the same id rejoins over the same links —
// the acceptance scenario in lockstep form. Leaves alternate between
// cooperative (goodbye broadcast) and crash (staleness-TTL discovery)
// so both eviction paths are exercised.
func driveClusterChurn(cl *cluster.Cluster, g *graph.Graph, cfg ClusterConfig, rng *rand.Rand, seed int64) error {
	sched := GenerateChurnSchedule(g, cfg.ChurnOps, seed+5)
	repair := func() {
		for i := 0; i < 6; i++ {
			cl.Tick()
		}
	}
	crashNext := false
	for _, op := range sched {
		var err error
		switch op.Kind {
		case ChurnJoin:
			err = cl.Join(op.Node, op.Edges)
		case ChurnLeave:
			if crashNext {
				err = cl.Crash(op.Node)
			} else {
				err = cl.Leave(op.Node)
			}
			crashNext = !crashNext
		case ChurnLinkDown, ChurnPartition:
			for _, e := range op.Edges {
				if err = cl.RemoveEdge(e.U, e.V); err != nil {
					break
				}
			}
		case ChurnLinkUp, ChurnHeal:
			for _, e := range op.Edges {
				if err = cl.AddEdge(e.U, e.V, e.W); err != nil {
					break
				}
			}
		case ChurnCorrupt:
			cl.Corrupt(op.Count, rng)
		}
		if err != nil {
			return fmt.Errorf("churn %s: %w", op, err)
		}
		repair()
	}
	// Crash-and-rejoin coda. The victim's links are recorded before the
	// crash; the rejoining incarnation must slot back in against
	// neighbors that may still hold in-flight frames from its previous
	// life.
	nodes := g.Nodes()
	victim := nodes[rng.Intn(len(nodes))]
	var edges []graph.Edge
	for _, u := range g.Neighbors(victim) {
		w, _ := g.EdgeWeight(victim, u)
		edges = append(edges, graph.Edge{U: victim, V: u, W: w})
	}
	if err := cl.Crash(victim); err != nil {
		return fmt.Errorf("coda crash %d: %w", victim, err)
	}
	for i := 0; i < 4; i++ {
		cl.Tick()
	}
	if err := cl.Join(victim, edges); err != nil {
		return fmt.Errorf("coda rejoin %d: %w", victim, err)
	}
	repair()
	return nil
}
