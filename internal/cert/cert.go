// Package cert is the adversarial certification harness: it hunts for
// counterexamples to the paper's headline claims instead of
// spot-checking them. Two engines share this package:
//
//   - the exhaustive small-graph model checker (modelcheck.go):
//     enumerate every connected graph up to n nodes (one representative
//     per isomorphism class) plus the named pathological families, and
//     drive every algorithm from exhaustively- or densely-sampled
//     arbitrary initial configurations under every scheduler — the
//     hostile ones included — asserting convergence to silence, closure
//     (no node re-enabled after silence), task-specific correctness of
//     the stabilized tree, and register widths within the paper's
//     O(log n) bound;
//
//   - the randomized chaos campaign (chaos.go): on large graphs,
//     interleave corruption bursts, register wipes, edge-weight churn
//     and adversarial daemons with live traffic routed over the
//     recovering tree, and distill the observed worst cases into a
//     machine-readable certificate that CI diffs against committed
//     bounds (bounds.go).
//
// The split mirrors the verification literature the reproduction must
// answer to: Devismes–Johnen and Altisen–Devismes both exhibit published
// silent-stabilization bounds that fail only under adversarial daemons,
// which no fixed unit test would ever schedule.
package cert

import (
	"fmt"
	"math/rand"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
)

// Algo names one of the five certified algorithms.
type Algo int

// The certified algorithms. Spanning, Switching and BFS are always-on
// rule systems driven directly on the state-model runtime; MST and MDST
// run through the PLS-guided distributed engine (core.RunDistributed),
// whose every phase is itself a runtime execution.
const (
	AlgoSpanning Algo = iota
	AlgoSwitching
	AlgoBFS
	AlgoMST
	AlgoMDST
)

// AllAlgos lists every certified algorithm.
func AllAlgos() []Algo {
	return []Algo{AlgoSpanning, AlgoSwitching, AlgoBFS, AlgoMST, AlgoMDST}
}

// String names the algorithm.
func (a Algo) String() string {
	switch a {
	case AlgoSpanning:
		return "spanning"
	case AlgoSwitching:
		return "switching"
	case AlgoBFS:
		return "bfs"
	case AlgoMST:
		return "mst"
	case AlgoMDST:
		return "mdst"
	}
	return fmt.Sprintf("algo(%d)", int(a))
}

// ParseAlgo parses an algorithm name.
func ParseAlgo(name string) (Algo, error) {
	for _, a := range AllAlgos() {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("cert: unknown algorithm %q", name)
}

// SchedulerSpec is one entry of the scheduler registry: a named daemon
// factory. Randomized daemons derive their stream from the given seed,
// so a (spec, seed) pair replays the identical schedule.
type SchedulerSpec struct {
	Name string
	New  func(seed int64) runtime.Scheduler
}

// Schedulers returns the full daemon registry the model checker sweeps:
// the deterministic extremes (central, synchronous), weak fairness
// (round-robin), the paper's unfair adversary, the greedy
// round-stretching adversary, and two randomized daemons.
func Schedulers() []SchedulerSpec {
	return []SchedulerSpec{
		{Name: "central", New: func(int64) runtime.Scheduler { return runtime.Central() }},
		{Name: "synchronous", New: func(int64) runtime.Scheduler { return runtime.Synchronous() }},
		{Name: "round-robin", New: func(int64) runtime.Scheduler { return runtime.RoundRobin() }},
		{Name: "adversarial-unfair", New: func(int64) runtime.Scheduler { return runtime.AdversarialUnfair() }},
		{Name: "greedy-stretch", New: func(int64) runtime.Scheduler { return runtime.GreedyRoundStretch() }},
		{Name: "random-central", New: func(seed int64) runtime.Scheduler {
			return runtime.RandomCentral(rand.New(rand.NewSource(seed)))
		}},
		{Name: "random-subset", New: func(seed int64) runtime.Scheduler {
			return runtime.RandomSubset(rand.New(rand.NewSource(seed)))
		}},
	}
}

// SchedulerByName returns the registry entry with the given name.
func SchedulerByName(name string) (SchedulerSpec, error) {
	for _, s := range Schedulers() {
		if s.Name == name {
			return s, nil
		}
	}
	return SchedulerSpec{}, fmt.Errorf("cert: unknown scheduler %q", name)
}

// RegisterBitsBound is the paper's register-width bound, instantiated
// per algorithm: identities cost ⌈log₂ maxID⌉ bits, bounded counters
// (distances, subtree sizes) ⌈log₂ n⌉, and control fields O(1). The
// spanning substrate stores two identities and a distance; the
// switching family (switching itself, BFS, and the engine-driven
// MST/MDST, whose registers are switching registers) stores three
// identities, two counters, two presence bits and three 2-bit phases.
// Every certified configuration must fit under this bound — it is the
// "space-optimal" half of the paper's title.
func RegisterBitsBound(a Algo, g *graph.Graph) int {
	nodes := g.Nodes()
	maxID := nodes[len(nodes)-1]
	b := runtime.BitsForValue(int(maxID))
	w := runtime.BitsForValue(g.N())
	if a == AlgoSpanning {
		return 2*b + w
	}
	return 3*b + 2*w + 8
}
