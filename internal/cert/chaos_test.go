package cert

import (
	"encoding/json"
	"testing"
)

// TestChaosCampaignSmall runs a seeded campaign per substrate on a
// 300-node graph and checks the certificate invariants: every burst
// recovers to a verifier-accepted silent configuration, no packet
// cohort is wiped out, and registers stay within the paper bound.
func TestChaosCampaignSmall(t *testing.T) {
	for _, sub := range []string{"bfs", "mst", "mdst"} {
		t.Run(sub, func(t *testing.T) {
			c, err := RunChaos(ChaosConfig{
				N: 300, Substrate: sub, Bursts: 2, Seed: 7,
				InFlight: 16, TrafficBatch: 64,
			}, t.Logf)
			if err != nil {
				t.Fatal(err)
			}
			if !c.FinalSilent || !c.FinalSpecValid {
				t.Fatalf("final state silent=%v spec=%v", c.FinalSilent, c.FinalSpecValid)
			}
			if len(c.Bursts) != 2 {
				t.Fatalf("recorded %d bursts, want 2", len(c.Bursts))
			}
			for _, b := range c.Bursts {
				if b.Corrupted == 0 || b.Wiped == 0 || b.Reweighed == 0 {
					t.Errorf("burst %d injected nothing: %+v", b.Burst, b)
				}
				if b.Delivered+b.Dropped != c.Config.InFlight {
					t.Errorf("burst %d: %d delivered + %d dropped != %d in flight",
						b.Burst, b.Delivered, b.Dropped, c.Config.InFlight)
				}
				if b.PostDelivery < 1 {
					t.Errorf("burst %d: post-recovery delivery %.3f < 1 over a consistent labeling",
						b.Burst, b.PostDelivery)
				}
			}
			if c.Worst.RegisterBits > c.RegisterBound {
				t.Errorf("register width %d exceeds bound %d", c.Worst.RegisterBits, c.RegisterBound)
			}
			// The certificate must round-trip as JSON (it is a CI artifact).
			data, err := json.Marshal(c)
			if err != nil {
				t.Fatal(err)
			}
			var back Certificate
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatal(err)
			}
			if back.Worst != c.Worst {
				t.Errorf("worst-case block did not round-trip: %+v vs %+v", back.Worst, c.Worst)
			}
		})
	}
}

// TestChaosDeterministic: identical configs yield identical
// certificates — the property that makes diffing against committed
// bounds meaningful.
func TestChaosDeterministic(t *testing.T) {
	cfg := ChaosConfig{N: 200, Bursts: 2, Seed: 11, InFlight: 8, TrafficBatch: 32}
	a, err := RunChaos(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same config, different certificates:\n%s\n%s", ja, jb)
	}
}

// TestCommittedBoundsLoad: the committed CI envelope parses and
// constrains the fields CI relies on.
func TestCommittedBoundsLoad(t *testing.T) {
	b, err := LoadBounds("testdata/chaos_bounds.json")
	if err != nil {
		t.Fatal(err)
	}
	if b.MaxRecoveryMoves == 0 || b.MaxRecoveryRounds == 0 || b.MaxRegisterBits == 0 {
		t.Fatalf("committed bounds leave core envelopes unset: %+v", b)
	}
}
