package cert

import (
	"encoding/json"
	"fmt"
	"os"
)

// Bounds are the committed worst-case envelopes a chaos certificate is
// diffed against in CI: a regression that makes recovery slower, trees
// worse, or registers fatter than the envelope fails the build. Zero
// values disable the corresponding check, so a bounds file only
// constrains what it names.
type Bounds struct {
	// MaxRecoveryMoves/Rounds/Windows bound the worst single-burst
	// repair cost.
	MaxRecoveryMoves  int `json:"max_recovery_moves"`
	MaxRecoveryRounds int `json:"max_recovery_rounds"`
	MaxWindows        int `json:"max_windows"`
	// MaxRegisterBits bounds the widest register ever observed at
	// silence — the space-optimality envelope.
	MaxRegisterBits int `json:"max_register_bits"`
	// MaxStretch bounds the post-recovery mean routing stretch;
	// MinDeliveryRate floors the post-recovery delivery rate.
	MaxStretch      float64 `json:"max_stretch"`
	MinDeliveryRate float64 `json:"min_delivery_rate"`
	// MaxDroppedPerBurst bounds in-flight packet loss per burst.
	MaxDroppedPerBurst int `json:"max_dropped_per_burst"`
}

// LoadBounds reads a bounds file.
func LoadBounds(path string) (Bounds, error) {
	var b Bounds
	data, err := os.ReadFile(path)
	if err != nil {
		return b, fmt.Errorf("cert: %w", err)
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("cert: bounds %s: %w", path, err)
	}
	return b, nil
}

// Check diffs a certificate against the bounds and returns one message
// per violated envelope (empty means the certificate is within bounds).
func (b Bounds) Check(c *Certificate) []string {
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }
	if !c.FinalSilent {
		fail("final configuration not silent")
	}
	if !c.FinalSpecValid {
		fail("final configuration rejected by the verifier")
	}
	if b.MaxRecoveryMoves > 0 && c.Worst.RecoveryMoves > b.MaxRecoveryMoves {
		fail("worst recovery moves %d > bound %d", c.Worst.RecoveryMoves, b.MaxRecoveryMoves)
	}
	if b.MaxRecoveryRounds > 0 && c.Worst.RecoveryRounds > b.MaxRecoveryRounds {
		fail("worst recovery rounds %d > bound %d", c.Worst.RecoveryRounds, b.MaxRecoveryRounds)
	}
	if b.MaxWindows > 0 && c.Worst.Windows > b.MaxWindows {
		fail("worst windows %d > bound %d", c.Worst.Windows, b.MaxWindows)
	}
	if b.MaxRegisterBits > 0 && c.Worst.RegisterBits > b.MaxRegisterBits {
		fail("worst register width %d bits > bound %d", c.Worst.RegisterBits, b.MaxRegisterBits)
	}
	if b.MaxStretch > 0 && c.Worst.Stretch > b.MaxStretch {
		fail("worst post-recovery stretch %.3f > bound %.3f", c.Worst.Stretch, b.MaxStretch)
	}
	if b.MinDeliveryRate > 0 && c.Worst.MinDelivery < b.MinDeliveryRate {
		fail("post-recovery delivery rate %.4f < bound %.4f", c.Worst.MinDelivery, b.MinDeliveryRate)
	}
	if b.MaxDroppedPerBurst > 0 && c.Worst.Dropped > b.MaxDroppedPerBurst {
		fail("worst in-flight drops %d > bound %d", c.Worst.Dropped, b.MaxDroppedPerBurst)
	}
	return v
}
