package cert

import (
	"fmt"
	"math/rand"

	"silentspan/internal/bfs"
	"silentspan/internal/core"
	"silentspan/internal/graph"
	"silentspan/internal/mdst"
	"silentspan/internal/mst"
	"silentspan/internal/runtime"
	"silentspan/internal/spanning"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

// RunStats is the cost of one certified run.
type RunStats struct {
	Moves        int
	Rounds       int
	RegisterBits int
}

// DirectAlgorithm returns the always-on runtime algorithm for a, or nil
// for the engine-driven tasks (MST, MDST).
func DirectAlgorithm(a Algo) runtime.Algorithm {
	switch a {
	case AlgoSpanning:
		return spanning.Algorithm{}
	case AlgoSwitching:
		return switching.Algorithm{}
	case AlgoBFS:
		return bfs.Algorithm{}
	}
	return nil
}

// certifyDirect drives net (whose registers already hold the initial
// configuration under test) to silence under sched and checks the full
// claim set: convergence, silence stability, closure (no node
// re-enabled by a followup daemon), the algorithm's spec on the
// stabilized tree, and the register-width bound. net is reused across
// calls; move/round accounting is relative to its current counters.
func certifyDirect(a Algo, g *graph.Graph, net *runtime.Network, sched runtime.Scheduler, maxMoves int) (RunStats, error) {
	moves0, rounds0 := net.Moves(), net.Rounds()
	res, err := net.Run(sched, moves0+maxMoves)
	if err != nil {
		return RunStats{}, fmt.Errorf("run: %w", err)
	}
	stats := RunStats{Moves: res.Moves - moves0, Rounds: res.Rounds - rounds0}
	if !res.Silent {
		return stats, fmt.Errorf("no silence within %d moves", maxMoves)
	}
	if err := runtime.CheckSilentStable(net); err != nil {
		return stats, fmt.Errorf("silence not stable: %w", err)
	}
	// Closure: a silent configuration must stay silent under any further
	// daemon — probe with the synchronous one (a move here means some
	// node was re-enabled with no fault injected).
	before := net.Moves()
	if _, err := net.Run(runtime.Synchronous(), before+8); err != nil {
		return stats, fmt.Errorf("closure probe: %w", err)
	}
	if net.Moves() != before {
		return stats, fmt.Errorf("closure violated: %d moves after silence", net.Moves()-before)
	}
	if err := checkDirectSpec(a, g, net); err != nil {
		return stats, fmt.Errorf("spec: %w", err)
	}
	stats.RegisterBits = net.MaxRegisterBits()
	if bound := RegisterBitsBound(a, g); stats.RegisterBits > bound {
		return stats, fmt.Errorf("register width %d bits exceeds bound %d", stats.RegisterBits, bound)
	}
	return stats, nil
}

// checkDirectSpec verifies the stabilized configuration of an always-on
// algorithm against its task specification.
func checkDirectSpec(a Algo, g *graph.Graph, net *runtime.Network) error {
	switch a {
	case AlgoSpanning:
		return checkSpanningSpec(g, net)
	case AlgoSwitching:
		return checkSwitchingSpec(g, net, false)
	case AlgoBFS:
		return checkSwitchingSpec(g, net, true)
	}
	return fmt.Errorf("no direct spec for %v", a)
}

// checkSpanningSpec: the substrate must stabilize to the BFS spanning
// tree rooted at the minimum identity, with exact distances.
func checkSpanningSpec(g *graph.Graph, net *runtime.Network) error {
	t, err := spanning.ExtractTree(net)
	if err != nil {
		return err
	}
	root := g.MinID()
	if t.Root() != root {
		return fmt.Errorf("root %d, want minimum identity %d", t.Root(), root)
	}
	dist, err := g.BFSDistances(root)
	if err != nil {
		return err
	}
	for _, v := range g.Nodes() {
		s, ok := net.State(v).(spanning.State)
		if !ok {
			return fmt.Errorf("node %d holds foreign state", v)
		}
		if s.Root != root {
			return fmt.Errorf("node %d claims root %d, want %d", v, s.Root, root)
		}
		if s.Dist != dist[v] {
			return fmt.Errorf("node %d claims distance %d, want %d", v, s.Dist, dist[v])
		}
		if d := t.Depth(v); d != dist[v] {
			return fmt.Errorf("node %d has tree depth %d, want BFS distance %d", v, d, dist[v])
		}
	}
	return nil
}

// checkSwitchingSpec: the parent pointers form a spanning tree rooted
// at the minimum identity, every control field is idle, the malleable
// labels (d, s) are present and exact, and the Lemma 4.1 verifier
// accepts. With wantBFS (the PLS-guided BFS algorithm) the tree must
// additionally be a BFS tree: depths equal graph distances.
func checkSwitchingSpec(g *graph.Graph, net *runtime.Network, wantBFS bool) error {
	t, err := switching.ExtractTree(net, switching.RegOf)
	if err != nil {
		return err
	}
	if t.Root() != g.MinID() {
		return fmt.Errorf("root %d, want minimum identity %d", t.Root(), g.MinID())
	}
	a, err := switching.ToAssignment(net, switching.RegOf)
	if err != nil {
		return err
	}
	if err := a.Verify(g); err != nil {
		return fmt.Errorf("verifier rejects silent configuration: %w", err)
	}
	depths := t.Depths()
	sizes := t.SubtreeSizes()
	for _, v := range g.Nodes() {
		s, ok := switching.RegOf(net.State(v))
		if !ok {
			return fmt.Errorf("node %d holds foreign state", v)
		}
		if !s.Idle() {
			return fmt.Errorf("node %d silent but not idle: %v", v, s)
		}
		if !s.HasD || s.D != depths[v] {
			return fmt.Errorf("node %d distance label %v/%d, want %d", v, s.HasD, s.D, depths[v])
		}
		if !s.HasS || s.S != sizes[v] {
			return fmt.Errorf("node %d size label %v/%d, want %d", v, s.HasS, s.S, sizes[v])
		}
	}
	if wantBFS {
		if phi, err := (bfs.Task{}).Value(g, t); err != nil {
			return err
		} else if phi != 0 {
			return fmt.Errorf("BFS potential φ = %d after silence, want 0", phi)
		}
	}
	return nil
}

// certifyEngine runs the PLS-guided distributed engine for MST or MDST
// under the given daemon from an arbitrary initial configuration, with
// the loop-freedom monitor armed for every intermediate step, then
// checks the final tree's spec, the closure of the final configuration,
// and the register-width bound.
func certifyEngine(a Algo, g *graph.Graph, spec SchedulerSpec, seed int64, maxMoves int) (RunStats, error) {
	var task core.Task
	if a == AlgoMST {
		task = mst.Task{}
	} else {
		task = mdst.Task{}
	}
	t, trace, err := core.RunDistributed(g, task, core.EngineOptions{
		Scheduler:        spec.New(seed),
		Rng:              rand.New(rand.NewSource(seed)),
		MaxMovesPerPhase: maxMoves,
		Monitor:          true,
	})
	stats := RunStats{Moves: trace.Moves, Rounds: trace.Rounds, RegisterBits: trace.MaxRegisterBits}
	if err != nil {
		return stats, fmt.Errorf("engine: %w", err)
	}
	if err := checkTreeSpec(a, g, t); err != nil {
		return stats, fmt.Errorf("spec: %w", err)
	}
	// Closure: the legitimate configuration for the final tree must be
	// silent for the switching protocol (nothing re-enables).
	net, err := runtime.NewNetwork(g, switching.Algorithm{})
	if err != nil {
		return stats, err
	}
	if err := switching.InitFromTree(net, t); err != nil {
		return stats, err
	}
	if !net.Silent() {
		return stats, fmt.Errorf("closure violated: legitimate configuration for final tree not silent")
	}
	if bound := RegisterBitsBound(a, g); stats.RegisterBits > bound {
		return stats, fmt.Errorf("register width %d bits exceeds bound %d", stats.RegisterBits, bound)
	}
	return stats, nil
}

// checkTreeSpec verifies the constrained-tree property of the final
// tree: exact minimality for MST (against Kruskal), the FR-tree
// property for MDST — plus, when the instance is small enough for the
// brute-force ground truth, the OPT+1 degree guarantee.
func checkTreeSpec(a Algo, g *graph.Graph, t *trees.Tree) error {
	switch a {
	case AlgoMST:
		ok, err := mst.IsMST(t, g)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("final tree is not a minimum spanning tree")
		}
	case AlgoMDST:
		fr, err := mdst.IsFRTree(g, t)
		if err != nil {
			return err
		}
		if !fr {
			return fmt.Errorf("final tree is not an FR-tree")
		}
		if opt, err := mdst.OptimalDegree(g); err == nil {
			if t.MaxDegree() > opt+1 {
				return fmt.Errorf("degree %d exceeds OPT+1 = %d", t.MaxDegree(), opt+1)
			}
		}
	default:
		return fmt.Errorf("no tree spec for %v", a)
	}
	return nil
}
