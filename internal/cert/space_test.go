package cert

import (
	"math/rand"
	"testing"

	"silentspan/internal/bfs"
	"silentspan/internal/graph"
	"silentspan/internal/mdst"
	"silentspan/internal/mst"
	"silentspan/internal/runtime"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

// TestRegisterWidthStaysLogarithmic is the space-optimality regression:
// across random graphs of n ∈ {10², 10³, 10⁴}, the widest register of a
// stabilized configuration must stay within the per-algorithm paper
// bound for every substrate — and that bound is itself pinned to
// O(log n) (8·⌈log₂ n⌉ + 8), so a linear-width regression in any State
// encoding cannot hide behind a quietly inflated bound.
//
// The BFS substrate stabilizes the always-on rule system from an
// arbitrary configuration; MST and MDST measure the silent
// configuration the engines stabilize to (reference tree loaded into
// the switching protocol — the identical registers, reachable at 10⁴
// scale without the full improvement loop).
func TestRegisterWidthStaysLogarithmic(t *testing.T) {
	sizes := []int{100, 1_000, 10_000}
	if testing.Short() {
		sizes = []int{100, 1_000}
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(n)))
		g := graph.RandomConnected(n, 3/float64(n), rng)
		logBound := 8*runtime.BitsForValue(n) + 8

		nets := map[string]*runtime.Network{}

		// BFS: full stabilization from an arbitrary configuration.
		bnet, err := runtime.NewNetwork(g, bfs.Algorithm{})
		if err != nil {
			t.Fatal(err)
		}
		bnet.InitArbitrary(rng)
		res, err := bnet.Run(runtime.RandomSubset(rng), 50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Silent {
			t.Fatalf("n=%d: bfs substrate not silent after %d moves", n, res.Moves)
		}
		nets["bfs"] = bnet

		// MST / MDST: the engines' silent target configurations.
		for _, sub := range []struct {
			name  string
			build func() (*trees.Tree, error)
		}{
			{"mst", func() (*trees.Tree, error) { return mst.Kruskal(g, g.MinID()) }},
			{"mdst", func() (*trees.Tree, error) { return mdst.GreedyLowDegreeTree(g, g.MinID()) }},
		} {
			tree, err := sub.build()
			if err != nil {
				t.Fatal(err)
			}
			net, err := runtime.NewNetwork(g, switching.Algorithm{})
			if err != nil {
				t.Fatal(err)
			}
			if err := switching.InitFromTree(net, tree); err != nil {
				t.Fatal(err)
			}
			if !net.Silent() {
				t.Fatalf("n=%d: %s legitimate configuration not silent", n, sub.name)
			}
			nets[sub.name] = net
		}

		for name, net := range nets {
			algo := AlgoSwitching
			bits := net.MaxRegisterBits()
			bound := RegisterBitsBound(algo, g)
			if bits > bound {
				t.Errorf("n=%d %s: %d register bits exceed paper bound %d", n, name, bits, bound)
			}
			if bound > logBound {
				t.Errorf("n=%d %s: paper bound %d exceeds O(log n) pin %d — bound inflated?",
					n, name, bound, logBound)
			}
			t.Logf("n=%d %s: %d bits (bound %d, log-pin %d)", n, name, bits, bound, logBound)
		}
	}
}
