package cert

import (
	"fmt"
	"math/rand"

	"silentspan/internal/bfs"
	"silentspan/internal/graph"
	"silentspan/internal/mdst"
	"silentspan/internal/mst"
	"silentspan/internal/routing"
	"silentspan/internal/runtime"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

// ChaosConfig parameterizes one chaos campaign. Zero values take the
// documented defaults.
type ChaosConfig struct {
	// N and EdgeProb shape the RandomConnected instance
	// (defaults 10000 and 3/n).
	N        int     `json:"n"`
	EdgeProb float64 `json:"edge_prob"`
	// Substrate: bfs | mst | mdst (default bfs). The BFS substrate
	// stabilizes the always-on rule system from an arbitrary start;
	// MST/MDST load a reference tree (Kruskal / greedy low-degree) into
	// the switching protocol — the silent configuration the distributed
	// engines stabilize to, reachable at campaign scale.
	Substrate string `json:"substrate"`
	// Scheduler names the daemon from the registry driving every
	// repair (default random-subset; greedy-stretch is the hostile
	// choice).
	Scheduler string `json:"scheduler"`
	// Bursts is the number of fault bursts (default 5).
	Bursts int `json:"bursts"`
	// CorruptPerBurst registers are overwritten with arbitrary states,
	// WipesPerBurst registers are erased outright, and
	// ReweighsPerBurst edges get fresh random weights, per burst
	// (defaults 8, 2, 4).
	CorruptPerBurst  int `json:"corrupt_per_burst"`
	WipesPerBurst    int `json:"wipes_per_burst"`
	ReweighsPerBurst int `json:"reweighs_per_burst"`
	// InFlight packets are launched right before each burst and keep
	// flying over the decaying labeling during repair (default 64).
	InFlight int `json:"in_flight"`
	// MovesPerWindow / StepsPerWindow / MaxWindows shape the
	// repair-vs-routing interleaving (defaults 200, 2, 100000).
	MovesPerWindow int `json:"moves_per_window"`
	StepsPerWindow int `json:"steps_per_window"`
	MaxWindows     int `json:"max_windows"`
	// TrafficBatch sizes the post-recovery stretch measurement
	// (default 256).
	TrafficBatch int `json:"traffic_batch"`
	// StabilizeMoves caps the initial stabilization and each burst's
	// recovery (default 20,000,000).
	StabilizeMoves int `json:"stabilize_moves"`
	// Seed drives all randomness.
	Seed int64 `json:"seed"`
}

func (c *ChaosConfig) fill() {
	if c.N == 0 {
		c.N = 10_000
	}
	if c.EdgeProb == 0 {
		c.EdgeProb = 3 / float64(c.N)
	}
	if c.Substrate == "" {
		c.Substrate = "bfs"
	}
	if c.Scheduler == "" {
		c.Scheduler = "random-subset"
	}
	if c.Bursts == 0 {
		c.Bursts = 5
	}
	if c.CorruptPerBurst == 0 {
		c.CorruptPerBurst = 8
	}
	if c.WipesPerBurst == 0 {
		c.WipesPerBurst = 2
	}
	if c.ReweighsPerBurst == 0 {
		c.ReweighsPerBurst = 4
	}
	if c.InFlight == 0 {
		c.InFlight = 64
	}
	if c.MovesPerWindow == 0 {
		c.MovesPerWindow = 200
	}
	if c.StepsPerWindow == 0 {
		c.StepsPerWindow = 2
	}
	if c.MaxWindows == 0 {
		c.MaxWindows = 100_000
	}
	if c.TrafficBatch == 0 {
		c.TrafficBatch = 256
	}
	if c.StabilizeMoves == 0 {
		c.StabilizeMoves = 20_000_000
	}
}

// BurstRecord is the accounting of one fault burst and its recovery.
type BurstRecord struct {
	Burst          int     `json:"burst"`
	Corrupted      int     `json:"corrupted"`
	Wiped          int     `json:"wiped"`
	Reweighed      int     `json:"reweighed"`
	RecoveryMoves  int     `json:"recovery_moves"`
	RecoveryRounds int     `json:"recovery_rounds"`
	Windows        int     `json:"windows"`
	TopologyWrites int     `json:"topology_writes"`
	Delivered      int     `json:"delivered"`
	DuringRepair   int     `json:"during_repair"`
	Looped         int     `json:"looped"`
	Dropped        int     `json:"dropped"`
	StallWindows   int     `json:"stall_windows"`
	RegisterBits   int     `json:"register_bits"`
	PostStretch    float64 `json:"post_stretch"`
	PostDelivery   float64 `json:"post_delivery"`
	TreeHeight     int     `json:"tree_height"`
	TreeMaxDegree  int     `json:"tree_max_degree"`
}

// ChaosWorst aggregates the observed worst cases over all bursts — the
// values CI diffs against committed bounds.
type ChaosWorst struct {
	RecoveryMoves  int     `json:"recovery_moves"`
	RecoveryRounds int     `json:"recovery_rounds"`
	Windows        int     `json:"windows"`
	RegisterBits   int     `json:"register_bits"`
	Stretch        float64 `json:"stretch"`
	Dropped        int     `json:"dropped"`
	MinDelivery    float64 `json:"min_delivery"`
}

// Certificate is the machine-readable outcome of one chaos campaign.
type Certificate struct {
	Tool           string        `json:"tool"`
	Config         ChaosConfig   `json:"config"`
	N              int           `json:"n"`
	M              int           `json:"m"`
	Algorithm      string        `json:"algorithm"`
	InitialMoves   int           `json:"initial_moves"`
	InitialRounds  int           `json:"initial_rounds"`
	RegisterBound  int           `json:"register_bound"`
	Bursts         []BurstRecord `json:"bursts"`
	Worst          ChaosWorst    `json:"worst"`
	FinalSilent    bool          `json:"final_silent"`
	FinalSpecValid bool          `json:"final_spec_valid"`
}

// RunChaos executes one campaign: bring up the substrate, then repeat
// fault bursts — register corruption, register wipes, edge-weight
// churn — each with a cohort of packets already in flight, interleaving
// repair windows under the configured daemon with routing windows over
// the decaying labeling, until silence returns. Worst cases across all
// bursts are distilled into the certificate.
func RunChaos(cfg ChaosConfig, logf func(format string, args ...any)) (*Certificate, error) {
	cfg.fill()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	schedSpec, err := SchedulerByName(cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	sched := schedSpec.New(cfg.Seed + 1)

	g := graph.RandomConnected(cfg.N, cfg.EdgeProb, rng)
	net, tree, err := bringUpSubstrate(g, cfg.Substrate, sched, cfg.StabilizeMoves, rng)
	if err != nil {
		return nil, err
	}
	c := &Certificate{
		Tool: "sscert", Config: cfg, N: g.N(), M: g.M(),
		Algorithm:     net.Algorithm().Name(),
		InitialMoves:  net.Moves(),
		InitialRounds: net.Rounds(),
		RegisterBound: RegisterBitsBound(AlgoSwitching, g),
	}
	c.Worst.MinDelivery = 1
	logf("substrate %s up on n=%d m=%d (%d moves)", cfg.Substrate, g.N(), g.M(), net.Moves())

	lab := routing.Label(tree)
	router := routing.NewRouter(g, lab, routing.Options{})
	nodes := g.Nodes()
	edges := g.Edges()

	dirty := false
	topoWrites := 0
	net.AddStateListener(func(v graph.NodeID, old, new runtime.State) {
		dirty = true
		topoWrites++
	})

	var parentBuf []graph.NodeID
	refresh := func() {
		if dirty {
			parentBuf = routing.LiveParents(net, parentBuf)
			router.SetLabeling(routing.LiveLabeling(g, parentBuf))
			dirty = false
		}
	}

	maxWeight := int64(cfg.N) * int64(cfg.N-1) / 2 * 1000
	for b := 0; b < cfg.Bursts; b++ {
		rec := BurstRecord{Burst: b}
		flight := routing.NewFlight(routing.UniformPairs(nodes, cfg.InFlight, rng))

		// The burst: corruption, wipes, weight churn.
		rec.Corrupted = len(runtime.Corrupt(net, cfg.CorruptPerBurst, rng))
		for i := 0; i < cfg.WipesPerBurst; i++ {
			net.SetState(nodes[rng.Intn(len(nodes))], nil)
			rec.Wiped++
		}
		for i := 0; i < cfg.ReweighsPerBurst; i++ {
			e := edges[rng.Intn(len(edges))]
			if err := net.PerturbEdgeWeight(e.U, e.V, graph.Weight(rng.Int63n(maxWeight)+1)); err != nil {
				return c, err
			}
			rec.Reweighed++
		}

		// Recovery: repair windows interleaved with routing windows.
		movesBefore, roundsBefore, writesBefore := net.Moves(), net.Rounds(), topoWrites
		dirty = true
		refresh()
		for w := 0; w < cfg.MaxWindows && !net.Silent(); w++ {
			rec.Windows++
			if _, err := net.Run(sched, net.Moves()+cfg.MovesPerWindow); err != nil {
				return c, fmt.Errorf("cert: burst %d window %d: %w", b, w, err)
			}
			refresh()
			flight.Advance(router, cfg.StepsPerWindow)
		}
		rec.RecoveryMoves = net.Moves() - movesBefore
		rec.RecoveryRounds = net.Rounds() - roundsBefore
		rec.TopologyWrites = topoWrites - writesBefore
		if !net.Silent() {
			return c, fmt.Errorf("cert: burst %d did not re-stabilize within %d windows", b, cfg.MaxWindows)
		}
		if err := runtime.CheckSilentStable(net); err != nil {
			return c, fmt.Errorf("cert: burst %d: %w", b, err)
		}

		// Validate the repaired tree, flush the cohort, measure service.
		tree2, err := switching.ExtractTree(net, switching.RegOf)
		if err != nil {
			return c, fmt.Errorf("cert: burst %d repaired configuration: %w", b, err)
		}
		ix := trees.NewIndex(tree2)
		rec.TreeHeight, rec.TreeMaxDegree = ix.Height(), tree2.MaxDegree()
		router.SetLabeling(routing.Label(tree2))
		flight.Flush(router)
		fs := flight.Stats()
		rec.Delivered = fs.Delivered()
		rec.DuringRepair = fs.DeliveredDuring
		rec.Looped, rec.Dropped, rec.StallWindows = fs.Looped, fs.Dropped, fs.StallWindows
		rec.RegisterBits = net.MaxRegisterBits()

		post, err := routing.Drive(router, routing.UniformPairs(nodes, cfg.TrafficBatch, rng), routing.DriveOptions{})
		if err != nil {
			return c, err
		}
		rec.PostStretch = post.MeanStretch
		rec.PostDelivery = post.DeliveryRate()

		c.Bursts = append(c.Bursts, rec)
		c.Worst.RecoveryMoves = max(c.Worst.RecoveryMoves, rec.RecoveryMoves)
		c.Worst.RecoveryRounds = max(c.Worst.RecoveryRounds, rec.RecoveryRounds)
		c.Worst.Windows = max(c.Worst.Windows, rec.Windows)
		c.Worst.RegisterBits = max(c.Worst.RegisterBits, rec.RegisterBits)
		c.Worst.Dropped = max(c.Worst.Dropped, rec.Dropped)
		if rec.PostStretch > c.Worst.Stretch {
			c.Worst.Stretch = rec.PostStretch
		}
		if rec.PostDelivery < c.Worst.MinDelivery {
			c.Worst.MinDelivery = rec.PostDelivery
		}
		logf("burst %d: %d moves %d rounds %d windows, %d/%d delivered, stretch %.3f",
			b, rec.RecoveryMoves, rec.RecoveryRounds, rec.Windows, rec.Delivered, fs.Sent, rec.PostStretch)
	}

	c.FinalSilent = net.Silent()
	if t, err := switching.ExtractTree(net, switching.RegOf); err == nil {
		if a, err2 := switching.ToAssignment(net, switching.RegOf); err2 == nil {
			c.FinalSpecValid = t.IsSpanningTreeOf(g) && a.Verify(g) == nil
		}
	}
	return c, nil
}

// bringUpSubstrate stabilizes the requested substrate at campaign
// scale: BFS runs the always-on algorithm from an arbitrary start;
// MST/MDST load a reference tree into the switching protocol.
func bringUpSubstrate(g *graph.Graph, sub string, sched runtime.Scheduler, maxMoves int, rng *rand.Rand) (*runtime.Network, *trees.Tree, error) {
	switch sub {
	case "bfs":
		net, err := runtime.NewNetwork(g, bfs.Algorithm{})
		if err != nil {
			return nil, nil, err
		}
		net.InitArbitrary(rng)
		res, err := net.Run(sched, maxMoves)
		if err != nil {
			return nil, nil, err
		}
		if !res.Silent {
			return nil, nil, fmt.Errorf("cert: bfs substrate not silent after %d moves", res.Moves)
		}
		t, err := switching.ExtractTree(net, switching.RegOf)
		if err != nil {
			return nil, nil, err
		}
		return net, t, nil
	case "mst", "mdst":
		var (
			t   *trees.Tree
			err error
		)
		if sub == "mst" {
			t, err = mst.Kruskal(g, g.MinID())
		} else {
			t, err = mdst.GreedyLowDegreeTree(g, g.MinID())
		}
		if err != nil {
			return nil, nil, err
		}
		net, err := runtime.NewNetwork(g, switching.Algorithm{})
		if err != nil {
			return nil, nil, err
		}
		if err := switching.InitFromTree(net, t); err != nil {
			return nil, nil, err
		}
		return net, t, nil
	}
	return nil, nil, fmt.Errorf("cert: unknown substrate %q", sub)
}
