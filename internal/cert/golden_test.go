package cert

// Golden-trace regression wall: for every algorithm × a deterministic
// scheduler trio, the exact execution trace — every scheduler choice,
// every register write, every churn op, every phase summary — on a
// fixed seeded graph under a fixed churn schedule is committed to
// testdata/golden/. Any engine refactor that silently changes
// semantics (activation order, round accounting, sanitize behavior,
// slot recycling) fails loudly as a trace diff instead of passing on
// weakened assertions. Regenerate with:
//
//	go test ./internal/cert -run Golden -update
//
// and review the diff like any other semantic change.

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// goldenSchedulers is the deterministic trio the traces pin: the two
// scheduler extremes plus the hostile unfair daemon.
func goldenSchedulers() []SchedulerSpec {
	var out []SchedulerSpec
	for _, s := range Schedulers() {
		switch s.Name {
		case "central", "synchronous", "adversarial-unfair":
			out = append(out, s)
		}
	}
	return out
}

// traceScheduler logs every choice of the wrapped daemon.
type traceScheduler struct {
	inner runtime.Scheduler
	w     *strings.Builder
	net   *runtime.Network
}

func (t *traceScheduler) BindNetwork(net *runtime.Network) {
	t.net = net
	if na, ok := t.inner.(runtime.NetworkAware); ok {
		na.BindNetwork(net)
	}
}

func (t *traceScheduler) Choose(enabled *runtime.EnabledSet, buf []graph.NodeID) []graph.NodeID {
	out := t.inner.Choose(enabled, buf)
	fmt.Fprintf(t.w, "choose %v\n", out)
	return out
}

func goldenTrace(t *testing.T, a Algo, spec SchedulerSpec) string {
	t.Helper()
	const seed = 42
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(8, 0.3, rng)
	var w strings.Builder
	fmt.Fprintf(&w, "algorithm %s scheduler %s graph n=%d m=%d\n", a, spec.Name, g.N(), g.M())

	net, err := churnSubstrate(a, g, spec.New(seed), 200_000, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Nodes() {
		fmt.Fprintf(&w, "init %d = %s\n", v, net.State(v))
	}
	net.AddStateListener(func(v graph.NodeID, old, new runtime.State) {
		if new == nil {
			fmt.Fprintf(&w, "clear %d\n", v)
			return
		}
		fmt.Fprintf(&w, "write %d <- %s\n", v, new)
	})

	ops := GenerateChurnSchedule(g, 6, seed+2)
	crng := rand.New(rand.NewSource(seed + 3))
	sched := &traceScheduler{inner: spec.New(seed + 4), w: &w}
	for oi, op := range ops {
		fmt.Fprintf(&w, "-- op %d: %s\n", oi, op)
		if _, err := ApplyChurnOp(net, op, crng); err != nil {
			t.Fatalf("op %d (%s): %v", oi, op, err)
		}
		res, err := net.Run(sched, net.Moves()+100_000)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&w, "-- silent=%v moves=%d rounds=%d bits=%d\n",
			res.Silent, res.Moves, res.Rounds, net.MaxRegisterBits())
	}
	for _, v := range g.Nodes() {
		fmt.Fprintf(&w, "final %d = %s\n", v, net.State(v))
	}
	return w.String()
}

func TestGoldenChurnTraces(t *testing.T) {
	for _, a := range AllAlgos() {
		for _, spec := range goldenSchedulers() {
			name := fmt.Sprintf("%s_%s", a, spec.Name)
			t.Run(name, func(t *testing.T) {
				got := goldenTrace(t, a, spec)
				path := filepath.Join("testdata", "golden", name+".trace")
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden trace (regenerate with -update): %v", err)
				}
				if got != string(want) {
					t.Fatalf("trace diverges from %s.\nThis means engine semantics changed. If intended, regenerate with -update and review the diff.\n%s",
						path, firstDiff(got, string(want)))
				}
			})
		}
	}
}

// firstDiff renders the first differing line with context.
func firstDiff(got, want string) string {
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		var g, w string
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			lo := i - 3
			if lo < 0 {
				lo = 0
			}
			hi := i + 1
			if hi > len(gl) {
				hi = len(gl)
			}
			return fmt.Sprintf("line %d:\n  got:  %q\n  want: %q\ncontext:\n  %s",
				i+1, g, w, strings.Join(gl[lo:hi], "\n  "))
		}
	}
	return "traces equal-length prefix; lengths differ"
}
