package cert

import (
	"fmt"
	"math/bits"

	"silentspan/internal/graph"
)

// NamedGraph is one model-checking instance: a graph plus the name it
// appears under in reports and counterexamples.
type NamedGraph struct {
	Name string
	G    *graph.Graph
}

// EnumerateConnected returns one representative of every isomorphism
// class of connected graphs on exactly n labeled nodes (1..n), with
// pairwise distinct edge weights assigned in canonical edge order. The
// counts are the classical sequence 1, 1, 2, 6, 21, 112 for n = 1..6
// (OEIS A001349) — small enough that the model checker genuinely
// visits *every* topology the paper's claims must hold on.
//
// Representatives are found by brute force: each edge subset of K_n is
// mapped to its canonical form (the minimum adjacency bitmask over all
// n! vertex relabelings) and kept iff it equals its own canonical form.
// n ≤ 7 is feasible; the harness uses n ≤ 6.
func EnumerateConnected(n int) []NamedGraph {
	if n < 1 {
		return nil
	}
	if n == 1 {
		g := graph.New()
		g.AddNode(1)
		return []NamedGraph{{Name: "n1#0", G: g}}
	}
	// Edge index space of K_n: pairs (i, j), 0 <= i < j < n.
	type pair struct{ i, j int }
	var pairs []pair
	edgeIdx := make([][]int, n)
	for i := range edgeIdx {
		edgeIdx[i] = make([]int, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edgeIdx[i][j] = len(pairs)
			edgeIdx[j][i] = len(pairs)
			pairs = append(pairs, pair{i, j})
		}
	}
	m := len(pairs)

	// Precompute, for every permutation p of the vertices, the induced
	// permutation of edge indices.
	var perms [][]int
	vperm := make([]int, n)
	for i := range vperm {
		vperm[i] = i
	}
	var buildPerms func(k int)
	buildPerms = func(k int) {
		if k == n {
			ep := make([]int, m)
			for e, pr := range pairs {
				ep[e] = edgeIdx[vperm[pr.i]][vperm[pr.j]]
			}
			perms = append(perms, ep)
			return
		}
		for i := k; i < n; i++ {
			vperm[k], vperm[i] = vperm[i], vperm[k]
			buildPerms(k + 1)
			vperm[k], vperm[i] = vperm[i], vperm[k]
		}
	}
	buildPerms(0)

	connected := func(mask uint32) bool {
		// Union-find over the n vertices restricted to mask's edges.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = i
		}
		var find func(x int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		comps := n
		for e := 0; e < m; e++ {
			if mask>>uint(e)&1 == 0 {
				continue
			}
			a, b := find(pairs[e].i), find(pairs[e].j)
			if a != b {
				parent[a] = b
				comps--
			}
		}
		return comps == 1
	}

	canonical := func(mask uint32) uint32 {
		min := mask
		for _, ep := range perms {
			var remapped uint32
			rest := mask
			for rest != 0 {
				e := bits.TrailingZeros32(rest)
				rest &= rest - 1
				remapped |= 1 << uint(ep[e])
			}
			if remapped < min {
				min = remapped
			}
		}
		return min
	}

	var out []NamedGraph
	for mask := uint32(0); mask < 1<<uint(m); mask++ {
		if !connected(mask) {
			continue
		}
		if canonical(mask) != mask {
			continue
		}
		g := graph.New()
		for i := 1; i <= n; i++ {
			g.AddNode(graph.NodeID(i))
		}
		w := graph.Weight(1)
		for e := 0; e < m; e++ {
			if mask>>uint(e)&1 == 1 {
				g.MustAddEdge(graph.NodeID(pairs[e].i+1), graph.NodeID(pairs[e].j+1), w)
				w++
			}
		}
		out = append(out, NamedGraph{Name: fmt.Sprintf("n%d#%x", n, mask), G: g})
	}
	return out
}

// PathologicalFamilies returns the named worst-case families the model
// checker runs beyond the exhaustive range: paths (maximum
// stabilization distance), stars (maximum degree), lollipops and
// dumbbells (high-degree cliques behind cut paths — the MDST and
// round-stretching stress shapes). Sizes are chosen so the brute-force
// MDST ground truth (≤ 24 edges) still applies.
func PathologicalFamilies() []NamedGraph {
	return []NamedGraph{
		{Name: "path12", G: graph.Path(12)},
		{Name: "path7", G: graph.Path(7)},
		{Name: "star12", G: graph.Star(12)},
		{Name: "star8", G: graph.Star(8)},
		{Name: "lollipop4+4", G: graph.Lollipop(4, 4)},
		{Name: "lollipop5+3", G: graph.Lollipop(5, 3)},
		{Name: "dumbbell3+2", G: graph.Dumbbell(3, 2)},
		{Name: "dumbbell4+1", G: graph.Dumbbell(4, 1)},
	}
}
