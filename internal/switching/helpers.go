package switching

import (
	"fmt"

	"silentspan/internal/graph"
	"silentspan/internal/pls"
	"silentspan/internal/runtime"
	"silentspan/internal/trees"
)

// InitFromTree loads a legal configuration for the given spanning tree
// into the network: exact labels, idle controls — the silent state the
// protocol stabilizes to.
func InitFromTree(net *runtime.Network, t *trees.Tree) error {
	g := net.Graph()
	if !t.IsSpanningTreeOf(g) {
		return fmt.Errorf("switching: tree does not span the network graph")
	}
	depths := t.Depths()
	sizes := t.SubtreeSizes()
	for _, v := range g.Nodes() {
		net.SetState(v, State{
			Root:   t.Root(),
			Parent: t.Parent(v),
			HasD:   true, D: depths[v],
			HasS: true, S: sizes[v],
			Sw: SwIdle, SwTarget: trees.None, Pr: PrOff, Sub: SubOff,
		})
	}
	return nil
}

// InjectSwitch marks node v as the initiator of a local switch adopting
// neighbor target as its new parent. The network then executes the
// three-phase protocol of Section IV on its own.
func InjectSwitch(net *runtime.Network, v, target graph.NodeID, get Getter) error {
	s, ok := get(net.State(v))
	if !ok {
		return fmt.Errorf("switching: node %d has no switching register", v)
	}
	if !net.Graph().HasEdge(v, target) {
		return fmt.Errorf("switching: %d-%d is not an edge", v, target)
	}
	if s.Parent == target {
		return fmt.Errorf("switching: %d is already the parent of %d", target, v)
	}
	if s.Parent == trees.None {
		return fmt.Errorf("switching: node %d is the root; roots do not switch", v)
	}
	s.Sw, s.SwTarget = SwReq, target
	net.SetState(v, s)
	return nil
}

// ExtractTree reads the parent pointers (via get) and validates they form
// a spanning tree of the network's graph.
func ExtractTree(net *runtime.Network, get Getter) (*trees.Tree, error) {
	parent := make(map[graph.NodeID]graph.NodeID, net.Graph().N())
	for _, v := range net.Graph().Nodes() {
		s, ok := get(net.State(v))
		if !ok {
			return nil, fmt.Errorf("switching: node %d has no switching register", v)
		}
		parent[v] = s.Parent
	}
	t, err := trees.FromParentMap(parent)
	if err != nil {
		return nil, fmt.Errorf("switching: %w", err)
	}
	if !t.IsSpanningTreeOf(net.Graph()) {
		return nil, fmt.Errorf("switching: parent pointers leave the graph")
	}
	return t, nil
}

// LoopFreeMonitor returns a runtime monitor asserting the paper's
// loop-freedom claim: the parent pointers form a spanning tree after
// every single step of the protocol.
func LoopFreeMonitor(get Getter) runtime.Monitor {
	return runtime.MonitorFunc(func(net *runtime.Network) error {
		if _, err := ExtractTree(net, get); err != nil {
			return fmt.Errorf("loop-freedom violated: %w", err)
		}
		return nil
	})
}

// MalleabilityMonitor returns a runtime monitor asserting Lemma 4.1's
// malleability claim: the redundant-label verifier accepts every
// intermediate configuration of a legal switch (no node ever raises an
// alarm while the protocol runs).
func MalleabilityMonitor(get Getter) runtime.Monitor {
	return runtime.MonitorFunc(func(net *runtime.Network) error {
		a, err := ToAssignment(net, get)
		if err != nil {
			return err
		}
		if err := a.Verify(net.Graph()); err != nil {
			return fmt.Errorf("malleability violated: %w", err)
		}
		return nil
	})
}

// ToAssignment converts the network's switching registers into a
// pls.Assignment for the Lemma 4.1 verifier.
func ToAssignment(net *runtime.Network, get Getter) (pls.Assignment, error) {
	a := pls.Assignment{
		Parent: make(map[graph.NodeID]graph.NodeID, net.Graph().N()),
		Labels: make(map[graph.NodeID]pls.Label, net.Graph().N()),
	}
	for _, v := range net.Graph().Nodes() {
		s, ok := get(net.State(v))
		if !ok {
			return pls.Assignment{}, fmt.Errorf("switching: node %d has no switching register", v)
		}
		a.Parent[v] = s.Parent
		a.Labels[v] = pls.Label{
			Root: s.Root,
			HasD: s.HasD, D: s.D,
			HasS: s.HasS, S: s.S,
		}
	}
	return a, nil
}
