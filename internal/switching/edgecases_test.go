package switching

import (
	"math/rand"
	"testing"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/trees"
)

// TestSwitchOntoAncestor: the new parent w' is a strict ancestor of the
// old parent w (shortcutting upward) — both prune paths share a prefix
// and the nca restore must wait for both children.
func TestSwitchOntoAncestor(t *testing.T) {
	// Path 1-2-3-4-5 plus chord {2,5}: node 5 switches from 4 to 2.
	g := graph.New()
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 2)
	g.MustAddEdge(3, 4, 3)
	g.MustAddEdge(4, 5, 4)
	g.MustAddEdge(2, 5, 5)
	tr, err := trees.FromParentMap(map[graph.NodeID]graph.NodeID{
		1: trees.None, 2: 1, 3: 2, 4: 3, 5: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := runtime.NewNetwork(g, Algorithm{})
	if err != nil {
		t.Fatal(err)
	}
	if err := InitFromTree(net, tr); err != nil {
		t.Fatal(err)
	}
	net.AddMonitor(LoopFreeMonitor(RegOf))
	net.AddMonitor(MalleabilityMonitor(RegOf))
	if err := InjectSwitch(net, 5, 2, RegOf); err != nil {
		t.Fatal(err)
	}
	res, err := net.Run(runtime.Central(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent {
		t.Fatal("not silent")
	}
	got, err := ExtractTree(net, RegOf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Parent(5) != 2 {
		t.Errorf("parent(5) = %d, want 2", got.Parent(5))
	}
}

// TestSwitchOntoRoot: the new parent is the root itself (shortest
// possible prune path on the w' side).
func TestSwitchOntoRoot(t *testing.T) {
	g := graph.Ring(6)
	tr, err := trees.FromParentMap(map[graph.NodeID]graph.NodeID{
		1: trees.None, 2: 1, 3: 2, 4: 3, 5: 4, 6: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := runtime.NewNetwork(g, Algorithm{})
	if err != nil {
		t.Fatal(err)
	}
	if err := InitFromTree(net, tr); err != nil {
		t.Fatal(err)
	}
	net.AddMonitor(LoopFreeMonitor(RegOf))
	net.AddMonitor(MalleabilityMonitor(RegOf))
	// 6 adopts 1 across the ring-closing edge.
	if err := InjectSwitch(net, 6, 1, RegOf); err != nil {
		t.Fatal(err)
	}
	res, err := net.Run(runtime.Central(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent {
		t.Fatal("not silent")
	}
	got, err := ExtractTree(net, RegOf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Parent(6) != 1 {
		t.Errorf("parent(6) = %d, want 1", got.Parent(6))
	}
}

// TestLeafInitiator: a leaf switching (empty subtree wave: the ack is
// vacuous and the switch should be quick).
func TestLeafInitiator(t *testing.T) {
	g := graph.New()
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(1, 3, 2)
	g.MustAddEdge(2, 4, 3)
	g.MustAddEdge(3, 4, 4)
	tr, err := trees.FromParentMap(map[graph.NodeID]graph.NodeID{
		1: trees.None, 2: 1, 3: 1, 4: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := runtime.NewNetwork(g, Algorithm{})
	if err != nil {
		t.Fatal(err)
	}
	if err := InitFromTree(net, tr); err != nil {
		t.Fatal(err)
	}
	net.AddMonitor(MalleabilityMonitor(RegOf))
	if err := InjectSwitch(net, 4, 3, RegOf); err != nil {
		t.Fatal(err)
	}
	res, err := net.Run(runtime.Central(), 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent {
		t.Fatal("not silent")
	}
	got, err := ExtractTree(net, RegOf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Parent(4) != 3 {
		t.Errorf("parent(4) = %d, want 3", got.Parent(4))
	}
}

// TestSequentialSwapChain: many successive legal switches on one live
// network — the ExecuteSwap pattern of the engine — must compose with
// monitors armed throughout.
func TestSequentialSwapChain(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := graph.RandomConnected(18, 0.3, rng)
	tr, err := trees.RandomSpanningTree(g, g.MinID(), rng)
	if err != nil {
		t.Fatal(err)
	}
	net, err := runtime.NewNetwork(g, Algorithm{})
	if err != nil {
		t.Fatal(err)
	}
	if err := InitFromTree(net, tr); err != nil {
		t.Fatal(err)
	}
	net.AddMonitor(LoopFreeMonitor(RegOf))
	net.AddMonitor(MalleabilityMonitor(RegOf))
	performed := 0
	for step := 0; step < 10; step++ {
		nte := tr.NonTreeEdges(g)
		var v, target graph.NodeID
		found := false
		for _, e := range nte {
			switch tr.NCA(e.U, e.V) {
			case e.U:
				v, target, found = e.V, e.U, true
			case e.V:
				v, target, found = e.U, e.V, true
			default:
				if tr.Parent(e.U) != trees.None {
					v, target, found = e.U, e.V, true
				}
			}
			if found {
				break
			}
		}
		if !found {
			break
		}
		if err := InjectSwitch(net, v, target, RegOf); err != nil {
			t.Fatal(err)
		}
		res, err := net.Run(runtime.Central(), 500000)
		if err != nil {
			t.Fatalf("swap %d: %v", step, err)
		}
		if !res.Silent {
			t.Fatalf("swap %d: not silent", step)
		}
		tr, err = ExtractTree(net, RegOf)
		if err != nil {
			t.Fatal(err)
		}
		performed++
	}
	if performed < 3 {
		t.Fatalf("only %d swaps performed; chain test too weak", performed)
	}
	a, err := ToAssignment(net, RegOf)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(g); err != nil {
		t.Fatalf("final configuration rejected: %v", err)
	}
}

// TestInvalidRequestRecovers: a request whose target is inside the
// initiator's subtree must abort cleanly and restore full labels (no
// deadlock, no permanent pruning).
func TestInvalidRequestRecovers(t *testing.T) {
	// Star-with-path: 1 is root, 2 under 1, 3 under 2; edge {2,3} is a
	// tree edge, so use 4: 1-2-4 path and chord {2,4}... Build: 1-2,
	// 2-3, 3-4, chord {2,4}: target 4 is a descendant of initiator 2.
	g := graph.New()
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 2)
	g.MustAddEdge(3, 4, 3)
	g.MustAddEdge(2, 4, 4)
	tr, err := trees.FromParentMap(map[graph.NodeID]graph.NodeID{
		1: trees.None, 2: 1, 3: 2, 4: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := runtime.NewNetwork(g, Algorithm{})
	if err != nil {
		t.Fatal(err)
	}
	if err := InitFromTree(net, tr); err != nil {
		t.Fatal(err)
	}
	net.AddMonitor(LoopFreeMonitor(RegOf))
	if err := InjectSwitch(net, 2, 4, RegOf); err != nil {
		t.Fatal(err)
	}
	res, err := net.Run(runtime.Central(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent {
		t.Fatal("invalid request did not quiesce")
	}
	got, err := ExtractTree(net, RegOf)
	if err != nil {
		t.Fatal(err)
	}
	// The tree must be unchanged and fully labeled.
	if got.Parent(2) != 1 {
		t.Errorf("invalid switch was executed: parent(2) = %d", got.Parent(2))
	}
	a, err := ToAssignment(net, RegOf)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(g); err != nil {
		t.Fatalf("labels not restored after abort: %v", err)
	}
}
