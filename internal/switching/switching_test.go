package switching

import (
	"math/rand"
	"testing"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/trees"
)

func newNet(t *testing.T, g *graph.Graph) *runtime.Network {
	t.Helper()
	net, err := runtime.NewNetwork(g, Algorithm{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func runToSilence(t *testing.T, net *runtime.Network, sched runtime.Scheduler) runtime.Result {
	t.Helper()
	res, err := net.Run(sched, 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent {
		t.Fatalf("not silent after %d moves / %d rounds", res.Moves, res.Rounds)
	}
	return res
}

// checkLegal verifies the configuration is a fully labeled spanning tree
// accepted by the Lemma 4.1 verifier with idle controls.
func checkLegal(t *testing.T, net *runtime.Network) *trees.Tree {
	t.Helper()
	tr, err := ExtractTree(net, RegOf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ToAssignment(net, RegOf)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(net.Graph()); err != nil {
		t.Fatalf("verifier rejects silent configuration: %v", err)
	}
	for _, v := range net.Graph().Nodes() {
		s := net.State(v).(State)
		if !s.Idle() {
			t.Fatalf("node %d has active controls at silence: %v", v, s)
		}
		if !s.HasD || !s.HasS {
			t.Fatalf("node %d has pruned labels at silence: %v", v, s)
		}
	}
	return tr
}

func TestStabilizesFromArbitraryStates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := map[string]*graph.Graph{
		"path":     graph.Path(10),
		"ring":     graph.Ring(9),
		"complete": graph.Complete(6),
		"grid":     graph.Grid(3, 4),
		"random":   graph.RandomConnected(20, 0.2, rng),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				net := newNet(t, g)
				net.InitArbitrary(rand.New(rand.NewSource(seed)))
				runToSilence(t, net, runtime.Central())
				tr := checkLegal(t, net)
				if tr.Root() != g.MinID() {
					t.Errorf("seed %d: root %d, want %d", seed, tr.Root(), g.MinID())
				}
			}
		})
	}
}

func TestStabilizesUnderAdversarialScheduler(t *testing.T) {
	g := graph.RandomConnected(15, 0.25, rand.New(rand.NewSource(2)))
	for seed := int64(0); seed < 10; seed++ {
		net := newNet(t, g)
		net.InitArbitrary(rand.New(rand.NewSource(100 + seed)))
		runToSilence(t, net, runtime.AdversarialUnfair())
		checkLegal(t, net)
	}
}

func TestInitFromTreeIsSilent(t *testing.T) {
	g := graph.Grid(4, 4)
	tr, err := trees.BFSTree(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	net := newNet(t, g)
	if err := InitFromTree(net, tr); err != nil {
		t.Fatal(err)
	}
	if !net.Silent() {
		t.Fatalf("legal configuration not silent; enabled: %v", net.Enabled())
	}
}

// TestSingleSwitchLoopFreeAndMalleable is experiment E1's core property:
// a legal switch executes with the spanning tree intact after every step
// and zero verifier alarms, ending silent on the new tree.
func TestSingleSwitchLoopFreeAndMalleable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		g := graph.RandomConnected(8+rng.Intn(25), 0.25, rng)
		tr, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			t.Fatal(err)
		}
		// Pick a random non-tree edge {v, target} and switch v onto it.
		// Validity (as guaranteed by the task layers driving switches):
		// the target must not be a descendant of the initiator, and the
		// initiator is never the root.
		nte := tr.NonTreeEdges(g)
		if len(nte) == 0 {
			continue
		}
		e := nte[rng.Intn(len(nte))]
		v, target := e.U, e.V
		switch tr.NCA(e.U, e.V) {
		case e.U: // U is an ancestor of V: only V may initiate.
			v, target = e.V, e.U
		case e.V: // V is an ancestor of U: only U may initiate.
			v, target = e.U, e.V
		default:
			if tr.Parent(v) == trees.None {
				v, target = e.V, e.U
			}
		}
		net := newNet(t, g)
		if err := InitFromTree(net, tr); err != nil {
			t.Fatal(err)
		}
		net.AddMonitor(LoopFreeMonitor(RegOf))
		net.AddMonitor(MalleabilityMonitor(RegOf))
		if err := InjectSwitch(net, v, target, RegOf); err != nil {
			t.Fatal(err)
		}
		runToSilence(t, net, runtime.Central())
		got := checkLegal(t, net)
		// The new tree must be exactly T + e - {v, old parent}.
		want, err := tr.Swap(graph.Edge{U: v, V: target}, graph.Edge{U: v, V: tr.Parent(v)})
		if err != nil {
			t.Fatalf("trial %d: reference swap: %v", trial, err)
		}
		if got.Parent(v) != target {
			t.Fatalf("trial %d: node %d has parent %d, want %d", trial, v, got.Parent(v), target)
		}
		for _, x := range want.Nodes() {
			if got.Parent(x) != want.Parent(x) {
				t.Fatalf("trial %d: node %d parent %d, want %d", trial, x, got.Parent(x), want.Parent(x))
			}
		}
	}
}

func TestSwitchRoundsLinear(t *testing.T) {
	// E1 shape: rounds per switch grow at most linearly with n.
	rng := rand.New(rand.NewSource(4))
	var prev int
	for _, n := range []int{8, 16, 32, 64} {
		g := graph.Ring(n)
		tr, err := trees.BFSTree(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		nte := tr.NonTreeEdges(g)
		if len(nte) != 1 {
			t.Fatal("ring BFS tree should have one non-tree edge")
		}
		e := nte[0]
		v, target := e.U, e.V
		if tr.Parent(v) == trees.None {
			v, target = e.V, e.U
		}
		net := newNet(t, g)
		if err := InitFromTree(net, tr); err != nil {
			t.Fatal(err)
		}
		if err := InjectSwitch(net, v, target, RegOf); err != nil {
			t.Fatal(err)
		}
		res := runToSilence(t, net, runtime.Synchronous())
		if prev > 0 && res.Rounds > 6*prev {
			t.Errorf("n=%d: rounds %d vs previous %d — super-linear growth", n, res.Rounds, prev)
		}
		prev = res.Rounds
		_ = rng
	}
}

func TestConcurrentSwitchesStayLoopFree(t *testing.T) {
	// Several initiators at once: the guards must serialize or safely
	// parallelize the switches; the tree invariant holds throughout.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomConnected(20, 0.3, rng)
		tr, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			t.Fatal(err)
		}
		net := newNet(t, g)
		if err := InitFromTree(net, tr); err != nil {
			t.Fatal(err)
		}
		net.AddMonitor(LoopFreeMonitor(RegOf))
		injected := 0
		for _, e := range tr.NonTreeEdges(g) {
			if injected >= 3 {
				break
			}
			v, target := e.U, e.V
			if tr.Parent(v) == trees.None {
				continue
			}
			s := net.State(v).(State)
			if s.Sw != SwIdle {
				continue
			}
			if err := InjectSwitch(net, v, target, RegOf); err != nil {
				continue
			}
			injected++
		}
		if injected == 0 {
			continue
		}
		runToSilence(t, net, runtime.RandomSubset(rng))
		checkLegal(t, net)
	}
}

func TestFaultsDuringSwitchRecover(t *testing.T) {
	// Corrupt registers mid-switch; the system must still reach a legal
	// silent configuration (self-stabilization of the protocol layer).
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(15, 0.25, rng)
		tr, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			t.Fatal(err)
		}
		nte := tr.NonTreeEdges(g)
		if len(nte) == 0 {
			continue
		}
		e := nte[rng.Intn(len(nte))]
		v, target := e.U, e.V
		if tr.Parent(v) == trees.None {
			v, target = e.V, e.U
		}
		net := newNet(t, g)
		if err := InitFromTree(net, tr); err != nil {
			t.Fatal(err)
		}
		if err := InjectSwitch(net, v, target, RegOf); err != nil {
			t.Fatal(err)
		}
		// Run a handful of moves, then corrupt.
		if _, err := net.Run(runtime.Central(), 10+rng.Intn(20)); err != nil {
			t.Fatal(err)
		}
		runtime.Corrupt(net, 1+rng.Intn(3), rng)
		runToSilence(t, net, runtime.Central())
		checkLegal(t, net)
	}
}

func TestRecoveryFromPostStabilizationFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Grid(4, 5)
	net := newNet(t, g)
	net.InitArbitrary(rng)
	runToSilence(t, net, runtime.Central())
	for trial := 0; trial < 10; trial++ {
		runtime.Corrupt(net, 1+rng.Intn(4), rng)
		runToSilence(t, net, runtime.Central())
		checkLegal(t, net)
	}
}

func TestSpaceLogarithmic(t *testing.T) {
	for _, n := range []int{16, 32, 64} {
		g := graph.RandomConnected(n, 0.15, rand.New(rand.NewSource(int64(n))))
		net := newNet(t, g)
		net.InitArbitrary(rand.New(rand.NewSource(99)))
		res := runToSilence(t, net, runtime.Central())
		bound := 6*(log2ceil(2*n)+1) + 12
		if res.MaxRegisterBits > bound {
			t.Errorf("n=%d: %d register bits, want <= %d", n, res.MaxRegisterBits, bound)
		}
	}
}

func TestInjectSwitchValidation(t *testing.T) {
	g := graph.Ring(6)
	tr, err := trees.BFSTree(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	net := newNet(t, g)
	if err := InitFromTree(net, tr); err != nil {
		t.Fatal(err)
	}
	if err := InjectSwitch(net, 2, 5, RegOf); err == nil {
		t.Error("accepted non-edge switch")
	}
	if err := InjectSwitch(net, 2, 1, RegOf); err == nil {
		t.Error("accepted switch to current parent")
	}
	if err := InjectSwitch(net, 1, 2, RegOf); err == nil {
		t.Error("accepted root as initiator")
	}
}

func log2ceil(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}
