// Package switching implements the silent loop-free edge-switching
// algorithm of Section IV of the paper: a self-stabilizing spanning tree
// carrying the malleable redundant labels (ID, d, s) of Lemma 4.1, plus a
// distributed protocol realizing T ← T + e − f one local switch at a
// time, such that
//
//   - the parent pointers form a spanning tree in every intermediate
//     configuration (loop-freedom), and
//   - the malleable verifier never raises an alarm while a legal switch
//     is in progress (malleability).
//
// A local switch moves the initiator v from its parent w to a new parent
// w' (a neighbor across a non-tree edge, or the next node along a
// fundamental cycle). Following Fig. 1(b) it proceeds in three phases:
//
//	prune:    the initiator's request is propagated to the root, which
//	          prunes sizes top-down along the root paths to w and w'
//	          (labels (d,s) → (d,⊥); top-down keeps constraint C1), while
//	          the subtree of v prunes distances ((d,s) → (⊥,s); parent
//	          first keeps constraint C2) and acknowledges bottom-up;
//	switch:   v atomically sets parent(v) = w' and d(v) = d(w') + 1; the
//	          guard "the new parent still carries its distance" certifies
//	          w' is outside v's subtree, so the structure stays a tree —
//	          even when several switches fire concurrently;
//	relabel:  sizes are restored bottom-up along both root paths
//	          (recomputed from children), distances top-down in v's
//	          subtree; all control fields return to idle, and the system
//	          is silent again.
//
// The register holds two identities, two bounded integers, two presence
// bits and three small phase fields: O(log n) bits. A full local switch
// takes O(depth) ⊆ O(n) rounds, matching Section IV.
package switching

import (
	"fmt"
	"math/rand"
	"slices"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/trees"
)

// SwPhase is the initiator's protocol phase.
type SwPhase uint8

// Initiator phases.
const (
	SwIdle SwPhase = iota + 1
	SwReq          // switch requested; prune waves running
	SwDone         // parent changed; restore waves running
)

// PrPhase is the ancestor size-prune control.
type PrPhase uint8

// Ancestor prune phases.
const (
	PrOff    PrPhase = iota + 1
	PrReq            // on a root path of a pending switch; waiting to prune
	PrPruned         // size discarded
)

// SubPhase is the subtree distance-prune control.
type SubPhase uint8

// Subtree prune phases.
const (
	SubOff   SubPhase = iota + 1
	SubPrune          // distance discarded; waiting for descendants
	SubAck            // whole subtree below is pruned and acknowledged
)

// State is the register of the switching algorithm.
type State struct {
	// Root, Parent, D, S are the malleable label of Lemma 4.1: root
	// identity, parent pointer, distance (HasD=false encodes d=⊥) and
	// subtree size (HasS=false encodes s=⊥).
	Root   graph.NodeID
	Parent graph.NodeID
	HasD   bool
	D      int
	HasS   bool
	S      int
	// Sw / SwTarget drive a switch this node initiates.
	Sw       SwPhase
	SwTarget graph.NodeID
	// Pr is the ancestor prune control; Sub the subtree prune control.
	Pr  PrPhase
	Sub SubPhase
}

// Equal implements runtime.State.
func (s State) Equal(o runtime.State) bool {
	os, ok := o.(State)
	return ok && os == s
}

// EncodedBits implements runtime.State.
func (s State) EncodedBits() int {
	b := runtime.BitsForValue(int(s.Root)) + runtime.BitsForValue(int(s.Parent)) + 2
	if s.HasD {
		b += runtime.BitsForValue(s.D)
	}
	if s.HasS {
		b += runtime.BitsForValue(s.S)
	}
	b += 2 + 2 + 2 // three phase fields
	b += runtime.BitsForValue(int(s.SwTarget))
	return b
}

// String implements runtime.State.
func (s State) String() string {
	d, sz := "⊥", "⊥"
	if s.HasD {
		d = fmt.Sprintf("%d", s.D)
	}
	if s.HasS {
		sz = fmt.Sprintf("%d", s.S)
	}
	return fmt.Sprintf("(root=%d par=%d d=%s s=%s sw=%d tgt=%d pr=%d sub=%d)",
		s.Root, s.Parent, d, sz, s.Sw, s.SwTarget, s.Pr, s.Sub)
}

// Idle reports whether all control fields are at rest.
func (s State) Idle() bool { return s.Sw == SwIdle && s.Pr == PrOff && s.Sub == SubOff }

// RegOf extracts the switching register from a runtime state. Task
// algorithms embedding State in larger registers provide their own
// accessor; the standalone algorithm uses this one.
func RegOf(s runtime.State) (State, bool) {
	if s == nil {
		return State{}, false
	}
	r, ok := s.(State)
	return r, ok
}

// Getter reads the switching register of a neighbor's runtime state.
type Getter func(runtime.State) (State, bool)

// SelfRoot is the full reset register of a node: a fresh singleton root
// with exact labels and idle controls.
func SelfRoot(id graph.NodeID) State {
	return State{
		Root: id, Parent: trees.None,
		HasD: true, D: 0,
		HasS: true, S: 1,
		Sw: SwIdle, SwTarget: trees.None, Pr: PrOff, Sub: SubOff,
	}
}

// StepReg evaluates the switching rules for one node and returns its next
// register. get extracts the switching register from a neighbor's state;
// task layers embedding State pass their own extractor so that the rules
// read through composite registers. If the returned register equals self,
// no switching rule is enabled and the task layer may evaluate its own
// improvement rules.
func StepReg(self State, v runtime.View, get Getter) State {
	// ---- Layer 0: substrate consistency (tree construction/repair).
	s := self
	peer := func(u graph.NodeID) (State, bool) {
		if u == trees.None {
			return State{}, false
		}
		j, isNbr := slices.BinarySearch(v.Neighbors, u)
		if !isNbr {
			return State{}, false
		}
		return get(v.PeerAt(j))
	}

	if next, acted := substrate(s, v, peer); acted {
		return next
	}

	// ---- Layer 1: distance-chain coherence. The D field stays
	// meaningful even while pruned (HasD=false hides it from the
	// verifier, not from the protocol): enforcing D = D_parent + 1 with
	// the n-1 cap on the raw fields erodes parent cycles made of pruned
	// nodes, which no verifier-visible rule could otherwise detect.
	if s.Parent != trees.None {
		if p, ok := peer(s.Parent); ok && s.D != p.D+1 {
			if p.D+1 > v.N-1 {
				return SelfRoot(v.ID)
			}
			s.D = p.D + 1
			return s
		}
	}

	// ---- Layer 2: control-field sanitization.
	if next, acted := sanitize(s, v, peer); acted {
		return next
	}

	// ---- Layer 2: protocol forward rules.
	if next, acted := protocol(s, v, peer); acted {
		return next
	}

	// ---- Layer 3: label maintenance (sizes, distances) when quiet.
	if next, acted := maintain(s, v, peer); acted {
		return next
	}
	return s
}

// substrate enforces tree consistency: reset on structural nonsense and
// adopt strictly smaller root identities (min-ID leader election). Any
// substrate action clears the control fields.
func substrate(s State, v runtime.View, peer func(graph.NodeID) (State, bool)) (State, bool) {
	cap := v.N - 1
	if s.Parent == trees.None {
		if s.Root != v.ID || !s.HasD || s.D != 0 {
			return SelfRoot(v.ID), true
		}
	} else {
		p, ok := peer(s.Parent)
		if !ok {
			return SelfRoot(v.ID), true
		}
		if s.Root >= v.ID || s.Root <= 0 || p.Root != s.Root {
			return SelfRoot(v.ID), true
		}
		if s.HasD && (s.D < 1 || s.D > cap) {
			return SelfRoot(v.ID), true
		}
	}
	// Adopt a strictly smaller root from any neighbor.
	bestU, best := trees.None, s.Root
	for _, u := range v.Neighbors {
		p, ok := peer(u)
		if !ok {
			continue
		}
		if p.Root < best && p.HasD && p.D+1 <= cap {
			bestU, best = u, p.Root
		}
	}
	if bestU != trees.None {
		p, _ := peer(bestU)
		return State{
			Root: best, Parent: bestU,
			HasD: true, D: p.D + 1,
			HasS: s.HasS, S: s.S,
			Sw: SwIdle, SwTarget: trees.None, Pr: PrOff, Sub: SubOff,
		}, true
	}
	return s, false
}

// seedPr reports whether node x is a prune seed: it is the old parent (w)
// or the designated new parent (w') of a neighboring initiator with a
// pending request.
func seedPr(v runtime.View, peer func(graph.NodeID) (State, bool), x graph.NodeID) bool {
	for _, u := range v.Neighbors {
		p, ok := peer(u)
		if !ok {
			continue
		}
		if p.Sw == SwReq && (p.Parent == x || p.SwTarget == x) {
			return true
		}
	}
	return false
}

// childPrSupport reports whether some tree child keeps the prune request
// alive below x.
func childPrSupport(v runtime.View, peer func(graph.NodeID) (State, bool), x graph.NodeID) bool {
	for _, u := range v.Neighbors {
		p, ok := peer(u)
		if !ok || p.Parent != x {
			continue
		}
		if p.Pr != PrOff {
			return true
		}
	}
	return false
}

// sanitize clears control fields that have lost their justification —
// the self-stabilization of the protocol layer itself after transient
// faults corrupt control fields.
func sanitize(s State, v runtime.View, peer func(graph.NodeID) (State, bool)) (State, bool) {
	// Initiator sanity.
	if s.Sw != SwIdle && s.Sw != SwReq && s.Sw != SwDone {
		s.Sw, s.SwTarget = SwIdle, trees.None
		return s, true
	}
	if s.Sw == SwIdle && s.SwTarget != trees.None {
		s.SwTarget = trees.None
		return s, true
	}
	// A root in SwDone is corruption, never a protocol state: an
	// initiator reaches SwDone by adopting its target as parent, and
	// roots do not switch. Without this reset the node parks in SwDone
	// forever (completion (h) needs a parent), silently blocking label
	// maintenance — found by the model checker on the singleton graph.
	if s.Sw == SwDone && s.Parent == trees.None {
		s.Sw, s.SwTarget = SwIdle, trees.None
		return s, true
	}
	if s.Sw == SwReq {
		t, ok := peer(s.SwTarget)
		bad := !ok || s.SwTarget == s.Parent || !s.HasD || !s.HasS ||
			s.Parent == trees.None || t.Root != s.Root ||
			// The target joined this initiator's own subtree-prune wave:
			// it is a descendant, so the requested switch would create a
			// cycle. Abort; the waves die out and the restores run.
			t.Sub != SubOff || t.Parent == v.ID
		if bad {
			s.Sw, s.SwTarget = SwIdle, trees.None
			return s, true
		}
	}
	// Pr sanity: a pruned flag without a pruned size, or phases outside
	// the enum, are garbage.
	if s.Pr != PrOff && s.Pr != PrReq && s.Pr != PrPruned {
		s.Pr = PrOff
		return s, true
	}
	if s.Pr == PrPruned && s.HasS {
		s.Pr = PrOff
		return s, true
	}
	if s.Pr == PrReq && !s.HasS {
		// The size is already gone; account for it.
		s.Pr = PrPruned
		return s, true
	}
	if s.Pr == PrReq && s.HasS {
		// A request with no remaining justification dies out.
		if !seedPr(v, peer, v.ID) && !childPrSupport(v, peer, v.ID) {
			s.Pr = PrOff
			return s, true
		}
	}
	// Sub sanity.
	if s.Sub != SubOff && s.Sub != SubPrune && s.Sub != SubAck {
		s.Sub = SubOff
		return s, true
	}
	if s.Sub != SubOff && s.HasD {
		s.Sub = SubOff
		return s, true
	}
	// A pruned size with no control context at all: restore directly
	// (covers faults that cleared Pr but left HasS=false).
	if !s.HasS && s.Pr == PrOff {
		if next, ok := restoreSize(s, v, peer); ok {
			return next, true
		}
	}
	// A pruned distance with no control context: restore directly.
	if !s.HasD && s.Sub == SubOff {
		if next, ok := restoreDist(s, v, peer); ok {
			return next, true
		}
	}
	return s, false
}

// protocol evaluates the forward rules of the three phases.
func protocol(s State, v runtime.View, peer func(graph.NodeID) (State, bool)) (State, bool) {
	// (a) Ancestor prune request joins.
	if s.Pr == PrOff && s.HasS &&
		(seedPr(v, peer, v.ID) || childPrSupport(v, peer, v.ID)) {
		s.Pr = PrReq
		return s, true
	}
	// (b) Prune size top-down (C1: parent must already be (d,⊥)).
	if s.Pr == PrReq && s.HasS {
		parentPruned := s.Parent == trees.None
		if !parentPruned {
			if p, ok := peer(s.Parent); ok && !p.HasS {
				parentPruned = true
			}
		}
		if parentPruned {
			s.HasS = false
			s.Pr = PrPruned
			return s, true
		}
	}
	// (c) Subtree prune joins (C2: parent keeps its size, which both the
	// initiator and a (⊥,s) node do).
	if s.Sub == SubOff && s.HasD && s.Parent != trees.None {
		if p, ok := peer(s.Parent); ok && (p.Sw == SwReq || p.Sub == SubPrune) {
			s.Sub = SubPrune
			s.HasD = false
			return s, true
		}
	}
	// (d) Subtree acknowledgement bottom-up.
	if s.Sub == SubPrune && allChildren(v, peer, v.ID, func(c State) bool { return c.Sub == SubAck }) {
		s.Sub = SubAck
		return s, true
	}
	// (e) The switch itself.
	if s.Sw == SwReq {
		w, okW := peer(s.Parent)
		t, okT := peer(s.SwTarget)
		if okW && okT &&
			s.HasD && s.HasS &&
			!w.HasS && !t.HasS && // both root paths pruned down to w and w'
			t.HasD && // w' still carries d ⇒ w' is outside v's subtree
			t.Root == s.Root &&
			allChildren(v, peer, v.ID, func(c State) bool { return c.Sub == SubAck }) {
			s.Parent = s.SwTarget
			s.D = t.D + 1
			s.Sw = SwDone
			return s, true
		}
	}
	// (f) Size restore bottom-up.
	if s.Pr == PrPruned && !s.HasS {
		if next, ok := restoreSize(s, v, peer); ok {
			return next, true
		}
	}
	// (g) Distance restore top-down.
	if s.Sub == SubAck && !s.HasD && s.Parent != trees.None {
		if p, ok := peer(s.Parent); ok &&
			p.HasD && p.Sub == SubOff && p.Sw != SwReq {
			s.HasD = true
			s.D = p.D + 1
			s.Sub = SubOff
			return s, true
		}
	}
	// (h) Initiator completion.
	if s.Sw == SwDone {
		p, ok := peer(s.Parent)
		if ok && p.HasS && s.HasD && s.HasS &&
			allChildren(v, peer, v.ID, func(c State) bool { return c.Sub == SubOff }) {
			s.Sw, s.SwTarget = SwIdle, trees.None
			return s, true
		}
	}
	return s, false
}

// restoreSize recomputes s from the children if the protocol context
// permits: the prune request must be gone (no seeding initiator, no
// active child request) and every child must carry a size.
func restoreSize(s State, v runtime.View, peer func(graph.NodeID) (State, bool)) (State, bool) {
	if seedPr(v, peer, v.ID) || childPrSupport(v, peer, v.ID) {
		return s, false
	}
	sum := 1
	for _, u := range v.Neighbors {
		p, ok := peer(u)
		if !ok || p.Parent != v.ID {
			continue
		}
		if !p.HasS {
			return s, false
		}
		sum += p.S
	}
	s.HasS = true
	s.S = sum
	s.Pr = PrOff
	return s, true
}

// restoreDist recomputes d from the parent if available.
func restoreDist(s State, v runtime.View, peer func(graph.NodeID) (State, bool)) (State, bool) {
	if s.Parent == trees.None {
		s.HasD, s.D = true, 0
		return s, true
	}
	p, ok := peer(s.Parent)
	if !ok || !p.HasD || p.Sub != SubOff || p.Sw == SwReq {
		return s, false
	}
	s.HasD = true
	s.D = p.D + 1
	s.Sub = SubOff
	return s, true
}

// maintain keeps distances and sizes at their exact values when the node
// and its neighborhood are quiet — the steady-state convergecast and
// broadcast of the labels.
func maintain(s State, v runtime.View, peer func(graph.NodeID) (State, bool)) (State, bool) {
	if !s.Idle() {
		return s, false
	}
	// (The distance chain is maintained unconditionally in StepReg.)
	// Size is one plus the children's sum.
	if s.HasS {
		sum := 1
		complete := true
		for _, u := range v.Neighbors {
			p, ok := peer(u)
			if !ok || p.Parent != v.ID {
				continue
			}
			if !p.HasS {
				complete = false
				break
			}
			sum += p.S
		}
		if complete && s.S != sum {
			s.S = sum
			return s, true
		}
	}
	return s, false
}

// allChildren reports whether pred holds for every neighbor whose parent
// pointer designates x (vacuously true without children).
func allChildren(v runtime.View, peer func(graph.NodeID) (State, bool), x graph.NodeID, pred func(State) bool) bool {
	for _, u := range v.Neighbors {
		p, ok := peer(u)
		if !ok || p.Parent != x {
			continue
		}
		if !pred(p) {
			return false
		}
	}
	return true
}

// Algorithm is the standalone switching algorithm (registers are bare
// switching states). Task layers embed State instead and call StepReg.
type Algorithm struct{}

var _ runtime.Algorithm = Algorithm{}

// Name implements runtime.Algorithm.
func (Algorithm) Name() string { return "malleable-switching" }

// Step implements runtime.Algorithm.
func (Algorithm) Step(v runtime.View) runtime.State {
	self, ok := RegOf(v.Self)
	if !ok {
		return SelfRoot(v.ID)
	}
	return StepReg(self, v, RegOf)
}

// ArbitraryState implements runtime.Algorithm.
func (Algorithm) ArbitraryState(rng *rand.Rand, v runtime.View) runtime.State {
	s := State{
		Root: graph.NodeID(rng.Intn(2*v.N) + 1),
		HasD: rng.Intn(4) != 0,
		D:    rng.Intn(v.N + 1),
		HasS: rng.Intn(4) != 0,
		S:    rng.Intn(v.N+1) + 1,
		Sw:   SwPhase(rng.Intn(4)),
		Pr:   PrPhase(rng.Intn(4)),
		Sub:  SubPhase(rng.Intn(4)),
	}
	if len(v.Neighbors) == 0 || rng.Intn(3) == 0 {
		s.Parent = trees.None
	} else {
		s.Parent = v.Neighbors[rng.Intn(len(v.Neighbors))]
	}
	if len(v.Neighbors) > 0 && rng.Intn(2) == 0 {
		s.SwTarget = v.Neighbors[rng.Intn(len(v.Neighbors))]
	}
	return s
}
