package cluster

import (
	"time"

	"silentspan/internal/graph"
	"silentspan/internal/trace"
	"silentspan/internal/trees"
	"silentspan/internal/wire"
)

// In-band termination detection (DESIGN.md §13): a Dijkstra–Scholten
// style convergecast over the constructed tree, piggybacked on the
// heartbeat frames the cluster already exchanges — the paper's silence
// property, announced by the cluster itself instead of the coordinator.
//
// Each node tracks a write epoch (a Lamport clock bumped by every local
// register write and membership event, joined to the maximum epoch
// heard from any fresh neighbor) and a local-quiet window (no write for
// QuietWindow ticks). A node claims subtree-quiet when it is locally
// quiet and every fresh child — a neighbor whose cached register names
// this node as parent — claims subtree-quiet at the current epoch, and
// it reports the number of nodes the claim covers. The root announces
// cluster-wide quiet when its own claim covers exactly n nodes; the
// announced epoch floods back down on the same frames. Any write
// anywhere bumps the epoch past the announcement, so stale claims and
// stale announcements are retracted within a cadence per hop — the
// detector is itself self-stabilizing.

// updateQuiet runs one detector round. It is called from tick after the
// δ evaluation, so this tick's write (if any) and the freshly
// staleness-filtered peers view are both visible.
func (nd *Node) updateQuiet(now uint64, cfg *Config) {
	nd.mu.Lock()
	if nd.qWrote {
		nd.qWrote = false
		nd.qEpoch++
		nd.qLastAct = now
	}
	// Lamport join: adopt the maximum epoch any fresh neighbor reports.
	// An announced epoch is itself evidence of that epoch, so it joins
	// too — one write anywhere eventually dominates every clock.
	e := nd.qEpoch
	for j := range nd.peers {
		if nd.peers[j] == nil {
			continue
		}
		e = max(e, nd.qRx[j].Epoch, nd.qRx[j].Ann)
	}
	nd.qEpoch = e
	nd.epochMirror.Store(e)

	localQuiet := nd.self != nil && now-nd.qLastAct >= uint64(cfg.QuietWindow)
	sub := localQuiet
	count := uint64(1)
	parentID := ParentOf(nd.self)
	var annIn uint64
	for j := range nd.peers {
		if nd.peers[j] == nil {
			continue
		}
		r := nd.qRx[j]
		if ParentOf(nd.peers[j]) == nd.id {
			// A fresh child joins the convergecast only with a claim made
			// at the current epoch: stale-epoch claims are exactly the
			// ones some write has already retracted.
			if r.Sub && r.Epoch == e {
				count += r.Count
			} else {
				sub = false
			}
		}
		if nd.neighbors[j] == parentID && r.Ann == e {
			// The parent's announcement is forwarded only while this
			// node knows no newer write than the announced epoch.
			annIn = r.Ann
		}
	}
	if !sub {
		count = 0
	}
	isRoot := nd.self != nil && parentID == trees.None
	var annOut uint64
	switch {
	case isRoot:
		// The coverage count is the fragment guard: a root whose subtree
		// does not span the whole cluster (mid-stabilization forest, or
		// a partition's local root) must not announce for everyone.
		if sub && count == uint64(nd.n) {
			annOut = e
		}
	case annIn != 0:
		annOut = annIn
	}

	out := wire.QuietReport{Epoch: e, Sub: sub, Count: count, Ann: annOut}
	prev := nd.qOut
	if out.Sub != prev.Sub || out.Ann != prev.Ann || (out.Sub && out.Count != prev.Count) {
		nd.qDirty = true
	}
	nd.qOut = out
	if out != prev {
		// Every transition of the outgoing report — including epoch
		// adoptions — is a fresh claim: the announce-coverage invariant
		// needs each node's Sub@epoch claim as a recorded event.
		subBit := uint64(0)
		if out.Sub {
			subBit = 1
		}
		nd.recordEpoch(trace.QuietReport, trace.ClassNone, parentID, 0, out.Count<<1|subBit, now, e)
	}

	annActive := isRoot && annOut != 0
	fired := annActive && (!nd.qAnnRoot || annOut != nd.qAnnEp)
	retracted := !annActive && nd.qAnnRoot
	if fired {
		nd.recordEpoch(trace.Announce, trace.ClassNone, 0, 0, out.Count, now, annOut)
	} else if retracted {
		nd.recordEpoch(trace.Retract, trace.ClassNone, 0, 0, 0, now, e)
	}
	notify := nd.noteAnn != nil && (fired || retracted)
	noteEpoch := annOut
	if !annActive {
		noteEpoch = nd.qAnnEp
	}
	nd.qAnnRoot = annActive
	if annActive {
		nd.qAnnEp = annOut
	}
	nd.mu.Unlock()
	if notify {
		nd.noteAnn(nd.id, noteEpoch, annActive)
	}
}

// QuietEvent is one transition of the cluster's in-band silence
// announcement, delivered on the QuietEvents channel.
type QuietEvent struct {
	// Announced is the aggregate state after the transition: true when
	// some tree root is announcing cluster-wide quiet.
	Announced bool
	// Root is the node whose announcement transition triggered the
	// event; Epoch the write epoch it announced (or retracted) at.
	Root  graph.NodeID
	Epoch uint64
}

// noteAnnounce is the node-side callback for root-announcement
// transitions. It maintains the set of currently announcing roots
// (transiently more than one during stabilization) and emits a
// QuietEvent whenever the aggregate announced flag flips.
func (c *Cluster) noteAnnounce(root graph.NodeID, epoch uint64, active bool) {
	c.annMu.Lock()
	if active {
		c.annRoots[root] = epoch
	} else {
		delete(c.annRoots, root)
	}
	ann := len(c.annRoots) > 0
	var maxE uint64
	for _, e := range c.annRoots {
		maxE = max(maxE, e)
	}
	was := c.announced.Load()
	c.announced.Store(ann)
	c.annEpoch.Store(maxE)
	c.annMu.Unlock()
	if ann != was {
		// Non-blocking: a slow (or absent) consumer must never stall a
		// node actor. The level accessors below always hold the truth.
		select {
		case c.quietCh <- QuietEvent{Announced: ann, Root: root, Epoch: epoch}:
		default:
		}
	}
}

// QuietAnnounced reports whether the in-band termination detector is
// currently announcing cluster-wide quiet: some tree root has learned
// that every node has been write-quiet for QuietWindow ticks, at an
// epoch no write has superseded. Safe at any time, including
// mid-Serve.
func (c *Cluster) QuietAnnounced() bool { return c.announced.Load() }

// QuietEpoch returns the write epoch of the active announcement (0
// when none is active).
func (c *Cluster) QuietEpoch() uint64 { return c.annEpoch.Load() }

// QuietEvents returns the announcement transition stream. Events are
// dropped rather than blocking node actors when the consumer lags;
// poll QuietAnnounced for the level.
func (c *Cluster) QuietEvents() <-chan QuietEvent { return c.quietCh }

// QuietFor returns the coordinator's ground truth in lockstep mode:
// consecutive ticks without a δ-driven register change. (Serve mode
// has no lockstep clock; see the ss_cluster_quiet_ticks gauge for the
// wall-clock equivalent.)
func (c *Cluster) QuietFor() uint64 {
	t, last := c.tick.Load(), c.lastChangeTick.Load()
	if t < last {
		return 0
	}
	return t - last
}

// quietTicksGauge computes ss_cluster_quiet_ticks for both execution
// modes: lockstep counts ticks since the last changed tick; a
// free-running cluster (no lockstep clock) derives the equivalent from
// the wall clock since the last register write.
func (c *Cluster) quietTicksGauge() float64 {
	if t := c.tick.Load(); t > 0 {
		last := c.lastChangeTick.Load()
		if t < last {
			return 0
		}
		return float64(t - last)
	}
	ns := time.Now().UnixNano() - c.lastWriteNS.Load()
	if ns < 0 {
		return 0
	}
	return float64(time.Duration(ns) / c.cfg.Interval)
}
