package cluster

import (
	"math/rand"
	"testing"

	"silentspan/internal/bfs"
	"silentspan/internal/graph"
	"silentspan/internal/routing"
	"silentspan/internal/runtime"
	"silentspan/internal/spanning"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

// algorithms under test: the three always-on rule systems. MST/MDST run
// switching registers and are certified in internal/cert.
func testAlgorithms() []runtime.Algorithm {
	return []runtime.Algorithm{spanning.Algorithm{}, switching.Algorithm{}, bfs.Algorithm{}}
}

func testGraphs(rng *rand.Rand) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"path-7":    graph.Path(7),
		"ring-8":    graph.Ring(8),
		"random-12": graph.RandomConnected(12, 0.3, rng),
	}
}

// quietTicks is ample slack over the default heartbeat period and the
// fault wrapper's max delay.
const quietTicks = 8

// converge runs cl to quiet and fails the test if it does not settle.
func converge(t *testing.T, cl *Cluster, maxTicks int) {
	t.Helper()
	ticks, ok := cl.RunUntilQuiet(maxTicks, quietTicks)
	if !ok {
		t.Fatalf("no quiet within %d ticks (%d registers changed last tick)", maxTicks, cl.ChangedLastTick())
	}
	t.Logf("quiet after %d ticks", ticks)
}

// checkSilentTree mirrors the cluster registers into a shared-memory
// network and asserts the projection is silent and encodes a spanning
// tree rooted at the minimum identity.
func checkSilentTree(t *testing.T, cl *Cluster) {
	t.Helper()
	net, err := cl.Mirror()
	if err != nil {
		t.Fatal(err)
	}
	if !net.Silent() {
		t.Fatalf("cluster quiet but shared-memory projection not silent: enabled=%v", net.Enabled())
	}
	var tr *trees.Tree
	if _, ok := cl.Algorithm().(spanning.Algorithm); ok {
		tr, err = spanning.ExtractTree(net)
	} else {
		tr, err = switching.ExtractTree(net, switching.RegOf)
	}
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root() != cl.Graph().MinID() {
		t.Fatalf("root %d, want minimum identity %d", tr.Root(), cl.Graph().MinID())
	}
}

// TestClusterConverges: every always-on algorithm, started from an
// adversarial configuration with empty caches, converges over the
// in-process transport to the silent tree of the shared-memory model.
func TestClusterConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for name, g := range testGraphs(rng) {
		for _, alg := range testAlgorithms() {
			t.Run(name+"/"+alg.Name(), func(t *testing.T) {
				cl, err := New(g, alg, NewChanTransport(), Config{})
				if err != nil {
					t.Fatal(err)
				}
				defer cl.Stop()
				cl.InitArbitrary(rand.New(rand.NewSource(9)))
				converge(t, cl, 4000)
				checkSilentTree(t, cl)
			})
		}
	}
}

// TestClusterConvergesUnderFaults: same assertion through a lossy,
// duplicating, reordering, corrupting transport (the checksum turns
// corruption into loss).
func TestClusterConvergesUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfgs := map[string]FaultConfig{
		"lossy":   {Seed: 3, Loss: 0.2},
		"chaotic": {Seed: 4, Loss: 0.1, Dup: 0.1, Corrupt: 0.05, Delay: 0.2, MaxDelayTicks: 4},
	}
	for name, g := range testGraphs(rng) {
		for _, alg := range testAlgorithms() {
			for fname, fc := range cfgs {
				t.Run(name+"/"+alg.Name()+"/"+fname, func(t *testing.T) {
					ft := NewFaultTransport(NewChanTransport(), fc)
					cl, err := New(g, alg, ft, Config{StalenessTTL: 24})
					if err != nil {
						t.Fatal(err)
					}
					defer cl.Stop()
					cl.InitArbitrary(rand.New(rand.NewSource(11)))
					converge(t, cl, 20000)
					checkSilentTree(t, cl)
					// The run must actually have been adversarial: a fault
					// wrapper regressing to a no-op would make convergence
					// trivially clean and void the test.
					st := ft.Stats()
					if st.Lost == 0 {
						t.Fatalf("no frame was ever lost: %+v", st)
					}
					if fname == "chaotic" && (st.Corrupted == 0 || st.Duplicated == 0 || st.Delayed == 0) {
						t.Fatalf("chaotic profile left fault classes unused: %+v", st)
					}
				})
			}
		}
	}
}

// TestGatewayDelivery: after convergence the gateway's labeling is the
// complete labeling of the stabilized tree, and a packet batch carried
// hop-by-hop as data frames over the clean transport delivers 100%.
func TestGatewayDelivery(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.RandomConnected(16, 0.25, rng)
	cl, err := New(g, spanning.Algorithm{}, NewChanTransport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	gw := NewGateway(cl)
	cl.InitArbitrary(rng)
	converge(t, cl, 4000)
	checkSilentTree(t, cl)
	if !gw.Labeling().Complete() {
		t.Fatalf("labeling incomplete after convergence: %d covered", gw.Labeling().Covered())
	}

	pairs := routing.UniformPairs(g.Nodes(), 200, rng)
	gw.Launch(pairs)
	for i := 0; i < 4*g.N() && gw.Outstanding() > 0; i++ {
		cl.Tick()
	}
	if n := gw.Outstanding(); n > 0 {
		t.Fatalf("%d packets unresolved on a clean transport", n)
	}
	st := gw.Stats()
	if st.DeliveryRate() != 1 {
		t.Fatalf("delivery %.3f, want 1.0 (%+v)", st.DeliveryRate(), st)
	}
	if st.MeanHops() <= 0 {
		t.Fatalf("mean hops %.2f", st.MeanHops())
	}
}

// TestGatewayDeliveryUnderFaults: packets launched mid-convergence
// through an adversarial transport; after the control plane settles and
// faults are quiesced, a fresh batch delivers 100% and the mid-chaos
// cohort is fully accounted (delivered + dropped + lost = launched).
func TestGatewayDeliveryUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.RandomConnected(14, 0.3, rng)
	ft := NewFaultTransport(NewChanTransport(), FaultConfig{
		Seed: 21, Loss: 0.1, Dup: 0.1, Corrupt: 0.05, Delay: 0.2, MaxDelayTicks: 3})
	cl, err := New(g, bfs.Algorithm{}, ft, Config{StalenessTTL: 24})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	gw := NewGateway(cl)
	cl.InitArbitrary(rng)

	// Launch mid-convergence: a few ticks in, labeling still decayed.
	for i := 0; i < 5; i++ {
		cl.Tick()
	}
	gw.Launch(routing.UniformPairs(g.Nodes(), 64, rng))
	converge(t, cl, 20000)
	checkSilentTree(t, cl)

	// Let in-flight copies resolve, then reap transit losses.
	for i := 0; i < 4*g.N(); i++ {
		cl.Tick()
	}
	gw.Expire()
	st := gw.Stats()
	if st.Delivered+st.Dropped+st.Lost != st.Launched {
		t.Fatalf("cohort unaccounted: %+v", st)
	}

	// Recovered service over a clean data path.
	ft.SetEnabled(false)
	gw.Launch(routing.UniformPairs(g.Nodes(), 100, rng))
	for i := 0; i < 4*g.N() && gw.Outstanding() > 0; i++ {
		cl.Tick()
	}
	post := gw.Stats()
	if post.Delivered-st.Delivered != 100 {
		t.Fatalf("post-recovery batch: %d of 100 delivered (%+v)", post.Delivered-st.Delivered, post)
	}
}
