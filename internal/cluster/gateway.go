package cluster

import (
	"fmt"
	"sync"

	"silentspan/internal/graph"
	"silentspan/internal/ops"
	"silentspan/internal/routing"
	"silentspan/internal/runtime"
	"silentspan/internal/spanning"
	"silentspan/internal/switching"
	"silentspan/internal/wire"
)

// ParentOf reads the raw parent pointer out of a register of either
// certified register family (routing.NoParent for nil or foreign
// states) — the cluster-side sibling of routing.LiveParents.
func ParentOf(s runtime.State) graph.NodeID {
	switch r := s.(type) {
	case spanning.State:
		return r.Parent
	default:
		if sw, ok := switching.RegOf(s); ok {
			return sw.Parent
		}
	}
	return routing.NoParent
}

// Gateway is the cluster's serving layer: it maintains a
// routing.LiveLabeler over the nodes' live registers — refreshed
// between ticks, incremental per changed parent pointer — and carries
// routed packets end-to-end over the cluster's own transport: each hop
// is a wire data frame from one node actor to the next, subject to the
// same loss, duplication, reordering and corruption as the heartbeats.
// Forwarding decisions are greedy over the coordinate labeling
// (Router.NextHop); packets stall in place while the labeling is
// decayed and resume when it heals, exactly like the simulator's
// in-flight cohorts.
type Gateway struct {
	c       *Cluster
	lb      *routing.LiveLabeler
	router  *routing.Router
	maxHops int

	// labMu serializes labeling refreshes against per-hop lookups: in
	// lockstep mode refreshes happen between ticks and the lock is
	// uncontended; free-running mode genuinely needs it.
	labMu sync.RWMutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]wire.Packet // launched, not yet resolved
	// resolved marks packets whose outcome is final: resolution is
	// single-shot, so a duplicated data frame arriving (or dying) after
	// its sibling resolved the packet cannot double-count. IDs are
	// allocated monotonically, so the set is kept bounded by a
	// watermark: every ID below resolvedBelow is resolved and the map
	// holds only the sparse out-of-order tail — a long-running gateway
	// does not accrete one entry per packet forever.
	resolved      map[uint64]bool
	resolvedBelow uint64
	stats         GatewayStats
}

// GatewayStats is the data-plane accounting.
type GatewayStats struct {
	Launched  int
	Delivered int
	// Dropped packets exceeded the hop or stall budget at some node;
	// Lost packets vanished in transit (lost/corrupted frames) and were
	// reaped by Expire.
	Dropped, Lost int
	HopsTotal     int
}

// DeliveryRate returns delivered / launched (1 when nothing launched).
func (s GatewayStats) DeliveryRate() float64 {
	if s.Launched == 0 {
		return 1
	}
	return float64(s.Delivered) / float64(s.Launched)
}

// MeanHops returns the average hop count over delivered packets.
func (s GatewayStats) MeanHops() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.HopsTotal) / float64(s.Delivered)
}

// NewGateway attaches a gateway to the cluster. Call before the first
// tick (the gateway wires itself into every node's data path).
func NewGateway(c *Cluster) *Gateway {
	c.memMu.RLock()
	parents := make([]graph.NodeID, c.d.Slots())
	for i, nd := range c.nodes {
		if nd == nil {
			parents[i] = routing.NoParent
			continue
		}
		parents[i] = ParentOf(nd.State())
	}
	lb := routing.NewLiveLabeler(c.g, parents)
	c.memMu.RUnlock()
	gw := &Gateway{
		c:             c,
		lb:            lb,
		pending:       make(map[uint64]wire.Packet),
		resolved:      make(map[uint64]bool),
		resolvedBelow: 1, // IDs start at 1
	}
	gw.router = routing.NewRouter(c.g, lb.Labeling(), routing.Options{})
	gw.maxHops = gw.router.MaxHops()
	c.gw = gw
	// Membership changes flow into the labeling as topology events: the
	// labeler adds/removes slots and the router republishes. Events fire
	// from the cluster's mutators under memMu, so the lock order is
	// always memMu → labMu.
	c.net.AddTopologyListener(func(ev runtime.TopoEvent) {
		gw.labMu.Lock()
		gw.lb.ApplyTopo(ev)
		gw.router.SetLabeling(gw.lb.Labeling())
		gw.labMu.Unlock()
	})
	gw.registerMetrics(c.metrics)
	return gw
}

// registerMetrics exposes the data-plane accounting: counters are
// func-backed reads of the mutex-guarded stats, taken at scrape time.
func (gw *Gateway) registerMetrics(reg *ops.Registry) {
	stat := func(field func(GatewayStats) int) func() float64 {
		return func() float64 { return float64(field(gw.Stats())) }
	}
	reg.CounterFunc("ss_gateway_packets_launched_total", "Packets injected by the gateway.", nil,
		stat(func(s GatewayStats) int { return s.Launched }))
	reg.CounterFunc("ss_gateway_packets_delivered_total", "Packets that reached their destination.", nil,
		stat(func(s GatewayStats) int { return s.Delivered }))
	reg.CounterFunc("ss_gateway_packets_dropped_total", "Packets dropped at nodes (hop/stall budget).", nil,
		stat(func(s GatewayStats) int { return s.Dropped }))
	reg.CounterFunc("ss_gateway_packets_expired_total", "Outstanding packets reaped as lost in transit (Expire).", nil,
		stat(func(s GatewayStats) int { return s.Lost }))
	reg.CounterFunc("ss_gateway_hops_total", "Hops accumulated by delivered packets.", nil,
		stat(func(s GatewayStats) int { return s.HopsTotal }))
	reg.GaugeFunc("ss_gateway_packets_outstanding", "Launched packets not yet resolved.", nil,
		func() float64 { return float64(gw.Outstanding()) })
}

// refresh folds the current registers into the incremental labeling and
// republishes it to the router. Called by the cluster between lockstep
// ticks, or periodically in free-running mode. The caller holds the
// cluster's membership read lock (memMu); labMu nests inside it.
func (gw *Gateway) refresh() {
	gw.labMu.Lock()
	for _, nd := range gw.c.nodes {
		if nd == nil {
			continue
		}
		gw.lb.SetParent(nd.id, ParentOf(nd.State()))
	}
	gw.router.SetLabeling(gw.lb.Labeling())
	gw.labMu.Unlock()
}

// nextHop is the per-node forwarding decision (read-locked: node
// actors call it concurrently during a tick).
func (gw *Gateway) nextHop(cur, dst graph.NodeID) (graph.NodeID, bool) {
	gw.labMu.RLock()
	next, _, ok := gw.router.NextHop(cur, dst)
	gw.labMu.RUnlock()
	return next, ok
}

// Labeling returns the gateway's current labeling (between ticks).
func (gw *Gateway) Labeling() *routing.Labeling { return gw.lb.Labeling() }

// Launch injects one packet per pair at its source node. Packets to
// self deliver immediately. Call between ticks.
func (gw *Gateway) Launch(pairs []routing.Pair) {
	for _, p := range pairs {
		gw.mu.Lock()
		gw.nextID++
		pkt := wire.Packet{ID: gw.nextID, Origin: p.Src, Dst: p.Dst}
		gw.stats.Launched++
		gw.mu.Unlock()
		if p.Src == p.Dst {
			if nd := gw.c.Node(p.Src); nd != nil {
				nd.recordPacketSelf(pkt)
			}
			gw.deliver(pkt)
			continue
		}
		nd := gw.c.Node(p.Src)
		if nd == nil {
			panic(fmt.Sprintf("cluster: launch from unknown node %d", p.Src))
		}
		gw.mu.Lock()
		gw.pending[pkt.ID] = pkt
		gw.mu.Unlock()
		nd.Inject(pkt)
	}
}

// isResolved reports a final outcome for id (caller holds gw.mu).
func (gw *Gateway) isResolved(id uint64) bool {
	return id < gw.resolvedBelow || gw.resolved[id]
}

// resolve marks id final and advances the watermark over any now-
// contiguous resolved prefix (caller holds gw.mu).
func (gw *Gateway) resolve(id uint64) {
	gw.resolved[id] = true
	for gw.resolved[gw.resolvedBelow] {
		delete(gw.resolved, gw.resolvedBelow)
		gw.resolvedBelow++
	}
}

// deliver records a packet reaching its destination. It reports whether
// this call resolved the packet: resolution is single-shot, so a
// duplicated frame's second arrival returns false and must not be
// counted anywhere.
func (gw *Gateway) deliver(p wire.Packet) bool {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	if gw.isResolved(p.ID) {
		return false
	}
	gw.resolve(p.ID)
	delete(gw.pending, p.ID)
	gw.stats.Delivered++
	gw.stats.HopsTotal += p.Hops
	return true
}

// drop records a packet exceeding its budgets at some node. It reports
// whether this call resolved the packet — a duplicate copy dying after
// its sibling resolved contributes to no counter, so `dropped`,
// `delivered`, `expired`, and `orphaned` stay mutually exclusive.
func (gw *Gateway) drop(p wire.Packet) bool {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	if gw.isResolved(p.ID) {
		return false
	}
	gw.resolve(p.ID)
	delete(gw.pending, p.ID)
	gw.stats.Dropped++
	return true
}

// orphan reaps a packet parked at a node that is leaving the cluster:
// its queue dies with it, so the packet is accounted lost in transit —
// exactly once, even if a duplicate copy later resolves elsewhere.
func (gw *Gateway) orphan(p wire.Packet) bool {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	if gw.isResolved(p.ID) {
		return false
	}
	gw.resolve(p.ID)
	delete(gw.pending, p.ID)
	gw.stats.Lost++
	return true
}

// Outstanding returns the number of launched packets not yet resolved.
func (gw *Gateway) Outstanding() int {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	return len(gw.pending)
}

// Expire reaps every outstanding packet as lost — the accounting for
// frames the transport genuinely destroyed. Call once cohorts have had
// ample time to resolve.
func (gw *Gateway) Expire() int {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	n := len(gw.pending)
	for id := range gw.pending {
		gw.resolve(id)
		delete(gw.pending, id)
	}
	gw.stats.Lost += n
	return n
}

// Stats returns the data-plane accounting.
func (gw *Gateway) Stats() GatewayStats {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	return gw.stats
}
