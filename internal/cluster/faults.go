package cluster

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"time"

	"silentspan/internal/graph"
	"silentspan/internal/ops"
)

// FaultConfig parameterizes the adversarial transport: per-frame
// probabilities for the classic link fault classes. Zero value = a
// perfect network.
type FaultConfig struct {
	// Seed drives every fault decision; in lockstep mode the same seed
	// replays the identical fault schedule.
	Seed int64
	// Loss is the probability a frame silently disappears.
	Loss float64
	// Dup is the probability a frame is delivered twice (the second copy
	// goes through its own delay decision, so duplicates also reorder).
	Dup float64
	// Corrupt is the probability 1–3 bytes of the frame are flipped; the
	// receiver's frame checksum turns this into a drop.
	Corrupt float64
	// Delay is the probability a frame is held back; reordering emerges
	// from delayed frames overtaking or being overtaken.
	Delay float64
	// MaxDelayTicks bounds the lockstep hold-back (uniform 1..Max;
	// default 3).
	MaxDelayTicks int
	// MaxDelay bounds the free-running hold-back (default 20ms).
	MaxDelay time.Duration
}

func (c *FaultConfig) fill() {
	if c.MaxDelayTicks == 0 {
		c.MaxDelayTicks = 3
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 20 * time.Millisecond
	}
}

// FaultStats counts applied faults.
type FaultStats struct {
	Sent, Lost, Duplicated, Corrupted, Delayed int
}

// FaultTransport wraps another transport with seeded fault injection.
// Over a lockstep transport (one implementing Stepper) the fault
// decisions are taken at the barrier, senders visited in ascending node
// order and frames in send order, so the whole fault schedule is a
// deterministic function of the seed. Over an async transport (UDP)
// decisions are taken inline at Send under a mutex — faithful, but
// deterministic only as far as the network is.
type FaultTransport struct {
	inner   Transport
	stepper Stepper // nil in async mode
	cfg     FaultConfig

	mu      sync.Mutex
	rng     *rand.Rand
	enabled bool
	stats   FaultStats

	eps []*faultEndpoint // ascending id (lockstep iteration order)
	// delayed holds matured-later frames (lockstep mode).
	delayed []delayedFrame
	seq     int // tiebreak preserving decision order among equal due ticks

	// asyncHold counts frames parked in time.AfterFunc (async mode).
	asyncHold int
}

type delayedFrame struct {
	due  uint64
	seq  int
	ep   Endpoint // inner endpoint to deliver through
	to   graph.NodeID
	data []byte
}

type faultEndpoint struct {
	ft    *FaultTransport
	id    graph.NodeID
	inner Endpoint
	out   []sendReq // sender-owned tick buffer (lockstep mode)
}

// NewFaultTransport wraps inner with the given fault profile.
func NewFaultTransport(inner Transport, cfg FaultConfig) *FaultTransport {
	cfg.fill()
	st, _ := inner.(Stepper)
	return &FaultTransport{
		inner:   inner,
		stepper: st,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		enabled: true,
	}
}

// SetEnabled toggles fault injection: campaigns disable it to measure
// the recovered service over a clean data path after certifying
// convergence under faults.
func (ft *FaultTransport) SetEnabled(on bool) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	ft.enabled = on
}

// Stats returns the fault accounting so far.
func (ft *FaultTransport) Stats() FaultStats {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.stats
}

// RegisterMetrics exposes the fault accounting and forwards to the
// wrapped transport's own counters.
func (ft *FaultTransport) RegisterMetrics(reg *ops.Registry) {
	labels := ops.Labels{"transport": "fault"}
	stat := func(field func(FaultStats) int) func() float64 {
		return func() float64 { return float64(field(ft.Stats())) }
	}
	reg.CounterFunc("ss_transport_frames_offered_total", "Frames entering the fault pipeline.", labels,
		stat(func(s FaultStats) int { return s.Sent }))
	reg.CounterFunc("ss_transport_frames_lost_total", "Frames the adversary silently dropped.", labels,
		stat(func(s FaultStats) int { return s.Lost }))
	reg.CounterFunc("ss_transport_frames_duplicated_total", "Frames delivered twice.", labels,
		stat(func(s FaultStats) int { return s.Duplicated }))
	reg.CounterFunc("ss_transport_frames_corrupted_total", "Frames with flipped bytes (caught by the checksum downstream).", labels,
		stat(func(s FaultStats) int { return s.Corrupted }))
	reg.CounterFunc("ss_transport_frames_delayed_total", "Frames held back (reordering).", labels,
		stat(func(s FaultStats) int { return s.Delayed }))
	if m, ok := ft.inner.(interface{ RegisterMetrics(*ops.Registry) }); ok {
		m.RegisterMetrics(reg)
	}
}

// Open implements Transport.
func (ft *FaultTransport) Open(id graph.NodeID) (Endpoint, error) {
	inner, err := ft.inner.Open(id)
	if err != nil {
		return nil, err
	}
	ep := &faultEndpoint{ft: ft, id: id, inner: inner}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	i, found := slices.BinarySearchFunc(ft.eps, ep, func(a, b *faultEndpoint) int {
		return cmp.Compare(a.id, b.id)
	})
	if found {
		// Never insert a shadow endpoint: the stale entry's tick buffer
		// would still be visited at every barrier. (The inner transport
		// normally rejects the duplicate first; this guards against
		// wrappers that don't.)
		inner.Close()
		return nil, fmt.Errorf("cluster: node %d already attached", id)
	}
	ft.eps = slices.Insert(ft.eps, i, ep)
	return ep, nil
}

// Close implements Transport.
func (ft *FaultTransport) Close() error { return ft.inner.Close() }

// Evict implements the membership hook (see the evictor interface):
// flush the departing node's buffered sends straight to the inner
// transport — bypassing the fault pipeline, so the teardown consumes no
// rng draws and the survivors' fault schedule is untouched — drop the
// delayed frames it originated (they would otherwise Send through an
// endpoint the inner transport no longer steps, vanishing without being
// accounted), and forward the eviction down.
func (ft *FaultTransport) Evict(id graph.NodeID) {
	ft.mu.Lock()
	var inner Endpoint
	for i, ep := range ft.eps {
		if ep.id == id {
			inner = ep.inner
			for _, req := range ep.out {
				ep.inner.Send(req.to, req.data)
			}
			ep.out = nil
			ft.eps = slices.Delete(ft.eps, i, i+1)
			break
		}
	}
	if inner != nil {
		n := 0
		for _, df := range ft.delayed {
			if df.ep == inner {
				ft.stats.Lost++
				continue
			}
			ft.delayed[n] = df
			n++
		}
		ft.delayed = ft.delayed[:n]
	}
	ft.mu.Unlock()
	if ev, ok := ft.inner.(evictor); ok {
		ev.Evict(id)
	}
}

// Step implements Stepper: take the fault decision for every frame sent
// during the tick (deterministic order), deliver matured delayed
// frames, then let the inner transport deliver.
func (ft *FaultTransport) Step(tick uint64) {
	if ft.stepper == nil {
		panic("cluster: FaultTransport.Step over a non-lockstep inner transport")
	}
	ft.mu.Lock()
	for _, ep := range ft.eps {
		for _, req := range ep.out {
			ft.route(ep.inner, req, tick)
		}
		ep.out = ep.out[:0]
	}
	// Matured delayed frames, in (due, decision-order) order.
	slices.SortStableFunc(ft.delayed, func(a, b delayedFrame) int {
		if a.due != b.due {
			return cmp.Compare(a.due, b.due)
		}
		return cmp.Compare(a.seq, b.seq)
	})
	n := 0
	for _, df := range ft.delayed {
		if df.due <= tick {
			df.ep.Send(df.to, df.data)
		} else {
			ft.delayed[n] = df
			n++
		}
	}
	ft.delayed = ft.delayed[:n]
	ft.mu.Unlock()
	ft.stepper.Step(tick)
}

// decide runs the fault pipeline for one frame: duplication first (each
// copy then fares independently), loss, byte corruption, and delay.
// Immediate deliveries go through send, held-back copies through hold —
// the only thing the lockstep and async paths differ in. Caller holds
// ft.mu (the rng and stats are shared).
func (ft *FaultTransport) decide(data []byte, send, hold func(data []byte)) {
	ft.stats.Sent++
	if !ft.enabled {
		send(data)
		return
	}
	copies := 1
	if ft.cfg.Dup > 0 && ft.rng.Float64() < ft.cfg.Dup {
		copies = 2
		ft.stats.Duplicated++
	}
	for c := 0; c < copies; c++ {
		if ft.cfg.Loss > 0 && ft.rng.Float64() < ft.cfg.Loss {
			ft.stats.Lost++
			continue
		}
		d := data
		if ft.cfg.Corrupt > 0 && ft.rng.Float64() < ft.cfg.Corrupt {
			d = corruptCopy(ft.rng, d)
			ft.stats.Corrupted++
		}
		if ft.cfg.Delay > 0 && ft.rng.Float64() < ft.cfg.Delay {
			ft.stats.Delayed++
			hold(d)
			continue
		}
		send(d)
	}
}

// route applies the fault pipeline to one frame at a barrier.
func (ft *FaultTransport) route(inner Endpoint, req sendReq, tick uint64) {
	ft.decide(req.data,
		func(d []byte) { inner.Send(req.to, d) },
		func(d []byte) {
			ft.seq++
			ft.delayed = append(ft.delayed, delayedFrame{
				due: tick + 1 + uint64(ft.rng.Intn(ft.cfg.MaxDelayTicks)),
				seq: ft.seq, ep: inner, to: req.to, data: d,
			})
		})
}

// corruptCopy flips 1–3 bytes of a copy of data (never the original:
// duplicates may alias the same backing array).
func corruptCopy(rng *rand.Rand, data []byte) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		out[rng.Intn(len(out))] ^= byte(1 + rng.Intn(255))
	}
	return out
}

// InFlight implements Stepper.
func (ft *FaultTransport) InFlight() int {
	ft.mu.Lock()
	n := len(ft.delayed) + ft.asyncHold
	for _, ep := range ft.eps {
		n += len(ep.out)
	}
	ft.mu.Unlock()
	if ft.stepper != nil {
		n += ft.stepper.InFlight()
	}
	return n
}

// Send implements Endpoint. In lockstep mode frames are buffered for
// the barrier; in async mode the fault pipeline runs inline.
func (ep *faultEndpoint) Send(to graph.NodeID, frame []byte) error {
	ft := ep.ft
	if ft.stepper != nil {
		ep.out = append(ep.out, sendReq{to: to, data: frame})
		return nil
	}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	var sendErr error
	ft.decide(frame,
		func(d []byte) {
			if err := ep.inner.Send(to, d); err != nil && sendErr == nil {
				sendErr = err
			}
		},
		func(d []byte) {
			ft.asyncHold++
			delay := time.Duration(ft.rng.Int63n(int64(ft.cfg.MaxDelay)))
			time.AfterFunc(delay, func() {
				ep.inner.Send(to, d)
				ft.mu.Lock()
				ft.asyncHold--
				ft.mu.Unlock()
			})
		})
	return sendErr
}

// Broadcast implements Endpoint. The fault pipeline fates every
// destination's copy independently — exactly as the per-Send path did —
// so batching upstream does not weaken the adversary: one neighbor may
// lose the frame another receives twice. The deterministic lockstep
// decision order (senders ascending, frames in send order, destinations
// in neighbor order) is preserved by unrolling the batch here.
func (ep *faultEndpoint) Broadcast(dsts []graph.NodeID, frame []byte) error {
	ft := ep.ft
	if ft.stepper != nil {
		for _, to := range dsts {
			ep.out = append(ep.out, sendReq{to: to, data: frame})
		}
		return nil
	}
	var firstErr error
	for _, to := range dsts {
		if err := ep.Send(to, frame); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Drain implements Endpoint.
func (ep *faultEndpoint) Drain(into [][]byte) [][]byte { return ep.inner.Drain(into) }

// Notify implements Endpoint.
func (ep *faultEndpoint) Notify() <-chan struct{} { return ep.inner.Notify() }

// Close implements Endpoint.
func (ep *faultEndpoint) Close() error { return ep.inner.Close() }
