package cluster

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"silentspan/internal/graph"
	"silentspan/internal/ops"
)

// Transport wires a cluster together: one Endpoint per node, opened
// before the cluster starts. Implementations decide what a frame ride
// looks like — an in-process queue (ChanTransport, deterministic), a
// real UDP socket (UDPTransport), or a fault-injecting wrapper around
// either (FaultTransport).
type Transport interface {
	// Open attaches node id and returns its endpoint. Every node is
	// opened before the first frame is sent.
	Open(id graph.NodeID) (Endpoint, error)
	// Close releases all endpoints.
	Close() error
}

// Endpoint is one node's attachment to the transport.
type Endpoint interface {
	// Send queues a frame to node `to`, best-effort: the frame may be
	// dropped, duplicated, delayed, or corrupted in transit depending on
	// the transport. The slice is retained; the caller must not mutate
	// it after Send.
	Send(to graph.NodeID, frame []byte) error
	// Broadcast queues one frame to every destination — a node's
	// per-tick fan-out coalesced into one transport operation instead of
	// len(dsts) bookkeeping rounds. Both slices are retained; the caller
	// must not mutate either after Broadcast. Fault wrappers still fate
	// each destination's copy independently.
	Broadcast(dsts []graph.NodeID, frame []byte) error
	// Drain appends the frames delivered since the last call to `into`
	// and returns it.
	Drain(into [][]byte) [][]byte
	// Notify returns a channel signaled after new frames arrive, for
	// free-running clusters; lockstep-only transports return nil (their
	// deliveries happen at tick barriers).
	Notify() <-chan struct{}
	// Close detaches the endpoint.
	Close() error
}

// Stepper is the lockstep delivery hook: transports that implement it
// buffer Sends during a tick and deliver them at the barrier, in
// deterministic order — the property the seeded-determinism and
// certification campaigns build on. Step is called by the cluster
// coordinator between ticks, with no node goroutine running.
type Stepper interface {
	// Step delivers everything sent during the tick that just ended.
	Step(tick uint64)
	// InFlight reports frames accepted but not yet delivered (delayed
	// frames held by a fault wrapper; zero right after Step otherwise).
	InFlight() int
}

// ChanTransport is the deterministic in-process transport: frames sent
// during a tick are buffered in sender-owned queues and moved to the
// recipients' inboxes at the barrier, senders visited in ascending node
// order. It is lockstep-only (Notify returns nil) and entirely
// lock-free during ticks: each queue has exactly one owner goroutine,
// and the coordinator's Step runs while every node is parked.
type ChanTransport struct {
	mu     sync.Mutex // guards Open bookkeeping only
	eps    map[graph.NodeID]*chanEndpoint
	sorted []*chanEndpoint
	// dropped counts frames addressed to nodes that were never opened;
	// delivered counts frames moved into inboxes, deliveredBytes their
	// bytes. Atomic so a metrics scrape can read them while Step runs.
	dropped        atomic.Int64
	delivered      atomic.Int64
	deliveredBytes atomic.Int64
}

// RegisterMetrics exposes the transport's delivery counters.
func (tr *ChanTransport) RegisterMetrics(reg *ops.Registry) {
	labels := ops.Labels{"transport": "chan"}
	reg.CounterFunc("ss_transport_frames_delivered_total", "Frames moved into recipient inboxes.", labels,
		func() float64 { return float64(tr.delivered.Load()) })
	reg.CounterFunc("ss_transport_delivered_bytes_total", "Frame bytes moved into recipient inboxes.", labels,
		func() float64 { return float64(tr.deliveredBytes.Load()) })
	reg.CounterFunc("ss_transport_frames_dropped_total", "Frames addressed to unopened nodes.", labels,
		func() float64 { return float64(tr.dropped.Load()) })
}

// NewChanTransport returns an empty in-process transport.
func NewChanTransport() *ChanTransport {
	return &ChanTransport{eps: make(map[graph.NodeID]*chanEndpoint)}
}

type chanEndpoint struct {
	tr *ChanTransport
	id graph.NodeID
	// out is the sender-owned tick buffer; in is the inbox, filled at
	// barriers and drained by the owning node during its tick.
	out []sendReq
	in  [][]byte
}

type sendReq struct {
	to graph.NodeID
	// dsts, when non-nil, makes this a batched fan-out entry: one frame
	// to every destination, `to` unused. The slice is the sender's
	// neighbor list, shared and read-only.
	dsts []graph.NodeID
	data []byte
}

// fanout returns the number of frames this entry carries.
func (r sendReq) fanout() int {
	if r.dsts != nil {
		return len(r.dsts)
	}
	return 1
}

// Open implements Transport.
func (tr *ChanTransport) Open(id graph.NodeID) (Endpoint, error) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, ok := tr.eps[id]; ok {
		return nil, fmt.Errorf("cluster: node %d already attached", id)
	}
	ep := &chanEndpoint{tr: tr, id: id}
	tr.eps[id] = ep
	i, _ := slices.BinarySearchFunc(tr.sorted, ep, func(a, b *chanEndpoint) int {
		return cmp.Compare(a.id, b.id)
	})
	tr.sorted = slices.Insert(tr.sorted, i, ep)
	return ep, nil
}

// Close implements Transport.
func (tr *ChanTransport) Close() error { return nil }

// Evict implements the membership hook (see the evictor interface):
// flush the departing node's buffered sends into the survivors' inboxes
// — its goodbye broadcast must not die in the tick buffer Step would
// never visit again — then drop it from the delivery directory so a
// rejoining incarnation of the id can attach fresh instead of failing
// Open with "already attached". Called by the cluster coordinator with
// every actor parked, so touching sender-owned buffers is safe.
func (tr *ChanTransport) Evict(id graph.NodeID) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	ep, ok := tr.eps[id]
	if !ok {
		return
	}
	for _, req := range ep.out {
		if req.dsts != nil {
			for _, to := range req.dsts {
				tr.deliverOne(to, req.data)
			}
			continue
		}
		tr.deliverOne(req.to, req.data)
	}
	ep.out = nil
	delete(tr.eps, id)
	if i, found := slices.BinarySearchFunc(tr.sorted, ep, func(a, b *chanEndpoint) int {
		return cmp.Compare(a.id, b.id)
	}); found {
		tr.sorted = slices.Delete(tr.sorted, i, i+1)
	}
}

// Step implements Stepper: move every tick-buffered frame into its
// recipient's inbox, senders in ascending node order.
func (tr *ChanTransport) Step(uint64) {
	for _, ep := range tr.sorted {
		for _, req := range ep.out {
			if req.dsts != nil {
				for _, to := range req.dsts {
					tr.deliverOne(to, req.data)
				}
				continue
			}
			tr.deliverOne(req.to, req.data)
		}
		ep.out = ep.out[:0]
	}
}

func (tr *ChanTransport) deliverOne(to graph.NodeID, data []byte) {
	dst, ok := tr.eps[to]
	if !ok {
		tr.dropped.Add(1)
		return
	}
	dst.in = append(dst.in, data)
	tr.delivered.Add(1)
	tr.deliveredBytes.Add(int64(len(data)))
}

// InFlight implements Stepper.
func (tr *ChanTransport) InFlight() int {
	n := 0
	for _, ep := range tr.sorted {
		for _, req := range ep.out {
			n += req.fanout()
		}
	}
	return n
}

// Delivered returns the total frames delivered so far.
func (tr *ChanTransport) Delivered() int { return int(tr.delivered.Load()) }

// Send implements Endpoint (sender-owned buffer; no locking by design —
// see the type comment).
func (ep *chanEndpoint) Send(to graph.NodeID, frame []byte) error {
	ep.out = append(ep.out, sendReq{to: to, data: frame})
	return nil
}

// Broadcast implements Endpoint: the whole fan-out is one buffered
// entry, unpacked at the barrier.
func (ep *chanEndpoint) Broadcast(dsts []graph.NodeID, frame []byte) error {
	ep.out = append(ep.out, sendReq{dsts: dsts, data: frame})
	return nil
}

// Drain implements Endpoint.
func (ep *chanEndpoint) Drain(into [][]byte) [][]byte {
	into = append(into, ep.in...)
	ep.in = ep.in[:0]
	return into
}

// Notify implements Endpoint: nil — this transport is lockstep-only.
func (ep *chanEndpoint) Notify() <-chan struct{} { return nil }

// Close implements Endpoint.
func (ep *chanEndpoint) Close() error { return nil }
