package cluster

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"silentspan/internal/graph"
	"silentspan/internal/spanning"
)

// TestUDPClusterConverges: the free-running cluster over real loopback
// UDP sockets — every node on its own timer, no barriers — stabilizes
// the spanning substrate to the same silent tree the simulator
// certifies. The wall-clock budget is generous; the run typically
// settles in a few hundred milliseconds.
func TestUDPClusterConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	rng := rand.New(rand.NewSource(17))
	g := graph.RandomConnected(12, 0.3, rng)
	tr := NewUDPTransport()
	defer tr.Close()
	cl, err := New(g, spanning.Algorithm{}, tr, Config{Interval: time.Millisecond, StalenessTTL: 64})
	if err != nil {
		t.Fatal(err)
	}
	cl.InitArbitrary(rng)

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- cl.Serve(ctx) }()

	deadline := time.After(20 * time.Second)
	for {
		select {
		case <-deadline:
			cancel()
			<-served
			net, err := cl.Mirror()
			if err != nil {
				t.Fatal(err)
			}
			t.Fatalf("no silent projection within deadline; enabled=%v", net.Enabled())
		case <-time.After(50 * time.Millisecond):
		}
		net, err := cl.Mirror()
		if err != nil {
			t.Fatal(err)
		}
		if net.Silent() {
			if _, err := spanning.ExtractTree(net); err != nil {
				continue // silent projection of a mid-flight snapshot; keep waiting
			}
			cancel()
			<-served
			// Final check on the settled registers.
			net, err := cl.Mirror()
			if err != nil {
				t.Fatal(err)
			}
			if !net.Silent() {
				t.Fatal("cluster regressed after silence")
			}
			tr2, err := spanning.ExtractTree(net)
			if err != nil {
				t.Fatal(err)
			}
			if tr2.Root() != g.MinID() {
				t.Fatalf("root %d, want %d", tr2.Root(), g.MinID())
			}
			return
		}
	}
}

// TestUDPFaultWrapper: the fault wrapper composes with the async
// transport (inline decisions) and the cluster still converges.
func TestUDPFaultWrapper(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	rng := rand.New(rand.NewSource(19))
	g := graph.Ring(8)
	ft := NewFaultTransport(NewUDPTransport(), FaultConfig{
		Seed: 23, Loss: 0.1, Dup: 0.1, Corrupt: 0.05, Delay: 0.1, MaxDelay: 2 * time.Millisecond})
	defer ft.Close()
	cl, err := New(g, spanning.Algorithm{}, ft, Config{Interval: time.Millisecond, StalenessTTL: 64})
	if err != nil {
		t.Fatal(err)
	}
	cl.InitArbitrary(rng)

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- cl.Serve(ctx) }()
	defer func() { cancel(); <-served }()

	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		net, err := cl.Mirror()
		if err != nil {
			t.Fatal(err)
		}
		if net.Silent() {
			if tr2, err := spanning.ExtractTree(net); err == nil && tr2.Root() == g.MinID() {
				if st := ft.Stats(); st.Lost == 0 {
					t.Logf("fault wrapper applied no losses: %+v", st)
				}
				return
			}
		}
	}
	t.Fatal("no convergence over faulty UDP within deadline")
}
