package cluster

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"silentspan/internal/graph"
	"silentspan/internal/ops"
	"silentspan/internal/spanning"
	"silentspan/internal/switching"
)

// mirrorParents reads the coordinator's ground truth: every node's
// parent pointer from the mirror, normalized the way the admin plane
// normalizes (ops.None for roots).
func mirrorParents(t *testing.T, cl *Cluster) map[graph.NodeID]graph.NodeID {
	t.Helper()
	net, err := cl.Mirror()
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[graph.NodeID]graph.NodeID)
	for _, v := range cl.Graph().Nodes() {
		want[v] = adminParent(net.State(v))
	}
	return want
}

// TestAdminHubEndpoints: JSON-facing semantics of every endpoint over
// a converged cluster, per register family.
func TestAdminHubEndpoints(t *testing.T) {
	for _, alg := range testAlgorithms() {
		t.Run(alg.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			g := graph.RandomConnected(10, 0.3, rng)
			cl, err := New(g, alg, NewChanTransport(), Config{})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Stop()
			cl.InitArbitrary(rng)
			converge(t, cl, 4000)

			hub := cl.AdminHub()
			want := mirrorParents(t, cl)
			root := g.MinID()
			childrenSeen := make(map[graph.NodeID][]graph.NodeID)
			for _, v := range g.Nodes() {
				self, err := hub.Self(v)
				if err != nil {
					t.Fatal(err)
				}
				if self.ID != v || self.N != g.N() {
					t.Fatalf("getself identity: %+v", self)
				}
				if self.Algorithm != alg.Name() || self.Codec != cl.Codec().Name() {
					t.Fatalf("getself protocol identity: %+v", self)
				}
				if self.Register == "" || self.RegisterBits <= 0 {
					t.Fatalf("getself register dump empty: %+v", self)
				}
				if self.Parent != want[v] {
					t.Fatalf("node %d: getself parent %d, mirror %d", v, self.Parent, want[v])
				}
				if v == root {
					if self.Parent != ops.None || self.Port != -1 {
						t.Fatalf("root getself: parent %d port %d", self.Parent, self.Port)
					}
				} else {
					nbs := g.Neighbors(v)
					if self.Port < 0 || self.Port >= len(nbs) || nbs[self.Port] != self.Parent {
						t.Fatalf("node %d: port %d does not index parent %d in %v", v, self.Port, self.Parent, nbs)
					}
				}

				peers, err := hub.Peers(v)
				if err != nil {
					t.Fatal(err)
				}
				if peers.Node != v || peers.StalenessTTL != cl.cfg.StalenessTTL {
					t.Fatalf("getpeers header: %+v", peers)
				}
				if len(peers.Peers) != len(g.Neighbors(v)) {
					t.Fatalf("node %d: %d peers, degree %d", v, len(peers.Peers), len(g.Neighbors(v)))
				}
				for _, p := range peers.Peers {
					if p.Stale || p.Seq == 0 || p.AgeTicks < 0 {
						t.Fatalf("node %d: converged cluster has stale/unheard peer %+v", v, p)
					}
					if p.Parent != want[p.ID] {
						t.Fatalf("node %d: cached parent of %d is %d, mirror %d", v, p.ID, p.Parent, want[p.ID])
					}
				}

				ti := nodeAdmin{c: cl, nd: cl.Node(v)}.AdminTree()
				if ti.Node != v || ti.Parent != want[v] {
					t.Fatalf("gettree: %+v", ti)
				}
				for _, ch := range ti.Children {
					childrenSeen[v] = append(childrenSeen[v], ch)
					if want[ch] != v {
						t.Fatalf("node %d claims child %d, but mirror parent of %d is %d", v, ch, ch, want[ch])
					}
				}

				st := nodeAdmin{c: cl, nd: cl.Node(v)}.AdminStats()
				if st.Node != v || st.FramesSent == 0 || st.FramesRecv == 0 || st.HeartbeatsApplied == 0 {
					t.Fatalf("getstats inactive node: %+v", st)
				}
			}
			// Every non-root appears as exactly one node's child: the
			// one-hop views tile into the mirror's tree.
			total := 0
			for _, chs := range childrenSeen {
				total += len(chs)
			}
			if total != g.N()-1 {
				t.Fatalf("one-hop children cover %d nodes, want %d", total, g.N()-1)
			}
		})
	}
}

// TestAdminCrawlMatchesMirror: the crawler, talking only to the admin
// plane, reconstructs exactly the tree the coordinator's mirror holds.
func TestAdminCrawlMatchesMirror(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	g := graph.RandomConnected(12, 0.3, rng)
	cl, err := New(g, switching.Algorithm{}, NewChanTransport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.InitArbitrary(rng)
	converge(t, cl, 6000)

	start := g.Nodes()[rng.Intn(g.N())]
	rep, err := ops.Crawl(cl.AdminHub(), start)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Visited() != g.N() {
		t.Fatalf("crawl visited %d of %d", rep.Visited(), g.N())
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("crawl errors: %v", rep.Errors)
	}
	if diffs := rep.DiffParents(mirrorParents(t, cl)); len(diffs) != 0 {
		t.Fatalf("crawl diverges from mirror:\n%s", strings.Join(diffs, "\n"))
	}
	if roots := rep.Roots(); len(roots) != 1 || roots[0] != g.MinID() {
		t.Fatalf("crawled roots %v, want [%d]", roots, g.MinID())
	}
}

// TestAdminPeersStaleness: after a total heartbeat blackout longer than
// the TTL, every peer entry reads stale (and ages past the TTL), the
// expiry counters advance, and gettree children empty out — the admin
// plane reports exactly what the protocol's staleness filter sees.
func TestAdminPeersStaleness(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := graph.Ring(6)
	ft := NewFaultTransport(NewChanTransport(), FaultConfig{Seed: 43, Loss: 1})
	ft.SetEnabled(false) // converge over a clean network first
	cl, err := New(g, spanning.Algorithm{}, ft, Config{StalenessTTL: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.InitArbitrary(rng)
	converge(t, cl, 4000)
	if n := cl.Stats().StalenessExpiries; n != 0 {
		t.Fatalf("expiries before blackout: %d", n)
	}

	ft.SetEnabled(true) // blackout: every heartbeat is lost
	for i := 0; i < cl.cfg.StalenessTTL+3; i++ {
		cl.Tick()
	}

	hub := cl.AdminHub()
	for _, v := range g.Nodes() {
		peers, err := hub.Peers(v)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range peers.Peers {
			if !p.Stale {
				t.Fatalf("node %d: peer %+v not stale after blackout", v, p)
			}
			if p.AgeTicks <= int64(cl.cfg.StalenessTTL) {
				t.Fatalf("node %d: stale peer age %d within TTL %d", v, p.AgeTicks, cl.cfg.StalenessTTL)
			}
		}
		ti := nodeAdmin{c: cl, nd: cl.Node(v)}.AdminTree()
		if len(ti.Children) != 0 {
			t.Fatalf("node %d: stale cache still yields children %v", v, ti.Children)
		}
	}
	if n := cl.Stats().StalenessExpiries; n != 2*g.N() {
		t.Fatalf("expiries = %d, want one per directed ring edge (%d)", n, 2*g.N())
	}
}

// TestMetricsMatchStats: between ticks, a metrics snapshot and Stats()
// agree exactly — both read the same per-node atomics.
func TestMetricsMatchStats(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g := graph.RandomConnected(9, 0.35, rng)
	cl, err := New(g, spanning.Algorithm{}, NewChanTransport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.InitArbitrary(rng)
	ticks, ok := cl.RunUntilQuiet(4000, quietTicks)
	if !ok {
		t.Fatal("no quiet")
	}

	st := cl.Stats()
	snap := cl.Metrics().Snapshot()
	checks := map[string]int{
		"ss_cluster_frames_sent_total":        st.FramesSent,
		"ss_cluster_bytes_sent_total":         st.BytesSent,
		"ss_cluster_frames_received_total":    st.FramesRecv,
		"ss_cluster_frames_rejected_total":    st.RxRejected,
		"ss_cluster_heartbeats_applied_total": st.HeartbeatsApplied,
		"ss_cluster_register_writes_total":    st.RegisterWrites,
		"ss_cluster_staleness_expiries_total": st.StalenessExpiries,
		"ss_cluster_packets_forwarded_total":  st.PacketsForwarded,
		"ss_cluster_packets_dropped_total":    st.PacketsDropped,
		"ss_cluster_anchor_frames_total":      st.AnchorsSent,
		"ss_cluster_delta_frames_total":       st.DeltasSent,
		"ss_cluster_resync_frames_total":      st.ResyncsSent,
		"ss_cluster_delta_misses_total":       st.DeltaMisses,
		"ss_cluster_nodes":                    g.N(),
		"ss_cluster_ticks":                    int(cl.Ticks()),
		"ss_cluster_changed_last_tick":        cl.ChangedLastTick(),
		"ss_cluster_ticks_to_quiet":           ticks,
	}
	for name, want := range checks {
		got, ok := snap[name]
		if !ok {
			t.Errorf("metric %s not exposed", name)
			continue
		}
		if got != float64(want) {
			t.Errorf("%s = %v, Stats says %d", name, got, want)
		}
	}
	if snap["ss_cluster_quiet_ticks"] < float64(quietTicks) {
		t.Errorf("quiet_ticks = %v, want >= %d", snap["ss_cluster_quiet_ticks"], quietTicks)
	}
	if snap["ss_cluster_heartbeat_interval_ticks_count"] == 0 {
		t.Error("heartbeat cadence histogram empty")
	}
	if snap["ss_cluster_frame_bytes_count"] == 0 {
		t.Error("frame-size histogram empty")
	}
	// The default config runs the delta protocol: a converged run has
	// both anchors (initial + periodic re-anchors) and deltas on record.
	if st.AnchorsSent == 0 || st.DeltasSent == 0 {
		t.Errorf("delta protocol idle: anchors=%d deltas=%d", st.AnchorsSent, st.DeltasSent)
	}
	if snap[`ss_transport_frames_delivered_total{transport="chan"}`] == 0 {
		t.Error("chan transport counters not registered")
	}
	// Once quiet, register writes stay flat — the observable silence.
	writesBefore := cl.Stats().RegisterWrites
	for i := 0; i < 20; i++ {
		cl.Tick()
	}
	if w := cl.Stats().RegisterWrites; w != writesBefore {
		t.Errorf("register writes moved after quiet: %d -> %d", writesBefore, w)
	}
}

// TestFaultTransportMetrics: the fault wrapper exposes its accounting
// under its own transport label and forwards the inner transport's.
func TestFaultTransportMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := graph.Ring(6)
	ft := NewFaultTransport(NewChanTransport(), FaultConfig{Seed: 59, Loss: 0.3})
	cl, err := New(g, spanning.Algorithm{}, ft, Config{StalenessTTL: 24})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.InitArbitrary(rng)
	converge(t, cl, 20000)

	snap := cl.Metrics().Snapshot()
	if snap[`ss_transport_frames_offered_total{transport="fault"}`] == 0 {
		t.Error("fault wrapper counters not registered")
	}
	if snap[`ss_transport_frames_lost_total{transport="fault"}`] == 0 {
		t.Error("losses not exposed")
	}
	if snap[`ss_transport_frames_delivered_total{transport="chan"}`] == 0 {
		t.Error("inner chan transport not forwarded")
	}
}

// TestScrapeDuringServe: the free-running cluster is observed while it
// runs — Stats, metrics snapshots, admin endpoints over live HTTP, and
// a full crawl, all concurrent with Serve. Run under -race this is the
// "observe a live cluster" safety contract.
func TestScrapeDuringServe(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	rng := rand.New(rand.NewSource(61))
	g := graph.RandomConnected(10, 0.3, rng)
	tr := NewUDPTransport()
	defer tr.Close()
	cl, err := New(g, spanning.Algorithm{}, tr, Config{Interval: time.Millisecond, StalenessTTL: 64})
	if err != nil {
		t.Fatal(err)
	}
	cl.InitArbitrary(rng)

	admin, err := cl.ServeAdmin()
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- cl.Serve(ctx) }()
	defer func() { cancel(); <-served }()

	// Hammer the observation plane while the cluster free-runs.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	hub := cl.AdminHub()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cl.Stats()
				cl.Metrics().Snapshot()
				for _, v := range g.Nodes() {
					hub.Self(v)
					hub.Peers(v)
				}
			}
		}()
	}

	// Wait for the free-running cluster to stabilize.
	deadline := time.Now().Add(20 * time.Second)
	silent := false
	for time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		net, err := cl.Mirror()
		if err != nil {
			t.Fatal(err)
		}
		if net.Silent() {
			if _, err := spanning.ExtractTree(net); err == nil {
				silent = true
				break
			}
		}
	}
	close(stop)
	wg.Wait()
	if !silent {
		t.Fatal("no silent tree within deadline")
	}

	// Crawl the live deployment over HTTP from one seed address.
	hc := ops.NewHTTPClient(5 * time.Second)
	rep, err := ops.CrawlAddr(hc, admin.Addr(g.MinID()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Visited() != g.N() || len(rep.Errors) != 0 {
		t.Fatalf("crawl visited %d of %d, errors %v", rep.Visited(), g.N(), rep.Errors)
	}
	if diffs := rep.DiffParents(mirrorParents(t, cl)); len(diffs) != 0 {
		t.Fatalf("live crawl diverges from mirror:\n%s", strings.Join(diffs, "\n"))
	}
	// Every crawled node carries its own admin address for the next hop.
	for id, info := range rep.Nodes {
		if info.AdminAddr != admin.Addr(id) {
			t.Fatalf("node %d advertises %q, bound at %q", id, info.AdminAddr, admin.Addr(id))
		}
	}
}

// TestMetricsWideCluster: aggregate (not per-node) exposition keeps the
// scrape small and consistent on a wide deployment.
func TestMetricsWideCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("wide cluster in -short mode")
	}
	g := graph.Ring(2048)
	cl, err := New(g, spanning.Algorithm{}, NewChanTransport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.InitArbitrary(rand.New(rand.NewSource(67)))
	for i := 0; i < 3; i++ {
		cl.Tick()
	}
	var b strings.Builder
	cl.Metrics().WritePrometheus(&b)
	if lines := strings.Count(b.String(), "\n"); lines > 200 {
		t.Fatalf("exposition is %d lines for 2048 nodes — per-node series leaked into the registry", lines)
	}
	st := cl.Stats()
	snap := cl.Metrics().Snapshot()
	if snap["ss_cluster_frames_sent_total"] != float64(st.FramesSent) {
		t.Fatalf("wide scrape inconsistent: %v vs %d", snap["ss_cluster_frames_sent_total"], st.FramesSent)
	}
}
