package cluster

import (
	"fmt"
	"net"
	"slices"
	"sync"
	"sync/atomic"

	"silentspan/internal/graph"
	"silentspan/internal/ops"
)

// UDPTransport carries frames over real loopback UDP sockets: each
// endpoint binds its own datagram socket, a reader goroutine feeds the
// inbox, and sends resolve the destination's bound address through a
// shared directory. UDP already provides the full adversarial fault
// menu in the wild (drop, duplicate, reorder); FaultTransport can wrap
// this transport to force those faults deterministically on loopback,
// where the kernel is usually too polite to inject them.
//
// The transport is async-only: endpoints have a notify channel and no
// lockstep Step, so clusters run it with Serve.
type UDPTransport struct {
	mu    sync.Mutex
	addrs map[graph.NodeID]*net.UDPAddr
	eps   []*udpEndpoint

	datagramsSent atomic.Int64
	datagramsRecv atomic.Int64
	bytesSent     atomic.Int64
	bytesRecv     atomic.Int64
	sendErrors    atomic.Int64
}

// RegisterMetrics exposes the socket-level counters.
func (tr *UDPTransport) RegisterMetrics(reg *ops.Registry) {
	labels := ops.Labels{"transport": "udp"}
	reg.CounterFunc("ss_transport_datagrams_sent_total", "Datagrams written to loopback sockets.", labels,
		func() float64 { return float64(tr.datagramsSent.Load()) })
	reg.CounterFunc("ss_transport_datagrams_received_total", "Datagrams read from loopback sockets.", labels,
		func() float64 { return float64(tr.datagramsRecv.Load()) })
	reg.CounterFunc("ss_transport_sent_bytes_total", "Bytes written to loopback sockets.", labels,
		func() float64 { return float64(tr.bytesSent.Load()) })
	reg.CounterFunc("ss_transport_received_bytes_total", "Bytes read from loopback sockets.", labels,
		func() float64 { return float64(tr.bytesRecv.Load()) })
	reg.CounterFunc("ss_transport_send_errors_total", "Socket write failures.", labels,
		func() float64 { return float64(tr.sendErrors.Load()) })
}

// NewUDPTransport returns an empty UDP transport on loopback.
func NewUDPTransport() *UDPTransport {
	return &UDPTransport{addrs: make(map[graph.NodeID]*net.UDPAddr)}
}

type udpEndpoint struct {
	tr   *UDPTransport
	id   graph.NodeID
	conn *net.UDPConn
	// bcastAddrs is Broadcast's reusable address scratch (only the
	// owning node's goroutine broadcasts).
	bcastAddrs []*net.UDPAddr

	mu     sync.Mutex
	in     [][]byte
	notify chan struct{}
	closed bool
}

// maxFrame bounds one datagram read. Register frames are tens of
// bytes; anything larger is foreign traffic and will fail to decode.
const maxFrame = 64 * 1024

// Open implements Transport: bind a loopback socket for id and start
// its reader.
func (tr *UDPTransport) Open(id graph.NodeID) (Endpoint, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
	if err != nil {
		return nil, fmt.Errorf("cluster: udp bind for node %d: %w", id, err)
	}
	ep := &udpEndpoint{tr: tr, id: id, conn: conn, notify: make(chan struct{}, 1)}
	tr.mu.Lock()
	if _, dup := tr.addrs[id]; dup {
		tr.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("cluster: node %d already attached", id)
	}
	tr.addrs[id] = conn.LocalAddr().(*net.UDPAddr)
	tr.eps = append(tr.eps, ep)
	tr.mu.Unlock()
	go ep.readLoop()
	return ep, nil
}

// Evict implements the membership hook (see the evictor interface):
// drop the departing node's id→addr directory entry and endpoint
// registration. Without this a rejoining incarnation would fail Open
// ("already attached") and, worse, survivors' directory lookups would
// keep resolving the id to the dead incarnation's socket, silently
// black-holing every frame sent to the rejoiner.
func (tr *UDPTransport) Evict(id graph.NodeID) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	delete(tr.addrs, id)
	for i, ep := range tr.eps {
		if ep.id == id {
			tr.eps = slices.Delete(tr.eps, i, i+1)
			break
		}
	}
}

// Close implements Transport.
func (tr *UDPTransport) Close() error {
	tr.mu.Lock()
	eps := tr.eps
	tr.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

func (ep *udpEndpoint) readLoop() {
	buf := make([]byte, maxFrame)
	for {
		n, _, err := ep.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		frame := append([]byte(nil), buf[:n]...)
		ep.tr.datagramsRecv.Add(1)
		ep.tr.bytesRecv.Add(int64(n))
		ep.mu.Lock()
		ep.in = append(ep.in, frame)
		ep.mu.Unlock()
		select {
		case ep.notify <- struct{}{}:
		default:
		}
	}
}

// Send implements Endpoint.
func (ep *udpEndpoint) Send(to graph.NodeID, frame []byte) error {
	ep.tr.mu.Lock()
	addr, ok := ep.tr.addrs[to]
	ep.tr.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: node %d not attached", to)
	}
	return ep.write(frame, addr)
}

func (ep *udpEndpoint) write(frame []byte, addr *net.UDPAddr) error {
	_, err := ep.conn.WriteToUDP(frame, addr)
	if err != nil {
		ep.tr.sendErrors.Add(1)
	} else {
		ep.tr.datagramsSent.Add(1)
		ep.tr.bytesSent.Add(int64(len(frame)))
	}
	return err
}

// Broadcast implements Endpoint: one directory lookup and one
// counter-bookkeeping round for the whole fan-out, then a write per
// destination (the portable stdlib has no sendmmsg; the dominant
// per-Send cost here was the directory lock, not the syscall).
func (ep *udpEndpoint) Broadcast(dsts []graph.NodeID, frame []byte) error {
	ep.tr.mu.Lock()
	ep.bcastAddrs = ep.bcastAddrs[:0]
	for _, to := range dsts {
		ep.bcastAddrs = append(ep.bcastAddrs, ep.tr.addrs[to])
	}
	ep.tr.mu.Unlock()
	var firstErr error
	for i, addr := range ep.bcastAddrs {
		if addr == nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: node %d not attached", dsts[i])
			}
			continue
		}
		if err := ep.write(frame, addr); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Drain implements Endpoint.
func (ep *udpEndpoint) Drain(into [][]byte) [][]byte {
	ep.mu.Lock()
	into = append(into, ep.in...)
	ep.in = ep.in[:0]
	ep.mu.Unlock()
	return into
}

// Notify implements Endpoint.
func (ep *udpEndpoint) Notify() <-chan struct{} { return ep.notify }

// Close implements Endpoint.
func (ep *udpEndpoint) Close() error {
	ep.mu.Lock()
	closed := ep.closed
	ep.closed = true
	ep.mu.Unlock()
	if closed {
		return nil
	}
	return ep.conn.Close()
}
