package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"silentspan/internal/graph"
	"silentspan/internal/spanning"
	"silentspan/internal/trees"
)

// TestBackoffCapDerivation: the fill table for the keep-alive back-off
// cap. The invariant under test is the staleness-safety arithmetic: a
// quiet sender emits one keep-alive per cap ticks, so the default cap
// (TTL−2)/4 keeps a peer's observed age under the TTL through three
// consecutive lost keep-alives, and no explicit value may exceed the
// (TTL−2)/2 hard clamp (one tolerated loss).
func TestBackoffCapDerivation(t *testing.T) {
	cases := []struct {
		name         string
		hb, ttl, cap int
		want         int
	}{
		{"defaults", 0, 0, 0, 2},      // ttl 12 → (12−2)/4
		{"cert-shape", 1, 48, 0, 11},  // (48−2)/4
		{"wide-ttl", 1, 128, 0, 31},   // (128−2)/4
		{"hb-dominates", 4, 12, 0, 4}, // max(hb, (ttl−2)/4)
		{"explicit-under-clamp", 1, 48, 20, 20},
		{"explicit-at-clamp", 1, 48, 23, 23},   // (48−2)/2
		{"explicit-over-clamp", 1, 48, 40, 23}, // clamped
		{"explicit-far-over", 1, 12, 100, 5},   // (12−2)/2
	}
	for _, tc := range cases {
		cfg := Config{HeartbeatEvery: tc.hb, StalenessTTL: tc.ttl, BackoffCap: tc.cap}
		cfg.fill()
		if cfg.BackoffCap != tc.want {
			t.Errorf("%s: cap = %d, want %d", tc.name, cfg.BackoffCap, tc.want)
		}
		if hard := (cfg.StalenessTTL - 2) / 2; cfg.BackoffCap > hard && cfg.BackoffCap > cfg.HeartbeatEvery {
			t.Errorf("%s: cap %d exceeds the (TTL−2)/2 safety clamp %d", tc.name, cfg.BackoffCap, hard)
		}
	}
}

// TestBackoffNeverExpiresFresh: across the TTL boundary table, a
// converged cluster idling under keep-alive back-off never lets a live
// peer expire on a clean transport — the cap-vs-TTL derivation is
// exactly what makes the quiet cadence safe, down to the smallest TTL.
// Under 30% loss an expiry is the transport's doing, not the cadence's:
// there the bound is that expiries stay rare (a broken cap would flap
// every peer every TTL) and the cluster re-silences afterward.
func TestBackoffNeverExpiresFresh(t *testing.T) {
	for _, ttl := range []int{8, 12, 48, 128} {
		for _, lossy := range []bool{false, true} {
			name := map[bool]string{false: "clean", true: "lossy"}[lossy]
			t.Run(fmt.Sprintf("ttl-%d/%s", ttl, name), func(t *testing.T) {
				g := graph.Ring(8)
				var tr Transport = NewChanTransport()
				if lossy {
					tr = NewFaultTransport(tr, FaultConfig{Seed: int64(ttl), Loss: 0.3})
				}
				cl, err := New(g, spanning.Algorithm{}, tr, Config{StalenessTTL: ttl})
				if err != nil {
					t.Fatal(err)
				}
				defer cl.Stop()
				cl.InitArbitrary(rand.New(rand.NewSource(21)))
				converge(t, cl, 20000)
				base := cl.Stats().StalenessExpiries
				idle := 6 * ttl
				for i := 0; i < idle; i++ {
					cl.Tick()
				}
				n := cl.Stats().StalenessExpiries - base
				if !lossy && n != 0 {
					t.Fatalf("ttl=%d: %d live peers expired while idling under back-off on a clean transport", ttl, n)
				}
				// A runaway cadence would expire every ring peer once per
				// TTL: 2·M·idle/ttl expiries. Rare transport-induced ones
				// must stay far under that.
				if lossy && n > 2*g.M() {
					t.Fatalf("ttl=%d: %d expiries over %d idle ticks under loss (cadence outrunning the TTL?)", ttl, n, idle)
				}
				converge(t, cl, 20000)
				checkSilentTree(t, cl)
			})
		}
	}
}

// TestCadenceSnapsBack: once idle gaps reach the back-off cap, a
// single register write makes the writer broadcast on its very next
// tick — the gap resets to the base interval instead of waiting out
// the backed-off keep-alive — and the cluster re-converges.
func TestCadenceSnapsBack(t *testing.T) {
	g := graph.Ring(8)
	cl, err := New(g, spanning.Algorithm{}, NewChanTransport(), Config{StalenessTTL: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.InitArbitrary(rand.New(rand.NewSource(33)))
	converge(t, cl, 4000)
	cap := cl.cfg.BackoffCap

	// Let every node's keep-alive gap climb to the cap, then verify the
	// idle wire really is sparse: over one cap-sized window the whole
	// ring broadcasts at most ~once per node (vs once per node per tick
	// at the base cadence).
	for i := 0; i < 6*cap; i++ {
		cl.Tick()
	}
	idleBase := cl.Stats().FramesSent
	for i := 0; i < cap; i++ {
		cl.Tick()
	}
	idleFrames := cl.Stats().FramesSent - idleBase
	if budget := 3 * g.M(); idleFrames > budget { // ring: one round = 2M frames
		t.Fatalf("idle window sent %d frames, want <= %d (back-off not engaged)", idleFrames, budget)
	}

	// One register write: the victim must broadcast within one base
	// interval, not one back-off gap.
	victim := g.Nodes()[3]
	nd := cl.Node(victim)
	before := nd.Stats().FramesSent
	cl.SetState(victim, spanning.State{Root: victim, Parent: trees.None, Dist: 0})
	cl.Tick()
	sent := nd.Stats().FramesSent - before
	if sent < len(nd.neighbors) {
		t.Fatalf("victim sent %d frames on the tick after a write, want a full %d-neighbor broadcast", sent, len(nd.neighbors))
	}
	if got := nd.gap; got != uint64(cl.cfg.HeartbeatEvery) {
		t.Fatalf("victim gap = %d after a write, want base interval %d", got, cl.cfg.HeartbeatEvery)
	}
	converge(t, cl, 4000)
	checkSilentTree(t, cl)
}

// TestDeltaAnchorLossHeals: a transport blackout that swallows anchor
// frames leaves receivers holding deltas they cannot apply. The
// protocol must detect the miss (never refreshing a cache from an
// unreadable frame), request a resync, re-anchor, and re-converge to
// the same silent tree.
func TestDeltaAnchorLossHeals(t *testing.T) {
	g := graph.Ring(8)
	ft := NewFaultTransport(NewChanTransport(), FaultConfig{Seed: 7, Loss: 1})
	ft.SetEnabled(false) // clean until the blackout
	// FullEvery 2 forces anchors into the blackout window, so the
	// post-blackout deltas are guaranteed to reference a lost anchor.
	cl, err := New(g, spanning.Algorithm{}, ft, Config{StalenessTTL: 64, FullEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.InitArbitrary(rand.New(rand.NewSource(41)))
	converge(t, cl, 4000)

	// Blackout: every frame lost, while registers keep moving so the
	// senders anchor and delta into the void.
	ft.SetEnabled(true)
	nodes := g.Nodes()
	for i := 0; i < 10; i++ {
		cl.SetState(nodes[i%len(nodes)], spanning.State{Root: nodes[i%len(nodes)], Parent: trees.None, Dist: 0})
		cl.Tick()
	}
	ft.SetEnabled(false)
	miss0 := cl.Stats()

	converge(t, cl, 4000)
	checkSilentTree(t, cl)
	st := cl.Stats()
	if st.DeltaMisses == 0 {
		t.Fatalf("blackout produced no delta misses: %+v", st)
	}
	if st.ResyncsSent <= miss0.ResyncsSent {
		t.Fatalf("no resync requested after the blackout: %+v", st)
	}
	if st.AnchorsSent == 0 || st.DeltasSent == 0 {
		t.Fatalf("delta protocol not exercised: %+v", st)
	}
}

// TestDeltaDupReorder: a duplicating, heavily reordering transport
// cannot corrupt the delta stream — anchored (not chained) deltas plus
// the per-sender seq filter make replays and stragglers harmless.
func TestDeltaDupReorder(t *testing.T) {
	g := graph.Ring(8)
	ft := NewFaultTransport(NewChanTransport(), FaultConfig{
		Seed: 13, Dup: 0.4, Delay: 0.4, MaxDelayTicks: 6})
	cl, err := New(g, spanning.Algorithm{}, ft, Config{StalenessTTL: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.InitArbitrary(rand.New(rand.NewSource(43)))
	converge(t, cl, 20000)
	checkSilentTree(t, cl)
	st := cl.Stats()
	if st.RxRejected == 0 {
		t.Fatalf("duplicates were never rejected: %+v", st)
	}
	if fs := ft.Stats(); fs.Duplicated == 0 || fs.Delayed == 0 {
		t.Fatalf("fault profile unused: %+v", fs)
	}
}
