// Package cluster executes the repository's self-stabilizing algorithms
// over real transports instead of the simulator: each node is an
// independent goroutine-actor owning only its local register and a
// cache of its neighbors' last heartbeat states, exchanged as
// checksummed wire frames (internal/wire) over a pluggable Transport.
//
// This is the classic shared-memory→message-passing transform: a node
// periodically broadcasts its register; neighbors cache the last
// received copy; the transition function δ is evaluated against the
// cache, presented to the unmodified algorithm through the
// runtime.NewView adapter seam. Stale cache entries (no heartbeat
// within StalenessTTL) read as nil — unknown, hence locally
// inconsistent — so a node never acts on information older than the
// staleness bound. The transform preserves silence (stabilized
// clusters exchange only constant-size keep-alive heartbeats, and
// registers stop changing) and the Θ(log n) register bound (a frame
// carries one gamma-coded register plus a constant envelope).
//
// Two execution modes share the node logic:
//
//   - Lockstep (Tick/RunUntilQuiet, over a Stepper transport such as
//     ChanTransport): nodes run their ticks concurrently between two
//     barriers; frames travel at the barrier in deterministic order.
//     Same seed ⇒ identical execution trace, which is what the
//     certification campaigns and the determinism test rely on.
//   - Free-running (Serve, over an async transport such as
//     UDPTransport): every node loops on its own timer and its
//     endpoint's notify channel, with no global coordination — the
//     deployment shape.
//
// A Gateway (gateway.go) rides on top, maintaining a
// routing.LiveLabeler over the live registers and carrying routed
// packets hop-by-hop as data frames through the same transport.
package cluster

import (
	"context"
	"fmt"
	"hash"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"silentspan/internal/graph"
	"silentspan/internal/ops"
	"silentspan/internal/runtime"
	"silentspan/internal/trace"
	"silentspan/internal/wire"
)

// Config parameterizes a cluster. Zero values take the documented
// defaults.
type Config struct {
	// HeartbeatEvery is the keep-alive period in ticks: a node
	// rebroadcasts its register every this many ticks even without a
	// change (default 1; changes always broadcast immediately).
	HeartbeatEvery int
	// StalenessTTL is the cache expiry in local ticks: a neighbor not
	// heard from for longer reads as unknown (nil state). Must comfortably
	// exceed HeartbeatEvery plus the worst transport delay, or live
	// neighbors flap in and out of existence (default 12).
	StalenessTTL int
	// MaxHold is a parked packet's stall budget in ticks before it is
	// dropped (default 256 — labelings heal within a convergence).
	MaxHold int
	// Interval is the free-running tick period (default 2ms).
	Interval time.Duration
	// BackoffCap bounds the keep-alive back-off in ticks: while a node's
	// register is quiet its heartbeat gap doubles per keep-alive up to
	// this cap. The default is max(HeartbeatEvery, (StalenessTTL−2)/4),
	// so a peer's observed age stays under StalenessTTL even through
	// three consecutive lost keep-alives; fill hard-clamps any explicit
	// value to (StalenessTTL−2)/2 (one tolerated loss) — beyond that a
	// merely quiet neighbor would flap stale.
	BackoffCap int
	// MinGap is the minimum ticks between frames triggered by register
	// changes (default 1): a burst of moves coalesces instead of
	// broadcasting per change.
	MinGap int
	// FullEvery re-anchors the delta stream with a self-contained frame
	// every this many broadcasts (default 16), bounding how long a
	// receiver that lost the anchor waits before the stream self-heals
	// even without its resync request getting through.
	FullEvery int
	// QuietWindow is the termination detector's local-quiet window in
	// ticks: a node claims its own silence only after this many ticks
	// without a register write or membership event. The default is
	// StalenessTTL — comfortably above the freshness-pull repair horizon
	// (~1.5·BackoffCap), so a lost frame's delayed repair write cannot
	// race an already-launched quiet claim (DESIGN.md §13).
	QuietWindow int
	// DisableDelta reverts to classic full-state heartbeat frames —
	// the pre-delta wire behavior, kept for baselines and bisection.
	DisableDelta bool
	// DisableBackoff pins the keep-alive gap to HeartbeatEvery — the
	// pre-cadence behavior, kept for baselines and bisection.
	DisableBackoff bool
}

func (c *Config) fill() {
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 1
	}
	if c.StalenessTTL == 0 {
		c.StalenessTTL = 12
	}
	if c.MaxHold == 0 {
		c.MaxHold = 256
	}
	if c.Interval == 0 {
		c.Interval = 2 * time.Millisecond
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = max(c.HeartbeatEvery, (c.StalenessTTL-2)/4)
	}
	// Safety clamp: a quiet sender emits one keep-alive per BackoffCap
	// ticks, and the receiver's view of it must never age past the TTL
	// even if one keep-alive is lost (observed age ≈ 2·gap at the loss).
	if hard := (c.StalenessTTL - 2) / 2; c.BackoffCap > hard {
		c.BackoffCap = hard
	}
	c.BackoffCap = max(c.BackoffCap, c.HeartbeatEvery, 1)
	if c.MinGap == 0 {
		c.MinGap = 1
	}
	if c.FullEvery == 0 {
		c.FullEvery = 16
	}
	if c.QuietWindow == 0 {
		c.QuietWindow = c.StalenessTTL
	}
}

// Stats aggregates the cluster's transport activity. It reads atomic
// per-node counters, so it is safe to call at any time — including
// concurrently with Tick or Serve.
type Stats struct {
	FramesSent, BytesSent  int
	FramesRecv, RxRejected int
	HeartbeatsApplied      int
	RegisterWrites         int
	StalenessExpiries      int
	PacketsForwarded       int
	PacketsDropped         int
	// Delta-protocol accounting (all zero with DisableDelta).
	AnchorsSent int
	DeltasSent  int
	ResyncsSent int
	DeltaMisses int
	// Membership accounting (all zero in a churn-free run).
	AdvertsSent       int
	NeighborEvictions int
	Joins             int
	Leaves            int
	Crashes           int
}

// Cluster binds a graph, an algorithm, a wire codec, and a transport
// into a message-passing deployment of the algorithm.
type Cluster struct {
	g     *graph.Graph
	d     *graph.Dense
	alg   runtime.Algorithm
	codec wire.Codec
	tr    Transport
	step  Stepper // nil when the transport is async-only
	cfg   Config

	// net is the membership engine: a runtime.Network over the same
	// graph whose registers stay untouched — the cluster uses only its
	// validated topology mutators (AddNode/RemoveNode/AddEdge/
	// RemoveEdge) and their TopoEvent stream, which the gateway's
	// labeler subscribes to. Mirror() builds fresh networks per call;
	// this one persists so slot recycling and event fan-out match the
	// simulator's churn semantics exactly.
	net *runtime.Network

	// memMu guards the membership view: the nodes slice (nil-holed at
	// vacated dense slots), the seq floors of departed incarnations, and
	// the admin server set. Read-locked for every iteration (ticks,
	// stats, scrapes, snapshots); write-locked by Join/Leave/Crash/
	// AddEdge/RemoveEdge. Lock order is memMu → (nd.mu | gw.labMu);
	// nothing acquires memMu while holding either.
	memMu sync.RWMutex
	nodes []*Node // dense-slot order; nil = vacated slot
	// seqFloor remembers the last heartbeat seq of every departed id: a
	// rejoining incarnation opens its counter above it, so old in-flight
	// frames can never shadow the rejoiner behind receivers' duplicate
	// filters.
	seqFloor map[graph.NodeID]uint64
	admin    *AdminServers // non-nil once ServeAdmin ran

	gw *Gateway
	// stateDirty marks out-of-band register writes (SetState,
	// InitArbitrary, Corrupt) so the next tick refreshes the gateway
	// even if no δ evaluation changed anything.
	stateDirty bool

	// Lockstep coordination. tick/lastChangeTick/changedLast are atomic
	// so the metrics scrape can read convergence gauges while a tick is
	// in flight.
	started        bool
	doneCh         chan struct{}
	tick           atomic.Uint64
	lastChangeTick atomic.Uint64
	changedLast    atomic.Int64

	// Free-running coordination: Join/Leave/Crash spawn and retire
	// actors mid-Serve. serving is flipped under memMu; serveWG carries
	// one unit per live actor plus a sentinel held by Serve itself.
	serving  bool
	serveCtx context.Context
	serveWG  sync.WaitGroup

	// Membership accounting. departed folds retired nodes' final
	// counters so cluster totals stay monotone across churn (a scrape
	// must never see ss_cluster_frames_sent_total decrease because a
	// node left).
	joins, leaves, crashes atomic.Int64
	departed               nodeCounters

	// Termination-detector surface (quiet.go). annRoots is the set of
	// currently announcing tree roots with their announced epochs;
	// announced/annEpoch are its atomic projection for gauges and
	// QuietAnnounced; quietCh carries aggregate transitions. regWrites
	// and lastWriteNS mirror every register write (δ-driven and
	// out-of-band) into one counter and one wall-clock stamp, so the
	// Serve-mode gateway poller and quiet gauge need no O(n) sweeps.
	annMu       sync.Mutex
	annRoots    map[graph.NodeID]uint64
	announced   atomic.Bool
	annEpoch    atomic.Uint64
	quietCh     chan QuietEvent
	regWrites   atomic.Int64
	lastWriteNS atomic.Int64

	// metrics is the cluster's operational registry: counters and
	// gauges over the hot paths, scraped through the admin plane's
	// /metrics endpoint or snapshot directly.
	metrics      *ops.Registry
	hbCadence    *ops.Histogram
	frameBytes   *ops.Histogram
	ticksToQuiet *ops.Gauge

	// trace, when enabled, folds every register change into a running
	// hash — the determinism witness.
	trace hash.Hash64

	// Flight-recorder surface (trace.go): flightCap > 0 arms per-node
	// rings (joiners get one on admit); departedTr retains retired
	// nodes' final rings, bounded by departedTraceCap. Both under memMu.
	flightCap  int
	departedTr []trace.NodeTrace
}

// New builds a cluster over g running alg, opening one endpoint per
// node on tr. The codec is derived from the algorithm. Membership is
// live: Join, Leave, and Crash reshape the cluster at any point,
// including mid-Serve (see membership.go and DESIGN.md §12).
func New(g *graph.Graph, alg runtime.Algorithm, tr Transport, cfg Config) (*Cluster, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("cluster: empty graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("cluster: graph not connected")
	}
	codec, err := wire.ForAlgorithm(alg)
	if err != nil {
		return nil, err
	}
	net, err := runtime.NewNetwork(g, alg)
	if err != nil {
		return nil, err
	}
	d := g.Dense()
	st, _ := tr.(Stepper)
	c := &Cluster{g: g, d: d, alg: alg, codec: codec, tr: tr, step: st, cfg: cfg,
		net: net, seqFloor: make(map[graph.NodeID]uint64),
		annRoots: make(map[graph.NodeID]uint64),
		quietCh:  make(chan QuietEvent, 16)}
	c.cfg.fill()
	c.lastWriteNS.Store(time.Now().UnixNano())
	for i := 0; i < d.Slots(); i++ {
		if !d.LiveAt(i) {
			return nil, fmt.Errorf("cluster: graph has vacated dense slots; coalesce before clustering")
		}
		ep, err := tr.Open(d.ID(i))
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, c.newMember(d.ID(i), i, ep))
	}
	c.registerMetrics()
	return c, nil
}

// newMember builds the actor for dense slot i with a cloned neighbor
// row (the dense rows mutate in place under churn) and its lifecycle
// channels.
func (c *Cluster) newMember(id graph.NodeID, i int, ep Endpoint) *Node {
	neighbors := append([]graph.NodeID(nil), c.d.NeighborIDs(i)...)
	weights := append([]graph.Weight(nil), c.d.Weights(i)...)
	nd := newNode(id, i, c.d.N(), neighbors, weights, ep, c.codec, c.alg)
	nd.tickCh = make(chan uint64, 1)
	nd.stop = make(chan struct{})
	nd.stopped = make(chan struct{})
	nd.noteAnn = c.noteAnnounce
	nd.writeCount = &c.regWrites
	nd.writeClock = &c.lastWriteNS
	return nd
}

// registerMetrics builds the cluster's operational registry. Counters
// over per-node activity are func-backed: the hot paths already
// maintain atomic per-node counters, and the scrape sums them on
// demand — a /metrics read is therefore exactly consistent (±0) with
// Stats(), because both read the same atomics.
func (c *Cluster) registerMetrics() {
	reg := ops.NewRegistry()
	c.metrics = reg
	sum := func(field func(*nodeCounters) *atomic.Int64) func() float64 {
		return func() float64 {
			c.memMu.RLock()
			defer c.memMu.RUnlock()
			t := field(&c.departed).Load()
			for _, nd := range c.nodes {
				if nd == nil {
					continue
				}
				t += field(&nd.stats).Load()
			}
			return float64(t)
		}
	}
	reg.GaugeFunc("ss_cluster_nodes", "Live cluster size.", nil,
		func() float64 {
			c.memMu.RLock()
			defer c.memMu.RUnlock()
			return float64(c.d.N())
		})
	reg.CounterFunc("ss_cluster_joins_total", "Nodes joined into the running cluster.", nil,
		func() float64 { return float64(c.joins.Load()) })
	reg.CounterFunc("ss_cluster_leaves_total", "Nodes retired cooperatively (goodbye broadcast).", nil,
		func() float64 { return float64(c.leaves.Load()) })
	reg.CounterFunc("ss_cluster_crashes_total", "Nodes killed without a goodbye.", nil,
		func() float64 { return float64(c.crashes.Load()) })
	reg.CounterFunc("ss_cluster_adverts_sent_total", "Membership beacons broadcast by (re)joining nodes.", nil,
		sum(func(s *nodeCounters) *atomic.Int64 { return &s.AdvertsSent }))
	reg.CounterFunc("ss_cluster_neighbor_evictions_total", "Neighbor cache entries evicted by goodbyes or reset by adverts.", nil,
		sum(func(s *nodeCounters) *atomic.Int64 { return &s.NeighborEvictions }))
	reg.CounterFunc("ss_cluster_frames_sent_total", "Frames sent by all nodes (heartbeats + data).", nil,
		sum(func(s *nodeCounters) *atomic.Int64 { return &s.FramesSent }))
	reg.CounterFunc("ss_cluster_bytes_sent_total", "Payload bytes sent by all nodes.", nil,
		sum(func(s *nodeCounters) *atomic.Int64 { return &s.BytesSent }))
	reg.CounterFunc("ss_cluster_frames_received_total", "Frames delivered to all nodes.", nil,
		sum(func(s *nodeCounters) *atomic.Int64 { return &s.FramesRecv }))
	reg.CounterFunc("ss_cluster_frames_rejected_total", "Frames rejected (checksum, codec, non-neighbor, stale seq).", nil,
		sum(func(s *nodeCounters) *atomic.Int64 { return &s.RxRejected }))
	reg.CounterFunc("ss_cluster_heartbeats_applied_total", "Heartbeats accepted into neighbor caches.", nil,
		sum(func(s *nodeCounters) *atomic.Int64 { return &s.HeartbeatsApplied }))
	reg.CounterFunc("ss_cluster_register_writes_total", "δ-driven register changes (moves) across all nodes; flat once silent.", nil,
		sum(func(s *nodeCounters) *atomic.Int64 { return &s.RegisterWrites }))
	reg.CounterFunc("ss_cluster_staleness_expiries_total", "Neighbor-cache entries that expired after being heard.", nil,
		sum(func(s *nodeCounters) *atomic.Int64 { return &s.StalenessExpiries }))
	reg.CounterFunc("ss_cluster_packets_forwarded_total", "Routed packet hops forwarded by all nodes.", nil,
		sum(func(s *nodeCounters) *atomic.Int64 { return &s.PacketsForwarded }))
	reg.CounterFunc("ss_cluster_packets_dropped_total", "Routed packets dropped at nodes (hop/stall budget).", nil,
		sum(func(s *nodeCounters) *atomic.Int64 { return &s.PacketsDropped }))
	reg.CounterFunc("ss_cluster_anchor_frames_total", "Self-contained (anchor) heartbeat frames broadcast.", nil,
		sum(func(s *nodeCounters) *atomic.Int64 { return &s.AnchorsSent }))
	reg.CounterFunc("ss_cluster_delta_frames_total", "Delta heartbeat frames broadcast.", nil,
		sum(func(s *nodeCounters) *atomic.Int64 { return &s.DeltasSent }))
	reg.CounterFunc("ss_cluster_resync_frames_total", "Re-anchor requests sent.", nil,
		sum(func(s *nodeCounters) *atomic.Int64 { return &s.ResyncsSent }))
	reg.CounterFunc("ss_cluster_delta_misses_total", "Received deltas dropped for want of their anchor.", nil,
		sum(func(s *nodeCounters) *atomic.Int64 { return &s.DeltaMisses }))
	reg.GaugeFunc("ss_cluster_ticks", "Lockstep ticks driven so far.", nil,
		func() float64 { return float64(c.tick.Load()) })
	reg.GaugeFunc("ss_cluster_changed_last_tick", "Registers that changed in the last lockstep tick (0 = converging toward silence).", nil,
		func() float64 { return float64(c.changedLast.Load()) })
	reg.GaugeFunc("ss_cluster_quiet_ticks", "Consecutive ticks without a register change (wall-clock derived in Serve mode).", nil,
		c.quietTicksGauge)
	reg.GaugeFunc("ss_cluster_detected_quiet", "In-band termination detector: 1 while a tree root announces cluster-wide quiet.", nil,
		func() float64 {
			if c.announced.Load() {
				return 1
			}
			return 0
		})
	c.ticksToQuiet = reg.Gauge("ss_cluster_ticks_to_quiet",
		"Ticks the last RunUntilQuiet consumed to reach quiet (0 until reached).", nil)
	c.hbCadence = reg.Histogram("ss_cluster_heartbeat_interval_ticks",
		"Local ticks between consecutive heartbeat broadcasts per node.", nil,
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	c.frameBytes = reg.Histogram("ss_cluster_frame_bytes",
		"Encoded size of each distinct frame sent (one observation per broadcast, not per fan-out copy).", nil,
		[]float64{8, 16, 24, 32, 48, 64, 128})
	for _, nd := range c.nodes {
		nd.hbCadence = c.hbCadence
		nd.frameBytes = c.frameBytes
	}
	if m, ok := c.tr.(interface{ RegisterMetrics(*ops.Registry) }); ok {
		m.RegisterMetrics(reg)
	}
}

// Metrics returns the cluster's operational registry — served at
// /metrics by the admin plane, snapshot-able for benches.
func (c *Cluster) Metrics() *ops.Registry { return c.metrics }

// Graph returns the underlying graph.
func (c *Cluster) Graph() *graph.Graph { return c.g }

// Algorithm returns the algorithm the cluster runs.
func (c *Cluster) Algorithm() runtime.Algorithm { return c.alg }

// Codec returns the wire codec in use.
func (c *Cluster) Codec() wire.Codec { return c.codec }

// Nodes returns the live node count.
func (c *Cluster) Nodes() int {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	return c.d.N()
}

// Node returns the actor for id, or nil.
func (c *Cluster) Node(id graph.NodeID) *Node {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	return c.nodeLocked(id)
}

// nodeLocked resolves id to its live actor; caller holds memMu.
func (c *Cluster) nodeLocked(id graph.NodeID) *Node {
	i, ok := c.d.IndexOf(id)
	if !ok || i >= len(c.nodes) {
		return nil
	}
	return c.nodes[i]
}

// State returns node id's current register content.
func (c *Cluster) State(id graph.NodeID) runtime.State {
	nd := c.Node(id)
	if nd == nil {
		return nil
	}
	return nd.State()
}

// SetState writes node id's register directly — initial configurations
// and fault injection. Call only between ticks (or before Serve).
func (c *Cluster) SetState(id graph.NodeID, s runtime.State) {
	nd := c.Node(id)
	if nd == nil {
		panic(fmt.Sprintf("cluster: unknown node %d", id))
	}
	nd.setState(s)
	c.stateDirty = true
}

// InitArbitrary fills every register with an arbitrary state drawn
// from the algorithm — the adversarial initialization of the model.
// Neighbor caches start empty regardless: a booting cluster knows
// nothing about its neighbors until heartbeats arrive.
func (c *Cluster) InitArbitrary(rng *rand.Rand) {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		v := runtime.NewView(nd.id, nd.n, nd.neighbors, nd.weights, nil, nd.peers)
		nd.setState(c.alg.ArbitraryState(rng, v))
	}
	c.stateDirty = true
}

// Corrupt overwrites k distinct registers with arbitrary states drawn
// from the algorithm — transient faults striking a live deployment.
// Call between ticks. It returns the victims in activation order.
func (c *Cluster) Corrupt(k int, rng *rand.Rand) []graph.NodeID {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	live := make([]*Node, 0, len(c.nodes))
	for _, nd := range c.nodes {
		if nd != nil {
			live = append(live, nd)
		}
	}
	if k > len(live) {
		k = len(live)
	}
	victims := make([]graph.NodeID, 0, k)
	for _, i := range rng.Perm(len(live))[:k] {
		nd := live[i]
		v := runtime.NewView(nd.id, nd.n, nd.neighbors, nd.weights, nd.State(), nd.peers)
		nd.setState(c.alg.ArbitraryState(rng, v))
		victims = append(victims, nd.id)
	}
	c.stateDirty = true
	return victims
}

// EnableTrace arms the execution-trace hash: every subsequent register
// change (tick, slot, rendered state) folds into it in slot order.
func (c *Cluster) EnableTrace() {
	c.trace = fnv.New64a()
}

// TraceSum returns the current trace hash (zero when tracing is off).
func (c *Cluster) TraceSum() uint64 {
	if c.trace == nil {
		return 0
	}
	return c.trace.Sum64()
}

// start launches the per-node actor goroutines (lockstep mode). Caller
// holds memMu (read suffices: the lifecycle fields it writes are only
// touched by the single coordinator goroutine).
func (c *Cluster) start() {
	if c.started {
		return
	}
	c.started = true
	c.doneCh = make(chan struct{}, 4*len(c.nodes)+64)
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		c.spawnLockstep(nd)
	}
}

// spawnLockstep runs one node's lockstep actor loop: park on the tick
// channel, run the round, signal the barrier. A closed stop channel
// retires the actor between rounds. Caller holds memMu.
func (c *Cluster) spawnLockstep(nd *Node) {
	if nd.running {
		return
	}
	nd.running = true
	go func() {
		defer close(nd.stopped)
		for {
			select {
			case <-nd.stop:
				return
			case t := <-nd.tickCh:
				nd.tick(t, &c.cfg, c.gw)
				c.doneCh <- struct{}{}
			}
		}
	}()
}

// Stop retires the actor goroutines (idempotent). The cluster can be
// ticked again afterwards: the next Tick respawns the actors.
func (c *Cluster) Stop() {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if !c.started {
		return
	}
	c.started = false
	for _, nd := range c.nodes {
		if nd == nil || !nd.running {
			continue
		}
		close(nd.stop)
		<-nd.stopped
		nd.running = false
		nd.stop = make(chan struct{})
		nd.stopped = make(chan struct{})
	}
}

// Tick runs one lockstep round: all node actors execute their tick
// concurrently between two barriers, then the transport delivers what
// they sent, in deterministic order. Requires a Stepper transport.
func (c *Cluster) Tick() {
	if c.step == nil {
		panic("cluster: Tick over a transport with no lockstep Step; use Serve")
	}
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	c.start()
	tick := c.tick.Add(1)
	live := 0
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		nd.tickCh <- tick
		live++
	}
	for i := 0; i < live; i++ {
		<-c.doneCh
	}
	c.step.Step(tick)
	changed := int64(0)
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		if nd.changed {
			changed++
			if c.trace != nil {
				fmt.Fprintf(c.trace, "%d:%d:%s;", tick, nd.slot, nd.self)
			}
		}
	}
	c.changedLast.Store(changed)
	if changed > 0 {
		c.lastChangeTick.Store(tick)
	}
	// The labeling only moves when some register did: a quiet cluster
	// skips the O(n) register sweep entirely instead of re-reading every
	// node per tick forever.
	if c.gw != nil && (changed > 0 || c.stateDirty) {
		c.gw.refresh()
		c.stateDirty = false
	}
}

// Ticks returns the lockstep tick count so far.
func (c *Cluster) Ticks() uint64 { return c.tick.Load() }

// ChangedLastTick returns how many registers changed in the last tick.
func (c *Cluster) ChangedLastTick() int { return int(c.changedLast.Load()) }

// RunUntilQuiet ticks until no register has changed for quiet
// consecutive ticks — the message-passing image of the paper's silence
// — or until maxTicks. It returns the ticks consumed and whether quiet
// was reached.
//
// quiet must exceed the heartbeat period plus the transport's worst
// delivery delay: then every frame still in flight was sent while all
// registers already held their current values, so it carries a state
// the receiver's cache either has (newer seq, equal content — a no-op
// update) or has superseded, and stability is a true fixpoint. The
// keep-alive heartbeats themselves never stop — silence means registers
// and caches stop changing, not that links go dark.
func (c *Cluster) RunUntilQuiet(maxTicks, quiet int) (int, bool) {
	// Clamp the window against the effective keep-alive cadence: with
	// back-off enabled a quiet sender's gap legitimately grows to
	// BackoffCap, so a window at or under it could declare quiet while a
	// lost-keep-alive repair (staleness expiry → rewrite) is still
	// pending between two backed-off frames.
	eff := c.cfg.HeartbeatEvery
	if !c.cfg.DisableBackoff {
		eff = c.cfg.BackoffCap
	}
	if quiet <= eff {
		quiet = eff + 1
	}
	// A new run invalidates the previous run's convergence measurement:
	// hold 0 until (and unless) this run reaches quiet, so a scrape
	// during re-stabilization never reports the old run's value.
	c.ticksToQuiet.Set(0)
	start := c.tick.Load()
	for c.tick.Load()-start < uint64(maxTicks) {
		c.Tick()
		if c.tick.Load()-c.lastChangeTick.Load() >= uint64(quiet) {
			ticks := int(c.tick.Load() - start)
			c.ticksToQuiet.Set(int64(ticks))
			return ticks, true
		}
	}
	return int(c.tick.Load() - start), false
}

// Serve runs the cluster free-running until ctx is cancelled: every
// node loops on its own timer and its endpoint's notify channel — no
// global coordination, the deployment shape. Requires endpoints with a
// notify channel (async transports such as UDPTransport).
func (c *Cluster) Serve(ctx context.Context) error {
	c.memMu.Lock()
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		if nd.ep.Notify() == nil {
			c.memMu.Unlock()
			return fmt.Errorf("cluster: transport endpoint of node %d has no notify channel; use Tick", nd.id)
		}
	}
	c.serving = true
	c.serveCtx = ctx
	// The sentinel keeps serveWG's counter positive for the whole
	// serving window, so Join may Add concurrently with the final Wait.
	c.serveWG.Add(1)
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		c.spawnServe(nd)
	}
	c.memMu.Unlock()
	if c.gw != nil {
		go func() {
			ticker := time.NewTicker(c.cfg.Interval)
			defer ticker.Stop()
			// The labeling only moves when some register did: a quiet
			// cluster skips the O(n) register sweep instead of re-reading
			// every node per tick forever. regWrites is the cluster-level
			// write counter every setState bumps — monotone, one atomic
			// load per poll, where the per-node Stats() sweep it replaced
			// was O(n) under memMu even when nothing moved.
			lastWrites := int64(-1)
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if w := c.regWrites.Load(); w != lastWrites {
						lastWrites = w
						c.memMu.RLock()
						c.gw.refresh()
						c.memMu.RUnlock()
					}
				}
			}
		}()
	}
	<-ctx.Done()
	c.memMu.Lock()
	c.serving = false
	c.memMu.Unlock()
	c.serveWG.Done()
	c.serveWG.Wait()
	return ctx.Err()
}

// spawnServe runs one node's free-running actor loop on its own timer
// and notify channel. Caller holds memMu with serving true (the
// sentinel guarantees serveWG's counter is positive, making the Add
// here safe against the final Wait).
func (c *Cluster) spawnServe(nd *Node) {
	if nd.running {
		return
	}
	nd.running = true
	c.serveWG.Add(1)
	ctx := c.serveCtx
	go func() {
		defer c.serveWG.Done()
		defer close(nd.stopped)
		ticker := time.NewTicker(c.cfg.Interval)
		defer ticker.Stop()
		for {
			// A closed stop channel must win even when the ticker is also
			// ready, so retirement is checked on its own first.
			select {
			case <-ctx.Done():
				return
			case <-nd.stop:
				return
			default:
			}
			select {
			case <-ctx.Done():
				return
			case <-nd.stop:
				return
			case <-nd.ep.Notify():
				// Receive path: ingest only. Stepping and broadcasting
				// stay on the ticker, so the send rate is bound to
				// Interval no matter how fast frames arrive.
				nd.absorb(&c.cfg, c.gw)
			case <-ticker.C:
				nd.tick(nd.localTick+1, &c.cfg, c.gw)
			}
		}
	}()
}

// Snapshot appends every node's current register in dense-slot order —
// the bridge to the simulator's spec checkers: load the snapshot into a
// runtime.Network over the same graph and every shared-memory assertion
// (silence, closure, spec, register bounds) applies verbatim.
func (c *Cluster) Snapshot(into []runtime.State) []runtime.State {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		into = append(into, nd.State())
	}
	return into
}

// Mirror loads the cluster's registers into a fresh runtime.Network
// over the same graph, for spec checking.
func (c *Cluster) Mirror() (*runtime.Network, error) {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	net, err := runtime.NewNetwork(c.g, c.alg)
	if err != nil {
		return nil, err
	}
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		if s := nd.State(); s != nil {
			net.SetState(nd.id, s)
		}
	}
	return net, nil
}

// Stats sums the per-node transport counters. The counters are atomic,
// so this is safe at any time — mid-tick, during Serve, or from a
// metrics scrape.
func (c *Cluster) Stats() Stats {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	var s Stats
	s.Joins = int(c.joins.Load())
	s.Leaves = int(c.leaves.Load())
	s.Crashes = int(c.crashes.Load())
	// Retired nodes' final counters live on in the departed aggregate,
	// so totals are monotone across churn.
	snaps := []NodeStats{c.departed.snapshot()}
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		snaps = append(snaps, nd.stats.snapshot())
	}
	for _, ns := range snaps {
		s.FramesSent += ns.FramesSent
		s.BytesSent += ns.BytesSent
		s.FramesRecv += ns.FramesRecv
		s.RxRejected += ns.RxRejected
		s.HeartbeatsApplied += ns.HeartbeatsApplied
		s.RegisterWrites += ns.RegisterWrites
		s.StalenessExpiries += ns.StalenessExpiries
		s.PacketsForwarded += ns.PacketsForwarded
		s.PacketsDropped += ns.PacketsDropped
		s.AnchorsSent += ns.AnchorsSent
		s.DeltasSent += ns.DeltasSent
		s.ResyncsSent += ns.ResyncsSent
		s.DeltaMisses += ns.DeltaMisses
		s.AdvertsSent += ns.AdvertsSent
		s.NeighborEvictions += ns.NeighborEvictions
	}
	return s
}

// MaxRegisterBits returns the largest register over all nodes under the
// natural encoding — the space measure of the paper, unchanged by the
// transform.
func (c *Cluster) MaxRegisterBits() int {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	max := 0
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		if s := nd.State(); s != nil {
			if b := s.EncodedBits(); b > max {
				max = b
			}
		}
	}
	return max
}
