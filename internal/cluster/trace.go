package cluster

import (
	"time"

	"silentspan/internal/graph"
	"silentspan/internal/trace"
	"silentspan/internal/wire"
)

// This file is the cluster side of the causal flight recorder
// (internal/trace, DESIGN.md §14): per-node event rings armed by
// EnableFlightRecorder and drained by FlightTraces / the /gettrace
// admin route. The rings hang off each node behind an atomic pointer,
// so the disabled path is one predictable load-and-branch per hook and
// enabling mid-run needs no coordination with the actors.

// defaultFlightCap is the per-node ring capacity when the caller
// passes none: 8192 events ≈ a few hundred ticks of a busy node.
const defaultFlightCap = 1 << 13

// departedTraceCap bounds the retained final rings of retired nodes so
// a long churn campaign cannot grow the coordinator without bound.
const departedTraceCap = 256

// EnableFlightRecorder arms the causal flight recorder: every live
// node gets a ring of the given capacity (defaultFlightCap when ≤0),
// nodes joining later get one on admit, and retiring nodes' final
// rings are retained (bounded) for post-churn merges. Safe at any
// time, including mid-Serve; idempotent except that the new capacity
// applies only to nodes without a ring yet.
func (c *Cluster) EnableFlightRecorder(capacity int) {
	if capacity <= 0 {
		capacity = defaultFlightCap
	}
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if c.flightCap == 0 {
		// Registered once, and only when the recorder is armed: a
		// recorder-free cluster's exposition stays byte-identical.
		c.metrics.CounterFunc("ss_trace_dropped_total",
			"Flight-recorder events lost to ring overwrites.", nil, c.flightDropped)
	}
	c.flightCap = capacity
	for _, nd := range c.nodes {
		if nd != nil && nd.ring.Load() == nil {
			nd.ring.Store(trace.NewRing(capacity))
		}
	}
}

// flightDropped sums overwrite losses across live rings and retained
// departed rings — the ss_trace_dropped_total collector.
func (c *Cluster) flightDropped() float64 {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	var t uint64
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		if r := nd.ring.Load(); r != nil {
			t += r.Dropped()
		}
	}
	for i := range c.departedTr {
		t += c.departedTr[i].Dropped
	}
	return float64(t)
}

// FlightTraces snapshots every live node's ring plus the retained
// rings of retired nodes — the input to trace.Merge. Safe at any time.
func (c *Cluster) FlightTraces() []trace.NodeTrace {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	out := make([]trace.NodeTrace, 0, len(c.nodes)+len(c.departedTr))
	out = append(out, c.departedTr...)
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		if r := nd.ring.Load(); r != nil {
			evs, dropped := r.Snapshot(nil)
			out = append(out, trace.NodeTrace{Node: nd.id, Dropped: dropped, Events: evs})
		}
	}
	return out
}

// DepartedFlightTraces returns the retained final rings of retired
// nodes (most recent departures last).
func (c *Cluster) DepartedFlightTraces() []trace.NodeTrace {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	return append([]trace.NodeTrace(nil), c.departedTr...)
}

// record appends one event to the node's ring, stamping the mirrored
// write epoch — the hook for call sites outside nd.mu. A nil ring
// (recorder disabled) costs exactly this load and branch.
func (nd *Node) record(k trace.Kind, cl trace.Class, peer graph.NodeID, seq, arg, tick uint64) {
	if r := nd.ring.Load(); r != nil {
		r.Record(trace.Event{Kind: k, Class: cl, Node: nd.id, Peer: peer,
			Seq: seq, Arg: arg, Epoch: nd.epochMirror.Load(), Tick: tick,
			Wall: time.Now().UnixNano()})
	}
}

// recordEpoch is record for call sites that hold nd.mu (or otherwise
// own the detector state) and know the exact epoch.
func (nd *Node) recordEpoch(k trace.Kind, cl trace.Class, peer graph.NodeID, seq, arg, tick, epoch uint64) {
	if r := nd.ring.Load(); r != nil {
		r.Record(trace.Event{Kind: k, Class: cl, Node: nd.id, Peer: peer,
			Seq: seq, Arg: arg, Epoch: epoch, Tick: tick,
			Wall: time.Now().UnixNano()})
	}
}

// recordPacketSelf records a self-addressed packet's launch and
// delivery on the origin's ring: the gateway resolves these without
// the actor ever seeing the packet, so the chain (launch → deliver at
// zero hops, no frame edge) is written here.
func (nd *Node) recordPacketSelf(p wire.Packet) {
	if nd.ring.Load() == nil {
		return
	}
	nd.mu.Lock()
	tick, epoch := nd.localTick, nd.qEpoch
	nd.mu.Unlock()
	nd.recordEpoch(trace.PacketLaunch, trace.ClassData, 0, p.ID, 0, tick, epoch)
	nd.recordEpoch(trace.PacketDeliver, trace.ClassData, 0, p.ID, 0, tick, epoch)
}
