package cluster

import (
	"fmt"
	"slices"
	"sync"

	"silentspan/internal/graph"
	"silentspan/internal/ops"
	"silentspan/internal/routing"
	"silentspan/internal/runtime"
	"silentspan/internal/spanning"
	"silentspan/internal/switching"
	"silentspan/internal/trace"
	"silentspan/internal/trees"
)

// This file is the cluster's admin surface: ops.NodeAdmin implemented
// over live node actors, an in-process Hub for tests and the
// certification crawler, and ServeAdmin binding one loopback HTTP
// socket per node for operators. Everything here reads protocol state
// under the node mutex or through atomic counters, so observing a
// free-running cluster is race-free.

// adminParent normalizes a register's parent pointer for admin
// responses: trees.None (root) and routing.NoParent (foreign/absent
// state) both read as ops.None.
func adminParent(s runtime.State) graph.NodeID {
	p := ParentOf(s)
	if p == routing.NoParent || p == trees.None {
		return ops.None
	}
	return p
}

// adminRoot reads the claimed root out of a register (ops.None when
// the state is foreign or absent).
func adminRoot(s runtime.State) graph.NodeID {
	switch r := s.(type) {
	case spanning.State:
		return r.Root
	default:
		if sw, ok := switching.RegOf(s); ok {
			return sw.Root
		}
	}
	return ops.None
}

// adminDistance reads the claimed distance-to-root (-1 when the
// register carries none, e.g. switching's d=⊥).
func adminDistance(s runtime.State) int {
	switch r := s.(type) {
	case spanning.State:
		return r.Dist
	default:
		if sw, ok := switching.RegOf(s); ok && sw.HasD {
			return sw.D
		}
	}
	return -1
}

// peerSnap is one cache entry read consistently under the node mutex.
type peerSnap struct {
	state runtime.State
	seen  uint64
	seq   uint64
}

// adminSnapshot copies the node's register, clock, neighbor row, and
// neighbor cache under the mutex — the admin plane's consistent read of
// a live actor. The neighbor row is cloned because membership churn
// remaps it in place between reads: peers[j] is always the entry for
// neighbors[j] of the same snapshot.
func (nd *Node) adminSnapshot(peers []peerSnap) (runtime.State, uint64, []graph.NodeID, []peerSnap) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	self, tick := nd.self, nd.localTick
	neighbors := append([]graph.NodeID(nil), nd.neighbors...)
	peers = peers[:0]
	for j := range nd.cache {
		peers = append(peers, peerSnap{state: nd.cache[j], seen: nd.lastSeen[j], seq: nd.lastSeq[j]})
	}
	return self, tick, neighbors, peers
}

// nodeAdmin implements ops.NodeAdmin over one node actor. addrOf, when
// set, resolves peer identities to their admin endpoint addresses —
// the hop the HTTP crawler follows.
type nodeAdmin struct {
	c      *Cluster
	nd     *Node
	addrOf func(graph.NodeID) string
}

func (a nodeAdmin) addr(id graph.NodeID) string {
	if a.addrOf == nil {
		return ""
	}
	return a.addrOf(id)
}

// AdminSelf implements ops.NodeAdmin.
func (a nodeAdmin) AdminSelf() ops.SelfInfo {
	self, tick, neighbors, _ := a.nd.adminSnapshot(nil)
	info := ops.SelfInfo{
		ID:        a.nd.id,
		N:         a.nd.n,
		Algorithm: a.c.alg.Name(),
		Codec:     a.c.codec.Name(),
		Root:      adminRoot(self),
		Parent:    adminParent(self),
		Distance:  adminDistance(self),
		Port:      -1,
		LocalTick: tick,
		AdminAddr: a.addr(a.nd.id),
	}
	if self != nil {
		info.Register = self.String()
		info.RegisterBits = self.EncodedBits()
	}
	if info.Parent != ops.None {
		if j, ok := slices.BinarySearch(neighbors, info.Parent); ok {
			info.Port = j
		}
	}
	return info
}

// AdminPeers implements ops.NodeAdmin: the neighbor cache with the
// same staleness rule the protocol's step applies.
func (a nodeAdmin) AdminPeers() ops.PeersInfo {
	_, tick, neighbors, peers := a.nd.adminSnapshot(nil)
	ttl := uint64(a.c.cfg.StalenessTTL)
	out := ops.PeersInfo{Node: a.nd.id, StalenessTTL: int(ttl), Peers: make([]ops.PeerInfo, 0, len(peers))}
	for j, p := range peers {
		pi := ops.PeerInfo{
			ID:        neighbors[j],
			Seq:       p.seq,
			AgeTicks:  -1,
			Stale:     true,
			AdminAddr: a.addr(neighbors[j]),
		}
		if p.seen != 0 {
			pi.AgeTicks = int64(tick - p.seen)
			pi.Stale = tick-p.seen > ttl
		}
		if p.state != nil {
			pi.Parent = adminParent(p.state)
			pi.Register = p.state.String()
		}
		out.Peers = append(out.Peers, pi)
	}
	return out
}

// AdminTree implements ops.NodeAdmin: the node's one-hop tree view —
// its own parent claim plus the children it learned from heartbeats
// (fresh neighbors whose cached register points here).
func (a nodeAdmin) AdminTree() ops.TreeInfo {
	self, tick, neighbors, peers := a.nd.adminSnapshot(nil)
	ttl := uint64(a.c.cfg.StalenessTTL)
	info := ops.TreeInfo{
		Node:     a.nd.id,
		Root:     adminRoot(self),
		Parent:   adminParent(self),
		Distance: adminDistance(self),
		Children: []graph.NodeID{},
	}
	for j, p := range peers {
		if p.seen == 0 || tick-p.seen > ttl || p.state == nil {
			continue
		}
		if adminParent(p.state) == a.nd.id {
			info.Children = append(info.Children, neighbors[j])
		}
	}
	return info
}

// AdminQuiet implements ops.NodeAdmin: the node's view of the in-band
// termination detector (DESIGN.md §13).
func (a nodeAdmin) AdminQuiet() ops.QuietInfo {
	nd := a.nd
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return ops.QuietInfo{
		Node:         nd.id,
		Epoch:        nd.qEpoch,
		LocalQuiet:   nd.self != nil && nd.localTick-nd.qLastAct >= uint64(a.c.cfg.QuietWindow),
		SubtreeQuiet: nd.qOut.Sub,
		Covered:      nd.qOut.Count,
		Root:         nd.self != nil && ParentOf(nd.self) == trees.None,
		Announced:    nd.qOut.Ann,
	}
}

// AdminTrace implements ops.NodeAdmin: the node's flight-recorder ring
// (empty with the recorder disarmed). Snapshot locks only the ring, so
// the actor never stalls behind a trace collection.
func (a nodeAdmin) AdminTrace() ops.TraceInfo {
	info := ops.TraceInfo{Node: a.nd.id, Events: []trace.Event{}}
	r := a.nd.ring.Load()
	if r == nil {
		return info
	}
	info.Enabled = true
	info.Capacity = r.Cap()
	info.Events, info.Dropped = r.Snapshot(info.Events)
	return info
}

// AdminStats implements ops.NodeAdmin.
func (a nodeAdmin) AdminStats() ops.StatsInfo {
	s := a.nd.Stats()
	return ops.StatsInfo{
		Node:              a.nd.id,
		FramesSent:        int64(s.FramesSent),
		BytesSent:         int64(s.BytesSent),
		FramesRecv:        int64(s.FramesRecv),
		RxRejected:        int64(s.RxRejected),
		HeartbeatsApplied: int64(s.HeartbeatsApplied),
		RegisterWrites:    int64(s.RegisterWrites),
		StalenessExpiries: int64(s.StalenessExpiries),
		PacketsForwarded:  int64(s.PacketsForwarded),
		PacketsDropped:    int64(s.PacketsDropped),
	}
}

// AdminHub returns the in-process admin plane: every live node's handle
// registered in an ops.Hub, crawlable without sockets. Each call
// builds a fresh hub, so tests can Remove nodes to simulate dead admin
// endpoints without affecting other observers.
func (c *Cluster) AdminHub() *ops.Hub {
	c.memMu.RLock()
	defer c.memMu.RUnlock()
	h := ops.NewHub()
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		h.Register(nd.id, nodeAdmin{c: c, nd: nd})
	}
	return h
}

// AdminServers is a running per-node admin HTTP deployment. Once bound
// to a cluster by ServeAdmin it follows membership: a joining node gets
// its own socket, a retiring node's socket closes with it.
type AdminServers struct {
	mu      sync.RWMutex
	servers map[graph.NodeID]*ops.Server
	addrs   map[graph.NodeID]string
	order   []graph.NodeID
}

// Addr returns node id's admin address ("" when unknown).
func (a *AdminServers) Addr(id graph.NodeID) string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.addrs[id]
}

// Addrs returns (id, address) pairs in bind order (retired nodes
// dropped).
func (a *AdminServers) Addrs() []struct {
	ID   graph.NodeID
	Addr string
} {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]struct {
		ID   graph.NodeID
		Addr string
	}, 0, len(a.order))
	for _, id := range a.order {
		if addr, ok := a.addrs[id]; ok {
			out = append(out, struct {
				ID   graph.NodeID
				Addr string
			}{id, addr})
		}
	}
	return out
}

// Close shuts every server down.
func (a *AdminServers) Close() {
	a.mu.Lock()
	servers := a.servers
	a.servers = nil
	a.mu.Unlock()
	for _, s := range servers {
		s.Close()
	}
}

// add binds a socket for nd and records its address in the node's
// adverts. Best-effort: a node whose socket fails to bind simply runs
// without an admin endpoint. Caller holds the cluster's memMu.
func (a *AdminServers) add(c *Cluster, nd *Node) {
	srv := ops.NewServer(nodeAdmin{c: c, nd: nd, addrOf: a.Addr}, c.metrics)
	addr, err := srv.Start()
	if err != nil {
		return
	}
	a.mu.Lock()
	if a.servers == nil { // closed while we were binding
		a.mu.Unlock()
		srv.Close()
		return
	}
	a.servers[nd.id] = srv
	a.addrs[nd.id] = addr
	a.order = append(a.order, nd.id)
	a.mu.Unlock()
	nd.mu.Lock()
	nd.adminAddr = addr
	nd.mu.Unlock()
}

// remove closes a retiring node's socket and drops its directory entry.
func (a *AdminServers) remove(id graph.NodeID) {
	a.mu.Lock()
	srv := a.servers[id]
	delete(a.servers, id)
	delete(a.addrs, id)
	i := slices.Index(a.order, id)
	if i >= 0 {
		a.order = slices.Delete(a.order, i, i+1)
	}
	a.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// ServeAdmin binds one loopback admin HTTP socket per live node, each
// serving that node's getself/getpeers/gettree/getstats/getquiet plus the
// cluster's /metrics. Peer entries carry their admin addresses, so a
// crawler seeded with any single socket can walk the whole cluster.
// The deployment is bound to the cluster's membership: later joins and
// leaves add and remove sockets.
func (c *Cluster) ServeAdmin() (*AdminServers, error) {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	as := &AdminServers{
		servers: make(map[graph.NodeID]*ops.Server, len(c.nodes)),
		addrs:   make(map[graph.NodeID]string, len(c.nodes)),
	}
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		as.add(c, nd)
		if as.Addr(nd.id) == "" {
			as.Close()
			return nil, fmt.Errorf("cluster: admin socket for node %d failed to bind", nd.id)
		}
	}
	c.admin = as
	return as, nil
}
