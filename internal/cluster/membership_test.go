package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"testing"
	"time"

	"silentspan/internal/bits"
	"silentspan/internal/graph"
	"silentspan/internal/ops"
	"silentspan/internal/routing"
	"silentspan/internal/spanning"
	"silentspan/internal/trees"
	"silentspan/internal/wire"
)

// TestJoinLeaveCrashLockstep: the tentpole smoke — nodes join, leave,
// and crash in a running lockstep cluster; after each mutation the
// cluster re-stabilizes to the silent tree of the current graph, and
// cluster totals (frames, membership counters) stay monotone across
// retirements.
func TestJoinLeaveCrashLockstep(t *testing.T) {
	g := graph.Path(5) // 1-2-3-4-5
	cl, err := New(g, spanning.Algorithm{}, NewChanTransport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.InitArbitrary(rand.New(rand.NewSource(3)))
	converge(t, cl, 4000)
	checkSilentTree(t, cl)

	// Join node 9 hanging off 3 and 5, mid-run.
	if err := cl.Join(9, []graph.Edge{{U: 9, V: 3, W: 100}, {U: 9, V: 5, W: 101}}); err != nil {
		t.Fatal(err)
	}
	if cl.Nodes() != 6 {
		t.Fatalf("nodes = %d after join, want 6", cl.Nodes())
	}
	converge(t, cl, 4000)
	checkSilentTree(t, cl)
	if st := cl.Stats(); st.Joins != 1 || st.AdvertsSent == 0 {
		t.Fatalf("join accounting: %+v", st)
	}

	framesBefore := cl.Stats().FramesSent

	// Leave node 5 cooperatively. In lockstep the coordinator's remap
	// lands before the goodbye is ingested, so eviction is observable as
	// the leaver vanishing from every survivor's neighbor row, and the
	// goodbye itself arriving — and being gated as no-longer-a-neighbor —
	// on the wire. (On free-running transports the goodbye can land
	// first and trigger the cache wipe directly.)
	rejBefore := cl.Stats().RxRejected
	if err := cl.Leave(5); err != nil {
		t.Fatal(err)
	}
	cl.Tick() // deliver the goodbye
	for _, v := range cl.Graph().Nodes() {
		_, _, neighbors, _ := cl.Node(v).adminSnapshot(nil)
		if slices.Contains(neighbors, 5) {
			t.Fatalf("node %d still lists the leaver as a neighbor", v)
		}
	}
	if rej := cl.Stats().RxRejected; rej <= rejBefore {
		t.Fatalf("goodbye never arrived on the wire (rejected %d -> %d)", rejBefore, rej)
	}
	converge(t, cl, 4000)
	checkSilentTree(t, cl)

	// Crash node 4: no goodbye, discovery via staleness.
	if err := cl.Crash(4); err != nil {
		t.Fatal(err)
	}
	converge(t, cl, 4000)
	checkSilentTree(t, cl)

	st := cl.Stats()
	if st.Joins != 1 || st.Leaves != 1 || st.Crashes != 1 {
		t.Fatalf("membership accounting: %+v", st)
	}
	if st.FramesSent < framesBefore {
		t.Fatalf("cluster totals went backwards across churn: %d -> %d", framesBefore, st.FramesSent)
	}
	if cl.Nodes() != 4 {
		t.Fatalf("nodes = %d, want 4", cl.Nodes())
	}
	// Retiring the whole cluster is refused at the last node.
	for _, v := range []graph.NodeID{1, 2, 3} {
		if err := cl.Leave(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Leave(9); err == nil {
		t.Fatal("retiring the last node succeeded")
	}
}

// TestRejoinAfterCrash: the recycled-id regression — a node crashes and
// the same identity rejoins while its neighbors still hold the old
// incarnation's cache, seq filter, and delta anchors. The rejoiner's
// frames (opening above the remembered seq floor) must be accepted
// immediately, and the neighbor's receive state for the id must be the
// new incarnation's, not a carried-over ghost.
func TestRejoinAfterCrash(t *testing.T) {
	g := graph.Ring(6)
	cl, err := New(g, spanning.Algorithm{}, NewChanTransport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.InitArbitrary(rand.New(rand.NewSource(7)))
	converge(t, cl, 4000)

	victim := graph.NodeID(4)
	var edges []graph.Edge
	for _, u := range g.Neighbors(victim) {
		w, _ := g.EdgeWeight(victim, u)
		edges = append(edges, graph.Edge{U: victim, V: u, W: w})
	}
	oldSeq := cl.Node(victim).seq
	if err := cl.Crash(victim); err != nil {
		t.Fatal(err)
	}
	// Rejoin after only two ticks: far inside the staleness TTL, so
	// without the advert/seq-floor machinery the neighbors' filters
	// would still be primed with the old incarnation.
	cl.Tick()
	cl.Tick()
	if err := cl.Join(victim, edges); err != nil {
		t.Fatal(err)
	}
	if got := cl.Node(victim).seq; got < oldSeq {
		t.Fatalf("rejoined incarnation opened at seq %d, below the departed incarnation's %d", got, oldSeq)
	}
	converge(t, cl, 4000)
	checkSilentTree(t, cl)

	// A neighbor must hold a fresh, non-stale entry for the rejoiner
	// with a seq above everything the old incarnation sent.
	nb := cl.Node(g.Neighbors(victim)[0])
	_, tick, neighbors, peers := nb.adminSnapshot(nil)
	j := slices.Index(neighbors, victim)
	if j < 0 {
		t.Fatalf("rejoiner missing from neighbor row %v", neighbors)
	}
	p := peers[j]
	if p.seen == 0 || tick-p.seen > uint64(cl.cfg.StalenessTTL) {
		t.Fatalf("rejoiner's cache entry stale after convergence: seen=%d tick=%d", p.seen, tick)
	}
	if p.seq <= oldSeq {
		t.Fatalf("neighbor accepted seq %d not above the old incarnation's %d", p.seq, oldSeq)
	}
}

// TestSimultaneousJoinLeave: a leave and a join (including a rejoin of
// the just-departed id) land between the same two ticks; the cluster
// restabilizes to the spec tree of the final graph.
func TestSimultaneousJoinLeave(t *testing.T) {
	g := graph.Complete(5)
	cl, err := New(g, spanning.Algorithm{}, NewChanTransport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.InitArbitrary(rand.New(rand.NewSource(11)))
	converge(t, cl, 4000)

	// Same barrier window: 5 leaves, 8 joins, and 5 rejoins at once.
	if err := cl.Leave(5); err != nil {
		t.Fatal(err)
	}
	if err := cl.Join(8, []graph.Edge{{U: 8, V: 1, W: 50}, {U: 8, V: 2, W: 51}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Join(5, []graph.Edge{{U: 5, V: 8, W: 52}, {U: 5, V: 3, W: 53}}); err != nil {
		t.Fatal(err)
	}
	converge(t, cl, 4000)
	checkSilentTree(t, cl)
	if n := cl.Nodes(); n != 6 {
		t.Fatalf("nodes = %d, want 6", n)
	}
}

// TestLeaveDuringResync: a node departs while the delta protocol is
// mid-flight under a chaotic transport — resync requests and anchors
// addressed to and from it are still in the air. The survivors must
// neither panic nor wedge, and the cluster restabilizes.
func TestLeaveDuringResync(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := graph.RandomConnected(10, 0.4, rng)
	ft := NewFaultTransport(NewChanTransport(),
		FaultConfig{Seed: 5, Loss: 0.25, Delay: 0.3, MaxDelayTicks: 4})
	cl, err := New(g, spanning.Algorithm{}, ft, Config{StalenessTTL: 24})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.InitArbitrary(rand.New(rand.NewSource(22)))

	// Run mid-convergence until the delta machinery is demonstrably hot.
	for i := 0; i < 2000 && cl.Stats().ResyncsSent == 0; i++ {
		cl.Tick()
	}
	if cl.Stats().ResyncsSent == 0 {
		t.Fatal("fault profile produced no resync traffic; test void")
	}
	// Retire a non-cut node while that traffic is in flight.
	nodes := g.Nodes()
	var victim graph.NodeID
	for _, v := range nodes[1:] {
		clone := g.Clone()
		clone.RemoveNode(v)
		if clone.Connected() {
			victim = v
			break
		}
	}
	if victim == 0 {
		t.Skip("no removable node keeps the graph connected")
	}
	if err := cl.Leave(victim); err != nil {
		t.Fatal(err)
	}
	converge(t, cl, 20000)
	checkSilentTree(t, cl)
}

// TestAdvertNeverCreatesPhantom: adverts are eviction hints, not
// membership — a decodable advert from an id the receiver's topology
// does not list as a neighbor is rejected outright and perturbs
// nothing.
func TestAdvertNeverCreatesPhantom(t *testing.T) {
	g := graph.Path(3)
	tr := NewChanTransport()
	cl, err := New(g, spanning.Algorithm{}, tr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.InitArbitrary(rand.New(rand.NewSource(2)))
	converge(t, cl, 2000)

	// A perfectly well-formed advert from a stranger, delivered through
	// the transport like any other frame.
	ep, err := tr.Open(99)
	if err != nil {
		t.Fatal(err)
	}
	var b bits.Builder
	forged, err := wire.Encode(wire.Frame{Kind: wire.KindAdvert, Alg: cl.Codec().Code(),
		Src: 99, Seq: 7, Neighbors: []graph.NodeID{1, 2, 3}}, cl.Codec(), &b, nil)
	if err != nil {
		t.Fatal(err)
	}
	rejBefore := cl.Stats().RxRejected
	evBefore := cl.Stats().NeighborEvictions
	if err := ep.Send(2, forged); err != nil {
		t.Fatal(err)
	}
	cl.Tick()
	cl.Tick()
	if cl.Node(99) != nil || cl.Nodes() != 3 {
		t.Fatal("a wire frame created a phantom member")
	}
	if cl.Stats().RxRejected <= rejBefore {
		t.Fatal("forged advert was not rejected")
	}
	if cl.Stats().NeighborEvictions != evBefore {
		t.Fatal("forged advert reset a neighbor's receive state")
	}
	checkSilentTree(t, cl)
}

// TestGatewayResolutionExclusive: the data-plane ledger's resolution is
// single-shot across all four outcomes — whatever races (duplicate
// copies delivering, dropping, expiring, or dying with a retiring node)
// a packet resolves into exactly one counter and the ledger always
// balances.
func TestGatewayResolutionExclusive(t *testing.T) {
	g := graph.Path(3)
	cl, err := New(g, spanning.Algorithm{}, NewChanTransport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	gw := NewGateway(cl)

	launch := func() wire.Packet {
		gw.mu.Lock()
		defer gw.mu.Unlock()
		gw.nextID++
		pkt := wire.Packet{ID: gw.nextID, Origin: 1, Dst: 3}
		gw.pending[pkt.ID] = pkt
		gw.stats.Launched++
		return pkt
	}
	cases := []struct {
		name   string
		events []string // applied in order; exactly the first must resolve
	}{
		{"deliver-then-dup-deliver", []string{"deliver", "deliver"}},
		{"deliver-then-drop", []string{"deliver", "drop"}},
		{"drop-then-deliver", []string{"drop", "deliver"}},
		{"drop-then-orphan", []string{"drop", "orphan"}},
		{"orphan-then-deliver", []string{"orphan", "deliver"}},
		{"orphan-then-drop", []string{"orphan", "drop"}},
		{"expire-then-deliver", []string{"expire", "deliver"}},
		{"deliver-then-expire", []string{"deliver", "expire"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pkt := launch()
			before := gw.Stats()
			for i, ev := range tc.events {
				var resolved bool
				switch ev {
				case "deliver":
					resolved = gw.deliver(pkt)
				case "drop":
					resolved = gw.drop(pkt)
				case "orphan":
					resolved = gw.orphan(pkt)
				case "expire":
					resolved = gw.Expire() == 1
				}
				if want := i == 0; resolved != want {
					t.Fatalf("event %d (%s): resolved=%v, want %v", i, ev, resolved, want)
				}
			}
			after := gw.Stats()
			gained := (after.Delivered - before.Delivered) +
				(after.Dropped - before.Dropped) + (after.Lost - before.Lost)
			if gained != 1 {
				t.Fatalf("packet resolved into %d counters: before %+v after %+v", gained, before, after)
			}
			if after.Delivered+after.Dropped+after.Lost != after.Launched {
				t.Fatalf("ledger out of balance: %+v", after)
			}
			if gw.Outstanding() != 0 {
				t.Fatalf("resolved packet still outstanding")
			}
		})
	}
}

// TestUDPEvictRejoin: the stale-directory regression — without Evict a
// rejoining id fails Open ("already attached"), and worse, survivors'
// sends would resolve the id to the dead incarnation's socket. After
// Evict the id unbinds, reopens on a fresh socket, and traffic reaches
// the new incarnation.
func TestUDPEvictRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	tr := NewUDPTransport()
	defer tr.Close()
	ep1, err := tr.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := tr.Open(2)
	if err != nil {
		t.Fatal(err)
	}
	oldAddr := tr.addrs[2].String()

	if _, err := tr.Open(2); err == nil {
		t.Fatal("duplicate Open accepted")
	}
	ep2.Close()
	tr.Evict(2)
	if _, ok := tr.addrs[2]; ok {
		t.Fatal("eviction left the id in the directory")
	}
	if err := ep1.Send(2, []byte("x")); err == nil {
		t.Fatal("send to an evicted id resolved a stale address")
	}

	ep2b, err := tr.Open(2)
	if err != nil {
		t.Fatalf("rejoin after eviction: %v", err)
	}
	if tr.addrs[2].String() == oldAddr {
		t.Log("rebind reused the old port (legal); directory still points at the live socket")
	}
	if err := ep1.Send(2, []byte("hello-rejoin")); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		if got := ep2b.Drain(nil); len(got) > 0 {
			if string(got[0]) != "hello-rejoin" {
				t.Fatalf("rejoiner drained %q", got[0])
			}
			return
		}
		select {
		case <-deadline:
			t.Fatal("frame never reached the rejoined incarnation")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestFaultBroadcastDeterminism: per-copy fates on the Broadcast path
// are a deterministic function of the seed — two identically seeded
// transports driving identical broadcast schedules produce identical
// fault accounting and identical per-receiver delivery streams.
func TestFaultBroadcastDeterminism(t *testing.T) {
	run := func() (FaultStats, map[graph.NodeID][]string) {
		inner := NewChanTransport()
		ft := NewFaultTransport(inner, FaultConfig{
			Seed: 99, Loss: 0.2, Dup: 0.2, Corrupt: 0.1, Delay: 0.3, MaxDelayTicks: 3})
		ids := []graph.NodeID{1, 2, 3, 4}
		eps := make(map[graph.NodeID]Endpoint)
		for _, id := range ids {
			ep, err := ft.Open(id)
			if err != nil {
				t.Fatal(err)
			}
			eps[id] = ep
		}
		recv := make(map[graph.NodeID][]string)
		for tick := uint64(1); tick <= 30; tick++ {
			for _, id := range ids {
				var dsts []graph.NodeID
				for _, o := range ids {
					if o != id {
						dsts = append(dsts, o)
					}
				}
				eps[id].Broadcast(dsts, fmt.Appendf(nil, "t%d-from%d", tick, id))
			}
			ft.Step(tick)
			for _, id := range ids {
				for _, fr := range eps[id].Drain(nil) {
					recv[id] = append(recv[id], string(fr))
				}
			}
		}
		return ft.Stats(), recv
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 {
		t.Fatalf("fault accounting diverged: %+v vs %+v", s1, s2)
	}
	if s1.Lost == 0 || s1.Duplicated == 0 || s1.Delayed == 0 || s1.Corrupted == 0 {
		t.Fatalf("profile left fault classes unused: %+v", s1)
	}
	for id, frames := range r1 {
		if !slices.Equal(frames, r2[id]) {
			t.Fatalf("node %d delivery stream diverged:\n%v\nvs\n%v", id, frames, r2[id])
		}
	}
}

// TestServeCrashRejoin is the acceptance scenario: a free-running UDP
// cluster loses members mid-Serve — including the root — and the same
// ids rejoin, all without the cluster ever restarting. The cluster must
// re-stabilize each time, and at the end a crawl of the admin plane
// must reconstruct a tree identical to the coordinator's mirror.
func TestServeCrashRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets in -short mode")
	}
	rng := rand.New(rand.NewSource(31))
	g := graph.RandomConnected(12, 0.35, rng)
	tr := NewUDPTransport()
	defer tr.Close()
	cl, err := New(g, spanning.Algorithm{}, tr, Config{Interval: time.Millisecond, StalenessTTL: 64})
	if err != nil {
		t.Fatal(err)
	}
	cl.InitArbitrary(rng)

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- cl.Serve(ctx) }()
	defer func() { cancel(); <-served }()

	waitSilent := func(what string) {
		t.Helper()
		deadline := time.After(30 * time.Second)
		for {
			net, err := cl.Mirror()
			if err == nil && net.Silent() {
				if _, err := spanning.ExtractTree(net); err == nil {
					return
				}
			}
			select {
			case <-deadline:
				t.Fatalf("%s: no silent projection within deadline", what)
			case <-time.After(20 * time.Millisecond):
			}
		}
	}
	waitSilent("initial convergence")

	// Crash the root and one more node (kept non-cut against the
	// evolving graph), mid-Serve.
	victims := []graph.NodeID{cl.Graph().MinID()}
	for _, v := range cl.Graph().Nodes() {
		if v == victims[0] {
			continue
		}
		clone := cl.Graph().Clone()
		clone.RemoveNode(victims[0])
		clone.RemoveNode(v)
		if clone.Connected() {
			victims = append(victims, v)
			break
		}
	}
	type rejoinSpec struct {
		id    graph.NodeID
		edges []graph.Edge
	}
	var rejoin []rejoinSpec
	for _, v := range victims {
		var es []graph.Edge
		for _, u := range cl.Graph().Neighbors(v) {
			w, _ := cl.Graph().EdgeWeight(v, u)
			es = append(es, graph.Edge{U: v, V: u, W: w})
		}
		rejoin = append(rejoin, rejoinSpec{id: v, edges: es})
	}
	for _, v := range victims {
		if err := cl.Crash(v); err != nil {
			t.Fatal(err)
		}
	}
	waitSilent("after crashing the root and a member")
	if root := treeRootOf(t, cl); root != cl.Graph().MinID() {
		t.Fatalf("surviving tree rooted at %d, want new minimum %d", root, cl.Graph().MinID())
	}

	// Rejoin the same identities over the same links. Edges to a fellow
	// victim are deferred until both are back.
	present := func(id graph.NodeID) bool { return cl.Node(id) != nil }
	var deferred []graph.Edge
	for _, r := range rejoin {
		var now []graph.Edge
		for _, e := range r.edges {
			if present(e.V) {
				now = append(now, e)
			} else {
				deferred = append(deferred, e)
			}
		}
		if err := cl.Join(r.id, now); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range deferred {
		if _, ok := cl.Graph().EdgeWeight(e.U, e.V); ok {
			continue // the later join's own edge list already restored it
		}
		if err := cl.AddEdge(e.U, e.V, e.W); err != nil {
			t.Fatal(err)
		}
	}
	waitSilent("after rejoining")
	if root := treeRootOf(t, cl); root != g.MinID() {
		t.Fatalf("tree rooted at %d after rejoin, want original minimum %d", root, g.MinID())
	}

	// The operations plane agrees edge-for-edge with the mirror.
	net, err := cl.Mirror()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ops.Crawl(cl.AdminHub(), g.MinID())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Visited() != cl.Nodes() || len(rep.Errors) != 0 {
		t.Fatalf("crawl covered %d of %d nodes (errors %v)", rep.Visited(), cl.Nodes(), rep.Errors)
	}
	want := make(map[graph.NodeID]graph.NodeID)
	for _, v := range cl.Graph().Nodes() {
		p := ParentOf(net.State(v))
		if p == routing.NoParent || p == trees.None {
			p = ops.None
		}
		want[v] = p
	}
	if diffs := rep.DiffParents(want); len(diffs) != 0 {
		t.Fatalf("crawl diverges from mirror: %v", diffs)
	}
}

// treeRootOf extracts the stabilized tree's root from the mirror.
func treeRootOf(t *testing.T, cl *Cluster) graph.NodeID {
	t.Helper()
	net, err := cl.Mirror()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := spanning.ExtractTree(net)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Root()
}
