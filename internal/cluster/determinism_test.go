package cluster

import (
	"math/rand"
	"testing"

	"silentspan/internal/bfs"
	"silentspan/internal/graph"
	"silentspan/internal/routing"
)

// traceRun executes one fully seeded cluster run — adversarial init,
// chaotic transport, packet cohort — and returns the execution-trace
// hash plus the headline counters. Mirrors the PR 3 scheduler-
// determinism test at the cluster layer: the node actors genuinely run
// concurrently, and the BSP barriers plus barrier-time fault decisions
// must make the whole execution a function of the seed alone.
func traceRun(t *testing.T, seed int64) (uint64, Stats, GatewayStats, FaultStats, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(14, 0.3, rng)
	ft := NewFaultTransport(NewChanTransport(), FaultConfig{
		Seed: seed + 1, Loss: 0.1, Dup: 0.1, Corrupt: 0.05, Delay: 0.2, MaxDelayTicks: 4})
	cl, err := New(g, bfs.Algorithm{}, ft, Config{StalenessTTL: 24})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.EnableTrace()
	gw := NewGateway(cl)
	cl.InitArbitrary(rand.New(rand.NewSource(seed + 2)))
	for i := 0; i < 5; i++ {
		cl.Tick()
	}
	gw.Launch(routing.UniformPairs(g.Nodes(), 32, rand.New(rand.NewSource(seed+3))))
	ticks, ok := cl.RunUntilQuiet(20000, 10)
	if !ok {
		t.Fatalf("seed %d: no quiet", seed)
	}
	for i := 0; i < 64; i++ {
		cl.Tick()
	}
	gw.Expire()
	return cl.TraceSum(), cl.Stats(), gw.Stats(), ft.Stats(), ticks
}

// TestSeededDeterminism: same seed ⇒ identical cluster execution trace
// on the channel transport — register-change history, frame counters,
// fault schedule, packet outcomes, convergence latency, everything.
func TestSeededDeterminism(t *testing.T) {
	h1, s1, g1, f1, t1 := traceRun(t, 42)
	h2, s2, g2, f2, t2 := traceRun(t, 42)
	if h1 != h2 {
		t.Errorf("trace hash diverged: %#x vs %#x", h1, h2)
	}
	if s1 != s2 {
		t.Errorf("cluster stats diverged: %+v vs %+v", s1, s2)
	}
	if g1 != g2 {
		t.Errorf("gateway stats diverged: %+v vs %+v", g1, g2)
	}
	if f1 != f2 {
		t.Errorf("fault stats diverged: %+v vs %+v", f1, f2)
	}
	if t1 != t2 {
		t.Errorf("convergence latency diverged: %d vs %d", t1, t2)
	}

	// A different seed must explore a different execution (sanity check
	// that the trace hash actually covers the run).
	h3, _, _, _, _ := traceRun(t, 43)
	if h3 == h1 {
		t.Errorf("seeds 42 and 43 produced the identical trace %#x", h1)
	}
}
