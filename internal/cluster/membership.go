package cluster

import (
	"fmt"

	"silentspan/internal/graph"
	"silentspan/internal/trace"
	"silentspan/internal/wire"
)

// This file is the cluster's live-membership surface: Join, Leave, and
// Crash reshape a running cluster — including mid-Serve — without a
// restart. The flow is always coordinator-driven: membership never
// derives from the wire (an advert can only refresh a neighbor the
// topology already granted; see Node.ingest). The moving parts:
//
//   - The persistent runtime.Network (c.net) validates every topology
//     mutation and fans TopoEvents out to the gateway's labeler.
//   - Every live actor gets its neighbor row re-derived from the shared
//     dense layout; in Serve mode the update is queued (nodeRemap) and
//     applied by the actor itself at a safe point.
//   - A departing id's last heartbeat seq is remembered (seqFloor), and
//     a rejoining incarnation opens its counter above it, so frames of
//     the old incarnation still in flight can never shadow the new one
//     behind receivers' duplicate filters.
//   - Transports that keep id-keyed directories implement evictor so a
//     departed id's entries (address, route, queued frames) are torn
//     down instead of shadowing a rejoiner.

// evictor is the optional transport hook for membership churn: Evict
// tears down everything the transport still associates with a departed
// id — its endpoint registration, its directory entry (UDP's id→addr
// map), and any frames queued on the departing side — after flushing
// sends the node made on its way out (the goodbye broadcast must
// survive the teardown).
type evictor interface {
	Evict(id graph.NodeID)
}

// Join adds node id to the running cluster, connected by the given
// edges (each must touch id and an existing member). The new actor
// starts with an empty register — the algorithm's bootstrap rule fires
// on its first activation — and opens with a membership advert followed
// by a self-contained heartbeat, so its neighbors evict whatever they
// cached about a previous incarnation of the id before fresh state
// lands. Safe at any point: before the first tick, between ticks, or
// mid-Serve (the actor spawns into the running pool).
func (c *Cluster) Join(id graph.NodeID, edges []graph.Edge) error {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if err := c.net.AddNode(id, nil); err != nil {
		return err
	}
	added := 0
	var err error
	for _, e := range edges {
		if err = c.net.AddEdge(e.U, e.V, e.W); err != nil {
			break
		}
		added++
	}
	if err == nil {
		var ep Endpoint
		if ep, err = c.tr.Open(id); err == nil {
			c.admit(id, ep)
			return nil
		}
	}
	// Roll the topology back so a failed join leaves no trace.
	for _, e := range edges[:added] {
		c.net.RemoveEdge(e.U, e.V)
	}
	c.net.RemoveNode(id)
	return err
}

// admit finishes a join once the topology mutators and the transport
// have accepted id. Caller holds memMu write lock.
func (c *Cluster) admit(id graph.NodeID, ep Endpoint) {
	slot, _ := c.d.IndexOf(id)
	for len(c.nodes) <= slot {
		c.nodes = append(c.nodes, nil)
	}
	nd := c.newMember(id, slot, ep)
	// Open the heartbeat counter above every frame any previous
	// incarnation of this id ever sent (see seqFloor).
	nd.seq = c.seqFloor[id]
	// First tick: advert, then a self-contained anchor heartbeat — the
	// receivers just reset this id's anchor state, so the first register
	// frame must not be a delta.
	nd.advertPending = true
	nd.resyncPending = true
	nd.hbCadence = c.hbCadence
	nd.frameBytes = c.frameBytes
	if c.flightCap > 0 {
		nd.ring.Store(trace.NewRing(c.flightCap))
		nd.recordEpoch(trace.Admit, trace.ClassNone, 0, 0, 0, 0, 0)
	}
	c.nodes[slot] = nd
	if c.admin != nil {
		c.admin.add(c, nd)
	}
	// Re-row every other live actor. The joined id is in the reset list:
	// wherever it was already a neighbor (a rejoin), the old
	// incarnation's receive state must start fresh even if the advert
	// frame itself is lost.
	c.remapAllLocked(id)
	c.stateDirty = true
	c.joins.Add(1)
	if c.serving {
		c.spawnServe(nd)
	} else if c.started {
		c.spawnLockstep(nd)
	}
}

// Leave retires node id cooperatively: its actor parks, broadcasts a
// goodbye (neighbors evict its cached state immediately instead of
// waiting out the staleness TTL), and its endpoint and directory
// entries are torn down.
func (c *Cluster) Leave(id graph.NodeID) error { return c.retire(id, true) }

// Crash kills node id without a goodbye: neighbors only find out when
// its cache entries age past StalenessTTL — the fault-model exit.
func (c *Cluster) Crash(id graph.NodeID) error { return c.retire(id, false) }

func (c *Cluster) retire(id graph.NodeID, goodbye bool) error {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	nd := c.nodeLocked(id)
	if nd == nil {
		return fmt.Errorf("cluster: no live node %d", id)
	}
	if c.d.N() == 1 {
		return fmt.Errorf("cluster: refusing to retire the last node")
	}
	// Park the actor first; from here the coordinator owns its state.
	if nd.running {
		close(nd.stop)
		<-nd.stopped
		nd.running = false
	}
	if goodbye {
		c.sendGoodbye(nd)
	}
	// Remember the final seq: a future incarnation of this id opens
	// above it, so receivers never confuse the two (the goodbye itself
	// consumed the last value).
	c.seqFloor[id] = nd.seq
	// Packets parked in its queue die with it — accounted lost in
	// transit, exactly once, through the gateway's single-shot ledger.
	if c.gw != nil {
		nd.mu.Lock()
		q := nd.dataQ
		nd.dataQ, nd.heldSince = nil, nil
		nd.mu.Unlock()
		for _, p := range q {
			c.gw.orphan(p)
		}
	}
	// The counters must not vanish from cluster totals (a scrape would
	// see monotone counters decrease), so they fold into the departed
	// aggregate before the node is dropped.
	c.departed.fold(&nd.stats)
	// The flight recorder follows the same rule: the retirement is the
	// ring's final entry, then the ring moves to the departed list so
	// trace merges keep the leaver's causal history. The actor is
	// parked, so its tick and epoch are safe to read directly.
	if r := nd.ring.Load(); r != nil {
		coop := uint64(0)
		if goodbye {
			coop = 1
		}
		nd.recordEpoch(trace.Retire, trace.ClassNone, 0, 0, coop, nd.localTick, nd.qEpoch)
		evs, dropped := r.Snapshot(nil)
		c.departedTr = append(c.departedTr, trace.NodeTrace{Node: nd.id, Dropped: dropped, Events: evs})
		if len(c.departedTr) > departedTraceCap {
			c.departedTr = c.departedTr[len(c.departedTr)-departedTraceCap:]
		}
	}
	// A departing announcing root takes its announcement with it: the
	// remaining nodes' epochs bump on the remap below, so any survivor
	// root re-announces only after a fresh convergecast.
	c.noteAnnounce(id, 0, false)
	// Tear down the wire presence: directory and queue entries first
	// (flushing the goodbye still buffered on lockstep transports), then
	// the socket.
	if ev, ok := c.tr.(evictor); ok {
		ev.Evict(id)
	}
	nd.ep.Close()
	c.nodes[nd.slot] = nil
	if err := c.net.RemoveNode(id); err != nil {
		return err
	}
	c.remapAllLocked()
	if c.admin != nil {
		c.admin.remove(id)
	}
	c.stateDirty = true
	if goodbye {
		c.leaves.Add(1)
	} else {
		c.crashes.Add(1)
	}
	return nil
}

// sendGoodbye broadcasts the leave frame on the retiring node's way
// out. The actor is parked, so the coordinator drives its encoder
// directly. Caller holds memMu write lock.
func (c *Cluster) sendGoodbye(nd *Node) {
	nd.seq++
	data, err := wire.Encode(wire.Frame{Kind: wire.KindLeave, Alg: c.codec.Code(),
		Src: nd.id, Seq: nd.seq}, c.codec, &nd.enc, nil)
	if err != nil {
		return // a goodbye carries no state; encode cannot fail in practice
	}
	nd.ep.Broadcast(nd.neighbors, data)
	nd.record(trace.FrameTx, trace.ClassLeave, 0, nd.seq, 0, nd.localTick)
	nd.stats.FramesSent.Add(int64(len(nd.neighbors)))
	nd.stats.BytesSent.Add(int64(len(nd.neighbors) * len(data)))
	if nd.frameBytes != nil {
		nd.frameBytes.Observe(float64(len(data)))
	}
}

// AddEdge brings link {u,v} up in the running cluster and re-rows both
// endpoint actors.
func (c *Cluster) AddEdge(u, v graph.NodeID, w graph.Weight) error {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if err := c.net.AddEdge(u, v, w); err != nil {
		return err
	}
	c.remapEndpointsLocked(u, v)
	return nil
}

// RemoveEdge takes link {u,v} down in the running cluster. The carried
// receive state for the lost neighbor is dropped on both sides; if the
// link later heals, its entries start fresh.
func (c *Cluster) RemoveEdge(u, v graph.NodeID) error {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if err := c.net.RemoveEdge(u, v); err != nil {
		return err
	}
	c.remapEndpointsLocked(u, v)
	return nil
}

func (c *Cluster) remapEndpointsLocked(u, v graph.NodeID) {
	for _, id := range [2]graph.NodeID{u, v} {
		if nd := c.nodeLocked(id); nd != nil {
			c.remapNodeLocked(nd, nil)
		}
	}
	c.stateDirty = true
}

// remapAllLocked pushes the current dense rows to every live actor.
// reset lists ids whose per-neighbor receive state must start fresh (a
// recycled id rejoining). Caller holds memMu write lock.
func (c *Cluster) remapAllLocked(reset ...graph.NodeID) {
	for _, nd := range c.nodes {
		if nd == nil {
			continue
		}
		c.remapNodeLocked(nd, reset)
	}
}

// remapNodeLocked re-derives one actor's neighbor row from the shared
// dense layout. In Serve mode the update is queued and the actor
// applies it at the top of its next tick or absorb (it may be mid-tick
// right now); parked actors (lockstep between ticks, or not yet
// started) take it synchronously. Caller holds memMu write lock.
func (c *Cluster) remapNodeLocked(nd *Node, reset []graph.NodeID) {
	i, ok := c.d.IndexOf(nd.id)
	if !ok {
		return
	}
	r := &nodeRemap{
		n:         c.d.N(),
		neighbors: append([]graph.NodeID(nil), c.d.NeighborIDs(i)...),
		weights:   append([]graph.Weight(nil), c.d.Weights(i)...),
		reset:     reset,
	}
	nd.mu.Lock()
	if c.serving && nd.running {
		nd.pendingRemap = r
	} else {
		nd.pendingRemap = nil
		nd.applyRemapLocked(r)
	}
	nd.mu.Unlock()
}

// fold adds every counter of from into c — the retirement path that
// keeps cluster-level totals monotone across churn.
func (c *nodeCounters) fold(from *nodeCounters) {
	c.FramesSent.Add(from.FramesSent.Load())
	c.BytesSent.Add(from.BytesSent.Load())
	c.FramesRecv.Add(from.FramesRecv.Load())
	c.RxRejected.Add(from.RxRejected.Load())
	c.HeartbeatsApplied.Add(from.HeartbeatsApplied.Load())
	c.PacketsForwarded.Add(from.PacketsForwarded.Load())
	c.PacketsDropped.Add(from.PacketsDropped.Load())
	c.RegisterWrites.Add(from.RegisterWrites.Load())
	c.StalenessExpiries.Add(from.StalenessExpiries.Load())
	c.AnchorsSent.Add(from.AnchorsSent.Load())
	c.DeltasSent.Add(from.DeltasSent.Load())
	c.ResyncsSent.Add(from.ResyncsSent.Load())
	c.DeltaMisses.Add(from.DeltaMisses.Load())
	c.AdvertsSent.Add(from.AdvertsSent.Load())
	c.NeighborEvictions.Add(from.NeighborEvictions.Load())
}
