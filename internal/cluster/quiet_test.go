package cluster

import (
	"math/rand"
	"testing"

	"silentspan/internal/graph"
	"silentspan/internal/spanning"
	"silentspan/internal/wire"
)

// announceBound is a generous detector-latency budget for a converged
// cluster: the local-quiet window, one staleness TTL of report decay,
// and a per-level propagation allowance over the whole cluster.
func announceBound(cl *Cluster) int {
	return cl.cfg.QuietWindow + cl.cfg.StalenessTTL + (cl.Nodes()+2)*(cl.cfg.BackoffCap+2)
}

// tickUntilAnnounced ticks until the in-band detector announces,
// asserting the ground-truth safety property the cert campaign also
// enforces: the announcement is never active in a tick where a
// register changed.
func tickUntilAnnounced(t *testing.T, cl *Cluster, bound int) int {
	t.Helper()
	for i := 0; i < bound; i++ {
		if cl.QuietAnnounced() {
			return i
		}
		cl.Tick()
		if cl.QuietAnnounced() && cl.ChangedLastTick() > 0 {
			t.Fatalf("false positive: announcement active in a tick with %d register changes",
				cl.ChangedLastTick())
		}
	}
	t.Fatalf("no announcement within %d ticks (quiet for %d)", bound, cl.QuietFor())
	return 0
}

// TestQuietDetectorAnnounces: on every always-on algorithm and test
// graph, a converged cluster announces its own silence in-band — no
// coordinator — within the documented latency bound, and delivers the
// transition on the event channel.
func TestQuietDetectorAnnounces(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, g := range testGraphs(rng) {
		for _, alg := range testAlgorithms() {
			t.Run(name+"/"+alg.Name(), func(t *testing.T) {
				cl, err := New(g, alg, NewChanTransport(), Config{})
				if err != nil {
					t.Fatal(err)
				}
				defer cl.Stop()
				cl.InitArbitrary(rng)
				converge(t, cl, 4000)
				ticks := tickUntilAnnounced(t, cl, announceBound(cl))
				t.Logf("announced %d ticks after quiet", ticks)
				if cl.QuietEpoch() == 0 {
					t.Fatal("announcement carries epoch 0")
				}
				select {
				case ev := <-cl.QuietEvents():
					if !ev.Announced {
						t.Fatalf("first quiet event is a retraction: %+v", ev)
					}
					if ev.Root != cl.Graph().MinID() {
						t.Fatalf("announcing root %d, want minimum identity %d", ev.Root, cl.Graph().MinID())
					}
				default:
					t.Fatal("announcement fired but no event delivered")
				}
				snap := cl.Metrics().Snapshot()
				if snap["ss_cluster_detected_quiet"] != 1 {
					t.Fatalf("ss_cluster_detected_quiet = %v, want 1", snap["ss_cluster_detected_quiet"])
				}
			})
		}
	}
}

// TestQuietDetectorRetractsOnWrite: a register write anywhere retracts
// an active announcement (the epoch bump dominates the stale claim),
// and the cluster re-announces at a strictly higher epoch once it has
// re-stabilized.
func TestQuietDetectorRetractsOnWrite(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.RandomConnected(10, 0.3, rng)
	cl, err := New(g, spanning.Algorithm{}, NewChanTransport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.InitArbitrary(rng)
	converge(t, cl, 4000)
	tickUntilAnnounced(t, cl, announceBound(cl))
	first := cl.QuietEpoch()
	<-cl.QuietEvents() // drain the fire event

	cl.Corrupt(1, rng)
	// Retraction travels up the tree at urgent (MinGap) cadence.
	bound := announceBound(cl)
	retracted := false
	for i := 0; i < bound; i++ {
		cl.Tick()
		if !cl.QuietAnnounced() {
			retracted = true
			break
		}
	}
	if !retracted {
		t.Fatalf("announcement not retracted within %d ticks of a corruption", bound)
	}
	select {
	case ev := <-cl.QuietEvents():
		if ev.Announced {
			t.Fatalf("expected retraction event, got %+v", ev)
		}
	default:
		t.Fatal("retraction happened but no event delivered")
	}
	if snap := cl.Metrics().Snapshot(); snap["ss_cluster_detected_quiet"] != 0 {
		t.Fatalf("ss_cluster_detected_quiet = %v after retraction, want 0", snap["ss_cluster_detected_quiet"])
	}

	converge(t, cl, 4000)
	tickUntilAnnounced(t, cl, announceBound(cl))
	if again := cl.QuietEpoch(); again <= first {
		t.Fatalf("re-announced at epoch %d, want > %d (the corruption's write must dominate)", again, first)
	}
}

// TestQuietDetectorChurn: membership events retract the announcement
// (they bump epochs cluster-wide through the remap), and the reshaped
// cluster re-announces for its new size — the coverage count tracks n.
func TestQuietDetectorChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.Ring(8)
	cl, err := New(g, spanning.Algorithm{}, NewChanTransport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.InitArbitrary(rng)
	converge(t, cl, 4000)
	tickUntilAnnounced(t, cl, announceBound(cl))
	<-cl.QuietEvents()

	// Crash a non-root member: no goodbye, neighbors find out by TTL.
	if err := cl.Crash(5); err != nil {
		t.Fatal(err)
	}
	bound := 4*cl.cfg.StalenessTTL + announceBound(cl)
	for i := 0; cl.QuietAnnounced(); i++ {
		if i >= bound {
			t.Fatalf("announcement not retracted within %d ticks of a crash", bound)
		}
		cl.Tick()
	}

	// The survivors re-stabilize around the hole and re-announce with
	// count == the new n.
	converge(t, cl, 6000)
	tickUntilAnnounced(t, cl, bound)
	if cl.Nodes() != 7 {
		t.Fatalf("expected 7 survivors, have %d", cl.Nodes())
	}

	// A rejoin retracts again and the full ring re-announces.
	if err := cl.Join(5, []graph.Edge{{U: 4, V: 5, W: 1}, {U: 5, V: 6, W: 1}}); err != nil {
		t.Fatal(err)
	}
	converge(t, cl, 6000)
	tickUntilAnnounced(t, cl, bound)
	if cl.Nodes() != 8 {
		t.Fatalf("expected 8 members after rejoin, have %d", cl.Nodes())
	}
}

// TestRunUntilQuietClampsToEffectiveCadence: regression for the quiet
// window clamping only to HeartbeatEvery+1 — with back-off enabled the
// keep-alive gap legitimately grows to BackoffCap, so a caller's tiny
// window must widen past the cap, or quiet can be declared while a
// lost-keep-alive repair is still pending between backed-off frames.
func TestRunUntilQuietClampsToEffectiveCadence(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := graph.Path(5)
	cl, err := New(g, spanning.Algorithm{}, NewChanTransport(), Config{StalenessTTL: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	if cl.cfg.BackoffCap <= cl.cfg.HeartbeatEvery {
		t.Fatalf("test premise broken: BackoffCap %d not beyond HeartbeatEvery %d",
			cl.cfg.BackoffCap, cl.cfg.HeartbeatEvery)
	}
	cl.InitArbitrary(rng)
	if _, ok := cl.RunUntilQuiet(4000, 1); !ok {
		t.Fatal("no quiet")
	}
	// The declared quiet must have held for more than the back-off gap,
	// not just HeartbeatEvery+1 ticks.
	if got := cl.QuietFor(); got <= uint64(cl.cfg.BackoffCap) {
		t.Fatalf("quiet declared after only %d quiet ticks; effective cadence is %d",
			got, cl.cfg.BackoffCap)
	}

	// With back-off disabled the old clamp is the right one.
	cl2, err := New(graph.Path(5), spanning.Algorithm{}, NewChanTransport(),
		Config{StalenessTTL: 42, DisableBackoff: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Stop()
	cl2.InitArbitrary(rng)
	if _, ok := cl2.RunUntilQuiet(4000, 1); !ok {
		t.Fatal("no quiet with back-off disabled")
	}
	if got := cl2.QuietFor(); got <= uint64(cl2.cfg.HeartbeatEvery) {
		t.Fatalf("quiet declared after only %d quiet ticks with back-off disabled", got)
	}
}

// TestTicksToQuietResetsOnNewRun: regression for the convergence gauge
// surviving into the next run — a scrape during re-stabilization must
// read 0, not the previous run's value.
func TestTicksToQuietResetsOnNewRun(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cl, err := New(graph.Ring(6), spanning.Algorithm{}, NewChanTransport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.InitArbitrary(rng)
	if _, ok := cl.RunUntilQuiet(4000, quietTicks); !ok {
		t.Fatal("no quiet")
	}
	if v := cl.Metrics().Snapshot()["ss_cluster_ticks_to_quiet"]; v <= 0 {
		t.Fatalf("ticks_to_quiet = %v after a successful run, want > 0", v)
	}
	cl.Corrupt(3, rng)
	// A run too short to requiet: the stale measurement must be gone.
	cl.RunUntilQuiet(1, quietTicks)
	if v := cl.Metrics().Snapshot()["ss_cluster_ticks_to_quiet"]; v != 0 {
		t.Fatalf("ticks_to_quiet = %v mid re-stabilization, want 0", v)
	}
	if _, ok := cl.RunUntilQuiet(4000, quietTicks); !ok {
		t.Fatal("no requiet")
	}
	if v := cl.Metrics().Snapshot()["ss_cluster_ticks_to_quiet"]; v <= 0 {
		t.Fatalf("ticks_to_quiet = %v after requiet, want > 0", v)
	}
}

// TestClusterWriteCounter: the cluster-level write counter the Serve
// gateway poller reads covers every setState — δ-driven and out-of-band
// — and the func-backed /metrics counter still equals Stats exactly.
func TestClusterWriteCounter(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	cl, err := New(graph.Ring(6), spanning.Algorithm{}, NewChanTransport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.InitArbitrary(rng)
	converge(t, cl, 4000)
	st := cl.Stats()
	if snap := cl.Metrics().Snapshot(); snap["ss_cluster_register_writes_total"] != float64(st.RegisterWrites) {
		t.Fatalf("metrics writes %v != stats writes %d",
			snap["ss_cluster_register_writes_total"], st.RegisterWrites)
	}
	// The atomic poller counter includes the 6 InitArbitrary writes on
	// top of the δ-driven ones.
	if got, want := cl.regWrites.Load(), int64(st.RegisterWrites+6); got != want {
		t.Fatalf("cluster write counter %d, want %d (δ writes + InitArbitrary)", got, want)
	}
	before := cl.regWrites.Load()
	cl.Corrupt(2, rng)
	if got := cl.regWrites.Load(); got != before+2 {
		t.Fatalf("out-of-band writes not counted: %d, want %d", got, before+2)
	}
}

// TestFreshnessPullBoundary: table test around the pullAfter threshold
// in step — the ages where a quiet neighbor is legitimately backed off
// versus where a keep-alive must have been lost and an anchor is pulled.
func TestFreshnessPullBoundary(t *testing.T) {
	alg := spanning.Algorithm{}
	codec, err := wire.ForAlgorithm(alg)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{}
	base.fill()
	pullAfter := uint64(base.BackoffCap + base.BackoffCap/2 + 3)
	if pullAfter+1 > uint64(base.StalenessTTL) {
		t.Fatalf("test premise broken: pull threshold %d beyond the TTL %d", pullAfter, base.StalenessTTL)
	}
	cases := []struct {
		name         string
		never        bool   // no frame ever accepted (lastSeen == 0)
		age          uint64 // now - lastSeen for heard entries; = now for never-heard
		disableDelta bool
		wantPull     bool
	}{
		{name: "heard-at-threshold", age: pullAfter, wantPull: false},
		{name: "heard-past-threshold", age: pullAfter + 1, wantPull: true},
		{name: "never-heard-at-threshold", never: true, age: pullAfter, wantPull: false},
		{name: "never-heard-past-threshold", never: true, age: pullAfter + 1, wantPull: true},
		// Legacy wire has no resync machinery: every keep-alive is
		// self-contained full state, so a lost frame heals on the next
		// backed-off heartbeat (within BackoffCap < TTL−2) instead of via
		// a pull. No pull must be issued in either branch.
		{name: "legacy-heard-past-threshold", age: pullAfter + 1, disableDelta: true, wantPull: false},
		{name: "legacy-never-heard", never: true, age: 4 * pullAfter, disableDelta: true, wantPull: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.DisableDelta = tc.disableDelta
			tr := NewChanTransport()
			ep, err := tr.Open(1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tr.Open(2); err != nil {
				t.Fatal(err)
			}
			nd := newNode(1, 0, 2, []graph.NodeID{2}, []graph.Weight{1}, ep, codec, alg)
			now := tc.age
			if !tc.never {
				now = tc.age + 5 // any origin; only the age matters
				nd.cache[0] = spanning.State{Root: 1, Parent: 0, Dist: 0}
				nd.lastSeen[0] = now - tc.age
			}
			nd.step(now, &cfg)
			if got := nd.stats.ResyncsSent.Load() > 0; got != tc.wantPull {
				t.Fatalf("pull issued = %v at age %d (threshold %d), want %v",
					got, tc.age, pullAfter, tc.wantPull)
			}
		})
	}
}
