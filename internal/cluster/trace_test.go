package cluster

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"silentspan/internal/graph"
	"silentspan/internal/ops"
	"silentspan/internal/routing"
	"silentspan/internal/spanning"
	"silentspan/internal/trace"
)

// TestFlightRecorderEndToEnd: a converged cluster with the recorder on
// yields a merged trace whose causal invariants both hold — the
// announcement is backed by subtree-quiet claims covering all n nodes,
// and every delivered packet has a contiguous hop chain.
func TestFlightRecorderEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := graph.RandomConnected(12, 0.3, rng)
	cl, err := New(g, spanning.Algorithm{}, NewChanTransport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.EnableFlightRecorder(0)
	gw := NewGateway(cl)
	cl.InitArbitrary(rng)
	converge(t, cl, 4000)

	gw.Launch(routing.UniformPairs(g.Nodes(), 100, rng))
	for i := 0; i < 4*g.N() && gw.Outstanding() > 0; i++ {
		cl.Tick()
	}
	if n := gw.Outstanding(); n > 0 {
		t.Fatalf("%d packets unresolved on a clean transport", n)
	}
	tickUntilAnnounced(t, cl, announceBound(cl))

	// Collect over the admin hub, exactly as sstrace does.
	merged, rep, err := ops.MergeTraces(cl.AdminHub(), g.MinID())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Visited() != g.N() {
		t.Fatalf("crawl visited %d of %d nodes", rep.Visited(), g.N())
	}
	if merged.Rings != g.N() {
		t.Fatalf("merged %d rings, want %d", merged.Rings, g.N())
	}
	if merged.FrameEdges == 0 {
		t.Fatal("no cross-node frame edges stitched")
	}
	if viol := merged.CheckAnnounceCoverage(); len(viol) != 0 {
		t.Fatalf("announce coverage violated:\n%v", viol)
	}
	if viol := merged.CheckPacketChains(); len(viol) != 0 {
		t.Fatalf("packet chains violated:\n%v", viol)
	}
	ann, ok := merged.LatestAnnounce()
	if !ok {
		t.Fatal("no announce event in the merged trace")
	}
	if ann.Arg != uint64(g.N()) {
		t.Fatalf("announce covers %d nodes, want %d", ann.Arg, g.N())
	}
	if len(merged.Timeline()) == 0 || len(merged.ChromeTrace()) == 0 {
		t.Fatal("empty timeline or chrome trace render")
	}
}

// TestFlightRecorderChurn: retiring nodes keep their causal history —
// the final ring (goodbye tx, retire marker) moves to the departed
// list and still merges, and the survivors re-announce with a trace
// that passes both invariants.
func TestFlightRecorderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := graph.RandomConnected(10, 0.4, rng)
	cl, err := New(g, spanning.Algorithm{}, NewChanTransport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.EnableFlightRecorder(0)
	cl.InitArbitrary(rng)
	converge(t, cl, 4000)
	// Reach a full-coverage announcement before the churn: the
	// live-only assertions below need a historical announcement whose
	// causal support departs with the victim.
	tickUntilAnnounced(t, cl, announceBound(cl))
	n0 := g.N() // Leave mutates the graph in place

	// Pick a leaf-ish victim that keeps the graph connected: retire the
	// highest id with the cluster's own mutator validating connectivity.
	var victim graph.NodeID
	for _, id := range g.Nodes() {
		if id != g.MinID() {
			victim = max(victim, id)
		}
	}
	if err := cl.Leave(victim); err != nil {
		t.Skipf("Leave(%d): %v (graph would disconnect)", victim, err)
	}
	dep := cl.DepartedFlightTraces()
	if len(dep) != 1 || dep[0].Node != victim {
		t.Fatalf("departed traces = %+v, want one ring for node %d", dep, victim)
	}
	last := dep[0].Events[len(dep[0].Events)-1]
	if last.Kind != trace.Retire || last.Arg != 1 {
		t.Fatalf("departed ring's final event = %+v, want cooperative Retire", last)
	}
	sawGoodbye := false
	for _, ev := range dep[0].Events {
		if ev.Kind == trace.FrameTx && ev.Class == trace.ClassLeave {
			sawGoodbye = true
		}
	}
	if !sawGoodbye {
		t.Fatal("departed ring holds no goodbye FrameTx")
	}

	converge(t, cl, 4000)
	tickUntilAnnounced(t, cl, announceBound(cl))
	merged := trace.Merge(cl.FlightTraces())
	if merged.Rings != n0 { // n-1 live + 1 departed
		t.Fatalf("merged %d rings, want %d", merged.Rings, n0)
	}
	if viol := merged.CheckAnnounceCoverage(); len(viol) != 0 {
		t.Fatalf("announce coverage violated after churn:\n%v", viol)
	}
	ann, ok := merged.LatestAnnounce()
	if !ok || ann.Arg != uint64(n0-1) {
		t.Fatalf("latest announce = %+v, want coverage %d", ann, n0-1)
	}

	// A live-only merge (what an sstrace crawl sees: the admin plane
	// serves live members only) lacks the victim's ring, so the full
	// historical audit must flag the pre-churn announcement — its
	// supporting report departed with the victim — while the
	// latest-announcement check stays clean: current members back it.
	live := trace.Merge(liveOnly(cl, victim))
	if live.Rings != n0-1 {
		t.Fatalf("live-only merge has %d rings, want %d", live.Rings, n0-1)
	}
	if viol := live.CheckAnnounceCoverage(); len(viol) == 0 {
		t.Fatal("full historical audit on a live-only merge should flag the pre-churn announcement")
	}
	if viol := live.CheckLatestAnnounceCoverage(); len(viol) != 0 {
		t.Fatalf("latest-announcement check violated on live-only merge:\n%v", viol)
	}
}

// liveOnly filters a cluster's flight traces down to live members —
// the view an admin-plane crawl gets.
func liveOnly(cl *Cluster, departed graph.NodeID) []trace.NodeTrace {
	var out []trace.NodeTrace
	for _, tr := range cl.FlightTraces() {
		if tr.Node != departed {
			out = append(out, tr)
		}
	}
	return out
}

// TestFlightRecorderDisabledAndMetric: with the recorder off the admin
// route reports disabled and the exposition carries no trace metric;
// arming it with a tiny ring surfaces overwrites in
// ss_trace_dropped_total.
func TestFlightRecorderDisabledAndMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := graph.Ring(8)
	cl, err := New(g, spanning.Algorithm{}, NewChanTransport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.InitArbitrary(rng)
	for i := 0; i < 10; i++ {
		cl.Tick()
	}
	info, err := cl.AdminHub().Trace(g.MinID())
	if err != nil {
		t.Fatal(err)
	}
	if info.Enabled || len(info.Events) != 0 {
		t.Fatalf("recorder disabled but gettrace = %+v", info)
	}
	if _, ok := cl.Metrics().Snapshot()["ss_trace_dropped_total"]; ok {
		t.Fatal("ss_trace_dropped_total exposed with the recorder disarmed")
	}

	cl.EnableFlightRecorder(4) // tiny: overwrites guaranteed
	converge(t, cl, 4000)
	snap := cl.Metrics().Snapshot()
	dropped, ok := snap["ss_trace_dropped_total"]
	if !ok {
		t.Fatal("ss_trace_dropped_total missing with the recorder armed")
	}
	if dropped <= 0 {
		t.Fatalf("ss_trace_dropped_total = %v, want > 0 with 4-slot rings", dropped)
	}
	for _, tr := range cl.FlightTraces() {
		if len(tr.Events) > 4 {
			t.Fatalf("node %d ring holds %d events, cap 4", tr.Node, len(tr.Events))
		}
	}
}

// TestFlightRecorderConcurrentCollect: snapshotting rings and admin
// trace views while the cluster ticks is race-free (the -race matrix
// runs this package).
func TestFlightRecorderConcurrentCollect(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graph.RandomConnected(10, 0.4, rng)
	cl, err := New(g, spanning.Algorithm{}, NewChanTransport(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Stop()
	cl.EnableFlightRecorder(256)
	cl.InitArbitrary(rng)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		hub := cl.AdminHub()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cl.FlightTraces()
			hub.Trace(g.MinID())
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for i := 0; i < 200; i++ {
		cl.Tick()
	}
	close(stop)
	wg.Wait()
	merged := trace.Merge(cl.FlightTraces())
	if len(merged.Events) == 0 {
		t.Fatal("no events recorded")
	}
}
