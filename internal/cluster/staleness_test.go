package cluster

import (
	"testing"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/spanning"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
	"silentspan/internal/wire"
)

// TestHeartbeatStaleness is the staleness contract, per algorithm: a
// node whose cache holds an *attractive* neighbor state (a smaller
// root to adopt) must treat that neighbor as inconsistent — nil in the
// view — once the entry expires, rather than acting on stale state;
// and must act on it while the entry is fresh. The boundary tick
// (age == TTL) still counts as fresh.
func TestHeartbeatStaleness(t *testing.T) {
	const ttl = 4
	cases := []struct {
		name      string
		alg       runtime.Algorithm
		self      runtime.State
		bait      runtime.State // neighbor state worth adopting
		adopted   func(s runtime.State) bool
		untouched func(s runtime.State) bool
	}{
		{
			name: "spanning",
			alg:  spanning.Algorithm{},
			self: spanning.State{Root: 7, Parent: trees.None, Dist: 0},
			bait: spanning.State{Root: 1, Parent: trees.None, Dist: 0},
			adopted: func(s runtime.State) bool {
				ss, ok := s.(spanning.State)
				return ok && ss.Root == 1 && ss.Parent == 3 && ss.Dist == 1
			},
			untouched: func(s runtime.State) bool {
				ss, ok := s.(spanning.State)
				return ok && ss.Root == 7 && ss.Parent == trees.None
			},
		},
		{
			name: "switching",
			alg:  switching.Algorithm{},
			self: switching.SelfRoot(7),
			bait: switching.SelfRoot(1),
			adopted: func(s runtime.State) bool {
				ss, ok := switching.RegOf(s)
				return ok && ss.Root == 1 && ss.Parent == 3
			},
			untouched: func(s runtime.State) bool {
				ss, ok := switching.RegOf(s)
				return ok && ss.Root == 7 && ss.Parent == trees.None
			},
		},
	}
	for _, tc := range cases {
		for _, expired := range []bool{false, true} {
			name := tc.name + "/fresh"
			if expired {
				name = tc.name + "/expired"
			}
			t.Run(name, func(t *testing.T) {
				g := graph.New()
				g.MustAddEdge(3, 7, 1)
				codec, err := wire.ForAlgorithm(tc.alg)
				if err != nil {
					t.Fatal(err)
				}
				d := g.Dense()
				slot, _ := d.IndexOf(7)
				tr := NewChanTransport()
				ep, _ := tr.Open(7)
				nd := newNode(7, slot, 2, d.NeighborIDs(slot), d.Weights(slot), ep, codec, tc.alg)
				nd.setState(tc.self)
				// The cache entry: neighbor 3 offered the bait at tick 1.
				nd.cache[0] = tc.bait
				nd.lastSeen[0] = 1
				cfg := Config{StalenessTTL: ttl}
				cfg.fill()

				now := uint64(1 + ttl) // boundary: still fresh
				if expired {
					now = uint64(1 + ttl + 1)
				}
				nd.step(now, &cfg)

				got := nd.State()
				if expired {
					if !tc.untouched(got) {
						t.Fatalf("node acted on a stale cache entry: %v", got)
					}
				} else if !tc.adopted(got) {
					t.Fatalf("node ignored a fresh cache entry: %v", got)
				}
			})
		}
	}
}

// TestStalenessRecovery: an expired entry revives when a fresh
// heartbeat arrives — expiry is a view-level filter, not a tombstone.
func TestStalenessRecovery(t *testing.T) {
	g := graph.New()
	g.MustAddEdge(3, 7, 1)
	alg := spanning.Algorithm{}
	codec, _ := wire.ForAlgorithm(alg)
	d := g.Dense()
	slot, _ := d.IndexOf(7)
	tr := NewChanTransport()
	ep, _ := tr.Open(7)
	nd := newNode(7, slot, 2, d.NeighborIDs(slot), d.Weights(slot), ep, codec, alg)
	nd.setState(spanning.State{Root: 7, Parent: trees.None, Dist: 0})
	cfg := Config{StalenessTTL: 2}
	cfg.fill()

	// Stale bait: ignored.
	nd.cache[0] = spanning.State{Root: 1, Parent: trees.None, Dist: 0}
	nd.lastSeen[0] = 1
	nd.step(10, &cfg)
	if s := nd.State().(spanning.State); s.Root != 7 {
		t.Fatalf("acted on stale entry: %v", s)
	}

	// A fresh heartbeat with a newer sequence number revives it.
	data, err := wire.Encode(wire.Frame{
		Kind: wire.KindHeartbeat, Alg: codec.Code(), Src: 3, Seq: 5,
		State: spanning.State{Root: 1, Parent: trees.None, Dist: 0},
	}, codec, &nd.enc, nil)
	if err != nil {
		t.Fatal(err)
	}
	nd.ingest(data, 11, &cfg, nil)
	nd.step(11, &cfg)
	if s := nd.State().(spanning.State); s.Root != 1 || s.Parent != 3 {
		t.Fatalf("did not adopt after heartbeat revival: %v", s)
	}
}
