package cluster

import (
	"slices"
	"sync"
	"sync/atomic"

	"silentspan/internal/bits"
	"silentspan/internal/graph"
	"silentspan/internal/ops"
	"silentspan/internal/runtime"
	"silentspan/internal/wire"
)

// Node is one cluster member: an actor owning exactly its local
// register and a cache of its neighbors' last heartbeat states — the
// message-passing realization of the paper's single-writer
// multiple-reader register (Section II-A). All protocol state below is
// touched only by the node's own goroutine during a tick; the mutex
// guards the published register (and the data queue's injection side)
// for between-tick readers like the gateway.
type Node struct {
	id        graph.NodeID
	slot      int
	n         int            // network size (the model's known bound)
	neighbors []graph.NodeID // ascending, shared with graph.Dense
	weights   []graph.Weight // parallel to neighbors, shared
	ep        Endpoint
	codec     wire.Codec
	alg       runtime.Algorithm

	mu   sync.Mutex
	self runtime.State

	// Neighbor-state cache, parallel to neighbors. lastSeen is the local
	// tick of the last accepted heartbeat (0 = never); lastSeq the
	// highest accepted sequence number, which rejects duplicated and
	// reordered-stale heartbeats. Cache writes happen under mu so the
	// admin plane can snapshot a live node; the owning goroutine's own
	// reads stay lock-free (it is the only writer).
	cache    []runtime.State
	lastSeen []uint64
	lastSeq  []uint64
	peers    []runtime.State // per-tick effective view (staleness applied)
	// wasStale tracks each entry's staleness as of the last step, so
	// fresh→stale transitions are counted exactly once per expiry.
	wasStale []bool

	// dataQ holds routed packets parked at this node (in flight, or
	// stalled on an unroutable labeling). heldSince is parallel.
	dataQ     []wire.Packet
	heldSince []uint64

	seq       uint64 // own heartbeat counter
	localTick uint64
	changed   bool   // register changed during the last tick
	lastHB    uint64 // local tick of the last broadcast (cadence metric)

	enc      bits.Builder
	drainBuf [][]byte

	stats nodeCounters
	// hbCadence is the cluster-shared heartbeat-interval histogram
	// (nil when the cluster runs without a metrics registry).
	hbCadence *ops.Histogram
}

// NodeStats is a snapshot of one node's transport-visible activity.
type NodeStats struct {
	FramesSent, BytesSent  int
	FramesRecv, RxRejected int
	HeartbeatsApplied      int
	PacketsForwarded       int
	PacketsDropped         int
	// RegisterWrites counts δ-driven register changes (the node's
	// moves); StalenessExpiries counts fresh→stale cache transitions.
	RegisterWrites    int
	StalenessExpiries int
}

// nodeCounters is the live counter set. All fields are atomic: the
// owning goroutine increments them mid-tick while Stats / the metrics
// scrape / the admin API read them, so observation is safe during
// Serve — no "call between ticks" footgun.
type nodeCounters struct {
	FramesSent, BytesSent  atomic.Int64
	FramesRecv, RxRejected atomic.Int64
	HeartbeatsApplied      atomic.Int64
	PacketsForwarded       atomic.Int64
	PacketsDropped         atomic.Int64
	RegisterWrites         atomic.Int64
	StalenessExpiries      atomic.Int64
}

// snapshot reads every counter once.
func (c *nodeCounters) snapshot() NodeStats {
	return NodeStats{
		FramesSent:        int(c.FramesSent.Load()),
		BytesSent:         int(c.BytesSent.Load()),
		FramesRecv:        int(c.FramesRecv.Load()),
		RxRejected:        int(c.RxRejected.Load()),
		HeartbeatsApplied: int(c.HeartbeatsApplied.Load()),
		PacketsForwarded:  int(c.PacketsForwarded.Load()),
		PacketsDropped:    int(c.PacketsDropped.Load()),
		RegisterWrites:    int(c.RegisterWrites.Load()),
		StalenessExpiries: int(c.StalenessExpiries.Load()),
	}
}

// Stats returns a snapshot of the node's counters, safe at any time.
func (nd *Node) Stats() NodeStats { return nd.stats.snapshot() }

func newNode(id graph.NodeID, slot, n int, neighbors []graph.NodeID, weights []graph.Weight,
	ep Endpoint, codec wire.Codec, alg runtime.Algorithm) *Node {
	deg := len(neighbors)
	return &Node{
		id: id, slot: slot, n: n,
		neighbors: neighbors, weights: weights,
		ep: ep, codec: codec, alg: alg,
		cache:    make([]runtime.State, deg),
		lastSeen: make([]uint64, deg),
		lastSeq:  make([]uint64, deg),
		peers:    make([]runtime.State, deg),
		wasStale: make([]bool, deg),
	}
}

// ID returns the node's identity.
func (nd *Node) ID() graph.NodeID { return nd.id }

// State returns the node's current register content.
func (nd *Node) State() runtime.State {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.self
}

// setState publishes a new register content.
func (nd *Node) setState(s runtime.State) {
	nd.mu.Lock()
	nd.self = s
	nd.mu.Unlock()
}

// Inject parks a packet at this node (the gateway's entry point).
func (nd *Node) Inject(p wire.Packet) {
	nd.mu.Lock()
	nd.dataQ = append(nd.dataQ, p)
	nd.heldSince = append(nd.heldSince, nd.localTick)
	nd.mu.Unlock()
}

// absorb ingests delivered frames at the current local time without
// advancing the protocol clock or broadcasting — the free-running
// receive path. Keeping sends off this path bounds the heartbeat rate
// to the ticker: if arrivals triggered full ticks, every received
// frame would provoke an immediate rebroadcast and adjacent nodes
// would drive each other into a frame storm decoupled from Interval.
func (nd *Node) absorb(cfg *Config, gw *Gateway) {
	nd.drainBuf = nd.ep.Drain(nd.drainBuf[:0])
	for _, data := range nd.drainBuf {
		nd.ingest(data, nd.localTick, cfg, gw)
	}
}

// tick runs one protocol round at local time `now`: ingest delivered
// frames, apply one δ evaluation over the (staleness-filtered) cache
// view, forward parked packets, and heartbeat.
func (nd *Node) tick(now uint64, cfg *Config, gw *Gateway) {
	// localTick is written under the mutex: Gateway.Launch's Inject
	// reads it from outside the actor goroutine to date parked packets.
	nd.mu.Lock()
	nd.localTick = now
	nd.mu.Unlock()
	nd.drainBuf = nd.ep.Drain(nd.drainBuf[:0])
	for _, data := range nd.drainBuf {
		nd.ingest(data, now, cfg, gw)
	}
	nd.step(now, cfg)
	if gw != nil {
		nd.pump(now, cfg, gw)
	}
	// Heartbeat: immediately after a register change (convergence
	// latency), and periodically as keep-alive (staleness ground truth).
	if nd.changed || now%uint64(cfg.HeartbeatEvery) == 0 {
		nd.broadcast(now)
	}
}

// ingest applies one received frame. Undecodable frames — truncated,
// corrupted (checksum), foreign codec — are rejected and counted;
// heartbeats from non-neighbors are rejected (the model only grants a
// node its neighbors' registers); duplicated or reordered-stale
// heartbeats are rejected by sequence number.
func (nd *Node) ingest(data []byte, now uint64, cfg *Config, gw *Gateway) {
	nd.stats.FramesRecv.Add(1)
	f, err := wire.Decode(nd.codec, data)
	if err != nil {
		nd.stats.RxRejected.Add(1)
		return
	}
	switch f.Kind {
	case wire.KindHeartbeat:
		if f.Alg != nd.codec.Code() {
			nd.stats.RxRejected.Add(1)
			return
		}
		j, ok := slices.BinarySearch(nd.neighbors, f.Src)
		if !ok {
			nd.stats.RxRejected.Add(1)
			return
		}
		if f.Seq <= nd.lastSeq[j] {
			nd.stats.RxRejected.Add(1) // duplicate or reordered-stale
			return
		}
		// Under mu: the admin plane snapshots the cache from outside the
		// actor goroutine.
		nd.mu.Lock()
		nd.lastSeq[j] = f.Seq
		nd.cache[j] = f.State
		nd.lastSeen[j] = now
		nd.mu.Unlock()
		nd.stats.HeartbeatsApplied.Add(1)
	case wire.KindData:
		if gw == nil {
			nd.stats.RxRejected.Add(1)
			return
		}
		if f.Data.Dst == nd.id {
			gw.deliver(f.Data)
			return
		}
		nd.mu.Lock()
		nd.dataQ = append(nd.dataQ, f.Data)
		nd.heldSince = append(nd.heldSince, now)
		nd.mu.Unlock()
	}
}

// step evaluates δ once over the staleness-filtered cache view. A
// cache entry older than StalenessTTL local ticks is presented as nil —
// the algorithms treat an unknown neighbor state as inconsistency,
// never acting on stale data — exactly as a register wiped by a fault
// would read in the shared-memory model.
func (nd *Node) step(now uint64, cfg *Config) {
	for j := range nd.peers {
		stale := nd.lastSeen[j] == 0 || now-nd.lastSeen[j] > uint64(cfg.StalenessTTL)
		if stale {
			nd.peers[j] = nil
			// Count only heard-then-expired entries, not never-heard ones.
			if !nd.wasStale[j] && nd.lastSeen[j] != 0 {
				nd.stats.StalenessExpiries.Add(1)
			}
		} else {
			nd.peers[j] = nd.cache[j]
		}
		nd.wasStale[j] = stale
	}
	v := runtime.NewView(nd.id, nd.n, nd.neighbors, nd.weights, nd.self, nd.peers)
	next := nd.alg.Step(v)
	if nd.self == nil || !next.Equal(nd.self) {
		nd.setState(next)
		nd.changed = true
		nd.stats.RegisterWrites.Add(1)
	} else {
		nd.changed = false
	}
}

// pump advances every parked packet one hop over the gateway's current
// labeling. Unroutable packets stall in place (the labeling may heal);
// packets exceeding the hop budget or the stall budget are dropped and
// reported.
func (nd *Node) pump(now uint64, cfg *Config, gw *Gateway) {
	nd.mu.Lock()
	q, held := nd.dataQ, nd.heldSince
	nd.dataQ, nd.heldSince = nil, nil
	nd.mu.Unlock()
	var keepQ []wire.Packet
	var keepH []uint64
	for i, p := range q {
		next, ok := gw.nextHop(nd.id, p.Dst)
		switch {
		case !ok:
			if now-held[i] > uint64(cfg.MaxHold) {
				nd.stats.PacketsDropped.Add(1)
				gw.drop(p)
				continue
			}
			keepQ = append(keepQ, p)
			keepH = append(keepH, held[i])
		case p.Hops+1 > gw.maxHops:
			nd.stats.PacketsDropped.Add(1)
			gw.drop(p)
		default:
			p.Hops++
			data, err := wire.Encode(wire.Frame{Kind: wire.KindData, Src: nd.id, Data: p},
				nd.codec, &nd.enc, nil)
			if err != nil {
				nd.stats.PacketsDropped.Add(1)
				gw.drop(p)
				continue
			}
			nd.ep.Send(next, data)
			nd.stats.PacketsForwarded.Add(1)
			nd.stats.FramesSent.Add(1)
			nd.stats.BytesSent.Add(int64(len(data)))
		}
	}
	if len(keepQ) > 0 {
		nd.mu.Lock()
		nd.dataQ = append(keepQ, nd.dataQ...)
		nd.heldSince = append(keepH, nd.heldSince...)
		nd.mu.Unlock()
	}
}

// broadcast sends the node's register to every neighbor as one
// heartbeat frame (a shared byte slice: recipients only read).
func (nd *Node) broadcast(now uint64) {
	if nd.hbCadence != nil && nd.lastHB != 0 {
		nd.hbCadence.Observe(float64(now - nd.lastHB))
	}
	nd.lastHB = now
	nd.seq++
	data, err := wire.Encode(wire.Frame{
		Kind: wire.KindHeartbeat, Alg: nd.codec.Code(),
		Src: nd.id, Seq: nd.seq, State: nd.self,
	}, nd.codec, &nd.enc, nil)
	if err != nil {
		// A register the codec cannot carry is a wiring bug (foreign
		// state injected into the cluster); surface it loudly.
		panic("cluster: encode own register: " + err.Error())
	}
	for _, u := range nd.neighbors {
		nd.ep.Send(u, data)
		nd.stats.FramesSent.Add(1)
		nd.stats.BytesSent.Add(int64(len(data)))
	}
}
