package cluster

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"silentspan/internal/bits"
	"silentspan/internal/graph"
	"silentspan/internal/ops"
	"silentspan/internal/runtime"
	"silentspan/internal/trace"
	"silentspan/internal/wire"
)

// Node is one cluster member: an actor owning exactly its local
// register and a cache of its neighbors' last heartbeat states — the
// message-passing realization of the paper's single-writer
// multiple-reader register (Section II-A). All protocol state below is
// touched only by the node's own goroutine during a tick; the mutex
// guards the published register (and the data queue's injection side)
// for between-tick readers like the gateway.
type Node struct {
	id        graph.NodeID
	slot      int
	n         int            // network size (the model's known bound)
	neighbors []graph.NodeID // ascending; cloned from graph.Dense
	weights   []graph.Weight // parallel to neighbors, cloned
	ep        Endpoint
	codec     wire.Codec
	alg       runtime.Algorithm

	// Lifecycle plumbing, owned by the cluster coordinator (under
	// c.memMu): tickCh drives lockstep rounds, stop retires the actor in
	// either mode, stopped is closed by the actor goroutine on exit.
	tickCh  chan uint64
	stop    chan struct{}
	stopped chan struct{}
	running bool

	mu   sync.Mutex
	self runtime.State

	// pendingRemap carries a neighbor-row update queued by the
	// coordinator while the actor may be mid-tick (Serve mode); the
	// actor applies it at the top of its next tick or absorb. Guarded by
	// mu. Lockstep remaps apply synchronously instead (actors are parked
	// between ticks).
	pendingRemap *nodeRemap
	// advertPending arms the membership beacon: the node's next tick
	// opens with a KindAdvert broadcast (set on Join, before the actor
	// spawns; consumed by the actor).
	advertPending bool
	// adminAddr is the ops-plane address carried in this node's adverts
	// (empty without an admin server). Guarded by mu.
	adminAddr string

	// Neighbor-state cache, parallel to neighbors. lastSeen is the local
	// tick of the last accepted heartbeat (0 = never); lastSeq the
	// highest accepted sequence number, which rejects duplicated and
	// reordered-stale heartbeats. Cache writes happen under mu so the
	// admin plane can snapshot a live node; the owning goroutine's own
	// reads stay lock-free (it is the only writer).
	cache    []runtime.State
	lastSeen []uint64
	lastSeq  []uint64
	peers    []runtime.State // per-tick effective view (staleness applied)
	// wasStale tracks each entry's staleness as of the last step, so
	// fresh→stale transitions are counted exactly once per expiry.
	wasStale []bool

	// Receiver-side delta anchors, parallel to neighbors: the register
	// and seq of the last self-contained frame accepted per neighbor —
	// the base the sender's deltas are applied against. lastResync
	// rate-limits re-anchor requests to one per neighbor per tick.
	anchorRx    []runtime.State
	anchorSeqRx []uint64
	lastResync  []uint64
	// peerAdmin holds advert-learned ops-plane addresses, parallel to
	// neighbors — the decentralized leg of admin discovery.
	peerAdmin []string

	// dataQ holds routed packets parked at this node (in flight, or
	// stalled on an unroutable labeling). heldSince is parallel.
	dataQ     []wire.Packet
	heldSince []uint64

	seq       uint64 // own heartbeat counter
	localTick uint64
	changed   bool   // register changed during the last tick
	lastHB    uint64 // local tick of the last broadcast (cadence metric)

	// Sender-side delta and cadence state (actor-owned; changedSince is
	// also set under mu by out-of-band register writes between ticks).
	anchorState   runtime.State // register as of the last self-contained broadcast
	anchorSeq     uint64
	sinceFull     int  // broadcasts since the last self-contained frame
	resyncPending bool // some neighbor asked to re-anchor
	changedSince  bool // register changed since the last broadcast
	gap           uint64
	nextHB        uint64 // local tick the next keep-alive is due

	// Termination-detector state (quiet.go). qRx caches the last
	// accepted quiet report per neighbor, parallel to neighbors. The
	// scalar fields are the node's own detector round: its write epoch
	// (a Lamport clock over register writes and membership events), the
	// local tick of its last activity, the report its frames carry, and
	// whether it is a root with an active announcement. All are guarded
	// by mu: out-of-band writes and the admin plane touch them from
	// outside the actor goroutine.
	qRx      []wire.QuietReport
	qWrote   bool   // register written since the last detector round
	qEpoch   uint64 // write epoch; joins to the max epoch heard
	qLastAct uint64 // local tick of the last write or eviction
	qOut     wire.QuietReport
	qDirty   bool   // report transition pending an urgent broadcast
	qAnnRoot bool   // this node is a root with an active announcement
	qAnnEp   uint64 // epoch of the root's active announcement

	// noteAnn reports root-announcement transitions to the cluster;
	// writeCount and writeClock mirror every register write into
	// cluster-level aggregates. All nil for standalone nodes.
	noteAnn    func(root graph.NodeID, epoch uint64, active bool)
	writeCount *atomic.Int64
	writeClock *atomic.Int64

	enc      bits.Builder
	decBuf   []uint64 // reusable frame-decode scratch
	drainBuf [][]byte

	stats nodeCounters
	// hbCadence (heartbeat intervals) and frameBytes (encoded frame
	// sizes) are cluster-shared histograms, nil when the cluster runs
	// without a metrics registry.
	hbCadence  *ops.Histogram
	frameBytes *ops.Histogram

	// ring is the causal flight recorder (trace.go in this package,
	// DESIGN.md §14) — nil until EnableFlightRecorder arms it. Behind an
	// atomic pointer so arming mid-Serve needs no actor coordination and
	// the disabled hook path is one load-and-branch. epochMirror shadows
	// qEpoch for hooks that record outside nd.mu; it is written at every
	// qEpoch write site.
	ring        atomic.Pointer[trace.Ring]
	epochMirror atomic.Uint64
}

// NodeStats is a snapshot of one node's transport-visible activity.
type NodeStats struct {
	FramesSent, BytesSent  int
	FramesRecv, RxRejected int
	HeartbeatsApplied      int
	PacketsForwarded       int
	PacketsDropped         int
	// RegisterWrites counts δ-driven register changes (the node's
	// moves); StalenessExpiries counts fresh→stale cache transitions.
	RegisterWrites    int
	StalenessExpiries int
	// Delta-protocol accounting: self-contained anchor frames vs delta
	// frames broadcast, re-anchor requests sent, and received deltas
	// dropped for want of their anchor.
	AnchorsSent int
	DeltasSent  int
	ResyncsSent int
	DeltaMisses int
	// Membership accounting: adverts broadcast on (re)join, and neighbor
	// cache entries evicted by goodbyes or reset by adverts.
	AdvertsSent       int
	NeighborEvictions int
}

// nodeCounters is the live counter set. All fields are atomic: the
// owning goroutine increments them mid-tick while Stats / the metrics
// scrape / the admin API read them, so observation is safe during
// Serve — no "call between ticks" footgun.
type nodeCounters struct {
	FramesSent, BytesSent  atomic.Int64
	FramesRecv, RxRejected atomic.Int64
	HeartbeatsApplied      atomic.Int64
	PacketsForwarded       atomic.Int64
	PacketsDropped         atomic.Int64
	RegisterWrites         atomic.Int64
	StalenessExpiries      atomic.Int64
	AnchorsSent            atomic.Int64
	DeltasSent             atomic.Int64
	ResyncsSent            atomic.Int64
	DeltaMisses            atomic.Int64
	AdvertsSent            atomic.Int64
	NeighborEvictions      atomic.Int64
}

// snapshot reads every counter once.
func (c *nodeCounters) snapshot() NodeStats {
	return NodeStats{
		FramesSent:        int(c.FramesSent.Load()),
		BytesSent:         int(c.BytesSent.Load()),
		FramesRecv:        int(c.FramesRecv.Load()),
		RxRejected:        int(c.RxRejected.Load()),
		HeartbeatsApplied: int(c.HeartbeatsApplied.Load()),
		PacketsForwarded:  int(c.PacketsForwarded.Load()),
		PacketsDropped:    int(c.PacketsDropped.Load()),
		RegisterWrites:    int(c.RegisterWrites.Load()),
		StalenessExpiries: int(c.StalenessExpiries.Load()),
		AnchorsSent:       int(c.AnchorsSent.Load()),
		DeltasSent:        int(c.DeltasSent.Load()),
		ResyncsSent:       int(c.ResyncsSent.Load()),
		DeltaMisses:       int(c.DeltaMisses.Load()),
		AdvertsSent:       int(c.AdvertsSent.Load()),
		NeighborEvictions: int(c.NeighborEvictions.Load()),
	}
}

// Stats returns a snapshot of the node's counters, safe at any time.
func (nd *Node) Stats() NodeStats { return nd.stats.snapshot() }

func newNode(id graph.NodeID, slot, n int, neighbors []graph.NodeID, weights []graph.Weight,
	ep Endpoint, codec wire.Codec, alg runtime.Algorithm) *Node {
	deg := len(neighbors)
	return &Node{
		id: id, slot: slot, n: n,
		neighbors: neighbors, weights: weights,
		ep: ep, codec: codec, alg: alg,
		cache:       make([]runtime.State, deg),
		lastSeen:    make([]uint64, deg),
		lastSeq:     make([]uint64, deg),
		peers:       make([]runtime.State, deg),
		wasStale:    make([]bool, deg),
		anchorRx:    make([]runtime.State, deg),
		anchorSeqRx: make([]uint64, deg),
		lastResync:  make([]uint64, deg),
		peerAdmin:   make([]string, deg),
		qRx:         make([]wire.QuietReport, deg),
	}
}

// nodeRemap is a queued neighbor-row update: the dense row recomputed
// by the coordinator after a membership or link change, plus the ids
// whose receive state must start fresh (a neighbor id recycled by a
// join — its old incarnation's seq filter and anchors must not shadow
// the new one).
type nodeRemap struct {
	n         int
	neighbors []graph.NodeID
	weights   []graph.Weight
	reset     []graph.NodeID
}

// applyRemapLocked rebuilds the per-neighbor parallel arrays for a new
// neighbor row, carrying over receive state for neighbors that persist
// and zeroing entries for new, departed-then-returned, or reset ids.
// Caller holds nd.mu.
func (nd *Node) applyRemapLocked(r *nodeRemap) {
	deg := len(r.neighbors)
	cache := make([]runtime.State, deg)
	lastSeen := make([]uint64, deg)
	lastSeq := make([]uint64, deg)
	wasStale := make([]bool, deg)
	anchorRx := make([]runtime.State, deg)
	anchorSeqRx := make([]uint64, deg)
	lastResync := make([]uint64, deg)
	peerAdmin := make([]string, deg)
	qRx := make([]wire.QuietReport, deg)
	for j, id := range r.neighbors {
		if slices.Contains(r.reset, id) {
			continue
		}
		if k, ok := slices.BinarySearch(nd.neighbors, id); ok {
			cache[j] = nd.cache[k]
			lastSeen[j] = nd.lastSeen[k]
			lastSeq[j] = nd.lastSeq[k]
			wasStale[j] = nd.wasStale[k]
			anchorRx[j] = nd.anchorRx[k]
			anchorSeqRx[j] = nd.anchorSeqRx[k]
			lastResync[j] = nd.lastResync[k]
			peerAdmin[j] = nd.peerAdmin[k]
			qRx[j] = nd.qRx[k]
		}
	}
	nd.n = r.n
	nd.neighbors, nd.weights = r.neighbors, r.weights
	nd.cache, nd.lastSeen, nd.lastSeq, nd.wasStale = cache, lastSeen, lastSeq, wasStale
	nd.peers = make([]runtime.State, deg)
	nd.anchorRx, nd.anchorSeqRx, nd.lastResync, nd.peerAdmin = anchorRx, anchorSeqRx, lastResync, peerAdmin
	nd.qRx = qRx
	// A membership event is activity: bump the epoch so any quiet claim
	// built over the old topology is retracted, and restart the local
	// quiet window.
	nd.qEpoch++
	nd.epochMirror.Store(nd.qEpoch)
	nd.qLastAct = nd.localTick
	nd.qDirty = true
}

// applyPendingLocked applies a queued remap, if any. Caller holds nd.mu.
func (nd *Node) applyPendingLocked() {
	if r := nd.pendingRemap; r != nil {
		nd.pendingRemap = nil
		nd.applyRemapLocked(r)
	}
}

// ID returns the node's identity.
func (nd *Node) ID() graph.NodeID { return nd.id }

// State returns the node's current register content.
func (nd *Node) State() runtime.State {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.self
}

// setState publishes a new register content and flags the cadence
// machinery: any register write — δ-driven or out-of-band (SetState,
// Corrupt) — snaps the heartbeat back to the base interval.
func (nd *Node) setState(s runtime.State) {
	nd.mu.Lock()
	nd.self = s
	nd.changedSince = true
	nd.qWrote = true
	nd.recordEpoch(trace.RegWrite, trace.ClassNone, 0, 0, 0, nd.localTick, nd.qEpoch)
	nd.mu.Unlock()
	if nd.writeCount != nil {
		nd.writeCount.Add(1)
	}
	if nd.writeClock != nil {
		nd.writeClock.Store(time.Now().UnixNano())
	}
}

// Inject parks a packet at this node (the gateway's entry point).
func (nd *Node) Inject(p wire.Packet) {
	nd.mu.Lock()
	nd.dataQ = append(nd.dataQ, p)
	nd.heldSince = append(nd.heldSince, nd.localTick)
	nd.recordEpoch(trace.PacketLaunch, trace.ClassData, 0, p.ID, uint64(p.Hops), nd.localTick, nd.qEpoch)
	nd.mu.Unlock()
}

// absorb ingests delivered frames at the current local time without
// advancing the protocol clock or broadcasting — the free-running
// receive path. Keeping sends off this path bounds the heartbeat rate
// to the ticker: if arrivals triggered full ticks, every received
// frame would provoke an immediate rebroadcast and adjacent nodes
// would drive each other into a frame storm decoupled from Interval.
func (nd *Node) absorb(cfg *Config, gw *Gateway) {
	nd.mu.Lock()
	nd.applyPendingLocked()
	nd.mu.Unlock()
	nd.drainBuf = nd.ep.Drain(nd.drainBuf[:0])
	for _, data := range nd.drainBuf {
		nd.ingest(data, nd.localTick, cfg, gw)
	}
}

// tick runs one protocol round at local time `now`: ingest delivered
// frames, apply one δ evaluation over the (staleness-filtered) cache
// view, forward parked packets, and heartbeat.
func (nd *Node) tick(now uint64, cfg *Config, gw *Gateway) {
	// localTick is written under the mutex: Gateway.Launch's Inject
	// reads it from outside the actor goroutine to date parked packets.
	// Queued neighbor-row updates apply here, before the drain, so
	// frames from a just-added neighbor are not rejected as foreign.
	nd.mu.Lock()
	nd.applyPendingLocked()
	nd.localTick = now
	nd.mu.Unlock()
	nd.drainBuf = nd.ep.Drain(nd.drainBuf[:0])
	for _, data := range nd.drainBuf {
		nd.ingest(data, now, cfg, gw)
	}
	nd.step(now, cfg)
	nd.updateQuiet(now, cfg)
	if gw != nil {
		nd.pump(now, cfg, gw)
	}
	// Heartbeat policy: immediately on a re-anchor request, after a
	// register change once MinGap ticks have passed since the last frame
	// (convergence latency), and when the keep-alive falls due. The
	// keep-alive gap backs off exponentially while the register is quiet
	// (see sendHB), so a converged cluster goes nearly silent.
	// A (re)joining node precedes its first heartbeat with an advert:
	// receivers reset the id's cached state before fresh frames land.
	// Join also arms resyncPending, so the heartbeat that follows in
	// this same tick is a self-contained anchor.
	if nd.advertPending {
		nd.advertPending = false
		nd.sendAdvert()
	}
	// Detector-report transitions (subtree-quiet flips, announcement
	// fire/retract) count as urgent like register changes: the
	// convergecast and the flood-down travel at change speed, not at the
	// backed-off keep-alive cadence.
	nd.mu.Lock()
	urgent := nd.changedSince || nd.qDirty
	nd.mu.Unlock()
	if nd.resyncPending || (urgent && now-nd.lastHB >= uint64(cfg.MinGap)) || now >= nd.nextHB {
		nd.sendHB(now, urgent, cfg)
	}
}

// ingest applies one received frame. Undecodable frames — truncated,
// corrupted (checksum), foreign codec — are rejected and counted;
// heartbeats from non-neighbors are rejected (the model only grants a
// node its neighbors' registers); duplicated or reordered-stale
// heartbeats are rejected by sequence number. Delta frames apply
// against the sender's last self-contained anchor; a delta whose
// anchor this node never accepted (lost or reordered away) is dropped
// without refreshing the cache and answered with a resync request.
func (nd *Node) ingest(data []byte, now uint64, cfg *Config, gw *Gateway) {
	nd.stats.FramesRecv.Add(1)
	f, buf, err := wire.DecodeBuf(nd.codec, data, nd.decBuf)
	nd.decBuf = buf
	if err != nil {
		nd.stats.RxRejected.Add(1)
		return
	}
	switch f.Kind {
	case wire.KindHeartbeat, wire.KindDelta:
		if f.Alg != nd.codec.Code() {
			nd.stats.RxRejected.Add(1)
			return
		}
		j, ok := slices.BinarySearch(nd.neighbors, f.Src)
		if !ok {
			nd.stats.RxRejected.Add(1)
			return
		}
		if f.Seq <= nd.lastSeq[j] {
			nd.stats.RxRejected.Add(1) // duplicate or reordered-stale
			return
		}
		st := f.State
		anchor := f.Kind == wire.KindDelta && f.BaseSeq == f.Seq
		if f.Kind == wire.KindDelta && !anchor {
			switch {
			case nd.anchorRx[j] != nil && nd.anchorSeqRx[j] == f.BaseSeq:
				st, err = wire.ApplyDelta(nd.codec, f, nd.anchorRx[j])
				if err != nil {
					// Matching anchor but an unappliable payload: the
					// sender and this node disagree on the base. Re-anchor.
					nd.stats.RxRejected.Add(1)
					nd.requestResync(j, f.Src, now)
					return
				}
			case nd.anchorSeqRx[j] > f.BaseSeq:
				// A delta against an anchor this node has already replaced
				// — a straggler overtaken by a newer full frame. The newer
				// anchor carries fresher state than this delta would yield.
				nd.stats.RxRejected.Add(1)
				return
			default:
				// The delta's anchor never arrived here (lost, or the
				// sender re-anchored while this node was partitioned). The
				// cache must not be refreshed by a frame that cannot be
				// read; ask the sender for a new self-contained frame.
				nd.stats.DeltaMisses.Add(1)
				nd.requestResync(j, f.Src, now)
				return
			}
		}
		// Under mu: the admin plane snapshots the cache from outside the
		// actor goroutine.
		nd.mu.Lock()
		nd.lastSeq[j] = f.Seq
		nd.cache[j] = st
		nd.lastSeen[j] = now
		nd.qRx[j] = f.Q
		if anchor {
			nd.anchorRx[j] = st
			nd.anchorSeqRx[j] = f.Seq
		}
		nd.mu.Unlock()
		nd.stats.HeartbeatsApplied.Add(1)
		nd.record(trace.FrameRx, trace.ClassHeartbeat, f.Src, f.Seq, 0, now)
	case wire.KindResync:
		if f.Alg != nd.codec.Code() {
			nd.stats.RxRejected.Add(1)
			return
		}
		if _, ok := slices.BinarySearch(nd.neighbors, f.Src); !ok {
			nd.stats.RxRejected.Add(1)
			return
		}
		nd.resyncPending = true
		nd.record(trace.FrameRx, trace.ClassResync, f.Src, f.Seq, 0, now)
	case wire.KindAdvert:
		if f.Alg != nd.codec.Code() {
			nd.stats.RxRejected.Add(1)
			return
		}
		j, ok := slices.BinarySearch(nd.neighbors, f.Src)
		if !ok {
			// Membership never derives from the wire: an advert from a
			// non-neighbor — forged, corrupted-but-decodable, or ahead of
			// this node's own topology update — is rejected outright, so
			// no frame can ever create a phantom member.
			nd.stats.RxRejected.Add(1)
			return
		}
		if f.Seq < nd.lastSeq[j] {
			nd.stats.RxRejected.Add(1) // straggler from a previous incarnation
			return
		}
		if len(f.Neighbors) > 0 {
			if _, ok := slices.BinarySearch(f.Neighbors, nd.id); !ok {
				// The digest does not list this node: the advertiser does
				// not consider us a neighbor, so its entry must not be
				// refreshed on its behalf.
				nd.stats.RxRejected.Add(1)
				return
			}
		}
		// A fresh incarnation of the id: wipe everything cached about the
		// old one and pin the seq filter at the advertised floor, so the
		// rejoiner's early (low-seq) heartbeats are not dropped as
		// stragglers and old in-flight frames cannot shadow it.
		nd.mu.Lock()
		nd.lastSeq[j] = f.Seq
		nd.cache[j] = nil
		nd.lastSeen[j] = 0
		nd.wasStale[j] = false
		nd.anchorRx[j] = nil
		nd.anchorSeqRx[j] = 0
		nd.lastResync[j] = 0
		nd.peerAdmin[j] = f.AdminAddr
		nd.qRx[j] = wire.QuietReport{}
		nd.qEpoch++
		nd.epochMirror.Store(nd.qEpoch)
		nd.qLastAct = now
		nd.mu.Unlock()
		nd.stats.NeighborEvictions.Add(1)
		nd.record(trace.FrameRx, trace.ClassAdvert, f.Src, f.Seq, 0, now)
	case wire.KindLeave:
		if f.Alg != nd.codec.Code() {
			nd.stats.RxRejected.Add(1)
			return
		}
		j, ok := slices.BinarySearch(nd.neighbors, f.Src)
		if !ok {
			nd.stats.RxRejected.Add(1)
			return
		}
		if f.Seq < nd.lastSeq[j] {
			nd.stats.RxRejected.Add(1) // goodbye overtaken by fresher frames
			return
		}
		// Cooperative eviction: drop the leaver's cached register and
		// anchors now instead of waiting out the staleness TTL.
		nd.mu.Lock()
		nd.lastSeq[j] = f.Seq
		nd.cache[j] = nil
		nd.lastSeen[j] = 0
		nd.wasStale[j] = false
		nd.anchorRx[j] = nil
		nd.anchorSeqRx[j] = 0
		nd.lastResync[j] = 0
		nd.peerAdmin[j] = ""
		nd.qRx[j] = wire.QuietReport{}
		nd.qEpoch++
		nd.epochMirror.Store(nd.qEpoch)
		nd.qLastAct = now
		nd.mu.Unlock()
		nd.stats.NeighborEvictions.Add(1)
		nd.record(trace.FrameRx, trace.ClassLeave, f.Src, f.Seq, 0, now)
	case wire.KindData:
		if gw == nil {
			nd.stats.RxRejected.Add(1)
			return
		}
		if f.Data.Dst == nd.id {
			// Recorded whether or not this copy wins the gateway's
			// single-shot resolution: the ring holds local truth, and the
			// chain check tolerates duplicate delivery events.
			nd.record(trace.PacketDeliver, trace.ClassData, f.Src, f.Data.ID, uint64(f.Data.Hops), now)
			gw.deliver(f.Data)
			return
		}
		nd.mu.Lock()
		nd.dataQ = append(nd.dataQ, f.Data)
		nd.heldSince = append(nd.heldSince, now)
		nd.mu.Unlock()
		nd.record(trace.PacketRx, trace.ClassData, f.Src, f.Data.ID, uint64(f.Data.Hops), now)
	}
}

// step evaluates δ once over the staleness-filtered cache view. A
// cache entry older than StalenessTTL local ticks is presented as nil —
// the algorithms treat an unknown neighbor state as inconsistency,
// never acting on stale data — exactly as a register wiped by a fault
// would read in the shared-memory model.
func (nd *Node) step(now uint64, cfg *Config) {
	// pullAfter is the freshness-pull threshold: a quiet neighbor
	// legitimately ages up to BackoffCap plus delivery slack between
	// keep-alives, so an age beyond cap+cap/2+3 means a frame was lost.
	// Pulling a fresh anchor then repairs the cache in a couple of ticks
	// instead of waiting out the next backed-off keep-alive — without it
	// a lost keep-alive could leave a cache stale (but unexpired) long
	// enough for the cluster to look quiet in a non-silent configuration.
	pullAfter := uint64(cfg.BackoffCap + cfg.BackoffCap/2 + 3)
	for j := range nd.peers {
		age := now - nd.lastSeen[j]
		stale := nd.lastSeen[j] == 0 || age > uint64(cfg.StalenessTTL)
		if stale {
			nd.peers[j] = nil
			// Count only heard-then-expired entries, not never-heard ones.
			if !nd.wasStale[j] && nd.lastSeen[j] != 0 {
				nd.stats.StalenessExpiries.Add(1)
			}
			// A neighbor this node has never heard from — a joiner's empty
			// row, or an entry wiped by a rejoiner's advert whose first
			// anchor was then lost — has no age to grow past the freshness
			// pull below, so without an explicit pull a lost anchor leaves
			// the row empty until the peer's next register change: the
			// cluster can go quiet in a non-silent configuration. Past the
			// startup grace (frames normally land within a tick or two),
			// pull an anchor outright.
			if !cfg.DisableDelta && nd.lastSeen[j] == 0 && now > pullAfter {
				nd.requestResync(j, nd.neighbors[j], now)
			}
		} else {
			nd.peers[j] = nd.cache[j]
			if !cfg.DisableDelta && age > pullAfter {
				nd.requestResync(j, nd.neighbors[j], now)
			}
		}
		nd.wasStale[j] = stale
	}
	v := runtime.NewView(nd.id, nd.n, nd.neighbors, nd.weights, nd.self, nd.peers)
	next := nd.alg.Step(v)
	if nd.self == nil || !next.Equal(nd.self) {
		nd.setState(next)
		nd.changed = true
		nd.stats.RegisterWrites.Add(1)
	} else {
		nd.changed = false
	}
}

// pump advances every parked packet one hop over the gateway's current
// labeling. Unroutable packets stall in place (the labeling may heal);
// packets exceeding the hop budget or the stall budget are dropped and
// reported.
func (nd *Node) pump(now uint64, cfg *Config, gw *Gateway) {
	nd.mu.Lock()
	q, held := nd.dataQ, nd.heldSince
	nd.dataQ, nd.heldSince = nil, nil
	nd.mu.Unlock()
	var keepQ []wire.Packet
	var keepH []uint64
	for i, p := range q {
		next, ok := gw.nextHop(nd.id, p.Dst)
		switch {
		case !ok:
			if now-held[i] > uint64(cfg.MaxHold) {
				// The node counter follows the gateway's single-shot
				// resolution: a duplicate copy dying here after its sibling
				// resolved is invisible in both ledgers.
				if gw.drop(p) {
					nd.stats.PacketsDropped.Add(1)
				}
				nd.record(trace.PacketDrop, trace.ClassData, 0, p.ID, uint64(p.Hops), now)
				continue
			}
			keepQ = append(keepQ, p)
			keepH = append(keepH, held[i])
		case p.Hops+1 > gw.maxHops:
			if gw.drop(p) {
				nd.stats.PacketsDropped.Add(1)
			}
			nd.record(trace.PacketDrop, trace.ClassData, 0, p.ID, uint64(p.Hops), now)
		default:
			p.Hops++
			data, err := wire.Encode(wire.Frame{Kind: wire.KindData, Src: nd.id, Data: p},
				nd.codec, &nd.enc, nil)
			if err != nil {
				if gw.drop(p) {
					nd.stats.PacketsDropped.Add(1)
				}
				nd.record(trace.PacketDrop, trace.ClassData, 0, p.ID, uint64(p.Hops), now)
				continue
			}
			nd.ep.Send(next, data)
			nd.record(trace.PacketFwd, trace.ClassData, next, p.ID, uint64(p.Hops), now)
			nd.stats.PacketsForwarded.Add(1)
			nd.stats.FramesSent.Add(1)
			nd.stats.BytesSent.Add(int64(len(data)))
			if nd.frameBytes != nil {
				nd.frameBytes.Observe(float64(len(data)))
			}
		}
	}
	if len(keepQ) > 0 {
		nd.mu.Lock()
		nd.dataQ = append(keepQ, nd.dataQ...)
		nd.heldSince = append(keepH, nd.heldSince...)
		nd.mu.Unlock()
	}
}

// sendHB runs one heartbeat emission: advance the keep-alive schedule
// (exponential back-off while quiet, instant reset on any change or
// re-anchor request) and broadcast. The back-off cap is derived from
// StalenessTTL in Config.fill so that even consecutive lost keep-alives
// cannot push a peer's observed age past the TTL.
func (nd *Node) sendHB(now uint64, urgent bool, cfg *Config) {
	if !urgent && !nd.resyncPending && !cfg.DisableBackoff {
		nd.gap = min(nd.gap*2, uint64(cfg.BackoffCap))
	} else {
		nd.gap = uint64(cfg.HeartbeatEvery)
	}
	nd.gap = max(nd.gap, uint64(cfg.HeartbeatEvery))
	nd.nextHB = now + nd.gap
	if nd.hbCadence != nil && nd.lastHB != 0 {
		nd.hbCadence.Observe(float64(now - nd.lastHB))
	}
	nd.lastHB = now
	nd.mu.Lock()
	nd.changedSince = false
	nd.qDirty = false
	nd.mu.Unlock()
	nd.broadcast(now, cfg)
}

// broadcast sends the node's register to every neighbor as one frame
// (a shared byte slice: recipients only read). With the delta protocol
// enabled the frame is self-contained — a fresh anchor — when a
// neighbor asked for one, when no anchor exists yet, or every FullEvery
// broadcasts as a drift bound; otherwise it carries only the registers
// changed since the anchor, which for a quiet register is a bare
// header: the near-free keep-alive.
func (nd *Node) broadcast(now uint64, cfg *Config) {
	nd.seq++
	f := wire.Frame{Kind: wire.KindHeartbeat, Alg: nd.codec.Code(),
		Src: nd.id, Seq: nd.seq, State: nd.self, Q: nd.qOut}
	if !cfg.DisableDelta {
		f.Kind = wire.KindDelta
		full := nd.resyncPending || nd.anchorState == nil || nd.self == nil ||
			nd.sinceFull >= cfg.FullEvery
		if full {
			f.BaseSeq = nd.seq
			nd.anchorState = nd.self
			nd.anchorSeq = nd.seq
			nd.sinceFull = 0
			nd.resyncPending = false
			nd.stats.AnchorsSent.Add(1)
		} else {
			f.BaseSeq = nd.anchorSeq
			f.Base = nd.anchorState
			nd.sinceFull++
			nd.stats.DeltasSent.Add(1)
		}
	}
	data, err := wire.Encode(f, nd.codec, &nd.enc, nil)
	if err != nil {
		// A register the codec cannot carry is a wiring bug (foreign
		// state injected into the cluster); surface it loudly.
		panic("cluster: encode own register: " + err.Error())
	}
	nd.ep.Broadcast(nd.neighbors, data)
	// One tx event per broadcast (not per fan-out copy), mirroring the
	// frameBytes convention; every receiver's rx stitches to it.
	nd.record(trace.FrameTx, trace.ClassHeartbeat, 0, nd.seq, 0, now)
	nd.stats.FramesSent.Add(int64(len(nd.neighbors)))
	nd.stats.BytesSent.Add(int64(len(nd.neighbors) * len(data)))
	if nd.frameBytes != nil {
		nd.frameBytes.Observe(float64(len(data)))
	}
}

// sendAdvert broadcasts the membership beacon: identity, opening seq
// (the receiver's new duplicate-filter floor), ops-plane address, and
// a digest of the neighbors this node was configured with.
func (nd *Node) sendAdvert() {
	nd.seq++
	nd.mu.Lock()
	addr := nd.adminAddr
	nd.mu.Unlock()
	f := wire.Frame{Kind: wire.KindAdvert, Alg: nd.codec.Code(),
		Src: nd.id, Seq: nd.seq, AdminAddr: addr, Neighbors: nd.neighbors}
	data, err := wire.Encode(f, nd.codec, &nd.enc, nil)
	if err != nil {
		panic("cluster: encode advert: " + err.Error())
	}
	nd.ep.Broadcast(nd.neighbors, data)
	nd.record(trace.FrameTx, trace.ClassAdvert, 0, nd.seq, 0, nd.localTick)
	nd.stats.AdvertsSent.Add(1)
	nd.stats.FramesSent.Add(int64(len(nd.neighbors)))
	nd.stats.BytesSent.Add(int64(len(nd.neighbors) * len(data)))
	if nd.frameBytes != nil {
		nd.frameBytes.Observe(float64(len(data)))
	}
}

// requestResync asks neighbor j (id `to`) for a fresh self-contained
// frame, at most once per neighbor per local tick: one lost anchor can
// orphan a whole flight of deltas, and one resync heals them all.
func (nd *Node) requestResync(j int, to graph.NodeID, now uint64) {
	if nd.lastResync[j] == now+1 {
		return
	}
	nd.lastResync[j] = now + 1
	data, err := wire.Encode(wire.Frame{Kind: wire.KindResync, Alg: nd.codec.Code(),
		Src: nd.id, Seq: nd.anchorSeqRx[j]}, nd.codec, &nd.enc, nil)
	if err != nil {
		return // resync carries no state; encode cannot fail in practice
	}
	nd.ep.Send(to, data)
	nd.record(trace.FrameTx, trace.ClassResync, to, nd.anchorSeqRx[j], 0, now)
	nd.stats.ResyncsSent.Add(1)
	nd.stats.FramesSent.Add(1)
	nd.stats.BytesSent.Add(int64(len(data)))
	if nd.frameBytes != nil {
		nd.frameBytes.Observe(float64(len(data)))
	}
}
