// Package core implements the paper's primary contribution: the
// PLS-guided spanning tree construction framework (Algorithm 1 for
// single-swap improvements, Section III, and Algorithm 3 for well-nested
// multi-swap improvements, Section VII).
//
// A constrained spanning tree family F is described to the framework by a
// potential function φ with φ(T) ≥ 0 and φ(T) = 0 ⇔ T ∈ F(G), together
// with an improvement finder. φ is *cyclical-decreasing* when a single
// fundamental-cycle swap T + e − f can always lower it (Section III), and
// *nest-decreasing* when a well-nested sequence of swaps can (Section
// VII). The framework then provides:
//
//   - a sequential reference engine (the literal Algorithm 1/3 loop),
//     used as ground truth and for the φ-monotonicity experiments; and
//   - a distributed engine executing the same loop on the state-model
//     runtime: the substrate of internal/switching stabilizes a spanning
//     tree from arbitrary register contents, task labels are installed
//     and charged their construction rounds (t_label), improvements are
//     found and charged their discovery rounds (t_find), and every swap
//     runs as a chain of local switches through the loop-free malleable
//     protocol of Section IV, monitored for loop-freedom throughout.
//
// Round accounting follows Lemma 3.1/7.1: the total is the sum of the
// substrate rounds, per-iteration label and find rounds, and the actual
// runtime rounds consumed by the switch protocol.
package core

import (
	"fmt"
	"math/rand"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

// Swap is one edge exchange T ← T + Add − Remove, with Add a non-tree
// edge and Remove a tree edge on the fundamental cycle of T + Add.
type Swap struct {
	Add    graph.Edge
	Remove graph.Edge
}

// String renders the swap.
func (s Swap) String() string {
	return fmt.Sprintf("+{%d,%d} -{%d,%d}", s.Add.U, s.Add.V, s.Remove.U, s.Remove.V)
}

// LabelInfo reports the cost of installing a task's labels on the
// current tree in a silent self-stabilizing way.
type LabelInfo struct {
	// MaxBits is the largest per-node label in bits (s_label).
	MaxBits int
	// Rounds is the number of rounds charged for the construction
	// (t_label).
	Rounds int
}

// Task describes a constrained spanning tree family to the framework.
type Task interface {
	// Name identifies the task.
	Name() string
	// Value returns φ(T): non-negative, zero exactly on F(G).
	Value(g *graph.Graph, t *trees.Tree) (int, error)
	// MaxValue returns φ_max for an n-node instance (the iteration bound
	// of Lemma 3.1/7.1).
	MaxValue(g *graph.Graph) int
	// Label computes/refreshes the task's labels for the tree and
	// reports their cost. Implementations emulate the convergecast and
	// broadcast waves of the paper and charge rounds accordingly.
	Label(g *graph.Graph, t *trees.Tree) (LabelInfo, error)
	// FindImprovement returns a well-nested sequence of swaps strictly
	// lowering φ (a single swap for cyclical-decreasing families), with
	// the rounds charged for the distributed discovery (t_find).
	// ok is false when φ(T) = 0.
	FindImprovement(g *graph.Graph, t *trees.Tree) (swaps []Swap, rounds int, ok bool, err error)
}

// Trace records one framework execution.
type Trace struct {
	// Potentials is the φ value before each iteration, ending with 0.
	Potentials []int
	// Improvements is the number of improvement iterations executed.
	Improvements int
	// Rounds is the total accounted rounds.
	Rounds int
	// Moves is the total state-model moves of the runtime executions
	// (distributed engine only).
	Moves int
	// MaxLabelBits is the largest task label seen (s_label).
	MaxLabelBits int
	// MaxRegisterBits is the largest substrate/switch register seen
	// (distributed engine only).
	MaxRegisterBits int
}

// RunSequential executes the literal Algorithm 1/3 loop on a tree: while
// φ(T) ≠ 0, apply an improving well-nested swap sequence. It verifies
// strict φ decrease at every iteration and the φ_max iteration bound.
func RunSequential(g *graph.Graph, t0 *trees.Tree, task Task) (*trees.Tree, Trace, error) {
	t := t0.Clone()
	var trace Trace
	phi, err := task.Value(g, t)
	if err != nil {
		return nil, trace, fmt.Errorf("core: initial potential: %w", err)
	}
	maxIter := task.MaxValue(g) + 1
	for iter := 0; ; iter++ {
		trace.Potentials = append(trace.Potentials, phi)
		if phi == 0 {
			break
		}
		if iter >= maxIter {
			return nil, trace, fmt.Errorf("core: %s exceeded φ_max = %d iterations", task.Name(), maxIter)
		}
		if _, err := task.Label(g, t); err != nil {
			return nil, trace, fmt.Errorf("core: labeling: %w", err)
		}
		swaps, _, ok, err := task.FindImprovement(g, t)
		if err != nil {
			return nil, trace, fmt.Errorf("core: find improvement: %w", err)
		}
		if !ok || len(swaps) == 0 {
			return nil, trace, fmt.Errorf("core: %s has φ = %d > 0 but no improvement", task.Name(), phi)
		}
		t2, err := ApplyNest(t, swaps)
		if err != nil {
			return nil, trace, fmt.Errorf("core: applying %v: %w", swaps, err)
		}
		phi2, err := task.Value(g, t2)
		if err != nil {
			return nil, trace, fmt.Errorf("core: potential after swap: %w", err)
		}
		if phi2 >= phi {
			return nil, trace, fmt.Errorf("core: %s: φ did not decrease (%d -> %d) on %v",
				task.Name(), phi, phi2, swaps)
		}
		t, phi = t2, phi2
		trace.Improvements++
	}
	return t, trace, nil
}

// ApplyNest applies a well-nested swap sequence to a tree, validating
// each swap individually (property (b) of Section VII: each removed edge
// lies on the fundamental cycle of its added edge at application time).
func ApplyNest(t *trees.Tree, swaps []Swap) (*trees.Tree, error) {
	out := t
	for i, sw := range swaps {
		next, err := out.Swap(sw.Add, sw.Remove)
		if err != nil {
			return nil, fmt.Errorf("core: swap %d (%v): %w", i, sw, err)
		}
		out = next
	}
	return out, nil
}

// EngineOptions configures the distributed engine.
type EngineOptions struct {
	// Scheduler drives the runtime executions; defaults to the
	// adversarial unfair scheduler the paper assumes.
	Scheduler runtime.Scheduler
	// MaxMovesPerPhase caps each runtime execution (defense against
	// livelock bugs); defaults to 4,000,000.
	MaxMovesPerPhase int
	// Monitor enables the loop-freedom monitor during switch execution.
	// On by default in tests; costly for large benches.
	Monitor bool
	// Rng initializes the arbitrary starting configuration.
	Rng *rand.Rand
}

func (o *EngineOptions) fill() {
	if o.Scheduler == nil {
		o.Scheduler = runtime.AdversarialUnfair()
	}
	if o.MaxMovesPerPhase == 0 {
		o.MaxMovesPerPhase = 4_000_000
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
}

// RunDistributed executes the PLS-guided construction on the state-model
// runtime: stabilize a spanning tree from arbitrary registers, then
// iterate label → find → switch until φ = 0, executing each swap as a
// chain of local switches through the Section IV protocol. It returns
// the final tree and the full accounting trace.
func RunDistributed(g *graph.Graph, task Task, opts EngineOptions) (*trees.Tree, Trace, error) {
	opts.fill()
	var trace Trace

	net, err := runtime.NewNetwork(g, switching.Algorithm{})
	if err != nil {
		return nil, trace, fmt.Errorf("core: %w", err)
	}
	net.InitArbitrary(opts.Rng)
	res, err := net.Run(opts.Scheduler, opts.MaxMovesPerPhase)
	if err != nil {
		return nil, trace, fmt.Errorf("core: substrate: %w", err)
	}
	if !res.Silent {
		return nil, trace, fmt.Errorf("core: substrate did not stabilize within %d moves", res.Moves)
	}
	trace.Rounds += res.Rounds
	trace.Moves += res.Moves
	trace.MaxRegisterBits = maxInt(trace.MaxRegisterBits, res.MaxRegisterBits)

	if opts.Monitor {
		net.AddMonitor(switching.LoopFreeMonitor(switching.RegOf))
	}

	t, err := switching.ExtractTree(net, switching.RegOf)
	if err != nil {
		return nil, trace, fmt.Errorf("core: %w", err)
	}

	phi, err := task.Value(g, t)
	if err != nil {
		return nil, trace, fmt.Errorf("core: initial potential: %w", err)
	}
	maxIter := task.MaxValue(g) + 1
	for iter := 0; ; iter++ {
		trace.Potentials = append(trace.Potentials, phi)
		if phi == 0 {
			break
		}
		if iter >= maxIter {
			return nil, trace, fmt.Errorf("core: %s exceeded φ_max = %d iterations", task.Name(), maxIter)
		}
		info, err := task.Label(g, t)
		if err != nil {
			return nil, trace, fmt.Errorf("core: labeling: %w", err)
		}
		trace.Rounds += info.Rounds
		trace.MaxLabelBits = maxInt(trace.MaxLabelBits, info.MaxBits)

		swaps, findRounds, ok, err := task.FindImprovement(g, t)
		if err != nil {
			return nil, trace, fmt.Errorf("core: find improvement: %w", err)
		}
		trace.Rounds += findRounds
		if !ok || len(swaps) == 0 {
			return nil, trace, fmt.Errorf("core: %s has φ = %d > 0 but no improvement", task.Name(), phi)
		}

		for _, sw := range swaps {
			t2, err := ExecuteSwap(net, t, sw, opts.Scheduler, opts.MaxMovesPerPhase, &trace)
			if err != nil {
				return nil, trace, fmt.Errorf("core: executing %v: %w", sw, err)
			}
			t = t2
		}

		phi2, err := task.Value(g, t)
		if err != nil {
			return nil, trace, fmt.Errorf("core: potential after swap: %w", err)
		}
		if phi2 >= phi {
			return nil, trace, fmt.Errorf("core: %s: φ did not decrease (%d -> %d)", task.Name(), phi, phi2)
		}
		phi = phi2
		trace.Improvements++
	}

	// Final configuration must be silent and carry full labels.
	if !net.Silent() {
		return nil, trace, fmt.Errorf("core: final configuration not silent")
	}
	a, err := switching.ToAssignment(net, switching.RegOf)
	if err != nil {
		return nil, trace, err
	}
	if err := a.Verify(g); err != nil {
		return nil, trace, fmt.Errorf("core: final configuration rejected by verifier: %w", err)
	}
	trace.MaxRegisterBits = maxInt(trace.MaxRegisterBits, net.MaxRegisterBits())
	return t, trace, nil
}

// ExecuteSwap realizes T ← T + e − f on the live network as the chain of
// local switches of Section IV (Fig. 1(a)): with f = (a,b), b the deeper
// endpoint, and x the endpoint of e inside the subtree of b, the nodes
// x = q_0, q_1, ..., q_m = b along the tree path from x to b switch one
// after the other — q_0 onto e's other endpoint, then each q_i onto
// q_{i-1} — the last switch removing f. Every hop runs the three-phase
// prune/switch/relabel protocol to silence.
func ExecuteSwap(net *runtime.Network, t *trees.Tree, sw Swap, sched runtime.Scheduler, maxMoves int, trace *Trace) (*trees.Tree, error) {
	path, err := reversalPath(t, sw)
	if err != nil {
		return nil, err
	}
	target := otherEndpoint(sw.Add, path[0])
	for i, q := range path {
		if err := switching.InjectSwitch(net, q, target, switching.RegOf); err != nil {
			return nil, fmt.Errorf("core: hop %d: %w", i, err)
		}
		res, err := net.Run(sched, maxMoves)
		if err != nil {
			return nil, fmt.Errorf("core: hop %d: %w", i, err)
		}
		if !res.Silent {
			return nil, fmt.Errorf("core: hop %d did not quiesce", i)
		}
		trace.Rounds += res.Rounds
		trace.Moves += res.Moves
		trace.MaxRegisterBits = maxInt(trace.MaxRegisterBits, res.MaxRegisterBits)
		target = q
	}
	return switching.ExtractTree(net, switching.RegOf)
}

// reversalPath returns the nodes that change parent for the swap, in
// switching order: from the in-subtree endpoint of Add up to the deeper
// endpoint of Remove.
func reversalPath(t *trees.Tree, sw Swap) ([]graph.NodeID, error) {
	f := sw.Remove.Canonical()
	onCycle := false
	for _, ce := range t.CycleEdges(sw.Add) {
		if graph.SameEndpoints(ce, f) {
			onCycle = true
			break
		}
	}
	if !onCycle {
		return nil, fmt.Errorf("core: %v not on the fundamental cycle of %v", sw.Remove, sw.Add)
	}
	// b = deeper endpoint of f.
	b := f.U
	if t.Parent(f.V) == f.U {
		b = f.V
	} else if t.Parent(f.U) != f.V {
		return nil, fmt.Errorf("core: %v is not a tree edge", sw.Remove)
	}
	// x = endpoint of Add inside subtree(b).
	x := sw.Add.U
	if !inSubtree(t, b, x) {
		x = sw.Add.V
		if !inSubtree(t, b, x) {
			return nil, fmt.Errorf("core: neither endpoint of %v is under %d", sw.Add, b)
		}
	}
	var path []graph.NodeID
	for q := x; ; q = t.Parent(q) {
		path = append(path, q)
		if q == b {
			return path, nil
		}
		if q == t.Root() {
			return nil, fmt.Errorf("core: walked to the root without meeting %d", b)
		}
	}
}

func inSubtree(t *trees.Tree, root, v graph.NodeID) bool {
	for x := v; ; x = t.Parent(x) {
		if x == root {
			return true
		}
		if x == t.Root() {
			return root == t.Root()
		}
	}
}

func otherEndpoint(e graph.Edge, x graph.NodeID) graph.NodeID { return e.Other(x) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
