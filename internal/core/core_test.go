package core

import (
	"fmt"
	"math/rand"
	"testing"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

// depthTask is a minimal test task: φ(T) = Σ depths − (n−1); zero only
// on the star rooted at node 1 of a complete graph. Improvements hook a
// maximal-depth node directly under the root.
type depthTask struct{}

func (depthTask) Name() string { return "depth-test" }

func (depthTask) Value(g *graph.Graph, t *trees.Tree) (int, error) {
	phi := 0
	for _, d := range t.Depths() {
		phi += d
	}
	return phi - (g.N() - 1), nil
}

func (depthTask) MaxValue(g *graph.Graph) int { return g.N() * g.N() }

func (depthTask) Label(g *graph.Graph, t *trees.Tree) (LabelInfo, error) {
	return LabelInfo{MaxBits: runtime.BitsForValue(g.N()), Rounds: 1}, nil
}

func (depthTask) FindImprovement(g *graph.Graph, t *trees.Tree) ([]Swap, int, bool, error) {
	root := t.Root()
	var deep graph.NodeID
	best := 1
	for v, d := range t.Depths() {
		if d > best {
			best, deep = d, v
		}
	}
	if deep == 0 {
		return nil, 1, false, nil
	}
	return []Swap{{
		Add:    graph.Edge{U: deep, V: root},
		Remove: graph.Edge{U: deep, V: t.Parent(deep)},
	}}, 1, true, nil
}

// brokenTask claims positive potential but offers no improvement.
type brokenTask struct{ depthTask }

func (brokenTask) FindImprovement(g *graph.Graph, t *trees.Tree) ([]Swap, int, bool, error) {
	return nil, 1, false, nil
}

// nonDecreasingTask proposes a swap that does not lower φ.
type nonDecreasingTask struct{ depthTask }

func (nonDecreasingTask) Value(g *graph.Graph, t *trees.Tree) (int, error) { return 7, nil }

func TestRunSequentialReachesFixpoint(t *testing.T) {
	g := graph.Complete(8)
	t0, err := trees.DFSTree(g, 1) // a path: maximal potential
	if err != nil {
		t.Fatal(err)
	}
	final, trace, err := RunSequential(g, t0, depthTask{})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := depthTask{}.Value(g, final)
	if err != nil {
		t.Fatal(err)
	}
	if phi != 0 {
		t.Errorf("final φ = %d", phi)
	}
	if trace.Improvements == 0 {
		t.Error("no improvements recorded")
	}
	if len(trace.Potentials) != trace.Improvements+1 {
		t.Errorf("potential trace length %d, improvements %d", len(trace.Potentials), trace.Improvements)
	}
}

func TestRunSequentialDetectsBrokenTask(t *testing.T) {
	g := graph.Complete(6)
	t0, err := trees.DFSTree(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunSequential(g, t0, brokenTask{}); err == nil {
		t.Error("engine accepted φ > 0 with no improvement")
	}
	if _, _, err := RunSequential(g, t0, nonDecreasingTask{}); err == nil {
		t.Error("engine accepted a non-decreasing potential")
	}
}

func TestApplyNestValidatesSwaps(t *testing.T) {
	g := graph.Ring(6)
	t0, err := trees.BFSTree(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Removing an edge not on the fundamental cycle must fail.
	nte := t0.NonTreeEdges(g)[0]
	_, err = ApplyNest(t0, []Swap{{Add: nte, Remove: graph.Edge{U: 1, V: 99}}})
	if err == nil {
		t.Error("ApplyNest accepted a bogus removal")
	}
}

func TestExecuteSwapMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 12; trial++ {
		g := graph.RandomConnected(10+rng.Intn(15), 0.3, rng)
		tr, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			t.Fatal(err)
		}
		nte := tr.NonTreeEdges(g)
		if len(nte) == 0 {
			continue
		}
		e := nte[rng.Intn(len(nte))]
		ces := tr.CycleEdges(e)
		f := ces[rng.Intn(len(ces))]

		want, err := tr.Swap(e, f)
		if err != nil {
			t.Fatal(err)
		}

		net, err := runtime.NewNetwork(g, switching.Algorithm{})
		if err != nil {
			t.Fatal(err)
		}
		if err := switching.InitFromTree(net, tr); err != nil {
			t.Fatal(err)
		}
		net.AddMonitor(switching.LoopFreeMonitor(switching.RegOf))
		var trace Trace
		got, err := ExecuteSwap(net, tr, Swap{Add: e, Remove: f}, runtime.Central(), 2_000_000, &trace)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, x := range want.Nodes() {
			if got.Parent(x) != want.Parent(x) {
				t.Fatalf("trial %d: node %d parent %d, want %d (swap %v-%v)",
					trial, x, got.Parent(x), want.Parent(x), e, f)
			}
		}
		if !net.Silent() {
			t.Fatal("network not silent after swap")
		}
	}
}

func TestRunDistributedOnTestTask(t *testing.T) {
	g := graph.Complete(7)
	final, trace, err := RunDistributed(g, depthTask{}, EngineOptions{
		Monitor: true,
		Rng:     rand.New(rand.NewSource(3)),
	})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := depthTask{}.Value(g, final)
	if err != nil {
		t.Fatal(err)
	}
	if phi != 0 {
		t.Errorf("final φ = %d", phi)
	}
	if trace.Rounds == 0 || trace.Moves == 0 {
		t.Error("missing accounting")
	}
}

func TestSwapString(t *testing.T) {
	s := Swap{Add: graph.Edge{U: 1, V: 2}, Remove: graph.Edge{U: 3, V: 4}}
	if s.String() != "+{1,2} -{3,4}" {
		t.Errorf("String() = %q", s.String())
	}
	if fmt.Sprintf("%v", s) == "" {
		t.Error("empty format")
	}
}
