package spanning

import (
	"math/rand"
	"testing"
	"time"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/trees"
)

func stabilize(t *testing.T, g *graph.Graph, sched runtime.Scheduler, seed int64) (*runtime.Network, runtime.Result) {
	t.Helper()
	net, err := runtime.NewNetwork(g, Algorithm{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	net.InitArbitrary(rng)
	res, err := net.Run(sched, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent {
		t.Fatalf("not silent after %d moves / %d rounds", res.Moves, res.Rounds)
	}
	return net, res
}

func checkLegal(t *testing.T, net *runtime.Network) *trees.Tree {
	t.Helper()
	tr, err := ExtractTree(net)
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph()
	if tr.Root() != g.MinID() {
		t.Errorf("root = %d, want min ID %d", tr.Root(), g.MinID())
	}
	if !trees.IsBFSTree(tr, g) {
		t.Error("stabilized tree is not a BFS tree of the root")
	}
	// Register contents must be the legal labels.
	dist, err := g.BFSDistances(tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range g.Nodes() {
		s := net.State(v).(State)
		if s.Root != tr.Root() {
			t.Errorf("node %d claims root %d", v, s.Root)
		}
		if s.Dist != dist[v] {
			t.Errorf("node %d claims dist %d, want %d", v, s.Dist, dist[v])
		}
	}
	return tr
}

func TestStabilizesOnFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := map[string]*graph.Graph{
		"path":        graph.Path(15),
		"ring":        graph.Ring(12),
		"star":        graph.Star(10),
		"complete":    graph.Complete(8),
		"grid":        graph.Grid(4, 4),
		"caterpillar": graph.Caterpillar(6, 2),
		"lollipop":    graph.Lollipop(5, 5),
		"random":      graph.RandomConnected(30, 0.15, rng),
		"geometric":   graph.RandomGeometric(25, 0.3, rng),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			net, _ := stabilize(t, g, runtime.Central(), 7)
			checkLegal(t, net)
		})
	}
}

func TestStabilizesUnderAllSchedulers(t *testing.T) {
	g := graph.RandomConnected(25, 0.2, rand.New(rand.NewSource(5)))
	scheds := map[string]runtime.Scheduler{
		"synchronous": runtime.Synchronous(),
		"central":     runtime.Central(),
		"adversarial": runtime.AdversarialUnfair(),
		"roundrobin":  runtime.RoundRobin(),
		"random":      runtime.RandomSubset(rand.New(rand.NewSource(6))),
	}
	for name, sched := range scheds {
		t.Run(name, func(t *testing.T) {
			net, _ := stabilize(t, g, sched, 11)
			checkLegal(t, net)
		})
	}
}

func TestManySeeds(t *testing.T) {
	// Convergence from many arbitrary initial configurations.
	g := graph.RandomConnected(20, 0.2, rand.New(rand.NewSource(8)))
	for seed := int64(0); seed < 25; seed++ {
		net, _ := stabilize(t, g, runtime.AdversarialUnfair(), seed)
		checkLegal(t, net)
	}
}

func TestFakeRootErosion(t *testing.T) {
	// Plant a fake root identity smaller than every real one (real IDs
	// are 1..n; fake root 0 is impossible per consistency, so corrupt
	// with a chain claiming a root that does not exist: remove node 1's
	// claim by starting all nodes believing in a ghost).
	g := graph.Path(10)
	net, err := runtime.NewNetwork(g, Algorithm{})
	if err != nil {
		t.Fatal(err)
	}
	// All nodes claim a nonexistent tiny root reachable via the left
	// neighbor; the distance cap must erode the illusion.
	for _, v := range g.Nodes() {
		if v == 1 {
			net.SetState(v, State{Root: 1, Parent: trees.None, Dist: 0})
			continue
		}
		net.SetState(v, State{Root: 1, Parent: v - 1, Dist: int(v) - 1})
	}
	// Corrupt the interior: nodes 5..10 claim ghost root "2" via node 4.
	// Root 2 < their IDs, and the claim is mutually supported.
	for v := graph.NodeID(5); v <= 10; v++ {
		net.SetState(v, State{Root: 2, Parent: v - 1, Dist: int(v)})
	}
	res, err := net.Run(runtime.Central(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent {
		t.Fatal("not silent")
	}
	checkLegal(t, net)
}

func TestRecoveryFromFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.Grid(5, 5)
	net, _ := stabilize(t, g, runtime.Central(), 17)
	for trial := 0; trial < 10; trial++ {
		runtime.Corrupt(net, 1+rng.Intn(5), rng)
		res, err := net.Run(runtime.Central(), 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Silent {
			t.Fatalf("trial %d: no re-stabilization", trial)
		}
		checkLegal(t, net)
	}
}

func TestSpaceIsLogarithmic(t *testing.T) {
	// Registers must stay within c*log2(n) bits: 3 fields of at most
	// ceil(log2(2n))+1 bits each in any reachable configuration.
	for _, n := range []int{8, 16, 32, 64} {
		g := graph.RandomConnected(n, 0.1, rand.New(rand.NewSource(int64(n))))
		net, res := stabilize(t, g, runtime.Central(), 23)
		_ = net
		bound := 3 * (log2ceil(2*n) + 1)
		if res.MaxRegisterBits > bound {
			t.Errorf("n=%d: register = %d bits, want <= %d", n, res.MaxRegisterBits, bound)
		}
	}
}

func TestRoundsPolynomial(t *testing.T) {
	// Shape check: rounds grow modestly (empirically O(n)) with n under
	// the synchronous daemon.
	var prev int
	for _, n := range []int{10, 20, 40} {
		g := graph.Path(n)
		_, res := stabilize(t, g, runtime.Synchronous(), 29)
		if prev > 0 && res.Rounds > 8*prev {
			t.Errorf("rounds jumped from %d to %d when doubling n", prev, res.Rounds)
		}
		prev = res.Rounds
	}
}

func TestSilenceIsStable(t *testing.T) {
	g := graph.Ring(10)
	net, _ := stabilize(t, g, runtime.Central(), 31)
	if err := runtime.CheckSilentStable(net); err != nil {
		t.Fatal(err)
	}
	// Re-running must produce zero moves.
	res, err := net.Run(runtime.Central(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != net.Moves() && res.Moves != 0 {
		t.Errorf("silent network moved")
	}
}

func TestConcurrentExecution(t *testing.T) {
	g := graph.RandomConnected(15, 0.25, rand.New(rand.NewSource(37)))
	net, err := runtime.NewNetwork(g, Algorithm{})
	if err != nil {
		t.Fatal(err)
	}
	net.InitArbitrary(rand.New(rand.NewSource(38)))
	res, err := runtime.RunConcurrent(net, 5_000_000, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent {
		t.Fatal("concurrent run not silent")
	}
	checkLegal(t, net)
}

func TestSingleNode(t *testing.T) {
	g := graph.New()
	g.AddNode(1)
	net, err := runtime.NewNetwork(g, Algorithm{})
	if err != nil {
		t.Fatal(err)
	}
	net.InitArbitrary(rand.New(rand.NewSource(1)))
	res, err := net.Run(runtime.Central(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent {
		t.Fatal("single node not silent")
	}
	if _, err := ExtractTree(net); err != nil {
		t.Fatal(err)
	}
}

func log2ceil(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}
