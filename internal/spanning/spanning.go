// Package spanning implements the silent self-stabilizing spanning-tree
// substrate that the paper's Algorithm 1 and Algorithm 3 begin with
// ("construct a spanning tree of G", Instruction 1, implementable with
// the leader-election algorithm of [25]).
//
// The algorithm is the classic min-identity BFS construction in the state
// model: every node maintains (root, parent, dist); inconsistent nodes
// reset to being their own root; nodes adopt a neighbor offering a
// smaller root identity, or the same root at a smaller distance. A
// distance cap of n-1 erodes regions supporting a fake (corrupted) root
// identity: any chain claiming a nonexistent root keeps growing its
// distance until it exceeds the cap and collapses. The stabilized
// configuration is the BFS spanning tree rooted at the minimum-identity
// node, and no rule is enabled: the algorithm is silent. Registers hold
// two identities and one distance: O(log n) bits.
package spanning

import (
	"fmt"
	"math/rand"
	"slices"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/trees"
)

// State is the register of the substrate: the claimed root identity, the
// parent pointer (trees.None when the node claims to be the root), and
// the claimed distance to the root.
type State struct {
	Root   graph.NodeID
	Parent graph.NodeID
	Dist   int
}

// Equal implements runtime.State.
func (s State) Equal(o runtime.State) bool {
	os, ok := o.(State)
	return ok && os == s
}

// EncodedBits implements runtime.State: two identities plus one bounded
// distance. The width is computed against the node's own field values'
// natural bounds; callers aggregate the max over nodes.
func (s State) EncodedBits() int {
	return runtime.BitsForValue(int(s.Root)) +
		runtime.BitsForValue(int(s.Parent)) +
		runtime.BitsForValue(s.Dist)
}

// String implements runtime.State.
func (s State) String() string {
	return fmt.Sprintf("(root=%d par=%d d=%d)", s.Root, s.Parent, s.Dist)
}

// Algorithm is the substrate's transition function.
type Algorithm struct{}

var _ runtime.Algorithm = Algorithm{}

// Name implements runtime.Algorithm.
func (Algorithm) Name() string { return "spanning-substrate" }

// selfRoot is the reset state of a node.
func selfRoot(id graph.NodeID) State {
	return State{Root: id, Parent: trees.None, Dist: 0}
}

// Step implements runtime.Algorithm. Rules, in priority order:
//
//	R0 (reset): locally inconsistent nodes become their own root.
//	R1 (adopt): join the neighbor offering the lexicographically best
//	    (root, dist+1), when strictly better than the current claim and
//	    within the distance cap.
//	R2 (track): distances follow the parent's (within the cap; beyond it,
//	    reset).
func (Algorithm) Step(v runtime.View) runtime.State {
	s, ok := v.Self.(State)
	if !ok {
		return selfRoot(v.ID)
	}
	cap := v.N - 1

	// R0: structural consistency.
	if !consistent(s, v) {
		return selfRoot(v.ID)
	}

	// R1: adopt a strictly better offer.
	if u, offer, found := bestOffer(v, cap); found {
		if better(offer, s) {
			return State{Root: offer.Root, Parent: u, Dist: offer.Dist}
		}
	}

	// R2: follow the parent's distance.
	if s.Parent != trees.None {
		p, ok := v.Peer(s.Parent).(State)
		if !ok {
			return selfRoot(v.ID)
		}
		if p.Root == s.Root && s.Dist != p.Dist+1 {
			if p.Dist+1 <= cap {
				return State{Root: s.Root, Parent: s.Parent, Dist: p.Dist + 1}
			}
			return selfRoot(v.ID)
		}
	}
	return s
}

// consistent reports local structural sanity of s at node v: a self-root
// claims exactly (ID, ⊥, 0); a non-root has a neighboring parent sharing
// its root claim with a root identity smaller than the node's own ID
// (the root is the global minimum, so every non-root's claim is below its
// own identity), a distance within the cap, and no claim below the
// smallest identity it could legitimately learn.
func consistent(s State, v runtime.View) bool {
	if s.Parent == trees.None {
		return s.Root == v.ID && s.Dist == 0
	}
	if s.Root >= v.ID || s.Root <= 0 {
		return false
	}
	if s.Dist < 1 || s.Dist > v.N-1 {
		return false
	}
	// The parent must be a current neighbor. On a frozen graph only an
	// adversarial initialization can violate this; under live topology
	// churn it happens routinely — the parent's link went down, or the
	// parent left — and must read as inconsistency, not as a model
	// violation (View.Peer panics on non-neighbors by design).
	j, isNbr := slices.BinarySearch(v.Neighbors, s.Parent)
	if !isNbr {
		return false
	}
	p, ok := v.PeerAt(j).(State)
	if !ok {
		return false
	}
	// The parent must support the same root. (Its distance is tracked by
	// R2 rather than rejected here, so distance repairs do not tear the
	// tree down.)
	return p.Root == s.Root
}

// bestOffer returns the neighbor u minimizing (root, dist+1)
// lexicographically among offers within the distance cap.
func bestOffer(v runtime.View, cap int) (graph.NodeID, State, bool) {
	var (
		bestU graph.NodeID
		best  State
		found bool
	)
	for j, u := range v.Neighbors {
		p, ok := v.PeerAt(j).(State)
		if !ok {
			continue
		}
		if p.Dist+1 > cap {
			continue
		}
		offer := State{Root: p.Root, Dist: p.Dist + 1}
		if !found || offer.Root < best.Root ||
			(offer.Root == best.Root && offer.Dist < best.Dist) {
			bestU, best, found = u, offer, true
		}
	}
	return bestU, best, found
}

// better reports whether the offer strictly improves on the current claim
// (smaller root, or same root and strictly smaller distance). Offers must
// also beat the node's own identity as a root claim.
func better(offer, cur State) bool {
	if offer.Root < cur.Root {
		return true
	}
	return offer.Root == cur.Root && offer.Dist < cur.Dist
}

// ArbitraryState implements runtime.Algorithm: arbitrary, possibly
// corrupted register contents — random identities (including nonexistent
// ones) and random distances.
func (Algorithm) ArbitraryState(rng *rand.Rand, v runtime.View) runtime.State {
	s := State{
		Root: graph.NodeID(rng.Intn(2*v.N) + 1), // possibly a fake identity
		Dist: rng.Intn(v.N + 2),
	}
	if len(v.Neighbors) == 0 || rng.Intn(3) == 0 {
		s.Parent = trees.None
	} else {
		s.Parent = v.Neighbors[rng.Intn(len(v.Neighbors))]
	}
	return s
}

// InitSelfRoot writes the post-reset configuration: every node is its
// own root. This is the benign initial configuration (the state R0
// resets to), from which the substrate stabilizes in O(diameter)
// synchronous rounds — no fake root identities to erode, so it is the
// right starting point for large-scale serving experiments, where a
// fully adversarial start costs Θ(n) rounds of distance-cap erosion.
func InitSelfRoot(net *runtime.Network) {
	for _, v := range net.Graph().Nodes() {
		net.SetState(v, selfRoot(v))
	}
}

// ExtractTree reads the stabilized parent pointers out of the network and
// validates that they form a spanning tree.
func ExtractTree(net *runtime.Network) (*trees.Tree, error) {
	parent := make(map[graph.NodeID]graph.NodeID, net.Graph().N())
	for _, v := range net.Graph().Nodes() {
		s, ok := net.State(v).(State)
		if !ok {
			return nil, fmt.Errorf("spanning: node %d has foreign state %v", v, net.State(v))
		}
		parent[v] = s.Parent
	}
	t, err := trees.FromParentMap(parent)
	if err != nil {
		return nil, fmt.Errorf("spanning: parent pointers not a tree: %w", err)
	}
	if !t.IsSpanningTreeOf(net.Graph()) {
		return nil, fmt.Errorf("spanning: extracted tree is not a spanning tree of the network")
	}
	return t, nil
}
