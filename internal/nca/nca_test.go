package nca

import (
	"math"
	"math/rand"
	"testing"

	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

func randomTree(t *testing.T, rng *rand.Rand, n int) *trees.Tree {
	t.Helper()
	g := graph.RandomConnected(n, 0.15, rng)
	tr, err := trees.RandomSpanningTree(g, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func build(t *testing.T, tr *trees.Tree) *Labeling {
	t.Helper()
	lb, err := Build(tr)
	if err != nil {
		t.Fatal(err)
	}
	return lb
}

func TestNCAMatchesStructuralOnFixedTrees(t *testing.T) {
	cases := map[string]*trees.Tree{}
	// Path (one long heavy path).
	pathTree, err := trees.BFSTree(graph.Path(20), 1)
	if err != nil {
		t.Fatal(err)
	}
	cases["path"] = pathTree
	// Star (all light edges).
	starTree, err := trees.BFSTree(graph.Star(15), 1)
	if err != nil {
		t.Fatal(err)
	}
	cases["star"] = starTree
	// Caterpillar, grid BFS.
	catTree, err := trees.BFSTree(graph.Caterpillar(8, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	cases["caterpillar"] = catTree
	gridTree, err := trees.BFSTree(graph.Grid(5, 5), 1)
	if err != nil {
		t.Fatal(err)
	}
	cases["grid"] = gridTree

	for name, tr := range cases {
		t.Run(name, func(t *testing.T) {
			lb := build(t, tr)
			nodes := tr.Nodes()
			for _, u := range nodes {
				for _, v := range nodes {
					got, err := NCA(lb.Label(u), lb.Label(v))
					if err != nil {
						t.Fatalf("NCA(%d,%d): %v", u, v, err)
					}
					wantNode := tr.NCA(u, v)
					gotNode, ok := lb.NodeOf(got)
					if !ok {
						t.Fatalf("NCA(%d,%d) produced unknown label %s", u, v, got)
					}
					if gotNode != wantNode {
						t.Fatalf("NCA(%d,%d) = %d, want %d", u, v, gotNode, wantNode)
					}
				}
			}
		})
	}
}

func TestNCAMatchesStructuralRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		tr := randomTree(t, rng, 10+rng.Intn(60))
		lb := build(t, tr)
		nodes := tr.Nodes()
		for q := 0; q < 300; q++ {
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			got, err := NCA(lb.Label(u), lb.Label(v))
			if err != nil {
				t.Fatal(err)
			}
			gotNode, ok := lb.NodeOf(got)
			if !ok || gotNode != tr.NCA(u, v) {
				t.Fatalf("trial %d: NCA(%d,%d) = %v (%v), want %d",
					trial, u, v, gotNode, ok, tr.NCA(u, v))
			}
		}
	}
}

func TestIsAncestor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := randomTree(t, rng, 40)
	lb := build(t, tr)
	nodes := tr.Nodes()
	for q := 0; q < 500; q++ {
		u := nodes[rng.Intn(len(nodes))]
		v := nodes[rng.Intn(len(nodes))]
		got, err := IsAncestor(lb.Label(u), lb.Label(v))
		if err != nil {
			t.Fatal(err)
		}
		want := tr.NCA(u, v) == u
		if got != want {
			t.Fatalf("IsAncestor(%d,%d) = %v, want %v", u, v, got, want)
		}
	}
}

func TestOnTreePathMatchesFundamentalCycle(t *testing.T) {
	// The Section V predicate must identify exactly the nodes of the
	// fundamental cycle of T + e.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomConnected(10+rng.Intn(40), 0.2, rng)
		tr, err := trees.RandomSpanningTree(g, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		lb := build(t, tr)
		nte := tr.NonTreeEdges(g)
		if len(nte) == 0 {
			continue
		}
		e := nte[rng.Intn(len(nte))]
		onCycle := map[graph.NodeID]bool{}
		for _, x := range tr.FundamentalCycle(e) {
			onCycle[x] = true
		}
		for _, x := range tr.Nodes() {
			got, err := OnTreePath(lb.Label(x), lb.Label(e.U), lb.Label(e.V))
			if err != nil {
				t.Fatal(err)
			}
			if got != onCycle[x] {
				t.Fatalf("trial %d: OnTreePath(%d; %d,%d) = %v, want %v",
					trial, x, e.U, e.V, got, onCycle[x])
			}
		}
	}
}

func TestLabelsAreDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := randomTree(t, rng, 80)
	lb := build(t, tr)
	seen := map[string]graph.NodeID{}
	for _, v := range tr.Nodes() {
		key := lb.Label(v).String()
		if prev, dup := seen[key]; dup {
			t.Fatalf("nodes %d and %d share label %s", prev, v, key)
		}
		seen[key] = v
	}
}

// TestLabelSizeLogarithmic is the space bound of Lemma 5.1: max label
// length must grow as O(log n). We check the measured constant stays
// below 8*log2(n) + 16 across families and sizes, and that doubling n
// adds only O(1) ~ a few bits (logarithmic growth shape).
func TestLabelSizeLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{16, 32, 64, 128, 256} {
		bound := int(8*math.Log2(float64(n))) + 16
		// Worst families for label size: random trees, paths, stars.
		tr := randomTree(t, rng, n)
		lb := build(t, tr)
		if got := lb.MaxLabelBits(); got > bound {
			t.Errorf("n=%d random: max label %d bits > bound %d", n, got, bound)
		}
		pt, err := trees.BFSTree(graph.Path(n), 1)
		if err != nil {
			t.Fatal(err)
		}
		lb = build(t, pt)
		if got := lb.MaxLabelBits(); got > bound {
			t.Errorf("n=%d path: max label %d bits > bound %d", n, got, bound)
		}
		st, err := trees.BFSTree(graph.Star(n), 1)
		if err != nil {
			t.Fatal(err)
		}
		lb = build(t, st)
		if got := lb.MaxLabelBits(); got > bound {
			t.Errorf("n=%d star: max label %d bits > bound %d", n, got, bound)
		}
	}
}

func TestConstructionRoundsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, n := range []int{20, 40, 80} {
		tr := randomTree(t, rng, n)
		lb := build(t, tr)
		if r := lb.ConstructionRounds(); r <= 0 || r > 4*n {
			t.Errorf("n=%d: construction rounds %d outside (0, 4n]", n, r)
		}
	}
}

func TestVerifierAcceptsProverOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomConnected(8+rng.Intn(40), 0.2, rng)
		tr, err := trees.RandomSpanningTree(g, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		lb := build(t, tr)
		a := FromLabeling(lb)
		if err := a.Verify(g); err != nil {
			t.Fatalf("trial %d: prover output rejected: %v", trial, err)
		}
	}
}

func TestVerifierRejectsCorruptedLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g := graph.RandomConnected(30, 0.2, rng)
	tr, err := trees.RandomSpanningTree(g, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	lb := build(t, tr)
	nodes := tr.Nodes()
	rejected := 0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		a := FromLabeling(lb)
		victim := nodes[rng.Intn(len(nodes))]
		switch rng.Intn(4) {
		case 0: // swap label with another node's
			other := nodes[rng.Intn(len(nodes))]
			if other == victim {
				continue
			}
			a.Labels[victim], a.Labels[other] = a.Labels[other], a.Labels[victim]
		case 1: // flip a bit
			l := a.Labels[victim]
			if l.Len() == 0 {
				continue
			}
			i := rng.Intn(l.Len())
			var flipped Label
			for j := 0; j < l.Len(); j++ {
				b := l.raw.Bit(j)
				if j == i {
					b = !b
				}
				flipped.raw = flipped.raw.AppendBit(b)
			}
			a.Labels[victim] = flipped
		case 2: // corrupt W certificate
			a.W[victim] += 1 + rng.Intn(5)
		default: // corrupt S certificate
			a.S[victim] += 1 + rng.Intn(5)
		}
		if err := a.Verify(g); err == nil {
			t.Fatalf("trial %d: corruption at node %d accepted", trial, victim)
		}
		rejected++
	}
	if rejected == 0 {
		t.Fatal("no corruption trials executed")
	}
}

func TestVerifierRejectsForeignTreeLabels(t *testing.T) {
	// Labels computed for one spanning tree must be rejected when the
	// parent pointers encode a different spanning tree.
	rng := rand.New(rand.NewSource(31))
	g := graph.RandomConnected(25, 0.3, rng)
	t1, err := trees.RandomSpanningTree(g, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	var t2 *trees.Tree
	for {
		t2, err = trees.RandomSpanningTree(g, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !sameTree(t1, t2) {
			break
		}
	}
	a := FromLabeling(build(t, t1))
	a.Parent = t2.ParentMap()
	a.Size = t2.SubtreeSizes()
	if err := a.Verify(g); err == nil {
		t.Fatal("labels of a different tree accepted")
	}
}

func TestNCARejectsMalformedLabels(t *testing.T) {
	good := build(t, mustPath(t, 5)).Label(3)
	var junk Label
	for i := 0; i < 7; i++ {
		junk.raw = junk.raw.AppendBit(false)
	}
	if _, err := NCA(junk, good); err == nil {
		t.Error("NCA accepted an all-zeros label")
	}
	if _, err := NCA(good, junk); err == nil {
		t.Error("NCA accepted an all-zeros label as second arg")
	}
}

func TestSingleNodeTree(t *testing.T) {
	tr := trees.NewTree(1)
	lb := build(t, tr)
	l := lb.Label(1)
	if l.Len() == 0 {
		t.Fatal("empty label for singleton root")
	}
	m, err := NCA(l, l)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(l) {
		t.Error("NCA(v,v) != v")
	}
}

func mustPath(t *testing.T, n int) *trees.Tree {
	t.Helper()
	tr, err := trees.BFSTree(graph.Path(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func sameTree(a, b *trees.Tree) bool {
	am, bm := a.ParentMap(), b.ParentMap()
	for v, p := range am {
		if bm[v] != p {
			return false
		}
	}
	return true
}
