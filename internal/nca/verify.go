package nca

import (
	"fmt"
	"slices"

	"silentspan/internal/bits"
	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

// Assignment is the verifiable configuration for the NCA labeling: the
// tree's parent pointers, the (separately certified, cf. Lemma 4.1)
// subtree sizes, the labels, and the two per-node certificates of the
// proof-labeling scheme of Lemma 5.1:
//
//	W(v): the subtree size of the head of v's heavy path, propagated
//	      unchanged down heavy edges;
//	S(v): the cumulative off-path weight before v's position, i.e.
//	      W(v) - size(v).
//
// With (W, S) and the locally readable subtree sizes, every node can
// recompute its own Gilbert–Moore position code and each parent can
// recompute its children's child codes, making the whole labeling
// locally checkable with O(log n)-bit certificates.
type Assignment struct {
	Parent map[graph.NodeID]graph.NodeID
	Size   map[graph.NodeID]int
	Labels map[graph.NodeID]Label
	W      map[graph.NodeID]int
	S      map[graph.NodeID]int
}

// FromLabeling extracts the verifiable assignment of a labeling — the
// prover of the scheme.
func FromLabeling(lb *Labeling) Assignment {
	t := lb.Tree()
	a := Assignment{
		Parent: t.ParentMap(),
		Size:   t.SubtreeSizes(),
		Labels: make(map[graph.NodeID]Label, t.N()),
		W:      make(map[graph.NodeID]int, t.N()),
		S:      make(map[graph.NodeID]int, t.N()),
	}
	for _, v := range t.Nodes() {
		a.Labels[v] = lb.Label(v)
		a.W[v] = lb.PathWeight(v)
		a.S[v] = lb.CumWeight(v)
	}
	return a
}

// children returns the nodes whose parent pointer designates v, among
// v's graph neighbors (all a node can legally see).
func (a Assignment) children(g *graph.Graph, v graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for _, u := range g.Neighbors(v) {
		if a.Parent[u] == v {
			out = append(out, u)
		}
	}
	slices.Sort(out)
	return out
}

// heavyChildOf returns v's heavy child per the canonical rule (largest
// certified subtree size, ties broken by smallest ID) computed from the
// locally readable children sizes; trees.None for leaves.
func (a Assignment) heavyChildOf(g *graph.Graph, v graph.NodeID) graph.NodeID {
	best := trees.None
	bestSize := -1
	for _, c := range a.children(g, v) {
		if a.Size[c] > bestSize {
			best, bestSize = c, a.Size[c]
		}
	}
	return best
}

// offPathWeight returns w(v) = size(v) - size(heavy child of v), from
// locally readable values.
func (a Assignment) offPathWeight(g *graph.Graph, v graph.NodeID) int {
	hc := a.heavyChildOf(g, v)
	if hc == trees.None {
		return a.Size[v]
	}
	return a.Size[v] - a.Size[hc]
}

// VerifyAt runs the Lemma 5.1 verifier at node v: using only v's own
// fields and those of its graph neighbors, it checks that
//
//  1. v's label parses and its final position code equals the
//     Gilbert–Moore codeword of the interval [S(v), S(v)+w(v)) in W(v);
//  2. if v is the root, its certificates anchor (W = size = n, S = 0)
//     and the label is a single stop segment;
//  3. for each child c: the child's certificates follow the heavy/light
//     rule, and the child's label extends v's label in the matching
//     form — sharing v's prefix for the heavy child, or appending a
//     continuation with exactly the child code that v recomputes from
//     its children's sizes for a light child.
//
// Position-code correctness of the children is checked by the children
// themselves via rule 1, so every label bit is certified at some node.
func (a Assignment) VerifyAt(g *graph.Graph, v graph.NodeID) error {
	lv, ok := a.Labels[v]
	if !ok {
		return fmt.Errorf("nca: node %d unlabeled", v)
	}
	segs, err := parse(lv)
	if err != nil {
		return fmt.Errorf("nca: node %d: %w", v, err)
	}
	last := segs[len(segs)-1]

	// Rule 1: own position code.
	w := a.offPathWeight(g, v)
	if w <= 0 || a.W[v] <= 0 || a.S[v] < 0 || a.S[v]+w > a.W[v] {
		return fmt.Errorf("nca: node %d has inconsistent weights S=%d w=%d W=%d",
			v, a.S[v], w, a.W[v])
	}
	want := bits.GilbertMooreCodeword(uint64(a.S[v]), uint64(w), uint64(a.W[v]))
	if !last.pos.Equal(want) {
		return fmt.Errorf("nca: node %d position code %s, want %s", v, last.pos, want)
	}

	p := a.Parent[v]
	if p == trees.None {
		// Rule 2: root anchors.
		if a.W[v] != a.Size[v] {
			return fmt.Errorf("nca: root %d has W=%d, want size %d", v, a.W[v], a.Size[v])
		}
		if a.Size[v] != g.N() {
			return fmt.Errorf("nca: root %d has size %d, want n=%d", v, a.Size[v], g.N())
		}
		if a.S[v] != 0 {
			return fmt.Errorf("nca: root %d has S=%d, want 0", v, a.S[v])
		}
		if len(segs) != 1 {
			return fmt.Errorf("nca: root %d label has %d segments, want 1", v, len(segs))
		}
	}

	// Rule 3: children.
	children := a.children(g, v)
	hc := a.heavyChildOf(g, v)
	light := make([]graph.NodeID, 0, len(children))
	for _, c := range children {
		if c != hc {
			light = append(light, c)
		}
	}
	var childCode *bits.AlphabeticCode
	if len(light) > 0 {
		ws := make([]uint64, len(light))
		for i, c := range light {
			if a.Size[c] <= 0 {
				return fmt.Errorf("nca: node %d sees child %d with size %d", v, c, a.Size[c])
			}
			ws[i] = uint64(a.Size[c])
		}
		childCode, err = bits.NewAlphabeticCode(ws)
		if err != nil {
			return fmt.Errorf("nca: node %d child code: %w", v, err)
		}
	}
	prefixBeforePos := lv.raw.Prefix(posBlockStart(lv, segs))
	for i, c := range children {
		lc, ok := a.Labels[c]
		if !ok {
			return fmt.Errorf("nca: child %d of %d unlabeled", c, v)
		}
		csegs, err := parse(lc)
		if err != nil {
			return fmt.Errorf("nca: child %d of %d: %w", c, v, err)
		}
		if c == hc {
			// Heavy child: same W, S advanced by w(v), label shares the
			// prefix before the final position block.
			if a.W[c] != a.W[v] {
				return fmt.Errorf("nca: heavy child %d has W=%d, want %d", c, a.W[c], a.W[v])
			}
			if a.S[c] != a.S[v]+w {
				return fmt.Errorf("nca: heavy child %d has S=%d, want %d", c, a.S[c], a.S[v]+w)
			}
			if got := lc.raw.Prefix(posBlockStart(lc, csegs)); !got.Equal(prefixBeforePos) {
				return fmt.Errorf("nca: heavy child %d label prefix %s, want %s", c, got, prefixBeforePos)
			}
			continue
		}
		// Light child: W resets to the child's size, S to 0, and the
		// label is v's label with the stop bit replaced by a
		// continuation carrying the child code v computes.
		if a.W[c] != a.Size[c] {
			return fmt.Errorf("nca: light child %d has W=%d, want size %d", c, a.W[c], a.Size[c])
		}
		if a.S[c] != 0 {
			return fmt.Errorf("nca: light child %d has S=%d, want 0", c, a.S[c])
		}
		li := lightIndex(light, c)
		cc := childCode.Code(li)
		wantPrefix := lv.raw.Prefix(last.posEnd).AppendBit(true)
		wantPrefix = bits.AppendGamma(wantPrefix, uint64(cc.Len())).Concat(cc)
		if got := lc.raw.Prefix(posBlockStart(lc, csegs)); !got.Equal(wantPrefix) {
			return fmt.Errorf("nca: light child %d label prefix %s, want %s", c, got, wantPrefix)
		}
		_ = i
	}
	return nil
}

// posBlockStart returns the bit offset where the final segment's
// γ-length-prefixed position block begins.
func posBlockStart(l Label, segs []segment) int {
	if len(segs) == 1 {
		return 0
	}
	return segs[len(segs)-2].end
}

func lightIndex(light []graph.NodeID, c graph.NodeID) int {
	for i, x := range light {
		if x == c {
			return i
		}
	}
	return -1
}

// Verify runs the verifier at every node, returning the first rejection.
func (a Assignment) Verify(g *graph.Graph) error {
	for _, v := range g.Nodes() {
		if err := a.VerifyAt(g, v); err != nil {
			return err
		}
	}
	return nil
}
