// Package nca implements the informative labeling scheme for nearest
// common ancestors used in Section V of the paper (after Alstrup,
// Gavoille, Kaplan and Rauhe [6]): every node of a rooted tree receives an
// O(log n)-bit label such that the label of nca(u,v) is computable from
// the labels of u and v alone. The paper uses these labels to let every
// node decide locally whether it lies on the fundamental cycle of T + e.
//
// # Label structure
//
// The tree is decomposed into heavy paths. The root-to-v walk crosses a
// sequence of heavy paths; for each, the label carries a *segment*:
//
//	γ(len(pos)) · pos · contBit · [γ(len(child)) · child]   (cont = 1)
//	γ(len(pos)) · pos · 0                                   (last segment)
//
// where pos is the Gilbert–Moore alphabetic code of the node's position
// on the heavy path, weighted by off-path subtree weights (so code
// lengths telescope to O(log n) along the whole walk), and child is the
// alphabetic code of the light child taken, weighted by child subtree
// sizes. The Elias-γ length prefixes make labels self-delimiting, so nca
// can parse them with no access to the tree; the alphabetic property
// makes position codes comparable lexicographically without decoding.
//
// # NCA computation
//
// Given two labels, find the longest common prefix of segments. At the
// first divergence the two nodes sit on (or hang off) a common heavy
// path: if their position codes differ, the nca is the node at the
// lexicographically smaller position; otherwise it is the node at that
// shared position. Either way its label is a prefix of one input label,
// re-terminated with a stop bit.
package nca

import (
	"fmt"
	"slices"

	"silentspan/internal/bits"
	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

// Label is a node's NCA label: a self-delimiting bit string.
type Label struct {
	raw bits.String
}

// Bits returns the underlying bit string.
func (l Label) Bits() bits.String { return l.raw }

// Len returns the label length in bits — the quantity bounded by
// O(log n) in the paper.
func (l Label) Len() int { return l.raw.Len() }

// Equal reports whether two labels are identical.
func (l Label) Equal(o Label) bool { return l.raw.Equal(o.raw) }

// String renders the label as a 0/1 string.
func (l Label) String() string { return l.raw.String() }

// segment is one parsed label segment.
type segment struct {
	pos bits.String
	// posEnd is the bit offset just after pos (before the cont bit).
	posEnd int
	cont   bool
	child  bits.String
	// end is the bit offset just after the whole segment.
	end int
}

// parse splits a label into segments. It returns an error on malformed
// labels (corrupted registers produce those; verifiers must reject, not
// panic).
func parse(l Label) ([]segment, error) {
	r := bits.NewReader(l.raw)
	var segs []segment
	for {
		plen, err := bits.ReadGamma(r)
		if err != nil {
			return nil, fmt.Errorf("nca: bad position length: %w", err)
		}
		pos, err := r.ReadString(int(plen))
		if err != nil {
			return nil, fmt.Errorf("nca: truncated position code: %w", err)
		}
		posEnd := r.Pos()
		cont, err := r.ReadBit()
		if err != nil {
			return nil, fmt.Errorf("nca: missing continuation bit: %w", err)
		}
		seg := segment{pos: pos, posEnd: posEnd, cont: cont}
		if cont {
			clen, err := bits.ReadGamma(r)
			if err != nil {
				return nil, fmt.Errorf("nca: bad child length: %w", err)
			}
			child, err := r.ReadString(int(clen))
			if err != nil {
				return nil, fmt.Errorf("nca: truncated child code: %w", err)
			}
			seg.child = child
		}
		seg.end = r.Pos()
		segs = append(segs, seg)
		if !cont {
			break
		}
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("nca: %d trailing bits after final segment", r.Remaining())
	}
	return segs, nil
}

// NCA computes the label of the nearest common ancestor of the nodes
// labeled a and b, from the labels alone.
func NCA(a, b Label) (Label, error) {
	segA, err := parse(a)
	if err != nil {
		return Label{}, fmt.Errorf("nca: first label: %w", err)
	}
	segB, err := parse(b)
	if err != nil {
		return Label{}, fmt.Errorf("nca: second label: %w", err)
	}
	for j := 0; j < len(segA) && j < len(segB); j++ {
		sa, sb := segA[j], segB[j]
		if !sa.pos.Equal(sb.pos) {
			// Same heavy path, different positions: the nca is at the
			// smaller (closer to the head) position. Alphabetic codes
			// compare lexicographically.
			if sa.pos.Compare(sb.pos) < 0 {
				return stopAt(a, sa), nil
			}
			return stopAt(b, sb), nil
		}
		// Same position on the same heavy path.
		if !sa.cont || !sb.cont {
			// At least one of the walks ends here; the node at this
			// position is an ancestor of both.
			return stopAt(a, sa), nil
		}
		if !sa.child.Equal(sb.child) {
			// The walks leave this node via different light children:
			// the node itself is the nca.
			return stopAt(a, sa), nil
		}
	}
	// Identical labels: nca(v, v) = v.
	return a, nil
}

// stopAt returns the label consisting of l's bits up to and including
// seg's position code, terminated with a stop bit.
func stopAt(l Label, seg segment) Label {
	return Label{raw: l.raw.Prefix(seg.posEnd).AppendBit(false)}
}

// IsAncestor reports whether the node labeled a is an ancestor of (or
// equal to) the node labeled b, computed from labels alone.
func IsAncestor(a, b Label) (bool, error) {
	m, err := NCA(a, b)
	if err != nil {
		return false, err
	}
	return m.Equal(a), nil
}

// OnTreePath reports whether the node labeled x lies on the tree path
// between the nodes labeled u and v. This is the fundamental-cycle
// membership test of Section V: x is on the cycle of T + {u,v} iff
//
//	nca(x,u) = x and nca(x,v) = nca(u,v), or
//	nca(x,u) = nca(u,v) and nca(x,v) = x.
func OnTreePath(x, u, v Label) (bool, error) {
	m, err := NCA(u, v)
	if err != nil {
		return false, err
	}
	xu, err := NCA(x, u)
	if err != nil {
		return false, err
	}
	xv, err := NCA(x, v)
	if err != nil {
		return false, err
	}
	if xu.Equal(x) && xv.Equal(m) {
		return true, nil
	}
	if xu.Equal(m) && xv.Equal(x) {
		return true, nil
	}
	return false, nil
}

// Labeling is a complete label assignment for one tree, along with the
// auxiliary per-node certificates (W, S) used by the proof-labeling
// scheme of Lemma 5.1.
type Labeling struct {
	tree   *trees.Tree
	decomp *trees.HeavyPathDecomposition
	labels map[graph.NodeID]Label
	// pathWeight[v] (the W certificate) is the subtree size of the head
	// of v's heavy path.
	pathWeight map[graph.NodeID]int
	// cumWeight[v] (the S certificate) is the sum of off-path weights of
	// the positions before v on its heavy path; equivalently
	// size(head) - size(v).
	cumWeight map[graph.NodeID]int
	byLabel   map[string]graph.NodeID
}

// Build computes the labeling of t.
func Build(t *trees.Tree) (*Labeling, error) {
	d := trees.Decompose(t)
	lb := &Labeling{
		tree:       t,
		decomp:     d,
		labels:     make(map[graph.NodeID]Label, t.N()),
		pathWeight: make(map[graph.NodeID]int, t.N()),
		cumWeight:  make(map[graph.NodeID]int, t.N()),
		byLabel:    make(map[string]graph.NodeID, t.N()),
	}
	// prefix[h] is the label content preceding the position code of the
	// heavy path headed by h.
	prefix := map[graph.NodeID]bits.String{t.Root(): {}}
	// Process heads in BFS order from the root so prefixes exist.
	order := []graph.NodeID{t.Root()}
	seen := map[graph.NodeID]bool{t.Root(): true}
	for i := 0; i < len(order); i++ {
		h := order[i]
		path := d.Path(h)
		posCode, err := positionCode(d, path)
		if err != nil {
			return nil, err
		}
		cum := 0
		for idx, x := range path {
			lb.pathWeight[x] = d.SubtreeSize(h)
			lb.cumWeight[x] = cum
			cum += d.OffPathWeight(x)
			pc := posCode.Code(idx)
			base := prefix[h]
			withPos := bits.AppendGamma(base, uint64(pc.Len())).Concat(pc)
			lb.labels[x] = Label{raw: withPos.AppendBit(false)}
			// Extend prefixes into light children.
			light := lightChildren(t, d, x)
			if len(light) == 0 {
				continue
			}
			childCode, err := childCodeFor(d, light)
			if err != nil {
				return nil, err
			}
			for ci, c := range light {
				cc := childCode.Code(ci)
				p := withPos.AppendBit(true)
				p = bits.AppendGamma(p, uint64(cc.Len())).Concat(cc)
				prefix[c] = p
				if !seen[c] {
					seen[c] = true
					order = append(order, c)
				}
			}
		}
	}
	for v, l := range lb.labels {
		key := l.String()
		if prev, dup := lb.byLabel[key]; dup {
			return nil, fmt.Errorf("nca: nodes %d and %d share label %s", prev, v, key)
		}
		lb.byLabel[key] = v
	}
	return lb, nil
}

// positionCode builds the alphabetic code of positions along a heavy
// path, weighted by off-path weights (AGKR's telescoping trick).
func positionCode(d *trees.HeavyPathDecomposition, path []graph.NodeID) (*bits.AlphabeticCode, error) {
	ws := make([]uint64, len(path))
	for i, x := range path {
		ws[i] = uint64(d.OffPathWeight(x))
	}
	code, err := bits.NewAlphabeticCode(ws)
	if err != nil {
		return nil, fmt.Errorf("nca: position code: %w", err)
	}
	return code, nil
}

// childCodeFor builds the alphabetic code over the light children of a
// node (ordered by ID), weighted by subtree sizes.
func childCodeFor(d *trees.HeavyPathDecomposition, light []graph.NodeID) (*bits.AlphabeticCode, error) {
	ws := make([]uint64, len(light))
	for i, c := range light {
		ws[i] = uint64(d.SubtreeSize(c))
	}
	code, err := bits.NewAlphabeticCode(ws)
	if err != nil {
		return nil, fmt.Errorf("nca: child code: %w", err)
	}
	return code, nil
}

// lightChildren returns v's children except its heavy child, by ID.
func lightChildren(t *trees.Tree, d *trees.HeavyPathDecomposition, v graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for _, c := range t.Children(v) {
		if c != d.HeavyChild(v) {
			out = append(out, c)
		}
	}
	slices.Sort(out)
	return out
}

// Label returns the label of node v.
func (lb *Labeling) Label(v graph.NodeID) Label { return lb.labels[v] }

// NodeOf resolves a label back to its node; ok is false for labels not
// assigned to any node.
func (lb *Labeling) NodeOf(l Label) (graph.NodeID, bool) {
	v, ok := lb.byLabel[l.String()]
	return v, ok
}

// MaxLabelBits returns the maximum label length in bits over all nodes —
// the space bound of Lemma 5.1, O(log n).
func (lb *Labeling) MaxLabelBits() int {
	max := 0
	for _, l := range lb.labels {
		if l.Len() > max {
			max = l.Len()
		}
	}
	return max
}

// PathWeight returns the W certificate of v (subtree size of v's heavy
// path head).
func (lb *Labeling) PathWeight(v graph.NodeID) int { return lb.pathWeight[v] }

// CumWeight returns the S certificate of v (off-path weight accumulated
// before v's position on its heavy path).
func (lb *Labeling) CumWeight(v graph.NodeID) int { return lb.cumWeight[v] }

// Tree returns the labeled tree.
func (lb *Labeling) Tree() *trees.Tree { return lb.tree }

// ConstructionRounds returns the number of rounds charged for the silent
// self-stabilizing construction of the labeling (Lemma 5.1: O(n)). The
// accounting follows the wave structure of the construction: one
// convergecast of subtree sizes (height rounds), one broadcast of path
// weights down heavy paths (height rounds), one top-down label assembly
// wave (height rounds), and a per-node code-serving phase in which a
// parent hands each light child its child code through its register
// (max light-degree rounds, the state-model replacement for per-child
// messages).
func (lb *Labeling) ConstructionRounds() int {
	depths := lb.tree.Depths()
	height := 0
	for _, d := range depths {
		if d > height {
			height = d
		}
	}
	maxLight := 0
	for _, v := range lb.tree.Nodes() {
		if l := len(lightChildren(lb.tree, lb.decomp, v)); l > maxLight {
			maxLight = l
		}
	}
	return 3*(height+1) + maxLight
}
