// Package bfs implements the paper's worked example of the PLS-guided
// framework (Section III): silent self-stabilizing BFS spanning tree
// construction with space-optimal O(log n)-bit registers.
//
// The proof-labeling scheme is the distance labeling: node u rejects iff
// some graph neighbor v has d(v) < d(u) − 1. The potential function is
//
//	φ(T) = Σ_u |d_T(u) − dist_G(u, r)| = Σ_u (depth_T(u) − dist_G(u, r)),
//
// non-negative, zero exactly on BFS trees, and cyclical-decreasing: for a
// rejecting node u with witness v, swapping e = {u,v} against
// f = {u, p(u)} lowers the depth of u's whole subtree, hence φ.
//
// Two implementations are provided:
//
//   - Algorithm: the fully integrated always-on rule system — the
//     switching rules of Section IV extended by a single improvement
//     rule ("request a switch onto a neighbor whose distance is smaller
//     than mine minus one"), so detection, the loop-free switch, and the
//     relabeling all happen inside one self-stabilizing transition
//     function;
//   - Task: the same family packaged for the core framework engines
//     (used by the φ-monotonicity and round-accounting experiments).
package bfs

import (
	"fmt"
	"math/rand"

	"silentspan/internal/core"
	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

// Algorithm is the always-on silent self-stabilizing BFS construction.
// Registers are switching.State values: the malleable (root, parent,
// d, s) labels plus the switch controls — O(log n) bits.
type Algorithm struct{}

var _ runtime.Algorithm = Algorithm{}

// Name implements runtime.Algorithm.
func (Algorithm) Name() string { return "pls-guided-bfs" }

// Step implements runtime.Algorithm: switching rules first (construction,
// sanitization, the three-phase switch, label maintenance); if none is
// enabled and the node is quiet, the BFS improvement rule may request a
// switch onto a strictly closer neighbor.
func (Algorithm) Step(v runtime.View) runtime.State {
	s, ok := switching.RegOf(v.Self)
	if !ok {
		return switching.SelfRoot(v.ID)
	}
	next := switching.StepReg(s, v, switching.RegOf)
	if !next.Equal(s) {
		return next
	}
	if target, ok := improvement(s, v); ok {
		s.Sw = switching.SwReq
		s.SwTarget = target
		return s
	}
	return s
}

// improvement is the PLS-guided BFS rule: node u with a neighbor v such
// that d(v) + 1 < d(u) requests the switch e = {u,v}, f = {u,p(u)}. It
// fires only in a locally quiet neighborhood, so requests are based on
// settled labels.
func improvement(s switching.State, v runtime.View) (graph.NodeID, bool) {
	if !s.Idle() || !s.HasD || !s.HasS || s.Parent == trees.None {
		return trees.None, false
	}
	best := trees.None
	bestD := s.D - 1 // require strict improvement: d(target)+1 < d(u)
	for j, u := range v.Neighbors {
		p, ok := switching.RegOf(v.PeerAt(j))
		if !ok {
			continue
		}
		if !p.Idle() || !p.HasD || !p.HasS || p.Root != s.Root {
			continue
		}
		if p.Parent == v.ID {
			// u is this node's own child: its smaller distance can only
			// be a stale value (a consistent child is deeper). Adopting
			// it would create a cycle; the switch guards would abort the
			// request, and re-requesting forever would livelock under an
			// unfair scheduler that starves the child's distance repair.
			continue
		}
		if p.D+1 < s.D && p.D+1 <= bestD {
			best, bestD = u, p.D+1
		}
	}
	if best == trees.None {
		return trees.None, false
	}
	return best, true
}

// ArbitraryState implements runtime.Algorithm.
func (Algorithm) ArbitraryState(rng *rand.Rand, v runtime.View) runtime.State {
	return switching.Algorithm{}.ArbitraryState(rng, v)
}

// Task packages BFS for the core framework engines.
type Task struct{}

var _ core.Task = Task{}

// Name implements core.Task.
func (Task) Name() string { return "bfs" }

// Value implements core.Task: φ(T) = Σ_u (depth_T(u) − dist_G(u, r)).
func (Task) Value(g *graph.Graph, t *trees.Tree) (int, error) {
	dist, err := g.BFSDistances(t.Root())
	if err != nil {
		return 0, fmt.Errorf("bfs: %w", err)
	}
	depth := t.Depths()
	phi := 0
	for v, d := range depth {
		diff := d - dist[v]
		if diff < 0 {
			return 0, fmt.Errorf("bfs: node %d has depth %d below graph distance %d", v, d, dist[v])
		}
		phi += diff
	}
	return phi, nil
}

// MaxValue implements core.Task: φ_max = O(n²) (each of n nodes can be at
// most n−1 deeper than its graph distance).
func (Task) MaxValue(g *graph.Graph) int { return g.N() * g.N() }

// Label implements core.Task. The BFS labels are the distance labels the
// substrate already maintains: one top-down wave of depth assignments,
// so t_label is the tree height and s_label is one O(log n)-bit integer.
func (Task) Label(g *graph.Graph, t *trees.Tree) (core.LabelInfo, error) {
	height := 0
	for _, d := range t.Depths() {
		if d > height {
			height = d
		}
	}
	return core.LabelInfo{
		MaxBits: runtime.BitsForValue(g.N() - 1),
		Rounds:  height + 1,
	}, nil
}

// FindImprovement implements core.Task: pick the rejecting node with the
// largest depth excess (the root's selection among candidates, as in the
// paper's example), and return the single swap e = {u,v}, f = {u,p(u)}.
// Discovery is one convergecast plus one broadcast: 2·height rounds.
func (Task) FindImprovement(g *graph.Graph, t *trees.Tree) ([]core.Swap, int, bool, error) {
	depth := t.Depths()
	height := 0
	for _, d := range depth {
		if d > height {
			height = d
		}
	}
	var (
		found    bool
		bestU    graph.NodeID
		bestV    graph.NodeID
		bestGain int
	)
	for _, u := range t.Nodes() {
		if t.Parent(u) == trees.None {
			continue
		}
		for _, v := range g.Neighbors(u) {
			gain := depth[u] - (depth[v] + 1)
			if gain > bestGain {
				found, bestU, bestV, bestGain = true, u, v, gain
			}
		}
	}
	if !found {
		return nil, 2 * (height + 1), false, nil
	}
	sw := core.Swap{
		Add:    graph.Edge{U: bestU, V: bestV},
		Remove: graph.Edge{U: bestU, V: t.Parent(bestU)},
	}
	return []core.Swap{sw}, 2 * (height + 1), true, nil
}
