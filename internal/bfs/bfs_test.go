package bfs

import (
	"math/rand"
	"testing"

	"silentspan/internal/core"
	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

func stabilize(t *testing.T, g *graph.Graph, sched runtime.Scheduler, seed int64) (*runtime.Network, runtime.Result) {
	t.Helper()
	net, err := runtime.NewNetwork(g, Algorithm{})
	if err != nil {
		t.Fatal(err)
	}
	net.InitArbitrary(rand.New(rand.NewSource(seed)))
	res, err := net.Run(sched, 4_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent {
		t.Fatalf("not silent after %d moves / %d rounds", res.Moves, res.Rounds)
	}
	return net, res
}

func checkBFS(t *testing.T, net *runtime.Network) *trees.Tree {
	t.Helper()
	tr, err := switching.ExtractTree(net, switching.RegOf)
	if err != nil {
		t.Fatal(err)
	}
	g := net.Graph()
	if tr.Root() != g.MinID() {
		t.Errorf("root %d, want %d", tr.Root(), g.MinID())
	}
	if !trees.IsBFSTree(tr, g) {
		t.Error("stabilized tree is not a BFS tree")
	}
	a, err := switching.ToAssignment(net, switching.RegOf)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(g); err != nil {
		t.Errorf("verifier rejects final configuration: %v", err)
	}
	return tr
}

func TestAlwaysOnBFSStabilizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := map[string]*graph.Graph{
		"path":      graph.Path(12),
		"ring":      graph.Ring(11),
		"grid":      graph.Grid(4, 4),
		"complete":  graph.Complete(7),
		"lollipop":  graph.Lollipop(5, 6),
		"random":    graph.RandomConnected(25, 0.2, rng),
		"geometric": graph.RandomGeometric(20, 0.35, rng),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				net, _ := stabilize(t, g, runtime.Central(), seed)
				checkBFS(t, net)
			}
		})
	}
}

func TestAlwaysOnBFSUnderSchedulers(t *testing.T) {
	g := graph.RandomConnected(20, 0.25, rand.New(rand.NewSource(2)))
	scheds := map[string]runtime.Scheduler{
		"synchronous": runtime.Synchronous(),
		"adversarial": runtime.AdversarialUnfair(),
		"random":      runtime.RandomSubset(rand.New(rand.NewSource(3))),
	}
	for name, sched := range scheds {
		t.Run(name, func(t *testing.T) {
			net, _ := stabilize(t, g, sched, 7)
			checkBFS(t, net)
		})
	}
}

func TestAlwaysOnBFSLoopFreeFromLegalTree(t *testing.T) {
	// Start from a legal non-BFS tree: every intermediate configuration
	// keeps the spanning tree (loop-freedom of the repair).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(15, 0.3, rng)
		tr, err := trees.DFSTree(g, g.MinID())
		if err != nil {
			t.Fatal(err)
		}
		net, err := runtime.NewNetwork(g, Algorithm{})
		if err != nil {
			t.Fatal(err)
		}
		if err := switching.InitFromTree(net, tr); err != nil {
			t.Fatal(err)
		}
		net.AddMonitor(switching.LoopFreeMonitor(switching.RegOf))
		res, err := net.Run(runtime.Central(), 4_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Silent {
			t.Fatal("not silent")
		}
		checkBFS(t, net)
	}
}

func TestFaultRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.Grid(4, 5)
	net, _ := stabilize(t, g, runtime.Central(), 8)
	for trial := 0; trial < 8; trial++ {
		runtime.Corrupt(net, 1+rng.Intn(4), rng)
		res, err := net.Run(runtime.Central(), 4_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Silent {
			t.Fatalf("trial %d: no recovery", trial)
		}
		checkBFS(t, net)
	}
}

func TestSpaceLogarithmic(t *testing.T) {
	for _, n := range []int{16, 32, 64} {
		g := graph.RandomConnected(n, 0.12, rand.New(rand.NewSource(int64(n))))
		_, res := stabilize(t, g, runtime.Central(), 9)
		bound := 6*(log2ceil(2*n)+1) + 12
		if res.MaxRegisterBits > bound {
			t.Errorf("n=%d: %d bits > %d", n, res.MaxRegisterBits, bound)
		}
	}
}

func TestTaskPotential(t *testing.T) {
	g := graph.Ring(8)
	bfsT, err := trees.BFSTree(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := Task{}.Value(g, bfsT)
	if err != nil {
		t.Fatal(err)
	}
	if phi != 0 {
		t.Errorf("φ(BFS tree) = %d, want 0", phi)
	}
	// The path-shaped tree of a ring has positive potential.
	pathT, err := trees.FromParentMap(pathParents(8))
	if err != nil {
		t.Fatal(err)
	}
	phi, err = Task{}.Value(g, pathT)
	if err != nil {
		t.Fatal(err)
	}
	if phi <= 0 {
		t.Errorf("φ(path tree of ring) = %d, want > 0", phi)
	}
}

func pathParents(n int) map[graph.NodeID]graph.NodeID {
	pm := map[graph.NodeID]graph.NodeID{1: trees.None}
	for i := 2; i <= n; i++ {
		pm[graph.NodeID(i)] = graph.NodeID(i - 1)
	}
	return pm
}

func TestSequentialEngineBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomConnected(10+rng.Intn(30), 0.2, rng)
		t0, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			t.Fatal(err)
		}
		final, trace, err := core.RunSequential(g, t0, Task{})
		if err != nil {
			t.Fatal(err)
		}
		if !trees.IsBFSTree(final, g) {
			t.Fatal("sequential engine did not produce a BFS tree")
		}
		// φ strictly decreasing.
		for i := 1; i < len(trace.Potentials); i++ {
			if trace.Potentials[i] >= trace.Potentials[i-1] {
				t.Fatalf("φ not strictly decreasing: %v", trace.Potentials)
			}
		}
	}
}

func TestDistributedEngineBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomConnected(12+rng.Intn(10), 0.25, rng)
		final, trace, err := core.RunDistributed(g, Task{}, core.EngineOptions{
			Monitor: true,
			Rng:     rand.New(rand.NewSource(int64(trial))),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !trees.IsBFSTree(final, g) {
			t.Fatal("distributed engine did not produce a BFS tree")
		}
		if trace.Rounds <= 0 {
			t.Error("no rounds accounted")
		}
		if trace.MaxRegisterBits <= 0 {
			t.Error("no register accounting")
		}
	}
}

func log2ceil(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}
