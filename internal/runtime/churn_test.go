package runtime

// Live-topology churn: the Network mutators must keep the register
// file, enabled set, dirty worklist, and round frontier consistent
// while nodes and edges appear and disappear under stabilization. The
// tests below cover the mutation edge cases one by one (table tests),
// the EnabledSet's identity-order view under slot recycling (oracle
// test), and a concurrent run with a live mutator goroutine (race
// test; run with -race in CI).

import (
	"math/rand"
	"slices"
	"testing"
	"time"

	"silentspan/internal/graph"
)

// verifyParentConfig checks a silent parentAlg configuration against
// its graph: every connected component must be a tree rooted at the
// component's minimum identity, with every node claiming that root and
// a distance consistent with its parent's.
func verifyParentConfig(t *testing.T, g *graph.Graph, net *Network) {
	t.Helper()
	comp := make(map[graph.NodeID]graph.NodeID) // node -> component min ID
	for _, v := range g.Nodes() {
		if _, done := comp[v]; done {
			continue
		}
		// BFS the component, tracking its minimum identity.
		members := []graph.NodeID{v}
		seen := map[graph.NodeID]bool{v: true}
		min := v
		for qi := 0; qi < len(members); qi++ {
			for _, u := range g.NeighborsShared(members[qi]) {
				if !seen[u] {
					seen[u] = true
					members = append(members, u)
					if u < min {
						min = u
					}
				}
			}
		}
		for _, u := range members {
			comp[u] = min
		}
	}
	for _, v := range g.Nodes() {
		s, ok := net.State(v).(parentState)
		if !ok {
			t.Fatalf("node %d holds foreign state %v", v, net.State(v))
		}
		root := comp[v]
		if s.Root != root {
			t.Fatalf("node %d claims root %d, want component min %d", v, s.Root, root)
		}
		if v == root {
			if s.Parent != 0 || s.Dist != 0 {
				t.Fatalf("root %d not self-rooted: %v", v, s)
			}
			continue
		}
		if s.Parent == 0 {
			t.Fatalf("non-root %d claims to be a root: %v", v, s)
		}
		p, ok := net.State(s.Parent).(parentState)
		if !ok || !g.HasEdge(v, s.Parent) {
			t.Fatalf("node %d has bogus parent %d", v, s.Parent)
		}
		if s.Dist != p.Dist+1 {
			t.Fatalf("node %d dist %d, parent %d dist %d", v, s.Dist, s.Parent, p.Dist)
		}
	}
}

// stabilize runs the network to silence and fails the test otherwise.
func stabilize(t *testing.T, net *Network) Result {
	t.Helper()
	res, err := net.Run(Central(), net.Moves()+200_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent {
		t.Fatal("network did not re-stabilize")
	}
	return res
}

// TestNetworkChurnTableCases drives every mutation edge case through a
// live network and asserts re-stabilization to a correct configuration
// of the *mutated* graph.
func TestNetworkChurnTableCases(t *testing.T) {
	// Base fixture: 1-2-3-4-5 path plus a 3-6 spur; node 1 is the root.
	build := func() (*graph.Graph, *Network) {
		g := graph.New()
		g.MustAddEdge(1, 2, 10)
		g.MustAddEdge(2, 3, 11)
		g.MustAddEdge(3, 4, 12)
		g.MustAddEdge(4, 5, 13)
		g.MustAddEdge(3, 6, 14)
		net, err := NewNetwork(g, parentAlg{})
		if err != nil {
			t.Fatal(err)
		}
		net.InitArbitrary(rand.New(rand.NewSource(5)))
		stabilize(t, net)
		verifyParentConfig(t, g, net)
		return g, net
	}

	t.Run("remove-root", func(t *testing.T) {
		g, net := build()
		// Removing node 1 splits nothing (1 is a leaf on the path) and
		// re-elects node 2 as minimum identity.
		if err := net.RemoveNode(1); err != nil {
			t.Fatal(err)
		}
		stabilize(t, net)
		verifyParentConfig(t, g, net)
		if s := net.State(2).(parentState); s.Root != 2 {
			t.Fatalf("new minimum 2 claims root %d", s.Root)
		}
	})

	t.Run("remove-articulation-node", func(t *testing.T) {
		g, net := build()
		// Node 3 is an articulation point: its removal splits the graph
		// into {1,2} and {4,5} and isolates 6 entirely.
		if err := net.RemoveNode(3); err != nil {
			t.Fatal(err)
		}
		if g.Connected() {
			t.Fatal("expected the graph to split")
		}
		stabilize(t, net)
		verifyParentConfig(t, g, net) // per-component roots 1, 4, 6
	})

	t.Run("add-shortcut-edge", func(t *testing.T) {
		g, net := build()
		// A 1-5 shortcut drops 5's distance from 4 to 1; the tree must
		// re-hang 5 (and possibly 4) below the shortcut.
		if err := net.AddEdge(1, 5, 20); err != nil {
			t.Fatal(err)
		}
		stabilize(t, net)
		verifyParentConfig(t, g, net)
		if s := net.State(5).(parentState); s.Dist != 1 || s.Parent != 1 {
			t.Fatalf("node 5 did not adopt the shortcut: %v", s)
		}
	})

	t.Run("remove-leaf-last-edge", func(t *testing.T) {
		g, net := build()
		// 3-6 is leaf 6's only edge: removing it isolates 6, which must
		// re-stabilize as the root of its own singleton component.
		if err := net.RemoveEdge(3, 6); err != nil {
			t.Fatal(err)
		}
		if g.Degree(6) != 0 {
			t.Fatalf("leaf 6 has degree %d after losing its last edge", g.Degree(6))
		}
		stabilize(t, net)
		verifyParentConfig(t, g, net)
	})

	t.Run("join-reuses-vacated-slot", func(t *testing.T) {
		g, net := build()
		slot, _ := net.Dense().IndexOf(4)
		if err := net.RemoveNode(4); err != nil {
			t.Fatal(err)
		}
		// Node 9 joins on the vacated slot, wired to 5 — healing 5's
		// orphaned component back via 9? No: 9-5 and 9-3 re-join it.
		if err := net.AddNode(9, nil); err != nil {
			t.Fatal(err)
		}
		if got, _ := net.Dense().IndexOf(9); got != slot {
			t.Fatalf("node 9 got slot %d, want vacated slot %d", got, slot)
		}
		if err := net.AddEdge(9, 5, 30); err != nil {
			t.Fatal(err)
		}
		if err := net.AddEdge(9, 3, 31); err != nil {
			t.Fatal(err)
		}
		stabilize(t, net)
		verifyParentConfig(t, g, net)
		if !g.Connected() {
			t.Fatal("graph should be healed")
		}
	})

	t.Run("idempotence-and-errors", func(t *testing.T) {
		_, net := build()
		if err := net.AddNode(2, nil); err == nil {
			t.Error("duplicate AddNode accepted")
		}
		if err := net.AddEdge(1, 2, 50); err == nil {
			t.Error("duplicate AddEdge accepted")
		}
		if err := net.RemoveEdge(1, 5); err == nil {
			t.Error("RemoveEdge accepted an absent edge")
		}
		if err := net.RemoveEdge(1, 2); err != nil {
			t.Fatal(err)
		}
		if err := net.RemoveEdge(1, 2); err == nil {
			t.Error("double RemoveEdge accepted")
		}
		if err := net.RemoveNode(77); err == nil {
			t.Error("RemoveNode accepted an unknown node")
		}
		if err := net.RemoveNode(6); err != nil {
			t.Fatal(err)
		}
		if err := net.RemoveNode(6); err == nil {
			t.Error("double RemoveNode accepted")
		}
		stabilize(t, net)
	})
}

// TestEnabledSetChurnOracle recycles slots through a live graph while
// toggling memberships, checking every ordered accessor against a
// plain map oracle. This is the identity-order view's torture test:
// after enough joins and leaves, slot order and identity order are
// thoroughly decorrelated.
func TestEnabledSetChurnOracle(t *testing.T) {
	g := graph.New()
	for id := 1; id <= 24; id++ {
		g.AddNode(graph.NodeID(id))
	}
	d := g.Dense()
	es := newEnabledSet(d)
	enabled := make(map[graph.NodeID]bool)
	present := make(map[graph.NodeID]bool)
	for id := 1; id <= 24; id++ {
		present[graph.NodeID(id)] = true
	}
	rng := rand.New(rand.NewSource(41))
	nextID := graph.NodeID(100)

	liveIDs := func() []graph.NodeID {
		var out []graph.NodeID
		for id := range present {
			out = append(out, id)
		}
		slices.Sort(out)
		return out
	}

	for step := 0; step < 4000; step++ {
		ids := liveIDs()
		switch op := rng.Intn(10); {
		case op < 5: // toggle membership of a live node
			v := ids[rng.Intn(len(ids))]
			slot, ok := d.IndexOf(v)
			if !ok {
				t.Fatalf("live node %d unresolvable", v)
			}
			if enabled[v] {
				es.remove(slot)
				delete(enabled, v)
			} else {
				es.add(slot)
				enabled[v] = true
			}
		case op < 7: // leave
			if len(ids) <= 2 {
				continue
			}
			v := ids[rng.Intn(len(ids))]
			slot, _ := d.IndexOf(v)
			es.deleteSlot(slot)
			if err := g.RemoveNode(v); err != nil {
				t.Fatal(err)
			}
			delete(present, v)
			delete(enabled, v)
		default: // join (reusing vacated slots when available)
			id := nextID
			nextID++
			if rng.Intn(2) == 0 && len(ids) < 40 {
				// Small IDs too, so joins land on both sides of the
				// existing identity range.
				id = graph.NodeID(rng.Intn(90) + 1)
				if present[id] {
					continue
				}
			}
			g.AddNode(id)
			slot, _ := d.IndexOf(id)
			es.insertID(slot, id)
			present[id] = true
		}

		if step%37 != 0 {
			continue
		}
		var want []graph.NodeID
		for id := range enabled {
			want = append(want, id)
		}
		slices.Sort(want)
		if es.Len() != len(want) {
			t.Fatalf("step %d: Len=%d, want %d", step, es.Len(), len(want))
		}
		if got := es.AppendIDs(nil); !slices.Equal(got, want) {
			t.Fatalf("step %d: AppendIDs=%v, want %v", step, got, want)
		}
		if len(want) > 0 {
			if es.MinID() != want[0] {
				t.Fatalf("step %d: MinID=%d, want %d", step, es.MinID(), want[0])
			}
			k := rng.Intn(len(want))
			if es.IDAt(k) != want[k] {
				t.Fatalf("step %d: IDAt(%d)=%d, want %d", step, k, es.IDAt(k), want[k])
			}
			probe := want[rng.Intn(len(want))]
			if !es.ContainsID(probe) {
				t.Fatalf("step %d: ContainsID(%d)=false", step, probe)
			}
			j, _ := slices.BinarySearch(want, probe+1)
			if j < len(want) {
				if got, ok := es.NextIDAfter(probe); !ok || got != want[j] {
					t.Fatalf("step %d: NextIDAfter(%d)=%d,%v, want %d", step, probe, got, ok, want[j])
				}
			} else if _, ok := es.NextIDAfter(probe); ok {
				t.Fatalf("step %d: NextIDAfter(max) should be none", step)
			}
		}
	}
}

// TestNodeChurnRejectedWhileConcurrent pins the guard directly: while
// the concurrent flag is up (as RunConcurrent holds it), node churn is
// refused and edge churn is not.
func TestNodeChurnRejectedWhileConcurrent(t *testing.T) {
	g := graph.New()
	g.MustAddEdge(1, 2, 10)
	g.MustAddEdge(2, 3, 11)
	net, err := NewNetwork(g, parentAlg{})
	if err != nil {
		t.Fatal(err)
	}
	net.concurrent = true
	if err := net.AddNode(9, nil); err == nil {
		t.Error("AddNode accepted during a concurrent run")
	}
	if err := net.RemoveNode(3); err == nil {
		t.Error("RemoveNode accepted during a concurrent run")
	}
	if err := net.AddEdge(1, 3, 12); err != nil {
		t.Errorf("edge churn should stay legal: %v", err)
	}
	net.concurrent = false
	if err := net.AddNode(9, nil); err != nil {
		t.Errorf("AddNode after the run: %v", err)
	}
}

// TestConcurrentChurnRace runs the concurrent (goroutine-per-node)
// engine while a mutator goroutine applies a seeded edge-churn
// schedule, then verifies the system settles once churn stops. Under
// -race this asserts that no view is ever read torn against a topology
// mutation.
func TestConcurrentChurnRace(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.RandomConnected(48, 0.12, rng)
	net, err := NewNetwork(g, parentAlg{})
	if err != nil {
		t.Fatal(err)
	}
	net.InitArbitrary(rand.New(rand.NewSource(14)))

	done := make(chan struct{})
	go func() {
		defer close(done)
		mrng := rand.New(rand.NewSource(15))
		var removed []graph.Edge
		for i := 0; i < 400; i++ {
			switch op := mrng.Intn(4); {
			case op == 0 && len(removed) > 0: // link back up
				e := removed[len(removed)-1]
				removed = removed[:len(removed)-1]
				if err := net.AddEdge(e.U, e.V, e.W); err != nil {
					t.Error(err)
					return
				}
			case op == 1: // link down
				edges := g.Edges()
				e := edges[mrng.Intn(len(edges))]
				if err := net.RemoveEdge(e.U, e.V); err != nil {
					t.Error(err)
					return
				}
				removed = append(removed, e)
			default: // re-cost a live link
				edges := g.Edges()
				e := edges[mrng.Intn(len(edges))]
				if err := net.PerturbEdgeWeight(e.U, e.V, graph.Weight(1_000_000+mrng.Intn(1_000_000))); err != nil {
					t.Error(err)
					return
				}
			}
		}
		// Heal every downed link so the final graph is the one the
		// silence assertion runs against.
		for _, e := range removed {
			if err := net.AddEdge(e.U, e.V, e.W); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	res, err := RunConcurrent(net, 5_000_000, 20*time.Second)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	// The runner may have detected silence while churn was mid-flight
	// (a burst can re-enable nodes right after the sweep); what matters
	// is that after churn stops, the system settles and the final
	// configuration is correct for the final graph.
	_ = res
	res2, err := RunConcurrent(net, 5_000_000, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Silent {
		t.Fatal("network not silent after churn stopped")
	}
	if !net.Silent() {
		t.Fatal("sequential engine disagrees about silence")
	}
	verifyParentConfig(t, g, net)
}

// TestChurnUnderSequentialRuns interleaves mutation bursts with
// sequential repair runs under every scheduler, asserting
// re-stabilization and a correct final configuration each time — the
// engine-level churn campaign the cert package scales up.
func TestChurnUnderSequentialRuns(t *testing.T) {
	for schedName, mkSched := range equivSchedulers() {
		t.Run(schedName, func(t *testing.T) {
			rng := rand.New(rand.NewSource(23))
			g := graph.RandomConnected(30, 0.15, rng)
			net, err := NewNetwork(g, parentAlg{})
			if err != nil {
				t.Fatal(err)
			}
			net.InitArbitrary(rand.New(rand.NewSource(24)))
			sched := mkSched(99)
			nextID := graph.NodeID(500)
			for burst := 0; burst < 12; burst++ {
				if _, err := net.Run(sched, net.Moves()+100_000); err != nil {
					t.Fatal(err)
				}
				for k := 0; k < 4; k++ {
					nodes := g.Nodes()
					switch op := rng.Intn(6); {
					case op < 2:
						u := nodes[rng.Intn(len(nodes))]
						v := nodes[rng.Intn(len(nodes))]
						if u != v && !g.HasEdge(u, v) {
							if err := net.AddEdge(u, v, graph.Weight(10_000+burst*100+k)); err != nil {
								t.Fatal(err)
							}
						}
					case op < 4:
						edges := g.Edges()
						e := edges[rng.Intn(len(edges))]
						if err := net.RemoveEdge(e.U, e.V); err != nil {
							t.Fatal(err)
						}
					case op < 5:
						if len(nodes) > 3 {
							if err := net.RemoveNode(nodes[rng.Intn(len(nodes))]); err != nil {
								t.Fatal(err)
							}
						}
					default:
						if err := net.AddNode(nextID, nil); err != nil {
							t.Fatal(err)
						}
						anchor := nodes[rng.Intn(len(nodes))]
						if err := net.AddEdge(nextID, anchor, graph.Weight(20_000+int(nextID))); err != nil {
							t.Fatal(err)
						}
						nextID++
					}
				}
			}
			res, err := net.Run(sched, net.Moves()+300_000)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Silent {
				t.Fatal("not silent after final burst")
			}
			if err := CheckSilentStable(net); err != nil {
				t.Fatal(err)
			}
			verifyParentConfig(t, g, net)
		})
	}
}
