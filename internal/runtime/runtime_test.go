package runtime

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"silentspan/internal/graph"
)

// minState is a toy register for tests: an integer claim of the minimum
// identity in the network.
type minState struct {
	min graph.NodeID
}

func (s minState) Equal(o State) bool {
	os, ok := o.(minState)
	return ok && os.min == s.min
}

func (s minState) EncodedBits() int { return BitsForValue(int(s.min)) }

func (s minState) String() string { return fmt.Sprintf("min=%d", s.min) }

// minAlg stabilizes every register to the minimum node ID: a silent
// self-stabilizing algorithm in one rule, used to exercise the runtime.
//
// Rule: v sets min(v) = min(ID(v), min over neighbors of min(u)), but a
// claimed minimum below every ID it can justify dies out because we clamp
// at the node's own ID when the claim is smaller than all neighbor claims
// and own ID... To keep the toy simple and still self-stabilizing, the
// rule recomputes from scratch: min(v) = min(ID(v), min_u min(u)) can lock
// in a fake too-small value, so instead each node distrusts its own stored
// value; fake minima persist only if a neighbor keeps asserting them. To
// guarantee stabilization from arbitrary states the test initializes
// claims >= 1 and IDs are >= 1 while corruption draws from valid range.
type minAlg struct{}

func (minAlg) Name() string { return "min-propagation" }

func (minAlg) Step(v View) State {
	best := v.ID
	for _, u := range v.Neighbors {
		if p, ok := v.Peer(u).(minState); ok && p.min < best {
			best = p.min
		}
	}
	return minState{min: best}
}

func (minAlg) ArbitraryState(rng *rand.Rand, v View) State {
	return minState{min: graph.NodeID(rng.Intn(v.N) + 1)}
}

func newTestNetwork(t *testing.T, g *graph.Graph) *Network {
	t.Helper()
	net, err := NewNetwork(g, minAlg{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewNetworkRejectsBadGraphs(t *testing.T) {
	if _, err := NewNetwork(graph.New(), minAlg{}); err == nil {
		t.Error("accepted empty graph")
	}
	g := graph.New()
	g.AddNode(1)
	g.AddNode(2)
	if _, err := NewNetwork(g, minAlg{}); err == nil {
		t.Error("accepted disconnected graph")
	}
}

func TestRunStabilizesUnderAllSchedulers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	scheds := map[string]func() Scheduler{
		"synchronous":   Synchronous,
		"central":       Central,
		"roundrobin":    RoundRobin,
		"adversarial":   AdversarialUnfair,
		"randomcentral": func() Scheduler { return RandomCentral(rand.New(rand.NewSource(2))) },
		"randomsubset":  func() Scheduler { return RandomSubset(rand.New(rand.NewSource(3))) },
	}
	for name, mk := range scheds {
		t.Run(name, func(t *testing.T) {
			g := graph.RandomConnected(25, 0.15, rng)
			net := newTestNetwork(t, g)
			net.InitArbitrary(rng)
			res, err := net.Run(mk(), 100000)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Silent {
				t.Fatalf("did not reach silence in %d moves", res.Moves)
			}
			for _, v := range g.Nodes() {
				if s := net.State(v).(minState); s.min != 1 {
					t.Errorf("node %d stabilized to min=%d, want 1", v, s.min)
				}
			}
			if err := CheckSilentStable(net); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestRoundsAtMostDiameterForMin(t *testing.T) {
	// On a path with IDs increasing left to right, min-propagation takes
	// at most n-1 rounds from a worst-case initialization.
	g := graph.Path(20)
	net := newTestNetwork(t, g)
	for _, v := range g.Nodes() {
		net.SetState(v, minState{min: v}) // everyone claims itself
	}
	res, err := net.Run(AdversarialUnfair(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent {
		t.Fatal("not silent")
	}
	if res.Rounds > 20 {
		t.Errorf("rounds = %d, want <= 20 (diameter bound)", res.Rounds)
	}
}

func TestSynchronousRoundsEqualSteps(t *testing.T) {
	g := graph.Path(10)
	net := newTestNetwork(t, g)
	for _, v := range g.Nodes() {
		net.SetState(v, minState{min: v})
	}
	res, err := net.Run(Synchronous(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Under the synchronous daemon, information travels one hop per round:
	// 9 rounds for min=1 to reach node 10.
	if res.Rounds != 9 {
		t.Errorf("rounds = %d, want 9", res.Rounds)
	}
}

func TestMovesCounted(t *testing.T) {
	g := graph.Path(5)
	net := newTestNetwork(t, g)
	for _, v := range g.Nodes() {
		net.SetState(v, minState{min: v})
	}
	res, err := net.Run(Central(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves == 0 {
		t.Error("no moves counted")
	}
	if net.Moves() != res.Moves {
		t.Error("Moves() accessor disagrees with result")
	}
}

func TestMaxMovesCap(t *testing.T) {
	g := graph.Path(50)
	net := newTestNetwork(t, g)
	for _, v := range g.Nodes() {
		net.SetState(v, minState{min: v})
	}
	res, err := net.Run(Central(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Silent {
		t.Error("claimed silence after 3 moves on a 50-path")
	}
	if res.Moves > 3 {
		t.Errorf("moves = %d, want <= 3", res.Moves)
	}
}

func TestMonitorRejection(t *testing.T) {
	g := graph.Path(5)
	net := newTestNetwork(t, g)
	for _, v := range g.Nodes() {
		net.SetState(v, minState{min: v})
	}
	net.AddMonitor(MonitorFunc(func(n *Network) error {
		return fmt.Errorf("always reject")
	}))
	if _, err := net.Run(Central(), 1000); err == nil {
		t.Error("monitor rejection not surfaced")
	}
}

func TestCorruptAndRecover(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.Grid(4, 4)
	net := newTestNetwork(t, g)
	net.InitArbitrary(rng)
	if _, err := net.Run(Central(), 100000); err != nil {
		t.Fatal(err)
	}
	victims := Corrupt(net, 5, rng)
	if len(victims) != 5 {
		t.Fatalf("corrupted %d nodes, want 5", len(victims))
	}
	res, err := net.Run(Central(), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent {
		t.Fatal("did not re-stabilize after corruption")
	}
	for _, v := range g.Nodes() {
		if s := net.State(v).(minState); s.min != 1 {
			t.Errorf("node %d: min=%d after recovery", v, s.min)
		}
	}
}

func TestEnabledCacheConsistency(t *testing.T) {
	// The incremental enabled cache must agree with a from-scratch scan
	// after arbitrary SetState calls.
	rng := rand.New(rand.NewSource(4))
	g := graph.Ring(12)
	net := newTestNetwork(t, g)
	net.InitArbitrary(rng)
	for i := 0; i < 50; i++ {
		v := graph.NodeID(rng.Intn(12) + 1)
		net.SetState(v, minState{min: graph.NodeID(rng.Intn(12) + 1)})
		fresh := map[graph.NodeID]bool{}
		for _, u := range g.Nodes() {
			next := net.alg.Step(net.view(u))
			fresh[u] = !next.Equal(net.State(u))
		}
		for _, u := range net.Enabled() {
			if !fresh[u] {
				t.Fatalf("cache says %d enabled, fresh scan disagrees", u)
			}
			delete(fresh, u)
		}
		for u, en := range fresh {
			if en {
				t.Fatalf("fresh scan says %d enabled, cache disagrees", u)
			}
		}
	}
}

func TestBitsForValue(t *testing.T) {
	cases := []struct{ max, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {255, 8}, {256, 9},
	}
	for _, c := range cases {
		if got := BitsForValue(c.max); got != c.want {
			t.Errorf("BitsForValue(%d) = %d, want %d", c.max, got, c.want)
		}
	}
}

func TestRunConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := graph.RandomConnected(16, 0.2, rng)
	net := newTestNetwork(t, g)
	net.InitArbitrary(rng)
	res, err := RunConcurrent(net, 1_000_000, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent {
		t.Fatal("concurrent run did not reach silence")
	}
	for _, v := range g.Nodes() {
		if s := net.State(v).(minState); s.min != 1 {
			t.Errorf("node %d: min=%d", v, s.min)
		}
	}
}

func TestViewPanicsOnIllegalReads(t *testing.T) {
	g := graph.Path(3)
	net := newTestNetwork(t, g)
	net.InitArbitrary(rand.New(rand.NewSource(1)))
	v := net.view(1)
	defer func() {
		if recover() == nil {
			t.Error("Peer allowed reading a non-neighbor register")
		}
	}()
	v.Peer(3) // 3 is two hops from 1 on the path
}
