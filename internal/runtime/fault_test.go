package runtime

import (
	"math/rand"
	"slices"
	"testing"

	"silentspan/internal/graph"
)

// TestCorruptDeterministic: for a seeded rng, Corrupt must pick the same
// victims and write the same states on every run — the replayability the
// chaos certificates depend on.
func TestCorruptDeterministic(t *testing.T) {
	g := graph.RandomConnected(40, 0.1, rand.New(rand.NewSource(7)))
	mk := func() *Network {
		net := newTestNetwork(t, g)
		net.InitArbitrary(rand.New(rand.NewSource(3)))
		return net
	}
	net1, net2 := mk(), mk()
	v1 := Corrupt(net1, 10, rand.New(rand.NewSource(42)))
	v2 := Corrupt(net2, 10, rand.New(rand.NewSource(42)))
	if !slices.Equal(v1, v2) {
		t.Fatalf("victims differ: %v vs %v", v1, v2)
	}
	if len(v1) != 10 {
		t.Fatalf("got %d victims, want 10", len(v1))
	}
	for _, v := range g.Nodes() {
		if !net1.State(v).Equal(net2.State(v)) {
			t.Fatalf("node %d diverged: %v vs %v", v, net1.State(v), net2.State(v))
		}
	}
	// Distinctness.
	seen := make(map[graph.NodeID]bool)
	for _, v := range v1 {
		if seen[v] {
			t.Fatalf("victim %d repeated", v)
		}
		seen[v] = true
	}
}

// TestCorruptClampsCount: count beyond n corrupts every node exactly
// once; negative counts corrupt nothing; neither panics.
func TestCorruptClampsCount(t *testing.T) {
	g := graph.Ring(6)
	net := newTestNetwork(t, g)
	net.InitArbitrary(rand.New(rand.NewSource(1)))
	if got := Corrupt(net, 1000, rand.New(rand.NewSource(2))); len(got) != 6 {
		t.Fatalf("count>n: corrupted %d nodes, want all 6", len(got))
	}
	if got := Corrupt(net, -3, rand.New(rand.NewSource(2))); len(got) != 0 {
		t.Fatalf("negative count: corrupted %d nodes, want 0", len(got))
	}
}

// TestPerturbEdgeWeightVisibleToViews: the campaign hook must land in
// the dense snapshot the register file reads through, and re-enable the
// endpoints' enabledness recomputation.
func TestPerturbEdgeWeightVisibleToViews(t *testing.T) {
	g := graph.Path(4)
	net := newTestNetwork(t, g)
	net.InitArbitrary(rand.New(rand.NewSource(1)))
	if err := net.PerturbEdgeWeight(2, 3, 777); err != nil {
		t.Fatal(err)
	}
	if w := net.view(2).EdgeWeight(3); w != 777 {
		t.Fatalf("view of node 2 sees weight %d, want 777", w)
	}
	if w := net.view(3).EdgeWeight(2); w != 777 {
		t.Fatalf("view of node 3 sees weight %d, want 777", w)
	}
	if w, _ := g.EdgeWeight(2, 3); w != 777 {
		t.Fatalf("graph records weight %d, want 777", w)
	}
	if err := net.PerturbEdgeWeight(1, 4, 1); err == nil {
		t.Fatal("accepted a non-edge")
	}
}
