// Package runtime implements the state model of self-stabilization used
// by the paper (Section II-A): each process is a node of a connected graph
// with a single-writer multiple-reader register; in one atomic step a node
// (1) reads its own register and those of its neighbors, (2) applies the
// transition function δ, and (3) writes its register. Which enabled node
// steps is under the control of a scheduler; the package provides the
// unfair scheduler the paper assumes, and friends.
//
// The package also provides the paper's round accounting (a round is the
// shortest execution prefix in which every node enabled at its start has
// stepped or become disabled), silence detection (no node enabled),
// transient-fault injection, and invariant monitors used to validate
// claims such as loop-freedom during edge switches (Section IV).
package runtime

import (
	"fmt"
	"math/rand"
	"slices"

	"silentspan/internal/graph"
)

// State is the content of a node's register. Implementations must be
// immutable value-like types: Step must return fresh states rather than
// mutating shared ones.
type State interface {
	// Equal reports whether two register contents are identical. A node
	// is enabled iff δ applied to its view yields a non-Equal state.
	Equal(State) bool
	// EncodedBits returns the exact size in bits of the register content
	// under the natural encoding (IDs and distances as ceil(log2)-width
	// integers, label bit strings at their real length). This backs the
	// space-complexity experiments.
	EncodedBits() int
	// String renders the state for traces.
	String() string
}

// View is everything a node may legally consult during one atomic step:
// its incorruptible constants (identity, incident edge weights, the bound
// on n), its own register, and its neighbors' registers.
type View struct {
	// ID is the node's own identity (incorruptible constant).
	ID graph.NodeID
	// N is the number of network nodes, known to all nodes (the classic
	// assumption bounding distances and ID widths; the paper assumes
	// IDs in {1..n^c} and O(log n)-bit weights).
	N int
	// Neighbors lists neighbor identities in increasing order.
	Neighbors []graph.NodeID
	// Self is the node's own register content.
	Self State

	peers   map[graph.NodeID]State
	weights map[graph.NodeID]graph.Weight
}

// Peer returns the register content of neighbor u. It panics if u is not
// a neighbor: reading a non-neighbor's register would violate the model.
func (v View) Peer(u graph.NodeID) State {
	s, ok := v.peers[u]
	if !ok {
		panic(fmt.Sprintf("runtime: node %d read non-neighbor %d", v.ID, u))
	}
	return s
}

// EdgeWeight returns the weight of the incident edge to neighbor u (an
// incorruptible constant, per Section II-A).
func (v View) EdgeWeight(u graph.NodeID) graph.Weight {
	w, ok := v.weights[u]
	if !ok {
		panic(fmt.Sprintf("runtime: node %d has no edge to %d", v.ID, u))
	}
	return w
}

// Algorithm is a distributed algorithm in the state model: a transition
// function δ plus a way to draw arbitrary initial register contents
// (self-stabilizing algorithms must converge from any of them).
type Algorithm interface {
	// Step applies δ to the view and returns the node's next state. The
	// node is enabled iff the result differs (Equal is false) from
	// view.Self. Step must not mutate the view's states.
	Step(v View) State
	// ArbitraryState returns an arbitrary register content for the node:
	// the adversarial initialization of the self-stabilization model.
	// Implementations should cover the whole reachable state space and
	// also plainly corrupt values.
	ArbitraryState(rng *rand.Rand, v View) State
	// Name identifies the algorithm in traces and benchmarks.
	Name() string
}

// Network binds a graph, an algorithm, and the current register contents.
type Network struct {
	g      *graph.Graph
	alg    Algorithm
	states map[graph.NodeID]State

	// enabledCache caches per-node enabledness; dirty nodes need
	// recomputation (a node's enabledness only changes when it or a
	// neighbor writes).
	enabledCache map[graph.NodeID]bool
	dirty        map[graph.NodeID]bool

	monitors  []Monitor
	listeners []StateListener
	moves     int
	rounds    int
}

// StateListener observes register writes: it is invoked after node v's
// register changes from old to new — both for algorithm steps applied
// by Run and for direct SetState writes (fault injection). Serving
// layers built on top of the trees use it as a topology-change
// notification: a write to a parent pointer means the routing substrate
// may have changed and derived structures (coordinate labelings,
// caches) must be refreshed. Listeners must not mutate the network.
// RunConcurrent operates on a private register file and emits no
// notifications until its final copy-back through the network.
type StateListener func(v graph.NodeID, old, new State)

// NewNetwork creates a network with every register content nil; call
// InitArbitrary or SetState before running. It returns an error for
// disconnected or empty graphs, which the model excludes.
func NewNetwork(g *graph.Graph, alg Algorithm) (*Network, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("runtime: empty graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("runtime: graph not connected")
	}
	net := &Network{
		g:            g,
		alg:          alg,
		states:       make(map[graph.NodeID]State, g.N()),
		enabledCache: make(map[graph.NodeID]bool, g.N()),
		dirty:        make(map[graph.NodeID]bool, g.N()),
	}
	net.markAllDirty()
	return net, nil
}

func (net *Network) markAllDirty() {
	for _, v := range net.g.Nodes() {
		net.dirty[v] = true
	}
}

// markDirtyAround invalidates the cached enabledness of v and neighbors.
func (net *Network) markDirtyAround(v graph.NodeID) {
	net.dirty[v] = true
	for _, u := range net.g.NeighborsShared(v) {
		net.dirty[u] = true
	}
}

// Graph returns the underlying graph.
func (net *Network) Graph() *graph.Graph { return net.g }

// Algorithm returns the bound algorithm.
func (net *Network) Algorithm() Algorithm { return net.alg }

// State returns node v's current register content (nil if unset).
func (net *Network) State(v graph.NodeID) State { return net.states[v] }

// SetState writes node v's register directly (used for fault injection
// and for preparing specific initial configurations).
func (net *Network) SetState(v graph.NodeID, s State) {
	if !net.g.HasNode(v) {
		panic(fmt.Sprintf("runtime: unknown node %d", v))
	}
	old := net.states[v]
	net.states[v] = s
	net.markDirtyAround(v)
	changed := (old == nil) != (s == nil) ||
		(old != nil && s != nil && !s.Equal(old))
	if changed {
		net.notify(v, old, s)
	}
}

// AddStateListener registers a write observer (see StateListener).
func (net *Network) AddStateListener(l StateListener) {
	net.listeners = append(net.listeners, l)
}

func (net *Network) notify(v graph.NodeID, old, new State) {
	for _, l := range net.listeners {
		l(v, old, new)
	}
}

// InitArbitrary fills every register with an arbitrary state drawn from
// the algorithm — the adversarial initial configuration of the
// self-stabilization model.
func (net *Network) InitArbitrary(rng *rand.Rand) {
	for _, v := range net.g.Nodes() {
		net.states[v] = net.alg.ArbitraryState(rng, net.view(v))
	}
	net.markAllDirty()
}

// view builds node v's legal view of the system. The neighbor slice is
// the graph's shared one: algorithms receive it read-only via
// View.Neighbors and must not mutate it (runtime.Algorithm contract).
func (net *Network) view(v graph.NodeID) View {
	nbrs := net.g.NeighborsShared(v)
	peers := make(map[graph.NodeID]State, len(nbrs))
	weights := make(map[graph.NodeID]graph.Weight, len(nbrs))
	for _, u := range nbrs {
		peers[u] = net.states[u]
		w, _ := net.g.EdgeWeight(v, u)
		weights[u] = w
	}
	return View{
		ID:        v,
		N:         net.g.N(),
		Neighbors: nbrs,
		Self:      net.states[v],
		peers:     peers,
		weights:   weights,
	}
}

// Enabled returns the identities of all currently enabled nodes, in
// increasing order.
func (net *Network) Enabled() []graph.NodeID {
	var out []graph.NodeID
	for _, v := range net.g.Nodes() {
		if net.enabledOf(v) {
			out = append(out, v)
		}
	}
	slices.Sort(out)
	return out
}

func (net *Network) enabledOf(v graph.NodeID) bool {
	if net.dirty[v] {
		next := net.alg.Step(net.view(v))
		net.enabledCache[v] = !next.Equal(net.states[v])
		delete(net.dirty, v)
	}
	return net.enabledCache[v]
}

// Silent reports whether the configuration is terminal: no node enabled.
// A silent algorithm stabilizes to configurations where this stays true
// (Section II-A).
func (net *Network) Silent() bool { return len(net.Enabled()) == 0 }

// Moves returns the number of individual steps taken so far.
func (net *Network) Moves() int { return net.moves }

// Rounds returns the number of completed rounds so far.
func (net *Network) Rounds() int { return net.rounds }

// MaxRegisterBits returns the maximum register size over all nodes under
// the natural encoding — the space-complexity measure of the paper.
func (net *Network) MaxRegisterBits() int {
	max := 0
	for _, s := range net.states {
		if s == nil {
			continue
		}
		if b := s.EncodedBits(); b > max {
			max = b
		}
	}
	return max
}

// AddMonitor registers an invariant checked after every applied step.
func (net *Network) AddMonitor(m Monitor) { net.monitors = append(net.monitors, m) }

// Result summarizes a run.
type Result struct {
	// Rounds is the number of rounds until silence (or until the cap).
	Rounds int
	// Moves is the number of individual node steps.
	Moves int
	// Silent reports whether the run reached a silent configuration.
	Silent bool
	// MaxRegisterBits is the largest register observed at the end.
	MaxRegisterBits int
}

// Run drives the network under the given scheduler until silence or until
// maxMoves steps have been taken. It returns an error if a monitor
// rejects a configuration (an invariant violation) or if the scheduler
// misbehaves.
//
// Rounds follow the paper's definition: at the start of a round the set X
// of enabled nodes is recorded; the round completes once every node of X
// has taken a step or has become disabled by its neighbors' actions.
func (net *Network) Run(sched Scheduler, maxMoves int) (Result, error) {
	pending := make(map[graph.NodeID]bool) // nodes of X not yet stepped/disabled
	startRound := func() {
		for _, v := range net.Enabled() {
			pending[v] = true
		}
	}
	startRound()
	for net.moves < maxMoves {
		enabled := net.Enabled()
		if len(enabled) == 0 {
			break
		}
		chosen := sched.Choose(enabled)
		if len(chosen) == 0 {
			return Result{}, fmt.Errorf("runtime: scheduler chose no node among %d enabled", len(enabled))
		}
		if err := net.applySimultaneous(chosen); err != nil {
			return Result{}, err
		}
		for _, m := range net.monitors {
			if err := m.Check(net); err != nil {
				return Result{}, fmt.Errorf("runtime: invariant violated after move %d: %w", net.moves, err)
			}
		}
		// Update round accounting.
		for _, v := range chosen {
			delete(pending, v)
		}
		for v := range pending {
			if !net.enabledOf(v) {
				delete(pending, v)
			}
		}
		if len(pending) == 0 {
			net.rounds++
			startRound()
		}
	}
	silent := net.Silent()
	return Result{
		Rounds:          net.rounds,
		Moves:           net.moves,
		Silent:          silent,
		MaxRegisterBits: net.MaxRegisterBits(),
	}, nil
}

// applySimultaneous performs one scheduler activation: all chosen nodes
// read the same pre-configuration, then all write (composite atomicity).
func (net *Network) applySimultaneous(chosen []graph.NodeID) error {
	next := make(map[graph.NodeID]State, len(chosen))
	for _, v := range chosen {
		if !net.g.HasNode(v) {
			return fmt.Errorf("runtime: scheduler chose unknown node %d", v)
		}
		next[v] = net.alg.Step(net.view(v))
	}
	for v, s := range next {
		if !s.Equal(net.states[v]) {
			net.moves++
			old := net.states[v]
			net.states[v] = s
			net.markDirtyAround(v)
			net.notify(v, old, s)
		}
	}
	return nil
}

// BitsForValue returns the number of bits needed to store any value in
// {0..max}: the width used by EncodedBits implementations for bounded
// integers such as IDs, distances and subtree sizes. BitsForValue(0) and
// BitsForValue(1) are 1.
func BitsForValue(max int) int {
	if max < 0 {
		panic("runtime: negative max")
	}
	b := 1
	for v := 2; v <= max; v <<= 1 {
		b++
	}
	return b
}
