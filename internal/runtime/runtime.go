// Package runtime implements the state model of self-stabilization used
// by the paper (Section II-A): each process is a node of a connected graph
// with a single-writer multiple-reader register; in one atomic step a node
// (1) reads its own register and those of its neighbors, (2) applies the
// transition function δ, and (3) writes its register. Which enabled node
// steps is under the control of a scheduler; the package provides the
// unfair scheduler the paper assumes, and friends.
//
// The package also provides the paper's round accounting (a round is the
// shortest execution prefix in which every node enabled at its start has
// stepped or become disabled), silence detection (no node enabled),
// transient-fault injection, and invariant monitors used to validate
// claims such as loop-freedom during edge switches (Section IV).
//
// # Engine internals
//
// The engine is a dense register file: node identities are mapped once
// to contiguous indices 0..n-1 (graph.Dense), and registers, dirty
// flags, and round-pending flags live in index-addressed slices. Views
// are allocation-free — neighbors, their registers, and the incident
// edge weights are served from shared slices parallel to the graph's
// sorted neighbor slice. The enabled set is maintained incrementally
// under the invariant: for every node not on the dirty worklist, its
// EnabledSet membership equals its true enabledness. A register write
// at v pushes only v and its neighbors onto the worklist (enabledness
// only depends on the 1-hop neighborhood), and the worklist is drained
// before any read of the set, so one move costs O(deg) instead of the
// O(n) per-activation scan of a map-backed engine.
package runtime

import (
	"fmt"
	"math/bits"
	"math/rand"
	"slices"
	"sync"

	"silentspan/internal/graph"
)

// State is the content of a node's register. Implementations must be
// immutable value-like types: Step must return fresh states rather than
// mutating shared ones.
type State interface {
	// Equal reports whether two register contents are identical. A node
	// is enabled iff δ applied to its view yields a non-Equal state.
	Equal(State) bool
	// EncodedBits returns the exact size in bits of the register content
	// under the natural encoding (IDs and distances as ceil(log2)-width
	// integers, label bit strings at their real length). This backs the
	// space-complexity experiments.
	EncodedBits() int
	// String renders the state for traces.
	String() string
}

// View is everything a node may legally consult during one atomic step:
// its incorruptible constants (identity, incident edge weights, the bound
// on n), its own register, and its neighbors' registers.
//
// Views are allocation-free: neighbor registers are read either straight
// out of the engine's register file through precomputed dense indices
// (sequential engine) or from a snapshot slice parallel to Neighbors
// (concurrent engine); weights always come from the shared dense layout.
type View struct {
	// ID is the node's own identity (incorruptible constant).
	ID graph.NodeID
	// N is the number of network nodes, known to all nodes (the classic
	// assumption bounding distances and ID widths; the paper assumes
	// IDs in {1..n^c} and O(log n)-bit weights).
	N int
	// Neighbors lists neighbor identities in increasing order. The slice
	// is shared with the graph layer: read-only for algorithms.
	Neighbors []graph.NodeID
	// Self is the node's own register content.
	Self State

	// weights is parallel to Neighbors (shared with graph.Dense).
	weights []graph.Weight
	// Exactly one of the following is set. regs/nbrIdx read neighbor
	// registers live from the register file (regs[nbrIdx[j]] is the
	// state of Neighbors[j]); peers is a parallel snapshot.
	regs   []State
	nbrIdx []int32
	peers  []State
}

// NewView assembles a node's legal view from an explicitly provided
// neighborhood snapshot: peers[j] is the register content of
// Neighbors[j] (nil for a neighbor whose state is unknown — algorithms
// treat nil exactly like a foreign register) and weights[j] the weight
// of the incident edge. This is the adapter seam for layers that
// realize the shared-register model over message passing
// (internal/cluster): a node's cache of neighbor heartbeat states is
// presented to unmodified algorithms as the atomic view the state model
// promises. The slices are retained by the view, not copied; callers
// must keep them stable for the view's lifetime (one Step call).
func NewView(id graph.NodeID, n int, neighbors []graph.NodeID, weights []graph.Weight, self State, peers []State) View {
	if len(peers) != len(neighbors) || len(weights) != len(neighbors) {
		panic(fmt.Sprintf("runtime: view of node %d: %d neighbors, %d peers, %d weights",
			id, len(neighbors), len(peers), len(weights)))
	}
	return View{
		ID: id, N: n, Neighbors: neighbors, Self: self,
		weights: weights, peers: peers,
	}
}

// peerAt returns the register of Neighbors[j].
func (v View) peerAt(j int) State {
	if v.peers != nil {
		return v.peers[j]
	}
	return v.regs[v.nbrIdx[j]]
}

// PeerAt returns the register content of Neighbors[j]: the positional
// accessor for rules that iterate the Neighbors slice. Unlike Peer it
// performs no search, so a full neighborhood scan is O(deg).
func (v View) PeerAt(j int) State { return v.peerAt(j) }

// WeightAt returns the weight of the incident edge to Neighbors[j].
func (v View) WeightAt(j int) graph.Weight { return v.weights[j] }

// Peer returns the register content of neighbor u. It panics if u is not
// a neighbor: reading a non-neighbor's register would violate the model.
func (v View) Peer(u graph.NodeID) State {
	j, ok := slices.BinarySearch(v.Neighbors, u)
	if !ok {
		panic(fmt.Sprintf("runtime: node %d read non-neighbor %d", v.ID, u))
	}
	return v.peerAt(j)
}

// EdgeWeight returns the weight of the incident edge to neighbor u (an
// incorruptible constant, per Section II-A).
func (v View) EdgeWeight(u graph.NodeID) graph.Weight {
	j, ok := slices.BinarySearch(v.Neighbors, u)
	if !ok {
		panic(fmt.Sprintf("runtime: node %d has no edge to %d", v.ID, u))
	}
	return v.weights[j]
}

// Algorithm is a distributed algorithm in the state model: a transition
// function δ plus a way to draw arbitrary initial register contents
// (self-stabilizing algorithms must converge from any of them).
type Algorithm interface {
	// Step applies δ to the view and returns the node's next state. The
	// node is enabled iff the result differs (Equal is false) from
	// view.Self. Step must not mutate the view's states and must not
	// retain the view past the call (its slices are reused).
	Step(v View) State
	// ArbitraryState returns an arbitrary register content for the node:
	// the adversarial initialization of the self-stabilization model.
	// Implementations should cover the whole reachable state space and
	// also plainly corrupt values.
	ArbitraryState(rng *rand.Rand, v View) State
	// Name identifies the algorithm in traces and benchmarks.
	Name() string
}

// Network binds a graph, an algorithm, and the current register contents.
// All per-node bookkeeping is index-addressed through the graph's dense
// snapshot (see the package comment's engine-internals section).
type Network struct {
	g   *graph.Graph
	d   *graph.Dense
	alg Algorithm

	// states is the register file, indexed by dense index.
	states []State

	// enabled is the incrementally maintained enabled set; dirty marks
	// indices whose membership must be recomputed (a node's enabledness
	// only changes when it or a neighbor writes), and dirtyList is the
	// worklist of marked indices. nextCache[i] holds δ(view(i)) as
	// computed by the last drain — valid iff !dirty[i], since no
	// register in i's 1-hop neighborhood has been written since — so an
	// activation applies the transition the drain already computed
	// instead of running Step twice per move.
	enabled   *EnabledSet
	dirty     []bool
	dirtyList []int32
	nextCache []State

	// pendingEpoch marks the round's frontier X (paper round
	// accounting): index i is in the frontier iff pendingEpoch[i] equals
	// the current epoch. Nodes leave the frontier by stepping (Run) or
	// on an enabled->disabled transition (drain); bumping epoch starts a
	// fresh round in O(1) with no clearing pass.
	pendingEpoch []uint64
	epoch        uint64
	pendingCount int

	// chosenBuf, nextBuf and idxBuf are reusable per-activation scratch.
	chosenBuf []graph.NodeID
	nextBuf   []State
	idxBuf    []int32

	// syncedEpoch is the dense structural epoch the per-slot arrays
	// above agree with. The Network's own mutators keep it current;
	// drain panics on a mismatch, which catches graph mutation behind
	// the network's back before a stale neighbor slot is ever read.
	syncedEpoch uint64

	// topoMu serializes topology mutation against concurrent readers:
	// RunConcurrent's per-step view reads take it shared, the mutators
	// take it exclusively. The sequential engine is single-goroutine and
	// never contends. concurrent is true while RunConcurrent is active,
	// during which node churn (which resizes the register file) is
	// rejected; edge churn and weight perturbation remain legal.
	topoMu     sync.RWMutex
	concurrent bool

	monitors      []Monitor
	listeners     []StateListener
	topoListeners []TopologyListener
	moves         int
	rounds        int
}

// StateListener observes register writes: it is invoked after node v's
// register changes from old to new — both for algorithm steps applied
// by Run and for direct SetState writes (fault injection). Serving
// layers built on top of the trees use it as a topology-change
// notification: a write to a parent pointer means the routing substrate
// may have changed and derived structures (coordinate labelings,
// caches) must be refreshed. Listeners must not mutate the network.
// RunConcurrent operates on a private register file and emits no
// notifications until its final copy-back through the network.
type StateListener func(v graph.NodeID, old, new State)

// NewNetwork creates a network with every register content nil; call
// InitArbitrary or SetState before running. It returns an error for
// disconnected or empty graphs, which the model excludes.
func NewNetwork(g *graph.Graph, alg Algorithm) (*Network, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("runtime: empty graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("runtime: graph not connected")
	}
	d := g.Dense()
	n := d.Slots()
	net := &Network{
		g:            g,
		d:            d,
		alg:          alg,
		states:       make([]State, n),
		enabled:      newEnabledSet(d),
		dirty:        make([]bool, n),
		nextCache:    make([]State, n),
		pendingEpoch: make([]uint64, n),
		epoch:        1, // pendingEpoch zero values never match
		syncedEpoch:  d.Epoch(),
	}
	net.markAllDirty()
	return net, nil
}

func (net *Network) markAllDirty() {
	for i := range net.dirty {
		if !net.dirty[i] && net.d.LiveAt(i) {
			net.dirty[i] = true
			net.dirtyList = append(net.dirtyList, int32(i))
		}
	}
}

// markDirtyAt invalidates the cached enabledness of index i.
func (net *Network) markDirtyAt(i int32) {
	if !net.dirty[i] {
		net.dirty[i] = true
		net.dirtyList = append(net.dirtyList, i)
	}
}

// markDirtyAround invalidates the cached enabledness of index i and its
// neighbors — the write-set of one register write.
func (net *Network) markDirtyAround(i int32) {
	net.markDirtyAt(i)
	for _, j := range net.d.NeighborIndices(int(i)) {
		net.markDirtyAt(j)
	}
}

// drain restores the enabled-set invariant: recompute the enabledness
// of every dirty index and update set membership. A pending node
// observed transitioning to disabled leaves the round frontier, exactly
// as the paper's round definition requires. Cost is O(Σ deg) over the
// dirtied nodes; Step is pure, so recomputation order is immaterial.
func (net *Network) drain() {
	if net.d.Epoch() != net.syncedEpoch {
		panic("runtime: graph mutated behind the network's back; topology churn must go through Network.AddNode/RemoveNode/AddEdge/RemoveEdge")
	}
	for len(net.dirtyList) > 0 {
		i := net.dirtyList[len(net.dirtyList)-1]
		net.dirtyList = net.dirtyList[:len(net.dirtyList)-1]
		if !net.dirty[i] {
			continue
		}
		net.dirty[i] = false
		if !net.d.LiveAt(int(i)) {
			continue
		}
		next := net.alg.Step(net.viewAt(int(i)))
		net.nextCache[i] = next
		en := !next.Equal(net.states[i])
		if en {
			net.enabled.add(int(i))
		} else {
			net.enabled.remove(int(i))
			if net.pendingEpoch[i] == net.epoch {
				net.pendingEpoch[i] = 0
				net.pendingCount--
			}
		}
	}
}

// Graph returns the underlying graph.
func (net *Network) Graph() *graph.Graph { return net.g }

// Dense returns the dense index mapping the register file is laid out
// over — the index space of StateAt and of serving layers that read
// registers in bulk.
func (net *Network) Dense() *graph.Dense { return net.d }

// Algorithm returns the bound algorithm.
func (net *Network) Algorithm() Algorithm { return net.alg }

// State returns node v's current register content (nil if unset).
func (net *Network) State(v graph.NodeID) State {
	i, ok := net.d.IndexOf(v)
	if !ok {
		return nil
	}
	return net.states[i]
}

// StateAt returns the register content at dense index i (nil if unset).
func (net *Network) StateAt(i int) State { return net.states[i] }

// SetState writes node v's register directly (used for fault injection
// and for preparing specific initial configurations).
func (net *Network) SetState(v graph.NodeID, s State) {
	i, ok := net.d.IndexOf(v)
	if !ok {
		panic(fmt.Sprintf("runtime: unknown node %d", v))
	}
	old := net.states[i]
	net.states[i] = s
	net.markDirtyAround(int32(i))
	changed := (old == nil) != (s == nil) ||
		(old != nil && s != nil && !s.Equal(old))
	if changed {
		net.notify(v, old, s)
	}
}

// AddStateListener registers a write observer (see StateListener).
func (net *Network) AddStateListener(l StateListener) {
	net.listeners = append(net.listeners, l)
}

func (net *Network) notify(v graph.NodeID, old, new State) {
	for _, l := range net.listeners {
		l(v, old, new)
	}
}

// InitArbitrary fills every register with an arbitrary state drawn from
// the algorithm — the adversarial initial configuration of the
// self-stabilization model.
func (net *Network) InitArbitrary(rng *rand.Rand) {
	for i := range net.states {
		if !net.d.LiveAt(i) {
			continue
		}
		net.states[i] = net.alg.ArbitraryState(rng, net.viewAt(i))
	}
	net.markAllDirty()
}

// viewAt builds the view of the node at dense index i. The view reads
// neighbor registers live from the register file: construction is O(1)
// and allocation-free.
func (net *Network) viewAt(i int) View {
	return View{
		ID:        net.d.ID(i),
		N:         net.d.N(),
		Neighbors: net.d.NeighborIDs(i),
		Self:      net.states[i],
		weights:   net.d.Weights(i),
		regs:      net.states,
		nbrIdx:    net.d.NeighborIndices(i),
	}
}

// view builds node v's legal view of the system. The neighbor slice is
// shared: algorithms receive it read-only via View.Neighbors and must
// not mutate it (runtime.Algorithm contract).
func (net *Network) view(v graph.NodeID) View {
	i, ok := net.d.IndexOf(v)
	if !ok {
		panic(fmt.Sprintf("runtime: unknown node %d", v))
	}
	return net.viewAt(i)
}

// Enabled returns the identities of all currently enabled nodes, in
// increasing order. The slice is freshly allocated; schedulers never
// see it (they read the maintained EnabledSet instead).
func (net *Network) Enabled() []graph.NodeID {
	net.drain()
	return net.enabled.AppendIDs(make([]graph.NodeID, 0, net.enabled.Len()))
}

// Silent reports whether the configuration is terminal: no node enabled.
// A silent algorithm stabilizes to configurations where this stays true
// (Section II-A). It reads the maintained enabled-set size — O(1) past
// the pending recomputation of nodes dirtied since the last read.
func (net *Network) Silent() bool {
	net.drain()
	return net.enabled.Len() == 0
}

// RoundPending reports whether node v is still in the current round's
// frontier X: enabled at the round's start and since then neither
// stepped nor observed disabled. Certification schedulers and tests use
// it to reason about round progress from outside the engine.
func (net *Network) RoundPending(v graph.NodeID) bool {
	i, ok := net.d.IndexOf(v)
	if !ok {
		return false
	}
	return net.pendingEpoch[i] == net.epoch
}

// PerturbEdgeWeight is the weight-churn campaign hook: it rewrites the
// weight of the live edge {u,v} in both the graph and the dense layout
// the register file reads through, then invalidates the cached
// enabledness of the two endpoints (they are the only nodes whose views
// contain the edge). Unlike the structural mutators below it does not
// change the graph's shape, so no slot bookkeeping moves.
func (net *Network) PerturbEdgeWeight(u, v graph.NodeID, w graph.Weight) error {
	net.topoMu.Lock()
	defer net.topoMu.Unlock()
	if err := net.g.UpdateEdgeWeight(u, v, w); err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	iu, _ := net.d.IndexOf(u)
	iv, _ := net.d.IndexOf(v)
	net.markDirtyAt(int32(iu))
	net.markDirtyAt(int32(iv))
	net.notifyTopology(TopoEvent{Kind: TopoReweigh, U: u, V: v, W: w})
	return nil
}

// TopoKind classifies one topology mutation for TopologyListener.
type TopoKind int

// The topology mutation kinds.
const (
	TopoAddEdge TopoKind = iota
	TopoRemoveEdge
	TopoAddNode
	TopoRemoveNode
	TopoReweigh
)

// TopoEvent describes one applied topology mutation: the kind plus the
// affected node (U for node events) or edge endpoints (U, V).
type TopoEvent struct {
	Kind TopoKind
	U, V graph.NodeID
	W    graph.Weight
}

// TopologyListener observes applied topology mutations. Serving layers
// use it the way StateListener is used for register writes: as the
// signal that derived structures (labelings, routers) must refresh —
// incrementally, since the event names exactly what changed. Listeners
// must not mutate the network and are invoked after the mutation has
// fully landed (graph, dense layout, and engine bookkeeping agree).
type TopologyListener func(TopoEvent)

// AddTopologyListener registers a topology observer (see
// TopologyListener).
func (net *Network) AddTopologyListener(l TopologyListener) {
	net.topoListeners = append(net.topoListeners, l)
}

func (net *Network) notifyTopology(ev TopoEvent) {
	for _, l := range net.topoListeners {
		l(ev)
	}
}

// growTo extends the per-slot arrays to cover a grown slot space.
func (net *Network) growTo(slots int) {
	for len(net.states) < slots {
		net.states = append(net.states, nil)
		net.dirty = append(net.dirty, false)
		net.nextCache = append(net.nextCache, nil)
		net.pendingEpoch = append(net.pendingEpoch, 0)
	}
}

// AddEdge inserts the edge {u,v} with weight w into the live network —
// a link coming up under stabilization. Both endpoints must already be
// nodes (use AddNode to join a fresh node first) and the edge must be
// absent. Only the two endpoints observe the new link, so only their
// cached enabledness is invalidated.
func (net *Network) AddEdge(u, v graph.NodeID, w graph.Weight) error {
	net.topoMu.Lock()
	defer net.topoMu.Unlock()
	if !net.g.HasNode(u) || !net.g.HasNode(v) {
		return fmt.Errorf("runtime: edge {%d,%d} needs both endpoints in the network", u, v)
	}
	if net.g.HasEdge(u, v) {
		return fmt.Errorf("runtime: edge {%d,%d} already present", u, v)
	}
	if err := net.g.AddEdge(u, v, w); err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	net.syncedEpoch = net.d.Epoch()
	iu, _ := net.d.IndexOf(u)
	iv, _ := net.d.IndexOf(v)
	net.markDirtyAt(int32(iu))
	net.markDirtyAt(int32(iv))
	net.notifyTopology(TopoEvent{Kind: TopoAddEdge, U: u, V: v, W: w})
	return nil
}

// RemoveEdge deletes the live edge {u,v} — a link going down. Removing
// the last edge of a node leaves the node in the network with degree
// zero (the graph may transiently disconnect; the algorithms stabilize
// per component until churn heals it). Double removal errors.
func (net *Network) RemoveEdge(u, v graph.NodeID) error {
	net.topoMu.Lock()
	defer net.topoMu.Unlock()
	if err := net.g.RemoveEdge(u, v); err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	net.syncedEpoch = net.d.Epoch()
	iu, _ := net.d.IndexOf(u)
	iv, _ := net.d.IndexOf(v)
	net.markDirtyAt(int32(iu))
	net.markDirtyAt(int32(iv))
	net.notifyTopology(TopoEvent{Kind: TopoRemoveEdge, U: u, V: v})
	return nil
}

// AddNode joins node id to the live network with the given initial
// register content (nil models a node booting with an empty register;
// its first activation runs the algorithm's bootstrap rule). The node
// reuses a vacated register-file slot when one exists, otherwise the
// per-slot arrays grow. The new node starts outside the current round's
// frontier. Node churn is rejected while RunConcurrent is active (the
// concurrent register file is sized once); edge churn is not.
func (net *Network) AddNode(id graph.NodeID, init State) error {
	net.topoMu.Lock()
	defer net.topoMu.Unlock()
	if net.concurrent {
		return fmt.Errorf("runtime: node churn unsupported during RunConcurrent")
	}
	if net.g.HasNode(id) {
		return fmt.Errorf("runtime: node %d already present", id)
	}
	net.g.AddNode(id)
	net.syncedEpoch = net.d.Epoch()
	slot, _ := net.d.IndexOf(id)
	net.growTo(net.d.Slots())
	net.states[slot] = init
	net.nextCache[slot] = nil
	net.pendingEpoch[slot] = 0
	net.enabled.insertID(slot, id)
	net.markDirtyAt(int32(slot))
	// Topology first, then the register write: listeners learn the node
	// exists before they see its initial register content, so a labeler
	// wired to both hooks does not drop the join's parent pointer.
	net.notifyTopology(TopoEvent{Kind: TopoAddNode, U: id})
	if init != nil {
		net.notify(id, nil, init)
	}
	return nil
}

// RemoveNode removes node id and every incident edge from the live
// network — a node crashing out. Its register-file slot is vacated for
// reuse, it leaves the enabled set and the round frontier, and every
// former neighbor's cached enabledness is invalidated (their views
// shrank), so no view ever reads the dead slot again.
func (net *Network) RemoveNode(id graph.NodeID) error {
	net.topoMu.Lock()
	defer net.topoMu.Unlock()
	if net.concurrent {
		return fmt.Errorf("runtime: node churn unsupported during RunConcurrent")
	}
	slot, ok := net.d.IndexOf(id)
	if !ok {
		return fmt.Errorf("runtime: no node %d", id)
	}
	nbrs := slices.Clone(net.d.NeighborIndices(slot))
	if err := net.g.RemoveNode(id); err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	net.syncedEpoch = net.d.Epoch()
	old := net.states[slot]
	net.states[slot] = nil
	net.nextCache[slot] = nil
	net.dirty[slot] = false // a stale dirtyList entry is skipped by drain
	if net.pendingEpoch[slot] == net.epoch {
		net.pendingEpoch[slot] = 0
		net.pendingCount--
	}
	net.enabled.deleteSlot(slot)
	for _, j := range nbrs {
		net.markDirtyAt(j)
	}
	if old != nil {
		net.notify(id, old, nil)
	}
	net.notifyTopology(TopoEvent{Kind: TopoRemoveNode, U: id})
	return nil
}

// Moves returns the number of individual steps taken so far.
func (net *Network) Moves() int { return net.moves }

// Rounds returns the number of completed rounds so far.
func (net *Network) Rounds() int { return net.rounds }

// MaxRegisterBits returns the maximum register size over all nodes under
// the natural encoding — the space-complexity measure of the paper.
func (net *Network) MaxRegisterBits() int {
	max := 0
	for _, s := range net.states {
		if s == nil {
			continue
		}
		if b := s.EncodedBits(); b > max {
			max = b
		}
	}
	return max
}

// AddMonitor registers an invariant checked after every applied step.
func (net *Network) AddMonitor(m Monitor) { net.monitors = append(net.monitors, m) }

// Result summarizes a run.
type Result struct {
	// Rounds is the number of rounds until silence (or until the cap).
	Rounds int
	// Moves is the number of individual node steps.
	Moves int
	// Silent reports whether the run reached a silent configuration.
	Silent bool
	// MaxRegisterBits is the largest register observed at the end.
	MaxRegisterBits int
}

// startRound records the round frontier X: every currently enabled
// node. Callers must have drained first. Bumping the epoch retires the
// previous frontier wholesale, so the cost is O(|X|).
func (net *Network) startRound() {
	net.epoch++
	net.pendingCount = net.enabled.Len()
	for w, word := range net.enabled.words {
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			net.pendingEpoch[i] = net.epoch
			word &= word - 1
		}
	}
}

// Run drives the network under the given scheduler until silence or until
// maxMoves steps have been taken. It returns an error if a monitor
// rejects a configuration (an invariant violation) or if the scheduler
// misbehaves.
//
// Rounds follow the paper's definition: at the start of a round the set X
// of enabled nodes is recorded; the round completes once every node of X
// has taken a step or has become disabled by its neighbors' actions.
// Disabled transitions are observed incrementally by the drain, so round
// accounting costs O(|chosen|) per activation, not O(n).
func (net *Network) Run(sched Scheduler, maxMoves int) (Result, error) {
	if na, ok := sched.(NetworkAware); ok {
		na.BindNetwork(net)
	}
	net.drain()
	net.startRound()
	for net.moves < maxMoves {
		if net.enabled.Len() == 0 {
			break
		}
		chosen := sched.Choose(net.enabled, net.chosenBuf[:0])
		net.chosenBuf = chosen[:0]
		if len(chosen) == 0 {
			return Result{}, fmt.Errorf("runtime: scheduler chose no node among %d enabled", net.enabled.Len())
		}
		if err := net.applySimultaneous(chosen); err != nil {
			return Result{}, err
		}
		for _, m := range net.monitors {
			if err := m.Check(net); err != nil {
				return Result{}, fmt.Errorf("runtime: invariant violated after move %d: %w", net.moves, err)
			}
		}
		// Update round accounting: chosen nodes leave the frontier by
		// stepping (idxBuf holds their indices, filled by the apply);
		// disabled transitions left it during the drain below.
		for _, i := range net.idxBuf {
			if net.pendingEpoch[i] == net.epoch {
				net.pendingEpoch[i] = 0
				net.pendingCount--
			}
		}
		net.drain()
		if net.pendingCount == 0 {
			net.rounds++
			net.startRound()
		}
	}
	silent := net.Silent()
	return Result{
		Rounds:          net.rounds,
		Moves:           net.moves,
		Silent:          silent,
		MaxRegisterBits: net.MaxRegisterBits(),
	}, nil
}

// applySimultaneous performs one scheduler activation: all chosen nodes
// read the same pre-configuration, then all write (composite atomicity —
// the compute phase finishes before the first write lands). Callers
// have drained, so for every clean chosen node the pre-configuration
// transition is already in nextCache; Step only reruns for nodes
// dirtied between the drain and this call (never on the Run path).
func (net *Network) applySimultaneous(chosen []graph.NodeID) error {
	next := net.nextBuf[:0]
	idx := net.idxBuf[:0]
	for _, v := range chosen {
		i, ok := net.d.IndexOf(v)
		if !ok {
			return fmt.Errorf("runtime: scheduler chose unknown node %d", v)
		}
		idx = append(idx, int32(i))
		if net.dirty[i] {
			next = append(next, net.alg.Step(net.viewAt(i)))
		} else {
			next = append(next, net.nextCache[i])
		}
	}
	net.nextBuf, net.idxBuf = next, idx
	for k, i := range idx {
		s := next[k]
		if !s.Equal(net.states[i]) {
			net.moves++
			old := net.states[i]
			net.states[i] = s
			net.markDirtyAround(i)
			net.notify(chosen[k], old, s)
		}
	}
	return nil
}

// BitsForValue returns the number of bits needed to store any value in
// {0..max}: the width used by EncodedBits implementations for bounded
// integers such as IDs, distances and subtree sizes. BitsForValue(0) and
// BitsForValue(1) are 1. The width is computed with bits.Len, so the
// full int range is handled without overflow.
func BitsForValue(max int) int {
	if max < 0 {
		panic("runtime: negative max")
	}
	if max <= 1 {
		return 1
	}
	return bits.Len(uint(max))
}
