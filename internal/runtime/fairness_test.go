package runtime

import (
	"math/rand"
	"slices"
	"testing"

	"silentspan/internal/graph"
)

// fairnessCases are enabled-set shapes the scheduler table runs over:
// dense, sparse (exercising the Fenwick select paths), and singleton.
var fairnessCases = []struct {
	name string
	ids  []graph.NodeID
}{
	{"compact", []graph.NodeID{1, 2, 3, 4, 5, 6, 7, 8}},
	{"sparse", []graph.NodeID{3, 7, 20, 21, 64, 100, 413}},
	{"single", []graph.NodeID{5}},
}

// fullSet builds an EnabledSet with every listed node enabled.
func fullSet(ids []graph.NodeID) *EnabledSet {
	s := newEnabledSet(denseOfIDs(ids))
	for i := range ids {
		s.add(i)
	}
	return s
}

// TestRoundRobinActivatesAllWithinN: a node that stays enabled is
// activated at least once within n consecutive choices — the weak
// fairness contract.
func TestRoundRobinActivatesAllWithinN(t *testing.T) {
	for _, tc := range fairnessCases {
		t.Run(tc.name, func(t *testing.T) {
			sched := RoundRobin()
			es := fullSet(tc.ids)
			seen := make(map[graph.NodeID]bool)
			for i := 0; i < len(tc.ids); i++ {
				chosen := sched.Choose(es, nil)
				if len(chosen) != 1 {
					t.Fatalf("choice %d: got %d nodes, want 1", i, len(chosen))
				}
				seen[chosen[0]] = true
			}
			for _, v := range tc.ids {
				if !seen[v] {
					t.Errorf("node %d not activated within %d choices", v, len(tc.ids))
				}
			}
		})
	}
}

// TestSynchronousActivatesAllEnabled: the synchronous daemon's choice is
// exactly the enabled set, every step.
func TestSynchronousActivatesAllEnabled(t *testing.T) {
	for _, tc := range fairnessCases {
		t.Run(tc.name, func(t *testing.T) {
			sched := Synchronous()
			es := fullSet(tc.ids)
			chosen := sched.Choose(es, nil)
			if len(chosen) != len(tc.ids) {
				t.Fatalf("chose %d of %d enabled", len(chosen), len(tc.ids))
			}
			for i, v := range tc.ids {
				if chosen[i] != v {
					t.Fatalf("chosen[%d] = %d, want %d", i, chosen[i], v)
				}
			}
		})
	}
}

// TestAdversarialUnfairStarvationPattern: the unfair daemon keeps
// re-activating its favorite while it stays enabled, and on the
// favorite's death adopts the least recently activated node.
func TestAdversarialUnfairStarvationPattern(t *testing.T) {
	ids := []graph.NodeID{1, 2, 3, 4}
	sched := AdversarialUnfair()
	es := fullSet(ids)
	first := sched.Choose(es, nil)[0]
	for i := 0; i < 10; i++ {
		if got := sched.Choose(es, nil)[0]; got != first {
			t.Fatalf("favorite switched from %d to %d while still enabled", first, got)
		}
	}
	// Disable the favorite: the daemon must pick a never-activated node.
	fi, _ := slices.BinarySearch(ids, first)
	es.remove(fi)
	next := sched.Choose(es, nil)[0]
	if next == first {
		t.Fatalf("chose disabled favorite %d", first)
	}
}

// frontierProbe is a NetworkAware daemon built purely on the exported
// hooks (BindNetwork + RoundPending) — the construction pattern for
// external round-aware schedulers, and the public mirror of what
// GreedyRoundStretch does on engine internals: prefer an enabled node
// outside the current round frontier.
type frontierProbe struct {
	net           *Network
	sawNonPending bool
}

func (s *frontierProbe) BindNetwork(net *Network) { s.net = net }

func (s *frontierProbe) Choose(enabled *EnabledSet, buf []graph.NodeID) []graph.NodeID {
	pick, found := graph.NodeID(0), false
	enabled.ForEachID(func(v graph.NodeID) bool {
		if !s.net.RoundPending(v) {
			pick, found = v, true
			s.sawNonPending = true
			return false
		}
		return true
	})
	if !found {
		pick = enabled.MinID()
	}
	return append(buf, pick)
}

// TestRoundPendingDrivesNetworkAwareScheduler: Run binds the network
// into a NetworkAware daemon, RoundPending answers coherently for it
// mid-run (frontier nodes and, once rounds progress, non-frontier
// enabled nodes), and the driven execution still converges.
func TestRoundPendingDrivesNetworkAwareScheduler(t *testing.T) {
	g := graph.RandomConnected(24, 0.2, rand.New(rand.NewSource(3)))
	net := newTestNetwork(t, g)
	net.InitArbitrary(rand.New(rand.NewSource(4)))
	probe := &frontierProbe{}
	res, err := net.Run(probe, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if probe.net != net {
		t.Fatal("Run did not bind the network into the NetworkAware scheduler")
	}
	if !res.Silent {
		t.Fatalf("frontier-avoiding daemon livelocked after %d moves", res.Moves)
	}
	if !probe.sawNonPending {
		t.Error("RoundPending never exposed a non-frontier enabled node across the whole run")
	}
	// After silence the frontier is empty, and unknown nodes are never
	// pending.
	for _, v := range g.Nodes() {
		if net.RoundPending(v) {
			t.Errorf("node %d pending after silence", v)
		}
	}
	if net.RoundPending(9999) {
		t.Error("unknown node reported pending")
	}
}

// TestAdversarialSchedulersDoNotLivelock: on the seed graph families,
// driving a silent algorithm under the hostile daemons (unfair favorite
// starvation and greedy round-stretching) still reaches silence — the
// closure/convergence property the paper proves for the unfair daemon.
func TestAdversarialSchedulersDoNotLivelock(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"path8":     graph.Path(8),
		"ring9":     graph.Ring(9),
		"star10":    graph.Star(10),
		"complete6": graph.Complete(6),
		"lollipop":  graph.Lollipop(4, 4),
		"dumbbell":  graph.Dumbbell(3, 2),
		"random":    graph.RandomConnected(24, 0.15, rand.New(rand.NewSource(5))),
	}
	scheds := map[string]func() Scheduler{
		"adversarial-unfair":  AdversarialUnfair,
		"greedy-roundstretch": GreedyRoundStretch,
	}
	for gname, g := range graphs {
		for sname, mk := range scheds {
			t.Run(gname+"/"+sname, func(t *testing.T) {
				net := newTestNetwork(t, g)
				net.InitArbitrary(rand.New(rand.NewSource(11)))
				res, err := net.Run(mk(), 200_000)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Silent {
					t.Fatalf("livelock: not silent after %d moves", res.Moves)
				}
				if err := CheckSilentStable(net); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
