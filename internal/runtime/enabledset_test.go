package runtime

import (
	"math/rand"
	"slices"
	"testing"

	"silentspan/internal/graph"
)

// denseOfIDs builds a dense slot space holding exactly the given
// identities (as isolated nodes) — the EnabledSet test fixture.
func denseOfIDs(ids []graph.NodeID) *graph.Dense {
	g := graph.New()
	for _, id := range ids {
		g.AddNode(id)
	}
	return g.Dense()
}

// TestEnabledSetAgainstSortedSlice drives the set with random adds and
// removes and checks every ordered accessor against a plain sorted
// slice oracle.
func TestEnabledSetAgainstSortedSlice(t *testing.T) {
	const n = 300
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = graph.NodeID(2*i + 3) // sparse identities
	}
	es := newEnabledSet(denseOfIDs(ids))
	member := make([]bool, n)
	rng := rand.New(rand.NewSource(11))

	oracle := func() []graph.NodeID {
		var out []graph.NodeID
		for i, m := range member {
			if m {
				out = append(out, ids[i])
			}
		}
		return out
	}

	for step := 0; step < 5000; step++ {
		i := rng.Intn(n)
		if rng.Intn(2) == 0 {
			es.add(i)
			member[i] = true
		} else {
			es.remove(i)
			member[i] = false
		}
		if step%97 != 0 {
			continue
		}
		want := oracle()
		if es.Len() != len(want) {
			t.Fatalf("step %d: Len=%d, want %d", step, es.Len(), len(want))
		}
		if got := es.AppendIDs(nil); !slices.Equal(got, want) {
			t.Fatalf("step %d: AppendIDs=%v, want %v", step, got, want)
		}
		if len(want) > 0 {
			if es.MinID() != want[0] {
				t.Fatalf("step %d: MinID=%d, want %d", step, es.MinID(), want[0])
			}
			k := rng.Intn(len(want))
			if es.IDAt(k) != want[k] {
				t.Fatalf("step %d: IDAt(%d)=%d, want %d", step, k, es.IDAt(k), want[k])
			}
		}
		for _, probe := range []graph.NodeID{0, 1, ids[0], ids[n/2], ids[n-1], ids[n-1] + 1} {
			_, wantIn := slices.BinarySearch(want, probe)
			if es.ContainsID(probe) != wantIn {
				t.Fatalf("step %d: ContainsID(%d)=%v, want %v", step, probe, es.ContainsID(probe), wantIn)
			}
			j, _ := slices.BinarySearch(want, probe+1)
			wantNext, wantOK := graph.NodeID(0), false
			if j < len(want) {
				wantNext, wantOK = want[j], true
			}
			if got, ok := es.NextIDAfter(probe); ok != wantOK || got != wantNext {
				t.Fatalf("step %d: NextIDAfter(%d)=%d,%v, want %d,%v",
					step, probe, got, ok, wantNext, wantOK)
			}
		}
		var walked []graph.NodeID
		es.ForEachID(func(v graph.NodeID) bool {
			walked = append(walked, v)
			return len(walked) < 7
		})
		limit := len(want)
		if limit > 7 {
			limit = 7
		}
		if !slices.Equal(walked, want[:limit]) {
			t.Fatalf("step %d: ForEachID walked %v, want prefix %v", step, walked, want[:limit])
		}
	}
}

func TestEnabledSetSelectPanicsOutOfRange(t *testing.T) {
	es := newEnabledSet(denseOfIDs([]graph.NodeID{1, 2, 3}))
	es.add(1)
	defer func() {
		if recover() == nil {
			t.Error("selectIndex accepted out-of-range k")
		}
	}()
	es.IDAt(1)
}

func TestBitsForValueBoundaries(t *testing.T) {
	const maxInt = int(^uint(0) >> 1)
	wordBits := 32 << (^uint(0) >> 63) // 64 on amd64/arm64
	cases := []struct{ max, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3},
		{maxInt / 2, wordBits - 2},   // 2^(w-2) - 1
		{maxInt/2 + 1, wordBits - 1}, // first value the old shift loop wrapped on
		{maxInt - 1, wordBits - 1},
		{maxInt, wordBits - 1},
	}
	for _, c := range cases {
		if got := BitsForValue(c.max); got != c.want {
			t.Errorf("BitsForValue(%d) = %d, want %d", c.max, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("negative max accepted")
		}
	}()
	BitsForValue(-1)
}
