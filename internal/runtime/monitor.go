package runtime

import (
	"fmt"
	"math/rand"

	"silentspan/internal/graph"
)

// Monitor is an invariant checked after every applied step of a run. The
// experiments use monitors to validate the paper's trajectory claims —
// most importantly loop-freedom: during the edge-switching protocol of
// Section IV the parent pointers must form a spanning tree in *every*
// intermediate configuration, and the malleable verifier of Lemma 4.1
// must never raise an alarm.
type Monitor interface {
	// Check inspects the network's current configuration and returns an
	// error describing the violation, if any.
	Check(net *Network) error
}

// MonitorFunc adapts a function to the Monitor interface.
type MonitorFunc func(net *Network) error

// Check implements Monitor.
func (f MonitorFunc) Check(net *Network) error { return f(net) }

// Corrupt injects transient faults: it overwrites the registers of count
// distinct random nodes with arbitrary states drawn from the algorithm.
// It returns the identities of the corrupted nodes. Node identities and
// edge weights are constants and remain intact (Section II-A).
//
// count is clamped to [0, n]. Victim selection is fully determined by
// the rng stream: the draw runs over the sorted node list (never a map
// iteration), and only the count leading swaps of the shuffle are
// performed, so a seeded rng replays the identical fault pattern run
// after run — the property the certification campaigns diff against.
func Corrupt(net *Network, count int, rng *rand.Rand) []graph.NodeID {
	nodes := net.Graph().Nodes()
	if count > len(nodes) {
		count = len(nodes)
	}
	if count < 0 {
		count = 0
	}
	// Partial Fisher–Yates: exactly count draws regardless of n.
	for i := 0; i < count; i++ {
		j := i + rng.Intn(len(nodes)-i)
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	victims := nodes[:count]
	for _, v := range victims {
		net.SetState(v, net.Algorithm().ArbitraryState(rng, net.view(v)))
	}
	return victims
}

// CorruptField overwrites the register of one specific node with the
// given state — targeted corruption for regression tests.
func CorruptField(net *Network, v graph.NodeID, s State) error {
	if !net.Graph().HasNode(v) {
		return fmt.Errorf("runtime: unknown node %d", v)
	}
	net.SetState(v, s)
	return nil
}

// CheckSilentStable verifies the silence property (Section II-A): in a
// silent configuration, re-examining every node must leave all registers
// unchanged. It returns an error naming the first node that would move.
func CheckSilentStable(net *Network) error {
	if !net.Silent() {
		return fmt.Errorf("runtime: configuration not silent: node %d enabled", net.Enabled()[0])
	}
	return nil
}
