package runtime

import (
	"math/rand"

	"silentspan/internal/graph"
)

// Scheduler chooses which enabled nodes take the next step. The paper
// proves its bounds under the *unfair* scheduler — the most liberal
// adversary, only bounded to activate at least one enabled node — so an
// algorithm correct here is correct under every weaker scheduler.
type Scheduler interface {
	// Choose returns a non-empty subset of the given enabled nodes (which
	// are sorted by ID and non-empty).
	Choose(enabled []graph.NodeID) []graph.NodeID
}

// SchedulerFunc adapts a function to the Scheduler interface.
type SchedulerFunc func(enabled []graph.NodeID) []graph.NodeID

// Choose implements Scheduler.
func (f SchedulerFunc) Choose(enabled []graph.NodeID) []graph.NodeID { return f(enabled) }

// Synchronous activates every enabled node simultaneously each step.
// Under it, steps and rounds coincide.
func Synchronous() Scheduler {
	return SchedulerFunc(func(enabled []graph.NodeID) []graph.NodeID {
		out := make([]graph.NodeID, len(enabled))
		copy(out, enabled)
		return out
	})
}

// Central activates exactly one enabled node per step, the smallest ID —
// a deterministic central daemon.
func Central() Scheduler {
	return SchedulerFunc(func(enabled []graph.NodeID) []graph.NodeID {
		return []graph.NodeID{enabled[0]}
	})
}

// RandomCentral activates one uniformly random enabled node per step.
func RandomCentral(rng *rand.Rand) Scheduler {
	return SchedulerFunc(func(enabled []graph.NodeID) []graph.NodeID {
		return []graph.NodeID{enabled[rng.Intn(len(enabled))]}
	})
}

// RandomSubset activates a uniformly random non-empty subset of the
// enabled nodes — a distributed daemon.
func RandomSubset(rng *rand.Rand) Scheduler {
	return SchedulerFunc(func(enabled []graph.NodeID) []graph.NodeID {
		var out []graph.NodeID
		for _, v := range enabled {
			if rng.Intn(2) == 0 {
				out = append(out, v)
			}
		}
		if len(out) == 0 {
			out = append(out, enabled[rng.Intn(len(enabled))])
		}
		return out
	})
}

// adversarialUnfair is a hostile unfair scheduler: it keeps re-activating
// the node it activated most recently for as long as that node stays
// enabled, starving all others — the canonical unfairness pattern. When
// the favorite becomes disabled it adopts the enabled node activated the
// longest ago (never, if possible) as the new favorite.
type adversarialUnfair struct {
	lastActivated map[graph.NodeID]int
	clock         int
	favorite      graph.NodeID
	hasFavorite   bool
}

// AdversarialUnfair returns the hostile unfair scheduler described above.
// Silent algorithms must converge under it; non-silent or fairness-
// dependent protocols typically livelock or starve.
func AdversarialUnfair() Scheduler {
	return &adversarialUnfair{lastActivated: make(map[graph.NodeID]int)}
}

// Choose implements Scheduler.
func (s *adversarialUnfair) Choose(enabled []graph.NodeID) []graph.NodeID {
	s.clock++
	if s.hasFavorite {
		for _, v := range enabled {
			if v == s.favorite {
				s.lastActivated[v] = s.clock
				return []graph.NodeID{v}
			}
		}
	}
	// Favorite disabled: starve the freshest nodes; pick the stalest.
	best := enabled[0]
	for _, v := range enabled[1:] {
		if s.lastActivated[v] < s.lastActivated[best] {
			best = v
		}
	}
	s.favorite, s.hasFavorite = best, true
	s.lastActivated[best] = s.clock
	return []graph.NodeID{best}
}

// RoundRobin cycles deterministically through node IDs, activating the
// next enabled node at or after the cursor — a weakly fair daemon, useful
// as a contrast to the unfair ones.
type roundRobin struct {
	cursor graph.NodeID
}

// RoundRobin returns a weakly fair round-robin central scheduler.
func RoundRobin() Scheduler { return &roundRobin{} }

// Choose implements Scheduler.
func (s *roundRobin) Choose(enabled []graph.NodeID) []graph.NodeID {
	for _, v := range enabled {
		if v > s.cursor {
			s.cursor = v
			return []graph.NodeID{v}
		}
	}
	s.cursor = enabled[0]
	return []graph.NodeID{enabled[0]}
}
