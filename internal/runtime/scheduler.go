package runtime

import (
	"math/rand"

	"silentspan/internal/graph"
)

// Scheduler chooses which enabled nodes take the next step. The paper
// proves its bounds under the *unfair* scheduler — the most liberal
// adversary, only bounded to activate at least one enabled node — so an
// algorithm correct here is correct under every weaker scheduler.
type Scheduler interface {
	// Choose appends a non-empty subset of the enabled nodes to buf and
	// returns the extended slice. The set is non-empty, read-only, and
	// valid only for the duration of the call; buf arrives empty with
	// capacity reused across activations, so a scheduler that appends
	// into it allocates nothing on the steady path. The ordered
	// accessors of EnabledSet (MinID, IDAt, ForEachID, ...) expose the
	// same increasing-ID order the engine's old sorted slice did.
	Choose(enabled *EnabledSet, buf []graph.NodeID) []graph.NodeID
}

// SchedulerFunc adapts a function to the Scheduler interface.
type SchedulerFunc func(enabled *EnabledSet, buf []graph.NodeID) []graph.NodeID

// Choose implements Scheduler.
func (f SchedulerFunc) Choose(enabled *EnabledSet, buf []graph.NodeID) []graph.NodeID {
	return f(enabled, buf)
}

// Synchronous activates every enabled node simultaneously each step.
// Under it, steps and rounds coincide.
func Synchronous() Scheduler {
	return SchedulerFunc(func(enabled *EnabledSet, buf []graph.NodeID) []graph.NodeID {
		return enabled.AppendIDs(buf)
	})
}

// Central activates exactly one enabled node per step, the smallest ID —
// a deterministic central daemon.
func Central() Scheduler {
	return SchedulerFunc(func(enabled *EnabledSet, buf []graph.NodeID) []graph.NodeID {
		return append(buf, enabled.MinID())
	})
}

// RandomCentral activates one uniformly random enabled node per step.
func RandomCentral(rng *rand.Rand) Scheduler {
	return SchedulerFunc(func(enabled *EnabledSet, buf []graph.NodeID) []graph.NodeID {
		return append(buf, enabled.IDAt(rng.Intn(enabled.Len())))
	})
}

// RandomSubset activates a uniformly random non-empty subset of the
// enabled nodes — a distributed daemon.
func RandomSubset(rng *rand.Rand) Scheduler {
	return SchedulerFunc(func(enabled *EnabledSet, buf []graph.NodeID) []graph.NodeID {
		enabled.ForEachID(func(v graph.NodeID) bool {
			if rng.Intn(2) == 0 {
				buf = append(buf, v)
			}
			return true
		})
		if len(buf) == 0 {
			buf = append(buf, enabled.IDAt(rng.Intn(enabled.Len())))
		}
		return buf
	})
}

// adversarialUnfair is a hostile unfair scheduler: it keeps re-activating
// the node it activated most recently for as long as that node stays
// enabled, starving all others — the canonical unfairness pattern. When
// the favorite becomes disabled it adopts the enabled node activated the
// longest ago (never, if possible) as the new favorite.
type adversarialUnfair struct {
	lastActivated map[graph.NodeID]int
	clock         int
	favorite      graph.NodeID
	hasFavorite   bool
}

// AdversarialUnfair returns the hostile unfair scheduler described above.
// Silent algorithms must converge under it; non-silent or fairness-
// dependent protocols typically livelock or starve.
func AdversarialUnfair() Scheduler {
	return &adversarialUnfair{lastActivated: make(map[graph.NodeID]int)}
}

// Choose implements Scheduler.
func (s *adversarialUnfair) Choose(enabled *EnabledSet, buf []graph.NodeID) []graph.NodeID {
	s.clock++
	if s.hasFavorite && enabled.ContainsID(s.favorite) {
		s.lastActivated[s.favorite] = s.clock
		return append(buf, s.favorite)
	}
	// Favorite disabled: starve the freshest nodes; pick the stalest
	// (smallest ID on ties, as the ascending scan visits it first).
	best := graph.NodeID(0)
	first := true
	enabled.ForEachID(func(v graph.NodeID) bool {
		if first || s.lastActivated[v] < s.lastActivated[best] {
			best, first = v, false
		}
		return true
	})
	s.favorite, s.hasFavorite = best, true
	s.lastActivated[best] = s.clock
	return append(buf, best)
}

// NetworkAware is implemented by schedulers that need to inspect the
// network they drive (round frontier, degrees) beyond the enabled set.
// Network.Run binds the network before the first Choose call. A bound
// scheduler must only *read* the network.
type NetworkAware interface {
	BindNetwork(*Network)
}

// greedyStretch is the greedy round-stretching adversary: it always
// activates an enabled node whose step contributes least to completing
// the current round (the paper's round is over once every node of the
// start-of-round frontier has stepped or been disabled). An enabled
// node outside the frontier is a zero-progress pick — its step neither
// shrinks the frontier directly nor (usually) helps it along — so the
// scheduler prefers those; when every enabled node is in the frontier
// it picks one of minimum degree, minimizing how many frontier
// neighbors the write can disable as collateral. Ties break to the
// smallest ID, so the daemon is deterministic. Against round-complexity
// claims this is the natural worst-case daemon: it certifies bounds by
// actively trying to exceed them.
type greedyStretch struct {
	net *Network
}

// GreedyRoundStretch returns the greedy round-stretching scheduler. It
// must be driven by Network.Run (which binds the network); unbound it
// degrades to the central daemon.
func GreedyRoundStretch() Scheduler { return &greedyStretch{} }

// BindNetwork implements NetworkAware.
func (s *greedyStretch) BindNetwork(net *Network) { s.net = net }

// Choose implements Scheduler.
func (s *greedyStretch) Choose(enabled *EnabledSet, buf []graph.NodeID) []graph.NodeID {
	net := s.net
	if net == nil {
		return append(buf, enabled.MinID())
	}
	bestIdx, bestDeg := -1, -1
	// Identity-order iteration: ties break to the smallest ID even
	// after topology churn has recycled slots out of identity order.
	enabled.forEachSlotByID(func(i int) bool {
		if net.pendingEpoch[i] != net.epoch {
			// Outside the frontier: zero round progress. The first such
			// node in the iteration has the smallest ID — take it.
			bestIdx = i
			return false
		}
		if d := net.d.Degree(i); bestIdx < 0 || d < bestDeg {
			bestIdx, bestDeg = i, d
		}
		return true
	})
	return append(buf, net.d.ID(bestIdx))
}

// RoundRobin cycles deterministically through node IDs, activating the
// next enabled node at or after the cursor — a weakly fair daemon, useful
// as a contrast to the unfair ones.
type roundRobin struct {
	cursor graph.NodeID
}

// RoundRobin returns a weakly fair round-robin central scheduler.
func RoundRobin() Scheduler { return &roundRobin{} }

// Choose implements Scheduler.
func (s *roundRobin) Choose(enabled *EnabledSet, buf []graph.NodeID) []graph.NodeID {
	if v, ok := enabled.NextIDAfter(s.cursor); ok {
		s.cursor = v
		return append(buf, v)
	}
	v := enabled.MinID()
	s.cursor = v
	return append(buf, v)
}
