package runtime

import (
	"math/bits"
	"slices"

	"silentspan/internal/graph"
)

// EnabledSet is the incrementally maintained set of enabled nodes that
// the engine hands to schedulers. It replaces the per-activation O(n)
// scan-sort-allocate of the map-backed engine: the Network updates
// membership only around register writers (a node's enabledness can
// only change when it or a neighbor writes), and schedulers read the
// set through the ordered accessors below.
//
// Internally the set is a bitset over dense node indices plus a Fenwick
// tree of per-word popcounts, so all ordered queries — minimum, k-th
// smallest, successor — cost O(log n) and never touch disabled nodes.
// Because dense indices increase with node identity, index order and
// identity order coincide: "k-th smallest index" is "k-th smallest ID",
// which is exactly the order the old sorted enabled slice exposed.
//
// The set is owned by the Network; schedulers must treat it as
// read-only and must not retain it across activations.
type EnabledSet struct {
	ids   []graph.NodeID // dense index -> identity (shared with graph.Dense)
	words []uint64       // bit i set <=> index i enabled
	fen   []int32        // Fenwick tree (1-based) over word popcounts
	count int
}

// newEnabledSet returns an empty set over the given identity mapping.
func newEnabledSet(ids []graph.NodeID) *EnabledSet {
	nw := (len(ids) + 63) / 64
	return &EnabledSet{
		ids:   ids,
		words: make([]uint64, nw),
		fen:   make([]int32, nw+1),
	}
}

// Len returns the number of enabled nodes in O(1).
func (s *EnabledSet) Len() int { return s.count }

// contains reports membership of dense index i.
func (s *EnabledSet) contains(i int) bool {
	return s.words[i>>6]>>(uint(i)&63)&1 == 1
}

// add inserts dense index i; no-op if present.
func (s *EnabledSet) add(i int) {
	w := i >> 6
	bit := uint64(1) << (uint(i) & 63)
	if s.words[w]&bit != 0 {
		return
	}
	s.words[w] |= bit
	s.count++
	for f := w + 1; f < len(s.fen); f += f & -f {
		s.fen[f]++
	}
}

// remove deletes dense index i; no-op if absent.
func (s *EnabledSet) remove(i int) {
	w := i >> 6
	bit := uint64(1) << (uint(i) & 63)
	if s.words[w]&bit == 0 {
		return
	}
	s.words[w] &^= bit
	s.count--
	for f := w + 1; f < len(s.fen); f += f & -f {
		s.fen[f]--
	}
}

// selectIndex returns the dense index of the k-th smallest member
// (0-based). It panics if k is out of range.
func (s *EnabledSet) selectIndex(k int) int {
	if k < 0 || k >= s.count {
		panic("runtime: enabled-set select out of range")
	}
	// Fenwick descent to the word holding the k-th bit.
	w, rem := 0, int32(k)
	half := 1
	for half < len(s.fen)-1 {
		half <<= 1
	}
	for ; half > 0; half >>= 1 {
		if next := w + half; next < len(s.fen) && s.fen[next] <= rem {
			w = next
			rem -= s.fen[next]
		}
	}
	// w is now the count of whole words before the target word.
	word := s.words[w]
	for r := rem; r > 0; r-- {
		word &= word - 1 // clear lowest set bit
	}
	return w<<6 + bits.TrailingZeros64(word)
}

// rankBelow returns how many members have dense index < i.
func (s *EnabledSet) rankBelow(i int) int {
	w := i >> 6
	r := 0
	for f := w; f > 0; f &= f - 1 {
		r += int(s.fen[f])
	}
	return r + bits.OnesCount64(s.words[w]&(1<<(uint(i)&63)-1))
}

// MinID returns the smallest enabled identity. It panics on an empty
// set (schedulers are only invoked with at least one enabled node).
func (s *EnabledSet) MinID() graph.NodeID { return s.ids[s.selectIndex(0)] }

// IDAt returns the k-th smallest enabled identity (0-based) — the
// element the old engine exposed as enabled[k].
func (s *EnabledSet) IDAt(k int) graph.NodeID { return s.ids[s.selectIndex(k)] }

// ContainsID reports whether identity v is enabled.
func (s *EnabledSet) ContainsID(v graph.NodeID) bool {
	i, ok := indexOfID(s.ids, v)
	return ok && s.contains(i)
}

// NextIDAfter returns the smallest enabled identity strictly greater
// than v; ok is false when none exists. v need not be a node.
func (s *EnabledSet) NextIDAfter(v graph.NodeID) (graph.NodeID, bool) {
	i, exact := indexOfID(s.ids, v)
	if exact {
		i++
	}
	if i >= len(s.ids) {
		return 0, false
	}
	r := s.rankBelow(i)
	if r >= s.count {
		return 0, false
	}
	return s.ids[s.selectIndex(r)], true
}

// AppendIDs appends every enabled identity in increasing order to buf
// and returns the extended slice. It allocates only when buf lacks
// capacity.
func (s *EnabledSet) AppendIDs(buf []graph.NodeID) []graph.NodeID {
	for w, word := range s.words {
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			buf = append(buf, s.ids[i])
			word &= word - 1
		}
	}
	return buf
}

// ForEachID calls fn on every enabled identity in increasing order
// until fn returns false.
func (s *EnabledSet) ForEachID(fn func(graph.NodeID) bool) {
	for w, word := range s.words {
		for word != 0 {
			i := w<<6 + bits.TrailingZeros64(word)
			if !fn(s.ids[i]) {
				return
			}
			word &= word - 1
		}
	}
}

// indexOfID is the shared identity -> dense index binary search.
func indexOfID(ids []graph.NodeID, v graph.NodeID) (int, bool) {
	return slices.BinarySearch(ids, v)
}
