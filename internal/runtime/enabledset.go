package runtime

import (
	"cmp"
	"math/bits"
	"slices"

	"silentspan/internal/graph"
)

// EnabledSet is the incrementally maintained set of enabled nodes that
// the engine hands to schedulers. It replaces the per-activation O(n)
// scan-sort-allocate of the map-backed engine: the Network updates
// membership only around register writers (a node's enabledness can
// only change when it or a neighbor writes), and schedulers read the
// set through the ordered accessors below.
//
// Internally the set keeps two parallel bitsets over the graph's dense
// slot space: a membership view indexed by slot, and an identity-order
// view indexed by rank (position in ascending-identity order), with a
// Fenwick tree of per-word popcounts over the rank view. All ordered
// queries — minimum, k-th smallest, successor — cost O(log n) and never
// touch disabled nodes, and they are ordered by *identity* even after
// topology churn has recycled slots out of identity order (before any
// churn, rank and slot coincide, so the second view is pure overhead-
// free mirroring). Topology mutations call insertID/deleteSlot to keep
// the rank permutation current; those are O(n) memmoves, paid only by
// the rare node join/leave, never by edge churn or register writes.
//
// The set is owned by the Network; schedulers must treat it as
// read-only and must not retain it across activations.
type EnabledSet struct {
	d      *graph.Dense
	words  []uint64 // bit i set <=> slot i enabled (membership view)
	ord    []int32  // rank -> slot, live slots in ascending identity order
	rank   []int32  // slot -> rank; -1 for vacated slots
	rwords []uint64 // bit r set <=> slot ord[r] enabled (identity-order view)
	fen    []int32  // Fenwick tree (1-based) over rwords popcounts
	count  int
	// identity: rank is the identity permutation (no node churn yet), so
	// rwords aliases words and add/remove skip the second bitset write —
	// the hot path costs exactly what the single-view set did. The first
	// insertID/deleteSlot un-aliases the views.
	identity bool
}

// newEnabledSet returns an empty set over the dense slot space.
func newEnabledSet(d *graph.Dense) *EnabledSet {
	s := &EnabledSet{d: d}
	slots := d.Slots()
	s.words = make([]uint64, (slots+63)/64)
	s.ord = make([]int32, 0, slots)
	s.rank = make([]int32, slots)
	ids := d.IDs()
	for i := range s.rank {
		s.rank[i] = -1
	}
	for i := 0; i < slots; i++ {
		if ids[i] != graph.NoNode {
			s.ord = append(s.ord, int32(i))
		}
	}
	if !d.Sorted() {
		slices.SortFunc(s.ord, func(a, b int32) int { return cmp.Compare(ids[a], ids[b]) })
	}
	for r, i := range s.ord {
		s.rank[i] = int32(r)
	}
	nw := (len(s.ord) + 63) / 64
	if d.Sorted() && len(s.ord) == slots {
		s.identity = true
		s.rwords = s.words // alias: rank r IS slot r
	} else {
		s.rwords = make([]uint64, nw)
	}
	s.fen = make([]int32, nw+1)
	return s
}

// deAlias materializes a separate rank view before the first slot-
// recycling mutation breaks the identity permutation.
func (s *EnabledSet) deAlias() {
	if s.identity {
		s.identity = false
		s.rwords = slices.Clone(s.words)
	}
}

// Len returns the number of enabled nodes in O(1).
func (s *EnabledSet) Len() int { return s.count }

// contains reports membership of dense slot i.
func (s *EnabledSet) contains(i int) bool {
	return s.words[i>>6]>>(uint(i)&63)&1 == 1
}

// add inserts dense slot i; no-op if present.
func (s *EnabledSet) add(i int) {
	w := i >> 6
	bit := uint64(1) << (uint(i) & 63)
	if s.words[w]&bit != 0 {
		return
	}
	s.words[w] |= bit
	s.count++
	rw := w
	if !s.identity { // aliased views need no second write
		r := int(s.rank[i])
		rw = r >> 6
		s.rwords[rw] |= uint64(1) << (uint(r) & 63)
	}
	for f := rw + 1; f < len(s.fen); f += f & -f {
		s.fen[f]++
	}
}

// remove deletes dense slot i; no-op if absent.
func (s *EnabledSet) remove(i int) {
	w := i >> 6
	bit := uint64(1) << (uint(i) & 63)
	if s.words[w]&bit == 0 {
		return
	}
	s.words[w] &^= bit
	s.count--
	rw := w
	if !s.identity {
		r := int(s.rank[i])
		rw = r >> 6
		s.rwords[rw] &^= uint64(1) << (uint(r) & 63)
	}
	for f := rw + 1; f < len(s.fen); f += f & -f {
		s.fen[f]--
	}
}

// selectRank returns the rank of the k-th smallest enabled identity
// (0-based). It panics if k is out of range.
func (s *EnabledSet) selectRank(k int) int {
	if k < 0 || k >= s.count {
		panic("runtime: enabled-set select out of range")
	}
	// Fenwick descent to the rank word holding the k-th bit.
	w, rem := 0, int32(k)
	half := 1
	for half < len(s.fen)-1 {
		half <<= 1
	}
	for ; half > 0; half >>= 1 {
		if next := w + half; next < len(s.fen) && s.fen[next] <= rem {
			w = next
			rem -= s.fen[next]
		}
	}
	// w is now the count of whole rank words before the target word.
	word := s.rwords[w]
	for r := rem; r > 0; r-- {
		word &= word - 1 // clear lowest set bit
	}
	return w<<6 + bits.TrailingZeros64(word)
}

// enabledBeforeRank returns how many members have rank < r.
func (s *EnabledSet) enabledBeforeRank(r int) int {
	w := r >> 6
	c := 0
	for f := w; f > 0; f &= f - 1 {
		c += int(s.fen[f])
	}
	return c + bits.OnesCount64(s.rwords[w]&(1<<(uint(r)&63)-1))
}

// MinID returns the smallest enabled identity. It panics on an empty
// set (schedulers are only invoked with at least one enabled node).
func (s *EnabledSet) MinID() graph.NodeID { return s.d.ID(int(s.ord[s.selectRank(0)])) }

// IDAt returns the k-th smallest enabled identity (0-based) — the
// element the old engine exposed as enabled[k].
func (s *EnabledSet) IDAt(k int) graph.NodeID { return s.d.ID(int(s.ord[s.selectRank(k)])) }

// rankOfID returns the rank of the first live slot whose identity is
// >= v, and whether v itself is live.
func (s *EnabledSet) rankOfID(v graph.NodeID) (int, bool) {
	ids := s.d.IDs()
	return slices.BinarySearchFunc(s.ord, v, func(a int32, target graph.NodeID) int {
		return cmp.Compare(ids[a], target)
	})
}

// ContainsID reports whether identity v is enabled.
func (s *EnabledSet) ContainsID(v graph.NodeID) bool {
	r, exact := s.rankOfID(v)
	return exact && s.contains(int(s.ord[r]))
}

// NextIDAfter returns the smallest enabled identity strictly greater
// than v; ok is false when none exists. v need not be a node.
func (s *EnabledSet) NextIDAfter(v graph.NodeID) (graph.NodeID, bool) {
	r, exact := s.rankOfID(v)
	if exact {
		r++
	}
	if r >= len(s.ord) {
		return 0, false
	}
	c := s.enabledBeforeRank(r)
	if c >= s.count {
		return 0, false
	}
	return s.d.ID(int(s.ord[s.selectRank(c)])), true
}

// AppendIDs appends every enabled identity in increasing order to buf
// and returns the extended slice. It allocates only when buf lacks
// capacity.
func (s *EnabledSet) AppendIDs(buf []graph.NodeID) []graph.NodeID {
	for w, word := range s.rwords {
		for word != 0 {
			r := w<<6 + bits.TrailingZeros64(word)
			buf = append(buf, s.d.ID(int(s.ord[r])))
			word &= word - 1
		}
	}
	return buf
}

// ForEachID calls fn on every enabled identity in increasing order
// until fn returns false.
func (s *EnabledSet) ForEachID(fn func(graph.NodeID) bool) {
	s.forEachSlotByID(func(i int) bool { return fn(s.d.ID(i)) })
}

// forEachSlotByID calls fn on every enabled slot in increasing
// *identity* order until fn returns false — the iteration schedulers
// and round bookkeeping use when they need deterministic order over a
// churned (slot-recycled) index space.
func (s *EnabledSet) forEachSlotByID(fn func(slot int) bool) {
	for w, word := range s.rwords {
		for word != 0 {
			r := w<<6 + bits.TrailingZeros64(word)
			if !fn(int(s.ord[r])) {
				return
			}
			word &= word - 1
		}
	}
}

// insertID registers identity id at dense slot i after a node join:
// the slot is threaded into the rank permutation at its identity-order
// position. O(n) in the slot count (memmove + bitset shift), paid once
// per join.
func (s *EnabledSet) insertID(i int, id graph.NodeID) {
	s.deAlias()
	for i>>6 >= len(s.words) {
		s.words = append(s.words, 0)
	}
	for i >= len(s.rank) {
		s.rank = append(s.rank, -1)
	}
	ids := s.d.IDs()
	r, _ := slices.BinarySearchFunc(s.ord, id, func(a int32, target graph.NodeID) int {
		return cmp.Compare(ids[a], target)
	})
	s.ord = slices.Insert(s.ord, r, int32(i))
	s.rank[i] = int32(r)
	for k := r + 1; k < len(s.ord); k++ {
		s.rank[s.ord[k]] = int32(k)
	}
	s.rwords = insertBitAt(s.rwords, r, len(s.ord))
	s.rebuildFen()
}

// deleteSlot unregisters the (already removed) node that held dense
// slot i, dropping it from both views. O(n) like insertID.
func (s *EnabledSet) deleteSlot(i int) {
	if s.rank[i] < 0 {
		return
	}
	s.deAlias()
	s.remove(i)
	r := int(s.rank[i])
	s.ord = slices.Delete(s.ord, r, r+1)
	for k := r; k < len(s.ord); k++ {
		s.rank[s.ord[k]] = int32(k)
	}
	s.rank[i] = -1
	deleteBitAt(s.rwords, r)
	s.rebuildFen()
}

// rebuildFen recomputes the Fenwick tree from the rank-view popcounts.
func (s *EnabledSet) rebuildFen() {
	nw := (len(s.ord) + 63) / 64
	if nw > len(s.rwords) {
		nw = len(s.rwords)
	}
	if cap(s.fen) < nw+1 {
		s.fen = make([]int32, nw+1)
	} else {
		s.fen = s.fen[:nw+1]
		for i := range s.fen {
			s.fen[i] = 0
		}
	}
	for w := 0; w < nw; w++ {
		s.fen[w+1] += int32(bits.OnesCount64(s.rwords[w]))
		if next := (w + 1) + ((w + 1) & -(w + 1)); next < len(s.fen) {
			s.fen[next] += s.fen[w+1]
		}
	}
}

// insertBitAt shifts every bit at position >= p up by one and clears
// position p; n is the new total bit count. Words grow as needed.
func insertBitAt(words []uint64, p, n int) []uint64 {
	if (n+63)/64 > len(words) {
		words = append(words, 0)
	}
	w0 := p >> 6
	for w := len(words) - 1; w > w0; w-- {
		words[w] = words[w]<<1 | words[w-1]>>63
	}
	lowMask := uint64(1)<<(uint(p)&63) - 1
	low := words[w0] & lowMask
	words[w0] = low | (words[w0]&^lowMask)<<1
	return words
}

// deleteBitAt drops the bit at position p, shifting every higher bit
// down by one.
func deleteBitAt(words []uint64, p int) {
	w0 := p >> 6
	lowMask := uint64(1)<<(uint(p)&63) - 1
	words[w0] = words[w0]&lowMask | (words[w0]>>1)&^lowMask
	for w := w0 + 1; w < len(words); w++ {
		words[w-1] |= words[w] << 63
		words[w] >>= 1
	}
}
