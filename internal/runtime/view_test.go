package runtime

import (
	"testing"

	"silentspan/internal/graph"
)

type vtState int

func (s vtState) Equal(o State) bool { os, ok := o.(vtState); return ok && os == s }
func (s vtState) EncodedBits() int   { return 8 }
func (s vtState) String() string     { return "vt" }

// TestNewViewAdapter: a view assembled from an explicit snapshot must
// serve peers and weights exactly like an engine-built view, and nil
// cache entries must read back as nil states (the "neighbor unknown"
// signal message-passing layers rely on).
func TestNewViewAdapter(t *testing.T) {
	neighbors := []graph.NodeID{2, 5, 9}
	weights := []graph.Weight{10, 20, 30}
	peers := []State{vtState(2), nil, vtState(9)}
	v := NewView(4, 7, neighbors, weights, vtState(4), peers)

	if v.ID != 4 || v.N != 7 || len(v.Neighbors) != 3 {
		t.Fatalf("header: %+v", v)
	}
	if got := v.Peer(2); !got.Equal(vtState(2)) {
		t.Fatalf("Peer(2) = %v", got)
	}
	if got := v.PeerAt(1); got != nil {
		t.Fatalf("PeerAt(1) = %v, want nil (unknown neighbor)", got)
	}
	if got := v.PeerAt(2); !got.Equal(vtState(9)) {
		t.Fatalf("PeerAt(2) = %v", got)
	}
	if v.EdgeWeight(5) != 20 || v.WeightAt(0) != 10 {
		t.Fatalf("weights: %v %v", v.EdgeWeight(5), v.WeightAt(0))
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Peer(3) on a non-neighbor did not panic")
		}
	}()
	v.Peer(3)
}

// TestNewViewLengthMismatch: slice length disagreements are programming
// errors and must fail loudly, not read out of bounds later.
func TestNewViewLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched peers length accepted")
		}
	}()
	NewView(1, 2, []graph.NodeID{2}, []graph.Weight{1}, nil, nil)
}
