// Race-mode coverage for RunConcurrent's optimistic commit path: the
// test lives in package runtime_test so it can drive the runner with a
// real algorithm (the spanning substrate) rather than a toy.
package runtime_test

import (
	"math/rand"
	"testing"
	"time"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/spanning"
)

// TestRunConcurrentMatchesSequential checks, from the same
// deterministic-seed arbitrary configuration, that the concurrent
// runner (one goroutine per node, optimistic re-read-and-commit)
// reaches silence and lands on the same stabilized outcome as the
// sequential runner: identical (Root, Dist) fields at every node — the
// substrate's silent configuration is unique in those fields — and a
// valid spanning tree. Run under -race this exercises the commit path
// of RunConcurrent against real contention.
func TestRunConcurrentMatchesSequential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(16, 0.2, rng)

		mk := func() *runtime.Network {
			net, err := runtime.NewNetwork(g, spanning.Algorithm{})
			if err != nil {
				t.Fatal(err)
			}
			net.InitArbitrary(rand.New(rand.NewSource(seed + 100)))
			return net
		}

		seq := mk()
		seqRes, err := seq.Run(runtime.Central(), 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if !seqRes.Silent {
			t.Fatalf("seed %d: sequential run not silent", seed)
		}

		conc := mk()
		concRes, err := runtime.RunConcurrent(conc, 5_000_000, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !concRes.Silent {
			t.Fatalf("seed %d: concurrent run not silent after %d moves", seed, concRes.Moves)
		}
		if err := runtime.CheckSilentStable(conc); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		for _, v := range g.Nodes() {
			ss, ok := seq.State(v).(spanning.State)
			if !ok {
				t.Fatalf("seed %d: node %d has foreign sequential state", seed, v)
			}
			cs, ok := conc.State(v).(spanning.State)
			if !ok {
				t.Fatalf("seed %d: node %d has foreign concurrent state", seed, v)
			}
			if ss.Root != cs.Root || ss.Dist != cs.Dist {
				t.Errorf("seed %d: node %d: sequential (root=%d d=%d), concurrent (root=%d d=%d)",
					seed, v, ss.Root, ss.Dist, cs.Root, cs.Dist)
			}
		}
		// Both parent assignments must be spanning trees (parents may
		// legitimately differ between equal-distance neighbors).
		if _, err := spanning.ExtractTree(seq); err != nil {
			t.Fatalf("seed %d: sequential tree: %v", seed, err)
		}
		if _, err := spanning.ExtractTree(conc); err != nil {
			t.Fatalf("seed %d: concurrent tree: %v", seed, err)
		}
	}
}
