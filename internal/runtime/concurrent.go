package runtime

import (
	"fmt"
	"slices"
	"sync"
	"time"
)

// ConcurrentResult summarizes a run of the concurrent runner.
type ConcurrentResult struct {
	// Moves is the total number of state-changing steps taken.
	Moves int
	// Silent reports whether the network reached (and held) silence.
	Silent bool
}

// RunConcurrent executes the algorithm with one goroutine per node,
// modelling the asynchronous network directly: every node repeatedly
// performs the atomic read-compute-write step of the state model against
// a private dense register file guarded per-index. It demonstrates that
// the algorithms are scheduler-oblivious — the Go scheduler acts as an
// arbitrary (unfair in practice) daemon — and gives the race detector a
// real concurrent execution to check.
//
// Unlike the sequential engine's live views, concurrent views must be
// snapshots (a neighbor may write between the read and the compute), so
// each goroutine owns one reusable peer buffer filled under the locks.
//
// The run stops when the network has been continuously silent for all
// nodes over a full sweep, or when maxMoves is exceeded, or after
// timeout. Round counting is not meaningful here (no global observer),
// so only moves are reported.
//
// Live edge churn is supported while the runner is active: the
// network's AddEdge/RemoveEdge/PerturbEdgeWeight mutators take the
// topology lock exclusively, every view read-and-compute below takes it
// shared, so a step observes either the pre- or post-mutation adjacency
// and never a torn row. Node churn is rejected for the duration (the
// concurrent register file is sized once at entry).
func RunConcurrent(net *Network, maxMoves int, timeout time.Duration) (ConcurrentResult, error) {
	d := net.d
	// Entry barrier: set the concurrent flag and snapshot the node set
	// under the exclusive topology lock, so node churn observed by any
	// later mutator call is rejected and the slot space is fixed for
	// the whole run.
	net.topoMu.Lock()
	net.concurrent = true
	slots := d.Slots()
	regs := make([]State, slots)
	copy(regs, net.states)
	startDeg := make([]int, slots) // -1 marks vacated slots
	for i := 0; i < slots; i++ {
		if d.LiveAt(i) {
			startDeg[i] = d.Degree(i)
		} else {
			startDeg[i] = -1
		}
	}
	net.topoMu.Unlock()
	mus := make([]sync.Mutex, slots)

	var (
		movesMu sync.Mutex
		moves   int
		stop    = make(chan struct{})
		once    sync.Once
		wg      sync.WaitGroup
	)
	halt := func() { once.Do(func() { close(stop) }) }

	// readView snapshots the view at dense slot i into the caller's peer
	// buffer. Register locks are taken in ascending slot order to avoid
	// deadlock; after topology churn the neighbor-slot slice is ordered
	// by identity, not slot, so the acquisition order is sorted into the
	// caller's scratch buffer. Callers hold the topology read-lock
	// across the call (and across the Step that consumes the view), so
	// the adjacency slices cannot be patched mid-read.
	readView := func(i int, peers []State, order []int32) (View, []int32) {
		nbrIdx := d.NeighborIndices(i)
		peers = peers[:0]
		order = append(order[:0], nbrIdx...)
		order = append(order, int32(i))
		slices.Sort(order)
		for _, j := range order {
			mus[j].Lock()
		}
		for _, j := range nbrIdx {
			peers = append(peers, regs[j])
		}
		self := regs[i]
		for k := len(order) - 1; k >= 0; k-- {
			mus[order[k]].Unlock()
		}
		return View{
			ID:        d.ID(i),
			N:         d.N(),
			Neighbors: d.NeighborIDs(i),
			Self:      self,
			weights:   d.Weights(i),
			peers:     peers,
		}, order
	}

	deadline := time.After(timeout)
	for i := 0; i < slots; i++ {
		deg := startDeg[i] // snapshotted at entry; buffers grow on churn
		if deg < 0 {
			continue
		}
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			peerBuf := make([]State, 0, deg)
			orderBuf := make([]int32, 0, deg+1)
			idleSweeps := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				net.topoMu.RLock()
				view, order := readView(i, peerBuf, orderBuf)
				next := net.alg.Step(view)
				net.topoMu.RUnlock()
				peerBuf, orderBuf = view.peers[:0], order
				if next.Equal(view.Self) {
					idleSweeps++
					if idleSweeps > 3 {
						// Yield and back off; silence is detected globally.
						time.Sleep(100 * time.Microsecond)
					}
					continue
				}
				idleSweeps = 0
				// Atomic step: re-read under lock and only commit if the
				// view is unchanged (the state model's step is atomic;
				// this realizes it optimistically).
				mus[i].Lock()
				if regs[i] == view.Self || (regs[i] != nil && view.Self != nil && regs[i].Equal(view.Self)) {
					regs[i] = next
					mus[i].Unlock()
					movesMu.Lock()
					moves++
					exceeded := moves > maxMoves
					movesMu.Unlock()
					if exceeded {
						halt()
						return
					}
				} else {
					mus[i].Unlock()
				}
			}
		}()
	}

	// Global silence detector.
	silent := false
	detect := time.NewTicker(2 * time.Millisecond)
	defer detect.Stop()
	detectBuf := make([]State, 0, 64)
	detectOrder := make([]int32, 0, 64)
detectLoop:
	for {
		select {
		case <-deadline:
			break detectLoop
		case <-stop:
			break detectLoop
		case <-detect.C:
			allQuiet := true
			for i := 0; i < slots; i++ {
				if !d.LiveAt(i) {
					continue
				}
				net.topoMu.RLock()
				view, order := readView(i, detectBuf, detectOrder)
				quiet := net.alg.Step(view).Equal(view.Self)
				net.topoMu.RUnlock()
				detectBuf, detectOrder = view.peers[:0], order
				if !quiet {
					allQuiet = false
					break
				}
			}
			if allQuiet {
				silent = true
				break detectLoop
			}
		}
	}
	halt()
	wg.Wait()

	// Exit barrier: copy final registers back into the network under
	// the exclusive topology lock (a mutator goroutine may still be
	// churning edges), notifying listeners of every register that
	// changed over the run, and clear the concurrent flag.
	net.topoMu.Lock()
	for i := 0; i < slots; i++ {
		mus[i].Lock()
		final := regs[i]
		mus[i].Unlock()
		old := net.states[i]
		net.states[i] = final
		changed := (old == nil) != (final == nil) ||
			(final != nil && old != nil && !final.Equal(old))
		if changed {
			net.notify(d.ID(i), old, final)
		}
	}
	net.markAllDirty()
	net.concurrent = false
	net.topoMu.Unlock()

	movesMu.Lock()
	total := moves
	movesMu.Unlock()
	if total > maxMoves {
		return ConcurrentResult{Moves: total, Silent: false},
			fmt.Errorf("runtime: exceeded %d moves without silence", maxMoves)
	}
	return ConcurrentResult{Moves: total, Silent: silent}, nil
}
