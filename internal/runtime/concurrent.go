package runtime

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"silentspan/internal/graph"
)

// ConcurrentResult summarizes a run of the concurrent runner.
type ConcurrentResult struct {
	// Moves is the total number of state-changing steps taken.
	Moves int
	// Silent reports whether the network reached (and held) silence.
	Silent bool
}

// RunConcurrent executes the algorithm with one goroutine per node,
// modelling the asynchronous network directly: every node repeatedly
// performs the atomic read-compute-write step of the state model against
// a shared register file guarded per-node. It demonstrates that the
// algorithms are scheduler-oblivious — the Go scheduler acts as an
// arbitrary (unfair in practice) daemon — and gives the race detector a
// real concurrent execution to check.
//
// The run stops when the network has been continuously silent for all
// nodes over a full sweep, or when maxMoves is exceeded, or after
// timeout. Round counting is not meaningful here (no global observer),
// so only moves are reported.
func RunConcurrent(net *Network, maxMoves int, timeout time.Duration) (ConcurrentResult, error) {
	type register struct {
		mu sync.Mutex
		s  State
	}
	nodes := net.g.Nodes()
	regs := make(map[graph.NodeID]*register, len(nodes))
	for _, v := range nodes {
		regs[v] = &register{s: net.states[v]}
	}

	var (
		movesMu sync.Mutex
		moves   int
		stop    = make(chan struct{})
		once    sync.Once
		wg      sync.WaitGroup
	)
	halt := func() { once.Do(func() { close(stop) }) }

	// readView snapshots node v's view. Locks are taken in ID order to
	// avoid deadlock (ordered lock acquisition). The neighbor slice is
	// the graph's shared one — safe across goroutines because the graph
	// is never mutated during a run.
	readView := func(v graph.NodeID) View {
		nbrs := net.g.NeighborsShared(v)
		all := make([]graph.NodeID, 0, len(nbrs)+1)
		all = append(all, v)
		all = append(all, nbrs...)
		slices.Sort(all)
		for _, u := range all {
			regs[u].mu.Lock()
		}
		peers := make(map[graph.NodeID]State, len(nbrs))
		weights := make(map[graph.NodeID]graph.Weight, len(nbrs))
		for _, u := range nbrs {
			peers[u] = regs[u].s
			w, _ := net.g.EdgeWeight(v, u)
			weights[u] = w
		}
		view := View{
			ID:        v,
			N:         net.g.N(),
			Neighbors: nbrs,
			Self:      regs[v].s,
			peers:     peers,
			weights:   weights,
		}
		for i := len(all) - 1; i >= 0; i-- {
			regs[all[i]].mu.Unlock()
		}
		return view
	}

	deadline := time.After(timeout)
	for _, v := range nodes {
		v := v
		wg.Add(1)
		go func() {
			defer wg.Done()
			idleSweeps := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				view := readView(v)
				next := net.alg.Step(view)
				if next.Equal(view.Self) {
					idleSweeps++
					if idleSweeps > 3 {
						// Yield and back off; silence is detected globally.
						time.Sleep(100 * time.Microsecond)
					}
					continue
				}
				idleSweeps = 0
				// Atomic step: re-read under lock and only commit if the
				// view is unchanged (the state model's step is atomic;
				// this realizes it optimistically).
				regs[v].mu.Lock()
				if regs[v].s == view.Self || (regs[v].s != nil && view.Self != nil && regs[v].s.Equal(view.Self)) {
					regs[v].s = next
					regs[v].mu.Unlock()
					movesMu.Lock()
					moves++
					exceeded := moves > maxMoves
					movesMu.Unlock()
					if exceeded {
						halt()
						return
					}
				} else {
					regs[v].mu.Unlock()
				}
			}
		}()
	}

	// Global silence detector.
	silent := false
	detect := time.NewTicker(2 * time.Millisecond)
	defer detect.Stop()
detectLoop:
	for {
		select {
		case <-deadline:
			break detectLoop
		case <-stop:
			break detectLoop
		case <-detect.C:
			allQuiet := true
			for _, v := range nodes {
				view := readView(v)
				if !net.alg.Step(view).Equal(view.Self) {
					allQuiet = false
					break
				}
			}
			if allQuiet {
				silent = true
				break detectLoop
			}
		}
	}
	halt()
	wg.Wait()

	// Copy final registers back into the network, notifying listeners
	// of every register that changed over the run.
	for _, v := range nodes {
		regs[v].mu.Lock()
		final := regs[v].s
		regs[v].mu.Unlock()
		old := net.states[v]
		net.states[v] = final
		changed := (old == nil) != (final == nil) ||
			(final != nil && old != nil && !final.Equal(old))
		if changed {
			net.notify(v, old, final)
		}
	}
	net.markAllDirty()

	movesMu.Lock()
	total := moves
	movesMu.Unlock()
	if total > maxMoves {
		return ConcurrentResult{Moves: total, Silent: false},
			fmt.Errorf("runtime: exceeded %d moves without silence", maxMoves)
	}
	return ConcurrentResult{Moves: total, Silent: silent}, nil
}
