package runtime

import (
	"fmt"
	"sync"
	"time"
)

// ConcurrentResult summarizes a run of the concurrent runner.
type ConcurrentResult struct {
	// Moves is the total number of state-changing steps taken.
	Moves int
	// Silent reports whether the network reached (and held) silence.
	Silent bool
}

// RunConcurrent executes the algorithm with one goroutine per node,
// modelling the asynchronous network directly: every node repeatedly
// performs the atomic read-compute-write step of the state model against
// a private dense register file guarded per-index. It demonstrates that
// the algorithms are scheduler-oblivious — the Go scheduler acts as an
// arbitrary (unfair in practice) daemon — and gives the race detector a
// real concurrent execution to check.
//
// Unlike the sequential engine's live views, concurrent views must be
// snapshots (a neighbor may write between the read and the compute), so
// each goroutine owns one reusable peer buffer filled under the locks.
//
// The run stops when the network has been continuously silent for all
// nodes over a full sweep, or when maxMoves is exceeded, or after
// timeout. Round counting is not meaningful here (no global observer),
// so only moves are reported.
func RunConcurrent(net *Network, maxMoves int, timeout time.Duration) (ConcurrentResult, error) {
	d := net.d
	n := d.N()
	regs := make([]State, n)
	copy(regs, net.states)
	mus := make([]sync.Mutex, n)

	var (
		movesMu sync.Mutex
		moves   int
		stop    = make(chan struct{})
		once    sync.Once
		wg      sync.WaitGroup
	)
	halt := func() { once.Do(func() { close(stop) }) }

	// readView snapshots the view at dense index i into the caller's
	// peer buffer. Locks are taken in index order to avoid deadlock
	// (ordered lock acquisition); neighbor indices are ascending, so the
	// own index is merged in place.
	readView := func(i int, peers []State) View {
		nbrIdx := d.NeighborIndices(i)
		peers = peers[:0]
		locked := func(j int32) {
			mus[j].Lock()
		}
		ii := int32(i)
		merged := false
		for _, j := range nbrIdx {
			if !merged && ii < j {
				locked(ii)
				merged = true
			}
			locked(j)
		}
		if !merged {
			locked(ii)
		}
		for _, j := range nbrIdx {
			peers = append(peers, regs[j])
		}
		self := regs[i]
		for k := len(nbrIdx) - 1; k >= 0; k-- {
			mus[nbrIdx[k]].Unlock()
		}
		mus[i].Unlock()
		return View{
			ID:        d.ID(i),
			N:         n,
			Neighbors: d.NeighborIDs(i),
			Self:      self,
			weights:   d.Weights(i),
			peers:     peers,
		}
	}

	deadline := time.After(timeout)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			peerBuf := make([]State, 0, d.Degree(i))
			idleSweeps := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				view := readView(i, peerBuf)
				peerBuf = view.peers[:0]
				next := net.alg.Step(view)
				if next.Equal(view.Self) {
					idleSweeps++
					if idleSweeps > 3 {
						// Yield and back off; silence is detected globally.
						time.Sleep(100 * time.Microsecond)
					}
					continue
				}
				idleSweeps = 0
				// Atomic step: re-read under lock and only commit if the
				// view is unchanged (the state model's step is atomic;
				// this realizes it optimistically).
				mus[i].Lock()
				if regs[i] == view.Self || (regs[i] != nil && view.Self != nil && regs[i].Equal(view.Self)) {
					regs[i] = next
					mus[i].Unlock()
					movesMu.Lock()
					moves++
					exceeded := moves > maxMoves
					movesMu.Unlock()
					if exceeded {
						halt()
						return
					}
				} else {
					mus[i].Unlock()
				}
			}
		}()
	}

	// Global silence detector.
	silent := false
	detect := time.NewTicker(2 * time.Millisecond)
	defer detect.Stop()
	detectBuf := make([]State, 0, 64)
detectLoop:
	for {
		select {
		case <-deadline:
			break detectLoop
		case <-stop:
			break detectLoop
		case <-detect.C:
			allQuiet := true
			for i := 0; i < n; i++ {
				view := readView(i, detectBuf)
				detectBuf = view.peers[:0]
				if !net.alg.Step(view).Equal(view.Self) {
					allQuiet = false
					break
				}
			}
			if allQuiet {
				silent = true
				break detectLoop
			}
		}
	}
	halt()
	wg.Wait()

	// Copy final registers back into the network, notifying listeners
	// of every register that changed over the run.
	for i := 0; i < n; i++ {
		mus[i].Lock()
		final := regs[i]
		mus[i].Unlock()
		old := net.states[i]
		net.states[i] = final
		changed := (old == nil) != (final == nil) ||
			(final != nil && old != nil && !final.Equal(old))
		if changed {
			net.notify(d.ID(i), old, final)
		}
	}
	net.markAllDirty()

	movesMu.Lock()
	total := moves
	movesMu.Unlock()
	if total > maxMoves {
		return ConcurrentResult{Moves: total, Silent: false},
			fmt.Errorf("runtime: exceeded %d moves without silence", maxMoves)
	}
	return ConcurrentResult{Moves: total, Silent: silent}, nil
}
