package runtime

// Cross-engine equivalence: the dense register-file engine must
// reproduce, scheduler for scheduler, the exact execution of the
// map-backed engine it replaced — same chosen-node sequence, same
// applied writes, same move and round totals. refNetwork below is a
// trimmed copy of that pre-dense engine (map registers, from-scratch
// enabled scan per activation, snapshot views); the test drives both
// engines from identical configurations and compares full traces.

import (
	"fmt"
	"math/rand"
	"slices"
	"strings"
	"testing"

	"silentspan/internal/graph"
)

// refNetwork is the reference engine: the map-backed semantics of the
// original runtime.Network, with no incremental bookkeeping at all.
type refNetwork struct {
	g      *graph.Graph
	alg    Algorithm
	states map[graph.NodeID]State
	moves  int
	rounds int
}

func newRefNetwork(g *graph.Graph, alg Algorithm) *refNetwork {
	return &refNetwork{g: g, alg: alg, states: make(map[graph.NodeID]State, g.N())}
}

// view builds a snapshot view (maps replaced by the parallel-slice
// snapshot form the dense View also supports).
func (r *refNetwork) view(v graph.NodeID) View {
	nbrs := r.g.NeighborsShared(v)
	peers := make([]State, len(nbrs))
	weights := make([]graph.Weight, len(nbrs))
	for j, u := range nbrs {
		peers[j] = r.states[u]
		w, _ := r.g.EdgeWeight(v, u)
		weights[j] = w
	}
	return View{
		ID:        v,
		N:         r.g.N(),
		Neighbors: nbrs,
		Self:      r.states[v],
		weights:   weights,
		peers:     peers,
	}
}

func (r *refNetwork) enabledOf(v graph.NodeID) bool {
	return !r.alg.Step(r.view(v)).Equal(r.states[v])
}

// enabled returns the enabled nodes by full O(n) rescan, sorted.
func (r *refNetwork) enabled() []graph.NodeID {
	var out []graph.NodeID
	for _, v := range r.g.Nodes() {
		if r.enabledOf(v) {
			out = append(out, v)
		}
	}
	return out
}

func (r *refNetwork) initArbitrary(rng *rand.Rand) {
	for _, v := range r.g.Nodes() {
		r.states[v] = r.alg.ArbitraryState(rng, r.view(v))
	}
}

// Topology mutators: the reference engine has no incremental
// bookkeeping, so churn is just graph mutation plus (for removals)
// dropping the register — its per-activation rescan picks everything
// else up. These mirror the Network mutators so the cross-engine
// equivalence test can drive both through the same churn schedule.

func (r *refNetwork) addNode(id graph.NodeID) { r.g.AddNode(id) }

func (r *refNetwork) removeNode(id graph.NodeID) error {
	if err := r.g.RemoveNode(id); err != nil {
		return err
	}
	delete(r.states, id)
	return nil
}

func (r *refNetwork) addEdge(u, v graph.NodeID, w graph.Weight) error {
	return r.g.AddEdge(u, v, w)
}

func (r *refNetwork) removeEdge(u, v graph.NodeID) error {
	return r.g.RemoveEdge(u, v)
}

// enabledSetOf builds a fresh EnabledSet over the current enabled
// nodes, so the reference engine can drive the same Scheduler values.
func (r *refNetwork) enabledSetOf(en []graph.NodeID) *EnabledSet {
	es := newEnabledSet(r.g.Dense())
	for _, v := range en {
		i, _ := r.g.Dense().IndexOf(v)
		es.add(i)
	}
	return es
}

// run replays the original Run loop: rescan, choose, compute-all-then-
// write, round bookkeeping over a pending map.
func (r *refNetwork) run(sched Scheduler, maxMoves int, trace *strings.Builder) Result {
	pending := make(map[graph.NodeID]bool)
	startRound := func() {
		for _, v := range r.enabled() {
			pending[v] = true
		}
	}
	startRound()
	for r.moves < maxMoves {
		en := r.enabled()
		if len(en) == 0 {
			break
		}
		chosen := sched.Choose(r.enabledSetOf(en), nil)
		fmt.Fprintf(trace, "choose %v\n", chosen)
		next := make([]State, len(chosen))
		for k, v := range chosen {
			next[k] = r.alg.Step(r.view(v))
		}
		for k, v := range chosen {
			if !next[k].Equal(r.states[v]) {
				r.moves++
				r.states[v] = next[k]
				fmt.Fprintf(trace, "write %d <- %s\n", v, next[k])
			}
		}
		for _, v := range chosen {
			delete(pending, v)
		}
		for v := range pending {
			if !r.enabledOf(v) {
				delete(pending, v)
			}
		}
		if len(pending) == 0 {
			r.rounds++
			startRound()
		}
	}
	silent := len(r.enabled()) == 0
	maxBits := 0
	for _, s := range r.states {
		if s != nil && s.EncodedBits() > maxBits {
			maxBits = s.EncodedBits()
		}
	}
	return Result{Rounds: r.rounds, Moves: r.moves, Silent: silent, MaxRegisterBits: maxBits}
}

// tracingScheduler wraps a scheduler, recording every choice, and
// traces the dense engine's writes via a StateListener-compatible hook.
type tracingScheduler struct {
	inner Scheduler
	trace *strings.Builder
}

func (t *tracingScheduler) Choose(enabled *EnabledSet, buf []graph.NodeID) []graph.NodeID {
	out := t.inner.Choose(enabled, buf)
	fmt.Fprintf(t.trace, "choose %v\n", out)
	return out
}

// parentState is a rich register for the equivalence test: a
// spanning-substrate-like (root, parent, dist) record, reimplemented
// here because the runtime-internal test cannot import the spanning
// package (import cycle). Multi-field states exercise Equal, peers and
// weights harder than the minState toy.
type parentState struct {
	Root   graph.NodeID
	Parent graph.NodeID
	Dist   int
}

func (s parentState) Equal(o State) bool {
	os, ok := o.(parentState)
	return ok && os == s
}

func (s parentState) EncodedBits() int {
	return BitsForValue(int(s.Root)) + BitsForValue(int(s.Parent)) + BitsForValue(s.Dist)
}

func (s parentState) String() string {
	return fmt.Sprintf("(r=%d p=%d d=%d)", s.Root, s.Parent, s.Dist)
}

type parentAlg struct{}

func (parentAlg) Name() string { return "equiv-spanning" }

func (parentAlg) Step(v View) State {
	s, ok := v.Self.(parentState)
	if !ok {
		return parentState{Root: v.ID, Parent: 0, Dist: 0}
	}
	cap := v.N - 1
	// Reset on inconsistency.
	if s.Parent == 0 {
		if s.Root != v.ID || s.Dist != 0 {
			return parentState{Root: v.ID, Parent: 0, Dist: 0}
		}
	} else {
		_, isNbr := slices.BinarySearch(v.Neighbors, s.Parent)
		if !isNbr || s.Root >= v.ID || s.Dist < 1 || s.Dist > cap {
			return parentState{Root: v.ID, Parent: 0, Dist: 0}
		}
		p, ok := v.Peer(s.Parent).(parentState)
		if !ok || p.Root != s.Root {
			return parentState{Root: v.ID, Parent: 0, Dist: 0}
		}
	}
	// Adopt the best offer.
	for _, u := range v.Neighbors {
		p, ok := v.Peer(u).(parentState)
		if !ok || p.Dist+1 > cap {
			continue
		}
		if p.Root < s.Root || (p.Root == s.Root && s.Parent != 0 && p.Dist+1 < s.Dist) {
			return parentState{Root: p.Root, Parent: u, Dist: p.Dist + 1}
		}
	}
	// Track the parent's distance.
	if s.Parent != 0 {
		p := v.Peer(s.Parent).(parentState)
		if s.Dist != p.Dist+1 {
			if p.Dist+1 <= cap {
				return parentState{Root: s.Root, Parent: s.Parent, Dist: p.Dist + 1}
			}
			return parentState{Root: v.ID, Parent: 0, Dist: 0}
		}
	}
	return s
}

func (parentAlg) ArbitraryState(rng *rand.Rand, v View) State {
	s := parentState{
		Root: graph.NodeID(rng.Intn(2*v.N) + 1),
		Dist: rng.Intn(v.N + 2),
	}
	if len(v.Neighbors) > 0 && rng.Intn(3) != 0 {
		s.Parent = v.Neighbors[rng.Intn(len(v.Neighbors))]
	}
	return s
}

// equivSchedulers is the scheduler matrix of the equivalence and
// determinism tests. Constructors take a seed so both engines (and both
// determinism runs) get identical fresh instances.
func equivSchedulers() map[string]func(seed int64) Scheduler {
	return map[string]func(int64) Scheduler{
		"central":       func(int64) Scheduler { return Central() },
		"synchronous":   func(int64) Scheduler { return Synchronous() },
		"roundrobin":    func(int64) Scheduler { return RoundRobin() },
		"adversarial":   func(int64) Scheduler { return AdversarialUnfair() },
		"randomcentral": func(seed int64) Scheduler { return RandomCentral(rand.New(rand.NewSource(seed))) },
		"randomsubset":  func(seed int64) Scheduler { return RandomSubset(rand.New(rand.NewSource(seed))) },
	}
}

func TestDenseEngineMatchesReferenceEngine(t *testing.T) {
	algs := map[string]Algorithm{
		"min":      minAlg{},
		"spanning": parentAlg{},
	}
	for schedName, mkSched := range equivSchedulers() {
		for algName, alg := range algs {
			t.Run(schedName+"/"+algName, func(t *testing.T) {
				for seed := int64(1); seed <= 3; seed++ {
					rng := rand.New(rand.NewSource(seed))
					g := graph.RandomConnected(24, 0.15, rng)

					dense, err := NewNetwork(g, alg)
					if err != nil {
						t.Fatal(err)
					}
					dense.InitArbitrary(rand.New(rand.NewSource(seed + 50)))
					ref := newRefNetwork(g, alg)
					ref.initArbitrary(rand.New(rand.NewSource(seed + 50)))
					for _, v := range g.Nodes() {
						ds, rs := dense.State(v), ref.states[v]
						if (ds == nil) != (rs == nil) || (ds != nil && !ds.Equal(rs)) {
							t.Fatalf("seed %d: initial states differ at node %d", seed, v)
						}
					}

					var denseTrace, refTrace strings.Builder
					dense.AddStateListener(func(v graph.NodeID, old, new State) {
						fmt.Fprintf(&denseTrace, "write %d <- %s\n", v, new)
					})
					denseRes, err := dense.Run(&tracingScheduler{inner: mkSched(seed), trace: &denseTrace}, 100000)
					if err != nil {
						t.Fatal(err)
					}
					refRes := ref.run(mkSched(seed), 100000, &refTrace)

					if denseRes != refRes {
						t.Errorf("seed %d: results differ: dense %+v, reference %+v", seed, denseRes, refRes)
					}
					if got, want := denseTrace.String(), refTrace.String(); got != want {
						t.Fatalf("seed %d: move traces diverge.\ndense:\n%s\nreference:\n%s", seed, head(got), head(want))
					}
					if !denseRes.Silent {
						t.Errorf("seed %d: run not silent", seed)
					}
				}
			})
		}
	}
}

// TestDenseEngineMatchesReferenceUnderChurn extends the equivalence to
// live topology churn: both engines start from identical graphs and
// configurations, stabilize, get the same seeded churn batch (joins,
// leaves, link flaps), stabilize again, and so on — traces, results,
// and final registers must agree at every phase. This is the guard
// that slot recycling, the patch overlay, and the incremental
// enabled-set maintenance change no observable semantics.
func TestDenseEngineMatchesReferenceUnderChurn(t *testing.T) {
	for schedName, mkSched := range equivSchedulers() {
		t.Run(schedName, func(t *testing.T) {
			for seed := int64(1); seed <= 2; seed++ {
				rng := rand.New(rand.NewSource(seed))
				g := graph.RandomConnected(18, 0.2, rng)
				gRef := g.Clone()

				dense, err := NewNetwork(g, parentAlg{})
				if err != nil {
					t.Fatal(err)
				}
				dense.InitArbitrary(rand.New(rand.NewSource(seed + 90)))
				ref := newRefNetwork(gRef, parentAlg{})
				ref.initArbitrary(rand.New(rand.NewSource(seed + 90)))

				var denseTrace, refTrace strings.Builder
				dense.AddStateListener(func(v graph.NodeID, old, new State) {
					if new != nil {
						fmt.Fprintf(&denseTrace, "write %d <- %s\n", v, new)
					}
				})

				churn := rand.New(rand.NewSource(seed + 700))
				nextID := graph.NodeID(300)
				for phase := 0; phase < 8; phase++ {
					res, err := dense.Run(&tracingScheduler{inner: mkSched(seed), trace: &denseTrace}, dense.Moves()+50_000)
					if err != nil {
						t.Fatal(err)
					}
					refRes := ref.run(mkSched(seed), ref.moves+50_000, &refTrace)
					if res != refRes {
						t.Fatalf("phase %d: results differ: dense %+v, reference %+v", phase, res, refRes)
					}
					if got, want := denseTrace.String(), refTrace.String(); got != want {
						t.Fatalf("phase %d: traces diverge.\ndense:\n%s\nreference:\n%s", phase, head(got), head(want))
					}
					for _, v := range g.Nodes() {
						ds, rs := dense.State(v), ref.states[v]
						if (ds == nil) != (rs == nil) || (ds != nil && !ds.Equal(rs)) {
							t.Fatalf("phase %d: states differ at node %d: %v vs %v", phase, v, ds, rs)
						}
					}

					// Same churn batch on both engines.
					for k := 0; k < 3; k++ {
						nodes := g.Nodes()
						switch op := churn.Intn(8); {
						case op < 3: // link up
							u := nodes[churn.Intn(len(nodes))]
							v := nodes[churn.Intn(len(nodes))]
							if u == v || g.HasEdge(u, v) {
								continue
							}
							w := graph.Weight(50_000 + int(nextID)*10 + k)
							if err := dense.AddEdge(u, v, w); err != nil {
								t.Fatal(err)
							}
							if err := ref.addEdge(u, v, w); err != nil {
								t.Fatal(err)
							}
						case op < 6: // link down
							edges := g.Edges()
							if len(edges) == 0 {
								continue
							}
							e := edges[churn.Intn(len(edges))]
							if err := dense.RemoveEdge(e.U, e.V); err != nil {
								t.Fatal(err)
							}
							if err := ref.removeEdge(e.U, e.V); err != nil {
								t.Fatal(err)
							}
						case op < 7: // leave
							if len(nodes) <= 3 {
								continue
							}
							v := nodes[churn.Intn(len(nodes))]
							if err := dense.RemoveNode(v); err != nil {
								t.Fatal(err)
							}
							if err := ref.removeNode(v); err != nil {
								t.Fatal(err)
							}
						default: // join
							if err := dense.AddNode(nextID, nil); err != nil {
								t.Fatal(err)
							}
							ref.addNode(nextID)
							anchor := nodes[churn.Intn(len(nodes))]
							w := graph.Weight(90_000 + int(nextID))
							if err := dense.AddEdge(nextID, anchor, w); err != nil {
								t.Fatal(err)
							}
							if err := ref.addEdge(nextID, anchor, w); err != nil {
								t.Fatal(err)
							}
							nextID++
						}
					}
					if en := dense.Enabled(); !slices.Equal(en, ref.enabled()) {
						t.Fatalf("phase %d: enabled sets diverge after churn: dense %v, ref %v", phase, en, ref.enabled())
					}
				}
			}
		})
	}
}

func head(s string) string {
	lines := strings.Split(s, "\n")
	if len(lines) > 40 {
		lines = lines[:40]
	}
	return strings.Join(lines, "\n")
}

// TestSchedulerDeterminism pins the chosen-node order of the seeded
// schedulers: two runs from the same seed must activate the same nodes
// in the same order, so performance refactors cannot silently change
// execution traces.
func TestSchedulerDeterminism(t *testing.T) {
	for _, schedName := range []string{"randomcentral", "randomsubset", "adversarial", "roundrobin", "central"} {
		mkSched := equivSchedulers()[schedName]
		t.Run(schedName, func(t *testing.T) {
			runOnce := func() string {
				rng := rand.New(rand.NewSource(7))
				g := graph.RandomConnected(30, 0.12, rng)
				net, err := NewNetwork(g, parentAlg{})
				if err != nil {
					t.Fatal(err)
				}
				net.InitArbitrary(rand.New(rand.NewSource(77)))
				var trace strings.Builder
				res, err := net.Run(&tracingScheduler{inner: mkSched(9), trace: &trace}, 100000)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Silent {
					t.Fatal("not silent")
				}
				fmt.Fprintf(&trace, "rounds=%d moves=%d\n", res.Rounds, res.Moves)
				return trace.String()
			}
			first, second := runOnce(), runOnce()
			if first != second {
				t.Errorf("two seeded runs diverge:\n%s\nvs\n%s", head(first), head(second))
			}
		})
	}
}
