package trees

import (
	"slices"

	"silentspan/internal/graph"
)

// HeavyPathDecomposition partitions the nodes of a rooted tree into heavy
// paths, the structure underlying the O(log n)-bit NCA labeling scheme of
// Alstrup et al. used in Section V of the paper.
//
// The heavy child of an internal node v is its child with the largest
// subtree (ties broken by smallest ID). The edge to the heavy child is
// heavy; all other child edges are light. Maximal chains of heavy edges
// form heavy paths; a node with no heavy child (a leaf) terminates its
// path. Every root-to-node path crosses at most floor(log2 n) light edges,
// because crossing a light edge at least halves the subtree size.
type HeavyPathDecomposition struct {
	tree *Tree
	// head[v] is the topmost node of v's heavy path.
	head map[graph.NodeID]graph.NodeID
	// pos[v] is v's index along its heavy path (head has pos 0).
	pos map[graph.NodeID]int
	// paths[h] is the node sequence of the heavy path headed by h.
	paths map[graph.NodeID][]graph.NodeID
	// heavyChild[v] is v's heavy child, or None for leaves.
	heavyChild map[graph.NodeID]graph.NodeID
	size       map[graph.NodeID]int
}

// Decompose computes the heavy-path decomposition of t.
func Decompose(t *Tree) *HeavyPathDecomposition {
	d := &HeavyPathDecomposition{
		tree:       t,
		head:       make(map[graph.NodeID]graph.NodeID, t.N()),
		pos:        make(map[graph.NodeID]int, t.N()),
		paths:      make(map[graph.NodeID][]graph.NodeID),
		heavyChild: make(map[graph.NodeID]graph.NodeID, t.N()),
		size:       t.SubtreeSizes(),
	}
	children := make(map[graph.NodeID][]graph.NodeID, t.N())
	for _, v := range t.Nodes() {
		p := t.Parent(v)
		if p != None {
			children[p] = append(children[p], v)
		}
	}
	for v, cs := range children {
		slices.Sort(cs)
		children[v] = cs
	}
	for _, v := range t.Nodes() {
		d.heavyChild[v] = heavyChildOf(v, children[v], d.size)
	}
	// Walk each heavy path from its head. Heads are: the root, and every
	// node that is not the heavy child of its parent.
	for _, v := range t.Nodes() {
		p := t.Parent(v)
		if p != None && d.heavyChild[p] == v {
			continue // not a head
		}
		var path []graph.NodeID
		for x := v; x != None; x = d.heavyChild[x] {
			d.head[x] = v
			d.pos[x] = len(path)
			path = append(path, x)
		}
		d.paths[v] = path
	}
	return d
}

func heavyChildOf(v graph.NodeID, children []graph.NodeID, size map[graph.NodeID]int) graph.NodeID {
	best := None
	bestSize := -1
	for _, c := range children {
		if size[c] > bestSize {
			best, bestSize = c, size[c]
		}
	}
	return best
}

// Head returns the head (topmost node) of v's heavy path.
func (d *HeavyPathDecomposition) Head(v graph.NodeID) graph.NodeID { return d.head[v] }

// Pos returns v's position along its heavy path (the head has position 0).
func (d *HeavyPathDecomposition) Pos(v graph.NodeID) int { return d.pos[v] }

// Path returns the node sequence of the heavy path headed by h.
func (d *HeavyPathDecomposition) Path(h graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, len(d.paths[h]))
	copy(out, d.paths[h])
	return out
}

// Heads returns the heads of all heavy paths in increasing ID order.
func (d *HeavyPathDecomposition) Heads() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(d.paths))
	for h := range d.paths {
		out = append(out, h)
	}
	slices.Sort(out)
	return out
}

// HeavyChild returns v's heavy child, or None if v is a leaf.
func (d *HeavyPathDecomposition) HeavyChild(v graph.NodeID) graph.NodeID { return d.heavyChild[v] }

// IsLight reports whether the edge from v to its parent is light (v is not
// its parent's heavy child). The root has no parent edge; IsLight returns
// false for it.
func (d *HeavyPathDecomposition) IsLight(v graph.NodeID) bool {
	p := d.tree.Parent(v)
	return p != None && d.heavyChild[p] != v
}

// LightDepth returns the number of light edges on the path from the root
// to v. The decomposition guarantees LightDepth(v) <= floor(log2 n).
func (d *HeavyPathDecomposition) LightDepth(v graph.NodeID) int {
	count := 0
	for x := v; x != d.tree.Root(); x = d.tree.Parent(x) {
		if d.IsLight(x) {
			count++
		}
	}
	return count
}

// SubtreeSize returns the size of the subtree rooted at v.
func (d *HeavyPathDecomposition) SubtreeSize(v graph.NodeID) int { return d.size[v] }

// OffPathWeight returns w(v) = size(v) - size(heavyChild(v)), the number
// of nodes of v's subtree not continuing along v's heavy path (size(v) for
// a leaf). These weights drive the alphabetic position codes of the NCA
// labeling: they sum to the head's subtree size along each heavy path, so
// code lengths telescope.
func (d *HeavyPathDecomposition) OffPathWeight(v graph.NodeID) int {
	hc := d.heavyChild[v]
	if hc == None {
		return d.size[v]
	}
	return d.size[v] - d.size[hc]
}
