package trees

import (
	"math/rand"
	"testing"
	"testing/quick"

	"silentspan/internal/graph"
)

// genTree derives a random connected graph and spanning tree from a seed.
func genTree(seed int64, n int) (*graph.Graph, *Tree) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(n, 0.25, rng)
	t, err := RandomSpanningTree(g, g.MinID(), rng)
	if err != nil {
		panic(err)
	}
	return g, t
}

// TestQuickSwapPreservesSpanning: for any random tree and any valid
// (e, f) pair, Swap yields a spanning tree with the same root.
func TestQuickSwapPreservesSpanning(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 5
		g, tr := genTree(seed, n)
		nte := tr.NonTreeEdges(g)
		if len(nte) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed + 1))
		e := nte[rng.Intn(len(nte))]
		ces := tr.CycleEdges(e)
		fEdge := ces[rng.Intn(len(ces))]
		nt, err := tr.Swap(e, fEdge)
		if err != nil {
			return false
		}
		return nt.IsSpanningTreeOf(g) && nt.Root() == tr.Root() &&
			nt.HasEdge(e.U, e.V) && !nt.HasEdge(fEdge.U, fEdge.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickSubtreeSizesSumToN: sizes satisfy the malleable-label
// equation s(v) = 1 + Σ children, and the root's size is n.
func TestQuickSubtreeSizesSumToN(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		_, tr := genTree(seed, n)
		sizes := tr.SubtreeSizes()
		if sizes[tr.Root()] != tr.N() {
			return false
		}
		for _, v := range tr.Nodes() {
			sum := 1
			for _, c := range tr.Children(v) {
				sum += sizes[c]
			}
			if sizes[v] != sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickNCASymmetricAndOnPath: NCA(u,v) = NCA(v,u), lies on the tree
// path of u and v, and is an ancestor of both.
func TestQuickNCAProperties(t *testing.T) {
	f := func(seed int64, nRaw, ui, vi uint8) bool {
		n := int(nRaw%25) + 2
		_, tr := genTree(seed, n)
		nodes := tr.Nodes()
		u := nodes[int(ui)%len(nodes)]
		v := nodes[int(vi)%len(nodes)]
		m := tr.NCA(u, v)
		if tr.NCA(v, u) != m {
			return false
		}
		onPath := false
		for _, x := range tr.TreePath(u, v) {
			if x == m {
				onPath = true
			}
		}
		if !onPath {
			return false
		}
		isAnc := func(a, b graph.NodeID) bool {
			for x := b; ; x = tr.Parent(x) {
				if x == a {
					return true
				}
				if x == tr.Root() {
					return a == tr.Root()
				}
			}
		}
		return isAnc(m, u) && isAnc(m, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickRerootPreservesEdges: rerooting keeps the undirected edge set
// and rerooting back restores the original parents.
func TestQuickRerootInvolution(t *testing.T) {
	f := func(seed int64, nRaw, ri uint8) bool {
		n := int(nRaw%20) + 2
		_, tr := genTree(seed, n)
		nodes := tr.Nodes()
		r := nodes[int(ri)%len(nodes)]
		rr := tr.Reroot(r)
		if rr.N() != tr.N() || rr.Root() != r {
			return false
		}
		// Same undirected edges.
		edges := map[graph.Edge]bool{}
		for _, e := range tr.Edges() {
			edges[e] = true
		}
		for _, e := range rr.Edges() {
			if !edges[e] {
				return false
			}
		}
		// Involution.
		back := rr.Reroot(tr.Root())
		for _, v := range tr.Nodes() {
			if back.Parent(v) != tr.Parent(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickFundamentalCycleEndpoints: the fundamental cycle of T + e
// starts at e.U, ends at e.V, is simple, and all consecutive pairs are
// tree edges.
func TestQuickFundamentalCycle(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 5
		g, tr := genTree(seed, n)
		nte := tr.NonTreeEdges(g)
		if len(nte) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed + 2))
		e := nte[rng.Intn(len(nte))]
		path := tr.FundamentalCycle(e)
		if path[0] != e.U || path[len(path)-1] != e.V {
			return false
		}
		seen := map[graph.NodeID]bool{}
		for i, x := range path {
			if seen[x] {
				return false
			}
			seen[x] = true
			if i+1 < len(path) && !tr.HasEdge(x, path[i+1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickHeavyPathPartition: heavy paths partition the nodes, and
// every node's head is on its own path at position 0.
func TestQuickHeavyPathPartition(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		_, tr := genTree(seed, n)
		d := Decompose(tr)
		count := 0
		for _, h := range d.Heads() {
			path := d.Path(h)
			count += len(path)
			if d.Pos(h) != 0 || d.Head(h) != h {
				return false
			}
			for i, x := range path {
				if d.Head(x) != h || d.Pos(x) != i {
					return false
				}
			}
		}
		return count == tr.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
