package trees

import (
	"slices"

	"silentspan/internal/graph"
)

// Index is a precomputed read-only view of a Tree for traversal-heavy
// consumers such as the routing coordinate labeler: children lists,
// depths, and a breadth-first order, all built in one O(n) pass. The
// Tree's own Children is O(n) per call (it scans the parent map), which
// makes naive top-down traversals quadratic; at the 10k-node scale of
// the routing experiments that is the difference between milliseconds
// and minutes.
//
// The Index snapshots the tree at construction time: it does not observe
// later AddChild calls.
type Index struct {
	t        *Tree
	children map[graph.NodeID][]graph.NodeID
	depth    map[graph.NodeID]int
	order    []graph.NodeID // breadth-first from the root
	height   int
}

// NewIndex builds the index in O(n).
func NewIndex(t *Tree) *Index {
	ix := &Index{
		t:        t,
		children: make(map[graph.NodeID][]graph.NodeID, t.N()),
		depth:    make(map[graph.NodeID]int, t.N()),
	}
	for v, p := range t.parent {
		if p != None {
			ix.children[p] = append(ix.children[p], v)
		}
	}
	for _, cs := range ix.children {
		slices.Sort(cs)
	}
	ix.order = make([]graph.NodeID, 0, t.N())
	ix.order = append(ix.order, t.root)
	ix.depth[t.root] = 0
	for i := 0; i < len(ix.order); i++ {
		v := ix.order[i]
		d := ix.depth[v] + 1
		for _, c := range ix.children[v] {
			ix.depth[c] = d
			ix.order = append(ix.order, c)
			if d > ix.height {
				ix.height = d
			}
		}
	}
	return ix
}

// Tree returns the indexed tree.
func (ix *Index) Tree() *Tree { return ix.t }

// Children returns the children of v in increasing ID order. The slice
// is owned by the index; callers must not mutate it.
func (ix *Index) Children(v graph.NodeID) []graph.NodeID { return ix.children[v] }

// Depth returns the depth of v (0 at the root).
func (ix *Index) Depth(v graph.NodeID) int { return ix.depth[v] }

// Height returns the height of the tree (0 for a single node).
func (ix *Index) Height() int { return ix.height }

// BFSOrder returns the nodes in breadth-first order from the root. The
// slice is owned by the index; callers must not mutate it.
func (ix *Index) BFSOrder() []graph.NodeID { return ix.order }

// PortOf returns the index of child within parent's sorted children list
// — the "port number" the routing coordinates are built from. ok is
// false if child is not a child of parent.
func (ix *Index) PortOf(parent, child graph.NodeID) (int, bool) {
	return slices.BinarySearch(ix.children[parent], child)
}
