// Package trees provides rooted spanning trees in the paper's distributed
// encoding (Section II-B): every node v stores the identity p(v) of its
// parent, and the root r stores p(r) = ⊥ (represented here as None). The
// package also provides the structural operations the paper's machinery is
// built on: fundamental cycles (Section III), subtree sizes (the malleable
// labeling of Section IV), and heavy-path decomposition (the NCA labeling
// of Section V).
package trees

import (
	"fmt"
	"slices"

	"silentspan/internal/graph"
)

// None is the ⊥ parent value of the root.
const None graph.NodeID = 0

// Tree is a rooted tree encoded as a parent map, the distributed encoding
// of the paper. Construct with NewTree or FromParentMap.
type Tree struct {
	root   graph.NodeID
	parent map[graph.NodeID]graph.NodeID
}

// NewTree returns the single-node tree rooted at root.
func NewTree(root graph.NodeID) *Tree {
	return &Tree{
		root:   root,
		parent: map[graph.NodeID]graph.NodeID{root: None},
	}
}

// FromParentMap validates that the given parent assignment encodes a tree
// (exactly one ⊥, no cycles, all nodes reaching the root) and returns it.
// This is the global predicate that the proof-labeling schemes of the
// paper certify locally.
func FromParentMap(parent map[graph.NodeID]graph.NodeID) (*Tree, error) {
	root := None
	for v, p := range parent {
		if p == None {
			if root != None {
				return nil, fmt.Errorf("trees: two roots: %d and %d", root, v)
			}
			root = v
		}
	}
	if root == None {
		return nil, fmt.Errorf("trees: no root (no node with parent ⊥)")
	}
	t := &Tree{root: root, parent: make(map[graph.NodeID]graph.NodeID, len(parent))}
	for v, p := range parent {
		t.parent[v] = p
	}
	// Every node must reach the root without revisiting a node.
	for v := range parent {
		seen := map[graph.NodeID]bool{}
		x := v
		for x != root {
			if seen[x] {
				return nil, fmt.Errorf("trees: cycle through node %d", v)
			}
			seen[x] = true
			p, ok := parent[x]
			if !ok {
				return nil, fmt.Errorf("trees: node %d has parent %d outside the tree", x, p)
			}
			x = p
		}
	}
	return t, nil
}

// Root returns the root of t.
func (t *Tree) Root() graph.NodeID { return t.root }

// N returns the number of nodes.
func (t *Tree) N() int { return len(t.parent) }

// Parent returns p(v), which is None for the root. It panics if v is not
// in the tree.
func (t *Tree) Parent(v graph.NodeID) graph.NodeID {
	p, ok := t.parent[v]
	if !ok {
		panic(fmt.Sprintf("trees: node %d not in tree", v))
	}
	return p
}

// Has reports whether v is a node of t.
func (t *Tree) Has(v graph.NodeID) bool {
	_, ok := t.parent[v]
	return ok
}

// Nodes returns all node identities in increasing order.
func (t *Tree) Nodes() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(t.parent))
	for v := range t.parent {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// AddChild attaches child under parent. It panics if parent is absent or
// child is already present.
func (t *Tree) AddChild(parent, child graph.NodeID) {
	if !t.Has(parent) {
		panic(fmt.Sprintf("trees: parent %d not in tree", parent))
	}
	if t.Has(child) {
		panic(fmt.Sprintf("trees: child %d already in tree", child))
	}
	t.parent[child] = parent
}

// Children returns the children of v in increasing ID order.
func (t *Tree) Children(v graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for c, p := range t.parent {
		if p == v {
			out = append(out, c)
		}
	}
	slices.Sort(out)
	return out
}

// HasEdge reports whether {u,v} is a tree edge.
func (t *Tree) HasEdge(u, v graph.NodeID) bool {
	return t.parent[u] == v || t.parent[v] == u
}

// Degree returns the degree of v in the tree (children + parent edge).
func (t *Tree) Degree(v graph.NodeID) int {
	d := len(t.Children(v))
	if t.Parent(v) != None {
		d++
	}
	return d
}

// MaxDegree returns deg(T), the maximum node degree — the quantity the
// MDST task minimizes (Section II-B).
func (t *Tree) MaxDegree() int {
	max := 0
	for v := range t.parent {
		if d := t.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// DegreeCount returns the number of nodes whose tree degree is exactly d —
// the N_T term in the MDST potential function of Section VIII.
func (t *Tree) DegreeCount(d int) int {
	count := 0
	for v := range t.parent {
		if t.Degree(v) == d {
			count++
		}
	}
	return count
}

// Depth returns the number of hops from v to the root.
func (t *Tree) Depth(v graph.NodeID) int {
	d := 0
	for x := v; x != t.root; x = t.Parent(x) {
		d++
	}
	return d
}

// Depths returns the depth of every node, computed in one pass.
func (t *Tree) Depths() map[graph.NodeID]int {
	depth := make(map[graph.NodeID]int, len(t.parent))
	var solve func(v graph.NodeID) int
	solve = func(v graph.NodeID) int {
		if v == t.root {
			return 0
		}
		if d, ok := depth[v]; ok {
			return d
		}
		d := solve(t.Parent(v)) + 1
		depth[v] = d
		return d
	}
	for v := range t.parent {
		depth[v] = solve(v)
	}
	return depth
}

// SubtreeSizes returns, for every node v, the size s(v) of the subtree
// rooted at v — the quantity certified by the size-based labeling of the
// malleable scheme (Section IV): s(v) = 1 + sum of children's sizes.
func (t *Tree) SubtreeSizes() map[graph.NodeID]int {
	size := make(map[graph.NodeID]int, len(t.parent))
	// Process in decreasing depth order.
	nodes := t.Nodes()
	depth := t.Depths()
	slices.SortFunc(nodes, func(a, b graph.NodeID) int { return depth[b] - depth[a] })
	for _, v := range nodes {
		s := 1
		for _, c := range t.Children(v) {
			s += size[c]
		}
		size[v] = s
	}
	return size
}

// PathToRoot returns the node sequence v, p(v), ..., root.
func (t *Tree) PathToRoot(v graph.NodeID) []graph.NodeID {
	var path []graph.NodeID
	for x := v; ; x = t.Parent(x) {
		path = append(path, x)
		if x == t.root {
			return path
		}
	}
}

// NCA returns the nearest common ancestor of u and v, computed
// structurally (the ground truth against which the label-based NCA of
// internal/nca is tested).
func (t *Tree) NCA(u, v graph.NodeID) graph.NodeID {
	onPath := make(map[graph.NodeID]bool)
	for _, x := range t.PathToRoot(u) {
		onPath[x] = true
	}
	for x := v; ; x = t.Parent(x) {
		if onPath[x] {
			return x
		}
		if x == t.root {
			return t.root
		}
	}
}

// TreePath returns the unique simple path from u to v in t.
func (t *Tree) TreePath(u, v graph.NodeID) []graph.NodeID {
	nca := t.NCA(u, v)
	var up []graph.NodeID
	for x := u; x != nca; x = t.Parent(x) {
		up = append(up, x)
	}
	up = append(up, nca)
	var down []graph.NodeID
	for x := v; x != nca; x = t.Parent(x) {
		down = append(down, x)
	}
	for i := len(down) - 1; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up
}

// FundamentalCycle returns the fundamental cycle of T + e for a non-tree
// edge e = {u,v}: the cycle formed by e and the tree path between its
// extremities (paper, footnote 2). The result is the node sequence of the
// tree path from e.U to e.V; the cycle closes with e itself.
func (t *Tree) FundamentalCycle(e graph.Edge) []graph.NodeID {
	if t.HasEdge(e.U, e.V) {
		panic(fmt.Sprintf("trees: edge %v is a tree edge, not a non-tree edge", e))
	}
	return t.TreePath(e.U, e.V)
}

// CycleEdges returns the tree edges on the fundamental cycle of T + e.
func (t *Tree) CycleEdges(e graph.Edge) []graph.Edge {
	path := t.FundamentalCycle(e)
	out := make([]graph.Edge, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		out = append(out, graph.Edge{U: path[i], V: path[i+1]}.Canonical())
	}
	return out
}

// Swap returns the tree T + e - f: the non-tree edge e is added and the
// tree edge f (which must lie on the fundamental cycle of T + e) is
// removed. Swap is the primitive transformation τ of Definition 4.1, the
// basis of the PLS-guided local search. The receiver is unchanged.
func (t *Tree) Swap(e, f graph.Edge) (*Tree, error) {
	onCycle := false
	for _, ce := range t.CycleEdges(e) {
		if graph.SameEndpoints(ce, f) {
			onCycle = true
			break
		}
	}
	if !onCycle {
		return nil, fmt.Errorf("trees: edge %v not on the fundamental cycle of %v", f, e)
	}
	// Build the undirected edge set of T + e - f, then re-root at t.root.
	adj := make(map[graph.NodeID][]graph.NodeID, len(t.parent))
	addEdge := func(a, b graph.NodeID) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for v, p := range t.parent {
		if p == None {
			continue
		}
		if graph.SameEndpoints(graph.Edge{U: v, V: p}, f) {
			continue
		}
		addEdge(v, p)
	}
	addEdge(e.U, e.V)
	out := &Tree{root: t.root, parent: make(map[graph.NodeID]graph.NodeID, len(t.parent))}
	out.parent[t.root] = None
	stack := []graph.NodeID{t.root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range adj[v] {
			if _, ok := out.parent[u]; !ok {
				out.parent[u] = v
				stack = append(stack, u)
			}
		}
	}
	if len(out.parent) != len(t.parent) {
		return nil, fmt.Errorf("trees: swap (%v, %v) disconnected the tree", e, f)
	}
	return out, nil
}

// Reroot returns the same undirected tree re-rooted at newRoot.
func (t *Tree) Reroot(newRoot graph.NodeID) *Tree {
	if !t.Has(newRoot) {
		panic(fmt.Sprintf("trees: node %d not in tree", newRoot))
	}
	out := &Tree{root: newRoot, parent: make(map[graph.NodeID]graph.NodeID, len(t.parent))}
	for v, p := range t.parent {
		out.parent[v] = p
	}
	// Reverse the edges on the path from newRoot to the old root.
	path := t.PathToRoot(newRoot)
	for i := 0; i+1 < len(path); i++ {
		out.parent[path[i+1]] = path[i]
	}
	out.parent[newRoot] = None
	return out
}

// ParentMap returns a copy of the parent assignment.
func (t *Tree) ParentMap() map[graph.NodeID]graph.NodeID {
	out := make(map[graph.NodeID]graph.NodeID, len(t.parent))
	for v, p := range t.parent {
		out[v] = p
	}
	return out
}

// Clone returns a deep copy of t.
func (t *Tree) Clone() *Tree {
	return &Tree{root: t.root, parent: t.ParentMap()}
}

// Edges returns the tree edges (canonically oriented, sorted).
func (t *Tree) Edges() []graph.Edge {
	out := make([]graph.Edge, 0, len(t.parent)-1)
	for v, p := range t.parent {
		if p != None {
			out = append(out, graph.Edge{U: v, V: p}.Canonical())
		}
	}
	slices.SortFunc(out, func(a, b graph.Edge) int {
		if a.U != b.U {
			return int(a.U - b.U)
		}
		return int(a.V - b.V)
	})
	return out
}

// IsSpanningTreeOf reports whether t spans exactly the nodes of g and all
// tree edges are edges of g — the legality predicate of the spanning tree
// task (Section II-A).
func (t *Tree) IsSpanningTreeOf(g *graph.Graph) bool {
	if t.N() != g.N() {
		return false
	}
	for v, p := range t.parent {
		if !g.HasNode(v) {
			return false
		}
		if p != None && !g.HasEdge(v, p) {
			return false
		}
	}
	return true
}

// Weight returns the total weight of t's edges in g. It returns an error
// if a tree edge is missing from g.
func (t *Tree) Weight(g *graph.Graph) (graph.Weight, error) {
	var total graph.Weight
	for _, e := range t.Edges() {
		w, ok := g.EdgeWeight(e.U, e.V)
		if !ok {
			return 0, fmt.Errorf("trees: tree edge %v not in graph", e)
		}
		total += w
	}
	return total, nil
}

// NonTreeEdges returns the edges of g that are not edges of t.
func (t *Tree) NonTreeEdges(g *graph.Graph) []graph.Edge {
	var out []graph.Edge
	for _, e := range g.Edges() {
		if !t.HasEdge(e.U, e.V) {
			out = append(out, e)
		}
	}
	return out
}
