package trees

import (
	"math/rand"
	"testing"

	"silentspan/internal/graph"
)

func TestIndexMatchesTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomConnected(80, 0.1, rng)
	tr, err := RandomSpanningTree(g, g.MinID(), rng)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(tr)

	depths := tr.Depths()
	height := 0
	for _, d := range depths {
		if d > height {
			height = d
		}
	}
	if ix.Height() != height {
		t.Errorf("Height() = %d, want %d", ix.Height(), height)
	}
	if len(ix.BFSOrder()) != tr.N() {
		t.Fatalf("BFSOrder covers %d of %d nodes", len(ix.BFSOrder()), tr.N())
	}
	seen := map[graph.NodeID]bool{}
	for _, v := range ix.BFSOrder() {
		if seen[v] {
			t.Fatalf("BFSOrder repeats node %d", v)
		}
		seen[v] = true
		if ix.Depth(v) != depths[v] {
			t.Errorf("Depth(%d) = %d, want %d", v, ix.Depth(v), depths[v])
		}
		want := tr.Children(v)
		got := ix.Children(v)
		if len(got) != len(want) {
			t.Fatalf("Children(%d): %v, want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Children(%d): %v, want %v", v, got, want)
			}
		}
		for port, c := range want {
			gotPort, ok := ix.PortOf(v, c)
			if !ok || gotPort != port {
				t.Errorf("PortOf(%d, %d) = %d,%v, want %d", v, c, gotPort, ok, port)
			}
		}
		if _, ok := ix.PortOf(v, v); ok {
			t.Errorf("PortOf(%d, %d) accepted a non-child", v, v)
		}
	}
	// Depths must be non-decreasing along the BFS order.
	last := 0
	for _, v := range ix.BFSOrder() {
		if d := ix.Depth(v); d < last {
			t.Fatalf("BFS order not by depth at node %d", v)
		} else {
			last = d
		}
	}
}
