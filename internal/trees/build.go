package trees

import (
	"fmt"
	"math/rand"
	"sort"

	"silentspan/internal/graph"
)

// BFSTree returns a breadth-first spanning tree of g rooted at root, with
// neighbors explored in increasing ID order (deterministic). A BFS tree
// realizes dist_T(v, root) = dist_G(v, root) for every v — the legality
// predicate of the BFS task (Section III example).
func BFSTree(g *graph.Graph, root graph.NodeID) (*Tree, error) {
	if !g.HasNode(root) {
		return nil, fmt.Errorf("trees: unknown root %d", root)
	}
	t := NewTree(root)
	queue := []graph.NodeID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if !t.Has(u) {
				t.AddChild(v, u)
				queue = append(queue, u)
			}
		}
	}
	if t.N() != g.N() {
		return nil, fmt.Errorf("trees: graph not connected: reached %d of %d nodes", t.N(), g.N())
	}
	return t, nil
}

// DFSTree returns a depth-first spanning tree of g rooted at root.
// DFS trees tend to have long paths and small degree, useful as MDST
// starting points and as adversarial inputs for BFS repair.
func DFSTree(g *graph.Graph, root graph.NodeID) (*Tree, error) {
	if !g.HasNode(root) {
		return nil, fmt.Errorf("trees: unknown root %d", root)
	}
	t := NewTree(root)
	var visit func(v graph.NodeID)
	visit = func(v graph.NodeID) {
		for _, u := range g.Neighbors(v) {
			if !t.Has(u) {
				t.AddChild(v, u)
				visit(u)
			}
		}
	}
	visit(root)
	if t.N() != g.N() {
		return nil, fmt.Errorf("trees: graph not connected: reached %d of %d nodes", t.N(), g.N())
	}
	return t, nil
}

// RandomSpanningTree returns a uniformly-ish random spanning tree of g
// (random edge order Kruskal), rooted at root. Deterministic given rng.
// Random trees are the arbitrary initial configurations from which the
// PLS-guided local search must converge.
func RandomSpanningTree(g *graph.Graph, root graph.NodeID, rng *rand.Rand) (*Tree, error) {
	if !g.HasNode(root) {
		return nil, fmt.Errorf("trees: unknown root %d", root)
	}
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	uf := graph.NewUnionFind(g.Nodes())
	adj := make(map[graph.NodeID][]graph.NodeID, g.N())
	for _, e := range edges {
		if uf.Union(e.U, e.V) {
			adj[e.U] = append(adj[e.U], e.V)
			adj[e.V] = append(adj[e.V], e.U)
		}
	}
	if uf.Sets() != 1 {
		return nil, fmt.Errorf("trees: graph not connected (%d components)", uf.Sets())
	}
	t := NewTree(root)
	stack := []graph.NodeID{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nbrs := adj[v]
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		for _, u := range nbrs {
			if !t.Has(u) {
				t.AddChild(v, u)
				stack = append(stack, u)
			}
		}
	}
	return t, nil
}

// IsBFSTree reports whether t realizes graph distances from its root:
// for all v, depth_T(v) == dist_G(v, root).
func IsBFSTree(t *Tree, g *graph.Graph) bool {
	dist, err := g.BFSDistances(t.Root())
	if err != nil {
		return false
	}
	depth := t.Depths()
	for v, d := range depth {
		if dist[v] != d {
			return false
		}
	}
	return true
}
