package trees

import (
	"math/rand"
	"testing"

	"silentspan/internal/graph"
)

func mustBFS(t *testing.T, g *graph.Graph, root graph.NodeID) *Tree {
	t.Helper()
	tr, err := BFSTree(g, root)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFromParentMapValid(t *testing.T) {
	tr, err := FromParentMap(map[graph.NodeID]graph.NodeID{
		1: None, 2: 1, 3: 1, 4: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root() != 1 || tr.N() != 4 {
		t.Fatalf("root=%d n=%d", tr.Root(), tr.N())
	}
	if tr.Parent(4) != 2 {
		t.Errorf("Parent(4) = %d", tr.Parent(4))
	}
}

func TestFromParentMapRejects(t *testing.T) {
	cases := []struct {
		name string
		pm   map[graph.NodeID]graph.NodeID
	}{
		{"no root", map[graph.NodeID]graph.NodeID{1: 2, 2: 1}},
		{"two roots", map[graph.NodeID]graph.NodeID{1: None, 2: None}},
		{"cycle", map[graph.NodeID]graph.NodeID{1: None, 2: 3, 3: 4, 4: 2}},
		{"dangling parent", map[graph.NodeID]graph.NodeID{1: None, 2: 9}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := FromParentMap(c.pm); err == nil {
				t.Errorf("FromParentMap accepted %v", c.pm)
			}
		})
	}
}

func TestChildrenDegreeDepth(t *testing.T) {
	tr, err := FromParentMap(map[graph.NodeID]graph.NodeID{
		1: None, 2: 1, 3: 1, 4: 2, 5: 2, 6: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cs := tr.Children(2); len(cs) != 2 || cs[0] != 4 || cs[1] != 5 {
		t.Errorf("Children(2) = %v", cs)
	}
	if tr.Degree(1) != 2 || tr.Degree(2) != 3 || tr.Degree(6) != 1 {
		t.Error("degrees wrong")
	}
	if tr.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d", tr.MaxDegree())
	}
	if tr.DegreeCount(3) != 1 || tr.DegreeCount(1) != 3 {
		t.Errorf("DegreeCount: %d, %d", tr.DegreeCount(3), tr.DegreeCount(1))
	}
	if tr.Depth(6) != 2 || tr.Depth(1) != 0 {
		t.Error("depths wrong")
	}
	depths := tr.Depths()
	for _, v := range tr.Nodes() {
		if depths[v] != tr.Depth(v) {
			t.Errorf("Depths()[%d] = %d, want %d", v, depths[v], tr.Depth(v))
		}
	}
}

func TestSubtreeSizes(t *testing.T) {
	tr, err := FromParentMap(map[graph.NodeID]graph.NodeID{
		1: None, 2: 1, 3: 1, 4: 2, 5: 2, 6: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sizes := tr.SubtreeSizes()
	want := map[graph.NodeID]int{1: 6, 2: 3, 3: 2, 4: 1, 5: 1, 6: 1}
	for v, s := range want {
		if sizes[v] != s {
			t.Errorf("size[%d] = %d, want %d", v, sizes[v], s)
		}
	}
}

func TestNCAAndTreePath(t *testing.T) {
	tr, err := FromParentMap(map[graph.NodeID]graph.NodeID{
		1: None, 2: 1, 3: 1, 4: 2, 5: 2, 6: 3, 7: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		u, v, want graph.NodeID
	}{
		{4, 5, 2}, {4, 7, 1}, {6, 7, 6}, {1, 7, 1}, {4, 4, 4},
	}
	for _, c := range cases {
		if got := tr.NCA(c.u, c.v); got != c.want {
			t.Errorf("NCA(%d,%d) = %d, want %d", c.u, c.v, got, c.want)
		}
	}
	path := tr.TreePath(4, 7)
	want := []graph.NodeID{4, 2, 1, 3, 6, 7}
	if len(path) != len(want) {
		t.Fatalf("TreePath(4,7) = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("TreePath(4,7) = %v, want %v", path, want)
		}
	}
}

func TestFundamentalCycleAndSwap(t *testing.T) {
	g := graph.Ring(6)
	tr := mustBFS(t, g, 1)
	// In the BFS tree of a 6-ring rooted at 1, the edge closing the cycle
	// is the unique non-tree edge.
	nte := tr.NonTreeEdges(g)
	if len(nte) != 1 {
		t.Fatalf("non-tree edges = %v", nte)
	}
	e := nte[0]
	cyc := tr.FundamentalCycle(e)
	if len(cyc) != 6 {
		t.Fatalf("fundamental cycle of ring spans %d nodes, want 6", len(cyc))
	}
	ces := tr.CycleEdges(e)
	if len(ces) != 5 {
		t.Fatalf("cycle tree-edges = %d, want 5", len(ces))
	}
	for _, f := range ces {
		nt, err := tr.Swap(e, f)
		if err != nil {
			t.Fatalf("Swap(%v,%v): %v", e, f, err)
		}
		if !nt.IsSpanningTreeOf(g) {
			t.Fatalf("Swap(%v,%v) result not a spanning tree", e, f)
		}
		if nt.Root() != tr.Root() {
			t.Error("Swap changed the root")
		}
		if nt.HasEdge(f.U, f.V) {
			t.Error("Swap kept removed edge")
		}
		if !nt.HasEdge(e.U, e.V) {
			t.Error("Swap lost added edge")
		}
	}
}

func TestSwapRejectsOffCycleEdge(t *testing.T) {
	g := graph.New()
	// Square 1-2-3-4 plus pendant 5 on 1.
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 2)
	g.MustAddEdge(3, 4, 3)
	g.MustAddEdge(4, 1, 4)
	g.MustAddEdge(1, 5, 5)
	tr := mustBFS(t, g, 1)
	nte := tr.NonTreeEdges(g)
	if len(nte) != 1 {
		t.Fatalf("non-tree edges = %v", nte)
	}
	// Pendant edge {1,5} is not on the fundamental cycle.
	if _, err := tr.Swap(nte[0], graph.Edge{U: 1, V: 5}); err == nil {
		t.Error("Swap accepted an off-cycle edge")
	}
}

func TestReroot(t *testing.T) {
	tr, err := FromParentMap(map[graph.NodeID]graph.NodeID{
		1: None, 2: 1, 3: 2, 4: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rr := tr.Reroot(4)
	if rr.Root() != 4 || rr.Parent(4) != None {
		t.Fatalf("reroot: root=%d", rr.Root())
	}
	if rr.Parent(1) != 2 || rr.Parent(2) != 3 || rr.Parent(3) != 4 {
		t.Errorf("reroot parents: %v", rr.ParentMap())
	}
	// Original unchanged.
	if tr.Root() != 1 {
		t.Error("Reroot mutated receiver")
	}
}

func TestBFSTreeAndIsBFSTree(t *testing.T) {
	g := graph.Grid(4, 5)
	tr := mustBFS(t, g, 1)
	if !tr.IsSpanningTreeOf(g) {
		t.Fatal("BFS tree not spanning")
	}
	if !IsBFSTree(tr, g) {
		t.Fatal("BFSTree output fails IsBFSTree")
	}
	// A DFS tree of a grid is generally not a BFS tree.
	dt, err := DFSTree(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if IsBFSTree(dt, g) {
		t.Error("DFS tree of a grid unexpectedly BFS")
	}
}

func TestRandomSpanningTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomConnected(30, 0.2, rng)
	for trial := 0; trial < 10; trial++ {
		tr, err := RandomSpanningTree(g, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !tr.IsSpanningTreeOf(g) {
			t.Fatal("random tree not spanning")
		}
	}
}

func TestDisconnectedErrors(t *testing.T) {
	g := graph.New()
	g.AddNode(1)
	g.AddNode(2)
	if _, err := BFSTree(g, 1); err == nil {
		t.Error("BFSTree accepted disconnected graph")
	}
	if _, err := DFSTree(g, 1); err == nil {
		t.Error("DFSTree accepted disconnected graph")
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomSpanningTree(g, 1, rng); err == nil {
		t.Error("RandomSpanningTree accepted disconnected graph")
	}
}

func TestWeightAndNonTreeEdges(t *testing.T) {
	g := graph.Ring(4)
	tr := mustBFS(t, g, 1)
	w, err := tr.Weight(g)
	if err != nil {
		t.Fatal(err)
	}
	// Ring(4) weights 1,2,3,4; BFS tree drops exactly one edge.
	total := graph.Weight(1 + 2 + 3 + 4)
	nte := tr.NonTreeEdges(g)
	if len(nte) != 1 {
		t.Fatalf("non-tree edges: %v", nte)
	}
	if w != total-nte[0].W {
		t.Errorf("tree weight %d + non-tree %d != %d", w, nte[0].W, total)
	}
}

func TestHeavyPathDecomposition(t *testing.T) {
	// Caterpillar: spine 1-2-3-4-5 with legs; spine should be one heavy path.
	g := graph.Caterpillar(5, 1)
	tr := mustBFS(t, g, 1)
	d := Decompose(tr)
	if d.Head(1) != 1 {
		t.Errorf("Head(1) = %d", d.Head(1))
	}
	// Spine nodes 1..5 share a head (the root's path follows max subtree).
	h := d.Head(5)
	for _, v := range []graph.NodeID{1, 2, 3, 4, 5} {
		if d.Head(v) != h {
			t.Errorf("spine node %d has head %d, want %d", v, d.Head(v), h)
		}
	}
	if d.Pos(1) != 0 {
		t.Errorf("Pos(root) = %d", d.Pos(1))
	}
	// Positions increase along the path.
	path := d.Path(h)
	for i, v := range path {
		if d.Pos(v) != i {
			t.Errorf("Pos(%d) = %d, want %d", v, d.Pos(v), i)
		}
	}
}

func TestLightDepthLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(150)
		g := graph.RandomConnected(n, 0.1, rng)
		tr, err := RandomSpanningTree(g, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		d := Decompose(tr)
		bound := log2floor(n)
		for _, v := range tr.Nodes() {
			if ld := d.LightDepth(v); ld > bound {
				t.Fatalf("n=%d: LightDepth(%d) = %d > floor(log2 n) = %d", n, v, ld, bound)
			}
		}
	}
}

func TestOffPathWeightsSumToHeadSize(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.RandomConnected(60, 0.1, rng)
	tr, err := RandomSpanningTree(g, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	d := Decompose(tr)
	for _, h := range d.Heads() {
		sum := 0
		for _, v := range d.Path(h) {
			sum += d.OffPathWeight(v)
		}
		if sum != d.SubtreeSize(h) {
			t.Errorf("head %d: off-path weights sum to %d, want %d", h, sum, d.SubtreeSize(h))
		}
	}
}

func log2floor(n int) int {
	l := 0
	for n > 1 {
		n /= 2
		l++
	}
	return l
}
