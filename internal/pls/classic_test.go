package pls

import (
	"math/rand"
	"testing"

	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

func TestDistanceSchemeAcceptsTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomConnected(rng.Intn(25)+4, 0.25, rng)
		tr, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			t.Fatal(err)
		}
		a := ProveDistance(tr)
		if err := a.CheckPruningConstraints(); err != nil {
			t.Fatalf("distance scheme violates pruning constraints: %v", err)
		}
		if err := a.Verify(g); err != nil {
			t.Fatalf("distance labeling rejected: %v", err)
		}
	}
}

func TestSizeSchemeAcceptsTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomConnected(rng.Intn(25)+4, 0.25, rng)
		tr, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			t.Fatal(err)
		}
		a := ProveSize(tr)
		if err := a.CheckPruningConstraints(); err != nil {
			t.Fatalf("size scheme violates pruning constraints: %v", err)
		}
		if err := a.Verify(g); err != nil {
			t.Fatalf("size labeling rejected: %v", err)
		}
	}
}

func TestDistanceSchemeRejectsCycles(t *testing.T) {
	// The distance-only labels must still reject parent cycles: d
	// strictly decreases parent-ward, impossible around a cycle.
	g := graph.Ring(5)
	parent := map[graph.NodeID]graph.NodeID{1: 2, 2: 3, 3: 4, 4: 5, 5: 1}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		labels := map[graph.NodeID]Label{}
		for v := graph.NodeID(1); v <= 5; v++ {
			labels[v] = Label{Root: graph.NodeID(rng.Intn(5) + 1), HasD: true, D: rng.Intn(5)}
		}
		a := Assignment{Parent: parent, Labels: labels}
		if err := a.Verify(g); err == nil {
			t.Fatalf("trial %d: distance labels accepted a cycle", trial)
		}
	}
}

func TestSizeSchemeRejectsCycles(t *testing.T) {
	// Size-only labels reject cycles: s strictly increases parent-ward.
	g := graph.Ring(5)
	parent := map[graph.NodeID]graph.NodeID{1: 2, 2: 3, 3: 4, 4: 5, 5: 1}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		labels := map[graph.NodeID]Label{}
		for v := graph.NodeID(1); v <= 5; v++ {
			labels[v] = Label{Root: graph.NodeID(rng.Intn(5) + 1), HasS: true, S: rng.Intn(5) + 1}
		}
		a := Assignment{Parent: parent, Labels: labels}
		if err := a.Verify(g); err == nil {
			t.Fatalf("trial %d: size labels accepted a cycle", trial)
		}
	}
}

func TestSchemeBits(t *testing.T) {
	d, s, r := SchemeBits(64)
	if d <= 0 || s <= 0 || r <= 0 {
		t.Fatal("non-positive widths")
	}
	if r <= d || r <= s {
		t.Errorf("redundant scheme (%d bits) not wider than distance (%d) / size (%d)", r, d, s)
	}
	// All are O(log n): within 4*log2(64)+8.
	bound := 4*6 + 8
	for _, b := range []int{d, s, r} {
		if b > bound {
			t.Errorf("width %d exceeds O(log n) bound %d", b, bound)
		}
	}
}
