// Package pls implements proof-labeling schemes (Section II-C of the
// paper): prover–verifier pairs in which a prover assigns each node a
// short label such that nodes can collectively verify a global property by
// inspecting only their own label and their neighbors' labels. If the
// property holds some labeling makes every node accept; if it fails, every
// labeling makes at least one node reject.
//
// The package provides the classic distance-based and size-based schemes
// for spanning trees, and the paper's novel *malleable* redundant scheme
// (Definition 4.1 and Lemma 4.1): the triple (ID, d, s) labeling that
// tolerates pruned entries (d,⊥) / (⊥,s) under constraints C1–C2, so that
// a spanning tree can be transformed into a neighboring spanning tree
// (T + e − f) without any verifier alarm along the way. That malleability
// is what makes the edge-switching protocol of Section IV loop-free and
// silent.
package pls

import (
	"fmt"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/trees"
)

// Label is the redundant spanning-tree label (ID, d, s) of Section IV:
// the root identity, the distance to the root, and the size of the node's
// subtree. Either d or s (but never both) may be pruned to ⊥.
type Label struct {
	// Root is the claimed root identity (the ID component).
	Root graph.NodeID
	// HasD reports whether the distance component is present (not ⊥).
	HasD bool
	// D is the claimed hop distance to the root.
	D int
	// HasS reports whether the size component is present (not ⊥).
	HasS bool
	// S is the claimed size of the subtree rooted at this node.
	S int
}

// FullLabel returns an unpruned label.
func FullLabel(root graph.NodeID, d, s int) Label {
	return Label{Root: root, HasD: true, D: d, HasS: true, S: s}
}

// PruneD returns the label with its distance component discarded: (⊥, s).
func (l Label) PruneD() Label {
	return Label{Root: l.Root, HasS: l.HasS, S: l.S}
}

// PruneS returns the label with its size component discarded: (d, ⊥).
func (l Label) PruneS() Label {
	return Label{Root: l.Root, HasD: l.HasD, D: l.D}
}

// Valid reports whether the label respects the structural rule of the
// scheme: pruning may never produce (⊥, ⊥).
func (l Label) Valid() bool { return l.HasD || l.HasS }

// Equal reports label equality.
func (l Label) Equal(o Label) bool { return l == o }

// EncodedBits returns the label width for an n-node network with IDs in
// {1..n}: the root ID, two presence flags, and the two bounded integers.
func (l Label) EncodedBits(n int) int {
	bits := runtime.BitsForValue(n) + 2
	if l.HasD {
		bits += runtime.BitsForValue(n)
	}
	if l.HasS {
		bits += runtime.BitsForValue(n)
	}
	return bits
}

// String renders the label in the paper's (d, s) notation.
func (l Label) String() string {
	d, s := "⊥", "⊥"
	if l.HasD {
		d = fmt.Sprintf("%d", l.D)
	}
	if l.HasS {
		s = fmt.Sprintf("%d", l.S)
	}
	return fmt.Sprintf("(root=%d, d=%s, s=%s)", l.Root, d, s)
}

// Assignment is a global configuration to verify: each node's parent
// pointer (trees.None marking the claimed root) and its label. It is the
// object the distributed algorithms expose to the verifier, and the one
// tests manipulate directly.
type Assignment struct {
	Parent map[graph.NodeID]graph.NodeID
	Labels map[graph.NodeID]Label
}

// Prove produces the legal redundant labeling of a tree: every node gets
// (root, depth, subtree size) — the prover p of the scheme.
func Prove(t *trees.Tree) Assignment {
	depths := t.Depths()
	sizes := t.SubtreeSizes()
	labels := make(map[graph.NodeID]Label, t.N())
	for _, v := range t.Nodes() {
		labels[v] = FullLabel(t.Root(), depths[v], sizes[v])
	}
	return Assignment{Parent: t.ParentMap(), Labels: labels}
}

// VerifyAt runs the verifier of Lemma 4.1 at node v: it inspects only
// v's own parent pointer and label, and the parent pointers and labels of
// v's neighbors in g. It returns nil if v accepts and an error describing
// the reason if v rejects.
//
// The checks implement the paper's verification table:
//
//	label of p(v):   (d',s')             (d',⊥)      (⊥,s')
//	v = (d,s):       distance and size   distance    size
//	v = (d,⊥):       no                  distance    no
//	v = (⊥,s):       size                no          size
//
// plus the root-identity agreement between all neighbors, the root-node
// sanity checks (ID matches, d = 0, s = n when present), and the ban on
// (⊥,⊥) labels.
func (a Assignment) VerifyAt(g *graph.Graph, v graph.NodeID) error {
	lv, ok := a.Labels[v]
	if !ok {
		return fmt.Errorf("pls: node %d has no label", v)
	}
	if !lv.Valid() {
		return fmt.Errorf("pls: node %d has the forbidden label (⊥,⊥)", v)
	}
	// Root identity must agree with every neighbor in G.
	for _, u := range g.Neighbors(v) {
		lu, ok := a.Labels[u]
		if !ok {
			return fmt.Errorf("pls: neighbor %d of %d has no label", u, v)
		}
		if lu.Root != lv.Root {
			return fmt.Errorf("pls: node %d claims root %d but neighbor %d claims root %d",
				v, lv.Root, u, lu.Root)
		}
	}
	p := a.Parent[v]
	if p == trees.None {
		// v claims to be the root.
		if lv.Root != v {
			return fmt.Errorf("pls: node %d has parent ⊥ but root label %d", v, lv.Root)
		}
		if lv.HasD && lv.D != 0 {
			return fmt.Errorf("pls: root %d has distance %d, want 0", v, lv.D)
		}
		if lv.HasS && lv.S != g.N() {
			return fmt.Errorf("pls: root %d has size %d, want n=%d", v, lv.S, g.N())
		}
		if lv.HasS {
			return a.checkSize(g, v, lv)
		}
		return nil
	}
	if !g.HasEdge(v, p) {
		return fmt.Errorf("pls: node %d points to parent %d along a non-edge", v, p)
	}
	lp, ok := a.Labels[p]
	if !ok {
		return fmt.Errorf("pls: parent %d of %d has no label", p, v)
	}
	checkDistance := func() error {
		if lv.D != lp.D+1 {
			return fmt.Errorf("pls: node %d has distance %d but parent %d has %d",
				v, lv.D, p, lp.D)
		}
		return nil
	}
	switch {
	case lv.HasD && lv.HasS: // v = (d, s)
		switch {
		case lp.HasD && lp.HasS: // parent (d', s'): distance and size
			if err := checkDistance(); err != nil {
				return err
			}
			return a.checkSize(g, v, lv)
		case lp.HasD: // parent (d', ⊥): distance
			return checkDistance()
		default: // parent (⊥, s'): size
			return a.checkSize(g, v, lv)
		}
	case lv.HasD: // v = (d, ⊥)
		switch {
		case lp.HasD && lp.HasS: // C1 violated
			return fmt.Errorf("pls: node %d pruned to (d,⊥) but parent %d is unpruned (C1)", v, p)
		case lp.HasD:
			return checkDistance()
		default:
			return fmt.Errorf("pls: node %d is (d,⊥) but parent %d is (⊥,s)", v, p)
		}
	default: // v = (⊥, s)
		switch {
		case lp.HasD && lp.HasS:
			return a.checkSize(g, v, lv)
		case lp.HasD: // C2 violated
			return fmt.Errorf("pls: node %d is (⊥,s) but parent %d is (d,⊥) (C2)", v, p)
		default:
			return a.checkSize(g, v, lv)
		}
	}
}

// checkSize verifies s_v = 1 + sum of children's sizes, children being the
// graph-neighbors of v whose parent pointer designates v. Children with a
// pruned size make the check fail: in a legal pruning, constraint C1
// forbids a child of the form (d,⊥) under a parent carrying a size.
func (a Assignment) checkSize(g *graph.Graph, v graph.NodeID, lv Label) error {
	sum := 1
	for _, u := range g.Neighbors(v) {
		if a.Parent[u] != v {
			continue
		}
		lu, ok := a.Labels[u]
		if !ok {
			return fmt.Errorf("pls: child %d of %d has no label", u, v)
		}
		if !lu.HasS {
			return fmt.Errorf("pls: node %d checks size but child %d has size ⊥", v, u)
		}
		sum += lu.S
	}
	if lv.S != sum {
		return fmt.Errorf("pls: node %d has size %d but children sum to %d", v, lv.S, sum)
	}
	return nil
}

// Verify runs the verifier at every node and returns the first rejection
// (nil means every node accepts — the configuration is certified legal).
func (a Assignment) Verify(g *graph.Graph) error {
	for _, v := range g.Nodes() {
		if err := a.VerifyAt(g, v); err != nil {
			return err
		}
	}
	return nil
}

// CheckPruningConstraints validates that a pruning of a legal labeling
// respects the structural constraints of Section IV:
//
//	C1: λ'(v) = (d,⊥) implies λ'(p(v)) = (d',⊥)
//	C2: λ'(v) = (⊥,s) implies λ'(p(v)) ∈ {(d',s'), (⊥,s')}
//
// and that no label is (⊥,⊥). Tests use it to generate legal prunings.
func (a Assignment) CheckPruningConstraints() error {
	for v, lv := range a.Labels {
		if !lv.Valid() {
			return fmt.Errorf("pls: node %d has (⊥,⊥)", v)
		}
		p := a.Parent[v]
		if p == trees.None {
			continue
		}
		lp, ok := a.Labels[p]
		if !ok {
			return fmt.Errorf("pls: parent %d of %d unlabeled", p, v)
		}
		if lv.HasD && !lv.HasS && lp.HasS {
			return fmt.Errorf("pls: C1 violated at %d", v)
		}
		if !lv.HasD && lv.HasS && lp.HasD && !lp.HasS {
			return fmt.Errorf("pls: C2 violated at %d", v)
		}
	}
	return nil
}
