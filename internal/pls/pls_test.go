package pls

import (
	"math/rand"
	"testing"

	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

func proveTree(t *testing.T, g *graph.Graph, root graph.NodeID) (*trees.Tree, Assignment) {
	t.Helper()
	tr, err := trees.BFSTree(g, root)
	if err != nil {
		t.Fatal(err)
	}
	return tr, Prove(tr)
}

func TestLegalLabelingAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gs := []*graph.Graph{
		graph.Path(12),
		graph.Ring(9),
		graph.Star(8),
		graph.Complete(6),
		graph.Grid(3, 5),
		graph.RandomConnected(30, 0.15, rng),
	}
	for _, g := range gs {
		_, a := proveTree(t, g, 1)
		if err := a.Verify(g); err != nil {
			t.Errorf("legal labeling rejected: %v", err)
		}
	}
}

func TestLabelHelpers(t *testing.T) {
	l := FullLabel(3, 2, 5)
	if !l.Valid() {
		t.Error("full label invalid")
	}
	pd := l.PruneD()
	if pd.HasD || !pd.HasS || pd.S != 5 {
		t.Errorf("PruneD = %v", pd)
	}
	ps := l.PruneS()
	if ps.HasS || !ps.HasD || ps.D != 2 {
		t.Errorf("PruneS = %v", ps)
	}
	if pd.PruneS().Valid() {
		t.Error("(⊥,⊥) claimed valid")
	}
	if l.String() == "" || pd.String() == "" {
		t.Error("empty String()")
	}
	if l.EncodedBits(16) <= pd.EncodedBits(16) {
		t.Error("pruning did not shrink encoding")
	}
}

func TestWrongDistanceRejected(t *testing.T) {
	g := graph.Path(6)
	_, a := proveTree(t, g, 1)
	l := a.Labels[4]
	l.D += 3
	a.Labels[4] = l
	if err := a.Verify(g); err == nil {
		t.Error("corrupted distance accepted")
	}
}

func TestWrongSizeRejected(t *testing.T) {
	g := graph.Grid(3, 3)
	_, a := proveTree(t, g, 1)
	l := a.Labels[5]
	l.S++
	a.Labels[5] = l
	if err := a.Verify(g); err == nil {
		t.Error("corrupted size accepted")
	}
}

func TestWrongRootIDRejected(t *testing.T) {
	g := graph.Ring(7)
	_, a := proveTree(t, g, 1)
	l := a.Labels[3]
	l.Root = 99
	a.Labels[3] = l
	if err := a.Verify(g); err == nil {
		t.Error("inconsistent root ID accepted")
	}
}

func TestRootSanityChecks(t *testing.T) {
	g := graph.Path(4)
	_, a := proveTree(t, g, 1)
	// Root claims wrong identity.
	l := a.Labels[1]
	l.Root = 2
	for v := range a.Labels {
		lv := a.Labels[v]
		lv.Root = 2
		a.Labels[v] = lv
	}
	_ = l
	if err := a.Verify(g); err == nil {
		t.Error("root with foreign ID accepted")
	}
	// Root with nonzero distance.
	_, a = proveTree(t, g, 1)
	l = a.Labels[1]
	l.D = 1
	a.Labels[1] = l
	if err := a.Verify(g); err == nil {
		t.Error("root with d != 0 accepted")
	}
	// Root with size != n.
	_, a = proveTree(t, g, 1)
	l = a.Labels[1]
	l.S = g.N() - 1
	a.Labels[1] = l
	if err := a.Verify(g); err == nil {
		t.Error("root with s != n accepted")
	}
}

func TestCycleRejectedForAnyLabeling(t *testing.T) {
	// Lemma 4.1 property (2): for ANY labeling of a non-tree H, at least
	// one node rejects. Build a parent cycle and try many labelings.
	g := graph.Ring(6)
	parent := map[graph.NodeID]graph.NodeID{1: 2, 2: 3, 3: 4, 4: 5, 5: 6, 6: 1}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		labels := make(map[graph.NodeID]Label, 6)
		for v := graph.NodeID(1); v <= 6; v++ {
			labels[v] = randomLabel(rng, 6)
		}
		a := Assignment{Parent: parent, Labels: labels}
		if err := a.Verify(g); err == nil {
			t.Fatalf("trial %d: cycle accepted with labels %v", trial, labels)
		}
	}
}

func TestForestRejectedForAnyLabeling(t *testing.T) {
	// Two "roots" in a connected graph: the root-ID agreement or the root
	// identity check must fail under any labeling.
	g := graph.Path(6)
	parent := map[graph.NodeID]graph.NodeID{
		1: trees.None, 2: 1, 3: 2, 4: trees.None, 5: 4, 6: 5,
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 500; trial++ {
		labels := make(map[graph.NodeID]Label, 6)
		for v := graph.NodeID(1); v <= 6; v++ {
			labels[v] = randomLabel(rng, 6)
		}
		a := Assignment{Parent: parent, Labels: labels}
		if err := a.Verify(g); err == nil {
			t.Fatalf("trial %d: forest accepted", trial)
		}
	}
}

func TestRandomNonTreeAlwaysRejected(t *testing.T) {
	// Randomized sweep: random parent assignments that fail to encode a
	// spanning tree must be rejected under random labelings.
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomConnected(10, 0.3, rng)
	nodes := g.Nodes()
	for trial := 0; trial < 1000; trial++ {
		parent := make(map[graph.NodeID]graph.NodeID, len(nodes))
		for _, v := range nodes {
			nbrs := g.Neighbors(v)
			if rng.Intn(4) == 0 {
				parent[v] = trees.None
			} else {
				parent[v] = nbrs[rng.Intn(len(nbrs))]
			}
		}
		if _, err := trees.FromParentMap(parent); err == nil {
			continue // happens to be a tree; skip
		}
		labels := make(map[graph.NodeID]Label, len(nodes))
		for _, v := range nodes {
			labels[v] = randomLabel(rng, len(nodes))
		}
		a := Assignment{Parent: parent, Labels: labels}
		if err := a.Verify(g); err == nil {
			t.Fatalf("trial %d: non-tree accepted (parents %v)", trial, parent)
		}
	}
}

// TestMalleabilityPrunedLabelingsAccepted is Lemma 4.1 property (1): any
// pruning of a legal redundant labeling respecting C1 and C2 is accepted
// by every node.
func TestMalleabilityPrunedLabelingsAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 200; trial++ {
		g := graph.RandomConnected(rng.Intn(20)+4, 0.25, rng)
		tr, a := proveTree(t, g, 1)
		pruneLegally(rng, tr, &a)
		if err := a.CheckPruningConstraints(); err != nil {
			t.Fatalf("generator produced illegal pruning: %v", err)
		}
		if err := a.Verify(g); err != nil {
			t.Fatalf("trial %d: legal pruning rejected: %v", trial, err)
		}
	}
}

// pruneLegally prunes the labeling while maintaining C1/C2: it prunes
// sizes along a random root-to-node path (top-down, so C1 holds), and
// prunes distances in the subtrees of a random node (so C2 holds) —
// exactly the pruning pattern of the switching protocol (Fig. 1).
func pruneLegally(rng *rand.Rand, tr *trees.Tree, a *Assignment) {
	nodes := tr.Nodes()
	// (d,⊥) along the path from the root to a random node.
	target := nodes[rng.Intn(len(nodes))]
	for _, v := range tr.PathToRoot(target) {
		a.Labels[v] = a.Labels[v].PruneS()
	}
	// (⊥,s) inside the subtree of a random node, provided its parent kept
	// a size or the node is inside an unpruned region: prune a whole
	// subtree whose root's parent is NOT (d,⊥) to respect C2.
	for attempts := 0; attempts < 10; attempts++ {
		sub := nodes[rng.Intn(len(nodes))]
		p := tr.Parent(sub)
		if p == trees.None {
			continue
		}
		if lp := a.Labels[p]; !lp.HasS {
			continue // parent is (d,⊥): pruning d at sub would break C2
		}
		var prune func(v graph.NodeID)
		prune = func(v graph.NodeID) {
			if l := a.Labels[v]; l.HasS {
				a.Labels[v] = l.PruneD()
			}
			for _, c := range tr.Children(v) {
				prune(c)
			}
		}
		prune(sub)
		break
	}
}

func TestC1C2ViolationsDetected(t *testing.T) {
	g := graph.Path(5)
	tr, a := proveTree(t, g, 1)
	_ = tr
	// C1 violation: node 3 is (d,⊥) but parent 2 keeps its size.
	a.Labels[3] = a.Labels[3].PruneS()
	if err := a.CheckPruningConstraints(); err == nil {
		t.Error("C1 violation not detected by CheckPruningConstraints")
	}
	if err := a.Verify(g); err == nil {
		t.Error("C1 violation accepted by verifier")
	}
	// C2 violation: parent (d,⊥), child (⊥,s).
	_, a = proveTree(t, g, 1)
	a.Labels[1] = a.Labels[1].PruneS()
	a.Labels[2] = a.Labels[2].PruneS()
	a.Labels[3] = a.Labels[3].PruneD()
	if err := a.CheckPruningConstraints(); err == nil {
		t.Error("C2 violation not detected")
	}
	if err := a.Verify(g); err == nil {
		t.Error("C2 violation accepted by verifier")
	}
}

func TestParentAlongNonEdgeRejected(t *testing.T) {
	g := graph.Path(4)
	_, a := proveTree(t, g, 1)
	a.Parent[4] = 1 // 4-1 is not an edge of the path
	if err := a.Verify(g); err == nil {
		t.Error("parent along non-edge accepted")
	}
}

func TestMissingLabelRejected(t *testing.T) {
	g := graph.Path(3)
	_, a := proveTree(t, g, 1)
	delete(a.Labels, 2)
	if err := a.Verify(g); err == nil {
		t.Error("missing label accepted")
	}
}

func randomLabel(rng *rand.Rand, n int) Label {
	l := Label{Root: graph.NodeID(rng.Intn(n) + 1)}
	switch rng.Intn(3) {
	case 0:
		l.HasD, l.D = true, rng.Intn(n)
		l.HasS, l.S = true, rng.Intn(n)+1
	case 1:
		l.HasD, l.D = true, rng.Intn(n)
	default:
		l.HasS, l.S = true, rng.Intn(n)+1
	}
	return l
}
