package pls

import (
	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

// The classic spanning-tree schemes of Section II-C, as the paper frames
// them: the distance-based scheme (labels (ID, d)) known "for long"
// [47], and the size-based scheme (labels (ID, s)). Both are the two
// extreme prunings of the redundant malleable labeling: every label
// (d, ⊥), respectively (⊥, s). Pruning a legal redundant labeling
// uniformly in either direction trivially satisfies constraints C1 and
// C2, so the same verifier covers all three schemes.

// ProveDistance produces the distance-based labeling of a tree:
// λ(v) = (root, d(v), ⊥).
func ProveDistance(t *trees.Tree) Assignment {
	a := Prove(t)
	for v, l := range a.Labels {
		a.Labels[v] = l.PruneS()
	}
	return a
}

// ProveSize produces the size-based labeling of a tree:
// λ(v) = (root, ⊥, s(v)).
func ProveSize(t *trees.Tree) Assignment {
	a := Prove(t)
	for v, l := range a.Labels {
		a.Labels[v] = l.PruneD()
	}
	return a
}

// SchemeBits returns the label width of each scheme for an n-node
// network — the space-complexity ledger of Section II-C: all three are
// O(log n); the redundant scheme pays one extra integer for
// malleability.
func SchemeBits(n int) (distance, size, redundant int) {
	full := FullLabel(graph.NodeID(n), n-1, n)
	return full.PruneS().EncodedBits(n), full.PruneD().EncodedBits(n), full.EncodedBits(n)
}
