package bench

import (
	"fmt"
	"sort"

	"silentspan/internal/cert"
)

// ExhaustiveTable renders a model-checking report as an experiment
// table: one row per algorithm with its observed worst case over every
// enumerated topology, daemon and initial configuration.
func ExhaustiveTable(r *cert.ExhaustiveReport) *Table {
	t := &Table{
		Title:  "CERT-MC — exhaustive model check: worst certified cost per algorithm",
		Header: []string{"algorithm", "moves", "moves-on", "rounds", "rounds-on", "reg-bits", "bits-on"},
	}
	algos := make([]string, 0, len(r.Worst))
	for a := range r.Worst {
		algos = append(algos, a)
	}
	sort.Strings(algos)
	on := func(w cert.WorstEntry) string { return w.Graph + "/" + w.Scheduler }
	for _, a := range algos {
		w := r.Worst[a]
		t.Rows = append(t.Rows, []string{a,
			itoa(w.Moves.Value), on(w.Moves),
			itoa(w.Rounds.Value), on(w.Rounds),
			itoa(w.RegisterBits.Value), on(w.RegisterBits)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("graphs=%d runs=%d exhaustive-inits=%d counterexamples=%d",
			r.Graphs, r.Runs, r.ExhaustiveInits, len(r.Counterexamples)))
	for _, ce := range r.Counterexamples {
		t.Notes = append(t.Notes, "COUNTEREXAMPLE: "+ce.String())
	}
	return t
}

// ClusterTable renders a message-passing cluster certification report:
// one row per algorithm with its worst convergence latency (ticks) and
// register width over every graph × transport fault profile.
func ClusterTable(r *cert.ClusterReport) *Table {
	t := &Table{
		Title:  "CERT-CLUSTER — message-passing transform: worst convergence per algorithm",
		Header: []string{"algorithm", "ticks", "ticks-on", "reg-bits", "bits-on"},
	}
	algos := make([]string, 0, len(r.Worst))
	for a := range r.Worst {
		algos = append(algos, a)
	}
	sort.Strings(algos)
	on := func(w cert.WorstEntry) string { return w.Graph + "/" + w.Scheduler }
	for _, a := range algos {
		w := r.Worst[a]
		t.Rows = append(t.Rows, []string{a,
			itoa(w.Ticks.Value), on(w.Ticks),
			itoa(w.RegisterBits.Value), on(w.RegisterBits)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("graphs=%d runs=%d frames=%d rejected=%d packets=%d/%d counterexamples=%d",
			r.Graphs, r.Runs, r.FramesSent, r.FramesRejected,
			r.PacketsArrived, r.PacketsSent, len(r.Counterexamples)))
	for _, ce := range r.Counterexamples {
		t.Notes = append(t.Notes, "COUNTEREXAMPLE: "+ce.String())
	}
	return t
}

// ChurnTable renders a churn certification report: one row per
// algorithm with its worst re-stabilization cost over every graph ×
// daemon × seeded join/leave/partition/heal schedule.
func ChurnTable(r *cert.ChurnReport) *Table {
	t := &Table{
		Title:  "CERT-CHURN — live-topology churn: worst re-stabilization per algorithm",
		Header: []string{"algorithm", "moves", "moves-on", "rounds", "rounds-on", "reg-bits", "bits-on"},
	}
	algos := make([]string, 0, len(r.Worst))
	for a := range r.Worst {
		algos = append(algos, a)
	}
	sort.Strings(algos)
	on := func(w cert.WorstEntry) string { return w.Graph + "/" + w.Scheduler }
	for _, a := range algos {
		w := r.Worst[a]
		t.Rows = append(t.Rows, []string{a,
			itoa(w.Moves.Value), on(w.Moves),
			itoa(w.Rounds.Value), on(w.Rounds),
			itoa(w.RegisterBits.Value), on(w.RegisterBits)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("graphs=%d runs=%d mutations=%d cohort=%d/%d counterexamples=%d",
			r.Graphs, r.Runs, r.Mutations, r.PacketsArrived, r.PacketsSent, len(r.Counterexamples)))
	for _, ce := range r.Counterexamples {
		t.Notes = append(t.Notes, "COUNTEREXAMPLE: "+ce.String())
	}
	return t
}

// ChaosTable renders a chaos certificate: one row per fault burst plus
// a worst-case summary row.
func ChaosTable(c *cert.Certificate) *Table {
	t := &Table{
		Title: fmt.Sprintf("CERT-CHAOS — %s substrate, n=%d m=%d, daemon %s, seed %d",
			c.Config.Substrate, c.N, c.M, c.Config.Scheduler, c.Config.Seed),
		Header: []string{"burst", "faults", "rec-moves", "rec-rounds", "windows", "delivered", "dropped", "stretch", "reg-bits"},
	}
	for _, b := range c.Bursts {
		t.Rows = append(t.Rows, []string{
			itoa(b.Burst),
			fmt.Sprintf("%dc+%dw+%dr", b.Corrupted, b.Wiped, b.Reweighed),
			itoa(b.RecoveryMoves), itoa(b.RecoveryRounds), itoa(b.Windows),
			fmt.Sprintf("%d/%d", b.Delivered, c.Config.InFlight),
			itoa(b.Dropped),
			fmt.Sprintf("%.3f", b.PostStretch),
			itoa(b.RegisterBits),
		})
	}
	t.Rows = append(t.Rows, []string{
		"worst", "-",
		itoa(c.Worst.RecoveryMoves), itoa(c.Worst.RecoveryRounds), itoa(c.Worst.Windows),
		fmt.Sprintf("min-rate %.3f", c.Worst.MinDelivery),
		itoa(c.Worst.Dropped),
		fmt.Sprintf("%.3f", c.Worst.Stretch),
		itoa(c.Worst.RegisterBits),
	})
	t.Notes = append(t.Notes,
		fmt.Sprintf("algorithm=%s initial-stabilization=%d moves/%d rounds register-bound=%d final-silent=%v final-spec-valid=%v",
			c.Algorithm, c.InitialMoves, c.InitialRounds, c.RegisterBound, c.FinalSilent, c.FinalSpecValid))
	return t
}
