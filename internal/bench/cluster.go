package bench

import (
	"fmt"
	"math/rand"
	"time"

	"silentspan/internal/cluster"
	"silentspan/internal/graph"
	"silentspan/internal/routing"
	"silentspan/internal/spanning"
	"silentspan/internal/trees"
)

// E13Cluster is the message-passing cluster scale table: the full
// serving stack — goroutine-per-node actors exchanging heartbeat
// frames over the in-process transport, convergence to the silent
// tree, then a routed packet batch carried hop-by-hop as data frames
// through the same transport. It reports convergence latency in ticks
// (the round yardstick of the Devismes–Johnen BFS analysis: from the
// benign self-root start the substrate needs O(diameter) heartbeat
// exchanges) and heartbeat throughput, so the table doubles as the
// regression guard for the wire codec's per-frame cost.
func E13Cluster(ns []int, packets int, seed int64) (*Table, error) {
	tb := &Table{
		Title:  "E13: message-passing cluster — convergence latency + heartbeat throughput",
		Header: []string{"n", "m", "ticks", "stab-ms", "frames", "MB", "kframe/s", "pkts", "delivered", "kpkt/s", "mean-hops"},
		Notes: []string{
			"substrate: spanning.Algorithm from the post-reset configuration, channel transport, lockstep ticks",
			"packets ride the transport as checksummed data frames, one hop per tick, greedy over the live labeling",
		},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		g := graph.RandomConnected(n, 8/float64(n), rng)
		// E13 pins the classic wire behavior — full-state frame every
		// tick — so it stays the fixed baseline the delta protocol (E14)
		// is measured against.
		cl, err := cluster.New(g, spanning.Algorithm{}, cluster.NewChanTransport(),
			cluster.Config{DisableDelta: true, DisableBackoff: true})
		if err != nil {
			return nil, fmt.Errorf("E13 n=%d: %w", n, err)
		}
		gw := cluster.NewGateway(cl)
		for _, v := range g.Nodes() {
			cl.SetState(v, spanning.State{Root: v, Parent: trees.None, Dist: 0})
		}

		start := time.Now()
		ticks, quiet := cl.RunUntilQuiet(32*n, 4)
		stab := time.Since(start)
		if !quiet {
			cl.Stop()
			return nil, fmt.Errorf("E13 n=%d: no quiet within %d ticks", n, 32*n)
		}
		st := cl.Stats()
		if !gw.Labeling().Complete() {
			cl.Stop()
			return nil, fmt.Errorf("E13 n=%d: labeling incomplete after quiet", n)
		}

		pairs := routing.UniformPairs(g.Nodes(), packets, rng)
		start = time.Now()
		gw.Launch(pairs)
		for i := 0; i < 8*n && gw.Outstanding() > 0; i++ {
			cl.Tick()
		}
		routeDur := time.Since(start)
		gws := gw.Stats()
		cl.Stop()
		if gws.DeliveryRate() != 1 {
			return nil, fmt.Errorf("E13 n=%d: delivery %.4f on a clean transport", n, gws.DeliveryRate())
		}

		tb.Rows = append(tb.Rows, []string{
			itoa(n), itoa(g.M()), itoa(ticks),
			itoa(int(stab.Milliseconds())),
			itoa(st.FramesSent),
			fmt.Sprintf("%.1f", float64(st.BytesSent)/(1<<20)),
			fmt.Sprintf("%.0f", float64(st.FramesSent)/stab.Seconds()/1000),
			itoa(gws.Launched),
			fmt.Sprintf("%.2f%%", 100*gws.DeliveryRate()),
			fmt.Sprintf("%.0f", float64(gws.Launched)/routeDur.Seconds()/1000),
			fmt.Sprintf("%.1f", gws.MeanHops()),
		})
	}
	return tb, nil
}

// e14Run is one E14 episode measurement.
type e14Run struct {
	ticks         int     // RunUntilQuiet ticks (convergence + quiet window)
	frames        int     // episode frames: converge + idle window + routed batch
	bytes         int     // episode bytes, same scope
	idleFrPerTick float64 // frames per tick per node over the idle window
	delivered     float64 // post-quiet batch delivery rate
}

// e14One runs one E14 episode: converge the spanning substrate from the
// benign self-root start, sit idle for `idle` ticks, then serve a
// routed batch over the quiet cluster. Legacy mode pins the classic
// full-state-every-tick wire behavior; otherwise the delta protocol and
// keep-alive back-off run at their defaults.
func e14One(n, packets, idle int, seed int64, legacy bool) (e14Run, error) {
	var r e14Run
	rng := rand.New(rand.NewSource(seed + int64(n)))
	g := graph.RandomConnected(n, 8/float64(n), rng)
	cfg := cluster.Config{StalenessTTL: 128}
	if legacy {
		cfg.DisableDelta, cfg.DisableBackoff = true, true
	}
	cl, err := cluster.New(g, spanning.Algorithm{}, cluster.NewChanTransport(), cfg)
	if err != nil {
		return r, err
	}
	defer cl.Stop()
	gw := cluster.NewGateway(cl)
	for _, v := range g.Nodes() {
		cl.SetState(v, spanning.State{Root: v, Parent: trees.None, Dist: 0})
	}
	ticks, quiet := cl.RunUntilQuiet(32*n, 4)
	if !quiet {
		return r, fmt.Errorf("no quiet within %d ticks", 32*n)
	}
	r.ticks = ticks
	if !gw.Labeling().Complete() {
		return r, fmt.Errorf("labeling incomplete after quiet")
	}

	// The idle window: the converged cluster doing nothing but staying
	// alive — the regime the delta keep-alives and the cadence back-off
	// are for.
	idleStart := cl.Stats()
	for i := 0; i < idle; i++ {
		cl.Tick()
	}
	r.idleFrPerTick = float64(cl.Stats().FramesSent-idleStart.FramesSent) / float64(idle) / float64(n)

	// A routed batch over the quiet cluster: the delta frames must not
	// have cost any delivery fidelity.
	gw.Launch(routing.UniformPairs(g.Nodes(), packets, rng))
	for i := 0; i < 8*n && gw.Outstanding() > 0; i++ {
		cl.Tick()
	}
	gws := gw.Stats()
	r.delivered = gws.DeliveryRate()
	st := cl.Stats()
	r.frames, r.bytes = st.FramesSent, st.BytesSent
	return r, nil
}

// E14DeltaWire measures what the delta heartbeats and the
// silence-aware cadence buy on the wire: for each n, one full episode
// (converge → idle window → routed batch) under the classic
// full-state-every-tick framing and one under the delta protocol, over
// identical graphs and packet workloads. The table reports the
// episode's frame and byte totals, the idle-window frame rate — the
// cost of merely existing once converged — and the byte reduction
// factor.
func E14DeltaWire(ns []int, packets, idle int, seed int64) (*Table, error) {
	tb := &Table{
		Title:  "E14: delta heartbeats + cadence back-off — wire cost of the quiet cluster",
		Header: []string{"n", "mode", "ticks", "frames", "MB", "idle-fr/t/n", "delivered", "MB-x"},
		Notes: []string{
			"episode = converge from self-root start + idle window + routed batch over the quiet cluster",
			fmt.Sprintf("idle window = %d ticks; StalenessTTL=128 both modes; legacy pins full-state frames every tick", idle),
			"idle-fr/t/n: frames per tick per node while idle (legacy ≈ mean degree; delta ≈ degree/backoff-cap)",
		},
	}
	for _, n := range ns {
		legacy, err := e14One(n, packets, idle, seed, true)
		if err != nil {
			return nil, fmt.Errorf("E14 n=%d legacy: %w", n, err)
		}
		delta, err := e14One(n, packets, idle, seed, false)
		if err != nil {
			return nil, fmt.Errorf("E14 n=%d delta: %w", n, err)
		}
		for _, row := range []struct {
			mode string
			r    e14Run
			x    string
		}{
			{"legacy", legacy, "1.0"},
			{"delta", delta, fmt.Sprintf("%.1f", float64(legacy.bytes)/float64(delta.bytes))},
		} {
			tb.Rows = append(tb.Rows, []string{
				itoa(n), row.mode, itoa(row.r.ticks),
				itoa(row.r.frames),
				fmt.Sprintf("%.1f", float64(row.r.bytes)/(1<<20)),
				fmt.Sprintf("%.2f", row.r.idleFrPerTick),
				fmt.Sprintf("%.2f%%", 100*row.r.delivered),
				row.x,
			})
		}
	}
	return tb, nil
}

// e15Cluster builds and converges one E15 measurement cluster: the
// spanning substrate from the self-root start, back-off disabled so a
// quiet cluster still broadcasts at the pinned base cadence — constant
// frame pressure, which is exactly what the flight-recorder hooks sit
// on.
func e15Cluster(g *graph.Graph, traceCap int) (*cluster.Cluster, error) {
	cl, err := cluster.New(g, spanning.Algorithm{}, cluster.NewChanTransport(),
		cluster.Config{DisableBackoff: true})
	if err != nil {
		return nil, err
	}
	if traceCap > 0 {
		cl.EnableFlightRecorder(traceCap)
	}
	for _, v := range g.Nodes() {
		cl.SetState(v, spanning.State{Root: v, Parent: trees.None, Dist: 0})
	}
	if _, quiet := cl.RunUntilQuiet(32*g.N(), 4); !quiet {
		cl.Stop()
		return nil, fmt.Errorf("no quiet within %d ticks", 32*g.N())
	}
	return cl, nil
}

// e15Best times `reps` busy windows of `window` ticks and returns the
// best frame throughput (frames/s) — best-of aggregation discards GC
// and scheduler noise, the standard trick for tight A/B deltas.
func e15Best(cl *cluster.Cluster, window, reps int) (float64, int) {
	best := 0.0
	frames := 0
	for r := 0; r < reps; r++ {
		before := cl.Stats().FramesSent
		start := time.Now()
		for i := 0; i < window; i++ {
			cl.Tick()
		}
		dur := time.Since(start)
		frames = cl.Stats().FramesSent - before
		if thr := float64(frames) / dur.Seconds(); thr > best {
			best = thr
		}
	}
	return best, frames
}

// E15TraceOverhead measures what the flight recorder costs on the
// frame hot path: identical busy windows (back-off pinned off, so
// every node broadcasts at the base cadence) over one cluster with the
// recorder disarmed and one with it armed, interleaved rep-by-rep so
// both modes share any machine-level drift. The disarmed hooks are one
// atomic nil load per event site; their cost against the pre-recorder
// wire is bounded by the A/A row — the off cluster raced against
// itself on alternating reps, so any systematic hook cost would have
// to show above that noise floor.
func E15TraceOverhead(n, window, reps int, seed int64) (*Table, error) {
	tb := &Table{
		Title:  "E15: flight recorder — frame throughput, tracing off vs on",
		Header: []string{"n", "mode", "win-frames", "kframe/s", "ovh%"},
		Notes: []string{
			fmt.Sprintf("busy window = %d ticks at the pinned base cadence (DisableBackoff), best of %d interleaved reps", window, reps),
			"off = recorder disarmed (hooks are one atomic nil load per event site); on = 8192-event rings armed",
			"off-A/A = the off cluster timed against itself on alternating reps: the noise floor any disabled-path cost must exceed",
		},
	}
	rng := rand.New(rand.NewSource(seed + int64(n)))
	g := graph.RandomConnected(n, 8/float64(n), rng)
	off, err := e15Cluster(g, 0)
	if err != nil {
		return nil, fmt.Errorf("E15 n=%d off: %w", n, err)
	}
	defer off.Stop()
	on, err := e15Cluster(g.Clone(), 8192)
	if err != nil {
		return nil, fmt.Errorf("E15 n=%d on: %w", n, err)
	}
	defer on.Stop()

	// One untimed warm-up window per cluster: the first window pays for
	// cold caches and lazily grown runtime structures, which would
	// otherwise skew whichever series runs first.
	e15Best(off, window, 1)
	e15Best(on, window, 1)

	// Interleave: off-A, off-B, on — rep by rep — so all three series
	// sample the same thermal/GC environment, and alternate the A/B
	// order across reps so a monotone drift (frequency scaling, cache
	// warm-up tail) cannot systematically favor whichever of the two
	// off series runs later within a rep.
	bestA, bestB, bestOn := 0.0, 0.0, 0.0
	framesOff, framesOn := 0, 0
	for r := 0; r < reps; r++ {
		first, second := &bestA, &bestB
		if r%2 == 1 {
			first, second = &bestB, &bestA
		}
		thr, fr := e15Best(off, window, 1)
		*first, framesOff = max(*first, thr), fr
		thr, _ = e15Best(off, window, 1)
		*second = max(*second, thr)
		thr, fr = e15Best(on, window, 1)
		bestOn, framesOn = max(bestOn, thr), fr
	}
	ovh := func(base, v float64) string {
		return fmt.Sprintf("%.2f", 100*(base-v)/base)
	}
	tb.Rows = append(tb.Rows,
		[]string{itoa(n), "off", itoa(framesOff), fmt.Sprintf("%.0f", bestA/1000), "0.00"},
		[]string{itoa(n), "off-A/A", itoa(framesOff), fmt.Sprintf("%.0f", bestB/1000), ovh(bestA, bestB)},
		[]string{itoa(n), "on", itoa(framesOn), fmt.Sprintf("%.0f", bestOn/1000), ovh(bestA, bestOn)},
	)
	return tb, nil
}
