package bench

import (
	"fmt"
	"math/rand"
	"time"

	"silentspan/internal/cluster"
	"silentspan/internal/graph"
	"silentspan/internal/routing"
	"silentspan/internal/spanning"
	"silentspan/internal/trees"
)

// E13Cluster is the message-passing cluster scale table: the full
// serving stack — goroutine-per-node actors exchanging heartbeat
// frames over the in-process transport, convergence to the silent
// tree, then a routed packet batch carried hop-by-hop as data frames
// through the same transport. It reports convergence latency in ticks
// (the round yardstick of the Devismes–Johnen BFS analysis: from the
// benign self-root start the substrate needs O(diameter) heartbeat
// exchanges) and heartbeat throughput, so the table doubles as the
// regression guard for the wire codec's per-frame cost.
func E13Cluster(ns []int, packets int, seed int64) (*Table, error) {
	tb := &Table{
		Title:  "E13: message-passing cluster — convergence latency + heartbeat throughput",
		Header: []string{"n", "m", "ticks", "stab-ms", "frames", "MB", "kframe/s", "pkts", "delivered", "kpkt/s", "mean-hops"},
		Notes: []string{
			"substrate: spanning.Algorithm from the post-reset configuration, channel transport, lockstep ticks",
			"packets ride the transport as checksummed data frames, one hop per tick, greedy over the live labeling",
		},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		g := graph.RandomConnected(n, 8/float64(n), rng)
		cl, err := cluster.New(g, spanning.Algorithm{}, cluster.NewChanTransport(), cluster.Config{})
		if err != nil {
			return nil, fmt.Errorf("E13 n=%d: %w", n, err)
		}
		gw := cluster.NewGateway(cl)
		for _, v := range g.Nodes() {
			cl.SetState(v, spanning.State{Root: v, Parent: trees.None, Dist: 0})
		}

		start := time.Now()
		ticks, quiet := cl.RunUntilQuiet(32*n, 4)
		stab := time.Since(start)
		if !quiet {
			cl.Stop()
			return nil, fmt.Errorf("E13 n=%d: no quiet within %d ticks", n, 32*n)
		}
		st := cl.Stats()
		if !gw.Labeling().Complete() {
			cl.Stop()
			return nil, fmt.Errorf("E13 n=%d: labeling incomplete after quiet", n)
		}

		pairs := routing.UniformPairs(g.Nodes(), packets, rng)
		start = time.Now()
		gw.Launch(pairs)
		for i := 0; i < 8*n && gw.Outstanding() > 0; i++ {
			cl.Tick()
		}
		routeDur := time.Since(start)
		gws := gw.Stats()
		cl.Stop()
		if gws.DeliveryRate() != 1 {
			return nil, fmt.Errorf("E13 n=%d: delivery %.4f on a clean transport", n, gws.DeliveryRate())
		}

		tb.Rows = append(tb.Rows, []string{
			itoa(n), itoa(g.M()), itoa(ticks),
			itoa(int(stab.Milliseconds())),
			itoa(st.FramesSent),
			fmt.Sprintf("%.1f", float64(st.BytesSent)/(1<<20)),
			fmt.Sprintf("%.0f", float64(st.FramesSent)/stab.Seconds()/1000),
			itoa(gws.Launched),
			fmt.Sprintf("%.2f%%", 100*gws.DeliveryRate()),
			fmt.Sprintf("%.0f", float64(gws.Launched)/routeDur.Seconds()/1000),
			fmt.Sprintf("%.1f", gws.MeanHops()),
		})
	}
	return tb, nil
}
