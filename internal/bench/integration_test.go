package bench

import (
	"math/rand"
	"testing"
	"time"

	"silentspan/internal/core"
	"silentspan/internal/graph"
	"silentspan/internal/mdst"
	"silentspan/internal/mst"
	"silentspan/internal/runtime"
	"silentspan/internal/switching"
)

// Integration sweeps: the full distributed pipelines across the graph
// family zoo, with invariants checked end to end.

func familyZoo(seed int64) map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return map[string]*graph.Graph{
		"ring":        graph.Ring(12),
		"grid":        graph.Grid(3, 4),
		"complete":    graph.Complete(8),
		"caterpillar": graph.Caterpillar(5, 1),
		"lollipop":    graph.Lollipop(5, 5),
		"random":      graph.RandomConnected(14, 0.25, rng),
		"geometric":   graph.RandomGeometric(12, 0.4, rng),
	}
}

func TestIntegrationMSTAcrossFamilies(t *testing.T) {
	for name, g := range familyZoo(1) {
		t.Run(name, func(t *testing.T) {
			final, trace, err := core.RunDistributed(g, mst.Task{}, core.EngineOptions{
				Monitor: true,
				Rng:     rand.New(rand.NewSource(2)),
			})
			if err != nil {
				t.Fatal(err)
			}
			exact, err := mst.IsMST(final, g)
			if err != nil {
				t.Fatal(err)
			}
			if !exact {
				t.Fatal("not the MST")
			}
			// The final labels certify minimality at every node.
			tr, err := mst.ComputeTrace(g, final)
			if err != nil {
				t.Fatal(err)
			}
			if err := mst.FromTrace(final, tr).Verify(g); err != nil {
				t.Fatalf("certificate rejected: %v", err)
			}
			if trace.Rounds <= 0 {
				t.Error("no rounds")
			}
		})
	}
}

func TestIntegrationMDSTAcrossFamilies(t *testing.T) {
	for name, g := range familyZoo(3) {
		t.Run(name, func(t *testing.T) {
			final, _, err := core.RunDistributed(g, mdst.Task{}, core.EngineOptions{
				Monitor: true,
				Rng:     rand.New(rand.NewSource(4)),
			})
			if err != nil {
				t.Fatal(err)
			}
			fr, err := mdst.IsFRTree(g, final)
			if err != nil {
				t.Fatal(err)
			}
			if !fr {
				t.Fatal("fixpoint not an FR-tree")
			}
			m, err := mdst.Mark(g, final)
			if err != nil {
				t.Fatal(err)
			}
			a, err := mdst.FromMarking(g, final, m)
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Verify(g); err != nil {
				t.Fatalf("certificate rejected: %v", err)
			}
			if g.M() <= 24 {
				opt, err := mdst.OptimalDegree(g)
				if err == nil && final.MaxDegree() > opt+1 {
					t.Fatalf("degree %d > OPT+1 = %d", final.MaxDegree(), opt+1)
				}
			}
		})
	}
}

func TestIntegrationConcurrentSwitching(t *testing.T) {
	// The switching rule system under real goroutine concurrency (one
	// goroutine per node): must reach a legal silent configuration; the
	// race detector guards the runtime.
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomConnected(12, 0.3, rng)
	net, err := runtime.NewNetwork(g, switching.Algorithm{})
	if err != nil {
		t.Fatal(err)
	}
	net.InitArbitrary(rng)
	res, err := runtime.RunConcurrent(net, 5_000_000, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Silent {
		t.Fatal("concurrent run not silent")
	}
	tr, err := switching.ExtractTree(net, switching.RegOf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := switching.ToAssignment(net, switching.RegOf)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(g); err != nil {
		t.Fatalf("verifier rejects: %v", err)
	}
	if tr.Root() != g.MinID() {
		t.Errorf("root %d, want %d", tr.Root(), g.MinID())
	}
}

func TestIntegrationMSTFaultRecoveryEndToEnd(t *testing.T) {
	// Stabilize MST, corrupt the substrate mid-flight, re-run the engine
	// pipeline from the corrupted state: it must converge to the MST
	// again (self-stabilization at the system level).
	rng := rand.New(rand.NewSource(6))
	g := graph.RandomConnected(12, 0.3, rng)
	final, _, err := core.RunDistributed(g, mst.Task{}, core.EngineOptions{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	// Perturb: re-run from a fresh arbitrary configuration (the engine's
	// contract covers any start, which subsumes any corruption).
	again, _, err := core.RunDistributed(g, mst.Task{}, core.EngineOptions{
		Rng: rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	w1, err := final.Weight(g)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := again.Weight(g)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Errorf("two stabilizations disagree on MST weight: %d vs %d", w1, w2)
	}
}
