// Package bench implements the experiment harness regenerating every
// claim-level "figure" of the paper (see DESIGN.md §5): each E-function
// runs one experiment sweep and returns a printable table. cmd/ssbench
// prints them all; the repository-root benchmarks wrap them for
// `go test -bench`.
package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"time"

	"silentspan/internal/bfs"
	"silentspan/internal/core"
	"silentspan/internal/graph"
	"silentspan/internal/mdst"
	"silentspan/internal/mst"
	"silentspan/internal/nca"
	"silentspan/internal/runtime"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

// Table is one experiment's result, printable as an aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func itoa(v int) string  { return fmt.Sprintf("%d", v) }
func btoa(b bool) string { return fmt.Sprintf("%v", b) }
func log2(n int) float64 { return math.Log2(float64(n)) }
func ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", a/b)
}

// E1Switch measures the loop-free edge switch (Fig. 1, Lemma 4.1,
// Section IV): rounds and moves per local switch on rings (worst-case
// cycle length), with the loop-freedom and malleability monitors armed —
// a monitor violation aborts the run, so completed rows certify zero
// alarms and a spanning tree after every step.
func E1Switch(ns []int, seed int64) (*Table, error) {
	t := &Table{
		Title:  "E1: loop-free malleable switch (Section IV, Fig. 1)",
		Header: []string{"n", "rounds/switch", "moves/switch", "alarms", "tree-every-step"},
		Notes:  []string{"claim: O(n) rounds per switch, zero verifier alarms, loop-free"},
	}
	for _, n := range ns {
		g := graph.Ring(n)
		tr, err := trees.BFSTree(g, 1)
		if err != nil {
			return nil, err
		}
		e := tr.NonTreeEdges(g)[0]
		v, target := e.U, e.V
		if tr.Parent(v) == trees.None {
			v, target = e.V, e.U
		}
		net, err := runtime.NewNetwork(g, switching.Algorithm{})
		if err != nil {
			return nil, err
		}
		if err := switching.InitFromTree(net, tr); err != nil {
			return nil, err
		}
		net.AddMonitor(switching.LoopFreeMonitor(switching.RegOf))
		net.AddMonitor(switching.MalleabilityMonitor(switching.RegOf))
		if err := switching.InjectSwitch(net, v, target, switching.RegOf); err != nil {
			return nil, err
		}
		res, err := net.Run(runtime.Synchronous(), 5_000_000)
		if err != nil {
			return nil, fmt.Errorf("E1 n=%d: %w", n, err)
		}
		if !res.Silent {
			return nil, fmt.Errorf("E1 n=%d: not silent", n)
		}
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(res.Rounds), itoa(res.Moves), "0", "true",
		})
	}
	return t, nil
}

// E2NCA measures the NCA labeling (Section V, Lemma 5.1): maximum label
// bits against c·log2(n), construction rounds against O(n), and checks
// the label-only nca() and cycle-membership predicates against
// structural ground truth.
func E2NCA(ns []int, seed int64) (*Table, error) {
	t := &Table{
		Title:  "E2: NCA labeling (Section V, Lemma 5.1)",
		Header: []string{"n", "max-label-bits", "bits/log2(n)", "constr-rounds", "queries-ok", "verifier-ok"},
		Notes:  []string{"claim: O(log n)-bit labels, O(n)-round certified construction"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range ns {
		g := graph.RandomConnected(n, 0.1, rng)
		tr, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			return nil, err
		}
		lb, err := nca.Build(tr)
		if err != nil {
			return nil, err
		}
		ok := true
		nodes := tr.Nodes()
		for q := 0; q < 200; q++ {
			u := nodes[rng.Intn(len(nodes))]
			v := nodes[rng.Intn(len(nodes))]
			m, err := nca.NCA(lb.Label(u), lb.Label(v))
			if err != nil {
				return nil, err
			}
			if got, found := lb.NodeOf(m); !found || got != tr.NCA(u, v) {
				ok = false
				break
			}
		}
		a := nca.FromLabeling(lb)
		verr := a.Verify(g)
		t.Rows = append(t.Rows, []string{
			itoa(n),
			itoa(lb.MaxLabelBits()),
			ratio(float64(lb.MaxLabelBits()), log2(n)),
			itoa(lb.ConstructionRounds()),
			btoa(ok),
			btoa(verr == nil),
		})
	}
	return t, nil
}

// E3BFS measures the always-on PLS-guided BFS (Section III example,
// Theorem 3.1): stabilization rounds and register bits from arbitrary
// initial configurations, exactness of the resulting distances, and the
// ad hoc substrate baseline for contrast.
func E3BFS(ns []int, seed int64) (*Table, error) {
	t := &Table{
		Title:  "E3: PLS-guided BFS (Section III, Theorem 3.1)",
		Header: []string{"n", "rounds", "moves", "reg-bits", "bits/log2(n)", "exact-BFS", "adhoc-rounds"},
		Notes:  []string{"claim: poly(n) rounds, O(log n)-bit registers, silent; ad hoc = plain substrate [25]-style"},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		g := graph.RandomConnected(n, 2.5/float64(n), rng)
		net, err := runtime.NewNetwork(g, bfs.Algorithm{})
		if err != nil {
			return nil, err
		}
		net.InitArbitrary(rng)
		res, err := net.Run(runtime.Central(), 10_000_000)
		if err != nil {
			return nil, fmt.Errorf("E3 n=%d: %w", n, err)
		}
		if !res.Silent {
			return nil, fmt.Errorf("E3 n=%d: not silent", n)
		}
		tr, err := switching.ExtractTree(net, switching.RegOf)
		if err != nil {
			return nil, err
		}
		// Ad hoc baseline: spanning substrate alone.
		netB, err := runtime.NewNetwork(g, spanningAlgorithm())
		if err != nil {
			return nil, err
		}
		netB.InitArbitrary(rand.New(rand.NewSource(seed + int64(n))))
		resB, err := netB.Run(runtime.Central(), 10_000_000)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(res.Rounds), itoa(res.Moves),
			itoa(res.MaxRegisterBits),
			ratio(float64(res.MaxRegisterBits), log2(n)),
			btoa(trees.IsBFSTree(tr, g)),
			itoa(resB.Rounds),
		})
	}
	return t, nil
}

// E4MST measures the MST construction (Section VI, Corollary 6.1, Fig.
// 2): exactness against Kruskal, Borůvka-trace depth k against
// ceil(log2 n), label bits against log²(n), accounted rounds, and the
// non-silent distributed Borůvka baseline.
func E4MST(ns []int, seed int64) (*Table, error) {
	t := &Table{
		Title:  "E4: silent self-stabilizing MST (Section VI, Cor. 6.1, Fig. 2)",
		Header: []string{"n", "rounds", "improvements", "label-bits", "bits/log2²(n)", "k", "ceil(log2 n)", "exact-MST", "boruvka-rounds", "silent"},
		Notes:  []string{"claim: poly(n) rounds, Θ(log² n)-bit labels (optimal), k ≤ ceil(log2 n), exact MST, silent"},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		g := graph.RandomConnected(n, 3.0/float64(n), rng)
		final, trace, err := core.RunDistributed(g, mst.Task{}, core.EngineOptions{Rng: rng})
		if err != nil {
			return nil, fmt.Errorf("E4 n=%d: %w", n, err)
		}
		exact, err := mst.IsMST(final, g)
		if err != nil {
			return nil, err
		}
		tr2, err := mst.ComputeTrace(g, final)
		if err != nil {
			return nil, err
		}
		base, err := mst.DistributedBoruvka(g, g.MinID())
		if err != nil {
			return nil, err
		}
		l2 := log2(n)
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(trace.Rounds), itoa(trace.Improvements),
			itoa(trace.MaxLabelBits),
			ratio(float64(trace.MaxLabelBits), l2*l2),
			itoa(tr2.K), itoa(int(math.Ceil(l2))),
			btoa(exact), itoa(base.Rounds), "true",
		})
	}
	return t, nil
}

// E5MDST measures the MDST construction (Section VIII, Cor. 8.1, Lemma
// 8.1): final degree against OPT+1 (brute force on small instances, the
// FR guarantee beyond), O(log n) label bits against the Ω(n log n)
// baseline of [16], and accounted rounds.
func E5MDST(ns []int, seed int64) (*Table, error) {
	t := &Table{
		Title:  "E5: silent self-stabilizing MDST on FR-trees (Section VIII, Cor. 8.1)",
		Header: []string{"n", "rounds", "deg(T)", "OPT", "deg<=OPT+1", "FR-tree", "label-bits", "bits/log2(n)", "baseline-bits", "shrink"},
		Notes: []string{
			"claim: degree ≤ OPT+1, O(log n)-bit registers vs Ω(n log n) for [16], poly rounds, silent",
			"OPT by brute force where tractable, else '-' (guarantee holds by Thm 2.2 of [33])",
		},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		g := graph.RandomConnected(n, 3.0/float64(n), rng)
		final, trace, err := core.RunDistributed(g, mdst.Task{}, core.EngineOptions{Rng: rng})
		if err != nil {
			return nil, fmt.Errorf("E5 n=%d: %w", n, err)
		}
		fr, err := mdst.IsFRTree(g, final)
		if err != nil {
			return nil, err
		}
		optStr, okStr := "-", "-"
		if g.M() <= 24 {
			opt, err := mdst.OptimalDegree(g)
			if err == nil {
				optStr = itoa(opt)
				okStr = btoa(final.MaxDegree() <= opt+1)
			}
		}
		m, err := mdst.Mark(g, final)
		if err != nil {
			return nil, err
		}
		a, err := mdst.FromMarking(g, final, m)
		if err != nil {
			return nil, err
		}
		labelBits := a.MaxLabelBits(g.N())
		t0, err := trees.RandomSpanningTree(g, g.MinID(), rand.New(rand.NewSource(seed)))
		if err != nil {
			return nil, err
		}
		base, err := mdst.BigMemoryMDST(g, t0)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(trace.Rounds), itoa(final.MaxDegree()),
			optStr, okStr, btoa(fr),
			itoa(labelBits),
			ratio(float64(labelBits), log2(n)),
			itoa(base.RegisterBits),
			ratio(float64(base.RegisterBits), float64(labelBits)),
		})
	}
	return t, nil
}

// E6Verification contrasts verification costs (Proposition 8.1): the
// FR-tree proof-labeling verifier runs in polynomial time while deciding
// near-MDST membership needs the NP-hard Δ_min, whose exhaustive check
// blows up exponentially with the edge count.
func E6Verification(ns []int, seed int64) (*Table, error) {
	t := &Table{
		Title:  "E6: verification cost, FR-PLS vs near-MDST (Proposition 8.1)",
		Header: []string{"n", "m", "pls-verify", "exhaustive-near-MDST", "blowup"},
		Notes:  []string{"claim: no poly-time PLS for near-MDST unless NP = co-NP; FR-trees verify in poly time"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range ns {
		g := graph.RandomConnected(n, 0.5, rng)
		if g.M() > 24 {
			continue
		}
		t0, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			return nil, err
		}
		final, _, err := mdst.FurerRaghavachari(g, t0)
		if err != nil {
			return nil, err
		}
		m, err := mdst.Mark(g, final)
		if err != nil {
			return nil, err
		}
		a, err := mdst.FromMarking(g, final, m)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < 10; i++ {
			if err := a.Verify(g); err != nil {
				return nil, err
			}
		}
		plsTime := time.Since(start) / 10
		start = time.Now()
		opt, err := mdst.OptimalDegree(g)
		if err != nil {
			return nil, err
		}
		exhaustive := time.Since(start)
		_ = opt
		t.Rows = append(t.Rows, []string{
			itoa(g.N()), itoa(g.M()),
			plsTime.String(), exhaustive.String(),
			ratio(float64(exhaustive), float64(plsTime)),
		})
	}
	return t, nil
}

// E7FaultRecovery measures silent recovery (Section II-A): after
// stabilization, corrupt k registers and count re-stabilization rounds
// for the always-on BFS system.
func E7FaultRecovery(n int, faults []int, seed int64) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("E7: transient-fault recovery, always-on BFS, n=%d", n),
		Header: []string{"corrupted-registers", "recovery-rounds", "recovery-moves", "legal-after"},
		Notes:  []string{"claim: from any configuration — in particular post-fault — the system re-stabilizes and is silent"},
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(n, 3.0/float64(n), rng)
	net, err := runtime.NewNetwork(g, bfs.Algorithm{})
	if err != nil {
		return nil, err
	}
	net.InitArbitrary(rng)
	if _, err := net.Run(runtime.Central(), 10_000_000); err != nil {
		return nil, err
	}
	for _, k := range faults {
		runtime.Corrupt(net, k, rng)
		before := net.Rounds()
		beforeMoves := net.Moves()
		res, err := net.Run(runtime.Central(), 10_000_000)
		if err != nil {
			return nil, err
		}
		if !res.Silent {
			return nil, fmt.Errorf("E7: no recovery from %d faults", k)
		}
		tr, err := switching.ExtractTree(net, switching.RegOf)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(k),
			itoa(res.Rounds - before),
			itoa(res.Moves - beforeMoves),
			btoa(trees.IsBFSTree(tr, g)),
		})
	}
	return t, nil
}

// E8Potential records the potential trajectories of the three tasks
// (Lemma 3.1 / Lemma 7.1): strict decrease per improvement and iteration
// counts within φ_max.
func E8Potential(n int, seed int64) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("E8: potential monotonicity and iteration bounds, n=%d", n),
		Header: []string{"task", "φ(start)", "improvements", "φ_max-bound", "strictly-decreasing", "φ(end)"},
		Notes:  []string{"claim: each improvement strictly lowers φ; #improvements ≤ φ_max"},
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(n, 3.5/float64(n), rng)
	tasks := []core.Task{bfs.Task{}, mst.Task{}, mdst.Task{}}
	for _, task := range tasks {
		t0, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			return nil, err
		}
		final, trace, err := core.RunSequential(g, t0, task)
		if err != nil {
			return nil, fmt.Errorf("E8 %s: %w", task.Name(), err)
		}
		_ = final
		mono := true
		for i := 1; i < len(trace.Potentials); i++ {
			if trace.Potentials[i] >= trace.Potentials[i-1] {
				mono = false
			}
		}
		start := 0
		if len(trace.Potentials) > 0 {
			start = trace.Potentials[0]
		}
		t.Rows = append(t.Rows, []string{
			task.Name(), itoa(start), itoa(trace.Improvements),
			itoa(task.MaxValue(g)), btoa(mono),
			itoa(trace.Potentials[len(trace.Potentials)-1]),
		})
	}
	return t, nil
}

// spanningAlgorithm avoids an import cycle with internal/spanning by
// using the switching substrate as the ad hoc baseline would: plain tree
// construction with no repair rule. The plain substrate stabilizes to a
// BFS-shaped tree of the minimum-ID root without the PLS-guided layer.
func spanningAlgorithm() runtime.Algorithm { return plainSubstrate{} }

type plainSubstrate struct{}

func (plainSubstrate) Name() string { return "adhoc-substrate" }

func (plainSubstrate) Step(v runtime.View) runtime.State {
	s, ok := switching.RegOf(v.Self)
	if !ok {
		return switching.SelfRoot(v.ID)
	}
	return switching.StepReg(s, v, switching.RegOf)
}

func (plainSubstrate) ArbitraryState(rng *rand.Rand, v runtime.View) runtime.State {
	return switching.Algorithm{}.ArbitraryState(rng, v)
}
