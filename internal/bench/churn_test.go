package bench

import (
	"strings"
	"testing"
)

// TestE12ChurnSmoke runs the churn-throughput pipeline at toy scale:
// the table must come back with a silent final network, traffic flowing
// both during and after the churn, and every mutation class exercised.
func TestE12ChurnSmoke(t *testing.T) {
	tb, err := E12Churn([]int{300}, 600, 50, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(tb.Rows))
	}
	row := tb.Rows[0]
	cols := map[string]string{}
	for i, h := range tb.Header {
		cols[h] = row[i]
	}
	if cols["final-silent"] != "true" {
		t.Fatalf("final network not silent: %v", row)
	}
	if cols["mutations"] != "600" {
		t.Fatalf("applied %s of 600 mutations", cols["mutations"])
	}
	for _, k := range []string{"joins", "leaves", "flaps"} {
		if cols[k] == "0" {
			t.Errorf("mutation class %s never exercised", k)
		}
	}
	for _, k := range []string{"during-del", "final-del"} {
		if strings.HasPrefix(cols[k], "0.00") {
			t.Errorf("no traffic delivered (%s = %s)", k, cols[k])
		}
	}
}
