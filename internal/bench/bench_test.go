package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestE1(t *testing.T) {
	tb, err := E1Switch([]int{8, 16}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	if !strings.Contains(buf.String(), "E1") {
		t.Error("missing title")
	}
}

func TestE2(t *testing.T) {
	tb, err := E2NCA([]int{16, 32}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		if r[4] != "true" || r[5] != "true" {
			t.Errorf("E2 row failed checks: %v", r)
		}
	}
}

func TestE3(t *testing.T) {
	tb, err := E3BFS([]int{12, 20}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		if r[5] != "true" {
			t.Errorf("E3 row not exact BFS: %v", r)
		}
	}
}

func TestE4(t *testing.T) {
	tb, err := E4MST([]int{10, 14}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		if r[7] != "true" {
			t.Errorf("E4 row not exact MST: %v", r)
		}
	}
}

func TestE5(t *testing.T) {
	tb, err := E5MDST([]int{8, 12}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		if r[5] != "true" {
			t.Errorf("E5 row not FR: %v", r)
		}
	}
}

func TestE6(t *testing.T) {
	tb, err := E6Verification([]int{5, 6, 7}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestE7(t *testing.T) {
	tb, err := E7FaultRecovery(16, []int{1, 2, 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		if r[3] != "true" {
			t.Errorf("E7 row not legal after recovery: %v", r)
		}
	}
}

func TestE8(t *testing.T) {
	tb, err := E8Potential(14, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if r[4] != "true" {
			t.Errorf("E8 row not monotone: %v", r)
		}
		if r[5] != "0" {
			t.Errorf("E8 row did not reach φ=0: %v", r)
		}
	}
}
