package bench

import (
	"fmt"
	"math/rand"

	"silentspan/internal/bfs"
	"silentspan/internal/graph"
	"silentspan/internal/nca"
	"silentspan/internal/runtime"
	"silentspan/internal/switching"
	"silentspan/internal/trees"
)

// The A-tables are ablations of the paper's design choices (DESIGN.md
// §4): what breaks, and by how much, when an ingredient is removed.

// naiveSwitcher performs the same parent change as the Section IV
// protocol but WITHOUT the pruning waves: the initiator rewrites its
// parent and distance directly, and the ordinary maintenance rules mop
// up distances and sizes afterwards. The tree stays a tree (the swap is
// still a fundamental-cycle swap), but labels are transiently wrong, so
// the Lemma 4.1 verifier raises alarms mid-repair — exactly the failure
// the malleable scheme exists to prevent.
type naiveSwitcher struct{}

func (naiveSwitcher) Name() string { return "naive-switch" }

func (naiveSwitcher) Step(v runtime.View) runtime.State {
	s, ok := switching.RegOf(v.Self)
	if !ok {
		return switching.SelfRoot(v.ID)
	}
	// The pending request is executed immediately: no waves, no checks
	// beyond neighbor validity.
	if s.Sw == switching.SwReq {
		if t, ok := switching.RegOf(v.Peer(s.SwTarget)); ok && t.HasD {
			s.Parent = s.SwTarget
			s.D = t.D + 1
			s.Sw, s.SwTarget = switching.SwIdle, trees.None
			return s
		}
		s.Sw, s.SwTarget = switching.SwIdle, trees.None
		return s
	}
	return switching.StepReg(s, v, switching.RegOf)
}

func (naiveSwitcher) ArbitraryState(rng *rand.Rand, v runtime.View) runtime.State {
	return switching.Algorithm{}.ArbitraryState(rng, v)
}

// A1Malleability contrasts the Section IV protocol against the naive
// immediate switch: both perform the same legal swap from the same legal
// configuration; the table counts configurations (after each step) in
// which at least one node's Lemma 4.1 verifier rejects.
func A1Malleability(ns []int, seed int64) (*Table, error) {
	t := &Table{
		Title:  "A1 (ablation): switching with vs without the malleable pruning waves",
		Header: []string{"n", "protocol-alarms", "protocol-rounds", "naive-alarms", "naive-rounds"},
		Notes: []string{
			"alarm = a post-step configuration some node's verifier rejects",
			"removing the pruning waves keeps the tree but breaks silence-compatibility: detectors fire during repair",
		},
	}
	for _, n := range ns {
		g := graph.Ring(n)
		tr, err := trees.BFSTree(g, 1)
		if err != nil {
			return nil, err
		}
		e := tr.NonTreeEdges(g)[0]
		v, target := e.U, e.V
		if tr.Parent(v) == trees.None {
			v, target = e.V, e.U
		}
		countAlarms := func(alg runtime.Algorithm) (alarms, rounds int, err error) {
			net, err := runtime.NewNetwork(g, alg)
			if err != nil {
				return 0, 0, err
			}
			if err := switching.InitFromTree(net, tr); err != nil {
				return 0, 0, err
			}
			net.AddMonitor(runtime.MonitorFunc(func(nn *runtime.Network) error {
				a, err := switching.ToAssignment(nn, switching.RegOf)
				if err != nil {
					return err
				}
				if a.Verify(nn.Graph()) != nil {
					alarms++
				}
				return nil // count, do not abort
			}))
			if err := switching.InjectSwitch(net, v, target, switching.RegOf); err != nil {
				return 0, 0, err
			}
			res, err := net.Run(runtime.Synchronous(), 5_000_000)
			if err != nil {
				return 0, 0, err
			}
			if !res.Silent {
				return 0, 0, fmt.Errorf("not silent")
			}
			return alarms, res.Rounds, nil
		}
		pa, pr, err := countAlarms(switching.Algorithm{})
		if err != nil {
			return nil, fmt.Errorf("A1 n=%d protocol: %w", n, err)
		}
		na, nr, err := countAlarms(naiveSwitcher{})
		if err != nil {
			return nil, fmt.Errorf("A1 n=%d naive: %w", n, err)
		}
		t.Rows = append(t.Rows, []string{itoa(n), itoa(pa), itoa(pr), itoa(na), itoa(nr)})
	}
	return t, nil
}

// A2NCAEncoding contrasts the paper's Gilbert–Moore/heavy-path labels
// against the naive NCA encoding (the full (path head, position) list
// with fixed-width integers — O(log² n) bits): how many bits the
// weighted alphabetic coding actually saves.
func A2NCAEncoding(ns []int, seed int64) (*Table, error) {
	t := &Table{
		Title:  "A2 (ablation): NCA label encodings — alphabetic (paper) vs fixed-width naive",
		Header: []string{"n", "paper-bits", "paper/log2(n)", "naive-bits", "naive/log2²(n)", "saving"},
		Notes:  []string{"naive = explicit (head, position) pairs per heavy path, fixed-width: Θ(log² n) bits"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, n := range ns {
		g := graph.RandomConnected(n, 0.1, rng)
		tr, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			return nil, err
		}
		lb, err := nca.Build(tr)
		if err != nil {
			return nil, err
		}
		naive := naiveNCABits(tr)
		l2 := log2(n)
		t.Rows = append(t.Rows, []string{
			itoa(n),
			itoa(lb.MaxLabelBits()),
			ratio(float64(lb.MaxLabelBits()), l2),
			itoa(naive),
			ratio(float64(naive), l2*l2),
			ratio(float64(naive), float64(lb.MaxLabelBits())),
		})
	}
	return t, nil
}

// naiveNCABits sizes the straightforward NCA label: for each heavy path
// on the root-to-v walk, a (head ID, position) pair at fixed
// ceil(log2 n)-bit width, plus a length field.
func naiveNCABits(t *trees.Tree) int {
	d := trees.Decompose(t)
	w := runtime.BitsForValue(t.N())
	max := 0
	for _, v := range t.Nodes() {
		segments := d.LightDepth(v) + 1
		bits := w + segments*2*w
		if bits > max {
			max = bits
		}
	}
	return max
}

// A3Schedulers measures the always-on BFS under every scheduler: the
// paper's bounds hold under the unfair adversary, hence under all of
// them; the table shows the spread.
func A3Schedulers(n int, seed int64) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("A3 (ablation): scheduler spread, always-on BFS, n=%d", n),
		Header: []string{"scheduler", "rounds", "moves", "silent", "exact-BFS"},
		Notes:  []string{"claim scope: correctness under the unfair scheduler implies all of these"},
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(n, 3.0/float64(n), rng)
	scheds := []struct {
		name string
		mk   func() runtime.Scheduler
	}{
		{"synchronous", runtime.Synchronous},
		{"central-min-id", runtime.Central},
		{"round-robin", runtime.RoundRobin},
		{"adversarial-unfair", runtime.AdversarialUnfair},
		{"random-subset", func() runtime.Scheduler { return runtime.RandomSubset(rand.New(rand.NewSource(seed))) }},
	}
	for _, s := range scheds {
		net, err := runtime.NewNetwork(g, bfs.Algorithm{})
		if err != nil {
			return nil, err
		}
		net.InitArbitrary(rand.New(rand.NewSource(seed)))
		res, err := net.Run(s.mk(), 10_000_000)
		if err != nil {
			return nil, fmt.Errorf("A3 %s: %w", s.name, err)
		}
		exact := false
		if res.Silent {
			tr, err := switching.ExtractTree(net, switching.RegOf)
			if err != nil {
				return nil, err
			}
			exact = trees.IsBFSTree(tr, g)
		}
		t.Rows = append(t.Rows, []string{
			s.name, itoa(res.Rounds), itoa(res.Moves), btoa(res.Silent), btoa(exact),
		})
	}
	return t, nil
}

// A4Families runs all three tasks across the graph family zoo — the
// cross-topology robustness sweep.
func A4Families(seed int64) (*Table, error) {
	t := &Table{
		Title:  "A4: cross-family robustness (always-on BFS, n≈20 per family)",
		Header: []string{"family", "n", "m", "rounds", "moves", "silent", "exact-BFS"},
	}
	rng := rand.New(rand.NewSource(seed))
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"path", graph.Path(20)},
		{"ring", graph.Ring(20)},
		{"star", graph.Star(20)},
		{"complete", graph.Complete(12)},
		{"grid", graph.Grid(4, 5)},
		{"caterpillar", graph.Caterpillar(7, 2)},
		{"lollipop", graph.Lollipop(6, 8)},
		{"random", graph.RandomConnected(20, 0.2, rng)},
		{"geometric", graph.RandomGeometric(20, 0.35, rng)},
		{"hamiltonian", graph.HamiltonianWheel(20, 10, rng)},
	}
	for _, f := range families {
		net, err := runtime.NewNetwork(f.g, bfs.Algorithm{})
		if err != nil {
			return nil, err
		}
		net.InitArbitrary(rand.New(rand.NewSource(seed)))
		res, err := net.Run(runtime.Central(), 10_000_000)
		if err != nil {
			return nil, fmt.Errorf("A4 %s: %w", f.name, err)
		}
		exact := false
		if res.Silent {
			tr, err := switching.ExtractTree(net, switching.RegOf)
			if err != nil {
				return nil, err
			}
			exact = trees.IsBFSTree(tr, f.g)
		}
		t.Rows = append(t.Rows, []string{
			f.name, itoa(f.g.N()), itoa(f.g.M()),
			itoa(res.Rounds), itoa(res.Moves), btoa(res.Silent), btoa(exact),
		})
	}
	return t, nil
}
