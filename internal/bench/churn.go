package bench

import (
	"fmt"
	"math/rand"
	"time"

	"silentspan/internal/graph"
	"silentspan/internal/routing"
	"silentspan/internal/runtime"
	"silentspan/internal/spanning"
)

// E12Churn is the live-topology churn throughput table: on a serving-
// scale network (100k–1M nodes) with the spanning substrate stabilized
// and a router live on the incrementally maintained labeling, apply a
// sustained mutation stream — link flaps, re-costs, node joins and
// leaves — in batches, interleaving bounded repair windows and routed
// traffic, and report the sustained end-to-end mutation rate (wall
// clock includes mutation application, enabled-set maintenance, the
// partial relabels, repair, and routing), the per-mutation cost split,
// and the serving quality during and after the churn.
func E12Churn(ns []int, mutations, batch, packets int, seed int64) (*Table, error) {
	tb := &Table{
		Title:  "E12: live-topology churn under stabilization (mutations/sec with routing live)",
		Header: []string{"n", "m", "mutations", "joins", "leaves", "flaps", "mut/s", "repair-ms", "route-ms", "during-del", "final-del", "final-silent"},
		Notes: []string{
			"substrate: spanning.Algorithm, synchronous repair windows between mutation batches",
			"labeling: routing.LiveLabeler partial relabels (subtree-scoped), router stays live throughout",
			"mut/s is end-to-end: mutation application + incremental bookkeeping + repair + routing wall clock",
		},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		g := graph.RandomConnected(n, 8/float64(n), rng)
		net, err := runtime.NewNetwork(g, spanning.Algorithm{})
		if err != nil {
			return nil, err
		}
		spanning.InitSelfRoot(net)
		if res, err := net.Run(runtime.Synchronous(), 200_000_000); err != nil || !res.Silent {
			return nil, fmt.Errorf("E12 n=%d: substrate not silent (%v)", n, err)
		}

		// Incremental labeling + router wired to the live network.
		parents := make([]graph.NodeID, net.Dense().Slots())
		for i := range parents {
			if s, ok := net.StateAt(i).(spanning.State); ok {
				parents[i] = s.Parent
			} else {
				parents[i] = routing.NoParent
			}
		}
		lb := routing.NewLiveLabeler(g, parents)
		net.AddStateListener(func(v graph.NodeID, old, new runtime.State) {
			if s, ok := new.(spanning.State); ok {
				lb.SetParent(v, s.Parent)
			} else {
				lb.SetParent(v, routing.NoParent)
			}
		})
		net.AddTopologyListener(lb.ApplyTopo)
		router := routing.NewRouter(g, lb.Labeling(), routing.Options{})

		var (
			joins, leaves, flaps  int
			repairDur, routeDur   time.Duration
			duringSent, duringDel int
			nextID                = graph.NodeID(10_000_000)
			nextW                 = graph.Weight(1 << 40)
			downed                []graph.Edge
			nodes                 = g.Nodes()
			applied               int
		)
		// pool is a lazily validated edge sample source: O(1) draws
		// instead of an O(m) Edges() snapshot per mutation. Stale
		// entries (edges or endpoints churned away) are discarded on
		// draw; added edges are appended.
		pool := g.Edges()
		drawEdge := func() (graph.Edge, bool) {
			for tries := 0; tries < 32 && len(pool) > 0; tries++ {
				k := rng.Intn(len(pool))
				e := pool[k]
				if g.HasEdge(e.U, e.V) {
					return e, true
				}
				pool[k] = pool[len(pool)-1]
				pool = pool[:len(pool)-1]
			}
			return graph.Edge{}, false
		}
		start := time.Now()
		for applied < mutations {
			for b := 0; b < batch && applied < mutations; b++ {
				switch op := rng.Intn(20); {
				case op < 8: // link down
					e, ok := drawEdge()
					if !ok {
						b--
						continue
					}
					if err := net.RemoveEdge(e.U, e.V); err != nil {
						return nil, err
					}
					downed = append(downed, e)
					flaps++
				case op < 16: // link up (heal latest downed, else fresh)
					if len(downed) > 0 {
						e := downed[len(downed)-1]
						downed = downed[:len(downed)-1]
						if g.HasNode(e.U) && g.HasNode(e.V) && !g.HasEdge(e.U, e.V) {
							if err := net.AddEdge(e.U, e.V, e.W); err != nil {
								return nil, err
							}
							pool = append(pool, e)
							flaps++
							break
						}
					}
					u := nodes[rng.Intn(len(nodes))]
					v := nodes[rng.Intn(len(nodes))]
					if u == v || !g.HasNode(u) || !g.HasNode(v) || g.HasEdge(u, v) {
						b--
						continue
					}
					if err := net.AddEdge(u, v, nextW); err != nil {
						return nil, err
					}
					pool = append(pool, graph.Edge{U: u, V: v, W: nextW})
					nextW++
					flaps++
				case op < 18: // leave (slot vacated for the next join)
					v := nodes[rng.Intn(len(nodes))]
					if !g.HasNode(v) {
						b--
						continue
					}
					if err := net.RemoveNode(v); err != nil {
						return nil, err
					}
					leaves++
				default: // join on a recycled slot, wired to one anchor
					anchor := nodes[rng.Intn(len(nodes))]
					if !g.HasNode(anchor) { // removed earlier in this batch
						b--
						continue
					}
					if err := net.AddNode(nextID, nil); err != nil {
						return nil, err
					}
					if err := net.AddEdge(nextID, anchor, nextW); err != nil {
						return nil, err
					}
					pool = append(pool, graph.Edge{U: nextID, V: anchor, W: nextW})
					nextID++
					nextW++
					joins++
				}
				applied++
			}
			if applied%(16*batch) < batch {
				nodes = g.Nodes() // periodic endpoint refresh after node churn
			}
			rs := time.Now()
			if _, err := net.Run(runtime.Synchronous(), net.Moves()+5*batch); err != nil {
				return nil, err
			}
			repairDur += time.Since(rs)
			rs = time.Now()
			router.SetLabeling(lb.Labeling())
			batchStats, err := routing.Drive(router, routing.UniformPairs(nodes, packets/10, rng), routing.DriveOptions{MaxExactSources: -1})
			if err != nil {
				return nil, err
			}
			routeDur += time.Since(rs)
			duringSent += batchStats.Sent
			duringDel += batchStats.Delivered
		}
		// Final convergence + post-churn service quality.
		res, err := net.Run(runtime.Synchronous(), 200_000_000)
		if err != nil || !res.Silent {
			return nil, fmt.Errorf("E12 n=%d: no final silence (%v)", n, err)
		}
		elapsed := time.Since(start)
		router.SetLabeling(lb.Labeling())
		final, err := routing.Drive(router, routing.UniformPairs(g.Nodes(), packets, rng), routing.DriveOptions{MaxExactSources: -1})
		if err != nil {
			return nil, err
		}
		mutPerSec := float64(applied) / elapsed.Seconds()
		tb.Rows = append(tb.Rows, []string{
			itoa(n), itoa(g.M()), itoa(applied), itoa(joins), itoa(leaves), itoa(flaps),
			fmt.Sprintf("%.0f", mutPerSec),
			itoa(int(repairDur.Milliseconds())),
			itoa(int(routeDur.Milliseconds())),
			fmt.Sprintf("%.2f%%", pct(duringDel, duringSent)),
			fmt.Sprintf("%.2f%%", 100*final.DeliveryRate()),
			btoa(res.Silent),
		})
	}
	return tb, nil
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
