package bench

import (
	"fmt"
	"testing"
)

// TestE13ClusterSmoke: the cluster scale table at a CI-friendly size.
func TestE13ClusterSmoke(t *testing.T) {
	n := 2000
	if testing.Short() {
		n = 500
	}
	tb, err := E13Cluster([]int{n}, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows: %v", tb.Rows)
	}
	if tb.Rows[0][8] != "100.00%" {
		t.Fatalf("delivery column: %v", tb.Rows[0])
	}
}

// TestE14DeltaWireSmoke: the delta-vs-legacy wire comparison at a
// CI-friendly size, asserting the episode actually got cheaper and
// that routed delivery stayed perfect under the delta protocol.
func TestE14DeltaWireSmoke(t *testing.T) {
	n := 2000
	if testing.Short() {
		n = 500
	}
	tb, err := E14DeltaWire([]int{n}, 500, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows: %v", tb.Rows)
	}
	for _, row := range tb.Rows {
		if row[6] != "100.00%" {
			t.Fatalf("delivery column: %v", row)
		}
	}
	var x float64
	if _, err := fmt.Sscanf(tb.Rows[1][7], "%f", &x); err != nil {
		t.Fatalf("reduction column: %v", tb.Rows[1])
	}
	if x < 5 {
		t.Fatalf("delta mode only %.1fx cheaper on the wire: %v", x, tb.Rows)
	}
}

// TestE15TraceSmoke: the flight-recorder overhead table at a
// CI-friendly size. The off and on clusters must push identical frame
// counts through the window (arming the recorder cannot change wire
// behavior), the disarmed path must sit inside the A/A noise floor,
// and the armed path must stay within loose sanity bounds. The tight
// ≤2% disabled-path gate runs at full size via ssbench -only E15 and
// is recorded in BENCH_pr10.json.
func TestE15TraceSmoke(t *testing.T) {
	n, window, reps := 1500, 24, 4
	if testing.Short() {
		n, reps = 500, 3
	}
	tb, err := E15TraceOverhead(n, window, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows: %v", tb.Rows)
	}
	if tb.Rows[0][2] != tb.Rows[2][2] {
		t.Fatalf("frame counts diverge between off and on: %v", tb.Rows)
	}
	ovh := func(row []string) float64 {
		var v float64
		if _, err := fmt.Sscanf(row[4], "%f", &v); err != nil {
			t.Fatalf("overhead column: %v", row)
		}
		return v
	}
	// The dedicated CI step runs -short with the package isolated, so
	// the timing gates can be tight; inside a full `go test ./...` the
	// suite's other packages compete for cores and only loose sanity
	// bounds are meaningful.
	aaTol, onTol := 20.0, 45.0
	if testing.Short() {
		aaTol, onTol = 8.0, 30.0
	}
	if aa := ovh(tb.Rows[1]); aa > aaTol || aa < -aaTol {
		t.Fatalf("off A/A noise %.2f%% exceeds the ±%.0f%% tolerance: %v", aa, aaTol, tb.Rows)
	}
	if on := ovh(tb.Rows[2]); on > onTol {
		t.Fatalf("recorder-armed overhead %.2f%% out of sanity bounds (≤%.0f%%): %v", on, onTol, tb.Rows)
	}
}
