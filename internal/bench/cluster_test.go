package bench

import "testing"

// TestE13ClusterSmoke: the cluster scale table at a CI-friendly size.
func TestE13ClusterSmoke(t *testing.T) {
	n := 2000
	if testing.Short() {
		n = 500
	}
	tb, err := E13Cluster([]int{n}, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows: %v", tb.Rows)
	}
	if tb.Rows[0][8] != "100.00%" {
		t.Fatalf("delivery column: %v", tb.Rows[0])
	}
}
