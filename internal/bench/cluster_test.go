package bench

import (
	"fmt"
	"testing"
)

// TestE13ClusterSmoke: the cluster scale table at a CI-friendly size.
func TestE13ClusterSmoke(t *testing.T) {
	n := 2000
	if testing.Short() {
		n = 500
	}
	tb, err := E13Cluster([]int{n}, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows: %v", tb.Rows)
	}
	if tb.Rows[0][8] != "100.00%" {
		t.Fatalf("delivery column: %v", tb.Rows[0])
	}
}

// TestE14DeltaWireSmoke: the delta-vs-legacy wire comparison at a
// CI-friendly size, asserting the episode actually got cheaper and
// that routed delivery stayed perfect under the delta protocol.
func TestE14DeltaWireSmoke(t *testing.T) {
	n := 2000
	if testing.Short() {
		n = 500
	}
	tb, err := E14DeltaWire([]int{n}, 500, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows: %v", tb.Rows)
	}
	for _, row := range tb.Rows {
		if row[6] != "100.00%" {
			t.Fatalf("delivery column: %v", row)
		}
	}
	var x float64
	if _, err := fmt.Sscanf(tb.Rows[1][7], "%f", &x); err != nil {
		t.Fatalf("reduction column: %v", tb.Rows[1])
	}
	if x < 5 {
		t.Fatalf("delta mode only %.1fx cheaper on the wire: %v", x, tb.Rows)
	}
}
