package bench

import (
	"fmt"
	"math/rand"
	"time"

	"silentspan/internal/graph"
	"silentspan/internal/routing"
)

// E11Scale is the dense-engine scale table: the full serving stack —
// BFS substrate stabilization, coordinate labeling, and a routed
// traffic batch — at sizes the map-backed engine could not reach
// (100k–1M nodes). It reports wall-clock time per stage, so the table
// doubles as the regression guard for the engine's O(deg)-per-move
// claim: stabilization time must scale near-linearly in m.
func E11Scale(ns []int, packets int, seed int64) (*Table, error) {
	tb := &Table{
		Title:  "E11: serving-scale stabilization + routing (dense register-file engine)",
		Header: []string{"n", "m", "stab-rounds", "stab-moves", "stab-ms", "label-ms", "route-ms", "delivered", "kpkt/s"},
		Notes: []string{
			"substrate: spanning.Algorithm from the post-reset configuration, synchronous daemon",
			"routing: uniform pairs over the labeled tree with greedy shortcuts",
		},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		g := graph.RandomConnected(n, 8/float64(n), rng)
		start := time.Now()
		tree, res, err := stabilizedBFSSubstrate(g)
		if err != nil {
			return nil, fmt.Errorf("E11 n=%d: %w", n, err)
		}
		stabMS := time.Since(start)

		start = time.Now()
		lab := routing.Label(tree)
		labelMS := time.Since(start)

		r := routing.NewRouter(g, lab, routing.Options{})
		pairs := routing.UniformPairs(g.Nodes(), packets, rng)
		start = time.Now()
		stats, err := routing.Drive(r, pairs, routing.DriveOptions{MaxExactSources: -1})
		if err != nil {
			return nil, fmt.Errorf("E11 n=%d: %w", n, err)
		}
		routeMS := time.Since(start)
		kpps := float64(stats.Sent) / routeMS.Seconds() / 1000

		tb.Rows = append(tb.Rows, []string{
			itoa(n), itoa(g.M()), itoa(res.Rounds), itoa(res.Moves),
			itoa(int(stabMS.Milliseconds())),
			itoa(int(labelMS.Milliseconds())),
			itoa(int(routeMS.Milliseconds())),
			fmt.Sprintf("%.2f%%", 100*stats.DeliveryRate()),
			fmt.Sprintf("%.0f", kpps),
		})
	}
	return tb, nil
}
