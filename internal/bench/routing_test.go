package bench

import (
	"strings"
	"testing"
)

func TestE9RoutingTable(t *testing.T) {
	tb, err := E9Routing([]int{64, 256}, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[4] != "100.00%" {
			t.Errorf("n=%s: delivery %s, want 100.00%%", row[0], row[4])
		}
		if !strings.HasPrefix(row[6], "1.") {
			t.Errorf("n=%s: implausible mean stretch %s", row[0], row[6])
		}
	}
}

func TestA5ShortcutTable(t *testing.T) {
	tb, err := A5Shortcut([]int{64}, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("%d rows, want 1", len(tb.Rows))
	}
}

func TestE10InterplayTable(t *testing.T) {
	tb, err := E10Interplay(20, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows, want 3 (bfs/mst/mdst)", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[8] != "100.0%" {
			t.Errorf("substrate %s: post-recovery delivery %s, want 100.0%%", row[0], row[8])
		}
	}
}
