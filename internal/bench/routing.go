package bench

import (
	"fmt"
	"math/rand"
	"time"

	"silentspan/internal/graph"
	"silentspan/internal/routing"
	"silentspan/internal/runtime"
	"silentspan/internal/spanning"
	"silentspan/internal/trees"
)

// stabilizedBFSSubstrate brings the spanning substrate to silence from
// the benign post-reset configuration under the synchronous daemon —
// the large-scale serving setup (adversarial starts are exercised by
// E3/E7 at small n) — and returns the extracted tree plus the run cost.
func stabilizedBFSSubstrate(g *graph.Graph) (*trees.Tree, runtime.Result, error) {
	net, err := runtime.NewNetwork(g, spanning.Algorithm{})
	if err != nil {
		return nil, runtime.Result{}, err
	}
	spanning.InitSelfRoot(net)
	res, err := net.Run(runtime.Synchronous(), 200_000_000)
	if err != nil {
		return nil, res, err
	}
	if !res.Silent {
		return nil, res, fmt.Errorf("bench: substrate not silent after %d moves", res.Moves)
	}
	t, err := spanning.ExtractTree(net)
	return t, res, err
}

// E9Routing measures the serving layer end to end: stabilize the BFS
// substrate on random graphs of increasing size, label the tree with
// routing coordinates, and drive a uniform workload, reporting
// delivery, hop counts, stretch against exact shortest paths, label
// size, and forwarding throughput.
func E9Routing(ns []int, packets int, seed int64) (*Table, error) {
	tb := &Table{
		Title:  "E9: tree-coordinate routing over the stabilized substrate",
		Header: []string{"n", "m", "stab-rounds", "packets", "delivered", "mean-hops", "mean-stretch", "label-bits", "kpkt/s"},
		Notes: []string{
			"uniform pairs; stretch vs exact shortest paths on sampled sources",
			"substrate: spanning.Algorithm from the post-reset configuration, synchronous daemon",
		},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		p := 8 / float64(n) // keep average degree ~8 as n grows
		g := graph.RandomConnected(n, p, rng)
		tree, res, err := stabilizedBFSSubstrate(g)
		if err != nil {
			return nil, fmt.Errorf("E9 n=%d: %w", n, err)
		}
		lab := routing.Label(tree)
		r := routing.NewRouter(g, lab, routing.Options{})
		pairs := routing.UniformPairs(g.Nodes(), packets, rng)
		// Throughput is timed over a stretch-free pass: the per-source
		// BFS backing the stretch measurement would otherwise dominate
		// the clock and corrupt the forwarding-rate trend.
		start := time.Now()
		if _, err := routing.Drive(r, pairs, routing.DriveOptions{MaxExactSources: -1}); err != nil {
			return nil, fmt.Errorf("E9 n=%d: %w", n, err)
		}
		elapsed := time.Since(start)
		stats, err := routing.Drive(r, pairs, routing.DriveOptions{})
		if err != nil {
			return nil, fmt.Errorf("E9 n=%d: %w", n, err)
		}
		kpps := float64(stats.Sent) / elapsed.Seconds() / 1000
		tb.Rows = append(tb.Rows, []string{
			itoa(n), itoa(g.M()), itoa(res.Rounds), itoa(stats.Sent),
			fmt.Sprintf("%.2f%%", 100*stats.DeliveryRate()),
			fmt.Sprintf("%.2f", stats.MeanHops),
			fmt.Sprintf("%.3f", stats.MeanStretch),
			itoa(lab.MaxLabelBits()),
			fmt.Sprintf("%.0f", kpps),
		})
	}
	return tb, nil
}

// A5Shortcut is the stretch ablation: the same workload routed
// tree-only (packets follow the tree path exactly) versus with greedy
// shortcutting over non-tree edges — isolating what the non-tree edges
// buy on top of the stabilized tree.
func A5Shortcut(ns []int, packets int, seed int64) (*Table, error) {
	tb := &Table{
		Title:  "A5: greedy shortcutting ablation (tree-only vs shortcut routing)",
		Header: []string{"n", "m", "tree-hops", "cut-hops", "tree-stretch", "cut-stretch", "hops-saved"},
		Notes:  []string{"identical uniform workload per row; both modes deliver 100%"},
	}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		g := graph.RandomConnected(n, 12/float64(n), rng)
		tree, _, err := stabilizedBFSSubstrate(g)
		if err != nil {
			return nil, fmt.Errorf("A5 n=%d: %w", n, err)
		}
		lab := routing.Label(tree)
		pairs := routing.UniformPairs(g.Nodes(), packets, rng)
		treeStats, err := routing.Drive(routing.NewRouter(g, lab, routing.Options{TreeOnly: true}), pairs, routing.DriveOptions{})
		if err != nil {
			return nil, fmt.Errorf("A5 n=%d tree-only: %w", n, err)
		}
		cutStats, err := routing.Drive(routing.NewRouter(g, lab, routing.Options{}), pairs, routing.DriveOptions{})
		if err != nil {
			return nil, fmt.Errorf("A5 n=%d shortcut: %w", n, err)
		}
		if treeStats.Delivered != treeStats.Sent || cutStats.Delivered != cutStats.Sent {
			return nil, fmt.Errorf("A5 n=%d: delivery not 100%% (tree %d/%d, cut %d/%d)",
				n, treeStats.Delivered, treeStats.Sent, cutStats.Delivered, cutStats.Sent)
		}
		saved := 0.0
		if treeStats.HopSum > 0 {
			saved = 100 * float64(treeStats.HopSum-cutStats.HopSum) / float64(treeStats.HopSum)
		}
		tb.Rows = append(tb.Rows, []string{
			itoa(n), itoa(g.M()),
			fmt.Sprintf("%.2f", treeStats.MeanHops),
			fmt.Sprintf("%.2f", cutStats.MeanHops),
			fmt.Sprintf("%.3f", treeStats.MeanStretch),
			fmt.Sprintf("%.3f", cutStats.MeanStretch),
			fmt.Sprintf("%.1f%%", saved),
		})
	}
	return tb, nil
}

// E10Interplay runs the fault-interplay experiment per substrate: k
// registers corrupted under live traffic, routing continuing over the
// decaying labeling while the tree repairs itself.
func E10Interplay(n int, faults int, seed int64) (*Table, error) {
	tb := &Table{
		Title:  fmt.Sprintf("E10: fault interplay under live traffic (n=%d, %d corrupted registers)", n, faults),
		Header: []string{"substrate", "pre-del", "inflight-during", "inflight-after", "looped", "dropped", "stalls", "reconv-moves", "post-del", "post-stretch"},
		Notes:  []string{"in-flight packets keep routing over the decaying live labeling during repair"},
	}
	for _, sub := range []routing.Substrate{routing.SubstrateBFS, routing.SubstrateMST, routing.SubstrateMDST} {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomConnected(n, 0.15, rng)
		rep, err := routing.RunInterplay(g, routing.InterplayConfig{
			Substrate: sub,
			Faults:    faults,
			Seed:      seed + int64(sub),
		})
		if err != nil {
			return nil, fmt.Errorf("E10 %s: %w", sub, err)
		}
		tb.Rows = append(tb.Rows, []string{
			sub.String(),
			fmt.Sprintf("%.1f%%", 100*rep.Pre.DeliveryRate()),
			itoa(rep.InFlight.DeliveredDuring),
			itoa(rep.InFlight.DeliveredAfter),
			itoa(rep.InFlight.Looped),
			itoa(rep.InFlight.Dropped),
			itoa(rep.InFlight.StallWindows),
			itoa(rep.ReconvergeMoves),
			fmt.Sprintf("%.1f%%", 100*rep.Post.DeliveryRate()),
			fmt.Sprintf("%.3f", rep.Post.MeanStretch),
		})
	}
	return tb, nil
}
