package bench

import (
	"strconv"
	"testing"
)

func TestA1MalleabilityAblation(t *testing.T) {
	tb, err := A1Malleability([]int{12, 24}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		protocolAlarms, _ := strconv.Atoi(r[1])
		naiveAlarms, _ := strconv.Atoi(r[3])
		if protocolAlarms != 0 {
			t.Errorf("n=%s: the Section IV protocol raised %d alarms", r[0], protocolAlarms)
		}
		if naiveAlarms == 0 {
			t.Errorf("n=%s: the naive switch raised no alarm — ablation vacuous", r[0])
		}
	}
}

func TestA2NCAEncodingAblation(t *testing.T) {
	tb, err := A2NCAEncoding([]int{64, 256}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		paper, _ := strconv.Atoi(r[1])
		naive, _ := strconv.Atoi(r[3])
		if naive <= paper {
			t.Errorf("n=%s: naive encoding (%d bits) not larger than paper's (%d bits)", r[0], naive, paper)
		}
	}
}

func TestA3SchedulerAblation(t *testing.T) {
	tb, err := A3Schedulers(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if r[3] != "true" || r[4] != "true" {
			t.Errorf("scheduler %s: silent=%s exact=%s", r[0], r[3], r[4])
		}
	}
}

func TestA4FamilySweep(t *testing.T) {
	tb, err := A4Families(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 10 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if r[5] != "true" || r[6] != "true" {
			t.Errorf("family %s: silent=%s exact=%s", r[0], r[5], r[6])
		}
	}
}
