package mst

import (
	"fmt"

	"silentspan/internal/core"
	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

// Task packages MST construction for the PLS-guided engines: the
// instantiation of Algorithm 2 (a PLS-guided version of Borůvka's
// algorithm).
//
// Detection uses the paper's label-based potential (Trace.Potential);
// the engine's strict-decrease certificate is the weight-rank surplus,
// which provably drops at every red-rule swap. Both vanish exactly on
// the MST.
type Task struct{}

var _ core.Task = Task{}

// Name implements core.Task.
func (Task) Name() string { return "mst" }

// Value implements core.Task: the weight-rank surplus over the MST.
func (Task) Value(g *graph.Graph, t *trees.Tree) (int, error) {
	return WeightRankSurplus(t, g)
}

// MaxValue implements core.Task: the surplus is at most n·m rank units.
func (Task) MaxValue(g *graph.Graph) int { return g.N() * g.M() }

// Label implements core.Task: (re)compute the Borůvka-trace labels and
// charge their wave construction (Section VI: "standard convergecast and
// broadcast operations... in poly(n) rounds, using O(log n) bits" per
// level, Θ(log² n) total).
func (Task) Label(g *graph.Graph, t *trees.Tree) (core.LabelInfo, error) {
	tr, err := ComputeTrace(g, t)
	if err != nil {
		return core.LabelInfo{}, err
	}
	return core.LabelInfo{
		MaxBits: tr.MaxLabelBits(g),
		Rounds:  tr.ConstructionRounds(t),
	}, nil
}

// FindImprovement implements core.Task: the red-rule step of Algorithm 2.
// Let x be a node with φ_x = i < k; e is the minimum-weight edge of G
// leaving F_{i+1}(x), and f the maximum-weight tree edge on the
// fundamental cycle of T + e. Discovery costs one convergecast and one
// broadcast over the tree plus one relaxation along the cycle.
func (Task) FindImprovement(g *graph.Graph, t *trees.Tree) ([]core.Swap, int, bool, error) {
	tr, err := ComputeTrace(g, t)
	if err != nil {
		return nil, 0, false, err
	}
	height := 0
	for _, d := range t.Depths() {
		if d > height {
			height = d
		}
	}
	x, i, found := tr.Violation(g)
	if !found {
		return nil, 2 * (height + 1), false, nil
	}
	// e = min-weight outgoing edge of F_{i+1}(x) in G.
	rep := tr.FragmentAt(x, i+1)
	e, ok := tr.MinOutgoing(g, rep, i+1)
	if !ok {
		return nil, 0, false, fmt.Errorf("mst: violated fragment %d has no outgoing edge", rep)
	}
	if t.HasEdge(e.U, e.V) {
		return nil, 0, false, fmt.Errorf("mst: improvement edge %v is already a tree edge", e)
	}
	// f = max-weight tree edge on the fundamental cycle of T + e.
	var f graph.Edge
	haveF := false
	for _, ce := range t.CycleEdges(e) {
		w, ok := g.EdgeWeight(ce.U, ce.V)
		if !ok {
			return nil, 0, false, fmt.Errorf("mst: cycle edge %v not in graph", ce)
		}
		ce.W = w
		if !haveF || lighter(f, ce) {
			f, haveF = ce, true
		}
	}
	if !haveF {
		return nil, 0, false, fmt.Errorf("mst: empty fundamental cycle for %v", e)
	}
	if f.W <= e.W {
		return nil, 0, false, fmt.Errorf("mst: red rule degenerate: max cycle edge %v not heavier than %v", f, e)
	}
	cycleLen := len(t.FundamentalCycle(e))
	rounds := 2*(height+1) + cycleLen
	return []core.Swap{{Add: e, Remove: f}}, rounds, true, nil
}

// PaperPotential exposes the paper's φ(T) = kn − Σ φ_x for experiments.
func PaperPotential(g *graph.Graph, t *trees.Tree) (int, error) {
	tr, err := ComputeTrace(g, t)
	if err != nil {
		return 0, err
	}
	return tr.Potential(g), nil
}
