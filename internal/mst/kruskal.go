// Package mst implements the MST application of the paper's framework
// (Section VI, Corollary 6.1): labels encoding a virtual execution of
// Borůvka's algorithm on the current tree (Fig. 2), the potential
// function comparing those labels against the graph, the red-rule
// improvement step, and the packaging as a core.Task for the PLS-guided
// engines. Sequential Kruskal provides the ground truth, and a
// synchronous distributed Borůvka serves as the non-silent baseline.
package mst

import (
	"fmt"

	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

// Kruskal returns the minimum-weight spanning tree of g rooted at root.
// With pairwise distinct weights (the paper's w.l.o.g. assumption) the
// MST is unique; ties are broken by endpoint IDs for robustness anyway.
func Kruskal(g *graph.Graph, root graph.NodeID) (*trees.Tree, error) {
	if !g.HasNode(root) {
		return nil, fmt.Errorf("mst: unknown root %d", root)
	}
	uf := graph.NewUnionFind(g.Nodes())
	adj := make(map[graph.NodeID][]graph.NodeID, g.N())
	for _, e := range g.EdgesByWeight() {
		if uf.Union(e.U, e.V) {
			adj[e.U] = append(adj[e.U], e.V)
			adj[e.V] = append(adj[e.V], e.U)
		}
	}
	if uf.Sets() != 1 {
		return nil, fmt.Errorf("mst: graph not connected (%d components)", uf.Sets())
	}
	t := trees.NewTree(root)
	stack := []graph.NodeID{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range adj[v] {
			if !t.Has(u) {
				t.AddChild(v, u)
				stack = append(stack, u)
			}
		}
	}
	return t, nil
}

// IsMST reports whether t is a minimum-weight spanning tree of g, by
// weight comparison against Kruskal (unique under distinct weights).
func IsMST(t *trees.Tree, g *graph.Graph) (bool, error) {
	if !t.IsSpanningTreeOf(g) {
		return false, nil
	}
	ref, err := Kruskal(g, t.Root())
	if err != nil {
		return false, err
	}
	wt, err := t.Weight(g)
	if err != nil {
		return false, err
	}
	wr, err := ref.Weight(g)
	if err != nil {
		return false, err
	}
	return wt == wr, nil
}

// WeightRankSurplus returns the rank-based optimality gap of t: the sum
// of weight ranks of t's edges minus that of the MST. It is zero exactly
// on the MST and strictly decreases under every red-rule swap (the
// removed edge is always heavier than the added one), so the framework
// engines use it as their monotonicity certificate while the paper's
// label-based potential (Potential) drives detection.
func WeightRankSurplus(t *trees.Tree, g *graph.Graph) (int, error) {
	// Rank edges by endpoints only: tree edges do not carry weights.
	type pair struct{ u, v graph.NodeID }
	rank := make(map[pair]int, g.M())
	for i, e := range g.EdgesByWeight() {
		c := e.Canonical()
		rank[pair{c.U, c.V}] = i
	}
	ref, err := Kruskal(g, t.Root())
	if err != nil {
		return 0, err
	}
	sum := func(tr *trees.Tree) int {
		s := 0
		for _, e := range tr.Edges() {
			s += rank[pair{e.U, e.V}]
		}
		return s
	}
	surplus := sum(t) - sum(ref)
	if surplus < 0 {
		return 0, fmt.Errorf("mst: tree lighter than the MST — weights not distinct?")
	}
	return surplus, nil
}
