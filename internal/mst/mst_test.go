package mst

import (
	"math"
	"math/rand"
	"testing"

	"silentspan/internal/core"
	"silentspan/internal/graph"
	"silentspan/internal/trees"
)

func randomWeighted(t *testing.T, rng *rand.Rand, n int, p float64) *graph.Graph {
	t.Helper()
	g := graph.RandomConnected(n, p, rng)
	if !g.DistinctWeights() {
		t.Fatal("generator produced duplicate weights")
	}
	return g
}

func TestKruskalOnKnownGraph(t *testing.T) {
	g := graph.New()
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 2)
	g.MustAddEdge(1, 3, 10)
	g.MustAddEdge(3, 4, 3)
	g.MustAddEdge(2, 4, 20)
	mstT, err := Kruskal(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mstT.Weight(g)
	if err != nil {
		t.Fatal(err)
	}
	if w != 6 {
		t.Errorf("MST weight %d, want 6", w)
	}
	ok, err := IsMST(mstT, g)
	if err != nil || !ok {
		t.Errorf("IsMST = %v, %v", ok, err)
	}
}

func TestKruskalMatchesBruteForceOnSmallGraphs(t *testing.T) {
	// Exhaustive check: Kruskal's weight equals the minimum over all
	// spanning trees enumerated by brute force on tiny graphs.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		g := randomWeighted(t, rng, 6, 0.5)
		mstT, err := Kruskal(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		w, err := mstT.Weight(g)
		if err != nil {
			t.Fatal(err)
		}
		best := bruteForceMSTWeight(t, g)
		if w != best {
			t.Errorf("trial %d: Kruskal %d, brute force %d", trial, w, best)
		}
	}
}

// bruteForceMSTWeight enumerates all edge subsets of size n-1.
func bruteForceMSTWeight(t *testing.T, g *graph.Graph) graph.Weight {
	t.Helper()
	edges := g.Edges()
	n := g.N()
	best := graph.Weight(math.MaxInt64)
	var rec func(i, picked int, weight graph.Weight, uf *graph.UnionFind)
	rec = func(i, picked int, weight graph.Weight, uf *graph.UnionFind) {
		if picked == n-1 {
			if uf.Sets() == 1 && weight < best {
				best = weight
			}
			return
		}
		if i >= len(edges) || len(edges)-i < n-1-picked {
			return
		}
		// Skip edges[i].
		rec(i+1, picked, weight, uf)
		// Take edges[i] (clone union-find).
		cl := graph.NewUnionFind(g.Nodes())
		for _, e := range edges[:i] {
			_ = e
		}
		// Rebuild: cheaper to copy by re-unioning picked set is complex;
		// use a fresh recursion carrying edge choices instead.
		_ = cl
	}
	_ = rec
	// Simpler: iterate all bitmasks (m small).
	m := len(edges)
	for mask := 0; mask < 1<<m; mask++ {
		if popcount(mask) != n-1 {
			continue
		}
		uf := graph.NewUnionFind(g.Nodes())
		var w graph.Weight
		for i := 0; i < m; i++ {
			if mask>>i&1 == 1 {
				uf.Union(edges[i].U, edges[i].V)
				w += edges[i].W
			}
		}
		if uf.Sets() == 1 && w < best {
			best = w
		}
	}
	return best
}

func popcount(x int) int {
	c := 0
	for ; x > 0; x &= x - 1 {
		c++
	}
	return c
}

func TestTraceOnMSTHasZeroPotential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		g := randomWeighted(t, rng, 8+rng.Intn(30), 0.3)
		mstT, err := Kruskal(g, g.MinID())
		if err != nil {
			t.Fatal(err)
		}
		tr, err := ComputeTrace(g, mstT)
		if err != nil {
			t.Fatal(err)
		}
		if phi := tr.Potential(g); phi != 0 {
			t.Errorf("trial %d: φ(MST) = %d, want 0", trial, phi)
		}
		if _, _, found := tr.Violation(g); found {
			t.Errorf("trial %d: violation reported on the MST", trial)
		}
	}
}

func TestTraceOnNonMSTHasPositivePotential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	positives := 0
	for trial := 0; trial < 30; trial++ {
		g := randomWeighted(t, rng, 8+rng.Intn(20), 0.3)
		tree, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			t.Fatal(err)
		}
		isMST, err := IsMST(tree, g)
		if err != nil {
			t.Fatal(err)
		}
		if isMST {
			continue
		}
		tr, err := ComputeTrace(g, tree)
		if err != nil {
			t.Fatal(err)
		}
		if phi := tr.Potential(g); phi <= 0 {
			t.Errorf("trial %d: φ(non-MST) = %d, want > 0", trial, phi)
		}
		if _, _, found := tr.Violation(g); !found {
			t.Errorf("trial %d: no violation found on a non-MST", trial)
		}
		positives++
	}
	if positives == 0 {
		t.Fatal("no non-MST trees generated; test vacuous")
	}
}

func TestTraceLevelsLogarithmic(t *testing.T) {
	// Fig. 2 / Section VI: k ≤ ceil(log2 n).
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{8, 16, 32, 64, 128} {
		g := randomWeighted(t, rng, n, 0.1)
		tree, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := ComputeTrace(g, tree)
		if err != nil {
			t.Fatal(err)
		}
		bound := int(math.Ceil(math.Log2(float64(n)))) + 1
		if tr.K > bound {
			t.Errorf("n=%d: k = %d > ceil(log2 n)+1 = %d", n, tr.K, bound)
		}
	}
}

func TestLabelBitsLogSquared(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{16, 32, 64, 128} {
		g := randomWeighted(t, rng, n, 0.1)
		tree, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := ComputeTrace(g, tree)
		if err != nil {
			t.Fatal(err)
		}
		logN := math.Log2(float64(n))
		bound := int(10*logN*logN) + 64
		if got := tr.MaxLabelBits(g); got > bound {
			t.Errorf("n=%d: label bits %d > O(log² n) bound %d", n, got, bound)
		}
	}
}

func TestSequentialEngineReachesMST(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		g := randomWeighted(t, rng, 8+rng.Intn(25), 0.3)
		t0, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			t.Fatal(err)
		}
		final, trace, err := core.RunSequential(g, t0, Task{})
		if err != nil {
			t.Fatal(err)
		}
		ok, err := IsMST(final, g)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: sequential engine did not reach the MST", trial)
		}
		for i := 1; i < len(trace.Potentials); i++ {
			if trace.Potentials[i] >= trace.Potentials[i-1] {
				t.Fatalf("trial %d: potential not strictly decreasing: %v", trial, trace.Potentials)
			}
		}
	}
}

func TestPaperPotentialDecreasesAlongRun(t *testing.T) {
	// The paper's φ must also vanish exactly at the end of a run and be
	// positive before (monotonicity of the paper's φ is measured, not
	// assumed; E8 records its trajectory).
	rng := rand.New(rand.NewSource(8))
	g := randomWeighted(t, rng, 20, 0.3)
	t0, err := trees.RandomSpanningTree(g, g.MinID(), rng)
	if err != nil {
		t.Fatal(err)
	}
	final, _, err := core.RunSequential(g, t0, Task{})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := PaperPotential(g, final)
	if err != nil {
		t.Fatal(err)
	}
	if phi != 0 {
		t.Errorf("paper φ(final) = %d, want 0", phi)
	}
}

func TestDistributedEngineReachesMST(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 4; trial++ {
		g := randomWeighted(t, rng, 10+rng.Intn(8), 0.3)
		final, trace, err := core.RunDistributed(g, Task{}, core.EngineOptions{
			Monitor: true,
			Rng:     rand.New(rand.NewSource(int64(trial + 40))),
		})
		if err != nil {
			t.Fatal(err)
		}
		ok, err := IsMST(final, g)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: distributed engine did not reach the MST", trial)
		}
		if trace.Rounds <= 0 || trace.MaxLabelBits <= 0 {
			t.Error("missing accounting")
		}
	}
}

func TestVerifierAcceptsMSTLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		g := randomWeighted(t, rng, 8+rng.Intn(25), 0.3)
		mstT, err := Kruskal(g, g.MinID())
		if err != nil {
			t.Fatal(err)
		}
		tr, err := ComputeTrace(g, mstT)
		if err != nil {
			t.Fatal(err)
		}
		a := FromTrace(mstT, tr)
		if err := a.Verify(g); err != nil {
			t.Fatalf("trial %d: verifier rejects legal MST labels: %v", trial, err)
		}
	}
}

func TestVerifierRejectsNonMSTTrees(t *testing.T) {
	// For a non-MST tree, even the honestly computed trace labels must
	// be rejected somewhere (check V5 fires).
	rng := rand.New(rand.NewSource(11))
	rejected, tried := 0, 0
	for trial := 0; trial < 30 && tried < 15; trial++ {
		g := randomWeighted(t, rng, 8+rng.Intn(20), 0.3)
		tree, err := trees.RandomSpanningTree(g, g.MinID(), rng)
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := IsMST(tree, g); ok {
			continue
		}
		tried++
		tr, err := ComputeTrace(g, tree)
		if err != nil {
			t.Fatal(err)
		}
		a := FromTrace(tree, tr)
		if err := a.Verify(g); err != nil {
			rejected++
		}
	}
	if tried == 0 {
		t.Fatal("vacuous")
	}
	if rejected != tried {
		t.Errorf("verifier accepted %d of %d non-MST trees", tried-rejected, tried)
	}
}

func TestVerifierRejectsCorruptedLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := randomWeighted(t, rng, 20, 0.3)
	mstT, err := Kruskal(g, g.MinID())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ComputeTrace(g, mstT)
	if err != nil {
		t.Fatal(err)
	}
	nodes := mstT.Nodes()
	for trial := 0; trial < 40; trial++ {
		a := FromTrace(mstT, tr)
		// Deep-copy the victim's levels before corrupting.
		victim := nodes[rng.Intn(len(nodes))]
		lvls := make([]LevelLabel, len(a.Levels[victim]))
		copy(lvls, a.Levels[victim])
		switch rng.Intn(3) {
		case 0:
			lvls[rng.Intn(len(lvls))].Fragment = graph.NodeID(rng.Intn(g.N()) + 1)
		case 1:
			i := rng.Intn(len(lvls))
			lvls[i].HasEdge = !lvls[i].HasEdge
		default:
			i := rng.Intn(len(lvls))
			lvls[i].Edge.W += 5
		}
		levels := make(map[graph.NodeID][]LevelLabel, len(a.Levels))
		for k, v := range a.Levels {
			levels[k] = v
		}
		levels[victim] = lvls
		a.Levels = levels
		if err := a.Verify(g); err == nil {
			// Some corruptions are semantically invisible (fragment
			// renamed to itself, or the weight of an Edge field under
			// HasEdge=false); only meaningful changes must be rejected.
			same := true
			for i := range lvls {
				a, b := lvls[i], tr.Levels[victim][i]
				if a.Fragment != b.Fragment || a.HasEdge != b.HasEdge {
					same = false
					break
				}
				if a.HasEdge && a.Edge != b.Edge {
					same = false
					break
				}
			}
			if !same {
				t.Fatalf("trial %d: corruption at node %d accepted", trial, victim)
			}
		}
	}
}

func TestBaselineBoruvka(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		g := randomWeighted(t, rng, 10+rng.Intn(40), 0.2)
		res, err := DistributedBoruvka(g, g.MinID())
		if err != nil {
			t.Fatal(err)
		}
		ok, err := IsMST(res.Tree, g)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: baseline tree is not the MST", trial)
		}
		if res.Phases > int(math.Ceil(math.Log2(float64(g.N()))))+1 {
			t.Errorf("trial %d: %d phases for n=%d", trial, res.Phases, g.N())
		}
		if res.Rounds <= 0 || res.RegisterBits <= 0 {
			t.Error("missing accounting")
		}
	}
}

func TestWeightRankSurplus(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := randomWeighted(t, rng, 15, 0.4)
	mstT, err := Kruskal(g, g.MinID())
	if err != nil {
		t.Fatal(err)
	}
	if s, err := WeightRankSurplus(mstT, g); err != nil || s != 0 {
		t.Errorf("surplus(MST) = %d, %v; want 0", s, err)
	}
	other, err := trees.RandomSpanningTree(g, g.MinID(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := IsMST(other, g); !ok {
		if s, _ := WeightRankSurplus(other, g); s <= 0 {
			t.Errorf("surplus(non-MST) = %d, want > 0", s)
		}
	}
}
