package mst

import (
	"fmt"
	"slices"

	"silentspan/internal/graph"
	"silentspan/internal/runtime"
	"silentspan/internal/trees"
)

// LevelLabel is one level of a node's Borůvka-trace label: the identity
// of the node's level-i fragment (the smallest member ID, as in the
// paper) and f_i, the lightest tree edge leaving that fragment (absent
// at the top level, where the fragment is the whole tree).
type LevelLabel struct {
	Fragment graph.NodeID
	HasEdge  bool
	Edge     graph.Edge
}

// Trace is the full labeling λ(x) = ((F_1,f_1), ..., (F_k,f_k)) of
// Section VI: the trace of a virtual execution of Borůvka's algorithm on
// the tree T, with fragment merges driven by the chosen tree edges.
type Trace struct {
	// K is the number of levels (k ≤ ceil(log2 n), Fig. 2).
	K int
	// Levels maps each node to its K level labels.
	Levels map[graph.NodeID][]LevelLabel
}

// ComputeTrace runs the virtual Borůvka execution on T (edge weights
// taken from g) and returns the labels.
func ComputeTrace(g *graph.Graph, t *trees.Tree) (*Trace, error) {
	nodes := t.Nodes()
	tr := &Trace{Levels: make(map[graph.NodeID][]LevelLabel, len(nodes))}
	treeEdges := t.Edges()
	for i := range treeEdges {
		w, ok := g.EdgeWeight(treeEdges[i].U, treeEdges[i].V)
		if !ok {
			return nil, fmt.Errorf("mst: tree edge %v not in graph", treeEdges[i])
		}
		treeEdges[i].W = w
	}
	// frag[x] = current fragment representative (min member ID).
	frag := make(map[graph.NodeID]graph.NodeID, len(nodes))
	for _, x := range nodes {
		frag[x] = x
	}
	fragments := len(nodes)
	for level := 0; ; level++ {
		if level > len(nodes) {
			return nil, fmt.Errorf("mst: Borůvka trace did not converge")
		}
		// f(F) = lightest tree edge leaving fragment F.
		chosen := make(map[graph.NodeID]graph.Edge, fragments)
		has := make(map[graph.NodeID]bool, fragments)
		for _, e := range treeEdges {
			fu, fv := frag[e.U], frag[e.V]
			if fu == fv {
				continue
			}
			for _, f := range []graph.NodeID{fu, fv} {
				if !has[f] || lighter(e, chosen[f]) {
					chosen[f], has[f] = e, true
				}
			}
		}
		// Record this level for every node.
		for _, x := range nodes {
			f := frag[x]
			ll := LevelLabel{Fragment: f}
			if has[f] {
				ll.HasEdge, ll.Edge = true, chosen[f].Canonical()
			}
			tr.Levels[x] = append(tr.Levels[x], ll)
		}
		tr.K = level + 1
		if fragments == 1 {
			return tr, nil
		}
		// Merge along chosen edges: new representative = min member.
		uf := graph.NewUnionFind(nodes)
		for _, x := range nodes {
			// All members of a fragment are first united so min-ID
			// propagation is fragment-wide.
			uf.Union(x, frag[x])
		}
		for f, e := range chosen {
			_ = f
			uf.Union(e.U, e.V)
		}
		minOf := make(map[graph.NodeID]graph.NodeID, len(nodes))
		for _, x := range nodes {
			r := uf.Find(x)
			if cur, ok := minOf[r]; !ok || x < cur {
				minOf[r] = x
			}
		}
		newFrag := make(map[graph.NodeID]graph.NodeID, len(nodes))
		reps := map[graph.NodeID]bool{}
		for _, x := range nodes {
			newFrag[x] = minOf[uf.Find(x)]
			reps[newFrag[x]] = true
		}
		if len(reps) >= fragments {
			return nil, fmt.Errorf("mst: fragment count did not shrink (%d -> %d)", fragments, len(reps))
		}
		frag, fragments = newFrag, len(reps)
	}
}

// lighter orders edges by (weight, U, V) — the distinct-weight reduction.
func lighter(a, b graph.Edge) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	ac, bc := a.Canonical(), b.Canonical()
	if ac.U != bc.U {
		return ac.U < bc.U
	}
	return ac.V < bc.V
}

// FragmentAt returns the level-i (1-based) fragment identity of x.
func (tr *Trace) FragmentAt(x graph.NodeID, i int) graph.NodeID {
	return tr.Levels[x][i-1].Fragment
}

// NodePotential returns φ_x(T): the largest i in [0, K] such that for
// every j ≤ i, f_j(x) is the minimum-weight edge of G leaving F_j(x)
// (levels without an outgoing graph edge count as satisfied).
func (tr *Trace) NodePotential(g *graph.Graph, x graph.NodeID) int {
	for i := 1; i <= tr.K; i++ {
		if !tr.LevelSatisfied(g, x, i) {
			return i - 1
		}
	}
	return tr.K
}

// LevelSatisfied reports whether f_i(x) is the minimum-weight outgoing
// edge of F_i(x) in G (1-based level i).
func (tr *Trace) LevelSatisfied(g *graph.Graph, x graph.NodeID, i int) bool {
	ll := tr.Levels[x][i-1]
	best, hasBest := tr.MinOutgoing(g, ll.Fragment, i)
	if !hasBest {
		return !ll.HasEdge
	}
	if !ll.HasEdge {
		return false
	}
	return ll.Edge.Canonical() == best.Canonical()
}

// MinOutgoing returns the minimum-weight edge of G leaving the level-i
// fragment identified by rep (1-based level).
func (tr *Trace) MinOutgoing(g *graph.Graph, rep graph.NodeID, level int) (graph.Edge, bool) {
	var best graph.Edge
	found := false
	for x, lvls := range tr.Levels {
		if lvls[level-1].Fragment != rep {
			continue
		}
		for _, u := range g.Neighbors(x) {
			if tr.Levels[u][level-1].Fragment == rep {
				continue
			}
			w, _ := g.EdgeWeight(x, u)
			e := graph.Edge{U: x, V: u, W: w}
			if !found || lighter(e, best) {
				best, found = e, true
			}
		}
	}
	return best.Canonical(), found
}

// Potential returns the paper's φ(T) = K·n − Σ_x φ_x(T): non-negative,
// zero iff T is the MST of g.
func (tr *Trace) Potential(g *graph.Graph) int {
	phi := tr.K * len(tr.Levels)
	for x := range tr.Levels {
		phi -= tr.NodePotential(g, x)
	}
	return phi
}

// Violation returns a node x and level i with φ_x = i < K (a witness
// that T is not the MST), choosing the smallest (i, x); ok is false when
// every node is fully satisfied (φ = 0).
func (tr *Trace) Violation(g *graph.Graph) (graph.NodeID, int, bool) {
	bestX, bestI, found := graph.NodeID(0), 0, false
	nodes := make([]graph.NodeID, 0, len(tr.Levels))
	for x := range tr.Levels {
		nodes = append(nodes, x)
	}
	slices.Sort(nodes)
	for _, x := range nodes {
		i := tr.NodePotential(g, x)
		if i < tr.K && (!found || i < bestI) {
			bestX, bestI, found = x, i, true
		}
	}
	return bestX, bestI, found
}

// MaxLabelBits returns the register width of the trace labels: K levels,
// each carrying a fragment identity and an edge (two identities plus a
// weight) — Θ(log² n) total, the optimal width for silent MST (the
// Korman–Kutten lower bound the paper cites).
func (tr *Trace) MaxLabelBits(g *graph.Graph) int {
	n := g.N()
	maxW := graph.Weight(1)
	for _, e := range g.Edges() {
		if e.W > maxW {
			maxW = e.W
		}
	}
	perLevel := runtime.BitsForValue(n) + 1 + 2*runtime.BitsForValue(n) + runtime.BitsForValue(int(maxW))
	return tr.K * perLevel
}

// ConstructionRounds returns the rounds charged for the silent
// self-stabilizing construction of the trace labels: per level, one
// min-ID relaxation within fragments and one lightest-outgoing-edge
// relaxation, each bounded by the tree height (fragments are subtrees,
// so information crosses a fragment in at most 2·height hops).
func (tr *Trace) ConstructionRounds(t *trees.Tree) int {
	height := 0
	for _, d := range t.Depths() {
		if d > height {
			height = d
		}
	}
	return tr.K * (4*height + 4)
}
